package pinbcast

import (
	"context"
	"errors"
	"fmt"
	"io"

	"pinbcast/internal/cache"
	"pinbcast/internal/client"
	"pinbcast/internal/obs"
)

// Receiver is the client half of the broadcast-disk pair — the
// counterpart of Station. It subscribes to a slot stream through any
// Source, learns the broadcast directory, collects self-identifying
// AIDA blocks for its pending requests, reconstructs each file as soon
// as any M distinct blocks have arrived (so up to r lost transmissions
// per window are tolerated, §2.3), and tracks per-request deadlines.
// Reception faults can be injected (WithReceiverFaults), reconstructed
// files can be cached under a pluggable replacement policy (WithCache,
// per Acharya–Franklin–Zdonik), and a receiver that knows the broadcast
// schedule (WithSchedule, as if learned from a (1, m) air index) dozes
// through irrelevant slots, separating access latency from tuning time.
//
// A Receiver is single-goroutine: Run, Step and Request must not be
// called concurrently.
type Receiver struct {
	src   Source
	cli   *client.Client
	fault FaultModel

	// corruptBuf is the reusable scratch an injected fault garbles into,
	// so the shared wire payload is never mutated and fault injection
	// does not allocate per corrupted slot.
	corruptBuf []byte

	cache *cache.Cache
	store map[string][]byte // reconstructed bytes of cached files

	schedule *Program
	// scheduleGen is the generation the schedule was observed under;
	// a swap in the stream disables dozing (the alignment is lost).
	scheduleGen int

	lastT int
	m     ReceiverMetrics
}

// ReceiverMetrics counts what a receiver has seen and done. Slots vs
// Listened is the access-latency/tuning-time split of Imielinski et
// al.'s air indexing: a schedule-aware receiver dozes through slots
// that cannot serve it, so Listened — the energy cost — stays far
// below Slots while latency is unchanged.
type ReceiverMetrics struct {
	// Slots is the number of slots consumed from the source.
	Slots int
	// Listened counts slots the receiver actively listened to while
	// requests were pending (its tuning time).
	Listened int
	// Dozed counts slots skipped thanks to schedule knowledge.
	Dozed int
	// Blocks counts valid self-identifying blocks decoded.
	Blocks int
	// Corrupted counts blocks dropped for checksum failure.
	Corrupted int
	// Injected counts corruptions introduced by the receiver's own
	// fault model (a subset of Corrupted).
	Injected int
	// Unknown counts valid blocks of files absent from the directory.
	Unknown int
	// CacheHits and CacheMisses count requests served from the
	// reconstructed-file cache versus sent to the air.
	CacheHits   int
	CacheMisses int
	// Reconstructions counts files rebuilt from dispersed blocks.
	Reconstructions int
}

// TuningRatio returns Listened/Slots — the fraction of consumed slots
// the receiver actually had to listen to (1.0 without schedule
// knowledge).
func (m ReceiverMetrics) TuningRatio() float64 {
	if m.Slots == 0 {
		return 0
	}
	return float64(m.Listened) / float64(m.Slots)
}

// receiverConfig collects the options a Receiver is built from.
type receiverConfig struct {
	names    map[uint32]string
	requests []Request
	fault    FaultModel
	policy   CachePolicy
	capacity int
	schedule *Program
}

// ReceiverOption configures a Receiver under construction.
type ReceiverOption func(*receiverConfig) error

// WithDirectory supplies the id→name broadcast directory. Over the
// in-process transport the receiver also learns entries from the
// stream itself; over TCP (where the wire carries only the paper's
// self-identifying blocks) the directory is how requests by name are
// resolved. Merged over any entries already configured.
func WithDirectory(names map[uint32]string) ReceiverOption {
	return func(c *receiverConfig) error {
		for id, name := range names {
			c.names[id] = name
		}
		return nil
	}
}

// WithRequests registers files to retrieve, with per-request relative
// deadlines in slots (0 = none). Deadline clocks start at the first
// slot the receiver observes.
func WithRequests(reqs ...Request) ReceiverOption {
	return func(c *receiverConfig) error {
		c.requests = append(c.requests, reqs...)
		return nil
	}
}

// WithRequest registers one file to retrieve by the given relative
// deadline in slots (0 = none).
func WithRequest(file string, deadline int) ReceiverOption {
	return WithRequests(Request{File: file, Deadline: deadline})
}

// WithReceiverFaults injects a reception fault model: slots the model
// corrupts reach the protocol as garbled blocks, which the checksum
// rejects — the client then simply waits for the next useful block
// (§2.3). Use BernoulliFaults, BurstFaults, SlotFaults or NoFaults.
func WithReceiverFaults(fm FaultModel) ReceiverOption {
	return func(c *receiverConfig) error {
		c.fault = fm
		return nil
	}
}

// WithCache keeps reconstructed files in a bounded client cache under
// the given replacement policy (PIXPolicy, LRUPolicy, LFUPolicy,
// RandomPolicy): a repeated Request for a cached file completes
// instantly instead of waiting on the air. This is the client
// cache-management axis of Acharya, Franklin & Zdonik that §1 of the
// paper cites.
func WithCache(policy CachePolicy, capacity int) ReceiverOption {
	return func(c *receiverConfig) error {
		if policy == nil {
			return fmt.Errorf("pinbcast: nil cache policy: %w", ErrBadSpec)
		}
		if capacity < 1 {
			return fmt.Errorf("pinbcast: cache capacity %d < 1: %w", capacity, ErrBadSpec)
		}
		c.policy = policy
		c.capacity = capacity
		return nil
	}
}

// WithSchedule gives the receiver the broadcast program, as a client
// that has read a (1, m) air index would know it. A schedule-aware
// receiver dozes through slots that carry nothing it is waiting for:
// access latency is unchanged, tuning time (Metrics().Listened) drops
// to the slots that matter — the energy tradeoff of Imielinski,
// Viswanathan & Badrinath's indexing on air. The schedule must be the
// one the station actually serves; if the stream carries a generation
// swap (an online Admit/Evict re-aligned the program), the receiver
// falls back to continuous listening, as a real client would until it
// re-reads the index. Use NewTuner to analyze the index overhead
// itself.
func WithSchedule(prog *Program) ReceiverOption {
	return func(c *receiverConfig) error {
		if prog == nil {
			return fmt.Errorf("pinbcast: nil schedule: %w", ErrBadSpec)
		}
		c.schedule = prog
		return nil
	}
}

// Subscribe tunes a new Receiver into a broadcast source at whatever
// slot the stream is on — the paper's client may arrive at an
// arbitrary point of the broadcast and still meets its latency window.
// Requests can be registered up front (WithRequests) or over time
// (Receiver.Request); Run drives the protocol until they complete.
func Subscribe(src Source, opts ...ReceiverOption) (*Receiver, error) {
	if src == nil {
		return nil, fmt.Errorf("pinbcast: nil source: %w", ErrBadSpec)
	}
	cfg := &receiverConfig{names: map[uint32]string{}}
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	r := &Receiver{
		src:   src,
		cli:   client.NewSubscriber(cfg.names),
		fault: cfg.fault,
		lastT: -1,
	}
	if cfg.policy != nil {
		c, err := cache.New(cfg.capacity, cfg.policy)
		if err != nil {
			return nil, fmt.Errorf("pinbcast: %w: %w", ErrBadSpec, err)
		}
		r.cache = c
		r.store = make(map[string][]byte, cfg.capacity)
	}
	r.schedule = cfg.schedule
	for _, req := range cfg.requests {
		if err := r.Request(req.File, req.Deadline); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Request asks for one file with a relative deadline in slots (0 =
// none). If the file sits in the receiver's cache the request completes
// instantly (Latency 0, FromCache set); otherwise its deadline clock
// starts at the next observed slot and Run/Step collect it from the
// air. Requesting a file that is already pending wraps ErrBadSpec.
func (r *Receiver) Request(file string, deadline int) error {
	if file == "" {
		return fmt.Errorf("pinbcast: request without a file name: %w", ErrBadSpec)
	}
	if r.cli.IsPending(file) {
		return fmt.Errorf("pinbcast: file %q already requested: %w", file, ErrBadSpec)
	}
	if r.cache != nil {
		if data, ok := r.store[file]; ok {
			r.cache.Get(file) // policy sees the hit
			r.m.CacheHits++
			r.cli.AddResult(client.Result{
				File:        file,
				Completed:   true,
				Deadline:    deadline,
				DeadlineMet: true,
				Data:        data,
				FromCache:   true,
			})
			return nil
		}
		r.m.CacheMisses++
	}
	if err := r.cli.Add(client.Request{File: file, Deadline: deadline}); err != nil {
		return fmt.Errorf("pinbcast: %w: %w", ErrBadSpec, err)
	}
	return nil
}

// Cancel withdraws a pending request without recording a result,
// discarding any blocks collected for it. It reports whether the file
// was actually pending. A MultiTuner uses the same operation on its
// per-channel clients to release the losing channels once any channel
// completes a request.
func (r *Receiver) Cancel(file string) bool { return r.cli.Cancel(file) }

// Step consumes one slot from the source and advances the protocol. It
// reports whether every request has completed. The stream end
// propagates as io.EOF (flush pending requests with Results afterwards
// via Close or inspect them with Pending).
//
// Step is the per-slot receive path; BenchmarkReceiverSlots asserts
// 0 allocs/op in steady state.
//
//pinlint:hotpath
func (r *Receiver) Step() (done bool, err error) {
	slot, err := r.src.Next()
	if err != nil {
		return r.cli.Done(), err
	}
	r.m.Slots++
	rcvSlots.Inc()
	r.lastT = slot.T

	// The in-process transport carries file names alongside blocks;
	// learn the directory for free (over TCP only the self-identifying
	// block travels, and the directory comes from WithDirectory).
	if slot.File != "" && slot.Block != nil {
		r.cli.Learn(slot.Block.FileID, slot.File)
	}

	// A generation swap re-aligns the station's program to a fresh
	// origin the receiver cannot see, so a stale schedule would doze on
	// exactly the wrong slots. Fall back to continuous listening — the
	// protocol stays correct, only the energy saving is lost (a real
	// client would re-read the air index). Only the in-process
	// transport carries generation marks; over TCP, WithSchedule
	// assumes a single-generation broadcast.
	if r.schedule != nil && slot.Generation != 0 {
		if r.scheduleGen == 0 {
			r.scheduleGen = slot.Generation
		} else if slot.Generation != r.scheduleGen {
			r.schedule = nil
		}
	}

	// The fault process is a property of the channel, not of what the
	// receiver does with it: stateful models (Gilbert–Elliott bursts)
	// advance once per transmitted block, exactly as internal/sim
	// drives them, whether or not this receiver is listening.
	corrupted := len(slot.Payload) > 0 && r.fault != nil && r.fault.Corrupts(slot.T)

	pending := r.cli.PendingCount()
	if pending == 0 {
		// Nothing requested: the radio idles but the tune-in clock
		// keeps ticking, so a later Request measures latency from its
		// own activation slot, not from a stale one.
		r.cli.Observe(slot.T, nil)
		return true, nil
	}

	// Doze: with schedule knowledge the receiver wakes only for slots
	// that can serve a pending request.
	if r.schedule != nil {
		if f := r.schedule.FileAt(slot.T); f == Idle || !r.cli.IsPending(r.schedule.Files[f].Name) {
			r.m.Dozed++
			// The latency clock keeps ticking while the radio sleeps —
			// dozing saves tuning time, never access time.
			r.cli.Observe(slot.T, nil)
			return false, nil
		}
	}
	r.m.Listened++

	payload := slot.Payload
	if corrupted {
		r.corruptBuf = append(r.corruptBuf[:0], payload...)
		payload = r.corruptBuf
		payload[len(payload)/2] ^= 0x5a // garble so the checksum fails
		r.m.Injected++
		traceRing.Emit(obs.BlockCorrupted, -1, 0, uint64(slot.T), 0)
	}

	switch r.cli.Observe(slot.T, payload) {
	case client.Corrupt:
		r.m.Corrupted++
		rcvCorrupted.Inc()
	case client.Unknown:
		r.m.Unknown++
		r.m.Blocks++
		rcvBlocks.Inc()
	case client.Ignored, client.Stored:
		if payload != nil {
			r.m.Blocks++
			rcvBlocks.Inc()
		}
	case client.Completed:
		r.m.Blocks++
		rcvBlocks.Inc()
		r.m.Reconstructions++
		r.cacheCompleted() //pinlint:allow hotpath — completion path, runs once per reconstructed file
	}
	return r.cli.Done(), nil
}

// cacheCompleted inserts the just-reconstructed file into the cache.
func (r *Receiver) cacheCompleted() {
	if r.cache == nil {
		return
	}
	results := r.cli.Results()
	res := results[len(results)-1]
	if !res.Completed {
		return
	}
	r.store[res.File] = res.Data
	if evicted := r.cache.Put(res.File); evicted != "" {
		delete(r.store, evicted)
	}
}

// Run consumes the source until every request has completed, the
// context is cancelled, or the stream ends, and returns the results so
// far. Pending requests are flushed as failures when the stream ends
// or the context is cancelled; a receiver left running can accept
// further Request calls and be Run again.
//
// Cancellation is observed between slots: a Source whose Next blocks
// indefinitely (a TCPSource with zero Timeout on a silent connection)
// holds Run with it. Give the source a timeout — the resulting error
// returns from Run — when the broadcast may stall.
func (r *Receiver) Run(ctx context.Context) ([]Result, error) {
	for {
		select {
		case <-ctx.Done():
			return r.cli.Flush(r.lastT), ctx.Err()
		default:
		}
		done, err := r.Step()
		if errors.Is(err, io.EOF) {
			return r.cli.Flush(r.lastT), nil
		}
		if err != nil {
			return r.cli.Results(), err
		}
		if done {
			return r.cli.Results(), nil
		}
	}
}

// Results returns the outcomes recorded so far (completed requests,
// cache hits, and flushed failures).
func (r *Receiver) Results() []Result { return r.cli.Results() }

// Recycle hands a completed result's Data buffer back to the receiver
// for reuse by a future reconstruction, making a request/retrieve/
// recycle loop allocation-free once warm. Call it only when finished
// with the result; neither it nor its Data may be used afterwards. A
// caching receiver ignores the call — cached results share their
// buffer with the cache, which still owns it.
func (r *Receiver) Recycle(res Result) {
	if r.cache != nil || res.FromCache || !res.Completed || res.Data == nil {
		return
	}
	r.cli.Recycle(res.Data)
}

// Pending returns the names of files still being collected.
func (r *Receiver) Pending() []string { return r.cli.Pending() }

// Done reports whether every request has completed.
func (r *Receiver) Done() bool { return r.cli.Done() }

// Start returns the slot at which the receiver tuned in (-1 before the
// first observed slot).
func (r *Receiver) Start() int { return r.cli.Start() }

// Directory returns the receiver's current id→name directory —
// supplied entries merged with anything learned from the stream. The
// returned map is a shared copy-on-write snapshot, reused across calls
// until the directory changes: treat it as read-only.
func (r *Receiver) Directory() map[uint32]string { return r.cli.Directory() }

// Metrics returns a snapshot of the receiver's counters.
func (r *Receiver) Metrics() ReceiverMetrics { return r.m }

// Close releases the underlying source.
func (r *Receiver) Close() error { return r.src.Close() }
