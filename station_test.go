package pinbcast

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"pinbcast/internal/channel"
	"pinbcast/internal/client"
)

// lifecycleStation returns a small two-file station with headroom for
// admissions (density 0.45 at bandwidth 1).
func lifecycleStation(t *testing.T, opts ...Option) (*Station, map[string][]byte) {
	t.Helper()
	contents := map[string][]byte{
		"A": []byte("file A: the hot real-time bulletin"),
		"B": []byte("file B: the colder background map, three blocks long"),
	}
	base := []Option{
		WithFiles(
			FileSpec{Name: "A", Blocks: 2, Latency: 10, Faults: 1},
			FileSpec{Name: "B", Blocks: 3, Latency: 20},
		),
		WithContents(contents),
	}
	st, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return st, contents
}

// retrieve feeds the slot stream into a reconstructing client under the
// fault model until every request completes (or the stream ends), and
// returns the results.
func retrieve(t *testing.T, st *Station, slots <-chan Slot, fault FaultModel, names []string) []client.Result {
	t.Helper()
	reqs := make([]client.Request, len(names))
	for i, name := range names {
		reqs[i] = client.Request{File: name}
	}
	var c *client.Client
	for slot := range slots {
		if c == nil {
			var err error
			if c, err = client.New(slot.T, st.Directory(), reqs); err != nil {
				t.Fatal(err)
			}
		}
		raw := slot.Payload
		if raw != nil && fault != nil && fault.Corrupts(slot.T) {
			raw = append([]byte(nil), raw...)
			raw[len(raw)/2] ^= 0x5a // garble so the checksum fails
		}
		c.Observe(slot.T, raw)
		if c.Done() {
			return c.Results()
		}
	}
	t.Fatal("stream ended before retrieval completed")
	return nil
}

// TestStationLifecycle is the end-to-end acceptance path: build →
// Serve(ctx) streaming → client reconstruction under Bernoulli faults →
// mid-run Admit at a data-cycle boundary → retrieval of the admitted
// file → Evict.
func TestStationLifecycle(t *testing.T) {
	st, contents := lifecycleStation(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := st.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: both initial files reconstruct despite 2% block loss.
	for _, r := range retrieve(t, st, slots, channel.NewBernoulli(0.02, 7), []string{"A", "B"}) {
		if !r.Completed || !bytes.Equal(r.Data, contents[r.File]) {
			t.Fatalf("file %q not reconstructed intact (completed=%v)", r.File, r.Completed)
		}
	}

	// Phase 2: admit a new file online; the swap must land exactly on a
	// data-cycle boundary of the running generation.
	cycle := st.Program().DataCycle()
	if err := st.Admit(FileSpec{Name: "C", Blocks: 1, Latency: 10}, []byte("file C: admitted online")); err != nil {
		t.Fatal(err)
	}
	swapT := -1
	for slot := range slots {
		if slot.Generation == 2 {
			swapT = slot.T
			break
		}
		if slot.T > 64*cycle {
			t.Fatal("admission never took effect")
		}
	}
	if st.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", st.Generation())
	}
	// The swap slot is the first slot of a new data cycle: all full
	// cycles before it belong to generation 1, so its offset within the
	// stream is a multiple of the generation-1 cycle length.
	if swapT%cycle != 0 {
		t.Fatalf("generation 2 started at slot %d, not on a %d-slot cycle boundary", swapT, cycle)
	}
	if len(st.Files()) != 3 {
		t.Fatalf("station carries %d files, want 3", len(st.Files()))
	}

	// Phase 3: the admitted file is retrievable from the live stream.
	for _, r := range retrieve(t, st, slots, channel.NewBernoulli(0.02, 11), []string{"C"}) {
		if !r.Completed || !bytes.Equal(r.Data, []byte("file C: admitted online")) {
			t.Fatalf("admitted file %q not reconstructed intact", r.File)
		}
	}

	// Phase 4: evict the original hot file; the next generation must
	// not carry it.
	if err := st.Evict("A"); err != nil {
		t.Fatal(err)
	}
	for slot := range slots {
		if slot.Generation == 3 {
			break
		}
	}
	for _, f := range st.Files() {
		if f.Name == "A" {
			t.Fatal("evicted file still in the program")
		}
	}
	for seen, want := 0, 2*st.Program().DataCycle(); seen < want; seen++ {
		slot, ok := <-slots
		if !ok {
			t.Fatal("stream closed early")
		}
		if slot.File == "A" {
			t.Fatal("evicted file still broadcast")
		}
	}

	// Phase 5: cancellation closes the stream.
	cancel()
	for range slots {
	}
}

// TestStationAdmitEvictStress hammers a streaming station with
// concurrent Admit/Evict (plus concurrent metadata reads) and asserts
// the §2.3 swap discipline from the outside: every program generation
// must broadcast a positive whole number of its own data cycles before
// the next generation takes over. Run under -race this also proves the
// Station's locking: mutators, readers and the serve loop share it
// concurrently.
func TestStationAdmitEvictStress(t *testing.T) {
	st, _ := lifecycleStation(t, WithSlotBuffer(64))
	bw := st.Bandwidth()
	spec := FileSpec{Name: "C", Blocks: 1, Latency: 10}

	// The station alternates strictly between the two-file and
	// three-file sets, so odd generations carry {A,B} and even ones
	// {A,B,C}. Build both programs offline (same default scheduler
	// chain, same bandwidth) to learn their data-cycle lengths.
	without, err := Build(BuildConfig{Files: st.Files(), Bandwidth: bw})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Build(BuildConfig{Files: append(st.Files(), spec), Bandwidth: bw})
	if err != nil {
		t.Fatal(err)
	}
	cycleOf := func(generation int) int {
		if generation%2 == 1 {
			return without.DataCycle()
		}
		return with.DataCycle()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := st.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Mutator: 40 admit/evict rounds while the stream runs.
	mutDone := make(chan error, 1)
	go func() {
		for i := 0; i < 40; i++ {
			if err := st.Admit(spec, []byte("file C: in and out")); err != nil {
				mutDone <- err
				return
			}
			time.Sleep(200 * time.Microsecond)
			if err := st.Evict(spec.Name); err != nil {
				mutDone <- err
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
		mutDone <- nil
	}()
	// Reader: metadata accessors race against mutations and the loop.
	readerCtx, readerCancel := context.WithCancel(context.Background())
	defer readerCancel()
	go func() {
		for readerCtx.Err() == nil {
			_ = st.Generation()
			_ = st.Program().DataCycle()
			_ = st.Directory()
			_ = st.Files()
		}
	}()

	gen, inGen, swaps := 0, 0, 0
	mutErr := error(nil)
	for done := false; !done; {
		select {
		case mutErr = <-mutDone:
			done = true
		case slot, ok := <-slots:
			if !ok {
				t.Fatal("stream closed early")
			}
			if gen == 0 {
				gen = slot.Generation
			}
			if slot.Generation != gen {
				if slot.Generation < gen {
					t.Fatalf("generation went backwards: %d after %d", slot.Generation, gen)
				}
				if cyc := cycleOf(gen); inGen == 0 || inGen%cyc != 0 {
					t.Fatalf("generation %d swapped out after %d slots, not a positive multiple of its %d-slot data cycle",
						gen, inGen, cyc)
				}
				swaps++
				gen, inGen = slot.Generation, 0
			}
			inGen++
		}
	}
	if mutErr != nil {
		t.Fatal(mutErr)
	}
	// Drain any staged swap still in flight, then stop.
	for swaps == 0 {
		slot, ok := <-slots
		if !ok {
			t.Fatal("stream closed before any swap landed")
		}
		if slot.Generation != gen {
			swaps++
		}
	}
	cancel()
	for range slots {
	}
	if st.Generation() < 2 {
		t.Fatalf("no mutation took effect (generation %d)", st.Generation())
	}
}

func TestStationAdmitRejected(t *testing.T) {
	st, _ := lifecycleStation(t)
	gen := st.Generation()
	err := st.Admit(FileSpec{Name: "flood", Blocks: 200, Latency: 10}, bytes.Repeat([]byte("x"), 200))
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("err = %v, want ErrAdmission", err)
	}
	if st.Generation() != gen {
		t.Fatal("rejected admission changed the program")
	}
	if err := st.Admit(FileSpec{Name: "A", Blocks: 1, Latency: 10}, nil); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("duplicate admission: err = %v, want ErrBadSpec", err)
	}
}

func TestStationEvictErrors(t *testing.T) {
	st, _ := lifecycleStation(t)
	if err := st.Evict("nope"); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown eviction: err = %v, want ErrBadSpec", err)
	}
	if err := st.Evict("A"); err != nil {
		t.Fatal(err)
	}
	if err := st.Evict("B"); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("last-file eviction: err = %v, want ErrBadSpec", err)
	}
}

func TestStationAdmitWhileIdleAppliesImmediately(t *testing.T) {
	st, _ := lifecycleStation(t)
	if err := st.Admit(FileSpec{Name: "C", Blocks: 1, Latency: 10}, []byte("c")); err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 2 || len(st.Files()) != 3 {
		t.Fatalf("idle admission not applied: generation %d, %d files", st.Generation(), len(st.Files()))
	}
}

func TestStationServeSingleFlight(t *testing.T) {
	st, _ := lifecycleStation(t)
	ctx, cancel := context.WithCancel(context.Background())
	slots, err := st.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Serve(ctx); !errors.Is(err, ErrServing) {
		t.Fatalf("second Serve: err = %v, want ErrServing", err)
	}
	cancel()
	for range slots {
	}
	// After the loop drains, the station can serve again.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	deadline := time.Now().Add(5 * time.Second)
	for {
		slots2, err := st.Serve(ctx2)
		if err == nil {
			cancel2()
			for range slots2 {
			}
			return
		}
		if !errors.Is(err, ErrServing) || time.Now().After(deadline) {
			t.Fatalf("re-Serve: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStationSlotInterval(t *testing.T) {
	st, _ := lifecycleStation(t, WithSlotInterval(time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := st.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for slot := range slots {
		if slot.T == 9 {
			break
		}
	}
	if elapsed := time.Since(start); elapsed < 9*time.Millisecond {
		t.Fatalf("10 slots in %v, want ≥ 9ms pacing", elapsed)
	}
}

// TestStationSchedulerChain injects a custom broken scheduler and
// checks that independent verification rejects its output and falls
// through to the next chain member.
func TestStationSchedulerChain(t *testing.T) {
	broken := NewScheduler("broken", func(sys TaskSystem) (*Schedule, error) {
		// An all-idle schedule satisfies nothing.
		return &Schedule{Period: 4, Slots: []int{Idle, Idle, Idle, Idle}, Origin: "broken"}, nil
	})
	edf, _ := LookupScheduler(SchedulerEDF)
	st, _ := lifecycleStation(t, WithSchedulers(broken, edf))
	if origin := st.Program().Origin; origin != "pinwheel/EDF" {
		t.Fatalf("program origin = %q, want the EDF fallback", origin)
	}
}

func TestWithSchedulerNamesUnknown(t *testing.T) {
	_, err := New(
		WithFile(FileSpec{Name: "A", Blocks: 1, Latency: 2}, []byte("a")),
		WithSchedulerNames("no-such-scheduler"),
	)
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}

func TestSchedulerRegistry(t *testing.T) {
	for _, name := range []string{SchedulerSa, SchedulerSx, SchedulerTwoDistinct, SchedulerEDF, SchedulerExact, SchedulerPortfolio} {
		s, ok := LookupScheduler(name)
		if !ok || s.Name() != name {
			t.Fatalf("built-in scheduler %q not registered", name)
		}
	}
	if err := RegisterScheduler(NewScheduler(SchedulerEDF, nil)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("duplicate registration: err = %v, want ErrBadSpec", err)
	}
	if err := RegisterScheduler(NewScheduler("", nil)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unnamed registration: err = %v, want ErrBadSpec", err)
	}
	sys := TaskSystem{{A: 1, B: 2}, {A: 1, B: 4}}
	for _, name := range SchedulerNames() {
		s, _ := LookupScheduler(name)
		sch, err := s.Schedule(sys)
		if err != nil {
			continue // not every specialization handles every system
		}
		if err := sch.Verify(sys); err != nil {
			t.Fatalf("scheduler %q emitted an invalid schedule: %v", name, err)
		}
	}
}
