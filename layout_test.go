package pinbcast

import (
	"errors"
	"testing"
)

func TestLayoutRegistry(t *testing.T) {
	for _, name := range []string{LayoutPinwheel, LayoutTiered, LayoutFlatSpread, LayoutFlatSequential} {
		l, ok := LookupLayout(name)
		if !ok {
			t.Fatalf("layout %q not registered", name)
		}
		if l.Name() != name {
			t.Fatalf("layout %q reports name %q", name, l.Name())
		}
	}
	if _, ok := LookupLayout("no-such-layout"); ok {
		t.Fatal("unknown layout resolved")
	}
	if err := RegisterLayout(NewLayout("", nil)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("nameless layout: err = %v", err)
	}
	if err := RegisterLayout(NewLayout(LayoutPinwheel, nil)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("duplicate layout: err = %v", err)
	}
	names := LayoutNames()
	if len(names) < 4 {
		t.Fatalf("registered layouts: %v", names)
	}
}

func TestBuildWithEachLayout(t *testing.T) {
	files := []FileSpec{
		{Name: "hot", Blocks: 2, Latency: 4, Faults: 1},
		{Name: "warm", Blocks: 3, Latency: 12},
		{Name: "cold", Blocks: 4, Latency: 24, Faults: 1},
	}
	for _, name := range LayoutNames() {
		l, _ := LookupLayout(name)
		p, err := Build(BuildConfig{Files: files, Layout: l})
		if err != nil {
			t.Fatalf("layout %q: %v", name, err)
		}
		if len(p.Files) != len(files) {
			t.Fatalf("layout %q: %d files in program", name, len(p.Files))
		}
		// Every layout's program answers the shared analytics.
		for i := range files {
			mean, worst := LatencyProfile(p, i)
			if mean <= 0 || worst < int(mean) {
				t.Fatalf("layout %q file %d: mean %.1f worst %d", name, i, mean, worst)
			}
		}
	}
}

func TestTieredLayoutFavorsHotFiles(t *testing.T) {
	files := []FileSpec{
		{Name: "hot", Blocks: 1, Latency: 2},
		{Name: "cold", Blocks: 1, Latency: 16},
	}
	tiered, _ := LookupLayout(LayoutTiered)
	p, err := Build(BuildConfig{Files: files, Layout: tiered})
	if err != nil {
		t.Fatal(err)
	}
	if p.PerPeriod(0) <= p.PerPeriod(1) {
		t.Fatalf("hot %d slots vs cold %d: tiering lost", p.PerPeriod(0), p.PerPeriod(1))
	}
	hotMean, _ := LatencyProfile(p, 0)
	coldMean, _ := LatencyProfile(p, 1)
	if hotMean >= coldMean {
		t.Fatalf("hot mean %.1f not below cold mean %.1f", hotMean, coldMean)
	}
	// The weighted mean rewards matching skew, the objective this layout
	// optimizes.
	if hotHeavy, coldHeavy := p.WeightedMeanLatency([]float64{0.9, 0.1}),
		p.WeightedMeanLatency([]float64{0.1, 0.9}); hotHeavy >= coldHeavy {
		t.Fatalf("hot-heavy weighted mean %.2f not below cold-heavy %.2f", hotHeavy, coldHeavy)
	}
}

func TestAutoTierFacade(t *testing.T) {
	files := []FileSpec{
		{Name: "hot", Blocks: 1, Latency: 2},
		{Name: "cold", Blocks: 1, Latency: 16},
	}
	disks, err := AutoTier(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(disks) != 2 || disks[0].Frequency != 8 || disks[1].Frequency != 1 {
		t.Fatalf("disks = %+v", disks)
	}
	p, err := BuildTiered(disks)
	if err != nil {
		t.Fatal(err)
	}
	if p.PerPeriod(0) != 8 {
		t.Fatalf("hot slots per major cycle = %d", p.PerPeriod(0))
	}
}

func TestStationWithLayout(t *testing.T) {
	files := []FileSpec{
		{Name: "hot", Blocks: 1, Latency: 2},
		{Name: "cold", Blocks: 2, Latency: 16},
	}
	contents := map[string][]byte{"hot": []byte("h"), "cold": []byte("cold data")}
	st, err := New(WithFiles(files...), WithContents(contents), WithLayoutName(LayoutTiered))
	if err != nil {
		t.Fatal(err)
	}
	if st.Layout() != LayoutTiered {
		t.Fatalf("layout = %q", st.Layout())
	}
	if st.Program().Origin != "multidisk" {
		t.Fatalf("origin = %q", st.Program().Origin)
	}
	// The default station runs the pinwheel construction.
	def, err := New(WithFiles(files...), WithContents(contents))
	if err != nil {
		t.Fatal(err)
	}
	if def.Layout() != LayoutPinwheel {
		t.Fatalf("default layout = %q", def.Layout())
	}
	if _, err := New(WithFiles(files...), WithContents(contents),
		WithLayoutName("no-such-layout")); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown layout name: err = %v", err)
	}
	if _, err := New(WithFiles(files...), WithContents(contents),
		WithLayout(nil)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("nil layout: err = %v", err)
	}
}

func TestCustomLayoutNamedPinwheelIsHonored(t *testing.T) {
	// Only the built-in pinwheel layout is special-cased; a custom
	// layout that reuses the name must still be dispatched.
	called := false
	custom := NewLayout(LayoutPinwheel, func(files []FileSpec, _ int) (*Program, error) {
		called = true
		return FlatSpread(files)
	})
	files := []FileSpec{{Name: "A", Blocks: 2, Latency: 4}}
	p, err := Build(BuildConfig{Files: files, Layout: custom})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("custom layout named pinwheel was silently bypassed")
	}
	if p.Origin != "flat-spread" {
		t.Fatalf("origin = %q", p.Origin)
	}
}

func TestBuildPinwheelLayoutComposesWithSchedulers(t *testing.T) {
	// Selecting the pinwheel layout by name keeps the scheduler chain in
	// force — the chain and the layout are orthogonal seams there.
	files := []FileSpec{{Name: "A", Blocks: 2, Latency: 1}}
	td, _ := LookupScheduler(SchedulerTwoDistinct)
	pw, _ := LookupLayout(LayoutPinwheel)
	_, err := Build(BuildConfig{
		Files:      files,
		Bandwidth:  5,
		Schedulers: []Scheduler{td},
		Layout:     pw,
	})
	if !errors.Is(err, ErrSchedulerFailed) {
		t.Fatalf("err = %v, want ErrSchedulerFailed (chain must stay in force)", err)
	}
}
