package pinbcast

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"pinbcast/internal/client"
	"pinbcast/internal/cluster"
	"pinbcast/internal/obs"
	"pinbcast/internal/transport"
)

// MultiTuner is the receiving half of a Cluster: one logical receiver
// subscribed to several broadcast Sources concurrently — one per
// channel. It merges the channels' directories, retrieves each request
// from the cheapest live channel carrying the file (per the fetch plan,
// cheapest first), and hops a request to the next live carrier when its
// channel dies. Channel health comes from a missed-slot detector on
// the fan-out seam: gaps in a channel's slot numbering and read
// timeouts accumulate toward a death threshold, and a stream error or
// EOF kills the channel outright. A request whose known carriers are
// all dead falls back to scanning every live channel, so a file the
// cluster re-admits elsewhere after a failover (Cluster.FailChannel)
// is still found — the blocks are self-identifying, whichever channel
// carries them.
//
//	mt, err := pinbcast.NewMultiTuner(srcs,
//		pinbcast.WithTunerDirectory(c.Directory()),
//		pinbcast.WithTunerHomes(c.FetchPlan()),
//		pinbcast.WithTunerRequest("traffic-00", deadline),
//	)
//	results, err := mt.Run(ctx)
//
// Deadlines are per-attachment: a hopped request's deadline clock
// restarts on the serving channel, matching the per-channel Contract
// bounds a ClusterContract composes. Like Receiver.Run, Run observes
// cancellation between slots — give TCP sources a Timeout so a silent
// channel cannot hold a drive loop forever (the timeout doubles as the
// missed-slot clock).
type MultiTuner struct {
	chans []*mtChannel
	det   *cluster.Detector

	mu        sync.Mutex
	reqs      map[string]*mtRequest
	results   []ClusterResult
	hops      int
	completed int  // finished requests by outcome; results itself may be
	failed    int  // drained by RunInto, so Metrics counts separately
	started   bool // the persistent channel drivers are running

	// Run-lifecycle plumbing, kept allocation-free per Run: the channel
	// drivers are persistent goroutines woken by a token per Run rather
	// than spawned per Run (a spawn costs a closure allocation each),
	// completion is a reusable cap-1 token channel rather than a remade
	// close-once channel, and runDone is the flag drivers poll between
	// slots to notice the run ending.
	runWG    sync.WaitGroup
	runDone  atomic.Bool
	done     chan struct{} // cap 1: a token arrives when every request completes
	shutdown chan struct{} // closed by Close: parked drivers exit
	closing  sync.Once
}

// runToken wakes one channel's persistent driver for one Run.
type runToken struct{ ctx context.Context }

// mtChannel is one subscribed channel: its source, its protocol client,
// its own reception-fault process, and its consumption counters. Each
// channel has its own lock so the K receive loops never serialize on
// one mutex in the per-slot path — the tuner-wide lock (MultiTuner.mu)
// is taken only for request bookkeeping (attach, hop, completion). The
// lock order is MultiTuner.mu before mtChannel.mu; the per-slot path
// takes mtChannel.mu alone and re-enters through MultiTuner.mu only
// after releasing it.
type mtChannel struct {
	src  Source
	wake chan runToken // cap 1: one token per Run wakes the driver

	mu       sync.Mutex
	cli      *client.Client
	fault    FaultModel
	slots    int
	injected int
	// corruptBuf is the reusable scratch an injected fault garbles into,
	// exactly as in Receiver: the shared wire payload is never mutated.
	corruptBuf []byte
	// resBuf is the scratch observe drains the client's completions
	// into, so taking a result off the protocol layer does not allocate.
	resBuf []client.Result
}

// mtRequest tracks one logical retrieval across channels.
type mtRequest struct {
	file     string
	deadline int
	order    []int // fetch plan, cheapest first; nil = scan mode
	attached []int // channels currently collecting the file
	tried    map[int]bool
	done     bool
}

// ClusterResult is a Result annotated with the channel that served it
// (-1 when the request failed on every channel).
type ClusterResult struct {
	Result
	Channel int
}

// MultiTunerMetrics counts what a multi-tuner has seen and done.
type MultiTunerMetrics struct {
	// SlotsPerChannel is the number of slots consumed from each source.
	SlotsPerChannel []int
	// Hops counts request re-attachments after channel deaths.
	Hops int
	// DeadChannels lists the channels the detector has declared dead.
	DeadChannels []int
	// Injected counts corruptions introduced by the tuner's own fault
	// models (WithTunerFaults) across all channels.
	Injected int
	// Completed and Failed count finished requests by outcome.
	Completed int
	Failed    int
}

// multiTunerConfig collects the options a MultiTuner is built from.
type multiTunerConfig struct {
	names     map[uint32]string
	homes     map[string][]int
	requests  []Request
	threshold int
	faults    []FaultModel
}

// MultiTunerOption configures a MultiTuner under construction.
type MultiTunerOption func(*multiTunerConfig) error

// WithTunerDirectory supplies the merged id→name directory
// (Cluster.Directory). Every channel's protocol client shares it, so a
// file is resolvable whichever channel its blocks arrive on.
func WithTunerDirectory(names map[uint32]string) MultiTunerOption {
	return func(c *multiTunerConfig) error {
		for id, name := range names {
			c.names[id] = name
		}
		return nil
	}
}

// WithTunerHomes supplies the fetch plan: for each file, the channels
// carrying it, cheapest first (Cluster.FetchPlan). Requests for files
// absent from the plan scan every live channel.
func WithTunerHomes(homes map[string][]int) MultiTunerOption {
	return func(c *multiTunerConfig) error {
		if c.homes == nil {
			c.homes = make(map[string][]int, len(homes))
		}
		for name, order := range homes {
			c.homes[name] = append([]int(nil), order...)
		}
		return nil
	}
}

// WithTunerRequests registers files to retrieve, with per-request
// relative deadlines in slots (0 = none), clocked per attachment on the
// serving channel.
func WithTunerRequests(reqs ...Request) MultiTunerOption {
	return func(c *multiTunerConfig) error {
		c.requests = append(c.requests, reqs...)
		return nil
	}
}

// WithTunerRequest registers one file to retrieve by the given relative
// deadline in slots (0 = none).
func WithTunerRequest(file string, deadline int) MultiTunerOption {
	return WithTunerRequests(Request{File: file, Deadline: deadline})
}

// WithTunerFaults injects one reception fault model per channel —
// independent media have independent fault processes, so stateful
// models (BurstFaultsFrom) must not be shared across channels. Slots a
// model corrupts reach the channel's protocol as garbled blocks, which
// the checksum rejects. The slice must have exactly one entry per
// source (nil entries leave that channel fault-free).
func WithTunerFaults(models ...FaultModel) MultiTunerOption {
	return func(c *multiTunerConfig) error {
		c.faults = append([]FaultModel(nil), models...)
		return nil
	}
}

// WithMissThreshold sets how many consecutive missed slots (numbering
// gaps or read timeouts) mark a channel dead (default 4).
func WithMissThreshold(n int) MultiTunerOption {
	return func(c *multiTunerConfig) error {
		if n < 1 {
			return fmt.Errorf("pinbcast: miss threshold %d < 1: %w", n, ErrBadSpec)
		}
		c.threshold = n
		return nil
	}
}

// NewMultiTuner subscribes a multi-channel tuner to one Source per
// cluster channel. The source order must match the cluster's channel
// numbering (srcs[i] carries channel i); a channel already known dead
// may be represented by a nil source.
func NewMultiTuner(srcs []Source, opts ...MultiTunerOption) (*MultiTuner, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("pinbcast: no sources: %w", ErrBadSpec)
	}
	cfg := &multiTunerConfig{names: map[uint32]string{}}
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.faults != nil && len(cfg.faults) != len(srcs) {
		return nil, fmt.Errorf("pinbcast: %d fault models for %d channels: %w",
			len(cfg.faults), len(srcs), ErrBadSpec)
	}
	mt := &MultiTuner{
		det:      cluster.NewDetector(len(srcs), cfg.threshold),
		reqs:     map[string]*mtRequest{},
		done:     make(chan struct{}, 1),
		shutdown: make(chan struct{}),
	}
	for i, src := range srcs {
		mc := &mtChannel{
			src:  src,
			wake: make(chan runToken, 1),
			cli:  client.NewSubscriber(cfg.names),
		}
		if cfg.faults != nil {
			mc.fault = cfg.faults[i]
		}
		mt.chans = append(mt.chans, mc)
		if src == nil {
			mt.det.Fail(i)
		}
	}
	for _, req := range cfg.requests {
		if err := mt.RequestVia(req.File, req.Deadline, cfg.homes[req.File]); err != nil {
			return nil, err
		}
	}
	return mt, nil
}

// Request asks for one file with a relative deadline in slots (0 =
// none), fetched in scan mode: every live channel collects it and the
// first to complete wins. Use RequestVia with a fetch plan for the
// cheapest-channel policy. Requesting a file already pending wraps
// ErrBadSpec.
func (mt *MultiTuner) Request(file string, deadline int) error {
	return mt.RequestVia(file, deadline, nil)
}

// RequestVia asks for one file with an explicit fetch plan: the
// channels carrying the file, cheapest first (one entry of
// Cluster.FetchPlan). The request attaches to the first live channel of
// the plan and hops down the plan as channels die; with the plan
// exhausted (or nil) it scans every live channel.
func (mt *MultiTuner) RequestVia(file string, deadline int, order []int) error {
	if file == "" {
		return fmt.Errorf("pinbcast: request without a file name: %w", ErrBadSpec)
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if r, dup := mt.reqs[file]; dup && !r.done {
		return fmt.Errorf("pinbcast: file %q already requested: %w", file, ErrBadSpec)
	}
	for _, ch := range order {
		if ch < 0 || ch >= len(mt.chans) {
			return fmt.Errorf("pinbcast: fetch plan for %q names channel %d of %d: %w",
				file, ch, len(mt.chans), ErrBadSpec)
		}
	}
	req := mt.reqs[file]
	if req != nil {
		// Re-request of a completed file: reuse the entry and its
		// tried set instead of reallocating per retrieval.
		clear(req.tried)
		req.deadline = deadline
		req.order = order
		req.attached = req.attached[:0]
		req.done = false
	} else {
		req = &mtRequest{file: file, deadline: deadline, order: order, tried: map[int]bool{}}
		mt.reqs[file] = req
	}
	mt.attachLocked(req)
	if len(req.attached) == 0 {
		// No live channel at all: fail immediately rather than hang.
		mt.finishLocked(req, ClusterResult{
			Result:  Result{File: file, Deadline: deadline},
			Channel: -1,
		})
	}
	return nil
}

// attachLocked attaches the request to the cheapest untried live
// channel of its plan, or — plan exhausted — to every live channel
// (scan mode). Caller holds mu.
func (mt *MultiTuner) attachLocked(req *mtRequest) {
	for _, ch := range req.order {
		if req.tried[ch] || !mt.det.Alive(ch) {
			continue
		}
		mt.attachToLocked(req, ch)
		return
	}
	for ch := range mt.chans {
		if req.tried[ch] || !mt.det.Alive(ch) {
			continue
		}
		mt.attachToLocked(req, ch)
	}
}

func (mt *MultiTuner) attachToLocked(req *mtRequest, ch int) {
	mc := mt.chans[ch]
	mc.mu.Lock()
	err := mc.cli.Add(client.Request{File: req.file, Deadline: req.deadline})
	mc.mu.Unlock()
	if err != nil {
		return // already pending there (re-request after cancel race)
	}
	req.tried[ch] = true
	req.attached = append(req.attached, ch)
}

// cancelOn withdraws a file's collection on one channel. Caller holds
// mu (the mt.mu → mc.mu order).
//
//pinlint:holds mu
func (mt *MultiTuner) cancelOn(ch int, file string) {
	mc := mt.chans[ch]
	mc.mu.Lock()
	mc.cli.Cancel(file)
	mc.mu.Unlock()
}

// finishLocked records a request's outcome and releases the other
// channels collecting it. Caller holds mu.
func (mt *MultiTuner) finishLocked(req *mtRequest, res ClusterResult) {
	if req.done {
		return
	}
	req.done = true
	for _, ch := range req.attached {
		if ch != res.Channel {
			mt.cancelOn(ch, req.file)
		}
	}
	req.attached = req.attached[:0]
	mt.results = append(mt.results, res)
	if res.Completed {
		mt.completed++
		tunCompleted.Inc()
		tunLatencySlots.Observe(uint64(res.Latency))
	} else {
		mt.failed++
		tunFailed.Inc()
	}
	for _, r := range mt.reqs {
		if !r.done {
			return
		}
	}
	// Every request is done: end the run. Drivers notice the flag at the
	// next slot boundary; the token releases the Run call itself.
	mt.runDone.Store(true)
	select {
	case mt.done <- struct{}{}:
	default:
	}
}

// Run drives every channel concurrently until each request has
// completed, the context is cancelled, or no live channel remains.
// Exactly like Receiver.Run, requests still pending when the run ends
// — whatever ended it — are flushed as failures with Channel −1: a
// cancelled context is the caller's deadline on the whole run, not a
// pause. A tuner left running accepts further Request calls (including
// re-requests of flushed files) and can be Run again.
//
// The first Run parks one persistent driver goroutine per channel;
// they stay parked between runs and are released by Close. Retrieval
// loops that must not accumulate history use RunInto instead — Run
// returns a fresh copy of the tuner's full result history each call.
func (mt *MultiTuner) Run(ctx context.Context) ([]ClusterResult, error) {
	_, err := mt.run(ctx)
	return mt.Results(), err
}

// RunInto is Run for steady-state retrieval loops: it appends only
// this run's results to dst and removes them from the tuner's history,
// so a caller that reuses dst (and hands Data buffers back with
// Recycle) retrieves indefinitely without either side accumulating —
// the loop is allocation-free once warm. Results of earlier un-drained
// runs stay in Results.
func (mt *MultiTuner) RunInto(ctx context.Context, dst []ClusterResult) ([]ClusterResult, error) {
	mark, err := mt.run(ctx)
	mt.mu.Lock()
	tail := mt.results[mark:]
	dst = append(dst, tail...)
	clear(tail) // drop the history's Data references: the caller owns them now
	mt.results = mt.results[:mark]
	mt.mu.Unlock()
	return dst, err
}

// Recycle hands a completed result's Data buffer back to the channel
// that reconstructed it, to be reused by a future retrieval. Call it
// only when finished with the result; neither it nor its Data may be
// used afterwards.
func (mt *MultiTuner) Recycle(res ClusterResult) {
	if res.Channel < 0 || res.Channel >= len(mt.chans) || res.Data == nil {
		return
	}
	mc := mt.chans[res.Channel]
	mc.mu.Lock()
	mc.cli.Recycle(res.Data)
	mc.mu.Unlock()
}

// run drives one Run to completion and returns the index of the first
// result it produced — the mark RunInto drains from.
func (mt *MultiTuner) run(ctx context.Context) (int, error) {
	mt.mu.Lock()
	mark := len(mt.results)
	pending := 0
	for _, r := range mt.reqs {
		if !r.done {
			pending++
		}
	}
	if pending == 0 {
		mt.mu.Unlock()
		return mark, nil
	}
	mt.runDone.Store(false)
	select {
	case <-mt.done: // drop a stale token left by a previous run
	default:
	}
	if !mt.started {
		mt.started = true
		for i := range mt.chans {
			if mt.chans[i].src != nil {
				go mt.driver(i)
			}
		}
	}
	woken := 0
	for i := range mt.chans {
		if mt.chans[i].src == nil || !mt.det.Alive(i) {
			continue
		}
		mt.runWG.Add(1)
		select {
		case mt.chans[i].wake <- runToken{ctx}:
			woken++
		default:
			// Unreachable by construction — the previous run's token was
			// consumed before its runWG.Wait returned — but never block
			// holding mu on a full wake buffer.
			mt.runWG.Done()
		}
	}
	mt.mu.Unlock()

	var runErr error
	if woken > 0 {
		select {
		case <-ctx.Done():
			runErr = ctx.Err()
			mt.runDone.Store(true)
		case <-mt.done:
		}
		mt.runWG.Wait()
	}

	mt.mu.Lock()
	for _, req := range mt.reqs {
		if !req.done {
			mt.finishLocked(req, ClusterResult{
				Result:  Result{File: req.file, Deadline: req.deadline},
				Channel: -1,
			})
		}
	}
	mt.mu.Unlock()
	return mark, runErr
}

// driver is one channel's persistent drive goroutine: it parks between
// runs and consumes its source for the duration of each. A dead
// channel's driver simply stays parked — run never wakes it again.
func (mt *MultiTuner) driver(ch int) {
	for {
		select {
		case <-mt.shutdown:
			return
		case tok := <-mt.chans[ch].wake:
			mt.drive(tok.ctx, ch)
			mt.runWG.Done()
		}
	}
}

// drive consumes one channel's source until the run stops, the context
// ends, or the channel dies.
func (mt *MultiTuner) drive(ctx context.Context, ch int) {
	for {
		if mt.runDone.Load() {
			return
		}
		select {
		case <-ctx.Done():
			return
		default:
		}
		slot, err := mt.chans[ch].src.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) && transport.IsTimeout(err) {
				if mt.det.Miss(ch) {
					tunMisses.Inc()
					traceRing.Emit(obs.MissDetected, ch, 0, 0, 0)
					mt.channelDied(ch)
					return
				}
				continue
			}
			// EOF or a hard receive error: the channel's stream is gone.
			mt.det.Fail(ch)
			mt.channelDied(ch)
			return
		}
		if mt.observe(ch, slot) {
			mt.channelDied(ch)
			return
		}
	}
}

// observe delivers one slot to the channel's client and reports whether
// the slot's numbering gap just killed the channel. Only the channel's
// own lock is held for the protocol work; the tuner-wide lock is taken
// after it is released, and only when a reconstruction completed.
func (mt *MultiTuner) observe(ch int, slot Slot) (died bool) {
	died = mt.det.Observe(ch, slot.T)
	mc := mt.chans[ch]
	mc.mu.Lock()
	mc.slots++
	if slot.File != "" && slot.Block != nil {
		mc.cli.Learn(slot.Block.FileID, slot.File)
	}
	payload := slot.Payload
	// The fault process is a property of the channel: it advances once
	// per transmitted block whether or not a request is pending, like
	// Receiver's injection.
	if len(payload) > 0 && mc.fault != nil && mc.fault.Corrupts(slot.T) {
		mc.corruptBuf = append(mc.corruptBuf[:0], payload...)
		payload = mc.corruptBuf
		payload[len(payload)/2] ^= 0x5a // garble so the checksum fails
		mc.injected++
		traceRing.Emit(obs.BlockCorrupted, ch, 0, uint64(slot.T), 0)
	}
	var res Result
	completed := false
	if mc.cli.Observe(slot.T, payload) == client.Completed {
		// Drain the completion off the protocol client (into reused
		// scratch) rather than copying its whole history: the tuner's
		// own bookkeeping is the single record of outcomes.
		mc.resBuf = mc.cli.TakeResults(mc.resBuf[:0])
		res = mc.resBuf[len(mc.resBuf)-1]
		completed = true
	}
	mc.mu.Unlock()
	if completed {
		mt.mu.Lock()
		if req, ok := mt.reqs[res.File]; ok && !req.done {
			mt.finishLocked(req, ClusterResult{Result: res, Channel: ch})
		}
		mt.mu.Unlock()
	}
	return died
}

// channelDied re-homes the dead channel's pending requests: each hops
// to the next live carrier of its plan (or to scan mode), and a request
// with no live channel left anywhere is flushed as a failure.
func (mt *MultiTuner) channelDied(ch int) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for _, req := range mt.reqs {
		if req.done {
			continue
		}
		attached := req.attached[:0]
		wasHere := false
		for _, a := range req.attached {
			if a == ch {
				wasHere = true
				mt.cancelOn(ch, req.file)
			} else if mt.det.Alive(a) {
				attached = append(attached, a)
			}
		}
		req.attached = attached
		if !wasHere && len(attached) > 0 {
			continue
		}
		if len(req.attached) == 0 {
			mt.hops++
			tunHops.Inc()
			traceRing.Emit(obs.ChannelHop, ch, 0, 0, 0)
			mt.attachLocked(req)
			if len(req.attached) == 0 {
				mt.finishLocked(req, ClusterResult{
					Result:  Result{File: req.file, Deadline: req.deadline},
					Channel: -1,
				})
			}
		}
	}
}

// Results returns the outcomes recorded so far, in completion order.
// Outcomes drained by RunInto are not replayed here; Metrics counts
// every outcome either way.
func (mt *MultiTuner) Results() []ClusterResult {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return append([]ClusterResult(nil), mt.results...)
}

// Pending returns the names of files still being collected, sorted.
func (mt *MultiTuner) Pending() []string {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	var out []string
	for name, req := range mt.reqs {
		if !req.done {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Done reports whether every request has completed.
func (mt *MultiTuner) Done() bool {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for _, req := range mt.reqs {
		if !req.done {
			return false
		}
	}
	return true
}

// Directory returns the merged id→name directory over every channel —
// supplied entries plus whatever each channel's stream has taught.
func (mt *MultiTuner) Directory() map[uint32]string {
	out := map[uint32]string{}
	for _, mc := range mt.chans {
		mc.mu.Lock()
		for id, name := range mc.cli.Directory() {
			out[id] = name
		}
		mc.mu.Unlock()
	}
	return out
}

// Metrics returns a snapshot of the tuner's counters.
func (mt *MultiTuner) Metrics() MultiTunerMetrics {
	m := MultiTunerMetrics{
		SlotsPerChannel: make([]int, len(mt.chans)),
		DeadChannels:    mt.det.Dead(),
	}
	for i, mc := range mt.chans {
		mc.mu.Lock()
		m.SlotsPerChannel[i] = mc.slots
		m.Injected += mc.injected
		mc.mu.Unlock()
	}
	mt.mu.Lock()
	m.Hops = mt.hops
	m.Completed = mt.completed
	m.Failed = mt.failed
	mt.mu.Unlock()
	return m
}

// Close releases every source and the parked channel drivers.
func (mt *MultiTuner) Close() error {
	mt.closing.Do(func() { close(mt.shutdown) })
	var first error
	for _, mc := range mt.chans {
		if mc.src == nil {
			continue
		}
		if err := mc.src.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
