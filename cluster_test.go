package pinbcast

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// clusterCatalog is the deterministic six-file catalog the cluster
// tests shard three ways: two hot files (replicated), one warm and
// three cool/cold files that land together on the third channel under
// the balanced policy.
func clusterCatalog() []FileSpec {
	return []FileSpec{
		{Name: "hot-a", Blocks: 2, Latency: 8, Faults: 1}, // heat 3/8
		{Name: "hot-b", Blocks: 2, Latency: 8, Faults: 1}, // heat 3/8
		{Name: "warm", Blocks: 3, Latency: 30, Faults: 1}, // heat 2/15
		{Name: "cool-a", Blocks: 4, Latency: 60, Faults: 1},
		{Name: "cool-b", Blocks: 4, Latency: 60, Faults: 1},
		{Name: "cold", Blocks: 6, Latency: 120, Faults: 1},
	}
}

func testCluster(t *testing.T, opts ...ClusterOption) *Cluster {
	t.Helper()
	files := clusterCatalog()
	base := []ClusterOption{
		WithChannels(3),
		WithReplicas(2),
		WithReplicateHottest(2),
		WithShard(BalancedShard()),
		WithClusterBandwidth(2),
		WithClusterFiles(files...),
		WithClusterContents(CatalogContents(files, 64, 1)),
	}
	c, err := NewCluster(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterPlan(t *testing.T) {
	c := testCluster(t)
	if c.Channels() != 3 || c.Replicas() != 2 || c.ShardPolicy() != ShardBalanced {
		t.Fatalf("K=%d R=%d shard=%s", c.Channels(), c.Replicas(), c.ShardPolicy())
	}
	asn := c.Assignment()
	for _, name := range []string{"hot-a", "hot-b"} {
		if !c.Replicated(name) || len(asn[name]) != 2 {
			t.Fatalf("%s homes = %v, want 2 replicas", name, asn[name])
		}
	}
	for _, name := range []string{"warm", "cool-a", "cool-b", "cold"} {
		if c.Replicated(name) || len(asn[name]) != 1 {
			t.Fatalf("%s homes = %v, want 1", name, asn[name])
		}
	}
	// Every channel serves a valid station over its own file subset.
	total := 0
	for i := 0; i < c.Channels(); i++ {
		st := c.Station(i)
		if st == nil {
			t.Fatalf("no station for channel %d", i)
		}
		total += len(st.Files())
		if st.Bandwidth() != 2 {
			t.Fatalf("channel %d bandwidth %d", i, st.Bandwidth())
		}
	}
	if total != 6+2 { // catalog plus two replicas
		t.Fatalf("stations carry %d files in total, want 8", total)
	}
	// The merged directory resolves every file of the catalog.
	dir := c.Directory()
	if len(dir) != 6 {
		t.Fatalf("merged directory has %d entries, want 6", len(dir))
	}
	if got := dir[FileID("warm")]; got != "warm" {
		t.Fatalf("directory[FileID(warm)] = %q", got)
	}
	// The fetch plan covers every file with live channels only.
	plan := c.FetchPlan()
	if len(plan) != 6 {
		t.Fatalf("fetch plan covers %d files", len(plan))
	}
	if len(plan["hot-a"]) != 2 || len(plan["cold"]) != 1 {
		t.Fatalf("fetch plan: hot-a=%v cold=%v", plan["hot-a"], plan["cold"])
	}
}

func TestClusterBuildValidation(t *testing.T) {
	files := clusterCatalog()
	cases := []struct {
		name string
		opts []ClusterOption
	}{
		{"no contents", []ClusterOption{WithChannels(2), WithClusterFiles(files...)}},
		{"zero channels", []ClusterOption{WithChannels(0)}},
		{"negative replicas", []ClusterOption{WithReplicas(0)}},
		{"unknown shard", []ClusterOption{WithShardName("mystery")}},
		{"nil shard", []ClusterOption{WithShard(nil)}},
		{"replicas over channels", []ClusterOption{
			WithChannels(2), WithReplicas(3),
			WithClusterFiles(files...), WithClusterContents(CatalogContents(files, 64, 1)),
		}},
		{"no files", []ClusterOption{WithChannels(2)}},
	}
	for _, tc := range cases {
		if _, err := NewCluster(tc.opts...); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: got %v, want ErrBadSpec", tc.name, err)
		}
	}
}

func TestShardRegistry(t *testing.T) {
	names := ShardNames()
	want := []string{ShardBalanced, ShardHash, ShardHotCold}
	if len(names) < 3 {
		t.Fatalf("ShardNames = %v", names)
	}
	for _, w := range want {
		if s, ok := LookupShard(w); !ok || s.Name() != w {
			t.Fatalf("LookupShard(%q) = %v, %v", w, s, ok)
		}
	}
	if err := RegisterShard(HashShard()); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("duplicate RegisterShard: %v", err)
	}
}

func TestClusterNegotiateComposition(t *testing.T) {
	c := testCluster(t)
	// Single replicated read: the analytic window bound B·T = 2·8 = 16
	// on either replica.
	ca, err := c.Negotiate(Txn{Name: "trip-a", Reads: []string{"hot-a"}, Deadline: 100})
	if err != nil {
		t.Fatal(err)
	}
	if ca.WorstLatencySlots != 16 || ca.DegradedLatencySlots != 16 {
		t.Fatalf("hot-a contract = %+v, want 16/16", ca)
	}
	// A replicated read is defended on every carrier, not just the best
	// replica — the degraded bound is only as strong as the worst one.
	if len(ca.PerChannel) != 2 {
		t.Fatalf("hot-a registrations = %v, want both replica channels", ca.PerChannel)
	}
	// Multi-read transaction across channels: bounded by the slowest
	// read's best replica (warm: 2·30 = 60), with one per-channel
	// contract per primary group.
	tour, err := c.Negotiate(Txn{Name: "tour", Reads: []string{"hot-a", "warm"}, Deadline: 200})
	if err != nil {
		t.Fatal(err)
	}
	if tour.WorstLatencySlots != 60 || tour.DegradedLatencySlots != 60 {
		t.Fatalf("tour contract = %+v, want 60/60", tour)
	}
	if len(tour.PerChannel) != 2 {
		t.Fatalf("tour groups = %v, want 2 channels", tour.PerChannel)
	}
	for ch, ct := range tour.PerChannel {
		if ct.Name != "tour" {
			t.Fatalf("channel %d contract named %q", ch, ct.Name)
		}
		found := false
		for _, sc := range c.Station(ch).Contracts() {
			if sc.Name == "tour" {
				found = true
			}
		}
		if !found {
			t.Fatalf("channel %d station does not enforce the tour group", ch)
		}
	}
	// Duplicate and unknown rejections.
	if _, err := c.Negotiate(Txn{Name: "tour", Reads: []string{"cold"}, Deadline: 500}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := c.Negotiate(Txn{Name: "x", Reads: []string{"nope"}, Deadline: 500}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown read: %v", err)
	}
	// Unmeetable deadline leaves everything untouched.
	before := len(c.Contracts())
	if _, err := c.Negotiate(Txn{Name: "fast", Reads: []string{"warm"}, Deadline: 10}); !errors.Is(err, ErrAdmission) {
		t.Fatalf("tight deadline: %v", err)
	}
	if len(c.Contracts()) != before {
		t.Fatal("rejected negotiation changed the contract set")
	}
	// Release frees the name and the per-channel registrations.
	if err := c.Release("tour"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Contract("tour"); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("released contract still known: %v", err)
	}
	for ch := range tour.PerChannel {
		for _, sc := range c.Station(ch).Contracts() {
			if sc.Name == "tour" {
				t.Fatalf("channel %d still enforces released tour", ch)
			}
		}
	}
}

// TestClusterKillChannelE2E is the acceptance kill test: K=3, R=2 over
// the real TCP fan-out seam. One channel is killed mid-broadcast; every
// replicated request stays retrievable by the MultiTuner within its
// contracted (degraded) latency bound, and the dead channel's
// un-replicated files are re-admitted onto survivors at their next
// data-cycle boundaries (contracts re-verified) and retrieved from
// their new homes.
func TestClusterKillChannelE2E(t *testing.T) {
	c := testCluster(t, WithStationOptions(
		WithSlotInterval(50*time.Microsecond),
		WithSlotBuffer(256),
	))

	// Contracts before the failure: two replicated reads and the warm
	// file that lives only on the channel we will kill.
	ca, err := c.Negotiate(Txn{Name: "trip-a", Reads: []string{"hot-a"}, Deadline: 100})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := c.Negotiate(Txn{Name: "trip-b", Reads: []string{"hot-b"}, Deadline: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Negotiate(Txn{Name: "watch", Reads: []string{"warm"}, Deadline: 200}); err != nil {
		t.Fatal(err)
	}

	// One TCP fan-out per channel.
	fans := make([]Sink, c.Channels())
	addrs := make([]string, c.Channels())
	for i := range fans {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fan := NewFanout(ln, 0)
		defer fan.Close()
		fans[i] = fan
		addrs[i] = fan.Addr().String()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	broadcastDone := make(chan error, 1)
	go func() { broadcastDone <- c.Broadcast(ctx, fans...) }()

	// The multi-tuner subscribes to all three channels.
	srcs := make([]Source, c.Channels())
	for i := range srcs {
		src, err := DialSource(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		src.Timeout = 100 * time.Millisecond
		src.Reuse = true
		srcs[i] = src
	}
	stalePlan := c.FetchPlan() // the pre-failure view a real tuner would hold
	mt, err := NewMultiTuner(srcs,
		WithTunerDirectory(c.Directory()),
		WithTunerHomes(stalePlan),
		WithTunerRequest("hot-a", ca.DegradedLatencySlots),
		WithTunerRequest("hot-b", cb.DegradedLatencySlots),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()

	// Phase 1: normal operation — both replicated files arrive within
	// their contracted bounds.
	results, err := mt.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !res.Completed || !res.DeadlineMet {
			t.Fatalf("pre-kill request %q: %+v", res.File, res)
		}
	}

	// Find the channel that alone carries the un-replicated files.
	warmHome := stalePlan["warm"][0]
	survivor := c.Station((warmHome + 1) % 3)
	preGen := make([]int, c.Channels())
	for i := 0; i < c.Channels(); i++ {
		preGen[i] = c.Station(i).Generation()
	}

	// Kill it mid-broadcast and fail it over.
	rep, err := c.FailChannel(warmHome)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 0 {
		t.Fatalf("unexpected lost files: %v", rep.Lost)
	}
	for _, name := range []string{"warm", "cool-a", "cool-b", "cold"} {
		ch, ok := rep.Readmitted[name]
		if !ok {
			t.Fatalf("%s not re-admitted (report %+v)", name, rep)
		}
		if ch == warmHome {
			t.Fatalf("%s re-admitted to the dead channel", name)
		}
	}
	if len(rep.Kept) != 3 || len(rep.Revoked) != 0 {
		t.Fatalf("contracts kept=%v revoked=%v, want all three kept", rep.Kept, rep.Revoked)
	}
	cw, err := c.Contract("watch")
	if err != nil {
		t.Fatalf("watch contract should have been re-verified: %v", err)
	}
	// The kept contract's enforcement followed its read to the
	// re-admitted channel.
	if _, ok := cw.PerChannel[rep.Readmitted["warm"]]; !ok {
		t.Fatalf("watch not re-registered on warm's new home %d: %v",
			rep.Readmitted["warm"], cw.PerChannel)
	}

	// The re-admissions land at the survivors' next data-cycle
	// boundaries: their generations swap and the files go on air.
	waitFor := func(name string, ch int) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			files := c.Station(ch).Files()
			for _, f := range files {
				if f.Name == name {
					if c.Station(ch).Generation() == preGen[ch] {
						t.Fatalf("%s on channel %d without a generation swap", name, ch)
					}
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s not on air on channel %d within one data cycle (files %v)", name, ch, files)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for _, name := range []string{"warm", "cool-a", "cool-b", "cold"} {
		waitFor(name, rep.Readmitted[name])
	}
	_ = survivor

	// Phase 2: retrieval under failure, through the *stale* fetch plan,
	// with hot-a requested dead-channel-first. Frames the dead channel
	// transmitted before the kill are legitimately still on the wire
	// (TCP backlog), so early retrievals may complete from them —
	// within the contracted bound, like any broadcast slots. Once the
	// backlog runs dry the missed-slot detector declares the channel
	// dead and the request hops to the surviving replica.
	hotPlan := []int{warmHome}
	for _, ch := range stalePlan["hot-a"] {
		if ch != warmHome {
			hotPlan = append(hotPlan, ch)
		}
	}
	runCtx, runCancel := context.WithTimeout(ctx, 60*time.Second)
	defer runCancel()
	hopped := false
	for round := 0; round < 500 && !hopped; round++ {
		if err := mt.RequestVia("hot-a", ca.DegradedLatencySlots, hotPlan); err != nil {
			t.Fatal(err)
		}
		results, err = mt.Run(runCtx)
		if err != nil {
			t.Fatal(err)
		}
		res := results[len(results)-1]
		if res.File != "hot-a" || !res.Completed || !res.DeadlineMet {
			t.Fatalf("post-kill hot-a round %d not retrieved in time: %+v", round, res)
		}
		if res.Latency > ca.DegradedLatencySlots {
			t.Fatalf("post-kill hot-a latency %d exceeds contracted bound %d",
				res.Latency, ca.DegradedLatencySlots)
		}
		hopped = res.Channel != warmHome
	}
	if !hopped {
		t.Fatal("hot-a never hopped off the dead channel")
	}

	// The other replicated file, through its own (live-first) plan.
	if err := mt.RequestVia("hot-b", cb.DegradedLatencySlots, stalePlan["hot-b"]); err != nil {
		t.Fatal(err)
	}
	results, err = mt.Run(runCtx)
	if err != nil {
		t.Fatal(err)
	}
	if res := results[len(results)-1]; res.File != "hot-b" || !res.Completed || !res.DeadlineMet ||
		res.Latency > cb.DegradedLatencySlots || res.Channel == warmHome {
		t.Fatalf("post-kill hot-b: %+v (bound %d)", res, cb.DegradedLatencySlots)
	}

	// warm's only planned home is dead (and now detected dead, so the
	// stale plan is exhausted immediately): the tuner must find its
	// re-admitted copy by scanning the survivors.
	if err := mt.RequestVia("warm", 0, stalePlan["warm"]); err != nil {
		t.Fatal(err)
	}
	results, err = mt.Run(runCtx)
	if err != nil {
		t.Fatal(err)
	}
	warmRes := results[len(results)-1]
	if warmRes.File != "warm" || !warmRes.Completed || warmRes.Channel != rep.Readmitted["warm"] {
		t.Fatalf("warm not retrieved from its re-admitted home: %+v (want channel %d)",
			warmRes, rep.Readmitted["warm"])
	}
	m := mt.Metrics()
	if m.Hops == 0 {
		t.Fatalf("expected at least one channel hop, metrics %+v", m)
	}
	deadSeen := false
	for _, ch := range m.DeadChannels {
		if ch == warmHome {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Fatalf("missed-slot detector never declared channel %d dead: %+v", warmHome, m)
	}

	cancel()
	if err := <-broadcastDone; err != nil {
		t.Fatalf("broadcast: %v", err)
	}
}

// TestClusterFailoverLossAndRevocation drives the degraded path
// in-process: an un-replicated file whose only channel dies cannot be
// re-admitted (the survivor has no density headroom), so it is lost and
// its contract is revoked with ErrDegraded, while the replicated file's
// contract is re-verified and kept.
func TestClusterFailoverLossAndRevocation(t *testing.T) {
	files := []FileSpec{
		{Name: "big-a", Blocks: 5, Latency: 10},
		{Name: "big-b", Blocks: 5, Latency: 10},
	}
	c, err := NewCluster(
		WithChannels(2),
		WithReplicateHottest(1), // big-a replicated on both channels
		WithShard(BalancedShard()),
		WithClusterFiles(files...),
		WithClusterContents(CatalogContents(files, 32, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := c.Negotiate(Txn{Name: "keep", Reads: []string{"big-a"}, Deadline: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Negotiate(Txn{Name: "watch-b", Reads: []string{"big-b"}, Deadline: 100}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := c.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []Source{SlotSource(slots[0]), SlotSource(slots[1])}
	plan := c.FetchPlan()
	mt, err := NewMultiTuner(srcs, WithTunerDirectory(c.Directory()), WithTunerHomes(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()

	bHome := plan["big-b"][0]
	rep, err := c.FailChannel(bHome)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 1 || rep.Lost[0] != "big-b" {
		t.Fatalf("lost = %v, want [big-b]", rep.Lost)
	}
	if len(rep.Revoked) != 1 || rep.Revoked[0] != "watch-b" {
		t.Fatalf("revoked = %v, want [watch-b]", rep.Revoked)
	}
	if len(rep.Kept) != 1 || rep.Kept[0] != "keep" {
		t.Fatalf("kept = %v, want [keep]", rep.Kept)
	}
	if _, err := c.Contract("watch-b"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("watch-b contract: %v, want ErrDegraded", err)
	}
	if _, err := c.Contract("keep"); err != nil {
		t.Fatalf("keep contract: %v", err)
	}
	if lostErr := c.Lost()["big-b"]; !errors.Is(lostErr, ErrDegraded) {
		t.Fatalf("Lost[big-b] = %v, want ErrDegraded", lostErr)
	}
	if _, ok := c.Assignment()["big-b"]; ok {
		t.Fatal("lost file still in the assignment")
	}
	if _, err := c.Negotiate(Txn{Name: "late", Reads: []string{"big-b"}, Deadline: 100}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("negotiating a lost read: %v, want ErrDegraded", err)
	}
	// Double-failing wraps ErrBadSpec.
	if _, err := c.FailChannel(bHome); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("double fail: %v", err)
	}

	// The replicated file is still retrievable from the survivor; the
	// dead channel's slot stream has closed, so its drive sees EOF and
	// the detector reports the death.
	if err := mt.RequestVia("big-a", keep.DegradedLatencySlots, []int{bHome, 1 - bHome}); err != nil {
		t.Fatal(err)
	}
	runCtx, runCancel := context.WithTimeout(ctx, 10*time.Second)
	defer runCancel()
	results, err := mt.Run(runCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Completed || results[0].Channel != 1-bHome {
		t.Fatalf("big-a retrieval: %+v", results)
	}
	if results[0].Latency > keep.DegradedLatencySlots {
		t.Fatalf("big-a latency %d exceeds degraded bound %d", results[0].Latency, keep.DegradedLatencySlots)
	}

	// A request for the lost file fails cleanly when the context ends.
	if err := mt.Request("big-b", 0); err != nil {
		t.Fatal(err)
	}
	lostCtx, lostCancel := context.WithTimeout(ctx, 500*time.Millisecond)
	defer lostCancel()
	results, runErr := mt.Run(lostCtx)
	if !errors.Is(runErr, context.DeadlineExceeded) {
		t.Fatalf("lost-file run: %v", runErr)
	}
	found := false
	for _, res := range results {
		if res.File == "big-b" {
			found = true
			if res.Completed || res.Channel != -1 {
				t.Fatalf("lost file completed impossibly: %+v", res)
			}
		}
	}
	if !found {
		t.Fatal("lost-file request was not flushed as a failure")
	}
}
