// Command pinlint runs the codebase's custom static analyzer suite
// (internal/analyzers) over the given packages:
//
//	go run ./cmd/pinlint ./...
//
// It mechanically enforces the invariants the benchmarks and reviews
// established by convention: zero-allocation hot paths (hotpath),
// injected randomness (norand), mutex-guarded field access (lockcheck),
// mutation only at data-cycle boundaries (cycleboundary), and typed
// sentinel wrapping with %w / errors.Is (errwrap).
//
// Exit status: 0 when clean, 1 when any diagnostic is reported, 2 on
// usage or load errors. CI runs pinlint as a required lint step.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pinbcast/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("pinlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzers and exit")
	verbose := flags.Bool("v", false, "report the packages and analyzers as they run")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: pinlint [-list] [-v] [packages]\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "pinlint:", err)
		return 2
	}
	pkgs, index, err := analyzers.LoadAndIndex(wd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "pinlint:", err)
		return 2
	}
	bad := false
	for _, pkg := range pkgs {
		for _, a := range analyzers.All() {
			if *verbose {
				fmt.Fprintf(stderr, "pinlint: %s %s\n", a.Name, pkg.PkgPath)
			}
			diags, err := analyzers.Run(a, pkg, index)
			if err != nil {
				fmt.Fprintln(stderr, "pinlint:", err)
				return 2
			}
			for _, d := range diags {
				bad = true
				fmt.Fprintf(stdout, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			}
		}
	}
	if bad {
		return 1
	}
	return 0
}
