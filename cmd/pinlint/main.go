// Command pinlint runs the codebase's custom static analyzer suite
// (internal/analyzers) over the given packages:
//
//	go run ./cmd/pinlint ./...
//
// It mechanically enforces the invariants the benchmarks and reviews
// established by convention: zero-allocation hot paths (hotpath,
// cross-checked against the compiler's escape analysis by allocprove),
// injected randomness (norand), mutex-guarded field access (lockcheck),
// deadlock-free lock ordering (lockorder), stoppable goroutines
// (goroleak), mutation only at data-cycle boundaries (cycleboundary),
// and typed sentinel wrapping with %w / errors.Is (errwrap).
//
// Flags: -list prints the analyzer inventory; -json emits diagnostics
// as one JSON object per line for tooling; -escapes prints the
// module-wide heap-escape report (every compiler escape diagnostic in
// packages containing hotpath annotations, hottest first) instead of
// running the suite.
//
// Exit status: 0 when clean, 1 when any diagnostic is reported, 2 on
// usage or load errors. CI runs pinlint as a required lint step.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pinbcast/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the machine-readable form of one diagnostic, one object
// per output line (JSON Lines), stable for CI problem matchers.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("pinlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzers and exit")
	verbose := flags.Bool("v", false, "report the packages and analyzers as they run")
	asJSON := flags.Bool("json", false, "emit diagnostics as JSON Lines")
	escapes := flags.Bool("escapes", false, "print the module-wide heap-escape report and exit")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: pinlint [-list] [-v] [-json] [-escapes] [packages]\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "pinlint:", err)
		return 2
	}
	pkgs, index, err := analyzers.LoadAndIndex(wd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "pinlint:", err)
		return 2
	}
	if *escapes {
		return escapeReport(pkgs, index, stdout, stderr)
	}
	enc := json.NewEncoder(stdout)
	bad := false
	for _, pkg := range pkgs {
		for _, a := range analyzers.All() {
			if *verbose {
				fmt.Fprintf(stderr, "pinlint: %s %s\n", a.Name, pkg.PkgPath)
			}
			diags, err := analyzers.Run(a, pkg, index)
			if err != nil {
				fmt.Fprintln(stderr, "pinlint:", err)
				return 2
			}
			for _, d := range diags {
				bad = true
				pos := pkg.Fset.Position(d.Pos)
				if *asJSON {
					enc.Encode(jsonDiag{
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: d.Analyzer,
						Message:  d.Message,
					})
					continue
				}
				fmt.Fprintf(stdout, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
			}
		}
	}
	if bad {
		return 1
	}
	return 0
}

// escapeReport prints every compiler escape site in packages that carry
// hotpath annotations, ranked: sites inside hotpath functions first
// (these are lint failures unless waived), then the rest of the
// retrieval path ordered by position. It is the allocation hunt's map.
func escapeReport(pkgs []*analyzers.Package, index *analyzers.Index, stdout, stderr io.Writer) int {
	var hot, cold []analyzers.EscapeSite
	for _, pkg := range pkgs {
		if !index.HasHotPath(pkg) {
			continue
		}
		sites, err := analyzers.EscapeSites(pkg, index)
		if err != nil {
			fmt.Fprintln(stderr, "pinlint:", err)
			return 2
		}
		for _, s := range sites {
			if s.Hot {
				hot = append(hot, s)
			} else {
				cold = append(cold, s)
			}
		}
	}
	print := func(label string, sites []analyzers.EscapeSite) {
		for _, s := range sites {
			fn := s.Func
			if fn == "" {
				fn = "(file scope)"
			}
			fmt.Fprintf(stdout, "%s %s:%d:%d: %s: %s\n", label, s.File, s.Line, s.Col, fn, s.Msg)
		}
	}
	print("HOT ", hot)
	print("cold", cold)
	return 0
}
