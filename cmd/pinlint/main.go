// Command pinlint runs the codebase's custom static analyzer suite
// (internal/analyzers) over the given packages:
//
//	go run ./cmd/pinlint ./...
//
// It mechanically enforces the invariants the benchmarks and reviews
// established by convention: zero-allocation hot paths (hotpath,
// cross-checked against the compiler's escape analysis by allocprove),
// injected randomness (norand), mutex-guarded field access (lockcheck),
// deadlock-free lock ordering (lockorder), stoppable goroutines
// (goroleak), mutation only at data-cycle boundaries (cycleboundary),
// typed sentinel wrapping with %w / errors.Is (errwrap), the channel
// close/ownership protocol (chansafe), cancellation gates on blocking
// operations reachable from long-running entry points (cancelflow),
// checked schedule-quantity arithmetic (slotmath), and justified,
// live //pinlint:allow waivers (waiverlint).
//
// Flags: -list prints the analyzer inventory; -json emits diagnostics
// as one JSON object per line for tooling; -sarif emits a SARIF 2.1.0
// document for GitHub code-scanning upload; -waivers prints the
// //pinlint:allow waiver inventory (file, line, analyzers, and
// justification — the suppression debt, kept honest by waiverlint);
// -escapes prints the module-wide heap-escape report (every compiler
// escape diagnostic in packages containing hotpath annotations,
// hottest first) instead of running the suite.
//
// Exit status: 0 when clean, 1 when any diagnostic is reported, 2 on
// usage or load errors. CI runs pinlint as a required lint step.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pinbcast/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the machine-readable form of one diagnostic, one object
// per output line (JSON Lines), stable for CI problem matchers.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("pinlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzers and exit")
	verbose := flags.Bool("v", false, "report the packages and analyzers as they run")
	asJSON := flags.Bool("json", false, "emit diagnostics as JSON Lines")
	asSARIF := flags.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 document")
	waivers := flags.Bool("waivers", false, "print the //pinlint:allow waiver inventory and exit")
	escapes := flags.Bool("escapes", false, "print the module-wide heap-escape report and exit")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: pinlint [-list] [-v] [-json] [-sarif] [-waivers] [-escapes] [packages]\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "pinlint:", err)
		return 2
	}
	pkgs, index, err := analyzers.LoadAndIndex(wd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "pinlint:", err)
		return 2
	}
	if *escapes {
		return escapeReport(pkgs, index, stdout, stderr)
	}
	root := moduleRoot(wd)
	if *waivers {
		return waiverReport(pkgs, root, stdout)
	}
	enc := json.NewEncoder(stdout)
	bad := false
	var results []sarifResult
	for _, pkg := range pkgs {
		for _, a := range analyzers.All() {
			if *verbose {
				fmt.Fprintf(stderr, "pinlint: %s %s\n", a.Name, pkg.PkgPath)
			}
			diags, err := analyzers.Run(a, pkg, index)
			if err != nil {
				fmt.Fprintln(stderr, "pinlint:", err)
				return 2
			}
			for _, d := range diags {
				bad = true
				pos := pkg.Fset.Position(d.Pos)
				switch {
				case *asSARIF:
					results = append(results, sarifResult{
						RuleID:  d.Analyzer,
						Level:   "error",
						Message: sarifText{Text: d.Message},
						Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
							ArtifactLocation: sarifArtifact{URI: relURI(root, pos.Filename), URIBaseID: "%SRCROOT%"},
							Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
						}}},
					})
				case *asJSON:
					enc.Encode(jsonDiag{
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: d.Analyzer,
						Message:  d.Message,
					})
				default:
					fmt.Fprintf(stdout, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
				}
			}
		}
	}
	if *asSARIF {
		if err := writeSARIF(stdout, results); err != nil {
			fmt.Fprintln(stderr, "pinlint:", err)
			return 2
		}
	}
	if bad {
		return 1
	}
	return 0
}

// The sarif* types model the subset of SARIF 2.1.0 that GitHub code
// scanning consumes: one run, one rule per analyzer, one result per
// diagnostic, file URIs relative to the source root.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF emits the suite's diagnostics as one SARIF run, with the
// full analyzer inventory as the rule table (results may be empty; the
// rules are the tool's contract).
func writeSARIF(stdout io.Writer, results []sarifResult) error {
	var rules []sarifRule
	for _, a := range analyzers.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	if results == nil {
		results = []sarifResult{}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pinlint", Rules: rules}},
			Results: results,
		}},
	})
}

// moduleRoot walks up from dir to the directory holding go.mod, so
// report paths are relative to the checkout no matter where pinlint
// runs from. Falls back to dir outside any module.
func moduleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// relURI renders a diagnostic's file path relative to the module root
// with forward slashes — the form code scanning matches against the
// checkout.
func relURI(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return filepath.ToSlash(file)
}

// waiverReport prints the //pinlint:allow inventory: every suppression
// in the loaded packages with its analyzers and justification. Always
// exits 0 — stale or unjustified waivers fail the suite itself, via
// waiverlint.
func waiverReport(pkgs []*analyzers.Package, wd string, stdout io.Writer) int {
	n := 0
	for _, pkg := range pkgs {
		for _, w := range analyzers.PackageWaivers(pkg) {
			names := "all"
			if len(w.Analyzers) > 0 {
				names = strings.Join(w.Analyzers, ",")
			}
			just := w.Justification
			if just == "" {
				just = "(no justification)"
			}
			fmt.Fprintf(stdout, "%s:%d: %s — %s\n", relURI(wd, w.File), w.Line, names, just)
			n++
		}
	}
	fmt.Fprintf(stdout, "%d waivers\n", n)
	return 0
}

// escapeReport prints every compiler escape site in packages that carry
// hotpath annotations, ranked: sites inside hotpath functions first
// (these are lint failures unless waived), then the rest of the
// retrieval path ordered by position. It is the allocation hunt's map.
func escapeReport(pkgs []*analyzers.Package, index *analyzers.Index, stdout, stderr io.Writer) int {
	var hot, cold []analyzers.EscapeSite
	for _, pkg := range pkgs {
		if !index.HasHotPath(pkg) {
			continue
		}
		sites, err := analyzers.EscapeSites(pkg, index)
		if err != nil {
			fmt.Fprintln(stderr, "pinlint:", err)
			return 2
		}
		for _, s := range sites {
			if s.Hot {
				hot = append(hot, s)
			} else {
				cold = append(cold, s)
			}
		}
	}
	print := func(label string, sites []analyzers.EscapeSite) {
		for _, s := range sites {
			fn := s.Func
			if fn == "" {
				fn = "(file scope)"
			}
			fmt.Fprintf(stdout, "%s %s:%d:%d: %s: %s\n", label, s.File, s.Line, s.Col, fn, s.Msg)
		}
	}
	print("HOT ", hot)
	print("cold", cold)
	return 0
}
