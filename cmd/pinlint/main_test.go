package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestKnownBadFixture smokes the multichecker end to end: the bad
// fixture packages must produce diagnostics and exit status 1.
func TestKnownBadFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"pinbcast/internal/analyzers/testdata/src/hotpathbad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "hotpath") {
		t.Errorf("diagnostics missing hotpath findings:\n%s", stdout.String())
	}
}

// TestRealTreeClean asserts the analyzers pass on the actual module —
// the invariant CI enforces.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"pinbcast/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("pinlint on the real tree: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestListFlag keeps the -list inventory in sync with the suite.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, name := range []string{"hotpath", "norand", "lockcheck", "cycleboundary", "errwrap"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
