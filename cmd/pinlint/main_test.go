package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestKnownBadFixture smokes the multichecker end to end: the bad
// fixture packages must produce diagnostics and exit status 1.
func TestKnownBadFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"pinbcast/internal/analyzers/testdata/src/hotpathbad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "hotpath") {
		t.Errorf("diagnostics missing hotpath findings:\n%s", stdout.String())
	}
}

// TestRealTreeClean asserts the analyzers pass on the actual module —
// the invariant CI enforces.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"pinbcast/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("pinlint on the real tree: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestListFlag keeps the -list inventory in sync with the suite.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, name := range []string{"hotpath", "allocprove", "norand", "lockcheck", "lockorder", "goroleak", "cycleboundary", "errwrap", "chansafe", "cancelflow", "slotmath", "waiverlint"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestJSONOutput pins the -json line format tooling depends on: one
// object per diagnostic with file/line/col/analyzer/message.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "pinbcast/internal/analyzers/testdata/src/norandbad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON diagnostics emitted")
	}
	for _, line := range lines {
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %q", line)
		}
	}
}

// TestSARIFOutput pins the -sarif document shape code scanning
// ingests: version 2.1.0, the pinlint driver with the full rule
// inventory, and one result per diagnostic with a relative file URI.
func TestSARIFOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sarif", "pinbcast/internal/analyzers/testdata/src/norandbad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var log sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("bad SARIF document: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q with %d runs, want 2.1.0 with 1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "pinlint" {
		t.Errorf("driver name = %q, want pinlint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(analyzerNames(t)) {
		t.Errorf("rule table has %d entries, want %d", len(run.Tool.Driver.Rules), len(analyzerNames(t)))
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for the bad fixture")
	}
	for _, r := range run.Results {
		if r.RuleID != "norand" {
			t.Errorf("ruleId = %q, want norand", r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.HasPrefix(uri, "/") || strings.Contains(uri, `\`) {
			t.Errorf("URI %q is not a relative slash path", uri)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result missing a start line: %+v", r)
		}
	}
}

func analyzerNames(t *testing.T) []string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	return strings.Split(strings.TrimSpace(stdout.String()), "\n")
}

// TestSARIFClean pins the clean-tree shape: an empty (non-null)
// results array, so the upload step always has a valid document.
func TestSARIFClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sarif", "pinbcast/internal/analyzers/testdata/src/norandgood"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"results": []`) {
		t.Errorf("clean run must serialize an empty results array:\n%s", stdout.String())
	}
}

// TestWaiverReport smokes -waivers: the inventory lists each waiver
// with its analyzers and justification, then a count.
func TestWaiverReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-waivers", "pinbcast/internal/analyzers/testdata/src/waiverlintgood"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "norand") || !strings.Contains(out, "fixture jitter need not be reproducible") {
		t.Errorf("inventory missing a waiver's analyzers or justification:\n%s", out)
	}
	if !strings.Contains(out, "2 waivers") {
		t.Errorf("inventory missing the count:\n%s", out)
	}
}

// TestEscapeReport smokes -escapes: the bad fixture has escapes both
// inside and outside hotpath functions, so both ranks must appear.
func TestEscapeReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-escapes", "pinbcast/internal/analyzers/testdata/src/allocprovebad"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "HOT ") || !strings.Contains(out, "cold") {
		t.Errorf("escape report missing a rank:\n%s", out)
	}
	if hot := strings.Index(out, "HOT "); hot > strings.Index(out, "cold") {
		t.Errorf("hot sites must rank above cold ones:\n%s", out)
	}
}
