package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestKnownBadFixture smokes the multichecker end to end: the bad
// fixture packages must produce diagnostics and exit status 1.
func TestKnownBadFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"pinbcast/internal/analyzers/testdata/src/hotpathbad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "hotpath") {
		t.Errorf("diagnostics missing hotpath findings:\n%s", stdout.String())
	}
}

// TestRealTreeClean asserts the analyzers pass on the actual module —
// the invariant CI enforces.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"pinbcast/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("pinlint on the real tree: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestListFlag keeps the -list inventory in sync with the suite.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, name := range []string{"hotpath", "allocprove", "norand", "lockcheck", "lockorder", "goroleak", "cycleboundary", "errwrap"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestJSONOutput pins the -json line format tooling depends on: one
// object per diagnostic with file/line/col/analyzer/message.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "pinbcast/internal/analyzers/testdata/src/norandbad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON diagnostics emitted")
	}
	for _, line := range lines {
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %q", line)
		}
	}
}

// TestEscapeReport smokes -escapes: the bad fixture has escapes both
// inside and outside hotpath functions, so both ranks must appear.
func TestEscapeReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-escapes", "pinbcast/internal/analyzers/testdata/src/allocprovebad"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "HOT ") || !strings.Contains(out, "cold") {
		t.Errorf("escape report missing a rank:\n%s", out)
	}
	if hot := strings.Index(out, "HOT "); hot > strings.Index(out, "cold") {
		t.Errorf("hot sites must rank above cold ones:\n%s", out)
	}
}
