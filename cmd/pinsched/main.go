// Command pinsched schedules a pinwheel task system given as a/b pairs
// and prints the verified schedule. Schedulers come from the pinbcast
// scheduler registry.
//
// Usage:
//
//	pinsched 1/2 1/3
//	pinsched -scheduler sa 1/4 2/8
//
// Each argument a/b is a task requiring at least a slots of every b
// consecutive slots.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pinbcast"
)

func main() {
	scheduler := flag.String("scheduler", pinbcast.SchedulerPortfolio,
		"scheduler to use (registered: "+strings.Join(pinbcast.SchedulerNames(), ", ")+")")
	flag.Parse()

	sys, err := parseTasks(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pinsched:", err)
		fmt.Fprintln(os.Stderr, "usage: pinsched [-scheduler name] a/b [a/b ...]")
		os.Exit(2)
	}
	sched, ok := pinbcast.LookupScheduler(strings.ToLower(*scheduler))
	if !ok {
		fmt.Fprintf(os.Stderr, "pinsched: unknown scheduler %q (registered: %s)\n",
			*scheduler, strings.Join(pinbcast.SchedulerNames(), ", "))
		os.Exit(2)
	}

	fmt.Printf("system:  %s\n", sys)
	fmt.Printf("density: %.4f (Chan–Chin 7/10 test: %v)\n", sys.Density(), pinbcast.DensityTestCC(sys))
	sch, err := sched.Schedule(sys)
	if err != nil {
		if errors.Is(err, pinbcast.ErrInfeasible) {
			fmt.Println("result:  infeasible (proved)")
			return
		}
		fmt.Fprintln(os.Stderr, "pinsched:", err)
		os.Exit(1)
	}
	if err := sch.Verify(sys); err != nil {
		fmt.Fprintln(os.Stderr, "pinsched: internal error: invalid schedule:", err)
		os.Exit(1)
	}
	fmt.Printf("result:  schedulable by %s, period %d\n", sch.Origin, sch.Period)
	fmt.Printf("schedule: %s\n", sch)
	for i := range sys {
		fmt.Printf("  task %d %s: %d grants/period, max gap %d\n",
			i+1, sys[i], sch.GrantCount(i), sch.MaxGap(i))
	}
}

func parseTasks(args []string) (pinbcast.TaskSystem, error) {
	if len(args) == 0 {
		return nil, errors.New("no tasks given")
	}
	sys := make(pinbcast.TaskSystem, 0, len(args))
	for _, arg := range args {
		parts := strings.Split(arg, "/")
		if len(parts) != 2 {
			return nil, fmt.Errorf("task %q is not of the form a/b", arg)
		}
		a, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("task %q: %w", arg, err)
		}
		b, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("task %q: %w", arg, err)
		}
		sys = append(sys, pinbcast.Task{A: a, B: b})
	}
	return sys, sys.Validate()
}
