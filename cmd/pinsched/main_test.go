package main

import "testing"

func TestParseTasks(t *testing.T) {
	sys, err := parseTasks([]string{"1/2", "2/5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys) != 2 || sys[0].A != 1 || sys[0].B != 2 || sys[1].A != 2 || sys[1].B != 5 {
		t.Fatalf("parsed %v", sys)
	}
}

func TestParseTasksErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"12"},
		{"a/2"},
		{"1/b"},
		{"1/2/3"},
		{"3/2"}, // A > B fails validation
		{"0/2"},
	}
	for _, args := range cases {
		if _, err := parseTasks(args); err == nil {
			t.Errorf("parseTasks(%v) accepted", args)
		}
	}
}
