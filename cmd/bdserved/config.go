package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Config is bdserved's runtime configuration, loaded from a
// TOML-subset file. Zero values select the documented defaults.
type Config struct {
	// [station]
	Files        int           // synthetic catalog size
	Faults       int           // designed per-retrieval fault tolerance r
	Seed         int64         // workload seed
	BlockSize    int           // bytes per catalog file block
	SlotInterval time.Duration // broadcast slot pacing
	Channels     int           // 1 = single station, >1 = cluster of K channels
	Replicas     int           // R-way replication of the hottest files (cluster)
	Shard        string        // shard policy name (cluster)

	// [listen]
	Data string // TCP fan-out address; cluster channels listen on consecutive ports (port 0 = all ephemeral)
	Ops  string // HTTP ops address (/metrics, /debug/vars, /debug/pprof)

	// [drain]
	Timeout time.Duration // hard deadline for the SIGTERM data-cycle drain
}

// DefaultConfig returns the configuration bdserved runs with when a
// key (or the whole file) is absent.
func DefaultConfig() Config {
	return Config{
		Files:        8,
		Faults:       1,
		Seed:         1,
		BlockSize:    128,
		SlotInterval: 200 * time.Microsecond,
		Channels:     1,
		Replicas:     2,
		Shard:        "balanced",
		Data:         "127.0.0.1:0",
		Ops:          "127.0.0.1:0",
		Timeout:      10 * time.Second,
	}
}

// LoadConfig reads a TOML-subset configuration file: `[section]`
// headers, `key = value` pairs with string ("..."), integer, boolean
// and duration ("50ms") values, `#` comments, blank lines. This covers
// the whole of bdserved's schema without pulling in a TOML dependency;
// unknown sections and keys are errors so typos fail loudly at boot
// rather than silently selecting a default.
func LoadConfig(path string) (Config, error) {
	cfg := DefaultConfig()
	raw, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	section := ""
	for i, line := range strings.Split(string(raw), "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 && !strings.Contains(line[:idx], `"`) {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return cfg, fmt.Errorf("%s:%d: malformed section header %q", path, i+1, line)
			}
			section = strings.TrimSpace(line[1 : len(line)-1])
			switch section {
			case "station", "listen", "drain":
			default:
				return cfg, fmt.Errorf("%s:%d: unknown section [%s]", path, i+1, section)
			}
			continue
		}
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			return cfg, fmt.Errorf("%s:%d: expected key = value, got %q", path, i+1, line)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if err := cfg.set(section, key, value); err != nil {
			return cfg, fmt.Errorf("%s:%d: %w", path, i+1, err)
		}
	}
	return cfg, cfg.validate()
}

// set applies one key = value pair to the configuration.
func (c *Config) set(section, key, value string) error {
	full := section + "." + key
	switch full {
	case "station.files":
		return intoInt(&c.Files, value)
	case "station.faults":
		return intoInt(&c.Faults, value)
	case "station.seed":
		return intoInt64(&c.Seed, value)
	case "station.block_size":
		return intoInt(&c.BlockSize, value)
	case "station.slot_interval":
		return intoDuration(&c.SlotInterval, value)
	case "station.channels":
		return intoInt(&c.Channels, value)
	case "station.replicas":
		return intoInt(&c.Replicas, value)
	case "station.shard":
		return intoString(&c.Shard, value)
	case "listen.data":
		return intoString(&c.Data, value)
	case "listen.ops":
		return intoString(&c.Ops, value)
	case "drain.timeout":
		return intoDuration(&c.Timeout, value)
	}
	return fmt.Errorf("unknown key %q", full)
}

// validate rejects out-of-range configurations at boot.
func (c *Config) validate() error {
	switch {
	case c.Files < 1:
		return fmt.Errorf("station.files %d: need at least one file", c.Files)
	case c.Faults < 0:
		return fmt.Errorf("station.faults %d: cannot be negative", c.Faults)
	case c.BlockSize < 1:
		return fmt.Errorf("station.block_size %d: need at least one byte", c.BlockSize)
	case c.SlotInterval <= 0:
		return fmt.Errorf("station.slot_interval %s: a daemon needs a positive slot pace", c.SlotInterval)
	case c.Channels < 1:
		return fmt.Errorf("station.channels %d: need at least one channel", c.Channels)
	case c.Channels > 1 && (c.Replicas < 1 || c.Replicas > c.Channels):
		return fmt.Errorf("station.replicas %d out of range [1, %d]", c.Replicas, c.Channels)
	case c.Channels > c.Files:
		return fmt.Errorf("station.channels %d exceeds station.files %d (every channel needs a file)", c.Channels, c.Files)
	case c.Timeout <= 0:
		return fmt.Errorf("drain.timeout %s: need a positive drain deadline", c.Timeout)
	}
	return nil
}

func intoString(dst *string, value string) error {
	if len(value) < 2 || value[0] != '"' || value[len(value)-1] != '"' {
		return fmt.Errorf("expected a quoted string, got %q", value)
	}
	*dst = value[1 : len(value)-1]
	return nil
}

func intoInt(dst *int, value string) error {
	v, err := strconv.Atoi(value)
	if err != nil {
		return fmt.Errorf("expected an integer, got %q", value)
	}
	*dst = v
	return nil
}

func intoInt64(dst *int64, value string) error {
	v, err := strconv.ParseInt(value, 10, 64)
	if err != nil {
		return fmt.Errorf("expected an integer, got %q", value)
	}
	*dst = v
	return nil
}

func intoDuration(dst *time.Duration, value string) error {
	var s string
	if err := intoString(&s, value); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("expected a duration string: %w", err)
	}
	*dst = v
	return nil
}
