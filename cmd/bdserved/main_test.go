package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestLoadConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bdserved.toml")
	if err := os.WriteFile(path, []byte(`
# daemon config
[station]
files = 6
seed = 42            # trailing comment
slot_interval = "1ms"
channels = 2
replicas = 1
shard = "hash"

[listen]
data = "127.0.0.1:0"
ops = "0.0.0.0:9091"

[drain]
timeout = "3s"
`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Files != 6 || cfg.Seed != 42 || cfg.SlotInterval != time.Millisecond ||
		cfg.Channels != 2 || cfg.Replicas != 1 || cfg.Shard != "hash" ||
		cfg.Ops != "0.0.0.0:9091" || cfg.Timeout != 3*time.Second {
		t.Fatalf("parsed config = %+v", cfg)
	}
	if cfg.Faults != 1 || cfg.BlockSize != 128 {
		t.Fatalf("unset keys lost their defaults: %+v", cfg)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	for name, content := range map[string]string{
		"unknown section": "[nope]\n",
		"unknown key":     "[station]\nfile_count = 3\n",
		"bad value":       "[station]\nfiles = many\n",
		"bare value":      "[listen]\ndata = 127.0.0.1:0\n",
		"bad range":       "[station]\nfiles = 0\n",
		"bad replicas":    "[station]\nchannels = 2\nreplicas = 3\n",
	} {
		path := filepath.Join(t.TempDir(), "bad.toml")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadConfig(path); err == nil {
			t.Errorf("%s: LoadConfig accepted %q", name, content)
		}
	}
}

func TestMainRunUsage(t *testing.T) {
	var errBuf bytes.Buffer
	if code := mainRun([]string{"-bogus"}, nil, io.Discard, &errBuf); code != 2 {
		t.Fatalf("bad flags exited %d, want 2", code)
	}
	if code := mainRun([]string{"-config", "/does/not/exist.toml"}, nil, io.Discard, &errBuf); code != 2 {
		t.Fatalf("missing config exited %d, want 2", code)
	}
}

// scrape fetches one /metrics exposition and returns the value of the
// named unlabeled sample, or -1 when absent.
func scrape(t *testing.T, base, metric string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, metric+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("sample %q: %v", line, err)
			}
			return v
		}
	}
	return -1
}

// TestDaemonSmoke is the in-process version of the CI smoke job: boot
// a small single-station daemon on ephemeral ports, watch
// pin_station_slots_total advance across two scrapes, check the
// /debug endpoints answer, then SIGTERM it and require a clean exit
// within the drain deadline.
func TestDaemonSmoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Files = 4
	cfg.SlotInterval = 100 * time.Microsecond
	cfg.Timeout = 10 * time.Second

	sigs := make(chan os.Signal, 1)
	outR, outW := io.Pipe()
	exited := make(chan error, 1)
	go func() {
		err := serve(cfg, sigs, outW)
		outW.Close()
		exited <- err
	}()

	opsRe := regexp.MustCompile(`ops listening on (http://\S+)`)
	dataRe := regexp.MustCompile(`data channel 0 listening on (\S+)`)
	opsURL, dataAddr := "", ""
	lines := make(chan string, 16)
	go func() {
		buf := make([]byte, 4096)
		acc := ""
		for {
			n, err := outR.Read(buf)
			acc += string(buf[:n])
			for {
				line, rest, ok := strings.Cut(acc, "\n")
				if !ok {
					break
				}
				lines <- line
				acc = rest
			}
			if err != nil {
				close(lines)
				return
			}
		}
	}()
	deadline := time.After(15 * time.Second)
	for opsURL == "" || dataAddr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("daemon exited before printing its listeners")
			}
			if m := opsRe.FindStringSubmatch(line); m != nil {
				opsURL = m[1]
			}
			if m := dataRe.FindStringSubmatch(line); m != nil {
				dataAddr = m[1]
			}
		case <-deadline:
			t.Fatal("daemon did not print its listeners in time")
		}
	}
	_ = dataAddr

	// The station serves consumer-paced slots through the fan-out, so
	// the counter advances even with no subscriber connected.
	first := -1.0
	for i := 0; i < 100 && first <= 0; i++ {
		first = scrape(t, opsURL, "pin_station_slots_total")
		time.Sleep(20 * time.Millisecond)
	}
	if first <= 0 {
		t.Fatal("pin_station_slots_total never advanced past 0")
	}
	second := first
	for i := 0; i < 100 && second <= first; i++ {
		time.Sleep(20 * time.Millisecond)
		second = scrape(t, opsURL, "pin_station_slots_total")
	}
	if second <= first {
		t.Fatalf("pin_station_slots_total stalled at %v", first)
	}

	// All four planes' families are present in one scrape.
	resp, err := http.Get(opsURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"pin_station_slots_total", "pin_fanout_frames_total",
		"pin_cluster_fault_budget_remaining", "pin_tuner_hops_total",
		"pin_receiver_slots_total",
	} {
		if !strings.Contains(string(body), "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(opsURL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s answered %d", path, resp.StatusCode)
		}
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon failed after SIGTERM: %v", err)
		}
	case <-time.After(cfg.Timeout + 5*time.Second):
		t.Fatal("daemon did not drain within the deadline")
	}
}
