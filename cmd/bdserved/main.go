// Command bdserved is the ops-grade daemon mode of the broadcast disk:
// a long-running Station (or K-channel Cluster) broadcasting a
// synthetic catalog over TCP fan-out, with the observability plane
// served over HTTP:
//
//	bdserved -config bdserved.toml
//
// The config file is a TOML subset (see LoadConfig); with no -config
// every default applies and both listeners bind ephemeral loopback
// ports. The daemon prints one line per listener at boot:
//
//	data channel 0 listening on 127.0.0.1:40001
//	ops listening on http://127.0.0.1:40002
//
// The ops listener serves Prometheus text-format metrics at /metrics
// (station, fan-out, cluster and receiver families), expvar at
// /debug/vars (including the full registry snapshot under the
// "pinbcast" var) and pprof at /debug/pprof.
//
// On SIGTERM or SIGINT the daemon drains gracefully: each channel
// keeps broadcasting until its next data-cycle boundary — so every
// in-flight window guarantee of the current program completes — then
// the fan-outs close, the ops listener shuts down, and the process
// exits 0. A channel that cannot reach its boundary within
// drain.timeout is cut off hard.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"pinbcast"
	"pinbcast/internal/obs"
	"pinbcast/internal/workload"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	os.Exit(mainRun(os.Args[1:], sigs, os.Stdout, os.Stderr))
}

// mainRun holds main's body with its dependencies injected: the test
// drives it with a fabricated signal channel and captured writers.
func mainRun(args []string, sigs <-chan os.Signal, stdout, stderr io.Writer) int {
	configPath := ""
	switch {
	case len(args) == 2 && args[0] == "-config":
		configPath = args[1]
	case len(args) == 0:
	default:
		fmt.Fprintln(stderr, "usage: bdserved [-config FILE]")
		return 2
	}
	cfg := DefaultConfig()
	if configPath != "" {
		var err error
		cfg, err = LoadConfig(configPath)
		if err != nil {
			fmt.Fprintln(stderr, "bdserved:", err)
			return 2
		}
	}
	if err := serve(cfg, sigs, stdout); err != nil {
		fmt.Fprintln(stderr, "bdserved:", err)
		return 1
	}
	return 0
}

// channel is one broadcast channel's serving state: its slot stream,
// its fan-out, and the data cycle its drain boundary snaps to.
type channel struct {
	slots <-chan pinbcast.Slot
	fan   *pinbcast.Fanout
	cycle int
}

// serve runs the daemon: build the catalog, bring up the data plane
// (one Station or a Cluster of K), serve the ops endpoints, pump slots
// until a signal arrives, then drain each channel to its data-cycle
// boundary.
func serve(cfg Config, sigs <-chan os.Signal, stdout io.Writer) error {
	files := workload.Random(cfg.Files, 6, 10, 80, 0, cfg.Seed)
	for i := range files {
		files[i].Faults = cfg.Faults
	}
	contents := workload.Contents(files, cfg.BlockSize, cfg.Seed)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	chans, err := buildChannels(ctx, cfg, files, contents, stdout)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range chans {
			c.fan.Close()
		}
	}()

	ops, err := net.Listen("tcp", cfg.Ops)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: obs.NewOpsMux(obs.Default())}
	opsDone := make(chan error, 1)
	go func() { opsDone <- srv.Serve(ops) }()
	fmt.Fprintf(stdout, "ops listening on http://%s\n", ops.Addr())

	// Pump every channel until the drain completes; drain closes when a
	// signal arrives, releasing each pump at its next cycle boundary.
	drain := make(chan struct{})
	var wg sync.WaitGroup
	for i, c := range chans {
		wg.Add(1)
		go func(i int, c channel) {
			defer wg.Done()
			pumpChannel(ctx, i, c, drain)
		}(i, c)
	}

	select {
	case sig, ok := <-sigs:
		if ok {
			fmt.Fprintf(stdout, "received %v, draining to data-cycle boundaries (deadline %s)\n", sig, cfg.Timeout)
		}
	case <-ctx.Done():
	}
	close(drain)
	// The drain deadline is a backstop: a channel that cannot reach its
	// boundary in time is cut off by cancelling the serve context.
	timer := time.AfterFunc(cfg.Timeout, cancel)
	wg.Wait()
	timer.Stop()
	cancel()

	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), time.Second)
	defer shutdownCancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
	}
	if err := <-opsDone; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "drained, exiting")
	return nil
}

// buildChannels brings up the data plane: one Station when channels =
// 1, a Cluster of K stations otherwise, each streaming through its own
// TCP fan-out. The configured data address is the base: port 0 gives
// every channel an ephemeral port, a fixed port p puts channel i on
// p+i.
func buildChannels(ctx context.Context, cfg Config, files []pinbcast.FileSpec, contents map[string][]byte, stdout io.Writer) ([]channel, error) {
	listen := func(i int) (net.Listener, error) {
		host, portStr, err := net.SplitHostPort(cfg.Data)
		if err != nil {
			return nil, fmt.Errorf("listen.data %q: %w", cfg.Data, err)
		}
		port, err := strconv.Atoi(portStr)
		if err != nil {
			return nil, fmt.Errorf("listen.data %q: %w", cfg.Data, err)
		}
		if port != 0 {
			port += i
		}
		return net.Listen("tcp", net.JoinHostPort(host, strconv.Itoa(port)))
	}

	stOpts := []pinbcast.Option{
		pinbcast.WithSlotBuffer(256),
		pinbcast.WithSlotInterval(cfg.SlotInterval),
	}
	if cfg.Channels == 1 {
		st, err := pinbcast.New(append([]pinbcast.Option{
			pinbcast.WithFiles(files...),
			pinbcast.WithContents(contents),
		}, stOpts...)...)
		if err != nil {
			return nil, err
		}
		slots, err := st.Serve(ctx)
		if err != nil {
			return nil, err
		}
		ln, err := listen(0)
		if err != nil {
			return nil, err
		}
		fan := pinbcast.NewFanout(ln, 0)
		fmt.Fprintf(stdout, "data channel 0 listening on %s (bandwidth %d, data cycle %d)\n",
			fan.Addr(), st.Bandwidth(), st.Program().DataCycle())
		return []channel{{slots: slots, fan: fan, cycle: st.Program().DataCycle()}}, nil
	}

	replicas := cfg.Replicas
	if replicas > cfg.Channels {
		replicas = cfg.Channels
	}
	cl, err := pinbcast.NewCluster(
		pinbcast.WithChannels(cfg.Channels),
		pinbcast.WithReplicas(replicas),
		pinbcast.WithShardName(cfg.Shard),
		pinbcast.WithClusterBandwidth(pinbcast.SufficientBandwidth(files)),
		pinbcast.WithClusterFiles(files...),
		pinbcast.WithClusterContents(contents),
		pinbcast.WithStationOptions(stOpts...),
	)
	if err != nil {
		return nil, err
	}
	streams, err := cl.Serve(ctx)
	if err != nil {
		return nil, err
	}
	chans := make([]channel, len(streams))
	for i, slots := range streams {
		ln, err := listen(i)
		if err != nil {
			for j := 0; j < i; j++ {
				chans[j].fan.Close()
			}
			return nil, err
		}
		fan := pinbcast.NewFanout(ln, 0)
		st := cl.Station(i)
		fmt.Fprintf(stdout, "data channel %d listening on %s (bandwidth %d, data cycle %d)\n",
			i, fan.Addr(), st.Bandwidth(), st.Program().DataCycle())
		chans[i] = channel{slots: slots, fan: fan, cycle: st.Program().DataCycle()}
	}
	return chans, nil
}

// pumpChannel streams one channel's slots into its fan-out until the
// drain closes and the next data-cycle boundary is reached (or the
// serve context is cancelled — the drain deadline's hard cutoff). The
// boundary rule is the same one online admission lands on: stopping at
// slot T with (T+1) divisible by the data cycle means every window
// guarantee of the running program completed on air.
func pumpChannel(ctx context.Context, i int, c channel, drain <-chan struct{}) {
	draining := false
	for {
		select {
		case <-ctx.Done():
			return
		case <-drain:
			draining = true
			drain = nil // a closed channel would spin the select
		case slot, ok := <-c.slots:
			if !ok {
				return
			}
			if err := c.fan.Send(slot); err != nil {
				return
			}
			if draining && c.cycle > 0 && (slot.T+1)%c.cycle == 0 {
				return
			}
		}
	}
}
