package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunAllExperiments drives the command end to end: every experiment
// regenerates and prints, the paper's table IDs all appear, and nothing
// lands on stderr.
func TestRunAllExperiments(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run("", &out, &errw); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errw.String())
	}
	if errw.Len() != 0 {
		t.Fatalf("stderr: %s", errw.String())
	}
	for _, id := range []string{"E1", "E5", "E12", "E14"} {
		if !strings.Contains(out.String(), "== "+id+":") {
			t.Fatalf("experiment %s missing from output", id)
		}
	}
}

func TestRunOnlyFilters(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run("E12", &out, &errw); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errw.String())
	}
	if got := strings.Count(out.String(), "== E"); got != 1 {
		t.Fatalf("printed %d tables, want exactly 1", got)
	}
}

// TestRunUnknownIDExitsNonZero pins the CLI contract: -only with an
// unknown experiment ID is a failure, not silence.
func TestRunUnknownIDExitsNonZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run("E99", &out, &errw); code == 0 {
		t.Fatal("unknown experiment ID exited zero")
	}
	if !strings.Contains(errw.String(), "E99") {
		t.Fatalf("stderr does not name the unknown ID: %s", errw.String())
	}
}
