// Command experiments regenerates every table and figure of the paper
// (the experiment index of DESIGN.md) and prints them to stdout. Its
// output is the source of EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-only E3]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"pinbcast"
	"pinbcast/internal/exp"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E3)")
	flag.Parse()
	os.Exit(run(*only, os.Stdout, os.Stderr))
}

// run regenerates the experiments and prints those matching only (all
// when empty) to out, reporting errors on errw. It returns the process
// exit code.
func run(only string, out, errw io.Writer) int {
	tables, err := exp.All()
	if err != nil {
		if errors.Is(err, pinbcast.ErrInfeasible) || errors.Is(err, pinbcast.ErrBadSpec) {
			fmt.Fprintln(errw, "experiments: internal error: paper instance rejected:", err)
		} else {
			fmt.Fprintln(errw, "experiments:", err)
		}
		return 1
	}
	printed := 0
	var ids []string
	for _, t := range tables {
		ids = append(ids, t.ID)
		if only != "" && t.ID != only {
			continue
		}
		t.Fprint(out)
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(errw, "experiments: no experiment %q (have %v)\n", only, ids)
		return 1
	}
	return 0
}
