// Command experiments regenerates every table and figure of the paper
// (the experiment index of DESIGN.md) and prints them to stdout. Its
// output is the source of EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"

	"pinbcast/internal/exp"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E3)")
	flag.Parse()

	tables, err := exp.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	printed := 0
	for _, t := range tables {
		if *only != "" && t.ID != *only {
			continue
		}
		t.Fprint(os.Stdout)
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment %q\n", *only)
		os.Exit(1)
	}
}
