// Command experiments regenerates every table and figure of the paper
// (the experiment index of DESIGN.md) and prints them to stdout. Its
// output is the source of EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-only E3]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"pinbcast"
	"pinbcast/internal/exp"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E3)")
	flag.Parse()

	tables, err := exp.All()
	if err != nil {
		if errors.Is(err, pinbcast.ErrInfeasible) || errors.Is(err, pinbcast.ErrBadSpec) {
			fmt.Fprintln(os.Stderr, "experiments: internal error: paper instance rejected:", err)
		} else {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		os.Exit(1)
	}
	printed := 0
	var ids []string
	for _, t := range tables {
		ids = append(ids, t.ID)
		if *only != "" && t.ID != *only {
			continue
		}
		t.Fprint(os.Stdout)
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment %q (have %v)\n", *only, ids)
		os.Exit(1)
	}
}
