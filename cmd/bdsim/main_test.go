package main

import (
	"testing"

	"pinbcast"
)

func TestRunSmoke(t *testing.T) {
	if err := run(4, 6, 0.05, false, 1, 3, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBurstModel(t *testing.T) {
	if err := run(3, 4, 0.04, true, 1, 5, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunTieredLayout(t *testing.T) {
	l, ok := pinbcast.LookupLayout(pinbcast.LayoutTiered)
	if !ok {
		t.Fatal("tiered layout not registered")
	}
	if err := run(4, 6, 0.05, false, 1, 3, l); err != nil {
		t.Fatal(err)
	}
}

func TestRunFanout(t *testing.T) {
	if err := runFanout(3, 4, 0.02, 1, 7); err != nil {
		t.Fatal(err)
	}
}
