package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pinbcast"
)

func TestRunSmoke(t *testing.T) {
	if err := run(4, 6, 0.05, false, 1, 3, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBurstModel(t *testing.T) {
	if err := run(3, 4, 0.04, true, 1, 5, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunTieredLayout(t *testing.T) {
	l, ok := pinbcast.LookupLayout(pinbcast.LayoutTiered)
	if !ok {
		t.Fatal("tiered layout not registered")
	}
	if err := run(4, 6, 0.05, false, 1, 3, l); err != nil {
		t.Fatal(err)
	}
}

func TestRunFanout(t *testing.T) {
	if err := runFanout(3, 4, 0.02, 1, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunCluster(t *testing.T) {
	if err := runCluster(clusterParams{
		files: 6, clients: 3, loss: 0.02, faults: 1, seed: 3,
		channels: 3, replicas: 2, shard: pinbcast.ShardBalanced, kill: -1,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunClusterKill(t *testing.T) {
	if err := runCluster(clusterParams{
		files: 6, clients: 3, loss: 0.02, burst: true, faults: 1, seed: 3,
		channels: 3, replicas: 2, shard: pinbcast.ShardBalanced, kill: 1,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFlags(t *testing.T) {
	// validateFlags consults flag.Visit for explicitly-set flags; none
	// are set under `go test`, so only the value-derived rules fire.
	cases := []struct {
		name                                       string
		stream                                     int
		fanout                                     bool
		clusterK, replicas, kill, nFiles, nClients int
		shard                                      string
		wantOK                                     bool
	}{
		{"default sim", 0, false, 0, 2, -1, 8, 25, "balanced", true},
		{"stream", 64, false, 0, 2, -1, 8, 25, "balanced", true},
		{"cluster", 0, false, 3, 2, -1, 8, 25, "balanced", true},
		{"cluster K=1 with unset replicas default", 0, false, 1, 2, -1, 8, 25, "balanced", true},
		{"stream+fanout", 64, true, 0, 2, -1, 8, 25, "balanced", false},
		{"stream+cluster", 64, false, 3, 2, -1, 8, 25, "balanced", false},
		{"fanout+cluster", 0, true, 3, 2, -1, 8, 25, "balanced", false},
		{"more channels than files", 0, false, 9, 2, -1, 8, 25, "balanced", false},
		{"bad shard", 0, false, 2, 2, -1, 8, 25, "mystery", false},
		{"no clients", 0, false, 0, 2, -1, 8, 0, "balanced", false},
	}
	for _, tc := range cases {
		msg := validateFlags(nil, tc.stream, tc.fanout, tc.clusterK, tc.replicas, tc.kill, tc.nFiles, tc.nClients, tc.shard)
		if (msg == "") != tc.wantOK {
			t.Errorf("%s: validateFlags = %q, want ok=%v", tc.name, msg, tc.wantOK)
		}
	}

	// The -replicas range check fires only for an explicitly-set flag;
	// the unset default is clamped by runCluster instead.
	explicit := map[string]bool{"replicas": true}
	if msg := validateFlags(explicit, 0, false, 2, 0, -1, 8, 25, "balanced"); msg == "" {
		t.Error("explicit -replicas 0 accepted")
	}
	if msg := validateFlags(explicit, 0, false, 2, 3, -1, 8, 25, "balanced"); msg == "" {
		t.Error("explicit -replicas 3 with -cluster 2 accepted")
	}
	// Flags that only another mode consumes are rejected when set.
	if msg := validateFlags(map[string]bool{"clients": true}, 64, false, 0, 2, -1, 8, 25, "balanced"); msg == "" {
		t.Error("-clients with -stream accepted")
	}
	if msg := validateFlags(map[string]bool{"kill": true}, 0, false, 0, 2, 1, 8, 25, "balanced"); msg == "" {
		t.Error("-kill without -cluster accepted")
	}
	// The observability outputs only make sense against the live planes.
	if msg := validateFlags(map[string]bool{"metrics-out": true}, 0, false, 0, 2, -1, 8, 25, "balanced"); msg == "" {
		t.Error("-metrics-out in sim mode accepted")
	}
	if msg := validateFlags(map[string]bool{"trace-out": true}, 64, false, 0, 2, -1, 8, 25, "balanced"); msg == "" {
		t.Error("-trace-out with -stream accepted")
	}
	if msg := validateFlags(map[string]bool{"trace-out": true, "metrics-out": true}, 0, true, 0, 2, -1, 8, 25, "balanced"); msg != "" {
		t.Errorf("-trace-out/-metrics-out with -fanout rejected: %s", msg)
	}
}

// TestObservabilityOutputs runs the live fan-out pipeline and checks
// that the post-run dumps land on disk well-formed: the metrics file
// as a JSON registry snapshot carrying the station family, the trace
// file as one JSON object per line with wire-named kinds.
func TestObservabilityOutputs(t *testing.T) {
	if err := runFanout(3, 2, 0, 1, 11); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	tracePath := filepath.Join(dir, "trace.jsonl")
	if err := writeMetricsOut(metricsPath); err != nil {
		t.Fatal(err)
	}
	if err := writeTraceOut(tracePath); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var fams []struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	if err := json.Unmarshal(raw, &fams); err != nil {
		t.Fatalf("metrics-out is not a JSON family list: %v", err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "pin_station_slots_total" && f.Type == "counter" {
			found = true
		}
	}
	if !found {
		t.Error("metrics-out missing pin_station_slots_total")
	}

	raw, err = os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("trace-out is empty after a live fan-out run")
	}
	kinds := map[string]int{}
	var prevSeq uint64
	for i, line := range lines {
		var ev traceLine
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace-out line %d: %v", i+1, err)
		}
		if i > 0 && ev.Seq <= prevSeq {
			t.Fatalf("trace-out seq not increasing at line %d: %d after %d", i+1, ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		kinds[ev.Kind]++
	}
	for _, want := range []string{"slot_served", "frame_flushed"} {
		if kinds[want] == 0 {
			t.Errorf("trace-out has no %q events (kinds: %v)", want, kinds)
		}
	}
}
