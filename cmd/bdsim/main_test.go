package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run(4, 6, 0.05, false, 1, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunBurstModel(t *testing.T) {
	if err := run(3, 4, 0.04, true, 1, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunFanout(t *testing.T) {
	if err := runFanout(3, 4, 0.02, 1, 7); err != nil {
		t.Fatal(err)
	}
}
