package main

import (
	"testing"

	"pinbcast"
)

func TestRunSmoke(t *testing.T) {
	if err := run(4, 6, 0.05, false, 1, 3, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBurstModel(t *testing.T) {
	if err := run(3, 4, 0.04, true, 1, 5, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunTieredLayout(t *testing.T) {
	l, ok := pinbcast.LookupLayout(pinbcast.LayoutTiered)
	if !ok {
		t.Fatal("tiered layout not registered")
	}
	if err := run(4, 6, 0.05, false, 1, 3, l); err != nil {
		t.Fatal(err)
	}
}

func TestRunFanout(t *testing.T) {
	if err := runFanout(3, 4, 0.02, 1, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunCluster(t *testing.T) {
	if err := runCluster(clusterParams{
		files: 6, clients: 3, loss: 0.02, faults: 1, seed: 3,
		channels: 3, replicas: 2, shard: pinbcast.ShardBalanced, kill: -1,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunClusterKill(t *testing.T) {
	if err := runCluster(clusterParams{
		files: 6, clients: 3, loss: 0.02, burst: true, faults: 1, seed: 3,
		channels: 3, replicas: 2, shard: pinbcast.ShardBalanced, kill: 1,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFlags(t *testing.T) {
	// validateFlags consults flag.Visit for explicitly-set flags; none
	// are set under `go test`, so only the value-derived rules fire.
	cases := []struct {
		name                                       string
		stream                                     int
		fanout                                     bool
		clusterK, replicas, kill, nFiles, nClients int
		shard                                      string
		wantOK                                     bool
	}{
		{"default sim", 0, false, 0, 2, -1, 8, 25, "balanced", true},
		{"stream", 64, false, 0, 2, -1, 8, 25, "balanced", true},
		{"cluster", 0, false, 3, 2, -1, 8, 25, "balanced", true},
		{"cluster K=1 with unset replicas default", 0, false, 1, 2, -1, 8, 25, "balanced", true},
		{"stream+fanout", 64, true, 0, 2, -1, 8, 25, "balanced", false},
		{"stream+cluster", 64, false, 3, 2, -1, 8, 25, "balanced", false},
		{"fanout+cluster", 0, true, 3, 2, -1, 8, 25, "balanced", false},
		{"more channels than files", 0, false, 9, 2, -1, 8, 25, "balanced", false},
		{"bad shard", 0, false, 2, 2, -1, 8, 25, "mystery", false},
		{"no clients", 0, false, 0, 2, -1, 8, 0, "balanced", false},
	}
	for _, tc := range cases {
		msg := validateFlags(nil, tc.stream, tc.fanout, tc.clusterK, tc.replicas, tc.kill, tc.nFiles, tc.nClients, tc.shard)
		if (msg == "") != tc.wantOK {
			t.Errorf("%s: validateFlags = %q, want ok=%v", tc.name, msg, tc.wantOK)
		}
	}

	// The -replicas range check fires only for an explicitly-set flag;
	// the unset default is clamped by runCluster instead.
	explicit := map[string]bool{"replicas": true}
	if msg := validateFlags(explicit, 0, false, 2, 0, -1, 8, 25, "balanced"); msg == "" {
		t.Error("explicit -replicas 0 accepted")
	}
	if msg := validateFlags(explicit, 0, false, 2, 3, -1, 8, 25, "balanced"); msg == "" {
		t.Error("explicit -replicas 3 with -cluster 2 accepted")
	}
	// Flags that only another mode consumes are rejected when set.
	if msg := validateFlags(map[string]bool{"clients": true}, 64, false, 0, 2, -1, 8, 25, "balanced"); msg == "" {
		t.Error("-clients with -stream accepted")
	}
	if msg := validateFlags(map[string]bool{"kill": true}, 0, false, 0, 2, 1, 8, 25, "balanced"); msg == "" {
		t.Error("-kill without -cluster accepted")
	}
}
