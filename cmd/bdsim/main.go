// Command bdsim runs an end-to-end fault-injection simulation of a
// broadcast disk: it builds a program for a synthetic workload, streams
// it through a lossy channel to a population of clients, and reports
// latency and deadline statistics. With -stream it instead starts a
// live Station and prints the streamed broadcast slots.
//
// Usage:
//
//	bdsim [-files 8] [-clients 25] [-loss 0.05] [-burst] [-faults 1] [-seed 1]
//	bdsim -stream 64 [-files 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"pinbcast"
	"pinbcast/internal/workload"
)

func main() {
	nFiles := flag.Int("files", 8, "number of broadcast files")
	nClients := flag.Int("clients", 25, "number of clients")
	loss := flag.Float64("loss", 0.05, "block loss probability")
	burst := flag.Bool("burst", false, "use the Gilbert–Elliott burst model instead of iid")
	faults := flag.Int("faults", 1, "designed per-retrieval fault tolerance r")
	seed := flag.Int64("seed", 1, "random seed")
	stream := flag.Int("stream", 0, "serve this many live Station slots instead of simulating")
	flag.Parse()

	var err error
	if *stream > 0 {
		err = runStream(*nFiles, *faults, *seed, *stream)
	} else {
		err = run(*nFiles, *nClients, *loss, *burst, *faults, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdsim:", err)
		os.Exit(1)
	}
}

func run(nFiles, nClients int, loss float64, burst bool, faults int, seed int64) error {
	files := workload.Random(nFiles, 6, 10, 80, 0, seed)
	for i := range files {
		files[i].Faults = faults
	}
	prog, err := pinbcast.Build(pinbcast.BuildConfig{Files: files})
	if err != nil {
		return err
	}
	fmt.Printf("bandwidth: %d blocks/unit (Eq 2), period %d, data cycle %d\n",
		prog.Bandwidth, prog.Period, prog.DataCycle())

	var fault pinbcast.FaultModel
	if burst {
		fault = pinbcast.BurstFaults(loss/2, 0.2, 0.9, seed)
	} else {
		fault = pinbcast.BernoulliFaults(loss, seed)
	}

	contents := workload.Contents(files, 128, seed)
	var clients []pinbcast.ClientSpec
	for c := 0; c < nClients; c++ {
		f := files[c%len(files)]
		clients = append(clients, pinbcast.ClientSpec{
			Start: (c * 37) % (4 * prog.Period),
			Requests: []pinbcast.Request{
				{File: f.Name, Deadline: prog.Bandwidth * f.Latency},
			},
		})
	}
	rep, err := pinbcast.Simulate(pinbcast.SimConfig{
		Program:  prog,
		Contents: contents,
		Fault:    fault,
		Clients:  clients,
		Horizon:  64 * prog.DataCycle(),
	})
	if err != nil {
		return err
	}

	fmt.Printf("channel: %s — %d blocks sent, %d corrupted (%.2f%%)\n",
		rep.FaultModel, rep.BlocksSent, rep.BlocksCorrupted,
		100*float64(rep.BlocksCorrupted)/float64(rep.BlocksSent))
	names := make([]string, 0, len(rep.PerFile))
	for name := range rep.PerFile {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-8s %9s %10s %8s %8s %12s %8s\n",
		"file", "requests", "completed", "met", "missed", "mean lat.", "max lat.")
	for _, name := range names {
		st := rep.PerFile[name]
		fmt.Printf("%-8s %9d %10d %8d %8d %12.1f %8d\n",
			name, st.Requests, st.Completed, st.DeadlineMet, st.DeadlineMissed,
			st.MeanLatency, st.MaxLatency)
	}
	fmt.Printf("overall deadline miss ratio: %.2f%%\n", 100*rep.MissRatio())
	return nil
}

// runStream brings up a live Station for the workload and prints the
// first n slots of its broadcast stream.
func runStream(nFiles, faults int, seed int64, n int) error {
	files := workload.Random(nFiles, 6, 10, 80, 0, seed)
	for i := range files {
		files[i].Faults = faults
	}
	st, err := pinbcast.New(
		pinbcast.WithFiles(files...),
		pinbcast.WithContents(workload.Contents(files, 128, seed)),
	)
	if err != nil {
		return err
	}
	prog := st.Program()
	fmt.Printf("station: bandwidth %d blocks/unit, period %d, data cycle %d\n",
		st.Bandwidth(), prog.Period, prog.DataCycle())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := st.Serve(ctx)
	if err != nil {
		return err
	}
	for slot := range slots {
		if slot.Idle() {
			fmt.Printf("slot %4d gen %d  ⊔\n", slot.T, slot.Generation)
		} else {
			fmt.Printf("slot %4d gen %d  %s[%d]  %d bytes\n",
				slot.T, slot.Generation, slot.File, slot.Seq+1, len(slot.Payload))
		}
		if slot.T+1 >= n {
			break
		}
	}
	return nil
}
