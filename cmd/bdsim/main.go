// Command bdsim runs an end-to-end fault-injection simulation of a
// broadcast disk: it builds a program for a synthetic workload, streams
// it through a lossy channel to a population of clients, and reports
// latency and deadline statistics. With -stream it instead starts a
// live Station and prints the streamed broadcast slots; with -fanout
// it runs the real networked pipeline — Station → TCP fan-out →
// -clients live Receivers — and reports per-client deadline and
// latency statistics; with -cluster it shards the workload across K
// broadcast channels (R-way replication of the hottest files) served
// through K TCP fan-outs to -clients MultiTuners, optionally killing
// one channel mid-broadcast (-kill) to exercise detection, channel
// hopping and failover re-admission.
//
// Usage:
//
//	bdsim [-files 8] [-clients 25] [-loss 0.05] [-burst] [-faults 1] [-seed 1] [-layout pinwheel]
//	bdsim -stream 64 [-files 4]
//	bdsim -fanout [-clients 8] [-files 4] [-loss 0.05]
//	bdsim -cluster 3 -replicas 2 [-shard balanced] [-kill 2] [-clients 6] [-burst]
//	bdsim -fanout -cpuprofile cpu.out -memprofile mem.out
//
// Flag combinations are validated up front: the mode selectors
// (-stream, -fanout, -cluster) are mutually exclusive, and a flag that
// the selected mode would ignore (-clients with -stream, -replicas
// without -cluster, …) is a usage error (exit status 2) rather than
// silently dropped.
//
// -layout selects the program construction strategy (pinwheel, tiered,
// flat-spread, flat-sequential) for the simulation and cluster modes;
// deadlines are always judged against the pinwheel windows, so
// non-real-time layouts show their misses.
//
// -cpuprofile and -memprofile write pprof profiles of the selected run
// mode for field profiling of the data plane (`go tool pprof` reads
// them); the heap profile is captured after the run completes.
//
// -metrics-out writes a JSON snapshot of the metrics registry after
// the run, and -trace-out drains the slot-event trace ring to a JSONL
// file (one event per line); both apply to the live -fanout and
// -cluster modes only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"pinbcast"
	"pinbcast/internal/obs"
	"pinbcast/internal/workload"
)

func main() {
	os.Exit(mainRun())
}

// mainRun holds main's body so profile-flushing defers run before the
// process exits, whatever the run's outcome.
func mainRun() int {
	nFiles := flag.Int("files", 8, "number of broadcast files")
	nClients := flag.Int("clients", 25, "number of clients")
	loss := flag.Float64("loss", 0.05, "block loss probability")
	burst := flag.Bool("burst", false, "use the Gilbert–Elliott burst model instead of iid")
	faults := flag.Int("faults", 1, "designed per-retrieval fault tolerance r")
	seed := flag.Int64("seed", 1, "random seed")
	stream := flag.Int("stream", 0, "serve this many live Station slots instead of simulating")
	fanout := flag.Bool("fanout", false, "run -clients live Receivers over a TCP fan-out instead of simulating")
	clusterK := flag.Int("cluster", 0, "shard the workload across this many broadcast channels (MultiTuner clients over TCP fan-outs)")
	replicas := flag.Int("replicas", 2, "replicate the hottest files on this many channels (with -cluster)")
	shardName := flag.String("shard", pinbcast.ShardBalanced,
		"shard policy for -cluster (registered: "+strings.Join(pinbcast.ShardNames(), ", ")+")")
	kill := flag.Int("kill", -1, "kill this channel mid-broadcast and fail it over (with -cluster)")
	layoutName := flag.String("layout", "",
		"construction layout for the simulation (default: pinwheel; registered: "+
			strings.Join(pinbcast.LayoutNames(), ", ")+")")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	metricsOut := flag.String("metrics-out", "", "write a JSON snapshot of the metrics registry to this file after the run")
	traceOut := flag.String("trace-out", "", "write the slot-event trace ring as JSONL to this file after the run")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if msg := validateFlags(set, *stream, *fanout, *clusterK, *replicas, *kill, *nFiles, *nClients, *shardName); msg != "" {
		fmt.Fprintf(os.Stderr, "bdsim: %s\n", msg)
		flag.Usage()
		return 2
	}

	// Registered before the CPU-profile defers so that (LIFO) the CPU
	// profile stops before the forced GC and heap write run — tooling
	// overhead must not appear in the captured profile.
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bdsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bdsim:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdsim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bdsim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	var layout pinbcast.Layout
	if *layoutName != "" {
		l, ok := pinbcast.LookupLayout(strings.ToLower(strings.TrimSpace(*layoutName)))
		if !ok {
			fmt.Fprintf(os.Stderr, "bdsim: unknown layout %q (registered: %s)\n",
				*layoutName, strings.Join(pinbcast.LayoutNames(), ", "))
			return 2
		}
		layout = l
	}

	var err error
	switch {
	case *stream > 0:
		err = runStream(*nFiles, *faults, *seed, *stream)
	case *fanout:
		err = runFanout(*nFiles, *nClients, *loss, *faults, *seed)
	case *clusterK > 0:
		err = runCluster(clusterParams{
			files:    *nFiles,
			clients:  *nClients,
			loss:     *loss,
			burst:    *burst,
			faults:   *faults,
			seed:     *seed,
			channels: *clusterK,
			replicas: *replicas,
			shard:    *shardName,
			kill:     *kill,
			layout:   layout,
		})
	default:
		err = run(*nFiles, *nClients, *loss, *burst, *faults, *seed, layout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdsim:", err)
		return 1
	}
	if *metricsOut != "" {
		if err := writeMetricsOut(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "bdsim:", err)
			return 1
		}
	}
	if *traceOut != "" {
		if err := writeTraceOut(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "bdsim:", err)
			return 1
		}
	}
	return 0
}

// writeMetricsOut dumps the metrics registry as indented JSON — the
// machine-readable twin of the /metrics exposition, for post-run
// analysis of a simulation without standing up an ops listener.
func writeMetricsOut(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// traceLine is the JSONL schema of one slot-trace event: kind carries
// the wire name ("slot_served", "channel_hop", …), channel is -1 for
// single-channel planes, and aux is kind-specific (generation id,
// writev batch size, failed channel, …).
type traceLine struct {
	Seq     uint64 `json:"seq"`
	Kind    string `json:"kind"`
	Channel int    `json:"channel"`
	File    uint32 `json:"file"`
	T       uint64 `json:"t"`
	Aux     uint64 `json:"aux"`
}

// writeTraceOut drains the slot-event trace ring to a JSONL file, one
// event per line in emission order. The ring overwrites its oldest
// entries, so a long run yields the trailing window, not the full
// history; Seq gaps mark the overwritten span.
func writeTraceOut(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, ev := range obs.Trace().Drain(nil) {
		if err := enc.Encode(traceLine{
			Seq:     ev.Seq,
			Kind:    ev.Kind.String(),
			Channel: ev.Channel,
			File:    ev.File,
			T:       ev.T,
			Aux:     ev.Aux,
		}); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// validateFlags rejects flag combinations the selected mode would
// silently ignore or that cannot work, returning a usage message ("" =
// valid). set holds the flag names the user explicitly passed
// (flag.Visit). Mode selection: -stream, -fanout and -cluster are
// mutually exclusive; everything else rides on exactly one mode.
func validateFlags(set map[string]bool, stream int, fanout bool, clusterK, replicas, kill, nFiles, nClients int, shardName string) string {
	selectors := 0
	for _, on := range []bool{stream > 0, fanout, clusterK > 0} {
		if on {
			selectors++
		}
	}
	if selectors > 1 {
		return "conflicting modes: -stream, -fanout and -cluster are mutually exclusive"
	}
	mode := "sim"
	switch {
	case stream > 0:
		mode = "stream"
	case fanout:
		mode = "fanout"
	case clusterK > 0:
		mode = "cluster"
	}
	if set["stream"] && stream <= 0 {
		return "-stream needs a positive slot count"
	}
	if set["cluster"] && clusterK <= 0 {
		return "-cluster needs a positive channel count"
	}

	// Which modes consume which tuning flags; a flag set for a mode that
	// ignores it is an error, not a silent no-op.
	allowed := map[string][]string{
		"clients":  {"sim", "fanout", "cluster"},
		"loss":     {"sim", "fanout", "cluster"},
		"burst":    {"sim", "cluster"},
		"layout":   {"sim", "cluster"},
		"replicas": {"cluster"},
		"shard":    {"cluster"},
		"kill":     {"cluster"},
		// The observability outputs snapshot the live data plane; the pure
		// simulation and slot-printing modes never touch it, so asking for
		// them there would write empty files.
		"metrics-out": {"fanout", "cluster"},
		"trace-out":   {"fanout", "cluster"},
	}
	for name, modes := range allowed {
		if !set[name] {
			continue
		}
		ok := false
		for _, m := range modes {
			if m == mode {
				ok = true
			}
		}
		if !ok {
			return fmt.Sprintf("-%s has no effect with mode %q (valid in: %s)",
				name, mode, strings.Join(modes, ", "))
		}
	}

	if mode == "cluster" {
		switch {
		// The -replicas default (2) is only meaningful for K ≥ 2;
		// an unset flag is clamped in runCluster, so only an explicit
		// value is range-checked.
		case set["replicas"] && (replicas < 1 || replicas > clusterK):
			return fmt.Sprintf("-replicas %d out of range [1, %d]", replicas, clusterK)
		case clusterK > nFiles:
			return fmt.Sprintf("-cluster %d exceeds -files %d (every channel needs a file)", clusterK, nFiles)
		case set["kill"] && (kill < 0 || kill >= clusterK):
			return fmt.Sprintf("-kill %d out of range [0, %d)", kill, clusterK)
		}
		if _, ok := pinbcast.LookupShard(shardName); !ok {
			return fmt.Sprintf("unknown shard policy %q (registered: %s)",
				shardName, strings.Join(pinbcast.ShardNames(), ", "))
		}
	}
	if nClients < 1 && (mode == "sim" || mode == "fanout" || mode == "cluster") {
		return fmt.Sprintf("-clients %d: need at least one client", nClients)
	}
	return ""
}

func run(nFiles, nClients int, loss float64, burst bool, faults int, seed int64, layout pinbcast.Layout) error {
	files := workload.Random(nFiles, 6, 10, 80, 0, seed)
	for i := range files {
		files[i].Faults = faults
	}
	prog, err := pinbcast.Build(pinbcast.BuildConfig{Files: files, Layout: layout})
	if err != nil {
		return err
	}
	// Deadlines are the pinwheel windows at the Eq-2 bandwidth, whatever
	// layout built the program — the real-time yardstick of the paper.
	bw := prog.Bandwidth
	if bw == 0 {
		bw = pinbcast.SufficientBandwidth(files)
	}
	fmt.Printf("layout %s: bandwidth %d blocks/unit (Eq 2), period %d, data cycle %d\n",
		prog.Origin, bw, prog.Period, prog.DataCycle())

	var fault pinbcast.FaultModel
	if burst {
		fault = pinbcast.BurstFaults(loss/2, 0.2, 0.9, seed)
	} else {
		fault = pinbcast.BernoulliFaults(loss, seed)
	}

	contents := workload.Contents(files, 128, seed)
	var clients []pinbcast.ClientSpec
	for c := 0; c < nClients; c++ {
		f := files[c%len(files)]
		clients = append(clients, pinbcast.ClientSpec{
			Start: (c * 37) % (4 * prog.Period),
			Requests: []pinbcast.Request{
				{File: f.Name, Deadline: bw * f.Latency},
			},
		})
	}
	rep, err := pinbcast.Simulate(pinbcast.SimConfig{
		Program:  prog,
		Contents: contents,
		Fault:    fault,
		Clients:  clients,
		Horizon:  64 * prog.DataCycle(),
	})
	if err != nil {
		return err
	}

	fmt.Printf("channel: %s — %d blocks sent, %d corrupted (%.2f%%)\n",
		rep.FaultModel, rep.BlocksSent, rep.BlocksCorrupted,
		100*float64(rep.BlocksCorrupted)/float64(rep.BlocksSent))
	names := make([]string, 0, len(rep.PerFile))
	for name := range rep.PerFile {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-8s %9s %10s %8s %8s %12s %8s\n",
		"file", "requests", "completed", "met", "missed", "mean lat.", "max lat.")
	for _, name := range names {
		st := rep.PerFile[name]
		fmt.Printf("%-8s %9d %10d %8d %8d %12.1f %8d\n",
			name, st.Requests, st.Completed, st.DeadlineMet, st.DeadlineMissed,
			st.MeanLatency, st.MaxLatency)
	}
	fmt.Printf("overall deadline miss ratio: %.2f%%\n", 100*rep.MissRatio())
	return nil
}

// runFanout runs the full networked pipeline on the loopback
// interface: a Station broadcasts through a TCP Fanout to nClients
// live Receivers, each with its own Bernoulli reception-fault stream,
// and per-client deadline-met ratios and reconstruction latencies are
// reported.
func runFanout(nFiles, nClients int, loss float64, faults int, seed int64) error {
	if nClients < 1 {
		return fmt.Errorf("need at least one client, got %d", nClients)
	}
	files := workload.Random(nFiles, 6, 10, 80, 0, seed)
	for i := range files {
		files[i].Faults = faults
	}
	st, err := pinbcast.New(
		pinbcast.WithFiles(files...),
		pinbcast.WithContents(workload.Contents(files, 128, seed)),
		pinbcast.WithSlotBuffer(256),
	)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fan := pinbcast.NewFanout(ln, 0)
	defer fan.Close()
	fmt.Printf("fanout: %s — %d receivers, bandwidth %d blocks/unit, loss %.2f%%\n",
		fan.Addr(), nClients, st.Bandwidth(), 100*loss)

	// Each receiver subscribes over TCP and wants two files, with
	// deadlines of two latency windows (one window plus one cycle of
	// fault recovery).
	dir := st.Directory()
	receivers := make([]*pinbcast.Receiver, nClients)
	wanted := make([][]pinbcast.Request, nClients)
	for c := range receivers {
		src, err := pinbcast.DialSource(fan.Addr().String())
		if err != nil {
			return err
		}
		src.Timeout = 30 * time.Second
		// Receivers decode each slot before fetching the next, so the
		// allocation-free frame-buffer reuse path is safe here.
		src.Reuse = true
		f1 := files[c%len(files)]
		f2 := files[(c+1+c/len(files))%len(files)]
		reqs := []pinbcast.Request{{File: f1.Name, Deadline: 2 * st.Bandwidth() * f1.Latency}}
		if f2.Name != f1.Name {
			reqs = append(reqs, pinbcast.Request{File: f2.Name, Deadline: 2 * st.Bandwidth() * f2.Latency})
		}
		wanted[c] = reqs
		receivers[c], err = pinbcast.Subscribe(src,
			pinbcast.WithDirectory(dir),
			pinbcast.WithRequests(reqs...),
			pinbcast.WithReceiverFaults(pinbcast.BernoulliFaults(loss, seed+int64(c))),
		)
		if err != nil {
			return err
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for fan.ClientCount() < nClients {
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d of %d receivers subscribed", fan.ClientCount(), nClients)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go st.Broadcast(ctx, fan)

	results := make([][]pinbcast.Result, nClients)
	metrics := make([]pinbcast.ReceiverMetrics, nClients)
	errs := make([]error, nClients)
	var wg sync.WaitGroup
	for c, r := range receivers {
		wg.Add(1)
		go func(c int, r *pinbcast.Receiver) {
			defer wg.Done()
			results[c], errs[c] = r.Run(context.Background())
			metrics[c] = r.Metrics()
			// Stay tuned until the broadcast winds down so the fan-out
			// never drops a finished-but-healthy subscriber while others
			// are still retrieving — Evicted then counts real laggards.
			go func() { //pinlint:allow goroleak — bounded by Step returning the station's shutdown error when the broadcast ends
				defer r.Close()
				for {
					if _, err := r.Step(); err != nil {
						return
					}
				}
			}()
		}(c, r)
	}
	wg.Wait()
	cancel()

	fmt.Printf("%-8s %-24s %10s %12s %10s\n", "client", "files", "met", "mean lat.", "slots")
	totalMet, totalReqs := 0, 0
	for c := range receivers {
		if errs[c] != nil {
			return fmt.Errorf("client %d: %w", c, errs[c])
		}
		met, lat, n := 0, 0, 0
		names := ""
		for _, res := range results[c] {
			if names != "" {
				names += ","
			}
			names += res.File
			if res.Completed {
				lat += res.Latency
				n++
			}
			if res.DeadlineMet {
				met++
			}
		}
		totalMet += met
		totalReqs += len(results[c])
		mean := 0.0
		if n > 0 {
			mean = float64(lat) / float64(n)
		}
		fmt.Printf("%-8d %-24s %6d/%-3d %12.1f %10d\n",
			c, names, met, len(results[c]), mean, metrics[c].Slots)
	}
	fmt.Printf("per-client deadline-met ratio: %.2f%% (%d/%d requests); fan-out evictions: %d\n",
		100*float64(totalMet)/float64(totalReqs), totalMet, totalReqs, fan.Evicted())
	return nil
}

// clusterParams bundles the -cluster mode configuration.
type clusterParams struct {
	files, clients     int
	loss               float64
	burst              bool
	faults             int
	seed               int64
	channels, replicas int
	shard              string
	kill               int // -1 = no kill injection
	layout             pinbcast.Layout
}

// runCluster runs the sharded multi-channel pipeline on the loopback
// interface: a Cluster of K Stations, each broadcasting through its own
// TCP fan-out, serving -clients MultiTuners that retrieve from the
// cheapest live channel. With -kill it fails one channel mid-broadcast
// and reports detection, hops, re-admissions and contract outcomes.
func runCluster(p clusterParams) error {
	if p.replicas > p.channels {
		p.replicas = p.channels // the unset-flag default on a small K
	}
	files := workload.Random(p.files, 6, 10, 80, 0, p.seed)
	for i := range files {
		files[i].Faults = p.faults
	}
	// Provision every channel at the whole catalog's Equation-2
	// bandwidth: the headroom failover re-admission draws on.
	bw := pinbcast.SufficientBandwidth(files)
	stOpts := []pinbcast.Option{
		pinbcast.WithSlotBuffer(256),
		pinbcast.WithSlotInterval(50 * time.Microsecond),
	}
	if p.layout != nil {
		stOpts = append(stOpts, pinbcast.WithLayout(p.layout))
	}
	c, err := pinbcast.NewCluster(
		pinbcast.WithChannels(p.channels),
		pinbcast.WithReplicas(p.replicas),
		pinbcast.WithShardName(p.shard),
		pinbcast.WithClusterBandwidth(bw),
		pinbcast.WithClusterFiles(files...),
		pinbcast.WithClusterContents(workload.Contents(files, 128, p.seed)),
		pinbcast.WithStationOptions(stOpts...),
	)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %d channels × bandwidth %d, %d-way replication (%s shard)\n",
		c.Channels(), bw, c.Replicas(), c.ShardPolicy())
	for i := 0; i < c.Channels(); i++ {
		names := make([]string, 0, len(c.Station(i).Files()))
		for _, f := range c.Station(i).Files() {
			names = append(names, f.Name)
		}
		fmt.Printf("  channel %d: %s\n", i, strings.Join(names, " "))
	}

	fans := make([]pinbcast.Sink, c.Channels())
	addrs := make([]string, c.Channels())
	for i := range fans {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		fan := pinbcast.NewFanout(ln, 0)
		defer fan.Close()
		fans[i] = fan
		addrs[i] = fan.Addr().String()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Broadcast(ctx, fans...)

	plan := c.FetchPlan()
	dir := c.Directory()
	tuners := make([]*pinbcast.MultiTuner, p.clients)
	wanted := make([][]string, p.clients)
	for t := range tuners {
		srcs := make([]pinbcast.Source, c.Channels())
		for i := range srcs {
			src, err := pinbcast.DialSource(addrs[i])
			if err != nil {
				return err
			}
			src.Timeout = 100 * time.Millisecond
			src.Reuse = true
			srcs[i] = src
		}
		// Independent per-channel fault processes, each with its own
		// generator (channels are driven concurrently, and stateful
		// models must not share one), seeded from one reproducible
		// per-tuner parent stream.
		parent := rand.New(rand.NewSource(p.seed + int64(t)))
		models := make([]pinbcast.FaultModel, c.Channels())
		for i := range models {
			rng := rand.New(rand.NewSource(parent.Int63()))
			if p.burst {
				models[i] = pinbcast.BurstFaultsFrom(p.loss/2, 0.2, 0.9, rng)
			} else {
				models[i] = pinbcast.BernoulliFaultsFrom(p.loss, rng)
			}
		}
		mt, err := pinbcast.NewMultiTuner(srcs,
			pinbcast.WithTunerDirectory(dir),
			pinbcast.WithTunerHomes(plan),
			pinbcast.WithTunerFaults(models...),
		)
		if err != nil {
			return err
		}
		defer mt.Close()
		tuners[t] = mt
		f1 := files[t%len(files)]
		f2 := files[(t+1+t/len(files))%len(files)]
		wanted[t] = []string{f1.Name}
		if f2.Name != f1.Name {
			wanted[t] = append(wanted[t], f2.Name)
		}
	}

	// round requests every client's files through the (possibly stale)
	// fetch plan, runs all tuners to completion and prints the
	// per-client table. Requests planned onto a dead channel make the
	// tuners detect the silence, hop, and scan the survivors.
	round := func(label string) error {
		prior := make([]int, p.clients)
		for t, mt := range tuners {
			prior[t] = len(mt.Results())
			for _, name := range wanted[t] {
				var f pinbcast.FileSpec
				for _, spec := range files {
					if spec.Name == name {
						f = spec
					}
				}
				if err := mt.RequestVia(name, 4*bw*f.Latency, plan[name]); err != nil {
					return err
				}
			}
		}
		results := make([][]pinbcast.ClusterResult, p.clients)
		errs := make([]error, p.clients)
		var wg sync.WaitGroup
		for t, mt := range tuners {
			wg.Add(1)
			go func(t int, mt *pinbcast.MultiTuner) {
				defer wg.Done()
				runCtx, runCancel := context.WithTimeout(ctx, 60*time.Second)
				defer runCancel()
				all, err := mt.Run(runCtx)
				results[t], errs[t] = all[prior[t]:], err
			}(t, mt)
		}
		wg.Wait()

		fmt.Printf("%s:\n%-8s %-24s %10s %12s %6s %9s\n",
			label, "client", "files", "met", "mean lat.", "hops", "injected")
		totalMet, totalReqs := 0, 0
		for t := range tuners {
			if errs[t] != nil {
				return fmt.Errorf("client %d: %w", t, errs[t])
			}
			met, lat, n := 0, 0, 0
			for _, res := range results[t] {
				if res.Completed {
					lat += res.Latency
					n++
				}
				if res.DeadlineMet {
					met++
				}
			}
			totalMet += met
			totalReqs += len(results[t])
			mean := 0.0
			if n > 0 {
				mean = float64(lat) / float64(n)
			}
			m := tuners[t].Metrics()
			fmt.Printf("%-8d %-24s %6d/%-3d %12.1f %6d %9d\n",
				t, strings.Join(wanted[t], ","), met, len(results[t]), mean, m.Hops, m.Injected)
		}
		fmt.Printf("%s deadline-met ratio: %.2f%% (%d/%d requests)\n",
			label, 100*float64(totalMet)/float64(totalReqs), totalMet, totalReqs)
		return nil
	}

	if err := round("round 1 (all channels live)"); err != nil {
		return err
	}
	if p.kill >= 0 {
		rep, err := c.FailChannel(p.kill)
		if err != nil {
			return fmt.Errorf("kill injection: %w", err)
		}
		fmt.Printf("killed channel %d: %d re-admitted, %d lost, contracts kept %d / revoked %d\n",
			rep.Channel, len(rep.Readmitted), len(rep.Lost), len(rep.Kept), len(rep.Revoked))
		names := make([]string, 0, len(rep.Readmitted))
		for name := range rep.Readmitted {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  re-admitted %s -> channel %d\n", name, rep.Readmitted[name])
		}
		for _, name := range rep.Lost {
			fmt.Printf("  lost %s\n", name)
		}
		// Round 2 reuses the pre-kill fetch plan on purpose: that is the
		// stale view a deployed tuner holds at the moment of failure.
		if err := round("round 2 (after kill, stale fetch plan)"); err != nil {
			return err
		}
	}
	cancel()
	return nil
}

// runStream brings up a live Station for the workload and prints the
// first n slots of its broadcast stream.
func runStream(nFiles, faults int, seed int64, n int) error {
	files := workload.Random(nFiles, 6, 10, 80, 0, seed)
	for i := range files {
		files[i].Faults = faults
	}
	st, err := pinbcast.New(
		pinbcast.WithFiles(files...),
		pinbcast.WithContents(workload.Contents(files, 128, seed)),
	)
	if err != nil {
		return err
	}
	prog := st.Program()
	fmt.Printf("station: bandwidth %d blocks/unit, period %d, data cycle %d\n",
		st.Bandwidth(), prog.Period, prog.DataCycle())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := st.Serve(ctx)
	if err != nil {
		return err
	}
	for slot := range slots {
		if slot.Idle() {
			fmt.Printf("slot %4d gen %d  ⊔\n", slot.T, slot.Generation)
		} else {
			fmt.Printf("slot %4d gen %d  %s[%d]  %d bytes\n",
				slot.T, slot.Generation, slot.File, slot.Seq+1, len(slot.Payload))
		}
		if slot.T+1 >= n {
			break
		}
	}
	return nil
}
