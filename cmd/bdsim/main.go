// Command bdsim runs an end-to-end fault-injection simulation of a
// broadcast disk: it builds a program for a synthetic workload, streams
// it through a lossy channel to a population of clients, and reports
// latency and deadline statistics. With -stream it instead starts a
// live Station and prints the streamed broadcast slots; with -fanout
// it runs the real networked pipeline — Station → TCP fan-out →
// -clients live Receivers — and reports per-client deadline and
// latency statistics.
//
// Usage:
//
//	bdsim [-files 8] [-clients 25] [-loss 0.05] [-burst] [-faults 1] [-seed 1] [-layout pinwheel]
//	bdsim -stream 64 [-files 4]
//	bdsim -fanout [-clients 8] [-files 4] [-loss 0.05]
//	bdsim -fanout -cpuprofile cpu.out -memprofile mem.out
//
// -layout selects the program construction strategy for the simulation
// (pinwheel, tiered, flat-spread, flat-sequential); deadlines are
// always judged against the pinwheel windows, so non-real-time layouts
// show their misses.
//
// -cpuprofile and -memprofile write pprof profiles of the selected run
// mode for field profiling of the data plane (`go tool pprof` reads
// them); the heap profile is captured after the run completes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"pinbcast"
	"pinbcast/internal/workload"
)

func main() {
	os.Exit(mainRun())
}

// mainRun holds main's body so profile-flushing defers run before the
// process exits, whatever the run's outcome.
func mainRun() int {
	nFiles := flag.Int("files", 8, "number of broadcast files")
	nClients := flag.Int("clients", 25, "number of clients")
	loss := flag.Float64("loss", 0.05, "block loss probability")
	burst := flag.Bool("burst", false, "use the Gilbert–Elliott burst model instead of iid")
	faults := flag.Int("faults", 1, "designed per-retrieval fault tolerance r")
	seed := flag.Int64("seed", 1, "random seed")
	stream := flag.Int("stream", 0, "serve this many live Station slots instead of simulating")
	fanout := flag.Bool("fanout", false, "run -clients live Receivers over a TCP fan-out instead of simulating")
	layoutName := flag.String("layout", "",
		"construction layout for the simulation (default: pinwheel; registered: "+
			strings.Join(pinbcast.LayoutNames(), ", ")+")")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	// Registered before the CPU-profile defers so that (LIFO) the CPU
	// profile stops before the forced GC and heap write run — tooling
	// overhead must not appear in the captured profile.
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bdsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bdsim:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdsim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bdsim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	var layout pinbcast.Layout
	if *layoutName != "" {
		l, ok := pinbcast.LookupLayout(strings.ToLower(strings.TrimSpace(*layoutName)))
		if !ok {
			fmt.Fprintf(os.Stderr, "bdsim: unknown layout %q (registered: %s)\n",
				*layoutName, strings.Join(pinbcast.LayoutNames(), ", "))
			return 2
		}
		layout = l
	}

	var err error
	switch {
	case *stream > 0:
		err = runStream(*nFiles, *faults, *seed, *stream)
	case *fanout:
		err = runFanout(*nFiles, *nClients, *loss, *faults, *seed)
	default:
		err = run(*nFiles, *nClients, *loss, *burst, *faults, *seed, layout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdsim:", err)
		return 1
	}
	return 0
}

func run(nFiles, nClients int, loss float64, burst bool, faults int, seed int64, layout pinbcast.Layout) error {
	files := workload.Random(nFiles, 6, 10, 80, 0, seed)
	for i := range files {
		files[i].Faults = faults
	}
	prog, err := pinbcast.Build(pinbcast.BuildConfig{Files: files, Layout: layout})
	if err != nil {
		return err
	}
	// Deadlines are the pinwheel windows at the Eq-2 bandwidth, whatever
	// layout built the program — the real-time yardstick of the paper.
	bw := prog.Bandwidth
	if bw == 0 {
		bw = pinbcast.SufficientBandwidth(files)
	}
	fmt.Printf("layout %s: bandwidth %d blocks/unit (Eq 2), period %d, data cycle %d\n",
		prog.Origin, bw, prog.Period, prog.DataCycle())

	var fault pinbcast.FaultModel
	if burst {
		fault = pinbcast.BurstFaults(loss/2, 0.2, 0.9, seed)
	} else {
		fault = pinbcast.BernoulliFaults(loss, seed)
	}

	contents := workload.Contents(files, 128, seed)
	var clients []pinbcast.ClientSpec
	for c := 0; c < nClients; c++ {
		f := files[c%len(files)]
		clients = append(clients, pinbcast.ClientSpec{
			Start: (c * 37) % (4 * prog.Period),
			Requests: []pinbcast.Request{
				{File: f.Name, Deadline: bw * f.Latency},
			},
		})
	}
	rep, err := pinbcast.Simulate(pinbcast.SimConfig{
		Program:  prog,
		Contents: contents,
		Fault:    fault,
		Clients:  clients,
		Horizon:  64 * prog.DataCycle(),
	})
	if err != nil {
		return err
	}

	fmt.Printf("channel: %s — %d blocks sent, %d corrupted (%.2f%%)\n",
		rep.FaultModel, rep.BlocksSent, rep.BlocksCorrupted,
		100*float64(rep.BlocksCorrupted)/float64(rep.BlocksSent))
	names := make([]string, 0, len(rep.PerFile))
	for name := range rep.PerFile {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-8s %9s %10s %8s %8s %12s %8s\n",
		"file", "requests", "completed", "met", "missed", "mean lat.", "max lat.")
	for _, name := range names {
		st := rep.PerFile[name]
		fmt.Printf("%-8s %9d %10d %8d %8d %12.1f %8d\n",
			name, st.Requests, st.Completed, st.DeadlineMet, st.DeadlineMissed,
			st.MeanLatency, st.MaxLatency)
	}
	fmt.Printf("overall deadline miss ratio: %.2f%%\n", 100*rep.MissRatio())
	return nil
}

// runFanout runs the full networked pipeline on the loopback
// interface: a Station broadcasts through a TCP Fanout to nClients
// live Receivers, each with its own Bernoulli reception-fault stream,
// and per-client deadline-met ratios and reconstruction latencies are
// reported.
func runFanout(nFiles, nClients int, loss float64, faults int, seed int64) error {
	if nClients < 1 {
		return fmt.Errorf("need at least one client, got %d", nClients)
	}
	files := workload.Random(nFiles, 6, 10, 80, 0, seed)
	for i := range files {
		files[i].Faults = faults
	}
	st, err := pinbcast.New(
		pinbcast.WithFiles(files...),
		pinbcast.WithContents(workload.Contents(files, 128, seed)),
		pinbcast.WithSlotBuffer(256),
	)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fan := pinbcast.NewFanout(ln, 0)
	defer fan.Close()
	fmt.Printf("fanout: %s — %d receivers, bandwidth %d blocks/unit, loss %.2f%%\n",
		fan.Addr(), nClients, st.Bandwidth(), 100*loss)

	// Each receiver subscribes over TCP and wants two files, with
	// deadlines of two latency windows (one window plus one cycle of
	// fault recovery).
	dir := st.Directory()
	receivers := make([]*pinbcast.Receiver, nClients)
	wanted := make([][]pinbcast.Request, nClients)
	for c := range receivers {
		src, err := pinbcast.DialSource(fan.Addr().String())
		if err != nil {
			return err
		}
		src.Timeout = 30 * time.Second
		// Receivers decode each slot before fetching the next, so the
		// allocation-free frame-buffer reuse path is safe here.
		src.Reuse = true
		f1 := files[c%len(files)]
		f2 := files[(c+1+c/len(files))%len(files)]
		reqs := []pinbcast.Request{{File: f1.Name, Deadline: 2 * st.Bandwidth() * f1.Latency}}
		if f2.Name != f1.Name {
			reqs = append(reqs, pinbcast.Request{File: f2.Name, Deadline: 2 * st.Bandwidth() * f2.Latency})
		}
		wanted[c] = reqs
		receivers[c], err = pinbcast.Subscribe(src,
			pinbcast.WithDirectory(dir),
			pinbcast.WithRequests(reqs...),
			pinbcast.WithReceiverFaults(pinbcast.BernoulliFaults(loss, seed+int64(c))),
		)
		if err != nil {
			return err
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for fan.ClientCount() < nClients {
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d of %d receivers subscribed", fan.ClientCount(), nClients)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go st.Broadcast(ctx, fan)

	results := make([][]pinbcast.Result, nClients)
	metrics := make([]pinbcast.ReceiverMetrics, nClients)
	errs := make([]error, nClients)
	var wg sync.WaitGroup
	for c, r := range receivers {
		wg.Add(1)
		go func(c int, r *pinbcast.Receiver) {
			defer wg.Done()
			results[c], errs[c] = r.Run(context.Background())
			metrics[c] = r.Metrics()
			// Stay tuned until the broadcast winds down so the fan-out
			// never drops a finished-but-healthy subscriber while others
			// are still retrieving — Evicted then counts real laggards.
			go func() {
				defer r.Close()
				for {
					if _, err := r.Step(); err != nil {
						return
					}
				}
			}()
		}(c, r)
	}
	wg.Wait()
	cancel()

	fmt.Printf("%-8s %-24s %10s %12s %10s\n", "client", "files", "met", "mean lat.", "slots")
	totalMet, totalReqs := 0, 0
	for c := range receivers {
		if errs[c] != nil {
			return fmt.Errorf("client %d: %w", c, errs[c])
		}
		met, lat, n := 0, 0, 0
		names := ""
		for _, res := range results[c] {
			if names != "" {
				names += ","
			}
			names += res.File
			if res.Completed {
				lat += res.Latency
				n++
			}
			if res.DeadlineMet {
				met++
			}
		}
		totalMet += met
		totalReqs += len(results[c])
		mean := 0.0
		if n > 0 {
			mean = float64(lat) / float64(n)
		}
		fmt.Printf("%-8d %-24s %6d/%-3d %12.1f %10d\n",
			c, names, met, len(results[c]), mean, metrics[c].Slots)
	}
	fmt.Printf("per-client deadline-met ratio: %.2f%% (%d/%d requests); fan-out evictions: %d\n",
		100*float64(totalMet)/float64(totalReqs), totalMet, totalReqs, fan.Evicted())
	return nil
}

// runStream brings up a live Station for the workload and prints the
// first n slots of its broadcast stream.
func runStream(nFiles, faults int, seed int64, n int) error {
	files := workload.Random(nFiles, 6, 10, 80, 0, seed)
	for i := range files {
		files[i].Faults = faults
	}
	st, err := pinbcast.New(
		pinbcast.WithFiles(files...),
		pinbcast.WithContents(workload.Contents(files, 128, seed)),
	)
	if err != nil {
		return err
	}
	prog := st.Program()
	fmt.Printf("station: bandwidth %d blocks/unit, period %d, data cycle %d\n",
		st.Bandwidth(), prog.Period, prog.DataCycle())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := st.Serve(ctx)
	if err != nil {
		return err
	}
	for slot := range slots {
		if slot.Idle() {
			fmt.Printf("slot %4d gen %d  ⊔\n", slot.T, slot.Generation)
		} else {
			fmt.Printf("slot %4d gen %d  %s[%d]  %d bytes\n",
				slot.T, slot.Generation, slot.File, slot.Seq+1, len(slot.Payload))
		}
		if slot.T+1 >= n {
			break
		}
	}
	return nil
}
