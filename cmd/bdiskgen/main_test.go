package main

import (
	"encoding/json"
	"testing"

	"pinbcast"
)

func TestSpecParsing(t *testing.T) {
	raw := []byte(`{
		"files": [
			{"name": "traffic", "blocks": 4, "latency": 8, "faults": 1},
			{"name": "map", "blocks": 8, "latency": 40, "width": 12}
		]
	}`)
	var s spec
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Files) != 2 || s.Files[0].Faults != 1 || s.Files[1].Width != 12 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestGeneralizedSpecParsing(t *testing.T) {
	raw := []byte(`{"generalized": [{"name": "A", "blocks": 2, "latencies": [8, 10]}]}`)
	var s spec
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Generalized) != 1 || len(s.Generalized[0].Latencies) != 2 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestRunRegular(t *testing.T) {
	var s spec
	raw := []byte(`{"files": [
		{"name": "a", "blocks": 2, "latency": 8, "faults": 1},
		{"name": "b", "blocks": 1, "latency": 6}
	]}`)
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if err := runRegular(s, 0); err != nil {
		t.Fatal(err)
	}
	if err := runRegular(s, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunGeneralized(t *testing.T) {
	var s spec
	raw := []byte(`{"generalized": [
		{"name": "A", "blocks": 2, "latencies": [8, 10]},
		{"name": "B", "blocks": 1, "latencies": [6]}
	]}`)
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if err := runGeneralized(s); err != nil {
		t.Fatal(err)
	}
}

func TestRunRegularTieredLayout(t *testing.T) {
	l, ok := pinbcast.LookupLayout(pinbcast.LayoutTiered)
	if !ok {
		t.Fatal("tiered layout not registered")
	}
	layout = l
	defer func() { layout = nil }()
	// Cold listed first: AutoTier reorders hottest-first, so the report
	// path must resolve files by name rather than spec index.
	var s spec
	raw := []byte(`{"files": [
		{"name": "cold", "blocks": 2, "latency": 16},
		{"name": "hot", "blocks": 1, "latency": 2}
	]}`)
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if err := runRegular(s, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRegularRejectsBadSpec(t *testing.T) {
	var s spec
	raw := []byte(`{"files": [{"name": "a", "blocks": 0, "latency": 8}]}`)
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if err := runRegular(s, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
