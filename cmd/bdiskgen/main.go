// Command bdiskgen builds a fault-tolerant real-time broadcast program
// from a JSON specification and prints the program, its bandwidth
// sizing and per-file guarantees.
//
// Usage:
//
//	bdiskgen -spec files.json [-bandwidth 0] [-layout pinwheel] [-scheduler sx,edf] [-out prog.json]
//
// Specification format (latency in time units; faults optional):
//
//	{
//	  "files": [
//	    {"name": "traffic", "blocks": 4, "latency": 8, "faults": 1},
//	    {"name": "map",     "blocks": 8, "latency": 40}
//	  ]
//	}
//
// With -generalized the spec instead lists latency vectors in slots:
//
//	{"generalized": [{"name": "A", "blocks": 2, "latencies": [8, 10]}]}
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"pinbcast"
)

type spec struct {
	Files []struct {
		Name    string `json:"name"`
		Blocks  int    `json:"blocks"`
		Latency int    `json:"latency"`
		Faults  int    `json:"faults"`
		Width   int    `json:"width"`
	} `json:"files"`
	Generalized []struct {
		Name      string `json:"name"`
		Blocks    int    `json:"blocks"`
		Latencies []int  `json:"latencies"`
	} `json:"generalized"`
}

func main() {
	specPath := flag.String("spec", "", "path to the JSON specification")
	bandwidth := flag.Int("bandwidth", 0, "bandwidth in blocks per time unit (0 = Equation 1/2)")
	out := flag.String("out", "", "write the constructed program as JSON to this path")
	scheduler := flag.String("scheduler", "",
		"comma-separated scheduler chain (default: the portfolio; registered: "+
			strings.Join(pinbcast.SchedulerNames(), ", ")+")")
	layoutName := flag.String("layout", "",
		"construction layout (default: pinwheel; registered: "+
			strings.Join(pinbcast.LayoutNames(), ", ")+")")
	flag.Parse()
	outPath = *out
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "bdiskgen: -spec is required")
		os.Exit(2)
	}
	if *layoutName != "" {
		l, ok := pinbcast.LookupLayout(strings.ToLower(strings.TrimSpace(*layoutName)))
		if !ok {
			fmt.Fprintf(os.Stderr, "bdiskgen: unknown layout %q (registered: %s)\n",
				*layoutName, strings.Join(pinbcast.LayoutNames(), ", "))
			os.Exit(2)
		}
		layout = l
	}
	if *scheduler != "" {
		for _, name := range strings.Split(*scheduler, ",") {
			s, ok := pinbcast.LookupScheduler(strings.ToLower(strings.TrimSpace(name)))
			if !ok {
				fmt.Fprintf(os.Stderr, "bdiskgen: unknown scheduler %q (registered: %s)\n",
					name, strings.Join(pinbcast.SchedulerNames(), ", "))
				os.Exit(2)
			}
			chain = append(chain, s)
		}
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdiskgen:", err)
		os.Exit(1)
	}
	var s spec
	if err := json.Unmarshal(raw, &s); err != nil {
		fmt.Fprintln(os.Stderr, "bdiskgen: parsing spec:", err)
		os.Exit(1)
	}

	switch {
	case len(s.Generalized) > 0:
		fail(runGeneralized(s))
	case len(s.Files) > 0:
		fail(runRegular(s, *bandwidth))
	default:
		fmt.Fprintln(os.Stderr, "bdiskgen: spec lists no files")
		os.Exit(1)
	}
}

// fail reports a construction error with its typed-error class and
// exits; nil is a no-op.
func fail(err error) {
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, pinbcast.ErrBadSpec):
		fmt.Fprintln(os.Stderr, "bdiskgen: invalid specification:", err)
		os.Exit(2)
	case errors.Is(err, pinbcast.ErrBandwidth):
		fmt.Fprintln(os.Stderr, "bdiskgen: bandwidth too low:", err)
		os.Exit(1)
	case errors.Is(err, pinbcast.ErrInfeasible):
		fmt.Fprintln(os.Stderr, "bdiskgen: infeasible:", err)
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "bdiskgen:", err)
		os.Exit(1)
	}
}

// chain is the -scheduler flag; nil means the portfolio.
var chain []pinbcast.Scheduler

// layout is the -layout flag; nil means the pinwheel construction.
var layout pinbcast.Layout

func runRegular(s spec, bandwidth int) error {
	files := make([]pinbcast.FileSpec, len(s.Files))
	for i, f := range s.Files {
		files[i] = pinbcast.FileSpec{
			Name: f.Name, Blocks: f.Blocks, Latency: f.Latency,
			Faults: f.Faults, DispersalWidth: f.Width,
		}
	}
	// Print the sizing diagnostics before building: when the chosen
	// bandwidth turns out too low, the Eq-1/2 figure is the fix.
	necessary := pinbcast.NecessaryBandwidth(files)
	sufficient := pinbcast.SufficientBandwidth(files)
	if bandwidth == 0 {
		bandwidth = sufficient
	}
	layoutLabel := pinbcast.LayoutPinwheel
	if layout != nil {
		layoutLabel = layout.Name()
	}
	fmt.Printf("files:                %d\n", len(files))
	fmt.Printf("layout:               %s\n", layoutLabel)
	fmt.Printf("necessary bandwidth:  %.4f blocks/unit\n", necessary)
	fmt.Printf("Eq-1/2 bandwidth:     %d blocks/unit (overhead %.1f%%)\n",
		sufficient, 100*(float64(sufficient)/necessary-1))
	fmt.Printf("chosen bandwidth:     %d blocks/unit\n", bandwidth)
	p, err := pinbcast.Build(pinbcast.BuildConfig{
		Files:      files,
		Bandwidth:  bandwidth,
		Schedulers: chain,
		Layout:     layout,
	})
	if err != nil {
		return err
	}
	if err := writeProgram(p); err != nil {
		return err
	}
	fmt.Printf("program period:       %d slots (%s)\n", p.Period, p.Origin)
	fmt.Printf("program data cycle:   %d slots\n", p.DataCycle())
	fmt.Printf("utilization:          %.1f%%\n", 100*utilization(p))
	for _, f := range files {
		// Layouts may reorder the program's file table (tiering groups
		// by frequency), so resolve each spec by name.
		i := p.FileIndex(f.Name)
		if i < 0 {
			return fmt.Errorf("bdiskgen: file %q missing from program", f.Name)
		}
		if p.Bandwidth > 0 {
			// The pinwheel construction certifies the window guarantee.
			fmt.Printf("  %-12s m=%d r=%d window=%d slots/period=%d δ=%d\n",
				f.Name, f.Blocks, f.Faults, bandwidth*f.Latency, p.PerPeriod(i), p.MaxGap(i))
			continue
		}
		// Other layouts bound nothing: report the measured profile
		// against the window the pinwheel layout would have guaranteed.
		mean, worst := pinbcast.LatencyProfile(p, i)
		fmt.Printf("  %-12s m=%d r=%d mean=%.1f worst=%d (vs window %d) slots/period=%d δ=%d\n",
			f.Name, f.Blocks, f.Faults, mean, worst, bandwidth*f.Latency, p.PerPeriod(i), p.MaxGap(i))
	}
	if p.Period <= 64 {
		fmt.Printf("program:              %s\n", p)
	}
	return nil
}

func runGeneralized(s spec) error {
	files := make([]pinbcast.GenFileSpec, len(s.Generalized))
	for i, f := range s.Generalized {
		files[i] = pinbcast.GenFileSpec{Name: f.Name, Blocks: f.Blocks, Latencies: f.Latencies}
	}
	res, err := pinbcast.BuildGeneralizedProgram(files)
	if err != nil {
		return err
	}
	fmt.Printf("files:             %d\n", len(files))
	fmt.Printf("nice conjunct:     %s\n", res.Conjunct)
	fmt.Printf("conjunct density:  %.4f\n", res.Conjunct.Density())
	fmt.Printf("program period:    %d slots (%s)\n", res.Program.Period, res.Program.Origin)
	for i, f := range files {
		fmt.Printf("  %-12s m=%d d⃗=%v slots/period=%d δ=%d\n",
			f.Name, f.Blocks, f.Latencies, res.Program.PerPeriod(i), res.Program.MaxGap(i))
	}
	if res.Program.Period <= 64 {
		fmt.Printf("program:           %s\n", res.Program)
	}
	return nil
}

// outPath is the -out flag; empty means no program file is written.
var outPath string

// writeProgram serializes the program to outPath when set.
func writeProgram(p *pinbcast.Program) error {
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("program written:      %s (%d bytes)\n", outPath, len(data))
	return nil
}

func utilization(p *pinbcast.Program) float64 {
	busy := 0
	for _, v := range p.Slots {
		if v != pinbcast.Idle {
			busy++
		}
	}
	return float64(busy) / float64(p.Period)
}
