// Command benchguard compares a fresh benchmark series against a
// committed baseline snapshot and fails on data-plane regressions:
//
//	go run ./cmd/benchguard -baseline bench/BENCH_dataplane.json BENCH_dataplane.json
//
// Both files hold `go test -json` output (the format CI uploads and
// bench/ commits); plain `go test -bench` text is accepted too. For
// every benchmark present in the baseline, the fresh run must
//
//   - reach at least (100 − max-regress)% of the baseline's MB/s, when
//     the baseline reports throughput, and
//   - not report more allocs/op than the baseline — an allocation
//     sneaking into a zero-alloc loop is a correctness bug in the
//     buffer-reuse contract, whatever the timing says.
//
// A baseline benchmark missing from the fresh run fails the guard: a
// deleted or renamed benchmark must be re-baselined deliberately, not
// silently unguarded. Extra fresh benchmarks are ignored (they get a
// baseline when the snapshot is next regenerated).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result holds the guarded metrics of one benchmark line.
type result struct {
	mbps      float64
	allocs    float64
	hasMBps   bool
	hasAllocs bool
}

// cpuSuffix strips the -GOMAXPROCS suffix so baselines survive runner
// shape changes.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse reads one benchmark series, in `go test -json` or plain text
// form, and returns the metrics per benchmark name. Duplicate names
// (e.g. -count > 1) keep the last run.
func parse(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// test2json splits benchmark result lines across Output events;
	// reassemble the whole stream before scanning lines.
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "{") {
			// Plain `go test -bench` text.
			text.WriteString(line)
			text.WriteByte('\n')
			continue
		}
		var ev struct {
			Action string
			Output string
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}

	out := map[string]result{}
	for _, line := range strings.Split(text.String(), "\n") {
		fields := strings.Fields(line)
		// A result line is "BenchmarkName iterations metric unit ...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || len(fields[0]) == len("Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		var r result
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "MB/s":
				r.mbps, r.hasMBps = v, true
			case "allocs/op":
				r.allocs, r.hasAllocs = v, true
			}
		}
		out[name] = r
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "committed benchmark snapshot to compare against")
	maxRegress := flag.Float64("max-regress", 20, "largest tolerated MB/s drop, in percent")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchguard -baseline SNAPSHOT FRESH\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *baselinePath == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := parse(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	fresh, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		base := baseline[name]
		fr, ok := fresh[name]
		if !ok {
			fmt.Printf("FAIL %s: present in baseline but missing from the fresh run (re-baseline deliberately)\n", name)
			failed = true
			continue
		}
		if base.hasMBps && fr.hasMBps {
			floor := base.mbps * (1 - *maxRegress/100)
			if fr.mbps < floor {
				fmt.Printf("FAIL %s: %.1f MB/s, below %.1f (baseline %.1f − %.0f%%)\n",
					name, fr.mbps, floor, base.mbps, *maxRegress)
				failed = true
			} else {
				fmt.Printf("ok   %s: %.1f MB/s (baseline %.1f)\n", name, fr.mbps, base.mbps)
			}
		}
		if base.hasAllocs && fr.hasAllocs {
			switch {
			case fr.allocs > base.allocs:
				fmt.Printf("FAIL %s: %.0f allocs/op, up from %.0f\n", name, fr.allocs, base.allocs)
				failed = true
			case !base.hasMBps:
				fmt.Printf("ok   %s: %.0f allocs/op (baseline %.0f)\n", name, fr.allocs, base.allocs)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
