package pinbcast

import "pinbcast/internal/rtdb"

// Read-only client transactions over broadcast data (§1): a transaction
// reads a set of broadcast items and must complete retrieval of all of
// them before a firm deadline. Because the pinwheel construction bounds
// every file's worst-case retrieval by its window B·Tᵢ, a transaction's
// deadline can be guaranteed at admission time — the contract-before-
// service discipline the paper argues real-time databases need. For a
// live broadcast, Station.AdmitTxn negotiates the same guarantee
// online and holds later program changes to it.

// Txn is a read-only transaction: a named read set with a firm deadline
// in slots.
type Txn = rtdb.Txn

// GuaranteeTxn decides analytically, at admission time, whether the
// transaction's deadline is guaranteed by the pinwheel construction at
// the given bandwidth: every read file's window B·Tᵢ (its worst-case
// fault-tolerant retrieval bound) must fit in the deadline. It returns
// the binding worst-case bound in slots. The analytic bound holds for
// any program the pinwheel layout builds from these files at this
// bandwidth; for other layouts, measure with TxnWorstLatency or
// negotiate through Station.AdmitTxn.
func GuaranteeTxn(files []FileSpec, bandwidth int, x Txn) (bool, int, error) {
	return rtdb.GuaranteeTxn(files, bandwidth, x)
}

// TxnLatency returns the fault-free retrieval time of the transaction
// on the program when the client starts listening at the given slot:
// the time until every read file's reconstruction threshold of blocks
// has passed.
func TxnLatency(p *Program, x Txn, start int) (int, error) {
	return rtdb.TxnLatency(p, x, start)
}

// TxnWorstLatency maximizes TxnLatency over every start slot of one
// period — the measured worst case of the transaction on this exact
// program, whatever layout built it.
func TxnWorstLatency(p *Program, x Txn) (int, error) {
	return rtdb.TxnWorstLatency(p, x)
}

// MaxStaleness bounds the age of item data a client holds right after
// retrieving it, when the server refreshes the item every refreshSlots
// slots and retrieval takes at most windowSlots: the copy captured on
// the air may already be up to refreshSlots old when its last block
// leaves the server, plus the retrieval time itself. The absolute
// temporal-consistency constraint of §1 is met whenever the sum stays
// within the item's constraint.
func MaxStaleness(windowSlots, refreshSlots int) int {
	return rtdb.MaxStaleness(windowSlots, refreshSlots)
}
