package pinbcast

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"pinbcast/internal/transport"
)

// Source is the receiving end of a broadcast transport: an ordered
// stream of slots a Receiver tunes into. The paper's channel is a
// one-way downstream medium, so a Source only delivers; it never
// carries anything back. Three implementations ship with the package —
// the Station's in-process stream (SlotSource), a framed TCP connection
// (DialSource), and a replayable recording (Recording.Source) — and one
// Receiver works unchanged against any of them.
type Source interface {
	// Next blocks for the next slot of the broadcast. Idle slots are
	// delivered (with a nil Payload) so receivers observe real slot
	// timing. The stream end is io.EOF.
	Next() (Slot, error)
	// Close releases the source; subsequent Next calls return io.EOF.
	Close() error
}

// Sink is the transmitting end of a broadcast transport: it accepts the
// slot stream a Station serves and carries it outward. Implementations
// shipped with the package: Fanout (framed TCP to N subscribers) and
// Recording (capture for later replay).
type Sink interface {
	// Send transmits one slot. A Sink must tolerate having no audience;
	// broadcast is fire-and-forget.
	Send(Slot) error
	// Close releases the sink.
	Close() error
}

// Pump drains a served slot stream into a sink until the stream closes
// (Station.Serve closes it when its context is cancelled) or the sink
// fails. It is the glue between the Station and any transport:
//
//	slots, _ := station.Serve(ctx)
//	go pinbcast.Pump(slots, fanout)
//
//pinlint:hotpath
func Pump(slots <-chan Slot, sink Sink) error {
	for slot := range slots { //pinlint:allow cancelflow — the slot stream is the cancellation signal: Serve closes it when its ctx is cancelled
		if err := sink.Send(slot); err != nil {
			return err
		}
	}
	return nil
}

// slotSource adapts a Station's served channel to the Source interface.
type slotSource struct {
	slots <-chan Slot
	once  sync.Once
	done  chan struct{}
}

// SlotSource returns the in-process transport: a Source that reads the
// channel returned by Station.Serve. Closing the source detaches the
// receiver without disturbing the station (the serve loop keeps
// streaming to other consumers of the channel, if any).
func SlotSource(slots <-chan Slot) Source {
	return &slotSource{slots: slots, done: make(chan struct{})}
}

func (s *slotSource) Next() (Slot, error) {
	select {
	case <-s.done:
		return Slot{}, io.EOF
	case slot, ok := <-s.slots:
		if !ok {
			return Slot{}, io.EOF
		}
		return slot, nil
	}
}

func (s *slotSource) Close() error {
	s.once.Do(func() { close(s.done) })
	return nil
}

// TCPSource consumes a framed broadcast stream from a Fanout over TCP.
// The wire carries the paper's model faithfully: slot index and raw
// self-identifying block only — no file names, no generation marks —
// so a receiver needs a directory (WithDirectory) to resolve names.
type TCPSource struct {
	r *transport.Receiver
	// Timeout bounds each Next call; zero blocks indefinitely.
	Timeout time.Duration
	// Reuse makes Next read each frame into a buffer reused across
	// calls: the returned Slot's Payload is then valid only until the
	// following Next. A Receiver decodes every slot before advancing,
	// so subscription loops can enable it to receive allocation-free —
	// but leave it off when slots are retained (Record does).
	Reuse bool
}

// DialSource subscribes to the broadcast fan-out at addr.
func DialSource(addr string) (*TCPSource, error) {
	r, err := transport.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("pinbcast: dialing broadcast source: %w", err)
	}
	return &TCPSource{r: r}, nil
}

// Next reads the next frame off the connection.
//
//pinlint:hotpath
func (s *TCPSource) Next() (Slot, error) {
	var (
		t       int
		payload []byte
		err     error
	)
	if s.Reuse {
		t, payload, err = s.r.NextReuse(s.Timeout)
	} else {
		t, payload, err = s.r.Next(s.Timeout)
	}
	if err != nil {
		return Slot{}, err
	}
	slot := Slot{T: t, Payload: payload}
	return slot, nil
}

// Close closes the connection.
func (s *TCPSource) Close() error { return s.r.Close() }

// Recording is a captured broadcast stream: a Sink that retains every
// slot it is sent, replayable any number of times as a Source. It
// makes receiver behaviour reproducible — record one serve pass, then
// drive the same Receiver code offline — and doubles as the in-memory
// transport for tests.
type Recording struct {
	mu    sync.Mutex
	slots []Slot
}

// Record pulls n slots from a source into a new recording.
func Record(src Source, n int) (*Recording, error) {
	rec := &Recording{}
	for i := 0; i < n; i++ {
		slot, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		rec.slots = append(rec.slots, slot)
	}
	return rec, nil
}

// Send retains one slot; Recording is a Sink.
func (rec *Recording) Send(s Slot) error {
	rec.mu.Lock()
	rec.slots = append(rec.slots, s)
	rec.mu.Unlock()
	return nil
}

// Close is a no-op; the recording stays usable for replay.
func (rec *Recording) Close() error { return nil }

// Len returns the number of recorded slots.
func (rec *Recording) Len() int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return len(rec.slots)
}

// Slots returns a copy of the recorded slots in capture order.
func (rec *Recording) Slots() []Slot {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]Slot(nil), rec.slots...)
}

// Source returns a replay of the recording from its first slot. Each
// call returns an independent replay cursor.
func (rec *Recording) Source() Source { return &replaySource{rec: rec} }

type replaySource struct {
	rec    *Recording
	pos    int
	closed bool
}

func (r *replaySource) Next() (Slot, error) {
	r.rec.mu.Lock()
	defer r.rec.mu.Unlock()
	if r.closed || r.pos >= len(r.rec.slots) {
		return Slot{}, io.EOF
	}
	slot := r.rec.slots[r.pos]
	r.pos++
	return slot, nil
}

func (r *replaySource) Close() error {
	r.closed = true
	return nil
}
