// Network: broadcasts a fault-tolerant real-time program over real TCP
// connections (internal/transport) to two concurrently listening
// clients, who reconstruct their files from the framed block stream —
// the full system running end to end on the loopback interface.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"time"

	"pinbcast"
	"pinbcast/internal/client"
	"pinbcast/internal/server"
	"pinbcast/internal/transport"
)

func main() {
	files := []pinbcast.FileSpec{
		{Name: "alerts", Blocks: 2, Latency: 6, Faults: 1},
		{Name: "charts", Blocks: 6, Latency: 30},
	}
	program, err := pinbcast.Build(pinbcast.BuildConfig{Files: files})
	if err != nil {
		log.Fatal(err)
	}
	contents := map[string][]byte{
		"alerts": []byte("storm cell moving northeast, 40 kt"),
		"charts": bytes.Repeat([]byte("chart-tile "), 24),
	}
	srv, err := server.New(program, contents)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	b := transport.NewBroadcaster(ln, srv)
	defer b.Close()
	fmt.Printf("broadcasting on %s (period %d slots, bandwidth %d blocks/unit)\n",
		b.Addr(), program.Period, program.Bandwidth)

	done := make(chan string, 2)
	for i, want := range []string{"alerts", "charts"} {
		go func(id int, file string) {
			recv, err := transport.Dial(b.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer recv.Close()
			c, err := client.New(0, srv.Names(),
				[]client.Request{{File: file}})
			if err != nil {
				log.Fatal(err)
			}
			for !c.Done() {
				slot, payload, err := recv.Next(5 * time.Second)
				if err != nil {
					log.Fatalf("client %d: %v", id, err)
				}
				c.Observe(slot, payload)
			}
			r := c.Results()[0]
			if !bytes.Equal(r.Data, contents[file]) {
				log.Fatalf("client %d: %q corrupted in transit", id, file)
			}
			done <- fmt.Sprintf("client %d got %q intact after %d slots", id, file, r.Latency)
		}(i, want)
	}

	// Wait for both subscriptions, then start the slot clock.
	for b.ClientCount() < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	go func() {
		if err := b.Run(4*program.DataCycle(), time.Millisecond); err != nil {
			log.Print(err)
		}
	}()
	for i := 0; i < 2; i++ {
		fmt.Println(<-done)
	}
}
