// Network: the full public pipeline on the loopback interface — a
// Station broadcasts its fault-tolerant real-time program through a
// TCP Fanout to two concurrently subscribed Receivers, each of which
// reconstructs its file from the framed self-identifying block stream
// while suffering independent reception faults.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"pinbcast"
)

func main() {
	contents := map[string][]byte{
		"alerts": []byte("storm cell moving northeast, 40 kt"),
		"charts": bytes.Repeat([]byte("chart-tile "), 24),
	}
	station, err := pinbcast.New(
		pinbcast.WithFile(pinbcast.FileSpec{Name: "alerts", Blocks: 2, Latency: 6, Faults: 1}, contents["alerts"]),
		pinbcast.WithFile(pinbcast.FileSpec{Name: "charts", Blocks: 6, Latency: 30}, contents["charts"]),
	)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fan := pinbcast.NewFanout(ln, 0)
	defer fan.Close()
	prog := station.Program()
	fmt.Printf("broadcasting on %s (period %d slots, bandwidth %d blocks/unit)\n",
		fan.Addr(), prog.Period, station.Bandwidth())

	// Two receivers tune in over TCP. The wire carries only the paper's
	// self-identifying blocks, so each receiver gets the directory out
	// of band.
	done := make(chan string, 2)
	for i, want := range []string{"alerts", "charts"} {
		go func(id int, file string) {
			src, err := pinbcast.DialSource(fan.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			src.Timeout = 5 * time.Second
			rcv, err := pinbcast.Subscribe(src,
				pinbcast.WithDirectory(station.Directory()),
				pinbcast.WithRequest(file, 0),
				pinbcast.WithReceiverFaults(pinbcast.BernoulliFaults(0.05, int64(id+1))),
			)
			if err != nil {
				log.Fatal(err)
			}
			defer rcv.Close()
			results, err := rcv.Run(context.Background())
			if err != nil {
				log.Fatalf("receiver %d: %v", id, err)
			}
			r := results[0]
			if !r.Completed || !bytes.Equal(r.Data, contents[file]) {
				log.Fatalf("receiver %d: %q corrupted in transit", id, file)
			}
			m := rcv.Metrics()
			done <- fmt.Sprintf("receiver %d got %q intact after %d slots (%d blocks seen, %d corrupted)",
				id, file, r.Latency, m.Blocks, m.Corrupted)
		}(i, want)
	}

	// Wait for both subscriptions, then put the station on the air.
	for fan.ClientCount() < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := station.Broadcast(ctx, fan); err != nil {
			log.Print(err)
		}
	}()
	for i := 0; i < 2; i++ {
		fmt.Println(<-done)
	}
}
