// Quickstart: build a fault-tolerant real-time broadcast program for
// two files, run a lossy-channel simulation, and verify that a client
// retrieves both files intact and on time.
package main

import (
	"bytes"
	"fmt"
	"log"

	"pinbcast"
)

func main() {
	// Two files: a hot traffic bulletin that must be retrievable within
	// 8 time units even if one of its blocks is destroyed, and a colder
	// map that can take 40.
	files := []pinbcast.FileSpec{
		{Name: "traffic", Blocks: 4, Latency: 8, Faults: 1},
		{Name: "map", Blocks: 8, Latency: 40},
	}

	fmt.Printf("necessary bandwidth:   %.3f blocks/unit\n", pinbcast.NecessaryBandwidth(files))
	fmt.Printf("Equation-2 bandwidth:  %d blocks/unit\n", pinbcast.SufficientBandwidth(files))

	program, err := pinbcast.BuildProgramAuto(files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program period:        %d slots, data cycle %d slots\n",
		program.Period, program.DataCycle())

	contents := map[string][]byte{
		"traffic": []byte("congestion northbound at exit 9; reroute via route 128"),
		"map":     bytes.Repeat([]byte("tile "), 64),
	}
	report, err := pinbcast.Simulate(pinbcast.SimConfig{
		Program:  program,
		Contents: contents,
		Fault:    pinbcast.BernoulliFaults(0.05, 42), // 5% block loss
		Clients: []pinbcast.ClientSpec{
			{Start: 3, Requests: []pinbcast.Request{
				{File: "traffic", Deadline: program.Bandwidth * 8},
				{File: "map", Deadline: program.Bandwidth * 40},
			}},
		},
		Horizon: 64 * program.DataCycle(),
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range report.Results {
		status := "MISSED"
		if r.DeadlineMet {
			status = "met"
		}
		intact := bytes.Equal(r.Data, contents[r.File])
		fmt.Printf("file %-8s latency %3d slots (deadline %3d, %s), content intact: %v\n",
			r.File, r.Latency, r.Deadline, status, intact)
	}
	fmt.Printf("channel: %d blocks sent, %d corrupted\n",
		report.BlocksSent, report.BlocksCorrupted)
}
