// Quickstart: run a broadcast disk as a live Station service — build a
// fault-tolerant real-time program for two files, stream it with
// Serve(ctx), reconstruct a file from the slot stream, and admit a
// third file online at a data-cycle boundary.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"pinbcast"
)

func main() {
	// Two files: a hot traffic bulletin that must be retrievable within
	// 8 time units even if one of its blocks is destroyed, and a colder
	// map that can take 40.
	traffic := []byte("congestion northbound at exit 9; reroute via route 128")
	tiles := bytes.Repeat([]byte("tile "), 64)
	station, err := pinbcast.New(
		pinbcast.WithFile(pinbcast.FileSpec{Name: "traffic", Blocks: 4, Latency: 8, Faults: 1}, traffic),
		pinbcast.WithFile(pinbcast.FileSpec{Name: "map", Blocks: 8, Latency: 40}, tiles),
	)
	if err != nil {
		log.Fatal(err)
	}
	program := station.Program()
	fmt.Printf("bandwidth:      %d blocks/unit (Equation 2)\n", station.Bandwidth())
	fmt.Printf("program period: %d slots, data cycle %d slots\n",
		program.Period, program.DataCycle())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := station.Serve(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Reconstruct "traffic" straight from the slot stream: any 4
	// distinct blocks suffice (Rabin's IDA).
	blocks := map[int]*pinbcast.Block{}
	for slot := range slots {
		if slot.File == "traffic" {
			blocks[slot.Seq] = slot.Block
			if len(blocks) == 4 {
				got := make([]*pinbcast.Block, 0, len(blocks))
				for _, b := range blocks {
					got = append(got, b)
				}
				data, err := pinbcast.Reconstruct(got)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("reconstructed %q after %d slots, intact: %v\n",
					"traffic", slot.T+1, bytes.Equal(data, traffic))
				break
			}
		}
	}

	// Admit a third file online: admission control verifies the density
	// guarantee, and the new program takes over at the next data-cycle
	// boundary of the running broadcast.
	err = station.Admit(pinbcast.FileSpec{Name: "alerts", Blocks: 2, Latency: 20}, []byte("storm cell NE"))
	if err != nil {
		log.Fatal(err)
	}
	for slot := range slots {
		if slot.Generation == 2 {
			fmt.Printf("admitted %q online: generation 2 live at slot %d (%d files)\n",
				"alerts", slot.T, len(station.Files()))
			break
		}
	}
}
