// AWACS: the paper's running real-time database example (§1, §2.2). An
// Airborne Warning and Control System broadcasts positional data items
// whose temporal-consistency constraints derive from platform
// velocities: an aircraft at 900 km/h with 100 m required accuracy must
// be refreshed every 400 ms, a 60 km/h tank every 6 s. Operation modes
// ("combat", "landing") scale each item's AIDA redundancy, and a live
// Station admits or rejects new sensor feeds online, protecting the
// guarantees of items already on the disk.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"pinbcast"
	"pinbcast/internal/workload"
)

func main() {
	db := workload.AWACS()
	fmt.Println("AWACS real-time database (unit = 100 ms):")
	for _, it := range db.Items {
		fmt.Printf("  %-16s velocity %5.1f m/s, accuracy %5.1f m → constraint %v\n",
			it.Name, it.Velocity, it.Accuracy, it.TemporalConstraint())
	}
	fmt.Println()

	// Mode changes re-derive the broadcast program: combat boosts
	// redundancy on critical items (AIDA's bandwidth-allocation step).
	for _, mode := range []pinbcast.Mode{"combat", "landing"} {
		files, err := db.FileSpecs(mode)
		if err != nil {
			log.Fatal(err)
		}
		program, err := pinbcast.Build(pinbcast.BuildConfig{Files: files})
		if err != nil {
			log.Fatal(err)
		}
		bw := program.Bandwidth
		fmt.Printf("mode %-8s bandwidth %d blocks/unit (%d blocks/s), period %d slots\n",
			mode, bw, bw*int(time.Second/db.Unit), program.Period)
		for i, f := range files {
			fmt.Printf("    %-16s m=%d r=%d window=%4d slots  δ=%d\n",
				f.Name, f.Blocks, f.Faults, bw*f.Latency, program.MaxGap(i))
		}
	}
	fmt.Println()

	// A live combat-mode station with online admission control: a new
	// sensor feed joins only if the density test still passes at the
	// station's bandwidth.
	combat, err := db.FileSpecs("combat")
	if err != nil {
		log.Fatal(err)
	}
	station, err := pinbcast.New(
		pinbcast.WithDatabase(db, "combat"),
		pinbcast.WithContents(workload.Contents(combat, 64, 1)),
	)
	if err != nil {
		log.Fatal(err)
	}
	feed := pinbcast.FileSpec{Name: "radar-sweep", Blocks: 2, Latency: 30, Faults: 1}
	if err := station.Admit(feed, []byte("radar sweep frame")); err != nil {
		fmt.Printf("admission of %s REJECTED: %v\n", feed.Name, err)
	} else {
		fmt.Printf("admitted %s: disk now carries %d items (generation %d)\n",
			feed.Name, len(station.Files()), station.Generation())
	}
	flood := pinbcast.FileSpec{Name: "video-feed", Blocks: 200, Latency: 10}
	if err := station.Admit(flood, []byte("raw video")); errors.Is(err, pinbcast.ErrAdmission) {
		fmt.Printf("admission of %s rejected as designed: density bound protects deadlines\n",
			flood.Name)
	} else if err != nil {
		log.Fatal(err)
	} else {
		log.Fatal("flood item unexpectedly admitted")
	}
}
