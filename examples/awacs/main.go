// AWACS: the paper's running real-time database example (§1, §2.2). An
// Airborne Warning and Control System broadcasts positional data items
// whose temporal-consistency constraints derive from platform
// velocities: an aircraft at 900 km/h with 100 m required accuracy must
// be refreshed every 400 ms, a 60 km/h tank every 6 s. Operation modes
// ("combat", "landing") scale each item's AIDA redundancy.
//
// This example runs the mode-specific catalogs through the public QoS
// API: each mode's database derives a broadcast program; a live combat
// station then negotiates transaction contracts (an intercept
// controller's read set, guaranteed against the certified windows),
// admits a new sensor feed with its own contract, and rejects a flood
// that would endanger the guarantees already issued — leaving the
// schedule and every standing contract untouched.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"pinbcast"
)

func main() {
	db := pinbcast.AWACSCatalog()
	fmt.Println("AWACS real-time database (unit = 100 ms):")
	for _, it := range db.Items {
		fmt.Printf("  %-16s velocity %5.1f m/s, accuracy %5.1f m → constraint %v\n",
			it.Name, it.Velocity, it.Accuracy, it.TemporalConstraint())
	}
	fmt.Println()

	// Mode changes re-derive the broadcast program: combat boosts
	// redundancy on critical items (AIDA's bandwidth-allocation step).
	for _, mode := range []pinbcast.Mode{"combat", "landing"} {
		files, err := db.FileSpecs(mode)
		if err != nil {
			log.Fatal(err)
		}
		program, err := pinbcast.Build(pinbcast.BuildConfig{Files: files})
		if err != nil {
			log.Fatal(err)
		}
		bw := program.Bandwidth
		fmt.Printf("mode %-8s bandwidth %d blocks/unit (%d blocks/s), period %d slots\n",
			mode, bw, bw*int(time.Second/db.Unit), program.Period)
		for i, f := range files {
			fmt.Printf("    %-16s m=%d r=%d window=%4d slots  δ=%d\n",
				f.Name, f.Blocks, f.Faults, bw*f.Latency, program.MaxGap(i))
		}
	}
	fmt.Println()

	// A live combat-mode station negotiating QoS online.
	combat, err := db.FileSpecs("combat")
	if err != nil {
		log.Fatal(err)
	}
	station, err := pinbcast.New(
		pinbcast.WithDatabase(db, "combat"),
		pinbcast.WithContents(pinbcast.CatalogContents(combat, 64, 1)),
	)
	if err != nil {
		log.Fatal(err)
	}
	bw := station.Bandwidth()

	// The intercept controller's transaction reads the fast movers; its
	// deadline is the helicopter's temporal constraint (the looser of
	// the two windows) — guaranteed analytically at admission time.
	intercept := pinbcast.Txn{
		Name:     "intercept-controller",
		Reads:    []string{"aircraft-pos", "helicopter-pos"},
		Deadline: bw * 15, // 1.5 s in slots
	}
	contract, err := station.AdmitTxn(intercept)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contract %q: worst latency %d slots, staleness ≤ %d slots, generation %d\n",
		contract.Name, contract.WorstLatencySlots, contract.StalenessSlots, contract.EffectiveAt)
	if worst, err := pinbcast.TxnWorstLatency(station.Program(), intercept); err == nil {
		fmt.Printf("measured worst case over every start slot: %d — within contract: %v\n",
			worst, worst <= contract.WorstLatencySlots)
	}

	// A new sensor feed joins through negotiation and gets a contract of
	// its own; the rebuilt program must keep the intercept contract.
	feed := pinbcast.FileSpec{Name: "radar-sweep", Blocks: 2, Latency: 30, Faults: 1}
	feedContract, err := station.Negotiate(feed, []byte("radar sweep frame"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("negotiated %q: worst latency %d slots, effective generation %d (disk carries %d items)\n",
		feedContract.Name, feedContract.WorstLatencySlots, feedContract.EffectiveAt,
		len(station.Files()))

	// A raw video flood cannot be admitted at this bandwidth: the
	// density test protects every standing guarantee, and rejection
	// changes nothing.
	before := len(station.Contracts())
	flood := pinbcast.FileSpec{Name: "video-feed", Blocks: 200, Latency: 10}
	if _, err := station.Negotiate(flood, []byte("raw video")); errors.Is(err, pinbcast.ErrAdmission) {
		fmt.Printf("negotiation of %s rejected as designed: density bound protects deadlines\n",
			flood.Name)
	} else if err != nil {
		log.Fatal(err)
	} else {
		log.Fatal("flood item unexpectedly admitted")
	}
	fmt.Printf("contracts still in force: %d of %d\n", len(station.Contracts()), before)
	for _, c := range station.Contracts() {
		fmt.Printf("    %-22s worst %4d slots, staleness ≤ %4d slots\n",
			c.Name, c.WorstLatencySlots, c.StalenessSlots)
	}
}
