// AWACS: the paper's running real-time database example (§1, §2.2). An
// Airborne Warning and Control System broadcasts positional data items
// whose temporal-consistency constraints derive from platform
// velocities: an aircraft at 900 km/h with 100 m required accuracy must
// be refreshed every 400 ms, a 60 km/h tank every 6 s. Operation modes
// ("combat", "landing") scale each item's AIDA redundancy, and
// admission control protects the guarantees of items already on the
// disk.
package main

import (
	"fmt"
	"log"
	"time"

	"pinbcast"
	"pinbcast/internal/workload"
)

func main() {
	db := workload.AWACS()
	fmt.Println("AWACS real-time database (unit = 100 ms):")
	for _, it := range db.Items {
		fmt.Printf("  %-16s velocity %5.1f m/s, accuracy %5.1f m → constraint %v\n",
			it.Name, it.Velocity, it.Accuracy, it.TemporalConstraint())
	}
	fmt.Println()

	// Mode changes re-derive the broadcast program: combat boosts
	// redundancy on critical items (AIDA's bandwidth-allocation step).
	for _, mode := range []pinbcast.Mode{"combat", "landing"} {
		files, err := db.FileSpecs(mode)
		if err != nil {
			log.Fatal(err)
		}
		bw, err := db.Bandwidth(mode)
		if err != nil {
			log.Fatal(err)
		}
		program, err := db.Program(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mode %-8s bandwidth %d blocks/unit (%d blocks/s), period %d slots\n",
			mode, bw, bw*int(time.Second/db.Unit), program.Period)
		for i, f := range files {
			fmt.Printf("    %-16s m=%d r=%d window=%4d slots  δ=%d\n",
				f.Name, f.Blocks, f.Faults, bw*f.Latency, program.MaxGap(i))
		}
	}
	fmt.Println()

	// Admission control: a new sensor feed may join only if the density
	// test still passes at the current bandwidth.
	combat, err := db.FileSpecs("combat")
	if err != nil {
		log.Fatal(err)
	}
	bw, _ := db.Bandwidth("combat")
	feed := pinbcast.FileSpec{Name: "radar-sweep", Blocks: 2, Latency: 30, Faults: 1}
	admitted, err := pinbcast.Admit(combat, feed, bw)
	if err != nil {
		fmt.Printf("admission of %s REJECTED: %v\n", feed.Name, err)
	} else {
		fmt.Printf("admitted %s: disk now carries %d items\n", feed.Name, len(admitted))
	}
	flood := pinbcast.FileSpec{Name: "video-feed", Blocks: 200, Latency: 10}
	if _, err := pinbcast.Admit(admitted, flood, bw); err != nil {
		fmt.Printf("admission of %s rejected as designed: density bound protects deadlines\n",
			flood.Name)
	} else {
		log.Fatal("flood item unexpectedly admitted")
	}
}
