// IVHS: the paper's Intelligent Vehicle Highway System scenario (§1).
// A highway backbone broadcasts per-segment traffic and incident files
// plus a shared route map to thousands of vehicles over a satellite
// downlink; vehicles have no secondary storage and fetch data as it
// goes by. This example sizes the downlink with Equation 2, builds the
// broadcast program, and simulates a fleet of vehicles joining at
// random times under bursty losses.
package main

import (
	"fmt"
	"log"
	"sort"

	"pinbcast"
	"pinbcast/internal/workload"
)

func main() {
	const segments = 6
	files := workload.IVHS(segments, 7)

	fmt.Printf("IVHS workload: %d files over %d highway segments\n", len(files), segments)
	fmt.Printf("necessary bandwidth:  %.3f blocks/unit (unit = 100 ms)\n",
		pinbcast.NecessaryBandwidth(files))
	bw := pinbcast.SufficientBandwidth(files)
	fmt.Printf("Equation-2 bandwidth: %d blocks/unit = %d blocks/s\n", bw, bw*10)

	program, err := pinbcast.Build(pinbcast.BuildConfig{Files: files, Bandwidth: bw})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: period %d slots, data cycle %d, origin %s\n\n",
		program.Period, program.DataCycle(), program.Origin)

	// A fleet of vehicles: each joins mid-broadcast and needs the
	// traffic file of its current segment plus the route map.
	contents := workload.Contents(files, 256, 11)
	var fleet []pinbcast.ClientSpec
	for v := 0; v < 30; v++ {
		seg := v % segments
		fleet = append(fleet, pinbcast.ClientSpec{
			Start: (v * 131) % (3 * program.Period),
			Requests: []pinbcast.Request{
				{File: fmt.Sprintf("traffic-%02d", seg), Deadline: bw * files[2*seg].Latency},
				{File: "route-map", Deadline: bw * 600},
			},
		})
	}
	report, err := pinbcast.Simulate(pinbcast.SimConfig{
		Program:  program,
		Contents: contents,
		Fault:    pinbcast.BurstFaults(0.01, 0.2, 0.9, 3), // bursty satellite fades
		Clients:  fleet,
		Horizon:  16 * program.DataCycle(),
	})
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(report.PerFile))
	for n := range report.PerFile {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-14s %9s %10s %8s %10s\n", "file", "requests", "completed", "missed", "mean lat.")
	for _, n := range names {
		st := report.PerFile[n]
		fmt.Printf("%-14s %9d %10d %8d %10.1f\n",
			n, st.Requests, st.Completed, st.DeadlineMissed, st.MeanLatency)
	}
	fmt.Printf("\nchannel %s: %d/%d blocks corrupted; overall miss ratio %.1f%%\n",
		report.FaultModel, report.BlocksCorrupted, report.BlocksSent, 100*report.MissRatio())
}
