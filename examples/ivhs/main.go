// IVHS: the paper's Intelligent Vehicle Highway System scenario (§1).
// A highway backbone broadcasts per-segment traffic and incident files
// plus a shared route map to thousands of vehicles over a satellite
// downlink; vehicles have no secondary storage and fetch data as it
// goes by.
//
// This example is the catalog → layout → negotiate → guarantee
// pipeline end to end, on the public API alone: it sizes the downlink
// with Equation 2, weighs the tiered Broadcast-Disk layout against the
// pinwheel layout on the same catalog, brings up a live Station,
// negotiates vehicle transaction contracts (accepting the feasible,
// rejecting the unmeetable without disturbing the schedule), admits a
// new segment with its own service contract, and finally simulates a
// fleet joining mid-broadcast under bursty losses.
package main

import (
	"errors"
	"fmt"
	"log"
	"sort"

	"pinbcast"
)

func main() {
	const segments = 6
	files := pinbcast.IVHSCatalog(segments, 7)

	fmt.Printf("IVHS catalog: %d files over %d highway segments\n", len(files), segments)
	fmt.Printf("necessary bandwidth:  %.3f blocks/unit (unit = 100 ms)\n",
		pinbcast.NecessaryBandwidth(files))
	bw := pinbcast.SufficientBandwidth(files)
	fmt.Printf("Equation-2 bandwidth: %d blocks/unit = %d blocks/s\n", bw, bw*10)

	// Layout choice. The tiered layout spins hot files fast and wins on
	// mean latency; the pinwheel layout is the one that can promise a
	// worst case per file — the paper's argument, on this catalog.
	tiered, _ := pinbcast.LookupLayout(pinbcast.LayoutTiered)
	tieredProg, err := pinbcast.Build(pinbcast.BuildConfig{Files: files, Layout: tiered})
	if err != nil {
		log.Fatal(err)
	}
	pinProg, err := pinbcast.Build(pinbcast.BuildConfig{Files: files, Bandwidth: bw})
	if err != nil {
		log.Fatal(err)
	}
	// The tiered layout reorders the file table into frequency tiers, so
	// resolve each catalog entry by name before profiling it.
	fmt.Printf("\n%-14s %8s %14s %16s\n", "file", "window", "tiered worst", "pinwheel worst")
	for _, f := range files[:3] {
		_, tw := pinbcast.LatencyProfile(tieredProg, tieredProg.FileIndex(f.Name))
		_, pw := pinbcast.LatencyProfile(pinProg, pinProg.FileIndex(f.Name))
		fmt.Printf("%-14s %8d %14d %16d\n", f.Name, bw*f.Latency, tw, pw)
	}
	uniform := make([]float64, len(files))
	for i := range uniform {
		uniform[i] = 1.0 / float64(len(files))
	}
	fmt.Printf("uniform weighted mean: tiered %.1f vs pinwheel %.1f slots\n",
		pinbcast.WeightedMeanLatency(tieredProg, uniform),
		pinbcast.WeightedMeanLatency(pinProg, uniform))

	// A live station on the pinwheel layout: only it can back contracts
	// with construction-certified windows.
	contents := pinbcast.CatalogContents(files, 256, 11)
	station, err := pinbcast.New(
		pinbcast.WithFiles(files...),
		pinbcast.WithContents(contents),
		pinbcast.WithBandwidth(bw),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A vehicle negotiates its trip-planner transaction: the local
	// traffic file plus the shared route map, within the map's 60 s
	// freshness budget.
	trip := pinbcast.Txn{
		Name:     "trip-planner",
		Reads:    []string{"traffic-00", "route-map"},
		Deadline: bw * 600,
	}
	contract, err := station.AdmitTxn(trip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontract %q: worst latency %d slots (%.1f s), staleness ≤ %d slots, generation %d\n",
		contract.Name, contract.WorstLatencySlots,
		float64(contract.WorstLatencySlots)/float64(bw)/10,
		contract.StalenessSlots, contract.EffectiveAt)
	if lat, err := pinbcast.TxnLatency(station.Program(), trip, 0); err == nil {
		fmt.Printf("measured from slot 0: %d slots — within contract: %v\n",
			lat, lat <= contract.WorstLatencySlots)
	}

	// An overambitious dashboard wants the whole highway in a second:
	// rejected, and the broadcast is untouched.
	dash := pinbcast.Txn{Name: "dashboard", Reads: []string{"route-map"}, Deadline: 10}
	if _, err := station.AdmitTxn(dash); errors.Is(err, pinbcast.ErrAdmission) {
		fmt.Printf("contract %q REJECTED as designed: %v\n", dash.Name, err)
	} else {
		log.Fatal("dashboard transaction unexpectedly admitted")
	}
	fmt.Printf("contracts in force after rejection: %d (schedule generation %d)\n",
		len(station.Contracts()), station.Generation())

	// A new highway segment comes online: Negotiate admits its traffic
	// file and returns the file's own service contract.
	newSeg := pinbcast.FileSpec{Name: "traffic-06", Blocks: 2, Latency: 20, Faults: 1}
	segData := []byte("segment 6: traffic clear, no incidents")
	contents[newSeg.Name] = segData
	segContract, err := station.Negotiate(newSeg, segData)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("negotiated %q: worst latency %d slots, effective generation %d\n",
		segContract.Name, segContract.WorstLatencySlots, segContract.EffectiveAt)

	// A fleet of vehicles: each joins mid-broadcast and needs the
	// traffic file of its current segment plus the route map.
	program := station.Program()
	var fleet []pinbcast.ClientSpec
	for v := 0; v < 30; v++ {
		seg := v % segments
		fleet = append(fleet, pinbcast.ClientSpec{
			Start: (v * 131) % (3 * program.Period),
			Requests: []pinbcast.Request{
				{File: fmt.Sprintf("traffic-%02d", seg), Deadline: bw * files[2*seg].Latency},
				{File: "route-map", Deadline: bw * 600},
			},
		})
	}
	report, err := pinbcast.Simulate(pinbcast.SimConfig{
		Program:  program,
		Contents: contents,
		Fault:    pinbcast.BurstFaults(0.01, 0.2, 0.9, 3), // bursty satellite fades
		Clients:  fleet,
		Horizon:  16 * program.DataCycle(),
	})
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(report.PerFile))
	for n := range report.PerFile {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\n%-14s %9s %10s %8s %10s\n", "file", "requests", "completed", "missed", "mean lat.")
	for _, n := range names {
		st := report.PerFile[n]
		fmt.Printf("%-14s %9d %10d %8d %10.1f\n",
			n, st.Requests, st.Completed, st.DeadlineMissed, st.MeanLatency)
	}
	fmt.Printf("\nchannel %s: %d/%d blocks corrupted; overall miss ratio %.1f%%\n",
		report.FaultModel, report.BlocksCorrupted, report.BlocksSent, 100*report.MissRatio())
}
