// Fault tolerance: reproduces the paper's central comparison (§2.3,
// Figures 5–7) live. The same two files are broadcast twice — once as a
// plain flat program, once AIDA-dispersed — through a channel that
// destroys exactly the blocks an adversary would pick, and the observed
// recovery delays are set against Lemma 1 (r·τ) and Lemma 2 (r·δ). It
// then demonstrates generalized files (§4): latency vectors that relax
// gracefully as faults accumulate.
package main

import (
	"fmt"
	"log"

	"pinbcast"
	"pinbcast/internal/core"
)

func main() {
	flatFiles := []pinbcast.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1},
		{Name: "B", Blocks: 3, Latency: 1},
	}
	aidaFiles := []pinbcast.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1, DispersalWidth: 10},
		{Name: "B", Blocks: 3, Latency: 1, DispersalWidth: 6},
	}
	flat, err := pinbcast.FlatSpread(flatFiles)
	if err != nil {
		log.Fatal(err)
	}
	aida, err := pinbcast.FlatSpread(aidaFiles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat program (τ=%d):  %s\n", flat.Period, flat)
	fmt.Printf("AIDA program (δ_A=%d, δ_B=%d), data cycle %d:\n  %s\n\n",
		aida.MaxGap(0), aida.MaxGap(1), aida.DataCycle(), aida.RenderCycle(aida.DataCycle()))

	contents := map[string][]byte{
		"A": []byte("file A: five blocks of navigation data"),
		"B": []byte("file B: three blocks"),
	}

	// Adversarial single error against file A's fifth reception.
	fmt.Println("single adversarial error on file A:")
	for _, tc := range []struct {
		name string
		prog *pinbcast.Program
	}{{"flat", flat}, {"AIDA", aida}} {
		kill := tc.prog.Occurrences(0)[4]
		rep, err := pinbcast.Simulate(pinbcast.SimConfig{
			Program:  tc.prog,
			Contents: contents,
			Fault:    pinbcast.SlotFaults(kill),
			Clients: []pinbcast.ClientSpec{
				{Start: 0, Requests: []pinbcast.Request{{File: "A"}}},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		r := rep.Results[0]
		fmt.Printf("  %-5s latency %2d slots (fault-free: 8)\n", tc.name, r.Latency)
	}

	// The exact worst-case table (Figure 7's experiment).
	table, err := core.BuildDelayTable(aida, flat, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworst-case delay vs errors (exact adversarial analysis):")
	fmt.Printf("  %-7s %-9s %-12s %-9s %-12s\n", "errors", "with IDA", "Lemma2 r·δ", "without", "Lemma1 r·τ")
	for i, r := range table.Errors {
		fmt.Printf("  %-7d %-9d %-12d %-9d %-12d\n",
			r, table.WithIDA[i], core.Lemma2Bound(r, 3), table.Without[i], core.Lemma1Bound(r, 8))
	}

	// Generalized files: a file that tolerates 10 slots fault-free but
	// accepts 14 with one fault and 18 with two (§4).
	res, err := pinbcast.BuildGeneralizedProgram([]pinbcast.GenFileSpec{
		{Name: "nav", Blocks: 3, Latencies: []int{10, 14, 18}},
		{Name: "met", Blocks: 2, Latencies: []int{12, 16}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeneralized files (§4): conjunct %s\n", res.Conjunct)
	fmt.Printf("density %.4f, program period %d, origin %s\n",
		res.Conjunct.Density(), res.Program.Period, res.Program.Origin)
}
