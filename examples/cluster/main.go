// Cluster: sharded multi-channel broadcast with cross-channel
// redundancy and failover. A metropolitan IVHS deployment outgrows one
// broadcast channel, so the catalog is sharded across three channels
// (coordinator → K Stations), the hottest files are replicated on two
// channels (quorum-style: any K−R+1 live channels still carry them),
// and vehicles run a MultiTuner that subscribes to every channel,
// retrieves each file from the cheapest live carrier, and hops
// channels when one dies — the regime of Goemans–Lynch–Saias'
// no-repair fault tolerance, layered over the paper's per-channel IDA
// fault model.
//
// The example plans the shard, negotiates cluster-wide contracts
// (composed from per-channel contracts, bounded by the best replica),
// kills a channel mid-broadcast, fails it over (un-replicated files
// re-admitted onto survivors at their next data-cycle boundaries,
// contracts re-verified or revoked with ErrDegraded), and shows the
// tuner retrieving through the failure.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"

	"pinbcast"
)

func main() {
	files := pinbcast.IVHSCatalog(4, 7)
	contents := pinbcast.CatalogContents(files, 96, 7)
	fmt.Printf("catalog: %d files; hottest (replication candidates): %v\n",
		len(files), pinbcast.HottestFiles(files, 3))

	// Plan the deployment: three channels, hottest three files carried
	// twice, per-channel demand leveled by the balanced shard. Every
	// channel is provisioned at the whole catalog's Equation-2
	// bandwidth — the headroom failover re-admission draws on.
	bw := pinbcast.SufficientBandwidth(files)
	c, err := pinbcast.NewCluster(
		pinbcast.WithChannels(3),
		pinbcast.WithReplicas(2),
		pinbcast.WithReplicateHottest(3),
		pinbcast.WithShard(pinbcast.BalancedShard()),
		pinbcast.WithClusterBandwidth(bw),
		pinbcast.WithClusterFiles(files...),
		pinbcast.WithClusterContents(contents),
	)
	if err != nil {
		log.Fatal(err)
	}
	assignment := c.Assignment()
	names := make([]string, 0, len(assignment))
	for name := range assignment {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\nshard plan (%s, %d channels × bandwidth %d):\n", c.ShardPolicy(), c.Channels(), bw)
	for _, name := range names {
		fmt.Printf("  %-12s channels %v\n", name, assignment[name])
	}

	// Cluster-wide QoS: a vehicle's trip transaction reads one hot and
	// one cold file; the cluster composes per-channel contracts and
	// promises both a nominal (best-replica) and a degraded bound.
	// The binding read is the slow route map (latency 600 units): its
	// window B·600 dominates the composed bound.
	trip, err := c.Negotiate(pinbcast.Txn{
		Name:     "trip",
		Reads:    []string{"traffic-00", "route-map"},
		Deadline: 650 * bw,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontract %q: ≤ %d slots nominal, ≤ %d slots with %d channel down\n",
		trip.Name, trip.WorstLatencySlots, trip.DegradedLatencySlots, c.Replicas()-1)

	// Serve all channels in-process and tune in.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := c.Serve(ctx)
	if err != nil {
		log.Fatal(err)
	}
	srcs := make([]pinbcast.Source, len(slots))
	for i, ch := range slots {
		srcs[i] = pinbcast.SlotSource(ch)
	}
	stalePlan := c.FetchPlan()
	mt, err := pinbcast.NewMultiTuner(srcs,
		pinbcast.WithTunerDirectory(c.Directory()),
		pinbcast.WithTunerHomes(stalePlan),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer mt.Close()

	fetch := func(label string, reqs ...string) {
		for _, name := range reqs {
			if err := mt.RequestVia(name, 0, stalePlan[name]); err != nil {
				log.Fatal(err)
			}
		}
		results, err := mt.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", label)
		for _, res := range results[len(results)-len(reqs):] {
			fmt.Printf("  %-12s channel %d, %3d slots\n", res.File, res.Channel, res.Latency)
		}
	}
	fetch("normal service", "traffic-00", "route-map")

	// A channel dies mid-broadcast. The coordinator fails it over:
	// files it alone carried are re-admitted onto survivors at their
	// next data-cycle boundaries; every contract is re-verified.
	victim := stalePlan["route-map"][0]
	rep, err := c.FailChannel(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchannel %d killed: %d files re-admitted, %d lost, contracts kept %v revoked %v\n",
		victim, len(rep.Readmitted), len(rep.Lost), rep.Kept, rep.Revoked)
	moved := make([]string, 0, len(rep.Readmitted))
	for name := range rep.Readmitted {
		moved = append(moved, name)
	}
	sort.Strings(moved)
	for _, name := range moved {
		fmt.Printf("  %-12s -> channel %d\n", name, rep.Readmitted[name])
	}
	if _, err := c.Contract("trip"); errors.Is(err, pinbcast.ErrDegraded) {
		fmt.Println("trip contract revoked: cluster degraded")
	} else if err == nil {
		fmt.Println("trip contract re-verified: still in force")
	}

	// The tuner still holds the stale fetch plan: requests planned on
	// the dead channel hop (its stream has closed), and files that
	// moved are found on their new homes by scanning the survivors.
	fetch("service through the failure (stale plan)", "traffic-00", "route-map")

	m := mt.Metrics()
	fmt.Printf("\ntuner: %d hops, dead channels %v, slots per channel %v\n",
		m.Hops, m.DeadChannels, m.SlotsPerChannel)
}
