package pinbcast

import (
	"fmt"
	"sort"
	"sync"

	"pinbcast/internal/core"
	"pinbcast/internal/multidisk"
)

// Layout is a broadcast-program construction strategy: it turns a file
// set and a channel bandwidth (blocks per time unit; 0 asks the layout
// to size it, where sizing applies) into a cyclic broadcast program.
// Layouts are the construction counterpart of the Scheduler seam: a
// Scheduler orders pinwheel tasks inside the real-time construction,
// while a Layout decides which construction runs at all. The package
// registers four:
//
//   - "pinwheel" — the paper's fault-tolerant real-time construction:
//     guarantees mᵢ+rᵢ block slots in every window of B·Tᵢ slots, so
//     every per-file worst case is bounded (the default).
//   - "tiered" — Acharya–Franklin–Zdonik frequency-tiered Broadcast
//     Disks: files are auto-partitioned into hot/cold tiers by latency
//     constraint and hot tiers spin faster, minimizing mean latency
//     over a skewed access pattern. Bounds nothing; the paper's §1
//     comparison point.
//   - "flat-spread" — the uniformly-interleaved flat baseline of
//     Figures 5–6 (Bresenham spacing minimizes δ).
//   - "flat-sequential" — the naive back-to-back flat baseline.
//
// Applications may register their own with RegisterLayout and select
// them per Build (BuildConfig.Layout) or per Station (WithLayout /
// WithLayoutName).
type Layout interface {
	// Name identifies the layout in registries and flags.
	Name() string
	// Plan constructs the broadcast program for the files at the given
	// bandwidth. Layouts that ignore bandwidth (the flat baselines, the
	// tiered layout) accept 0.
	Plan(files []FileSpec, bandwidth int) (*Program, error)
}

// layoutFunc adapts a function to the Layout interface.
type layoutFunc struct {
	name string
	plan func([]FileSpec, int) (*Program, error)
}

func (l layoutFunc) Name() string { return l.name }
func (l layoutFunc) Plan(files []FileSpec, bandwidth int) (*Program, error) {
	return l.plan(files, bandwidth)
}

// NewLayout wraps a plain planning function as a Layout.
func NewLayout(name string, plan func(files []FileSpec, bandwidth int) (*Program, error)) Layout {
	return layoutFunc{name: name, plan: plan}
}

var (
	layoutMu       sync.RWMutex
	layoutRegistry = map[string]Layout{}
)

// RegisterLayout adds a layout to the global registry, making it
// selectable by name in WithLayoutName and the cmd/ binaries. It
// returns ErrBadSpec when the name is empty or already taken.
func RegisterLayout(l Layout) error {
	name := l.Name()
	if name == "" {
		return fmt.Errorf("pinbcast: layout has no name: %w", ErrBadSpec)
	}
	layoutMu.Lock()
	defer layoutMu.Unlock()
	if _, dup := layoutRegistry[name]; dup {
		return fmt.Errorf("pinbcast: layout %q already registered: %w", name, ErrBadSpec)
	}
	layoutRegistry[name] = l
	return nil
}

// LookupLayout returns the registered layout with the given name.
func LookupLayout(name string) (Layout, bool) {
	layoutMu.RLock()
	defer layoutMu.RUnlock()
	l, ok := layoutRegistry[name]
	return l, ok
}

// LayoutNames returns the names of all registered layouts, sorted.
func LayoutNames() []string {
	layoutMu.RLock()
	defer layoutMu.RUnlock()
	names := make([]string, 0, len(layoutRegistry))
	for name := range layoutRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Built-in layout names.
const (
	LayoutPinwheel       = "pinwheel"        // fault-tolerant real-time construction (§3)
	LayoutTiered         = "tiered"          // frequency-tiered Broadcast Disks (AFZ '95)
	LayoutFlatSpread     = "flat-spread"     // uniformly-interleaved flat baseline
	LayoutFlatSequential = "flat-sequential" // back-to-back flat baseline
)

// pinwheelLayout is the registered "pinwheel" layout. It is a distinct
// type (not a NewLayout closure) so that Build and Station.plan can
// recognize the built-in construction structurally and compose it with
// the configured scheduler chain; a third-party layout that merely
// reuses the name is dispatched like any other custom layout.
type pinwheelLayout struct{}

func (pinwheelLayout) Name() string { return LayoutPinwheel }
func (pinwheelLayout) Plan(files []FileSpec, bandwidth int) (*Program, error) {
	if bandwidth == 0 {
		bandwidth = core.SufficientBandwidth(files)
	}
	return core.BuildProgramWith(files, bandwidth, nil)
}

// isBuiltinPinwheel reports whether l is the built-in pinwheel layout
// (or nil, the default that means the same construction).
func isBuiltinPinwheel(l Layout) bool {
	if l == nil {
		return true
	}
	_, ok := l.(pinwheelLayout)
	return ok
}

func init() {
	for _, l := range []Layout{
		pinwheelLayout{},
		NewLayout(LayoutTiered, func(files []FileSpec, _ int) (*Program, error) {
			return multidisk.Plan(files)
		}),
		NewLayout(LayoutFlatSpread, func(files []FileSpec, _ int) (*Program, error) {
			return core.FlatSpread(files)
		}),
		NewLayout(LayoutFlatSequential, func(files []FileSpec, _ int) (*Program, error) {
			return core.FlatSequential(files)
		}),
	} {
		if err := RegisterLayout(l); err != nil {
			panic(err)
		}
	}
}

// Tiered Broadcast Disks (internal/multidisk), promoted for direct use.
type (
	// Disk is one tier of a multi-disk broadcast: a relative spinning
	// frequency and the files stored on it.
	Disk = multidisk.Disk
)

// AutoTier partitions files into frequency-tiered disks by latency
// constraint: a file of latency L lands on a disk of relative frequency
// 2^⌊log₂ Lmax/L⌋, so tightly-constrained files spin fastest. This is
// the partitioning the "tiered" layout applies.
func AutoTier(files []FileSpec) ([]Disk, error) { return multidisk.AutoTier(files) }

// BuildTiered builds the interleaved multi-disk program for explicit
// tiers; use AutoTier (or the "tiered" layout) to derive tiers from
// latency constraints.
func BuildTiered(disks []Disk) (*Program, error) { return multidisk.BuildProgram(disks) }

// LatencyProfile reports the mean and worst-case fault-free retrieval
// latency of file i of the program over every start slot — the
// analytics behind the paper's multi-disk-versus-pinwheel comparison,
// applicable to any layout's program.
func LatencyProfile(p *Program, file int) (mean float64, worst int) {
	return p.LatencyProfile(file)
}

// WeightedMeanLatency returns the access-probability-weighted mean
// retrieval latency over all files of the program — the objective the
// tiered layout optimizes and the pinwheel construction deliberately
// does not. probs must have one entry per file and sum to 1.
func WeightedMeanLatency(p *Program, probs []float64) float64 {
	return p.WeightedMeanLatency(probs)
}
