package pinbcast

import (
	"fmt"
	"sort"

	"pinbcast/internal/rtdb"
)

// Online QoS negotiation (§1's contract-before-service discipline, made
// live): a client asks the running Station for a guarantee — a
// transaction deadline (AdmitTxn) or a new broadcast file (Negotiate) —
// and receives a typed Contract only if the Station can honor it
// without endangering any guarantee already issued. Rejections wrap
// ErrAdmission and leave the broadcast schedule and every previously
// issued contract untouched; accepted file changes land on data-cycle
// boundaries exactly like Admit and Evict.

// Contract is a QoS guarantee issued by a Station: a bound on the
// worst-case retrieval latency and on the staleness of retrieved data,
// effective from a program generation onward. Once issued, a contract
// is invariant — every later Admit, Evict or Negotiate is verified
// against it and rejected if it would stretch the promised bounds.
type Contract struct {
	// Name identifies the guaranteed party: the transaction name for
	// AdmitTxn contracts, the file name for Negotiate contracts.
	Name string
	// WorstLatencySlots bounds the retrieval latency from any start
	// slot: never below the measured worst case on the issuing program,
	// and raised to the analytic window bound max B·Tᵢ over the read
	// set (certified by construction) on pinwheel-layout programs.
	WorstLatencySlots int
	// StalenessSlots bounds the age of retrieved data, assuming the
	// server refreshes each item at its latency cadence (the item's
	// temporal-consistency constraint, the paper's model):
	// WorstLatencySlots plus the slowest read item's refresh interval.
	StalenessSlots int
	// EffectiveAt is the program generation whose program the bound was
	// computed against and from which the contract is honored: the
	// latest generation at issuance (the staged one when a swap is
	// pending — it goes on air at the next data-cycle boundary), which
	// Negotiate itself stages. Compare Slot.Generation to know when the
	// contract is live on air.
	EffectiveAt int
}

// qosEntry pairs an issued contract with the transaction obligation the
// station re-verifies on every program change.
type qosEntry struct {
	txn Txn
	c   Contract
}

// AdmitTxn negotiates a read-only transaction guarantee against the
// current broadcast: the transaction is admitted only if every read
// file's worst-case retrieval fits its deadline — analytically (the
// pinwheel window bound B·Tᵢ of GuaranteeTxn) when the program was
// built by the pinwheel layout, else by exact measurement on the
// program. On success the returned Contract is recorded and every
// future Admit, Evict and Negotiate is held to it. Rejections wrap
// ErrAdmission (deadline unmeetable) or ErrBadSpec (malformed
// transaction, unknown read item, duplicate contract name) and change
// nothing: the schedule keeps broadcasting and prior contracts stand.
func (st *Station) AdmitTxn(x Txn) (Contract, error) {
	st.buildMu.Lock()
	defer st.buildMu.Unlock()
	if err := x.Validate(); err != nil {
		return Contract{}, err
	}
	if _, dup := st.contractEntry(x.Name); dup {
		return Contract{}, fmt.Errorf("pinbcast: contract %q already issued: %w", x.Name, ErrBadSpec)
	}
	base := st.latest()
	worst, err := st.guaranteeBound(base, x)
	if err != nil {
		return Contract{}, err
	}
	if worst > x.Deadline {
		return Contract{}, fmt.Errorf(
			"pinbcast: transaction %q worst-case retrieval is %d slots, deadline %d: %w",
			x.Name, worst, x.Deadline, ErrAdmission)
	}
	c := Contract{
		Name:              x.Name,
		WorstLatencySlots: worst,
		StalenessSlots:    MaxStaleness(worst, st.refreshBound(base, x.Reads)),
		EffectiveAt:       base.id,
	}
	st.storeContract(qosEntry{txn: x, c: c})
	return c, nil
}

// Negotiate admits a new broadcast file with a service contract: the
// candidate passes density-based admission control at the station's
// bandwidth (a channel-capacity gate that applies whatever layout
// builds the program — the channel still carries one block per slot),
// the rebuilt program is verified against every issued contract, and
// only then is the change staged for the next data-cycle boundary
// (§2.3) — exactly Admit's landing rule. The returned Contract
// bounds the new file's own retrieval and staleness and is recorded
// like an AdmitTxn contract, so later changes preserve it too (evicting
// the file requires releasing its contract first). Rejections wrap
// ErrAdmission and leave the schedule, the file set and all prior
// contracts unchanged.
func (st *Station) Negotiate(f FileSpec, contents []byte) (Contract, error) {
	st.buildMu.Lock()
	defer st.buildMu.Unlock()
	base := st.latest()
	for _, existing := range base.files {
		if existing.Name == f.Name {
			return Contract{}, fmt.Errorf("pinbcast: file %q already broadcast: %w", f.Name, ErrBadSpec)
		}
	}
	if _, dup := st.contractEntry(f.Name); dup {
		return Contract{}, fmt.Errorf("pinbcast: contract %q already issued: %w", f.Name, ErrBadSpec)
	}
	files, err := rtdb.Admit(base.files, f, st.bandwidth)
	if err != nil {
		return Contract{}, err
	}
	prior, had := st.contents[f.Name]
	st.contents[f.Name] = contents
	rollback := func() {
		if had {
			st.contents[f.Name] = prior //pinlint:allow lockcheck — closure only runs under Negotiate's buildMu
		} else {
			delete(st.contents, f.Name) //pinlint:allow lockcheck — closure only runs under Negotiate's buildMu
		}
	}
	gen, err := st.build(files)
	if err != nil {
		rollback()
		return Contract{}, err
	}
	if err := st.verifyContracts(gen); err != nil {
		rollback()
		return Contract{}, err
	}
	// The new file's own guarantee, as a single-read transaction over
	// the staged program.
	read := Txn{Name: f.Name, Reads: []string{f.Name}, Deadline: 1 << 30}
	worst, err := st.guaranteeBound(gen, read)
	if err != nil {
		rollback()
		return Contract{}, err
	}
	c := Contract{
		Name:              f.Name,
		WorstLatencySlots: worst,
		StalenessSlots:    MaxStaleness(worst, st.refreshBound(gen, read.Reads)),
		EffectiveAt:       gen.id,
	}
	read.Deadline = worst
	st.storeContract(qosEntry{txn: read, c: c})
	st.stage(gen)
	return c, nil
}

// ReleaseTxn withdraws an issued contract, freeing later Admit, Evict
// and Negotiate calls from its obligation. Releasing an unknown
// contract wraps ErrBadSpec.
func (st *Station) ReleaseTxn(name string) error {
	st.buildMu.Lock()
	defer st.buildMu.Unlock()
	if _, ok := st.contractEntry(name); !ok {
		return fmt.Errorf("pinbcast: no contract %q: %w", name, ErrBadSpec)
	}
	st.mu.Lock()
	delete(st.qos, name)
	st.mu.Unlock()
	stContracts.Add(-1)
	return nil
}

// Contracts returns every contract currently in force, sorted by name.
func (st *Station) Contracts() []Contract {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Contract, 0, len(st.qos))
	for _, e := range st.qos {
		out = append(out, e.c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// guaranteeBound returns the worst-case retrieval bound the station can
// contract for the transaction on the generation's program: never below
// the measured worst case over every start slot, and raised to the
// analytic pinwheel window bound when the program was built at a known
// bandwidth. For programs of the pinwheel construction the analytic
// bound dominates (VerifyWindows certifies it), so the contract stays
// valid across every future pinwheel rebuild of these specs; measuring
// as the floor keeps contracts sound even for a custom layout that
// stamps a bandwidth on an uncertified program. Caller must hold
// buildMu.
func (st *Station) guaranteeBound(gen *generation, x Txn) (int, error) {
	measured, err := rtdb.TxnWorstLatency(gen.program, x)
	if err != nil {
		return 0, err
	}
	if gen.program.Bandwidth > 0 {
		_, analytic, err := rtdb.GuaranteeTxn(gen.files, gen.program.Bandwidth, x)
		if err != nil {
			return 0, err
		}
		if analytic > measured {
			return analytic, nil
		}
	}
	return measured, nil
}

// refreshBound returns the slowest refresh interval over the read set:
// the window B·Tᵢ when the program was built at a known bandwidth, else
// one program period per item. Caller must hold buildMu.
func (st *Station) refreshBound(gen *generation, reads []string) int {
	worst := 0
	for _, name := range reads {
		refresh := gen.program.Period
		if gen.program.Bandwidth > 0 {
			for _, f := range gen.files {
				if f.Name == name {
					refresh = gen.program.Bandwidth * f.Latency
					break
				}
			}
		}
		if refresh > worst {
			worst = refresh
		}
	}
	return worst
}

// verifyContracts checks every issued contract against a candidate
// generation's program, rejecting the change when any promised bound
// would stretch. Caller must hold buildMu.
func (st *Station) verifyContracts(gen *generation) error {
	st.mu.Lock()
	entries := make([]qosEntry, 0, len(st.qos))
	for _, e := range st.qos {
		entries = append(entries, e)
	}
	st.mu.Unlock()
	for _, e := range entries {
		worst, err := rtdb.TxnWorstLatency(gen.program, e.txn)
		if err != nil {
			return fmt.Errorf("pinbcast: change would void contract %q (%w): %w",
				e.c.Name, err, ErrAdmission)
		}
		if worst > e.c.WorstLatencySlots {
			return fmt.Errorf(
				"pinbcast: change would stretch contract %q to %d slots (promised %d): %w",
				e.c.Name, worst, e.c.WorstLatencySlots, ErrAdmission)
		}
	}
	return nil
}

// contractEntry looks up an issued contract by name. Caller must hold
// buildMu.
func (st *Station) contractEntry(name string) (qosEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.qos[name]
	return e, ok
}

// storeContract records an issued contract. Caller must hold buildMu.
func (st *Station) storeContract(e qosEntry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.qos[e.c.Name] = e
	stContracts.Add(1)
}
