package pinbcast

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"pinbcast/internal/cluster"
	"pinbcast/internal/core"
	"pinbcast/internal/obs"
)

// Shard is a catalog-partitioning policy: it maps each file of a
// catalog to a primary broadcast channel in [0, K). Three policies ship
// with the package — HashShard (stateless, name-addressable),
// HotColdShard (frequency tiers on dedicated channels, after
// Acharya–Franklin–Zdonik), and BalancedShard (levels per-channel
// bandwidth demand, keeping the per-channel LatencyProfile as even as
// the catalog allows) — and applications may register their own with
// RegisterShard.
type Shard = cluster.Shard

// HashShard returns the stateless policy: FNV-32a of the file name
// modulo K, so a file's home is computable from its name alone.
func HashShard() Shard { return cluster.HashShard{} }

// HotColdShard returns the frequency-tiered policy: the hotter half of
// the catalog (by bandwidth share, the access-frequency proxy) is
// spread over the first ⌈K/2⌉ channels, the cold half over the rest.
func HotColdShard() Shard { return cluster.HotColdShard{} }

// BalancedShard returns the latency-balancing policy: files are placed
// hottest-first on the channel with the least accumulated bandwidth
// demand, which keeps per-channel Equation-2 bandwidths — and with them
// the per-channel latency profiles — as even as the catalog allows.
func BalancedShard() Shard { return cluster.BalancedShard{} }

// Built-in shard policy names.
const (
	ShardHash     = "hash"
	ShardHotCold  = "hot-cold"
	ShardBalanced = "balanced"
)

var (
	shardMu       sync.RWMutex
	shardRegistry = map[string]Shard{}
)

// RegisterShard adds a shard policy to the global registry, making it
// selectable by name in WithShardName and the cmd/ binaries. It returns
// ErrBadSpec when the name is empty or already taken.
func RegisterShard(s Shard) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("pinbcast: shard policy has no name: %w", ErrBadSpec)
	}
	shardMu.Lock()
	defer shardMu.Unlock()
	if _, dup := shardRegistry[name]; dup {
		return fmt.Errorf("pinbcast: shard policy %q already registered: %w", name, ErrBadSpec)
	}
	shardRegistry[name] = s
	return nil
}

// LookupShard returns the registered shard policy with the given name.
func LookupShard(name string) (Shard, bool) {
	shardMu.RLock()
	defer shardMu.RUnlock()
	s, ok := shardRegistry[name]
	return s, ok
}

// ShardNames returns the names of all registered shard policies,
// sorted.
func ShardNames() []string {
	shardMu.RLock()
	defer shardMu.RUnlock()
	names := make([]string, 0, len(shardRegistry))
	for name := range shardRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	for _, s := range []Shard{HashShard(), HotColdShard(), BalancedShard()} {
		if err := RegisterShard(s); err != nil {
			panic(err)
		}
	}
}

// Cluster is a sharded multi-channel broadcast deployment: a
// coordinator that partitions one catalog across K Stations (one
// broadcast channel each) under a pluggable Shard policy, replicates
// the hottest files on R ≥ 2 channels (quorum-style: any K−R+1 live
// channels still carry every replicated file, so the cluster withstands
// R−1 channel deaths without repair), and keeps cluster-wide QoS:
// Negotiate composes per-channel Contracts into a ClusterContract, and
// FailChannel re-admits a dead channel's un-replicated files onto the
// survivors at their next data-cycle boundaries, re-verifying every
// issued contract and revoking (ErrDegraded) the ones it can no longer
// honor.
//
// The receiving counterpart is the MultiTuner, which subscribes to all
// channels concurrently, retrieves each request from the cheapest live
// channel, and hops channels on failure.
//
// A Cluster is safe for concurrent use.
type Cluster struct {
	shard    Shard
	replicas int

	stations []*Station
	contents map[string][]byte // master copy, by file name
	specs    map[string]FileSpec

	mu         sync.Mutex
	homes      map[string][]int                 // file -> carrying channels, primary first; guarded by mu
	replicated map[string]bool                  // guarded by mu
	dead       map[int]bool                     // guarded by mu
	stops      []context.CancelFunc             // per-channel broadcast stops (while serving); guarded by mu
	contracts  map[string]*clusterContractEntry // guarded by mu
	lost       map[string]error                 // files no survivor could carry, wrapping ErrDegraded; guarded by mu
}

// clusterContractEntry pairs an issued cluster contract with the
// obligation the coordinator re-verifies after channel failures.
type clusterContractEntry struct {
	txn     Txn
	c       ClusterContract
	revoked error
}

// ClusterContract is a cluster-wide QoS guarantee composed from
// per-channel Contracts: each read file is served by its best replica,
// and replication keeps the promise meaningful through channel deaths.
type ClusterContract struct {
	// Name identifies the guaranteed transaction.
	Name string
	// WorstLatencySlots is the nominal bound: every read retrieved from
	// its best (lowest-bound) replica channel, the binding read's bound
	// taken across the read set.
	WorstLatencySlots int
	// DegradedLatencySlots bounds retrieval with channels down: each
	// read served by its worst surviving replica. For reads replicated
	// on R channels the bound holds through any R−1 channel deaths; for
	// un-replicated reads it equals the nominal bound and survives only
	// re-admission that stays within it.
	DegradedLatencySlots int
	// PerChannel holds the Contracts registered on every live station
	// carrying part of the read set, keyed by channel index. Each
	// station enforces its own replica's bound against its later
	// Admit/Evict/Negotiate calls, exactly like directly issued Station
	// contracts — the degraded promise is only as strong as the worst
	// replica, so every replica is defended. FailChannel refreshes the
	// registrations of contracts it keeps.
	PerChannel map[int]Contract
}

// NewCluster plans and builds a sharded broadcast cluster from
// functional options. At least WithClusterFile (or WithClusterFiles +
// WithClusterContents) and WithChannels are needed; the shard policy
// defaults to BalancedShard, replication to min(2, K) copies of the
// hottest ¼ of the catalog.
//
//	c, err := pinbcast.NewCluster(
//		pinbcast.WithChannels(3),
//		pinbcast.WithReplicas(2),
//		pinbcast.WithClusterFiles(files...),
//		pinbcast.WithClusterContents(contents),
//	)
func NewCluster(opts ...ClusterOption) (*Cluster, error) {
	cfg := &clusterConfig{contents: map[string][]byte{}, channels: 2, replicas: -1, hottest: -1}
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.shard == nil {
		cfg.shard = cluster.BalancedShard{}
	}
	if cfg.replicas < 0 {
		cfg.replicas = 2
		if cfg.channels < 2 {
			cfg.replicas = 1
		}
	}
	if cfg.hottest < 0 {
		cfg.hottest = (len(cfg.files) + 3) / 4
	}
	if err := core.ValidateAll(cfg.files); err != nil {
		return nil, err
	}
	asn, err := cluster.Plan(cfg.files, cfg.channels, cfg.replicas, cfg.hottest, cfg.shard)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		shard:      cfg.shard,
		replicas:   cfg.replicas,
		contents:   map[string][]byte{},
		specs:      map[string]FileSpec{},
		homes:      asn.Homes,
		replicated: asn.Replicated,
		dead:       map[int]bool{},
		contracts:  map[string]*clusterContractEntry{},
		lost:       map[string]error{},
	}
	for _, f := range cfg.files {
		c.specs[f.Name] = f
		data, ok := cfg.contents[f.Name]
		if !ok {
			return nil, fmt.Errorf("pinbcast: no contents for file %q: %w", f.Name, ErrBadSpec)
		}
		c.contents[f.Name] = data
	}
	for _, chFiles := range asn.Channels {
		stOpts := []Option{WithFiles(chFiles...)}
		chContents := make(map[string][]byte, len(chFiles))
		for _, f := range chFiles {
			chContents[f.Name] = c.contents[f.Name]
		}
		stOpts = append(stOpts, WithContents(chContents))
		if cfg.bandwidth > 0 {
			stOpts = append(stOpts, WithBandwidth(cfg.bandwidth))
		}
		stOpts = append(stOpts, cfg.stationOpts...)
		st, err := New(stOpts...)
		if err != nil {
			return nil, fmt.Errorf("pinbcast: building channel %d: %w", len(c.stations), err)
		}
		c.stations = append(c.stations, st)
	}
	c.stops = make([]context.CancelFunc, len(c.stations))
	for i := range c.stations {
		clChannelUp(i).Set(1)
	}
	c.updateGaugesLocked()
	return c, nil
}

// updateGaugesLocked refreshes the cluster-plane gauges after any
// membership or contract mutation: the remaining fault budget (channel
// deaths the replication degree can still absorb) and the smallest
// latency slack over in-force contracts. Caller holds mu, except the
// constructor, whose cluster is not yet shared.
//
//pinlint:holds mu
func (c *Cluster) updateGaugesLocked() {
	budget := int64(c.replicas) - 1 - int64(len(c.dead))
	if budget < 0 {
		budget = 0
	}
	clFaultBudget.Set(budget)
	headroom := int64(0)
	first := true
	for _, e := range c.contracts {
		if e.revoked != nil {
			continue
		}
		slack := int64(e.c.DegradedLatencySlots - e.c.WorstLatencySlots)
		if first || slack < headroom {
			headroom, first = slack, false
		}
	}
	clHeadroom.Set(headroom)
}

// Channels returns K, the number of broadcast channels.
func (c *Cluster) Channels() int { return len(c.stations) }

// Replicas returns R, the replication factor of the hottest files.
func (c *Cluster) Replicas() int { return c.replicas }

// ShardPolicy returns the name of the shard policy the cluster was
// planned with.
func (c *Cluster) ShardPolicy() string { return c.shard.Name() }

// Station returns the station serving channel i — the per-channel
// service handle (its Program, Directory, QoS surface). The station
// object outlives a FailChannel of its channel, but its broadcast does
// not.
func (c *Cluster) Station(i int) *Station {
	if i < 0 || i >= len(c.stations) {
		return nil
	}
	return c.stations[i]
}

// Alive reports whether channel i has not been failed.
func (c *Cluster) Alive(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return i >= 0 && i < len(c.stations) && !c.dead[i]
}

// Live returns the indices of the channels still serving.
func (c *Cluster) Live() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveLocked()
}

func (c *Cluster) liveLocked() []int {
	var out []int
	for i := range c.stations {
		if !c.dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// Assignment returns the live channels carrying each file, primary
// first — the deployment map a MultiTuner ranks its fetches with. The
// map is a fresh copy reflecting failovers applied so far: dead
// channels are dropped, re-admitted homes appear, and files lost to
// failures have no entry (see Lost).
func (c *Cluster) Assignment() map[string][]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]int, len(c.homes))
	for name := range c.homes {
		if live := c.liveHomesLocked(name); len(live) > 0 {
			out[name] = live
		}
	}
	return out
}

// Replicated reports whether the file is carried by more than one
// channel in the original plan.
func (c *Cluster) Replicated(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicated[name]
}

// Lost returns the files the cluster no longer carries anywhere, with
// the reason each was lost (wrapping ErrDegraded), sorted by name.
func (c *Cluster) Lost() map[string]error {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]error, len(c.lost))
	for name, err := range c.lost {
		out[name] = err
	}
	return out
}

// Directory returns the merged id→name directory over every channel —
// what a MultiTuner needs to resolve any file of the catalog on any
// channel (identifiers are name-derived, so replicas agree).
func (c *Cluster) Directory() map[uint32]string {
	out := map[uint32]string{}
	for _, st := range c.stations {
		for id, name := range st.Directory() {
			out[id] = name
		}
	}
	return out
}

// liveHomesLocked returns the live channels carrying the file, primary
// first. Caller holds mu.
func (c *Cluster) liveHomesLocked(name string) []int {
	var out []int
	for _, ch := range c.homes[name] {
		if !c.dead[ch] {
			out = append(out, ch)
		}
	}
	return out
}

// FetchPlan returns, for each carried file, the live channels to fetch
// it from, cheapest first (ascending per-channel worst-case retrieval
// bound). It is the cost model behind MultiTuner's
// cheapest-live-channel policy; pass it through WithTunerHomes.
func (c *Cluster) FetchPlan() map[string][]int {
	c.mu.Lock()
	homes := make(map[string][]int, len(c.homes))
	for name := range c.homes {
		homes[name] = c.liveHomesLocked(name)
	}
	c.mu.Unlock()
	out := make(map[string][]int, len(homes))
	for name, live := range homes {
		if len(live) == 0 {
			continue
		}
		type chBound struct{ ch, bound int }
		ranked := make([]chBound, 0, len(live))
		for _, ch := range live {
			b, err := c.stations[ch].fileBound(name)
			if err != nil {
				b = 1 << 30
			}
			ranked = append(ranked, chBound{ch, b})
		}
		sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].bound < ranked[j].bound })
		order := make([]int, len(ranked))
		for i, cb := range ranked {
			order[i] = cb.ch
		}
		out[name] = order
	}
	return out
}

// Serve starts every live channel's broadcast loop and returns one slot
// stream per channel (nil for already-failed channels). Each loop runs
// until ctx is cancelled or its channel is failed; a partial startup
// failure stops the already-started loops before returning. The
// liveness check and the stop registration happen under one lock, so a
// concurrent FailChannel either sees the loop (and stops it) or
// prevents it from starting.
func (c *Cluster) Serve(ctx context.Context) ([]<-chan Slot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	outs := make([]<-chan Slot, len(c.stations))
	var started []context.CancelFunc
	for i, st := range c.stations {
		if c.dead[i] {
			continue
		}
		cctx, cancel := context.WithCancel(ctx)
		slots, err := st.Serve(cctx)
		if err != nil {
			cancel()
			for _, stop := range started {
				stop()
			}
			for j := range outs {
				if outs[j] != nil {
					for range outs[j] { //pinlint:allow cancelflow — every started serve was cancelled above; the drain ends when serveLoop closes its channel
					}
				}
				c.stops[j] = nil
			}
			return nil, fmt.Errorf("pinbcast: serving channel %d: %w", i, err)
		}
		outs[i] = slots
		started = append(started, cancel)
		c.stops[i] = cancel
	}
	return outs, nil
}

// Broadcast serves every live channel into its sink until ctx is
// cancelled, every channel has been failed, or a sink errors —
// Station.Broadcast fanned across the cluster. sinks must have exactly
// one entry per channel (entries for already-failed channels are
// ignored). FailChannel stops the failed channel's loop; the others
// keep broadcasting.
func (c *Cluster) Broadcast(ctx context.Context, sinks ...Sink) error {
	if len(sinks) != len(c.stations) {
		return fmt.Errorf("pinbcast: %d sinks for %d channels: %w", len(sinks), len(c.stations), ErrBadSpec)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.stations))
	// Liveness check and stop registration under one lock: a concurrent
	// FailChannel either cancels the registered context (the goroutine
	// below then starts an already-cancelled broadcast, which exits
	// immediately) or marks the channel dead before it is considered.
	c.mu.Lock()
	for i, st := range c.stations {
		if c.dead[i] || sinks[i] == nil {
			continue
		}
		cctx, cancel := context.WithCancel(ctx)
		c.stops[i] = cancel
		wg.Add(1)
		go func(i int, st *Station, sink Sink) {
			defer wg.Done()
			defer cancel()
			if err := st.Broadcast(cctx, sink); err != nil && !errors.Is(err, context.Canceled) {
				errs[i] = fmt.Errorf("channel %d: %w", i, err)
			}
		}(i, st, sinks[i])
	}
	c.mu.Unlock()
	wg.Wait()
	return errors.Join(errs...)
}

// fileBound returns the worst-case single-file retrieval bound the
// station can contract for the named file on its latest generation.
func (st *Station) fileBound(name string) (int, error) {
	st.buildMu.Lock()
	defer st.buildMu.Unlock()
	gen := st.latest()
	return st.guaranteeBound(gen, Txn{Name: name, Reads: []string{name}, Deadline: 1 << 30})
}

// Negotiate admits a cluster-wide read transaction: every read file
// must be carried by a live channel, the composed best-replica bound
// must fit the deadline, and the read set is registered as a Contract
// on every live station carrying part of it (each from then on
// enforces its replica's bound against that channel's own changes).
// The returned ClusterContract
// carries the nominal bound and the degraded bound that replication
// sustains through R−1 channel deaths. Rejections wrap ErrBadSpec
// (malformed or unknown), ErrAdmission (deadline unmeetable) or
// ErrDegraded (a read already lost) and leave every channel untouched.
func (c *Cluster) Negotiate(x Txn) (ClusterContract, error) {
	if err := x.Validate(); err != nil {
		return ClusterContract{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, dup := c.contracts[x.Name]; dup && e.revoked == nil {
		return ClusterContract{}, fmt.Errorf("pinbcast: cluster contract %q already issued: %w", x.Name, ErrBadSpec)
	}

	nominal, degraded := 0, 0
	for _, read := range x.Reads {
		if _, known := c.specs[read]; !known {
			return ClusterContract{}, fmt.Errorf("pinbcast: file %q not in cluster catalog: %w", read, ErrBadSpec)
		}
		if lostErr, lost := c.lost[read]; lost {
			return ClusterContract{}, fmt.Errorf("pinbcast: read %q: %w", read, lostErr)
		}
		live := c.liveHomesLocked(read)
		if len(live) == 0 {
			return ClusterContract{}, fmt.Errorf("pinbcast: file %q has no live channel: %w", read, ErrDegraded)
		}
		best, worst := 1<<30, 0
		for _, ch := range live {
			b, err := c.stations[ch].fileBound(read)
			if err != nil {
				return ClusterContract{}, err
			}
			if b < best {
				best = b
			}
			if b > worst {
				worst = b
			}
		}
		if best > nominal {
			nominal = best
		}
		if worst > degraded {
			degraded = worst
		}
	}
	if nominal > x.Deadline {
		return ClusterContract{}, fmt.Errorf(
			"pinbcast: transaction %q best-replica worst case is %d slots, deadline %d: %w",
			x.Name, nominal, x.Deadline, ErrAdmission)
	}

	// Register the contract on every live carrier of the read set —
	// not just each read's best replica — so every station holds its
	// own replica's bound invariant against its later Admit, Evict and
	// Negotiate calls; the DegradedLatencySlots promise is only as good
	// as the worst replica, so the worst replica must be defended too.
	// Rolls back on any failure so a rejected negotiation changes
	// nothing.
	groups, regDeadline := c.registrationPlanLocked(x, degraded)
	perChannel := make(map[int]Contract, len(groups))
	issued := make([]int, 0, len(groups))
	for ch, reads := range groups {
		ct, err := c.stations[ch].AdmitTxn(Txn{Name: x.Name, Reads: reads, Deadline: regDeadline})
		if err != nil {
			for _, prev := range issued {
				c.stations[prev].ReleaseTxn(x.Name)
			}
			return ClusterContract{}, fmt.Errorf("pinbcast: channel %d group: %w", ch, err)
		}
		perChannel[ch] = ct
		issued = append(issued, ch)
	}

	cc := ClusterContract{
		Name:                 x.Name,
		WorstLatencySlots:    nominal,
		DegradedLatencySlots: degraded,
		PerChannel:           perChannel,
	}
	c.contracts[x.Name] = &clusterContractEntry{txn: x, c: cc}
	c.updateGaugesLocked()
	return cc, nil
}

// Contract returns the named cluster contract. A revoked contract is
// returned with its revocation error (wrapping ErrDegraded); an unknown
// name wraps ErrBadSpec.
func (c *Cluster) Contract(name string) (ClusterContract, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.contracts[name]
	if !ok {
		return ClusterContract{}, fmt.Errorf("pinbcast: no cluster contract %q: %w", name, ErrBadSpec)
	}
	return e.c, e.revoked
}

// Contracts returns every cluster contract still in force, sorted by
// name. Revoked contracts are excluded; fetch them by name with
// Contract to see the revocation reason.
func (c *Cluster) Contracts() []ClusterContract {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ClusterContract, 0, len(c.contracts))
	for _, e := range c.contracts {
		if e.revoked == nil {
			out = append(out, e.c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Release withdraws a cluster contract and its per-channel
// registrations. Releasing an unknown contract wraps ErrBadSpec.
func (c *Cluster) Release(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.contracts[name]
	if !ok {
		return fmt.Errorf("pinbcast: no cluster contract %q: %w", name, ErrBadSpec)
	}
	for ch := range e.c.PerChannel {
		if !c.dead[ch] {
			c.stations[ch].ReleaseTxn(name)
		}
	}
	delete(c.contracts, name)
	c.updateGaugesLocked()
	return nil
}

// FailoverReport records what one FailChannel did.
type FailoverReport struct {
	// Channel is the failed channel.
	Channel int
	// Readmitted maps each orphaned file (carried only by the failed
	// channel) to the surviving channel that admitted it; the file goes
	// on air at that channel's next data-cycle boundary.
	Readmitted map[string]int
	// Lost lists orphaned files no survivor could admit; their reads are
	// gone and their contracts revoked (ErrDegraded).
	Lost []string
	// Revoked lists cluster contracts revoked by this failover.
	Revoked []string
	// Kept lists cluster contracts re-verified and still in force.
	Kept []string
}

// FailChannel takes channel i out of the cluster: its broadcast loop is
// stopped (if the cluster is serving), every file it alone carried is
// re-admitted — hottest first — onto the surviving station with the
// most bandwidth headroom that will take it (landing at that channel's
// next data-cycle boundary), and every cluster contract is re-verified
// against the surviving channels: a contract whose re-computed bound
// still fits its promised DegradedLatencySlots is kept, any other is
// revoked with an error wrapping ErrDegraded. Failing an unknown or
// already-failed channel wraps ErrBadSpec; failing the last live
// channel is allowed and loses the catalog.
func (c *Cluster) FailChannel(i int) (*FailoverReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.stations) {
		return nil, fmt.Errorf("pinbcast: no channel %d: %w", i, ErrBadSpec)
	}
	if c.dead[i] {
		return nil, fmt.Errorf("pinbcast: channel %d already failed: %w", i, ErrBadSpec)
	}
	c.dead[i] = true
	if stop := c.stops[i]; stop != nil {
		stop()
		c.stops[i] = nil
	}
	clChannelUp(i).Set(0)
	clFailovers.Inc()
	rep := &FailoverReport{Channel: i, Readmitted: map[string]int{}}

	// Orphans: files whose every carrier is now dead, hottest first so
	// the tightest guarantees get first claim on surviving capacity.
	var orphans []FileSpec
	for name, homes := range c.homes {
		if c.lost[name] != nil {
			continue
		}
		carried := false
		for _, ch := range homes {
			if !c.dead[ch] {
				carried = true
				break
			}
		}
		if !carried {
			orphans = append(orphans, c.specs[name])
		}
	}
	sort.SliceStable(orphans, func(a, b int) bool {
		ha, hb := cluster.Heat(orphans[a]), cluster.Heat(orphans[b])
		if ha != hb {
			return ha > hb
		}
		return orphans[a].Name < orphans[b].Name
	})
	for _, f := range orphans {
		admitted := false
		for _, ch := range c.survivorsByHeadroomLocked() {
			if err := c.stations[ch].Admit(f, c.contents[f.Name]); err == nil {
				c.homes[f.Name] = append(c.homes[f.Name], ch)
				rep.Readmitted[f.Name] = ch
				admitted = true
				clReadmitted.Inc()
				traceRing.Emit(obs.FailoverReadmit, ch, FileID(f.Name), 0, uint64(i))
				break
			}
		}
		if !admitted {
			c.lost[f.Name] = fmt.Errorf("pinbcast: file %q lost with channel %d (no survivor could admit it): %w",
				f.Name, i, ErrDegraded)
			rep.Lost = append(rep.Lost, f.Name)
			clFilesLost.Inc()
		}
	}
	sort.Strings(rep.Lost)

	// Re-verify every in-force cluster contract against the survivors.
	names := make([]string, 0, len(c.contracts))
	for name := range c.contracts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := c.contracts[name]
		if e.revoked != nil {
			continue
		}
		if reason := c.reverifyLocked(e); reason != nil {
			e.revoked = reason
			for ch := range e.c.PerChannel {
				if !c.dead[ch] {
					c.stations[ch].ReleaseTxn(name)
				}
			}
			rep.Revoked = append(rep.Revoked, name)
			clRevoked.Inc()
			traceRing.Emit(obs.ContractRevoked, i, 0, 0, 0)
		} else {
			c.reRegisterLocked(e)
			rep.Kept = append(rep.Kept, name)
		}
	}
	c.updateGaugesLocked()
	return rep, nil
}

// registrationPlanLocked returns the per-channel registration plan for
// a transaction: each live carrier channel paired with the reads it
// carries, and the registration deadline — the degraded bound when it
// exceeds the transaction's own deadline, since a worst replica
// legitimately bounds above the nominal deadline. Negotiate and
// failover re-registration share it so both enforce identical bounds.
// Caller holds mu.
func (c *Cluster) registrationPlanLocked(x Txn, degraded int) (map[int][]string, int) {
	groups := map[int][]string{}
	for _, read := range x.Reads {
		for _, ch := range c.liveHomesLocked(read) {
			groups[ch] = append(groups[ch], read)
		}
	}
	deadline := x.Deadline
	if degraded > deadline {
		deadline = degraded
	}
	return groups, deadline
}

// reRegisterLocked refreshes a kept contract's per-channel
// registrations after a failover: registrations on dead channels died
// with them, and re-admitted reads live on channels that never held
// one, so the read set is re-registered on every live carrier (best
// effort — the coordinator's own re-verification already vouched for
// the bounds). Caller holds mu.
//
//pinlint:cycle-boundary
func (c *Cluster) reRegisterLocked(e *clusterContractEntry) {
	for ch := range e.c.PerChannel {
		if !c.dead[ch] {
			c.stations[ch].ReleaseTxn(e.txn.Name)
		}
	}
	groups, deadline := c.registrationPlanLocked(e.txn, e.c.DegradedLatencySlots)
	perChannel := make(map[int]Contract, len(groups))
	for ch, reads := range groups {
		if ct, err := c.stations[ch].AdmitTxn(Txn{Name: e.txn.Name, Reads: reads, Deadline: deadline}); err == nil {
			perChannel[ch] = ct
		}
	}
	e.c.PerChannel = perChannel
}

// reverifyLocked re-computes a contract's cluster bound over the live
// channels and returns nil when it still fits the promised degraded
// bound, or the revocation reason (wrapping ErrDegraded). Caller holds
// mu.
func (c *Cluster) reverifyLocked(e *clusterContractEntry) error {
	worst := 0
	for _, read := range e.txn.Reads {
		if lostErr, lost := c.lost[read]; lost {
			return fmt.Errorf("pinbcast: contract %q: %w", e.txn.Name, lostErr)
		}
		live := c.liveHomesLocked(read)
		if len(live) == 0 {
			return fmt.Errorf("pinbcast: contract %q: read %q has no live channel: %w",
				e.txn.Name, read, ErrDegraded)
		}
		best := 1 << 30
		for _, ch := range live {
			b, err := c.stations[ch].fileBound(read)
			if err != nil {
				continue
			}
			if b < best {
				best = b
			}
		}
		if best > worst {
			worst = best
		}
	}
	if worst > e.c.DegradedLatencySlots {
		return fmt.Errorf(
			"pinbcast: contract %q re-verified at %d slots, promised at most %d degraded: %w",
			e.txn.Name, worst, e.c.DegradedLatencySlots, ErrDegraded)
	}
	return nil
}

// survivorsByHeadroomLocked returns the live channels ordered by
// descending bandwidth headroom (channel bandwidth minus the necessary
// bandwidth of its current file set). Caller holds mu.
func (c *Cluster) survivorsByHeadroomLocked() []int {
	live := c.liveLocked()
	type hr struct {
		ch       int
		headroom float64
	}
	ranked := make([]hr, 0, len(live))
	for _, ch := range live {
		st := c.stations[ch]
		ranked = append(ranked, hr{ch, float64(st.Bandwidth()) - core.NecessaryBandwidth(st.Files())})
	}
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].headroom > ranked[b].headroom })
	out := make([]int, len(ranked))
	for i, r := range ranked {
		out[i] = r.ch
	}
	return out
}
