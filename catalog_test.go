package pinbcast

import (
	"testing"
)

// catalogCases returns each exported scenario catalog as a concrete
// file set, small enough that every registered scheduler (including the
// exhaustive exact search) stays tractable.
func catalogCases(t *testing.T) map[string][]FileSpec {
	t.Helper()
	awacs, err := AWACSCatalog().FileSpecs("combat")
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]FileSpec{
		"ivhs":  IVHSCatalog(1, 1),
		"awacs": awacs,
		"video": VideoCatalog(3, 1),
	}
}

// TestCatalogsBuildUnderEveryLayoutAndScheduler asserts the scenario
// catalogs construct a broadcast program under every registered Layout
// and — for the pinwheel construction, the only one that consults the
// chain — under every registered Scheduler (chained with the portfolio,
// exactly as a Station configured with that scheduler would fall back).
func TestCatalogsBuildUnderEveryLayoutAndScheduler(t *testing.T) {
	portfolio, _ := LookupScheduler(SchedulerPortfolio)
	for catName, files := range catalogCases(t) {
		for _, layoutName := range LayoutNames() {
			layout, ok := LookupLayout(layoutName)
			if !ok {
				t.Fatalf("registered layout %q not found", layoutName)
			}
			schedulers := []string{""}
			if layoutName == LayoutPinwheel {
				schedulers = SchedulerNames()
			}
			for _, schedName := range schedulers {
				cfg := BuildConfig{Files: files, Layout: layout}
				if schedName != "" {
					s, ok := LookupScheduler(schedName)
					if !ok {
						t.Fatalf("registered scheduler %q not found", schedName)
					}
					cfg.Schedulers = []Scheduler{s, portfolio}
				}
				prog, err := Build(cfg)
				if err != nil {
					t.Errorf("%s × %s × %s: %v", catName, layoutName, schedName, err)
					continue
				}
				if prog.Period < 1 {
					t.Errorf("%s × %s × %s: empty program", catName, layoutName, schedName)
				}
				for _, f := range files {
					i := prog.FileIndex(f.Name)
					if i < 0 {
						t.Errorf("%s × %s × %s: %q not in program", catName, layoutName, schedName, f.Name)
						continue
					}
					if prog.PerPeriod(i) < 1 {
						t.Errorf("%s × %s × %s: %q never scheduled", catName, layoutName, schedName, f.Name)
					}
				}
			}
		}
	}
}

// TestCatalogContentsSizes asserts the fabricated contents match each
// spec's block count at every block size, and are deterministic in the
// seed.
func TestCatalogContentsSizes(t *testing.T) {
	for catName, files := range catalogCases(t) {
		for _, blockSize := range []int{1, 64, 128} {
			contents := CatalogContents(files, blockSize, 7)
			if len(contents) != len(files) {
				t.Fatalf("%s: contents for %d of %d files", catName, len(contents), len(files))
			}
			for _, f := range files {
				data, ok := contents[f.Name]
				if !ok {
					t.Fatalf("%s: no contents for %q", catName, f.Name)
				}
				if len(data) != f.Blocks*blockSize {
					t.Fatalf("%s: %q has %d bytes, want Blocks(%d)×%d = %d",
						catName, f.Name, len(data), f.Blocks, blockSize, f.Blocks*blockSize)
				}
			}
		}
		again := CatalogContents(files, 64, 7)
		other := CatalogContents(files, 64, 8)
		sameAsOther := true
		for _, f := range files {
			a := CatalogContents(files, 64, 7)[f.Name]
			if string(a) != string(again[f.Name]) {
				t.Fatalf("%s: contents not deterministic for %q", catName, f.Name)
			}
			if string(a) != string(other[f.Name]) {
				sameAsOther = false
			}
		}
		if sameAsOther {
			t.Fatalf("%s: different seeds produced identical contents", catName)
		}
	}
}

func TestHottestFiles(t *testing.T) {
	files := clusterCatalog()
	got := HottestFiles(files, 2)
	if len(got) != 2 || got[0] != "hot-a" || got[1] != "hot-b" {
		t.Fatalf("HottestFiles = %v, want [hot-a hot-b]", got)
	}
	if n := len(HottestFiles(files, 100)); n != len(files) {
		t.Fatalf("HottestFiles over-asked returned %d names", n)
	}
}
