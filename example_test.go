package pinbcast_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"pinbcast"
)

// ExampleStation runs a broadcast disk as a live service: two files are
// scheduled into a fault-tolerant program, the station streams blocks
// under a cancellable context, a consumer reconstructs a file from any
// m of its AIDA blocks, and a third file is admitted online at a
// data-cycle boundary.
func ExampleStation() {
	bulletin := []byte("congestion northbound at exit 9")
	tiles := bytes.Repeat([]byte("tile "), 40)
	station, err := pinbcast.New(
		pinbcast.WithFile(pinbcast.FileSpec{Name: "traffic", Blocks: 4, Latency: 8, Faults: 1}, bulletin),
		pinbcast.WithFile(pinbcast.FileSpec{Name: "map", Blocks: 8, Latency: 40}, tiles),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := station.Serve(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Any 4 distinct blocks of "traffic" reconstruct it.
	blocks := map[int]*pinbcast.Block{}
	for slot := range slots {
		if slot.File != "traffic" {
			continue
		}
		blocks[slot.Seq] = slot.Block
		if len(blocks) == 4 {
			break
		}
	}
	collected := make([]*pinbcast.Block, 0, len(blocks))
	for _, b := range blocks {
		collected = append(collected, b)
	}
	data, err := pinbcast.Reconstruct(collected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed intact: %v\n", bytes.Equal(data, bulletin))

	// Admit a third file online; the swap lands on the next data-cycle
	// boundary, preserving every in-flight guarantee.
	if err := station.Admit(pinbcast.FileSpec{Name: "alerts", Blocks: 2, Latency: 20}, []byte("storm cell NE")); err != nil {
		log.Fatal(err)
	}
	for slot := range slots {
		if slot.Generation == 2 {
			fmt.Printf("generation 2 carries %d files\n", len(station.Files()))
			break
		}
	}

	// Output:
	// reconstructed intact: true
	// generation 2 carries 3 files
}

// ExampleReceiver subscribes the client half of the pair to a served
// slot stream: the Receiver learns the directory from the stream,
// collects self-identifying AIDA blocks for its request under injected
// reception faults, reconstructs the file, and reports deadline and
// tuning metrics. The same code runs unchanged over the TCP transport
// (DialSource) or a replayed Recording.
func ExampleReceiver() {
	bulletin := []byte("congestion northbound at exit 9")
	station, err := pinbcast.New(
		pinbcast.WithFile(pinbcast.FileSpec{Name: "traffic", Blocks: 4, Latency: 8, Faults: 1}, bulletin),
		pinbcast.WithFile(pinbcast.FileSpec{Name: "map", Blocks: 8, Latency: 40}, bytes.Repeat([]byte("tile "), 40)),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slots, err := station.Serve(ctx)
	if err != nil {
		log.Fatal(err)
	}

	receiver, err := pinbcast.Subscribe(pinbcast.SlotSource(slots),
		pinbcast.WithRequest("traffic", station.Bandwidth()*8), // deadline: one latency window
		pinbcast.WithReceiverFaults(pinbcast.SlotFaults(1)),    // slot 1 is destroyed in transit
	)
	if err != nil {
		log.Fatal(err)
	}
	defer receiver.Close()
	results, err := receiver.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	r := results[0]
	fmt.Printf("reconstructed intact: %v, within its window: %v\n",
		bytes.Equal(r.Data, bulletin), r.DeadlineMet)

	// Output:
	// reconstructed intact: true, within its window: true
}
