package pinbcast

import (
	"errors"
	"testing"
)

// The typed error hierarchy must be classifiable with errors.Is from
// the facade, wherever in the stack the failure originated.

func TestErrBadSpecFromCore(t *testing.T) {
	_, err := Build(BuildConfig{Files: []FileSpec{{Name: "A", Blocks: 0, Latency: 5}}})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
	if _, err := Build(BuildConfig{}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty build: err = %v, want ErrBadSpec", err)
	}
	if _, err := New(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty station: err = %v, want ErrBadSpec", err)
	}
}

func TestErrBadSpecFromAlgebra(t *testing.T) {
	_, err := ConvertCondition(BroadcastCondition{Task: "i", M: 0, D: []int{5}})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
	_, err = BuildGeneralizedProgram([]GenFileSpec{{Name: "A", Blocks: 2, Latencies: nil}})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("generalized: err = %v, want ErrBadSpec", err)
	}
}

func TestErrBadSpecFromPinwheel(t *testing.T) {
	_, err := SchedulePinwheel(TaskSystem{{A: 0, B: 3}})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}

func TestErrBandwidth(t *testing.T) {
	// A window of 1·1 = 1 slot cannot carry the five-block demand.
	_, err := Build(BuildConfig{
		Files:     []FileSpec{{Name: "A", Blocks: 5, Latency: 1}},
		Bandwidth: 1,
	})
	if !errors.Is(err, ErrBandwidth) {
		t.Fatalf("err = %v, want ErrBandwidth", err)
	}
	if errors.Is(err, ErrBadSpec) {
		t.Fatalf("bandwidth failure classified as bad spec: %v", err)
	}
}

func TestErrInfeasible(t *testing.T) {
	// Density 6/4 > 1 at bandwidth 4: provably unschedulable, while
	// each task fits its own window.
	_, err := Build(BuildConfig{
		Files: []FileSpec{
			{Name: "A", Blocks: 3, Latency: 1},
			{Name: "B", Blocks: 3, Latency: 1},
		},
		Bandwidth: 4,
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// The same classification must hold through an explicit scheduler
	// chain.
	edf, _ := LookupScheduler(SchedulerEDF)
	_, err = Build(BuildConfig{
		Files: []FileSpec{
			{Name: "A", Blocks: 3, Latency: 1},
			{Name: "B", Blocks: 3, Latency: 1},
		},
		Bandwidth:  4,
		Schedulers: []Scheduler{edf},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("chain: err = %v, want ErrInfeasible", err)
	}
}

func TestErrBandwidthFromNegativeBandwidth(t *testing.T) {
	// An explicit bandwidth below 1 is an error, never a request for
	// auto-sizing — only the zero value asks for Equation-1/2 sizing.
	_, err := Build(BuildConfig{
		Files:     []FileSpec{{Name: "A", Blocks: 2, Latency: 4}},
		Bandwidth: -1,
	})
	if !errors.Is(err, ErrBandwidth) {
		t.Fatalf("err = %v, want ErrBandwidth", err)
	}
}

func TestErrSchedulerFailed(t *testing.T) {
	// The two-distinct specialization handles unit tasks only; the task
	// (2, 5) makes it fail without proving infeasibility.
	td, _ := LookupScheduler(SchedulerTwoDistinct)
	_, err := Build(BuildConfig{
		Files:      []FileSpec{{Name: "A", Blocks: 2, Latency: 1}},
		Bandwidth:  5,
		Schedulers: []Scheduler{td},
	})
	if !errors.Is(err, ErrSchedulerFailed) {
		t.Fatalf("err = %v, want ErrSchedulerFailed", err)
	}
	if errors.Is(err, ErrInfeasible) {
		t.Fatalf("undecided instance classified infeasible: %v", err)
	}
}

func TestErrAdmission(t *testing.T) {
	admitted := []FileSpec{{Name: "A", Blocks: 3, Latency: 10}}
	_, err := Admit(admitted, FileSpec{Name: "flood", Blocks: 50, Latency: 10}, 1)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("err = %v, want ErrAdmission", err)
	}
	// Candidates that cannot fit any window at the bandwidth are also
	// admission failures, not crashes.
	_, err = Admit(admitted, FileSpec{Name: "huge", Blocks: 300, Latency: 1}, 1)
	if !errors.Is(err, ErrAdmission) && !errors.Is(err, ErrBadSpec) {
		t.Fatalf("infeasible candidate: err = %v, want typed", err)
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	sentinels := []error{ErrBadSpec, ErrInfeasible, ErrBandwidth, ErrAdmission, ErrServing}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel %d vs %d: unexpected identity", i, j)
			}
		}
	}
}
