package pinbcast

import (
	"pinbcast/internal/cluster"
	"pinbcast/internal/workload"
)

// Scenario catalogs (internal/workload): the file sets and real-time
// databases of the paper's motivating applications, exported so the
// examples and any application can spin up a workload, pick a layout,
// and negotiate transaction contracts without touching internal
// packages. All generators are seeded and reproducible.

// IVHSCatalog returns the broadcast files of the paper's Intelligent
// Vehicle Highway System scenario (§1): per highway segment a
// frequently refreshed traffic-conditions file and a slower incident
// file, plus one shared route-guidance map. Latencies are in 100 ms
// units.
func IVHSCatalog(nSegments int, seed int64) []FileSpec {
	return workload.IVHS(nSegments, seed)
}

// AWACSCatalog returns the paper's AWACS real-time database (§1, §2.2):
// positional items whose temporal-consistency constraints derive from
// platform velocities, with mode-dependent criticality scaling each
// item's AIDA redundancy.
func AWACSCatalog() *RTDatabase { return workload.AWACS() }

// VideoCatalog returns a video-on-demand workload (§1's interactive-TV
// motivation): nStreams streams whose frames must arrive at a steady
// cadence. Latencies are in frame times.
func VideoCatalog(nStreams int, seed int64) []FileSpec {
	return workload.Video(nStreams, seed)
}

// CatalogContents fabricates deterministic file contents sized to the
// specs (blockSize bytes per block) — the dispersal payloads the
// examples and simulations broadcast.
func CatalogContents(files []FileSpec, blockSize int, seed int64) map[string][]byte {
	return workload.Contents(files, blockSize, seed)
}

// HottestFiles returns the names of the catalog's n hottest files by
// bandwidth share (mᵢ+rᵢ)/Tᵢ, hottest first — the access-frequency
// proxy of broadcast disks (a tightly-constrained file is rebroadcast
// often). It is the heat model cluster replication uses: NewCluster
// replicates exactly these files (WithReplicateHottest), and a
// deployment can inspect the choice before committing a plan.
func HottestFiles(files []FileSpec, n int) []string {
	return cluster.Hottest(files, n)
}
