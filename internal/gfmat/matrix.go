// Package gfmat implements dense matrix algebra over GF(2⁸).
//
// It provides exactly the operations Rabin's Information Dispersal
// Algorithm needs (§2.1 of Baruah & Bestavros): building an N×m dispersal
// matrix whose every m×m row-submatrix is invertible, multiplying it by
// file data, and inverting the m×m submatrix selected by the blocks a
// client actually received.
package gfmat

import (
	"errors"
	"fmt"

	"pinbcast/internal/gf256"
)

// ErrSingular is returned by Invert when the matrix has no inverse.
var ErrSingular = errors.New("gfmat: matrix is singular")

// Matrix is a dense row-major matrix over GF(2⁸). The zero value is an
// empty matrix; use New or a composite literal to build one.
type Matrix struct {
	rows, cols int
	data       []byte // len == rows*cols, row-major
}

// New returns a zero rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("gfmat: negative dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// FromRows builds a matrix from explicit row slices. All rows must have
// equal length. The data is copied.
func FromRows(rows [][]byte) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("gfmat: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
//
//pinlint:hotpath
func (m *Matrix) At(i, j int) byte { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v byte) { m.data[i*m.cols+j] = v }

// Row returns row i as a mutable slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []byte { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether m and o have identical shape and elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// String renders the matrix in hexadecimal, one row per line.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%02x", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// Mul returns the product m·o. It panics if the shapes are incompatible.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("gfmat: shape mismatch %dx%d · %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	p := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		mRow := m.Row(i)
		pRow := p.Row(i)
		for k, c := range mRow {
			if c != 0 {
				gf256.MulAddSlice(c, o.Row(k), pRow)
			}
		}
	}
	return p
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []byte) []byte {
	if m.cols != len(v) {
		panic("gfmat: MulVec length mismatch")
	}
	out := make([]byte, m.rows)
	for i := 0; i < m.rows; i++ {
		var acc byte
		for j, c := range m.Row(i) {
			acc ^= gf256.Mul(c, v[j])
		}
		out[i] = acc
	}
	return out
}

// SelectRows returns a new matrix consisting of the given rows of m,
// in the given order.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	s := New(len(idx), m.cols)
	for i, r := range idx {
		copy(s.Row(i), m.Row(r))
	}
	return s
}

// Invert returns the inverse of a square matrix using Gauss–Jordan
// elimination with partial pivoting (any nonzero pivot suffices in a
// field). It returns ErrSingular when no inverse exists.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("gfmat: cannot invert %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a nonzero pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize the pivot row.
		if p := a.At(col, col); p != 1 {
			scale := gf256.Inv(p)
			gf256.MulSlice(scale, a.Row(col), a.Row(col))
			gf256.MulSlice(scale, inv.Row(col), inv.Row(col))
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := a.At(r, col); f != 0 {
				gf256.MulAddSlice(f, a.Row(col), a.Row(r))
				gf256.MulAddSlice(f, inv.Row(col), inv.Row(r))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Vandermonde returns the n×m Vandermonde matrix with row i equal to
// [1, xᵢ, xᵢ², …, xᵢ^(m−1)] for xᵢ = the i-th field element (xᵢ = i).
// Because the xᵢ are distinct, every m×m submatrix formed by choosing m
// distinct rows is itself a Vandermonde matrix with distinct nodes and
// hence invertible — exactly the property §2.1 requires of the dispersal
// transformation [x_ij]. n must be at most 256.
func Vandermonde(n, m int) *Matrix {
	if n > 256 {
		panic("gfmat: Vandermonde supports at most 256 rows over GF(2⁸)")
	}
	v := New(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			v.Set(i, j, gf256.Pow(byte(i), j))
		}
	}
	return v
}

// SystematicVandermonde returns V·inv(V[:m]) for the n×m Vandermonde
// matrix V: the top m×m block becomes the identity while every m×m
// row-submatrix stays invertible (each is a submatrix of V multiplied by
// the fixed invertible inv(V[:m])). A dispersal matrix in this form makes
// the first m coded blocks verbatim copies of the source blocks, so
// encoding costs only the n−m redundant rows and a fault-free decode is a
// straight copy — the standard construction of production Reed–Solomon
// codecs, with the §2.1 any-m-of-n property intact.
func SystematicVandermonde(n, m int) *Matrix {
	v := Vandermonde(n, m)
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	inv, err := v.SelectRows(idx).Invert()
	if err != nil {
		// The top block of a Vandermonde matrix with distinct nodes is
		// always invertible.
		panic("gfmat: Vandermonde top block singular: " + err.Error())
	}
	s := v.Mul(inv)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if s.At(i, j) != want {
				panic("gfmat: systematic top block is not the identity")
			}
		}
	}
	return s
}
