package gfmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pinbcast/internal/gf256"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, byte(rng.Intn(256)))
		}
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %d, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestFromRowsAndEqual(t *testing.T) {
	m := FromRows([][]byte{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows content wrong: %v", m)
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("clone not equal to original")
	}
	if m.Equal(New(2, 3)) {
		t.Fatal("matrices of different shape reported equal")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]byte{{1, 2}, {3}})
}

func TestIdentityMulIsNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 5, 5)
	if !Identity(5).Mul(m).Equal(m) {
		t.Fatal("I·m != m")
	}
	if !m.Mul(Identity(5)).Equal(m) {
		t.Fatal("m·I != m")
	}
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 4, 6)
	b := randomMatrix(rng, 6, 3)
	got := a.Mul(b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			var want byte
			for k := 0; k < 6; k++ {
				want ^= gf256.Mul(a.At(i, k), b.At(k, j))
			}
			if got.At(i, j) != want {
				t.Fatalf("(%d,%d): got %#x want %#x", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]byte{{1, 0, 2}, {0, 1, 3}})
	v := []byte{5, 7, 1}
	got := m.MulVec(v)
	want := []byte{
		gf256.Add(5, gf256.Mul(2, 1)),
		gf256.Add(7, gf256.Mul(3, 1)),
	}
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("MulVec = %v, want %v", got, want)
	}
}

func TestInvertIdentity(t *testing.T) {
	inv, err := Identity(4).Invert()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equal(Identity(4)) {
		t.Fatal("inverse of identity is not identity")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	found := 0
	for trial := 0; trial < 50; trial++ {
		m := randomMatrix(rng, 6, 6)
		inv, err := m.Invert()
		if err != nil {
			continue // singular random matrix: fine, skip
		}
		found++
		if !m.Mul(inv).Equal(Identity(6)) {
			t.Fatalf("m·m⁻¹ != I for\n%v", m)
		}
		if !inv.Mul(m).Equal(Identity(6)) {
			t.Fatalf("m⁻¹·m != I for\n%v", m)
		}
	}
	if found < 10 {
		t.Fatalf("only %d invertible matrices in 50 trials; RNG suspect", found)
	}
}

func TestInvertSingular(t *testing.T) {
	m := FromRows([][]byte{{1, 2}, {1, 2}})
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	z := New(3, 3)
	if _, err := z.Invert(); err != ErrSingular {
		t.Fatalf("zero matrix: err = %v, want ErrSingular", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := New(2, 3).Invert(); err == nil {
		t.Fatal("inverting non-square matrix did not error")
	}
}

func TestVandermondeAnySubmatrixInvertible(t *testing.T) {
	// The defining property for IDA: any m rows of the N×m Vandermonde
	// matrix form an invertible matrix. Exhaustive over 3-subsets of 8 rows.
	const n, m = 8, 3
	v := Vandermonde(n, m)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				sub := v.SelectRows([]int{a, b, c})
				if _, err := sub.Invert(); err != nil {
					t.Fatalf("rows {%d,%d,%d} singular", a, b, c)
				}
			}
		}
	}
}

func TestVandermondeRandomSubsets(t *testing.T) {
	const n, m = 40, 10
	v := Vandermonde(n, m)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		idx := rng.Perm(n)[:m]
		if _, err := v.SelectRows(idx).Invert(); err != nil {
			t.Fatalf("rows %v singular", idx)
		}
	}
}

func TestVandermondeTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Vandermonde(257, 3) did not panic")
		}
	}()
	Vandermonde(257, 3)
}

func TestSelectRows(t *testing.T) {
	m := FromRows([][]byte{{1, 1}, {2, 2}, {3, 3}})
	s := m.SelectRows([]int{2, 0})
	if s.At(0, 0) != 3 || s.At(1, 0) != 1 {
		t.Fatalf("SelectRows wrong: %v", s)
	}
}

func TestMulAssociativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		a := randomMatrix(rng, 3, 4)
		b := randomMatrix(rng, 4, 2)
		c := randomMatrix(rng, 2, 5)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInverseSolvesLinearSystem(t *testing.T) {
	// Dispersal/reconstruction in miniature: y = A·x, then x = A⁻¹·y.
	rng := rand.New(rand.NewSource(6))
	a := Vandermonde(5, 5)
	inv, err := a.Invert()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x := make([]byte, 5)
		rng.Read(x)
		y := a.MulVec(x)
		back := inv.MulVec(y)
		for i := range x {
			if back[i] != x[i] {
				t.Fatalf("round trip failed at %d: %v -> %v -> %v", i, x, y, back)
			}
		}
	}
}

func BenchmarkInvert16(b *testing.B) {
	m := Vandermonde(16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul32(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randomMatrix(rng, 32, 32)
	y := randomMatrix(rng, 32, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}

func TestSystematicVandermondeTopIdentity(t *testing.T) {
	for _, p := range []struct{ n, m int }{{1, 1}, {4, 2}, {10, 5}, {12, 8}, {40, 20}} {
		s := SystematicVandermonde(p.n, p.m)
		if s.Rows() != p.n || s.Cols() != p.m {
			t.Fatalf("(%d,%d): got %dx%d", p.n, p.m, s.Rows(), s.Cols())
		}
		for i := 0; i < p.m; i++ {
			for j := 0; j < p.m; j++ {
				want := byte(0)
				if i == j {
					want = 1
				}
				if s.At(i, j) != want {
					t.Fatalf("(%d,%d): top block not identity at (%d,%d)", p.n, p.m, i, j)
				}
			}
		}
	}
}

func TestSystematicVandermondeSubmatricesInvertible(t *testing.T) {
	// The §2.1 property must survive the systematic transformation:
	// every m-row submatrix is invertible. Exhaustive over a small case.
	const n, m = 8, 3
	s := SystematicVandermonde(n, m)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				sub := s.SelectRows([]int{a, b, c})
				if _, err := sub.Invert(); err != nil {
					t.Fatalf("submatrix {%d,%d,%d} singular", a, b, c)
				}
			}
		}
	}
}
