package transport

import (
	"net"
	"testing"
)

// TestNextReuseAllocationFree pins the zero-allocation receive path: a
// warm NextReuse loop over a mixed idle/data frame stream must not
// allocate (header and payload both read through the reuse buffer).
func TestNextReuseAllocationFree(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const frames = 2000
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		payload := make([]byte, 4096)
		for i := 0; i < frames; i++ {
			if i%3 == 0 {
				err = WriteFrame(conn, i, nil) // idle slot
			} else {
				err = WriteFrame(conn, i, payload)
			}
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 100; i++ { // warm the reuse buffer
		if _, _, err := r.NextReuse(0); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, _, err := r.NextReuse(0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("NextReuse allocates %v per frame, want 0", allocs)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
