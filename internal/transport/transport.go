// Package transport broadcasts a disk program over real network
// connections. The broadcast channel of the paper is a one-way
// downstream medium; here it is realized as a TCP fan-out: the server
// pushes one framed slot after another to every connected client, and
// never reads — preserving the asymmetry (clients have no upstream
// path through this package at all).
//
// Frame format (big endian):
//
//	uint32 slot number
//	uint32 payload length (0 for an idle slot)
//	payload bytes (a marshaled ida.Block)
//
// Slow or dead clients are disconnected rather than allowed to stall
// the broadcast, matching the fire-and-forget nature of the medium.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"pinbcast/internal/obs"
	"pinbcast/internal/server"
)

// Fan-out plane instruments, registered once against the process-wide
// registry; the hot paths below touch them with single atomic ops.
var (
	fanoutFrames      = obs.Default().Counter("pin_fanout_frames_total", "Slot frames accepted by Fanout.Send.")
	fanoutSubscribers = obs.Default().Gauge("pin_fanout_subscribers", "Currently connected fan-out subscribers.")
	fanoutEvictions   = obs.Default().Counter("pin_fanout_evictions_total", "Subscribers evicted for stalling, erroring, or going away.")
	fanoutBatchFrames = obs.Default().Histogram("pin_fanout_writev_batch_frames", "Frames gathered into each writev flush.")
	fanoutQueueDepth  = obs.Default().Gauge("pin_fanout_queue_depth", "Deepest subscriber queue observed by the last Send.")
	fanoutTrace       = obs.Trace()
)

// frameHeaderSize is the per-frame header: slot(4) + length(4).
const frameHeaderSize = 8

// MaxFramePayload bounds the payload length a receiver will accept,
// guarding against corrupt headers.
const MaxFramePayload = 1 << 20

// ErrClosed reports a Send on a closed fan-out.
var ErrClosed = errors.New("transport: fanout closed")

// IsTimeout reports whether err is a read-deadline expiry rather than a
// dead stream: a receiver driving a missed-slot detector counts a
// timeout as one slot of silence, while any other receive error (EOF,
// reset, corrupt frame) means the channel itself is gone.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// AppendFrame appends the wire form of one slot frame to dst and
// returns the extended slice. Pass dst[:0] of a reused buffer to build
// frames allocation-free; the fan-out writer assembles header and
// payload this way so each frame costs a single conn.Write.
//
//pinlint:hotpath
func AppendFrame(dst []byte, slot int, payload []byte) ([]byte, error) {
	if len(payload) > MaxFramePayload {
		return dst, fmt.Errorf("transport: payload %d exceeds limit", len(payload)) //pinlint:allow hotpath allocprove — oversized frame, cold error path
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(slot))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return dst, nil
}

// WriteFrame writes one slot frame to w.
func WriteFrame(w io.Writer, slot int, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("transport: payload %d exceeds limit", len(payload))
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(slot))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one slot frame from r. An idle slot yields a nil
// payload. The payload is freshly allocated; use ReadFrameInto in
// receive loops that can reuse a buffer.
//
//pinlint:hotpath
func ReadFrame(r io.Reader) (slot int, payload []byte, err error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto reads one slot frame from r, reusing buf's backing
// array for the payload when it has capacity (growing it otherwise).
// The returned payload aliases buf — it is valid only until the
// caller's next reuse of the buffer. An idle slot yields a nil payload.
//
// The header is also read through buf when possible: a stack header
// array would escape through the io.Reader interface call and cost a
// heap allocation per frame, which is exactly what this entry point
// exists to avoid.
//
//pinlint:hotpath
func ReadFrameInto(r io.Reader, buf []byte) (slot int, payload []byte, err error) {
	var hdr []byte
	if cap(buf) >= frameHeaderSize {
		hdr = buf[:frameHeaderSize]
	} else {
		hdr = make([]byte, frameHeaderSize) //pinlint:allow allocprove — fallback when the caller's buffer is below header size; steady-state readers never take it
	}
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	slot = int(binary.BigEndian.Uint32(hdr[0:]))
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("transport: frame payload %d exceeds limit", n) //pinlint:allow hotpath allocprove — corrupt header, cold error path
	}
	if n == 0 {
		return slot, nil, nil
	}
	// The header bytes are already decoded, so the payload may overwrite
	// them in the shared buffer.
	if uint32(cap(buf)) >= n {
		payload = buf[:n]
	} else {
		payload = make([]byte, n) //pinlint:allow allocprove — grow-once fallback for an undersized caller buffer; the reader reuses it on the next frame
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return slot, payload, nil
}

// Fanout multiplexes an externally supplied slot stream to every
// connected client. It is the push half of the transport seam: callers
// feed it frames with Send. Each subscriber has its own bounded frame
// queue drained by its own writer goroutine, so delivery to one client
// never waits on another; a subscriber whose queue stays full (or
// whose writes error or exceed the write timeout) is evicted rather
// than allowed to stall the broadcast.
type Fanout struct {
	ln      net.Listener
	timeout time.Duration

	mu      sync.Mutex
	subs    map[*subscriber]bool // guarded by mu
	evicted int                  // guarded by mu
	closed  bool                 // guarded by mu
	wg      sync.WaitGroup
}

// frame is one queued slot transmission.
type frame struct {
	slot    int
	payload []byte
}

// subscriber is one connected client: its connection, its bounded
// frame queue, and its shutdown latch.
type subscriber struct {
	conn net.Conn
	ch   chan frame
	done chan struct{}
	once sync.Once
}

// stop closes the subscriber exactly once; its writer exits via done.
func (s *subscriber) stop() {
	s.once.Do(func() {
		close(s.done)
		s.conn.Close()
	})
}

// DefaultWriteTimeout is the slow-client eviction threshold used when a
// fan-out is constructed with a zero timeout.
const DefaultWriteTimeout = time.Second

// queueDepth is each subscriber's frame buffer: how far one client may
// fall behind the broadcast before the producer starts waiting on it
// (and, after the write timeout, evicts it).
const queueDepth = 256

// NewFanout starts accepting subscribers on ln. writeTimeout is the
// slow-client threshold (zero selects DefaultWriteTimeout).
func NewFanout(ln net.Listener, writeTimeout time.Duration) *Fanout {
	if writeTimeout <= 0 {
		writeTimeout = DefaultWriteTimeout
	}
	f := &Fanout{
		ln:      ln,
		timeout: writeTimeout,
		subs:    make(map[*subscriber]bool),
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f
}

// Addr returns the listening address.
func (f *Fanout) Addr() net.Addr { return f.ln.Addr() }

func (f *Fanout) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s := &subscriber{
			conn: conn,
			ch:   make(chan frame, queueDepth),
			done: make(chan struct{}),
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.subs[s] = true
		fanoutSubscribers.Set(int64(len(f.subs)))
		f.wg.Add(1)
		go f.writeLoop(s)
		f.mu.Unlock()
	}
}

// flushBatch is the most frames one writeLoop flush gathers into a
// single writev. Each frame contributes at most two iovec entries
// (header, payload), so a full flush stays well under the kernel's
// IOV_MAX and, at typical shard sizes, fills a socket buffer's worth of
// wire bytes per syscall.
const flushBatch = 128

// writeLoop drains one subscriber's queue onto its connection. A flush
// gathers every already-queued frame (up to flushBatch) into one
// net.Buffers writev: headers live in a reused arena, payloads are
// passed by reference, and a subscriber keeping pace with the broadcast
// costs one syscall per batch instead of one per frame. A lone frame
// with an empty queue behind it still flushes immediately — gathering
// never waits.
//
//pinlint:hotpath
func (f *Fanout) writeLoop(s *subscriber) {
	defer f.wg.Done()
	// The vec entries alias hdrs, so hdrs has fixed capacity and is
	// never appended past it: a reallocation mid-gather would strand
	// the earlier headers in the old backing array.
	hdrs := make([]byte, 0, flushBatch*frameHeaderSize) //pinlint:allow allocprove — one header arena per subscriber connection
	vec := make(net.Buffers, 0, 2*flushBatch)           //pinlint:allow allocprove — one gather vector per subscriber connection
	wv := new(net.Buffers)                              //pinlint:allow hotpath allocprove — one scratch slice header per subscriber connection
	for {
		select {
		case <-s.done:
			return
		case fr := <-s.ch:
			hdrs = hdrs[:0]
			vec = vec[:0]
			for {
				if len(fr.payload) > MaxFramePayload {
					f.drop(s) //pinlint:allow hotpath — eviction, at most once per subscriber
					return
				}
				off := len(hdrs)
				hdrs = append(hdrs, 0, 0, 0, 0, 0, 0, 0, 0)
				h := hdrs[off : off+frameHeaderSize]
				binary.BigEndian.PutUint32(h[0:], uint32(fr.slot))
				binary.BigEndian.PutUint32(h[4:], uint32(len(fr.payload)))
				vec = append(vec, h)
				if len(fr.payload) > 0 {
					vec = append(vec, fr.payload)
				}
				if len(hdrs) == cap(hdrs) {
					break // arena full: flush this batch
				}
				select {
				case fr = <-s.ch:
					continue
				default:
				}
				break // queue drained: flush what we have
			}
			s.conn.SetWriteDeadline(time.Now().Add(f.timeout))
			// WriteTo consumes the slice it is called on (and trashes
			// partially written entries), so it gets a scratch copy of
			// the header; vec itself is rebuilt next flush either way.
			batch := len(hdrs) / frameHeaderSize
			*wv = vec
			if _, err := wv.WriteTo(s.conn); err != nil {
				f.drop(s) //pinlint:allow hotpath — eviction, at most once per subscriber
				return
			}
			fanoutBatchFrames.Observe(uint64(batch))
			fanoutTrace.Emit(obs.FrameFlushed, -1, 0, uint64(fr.slot), uint64(batch))
		}
	}
}

// drop evicts a subscriber (idempotent).
func (f *Fanout) drop(s *subscriber) {
	f.mu.Lock()
	if f.subs[s] {
		delete(f.subs, s)
		f.evicted++
		fanoutEvictions.Inc()
		fanoutSubscribers.Set(int64(len(f.subs)))
	}
	f.mu.Unlock()
	s.stop()
}

// ClientCount returns the number of connected clients.
func (f *Fanout) ClientCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// Evicted returns how many clients have been dropped — for falling
// behind, erroring, or going away — since the fan-out started.
func (f *Fanout) Evicted() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.evicted
}

// laggardPool recycles the slice Send gathers full-queue subscribers
// into: a receiver that paces the broadcast (bounded backpressure) hits
// this path on every frame, and it must not allocate there.
var laggardPool = sync.Pool{New: func() any { s := []*subscriber(nil); return &s }}

// Send queues one slot frame for every connected client. A client
// whose queue has headroom costs one non-blocking enqueue; a client
// whose queue is full makes the producer wait up to the write timeout
// for space before evicting it — bounded backpressure for a client
// that is merely behind, eviction for one that has stalled. Other
// clients' deliveries proceed independently throughout. Sending to
// zero clients succeeds (the broadcast medium does not care who
// listens); the only error is ErrClosed.
//
// Send is the per-frame fan-out path (BenchmarkServeFanoutPipeline).
//
//pinlint:hotpath
func (f *Fanout) Send(slot int, payload []byte) error {
	fr := frame{slot: slot, payload: payload}
	fp := laggardPool.Get().(*[]*subscriber)
	full := (*fp)[:0]
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		laggardPool.Put(fp)
		return ErrClosed
	}
	depth := 0
	for s := range f.subs {
		if d := len(s.ch); d > depth {
			depth = d
		}
		select {
		case s.ch <- fr:
		default:
			full = append(full, s) //pinlint:allow hotpath — pooled laggard slice, grows once then is reused
		}
	}
	f.mu.Unlock()
	fanoutFrames.Inc()
	fanoutQueueDepth.Set(int64(depth))
	if len(full) == 0 {
		*fp = full
		laggardPool.Put(fp)
		return nil
	}
	// One write-timeout budget covers all laggards: each gets until the
	// timer fires to free queue space; after that, space-or-eviction.
	timer := time.NewTimer(f.timeout)
	defer timer.Stop()
	expired := false
	for _, s := range full {
		if expired {
			select {
			case s.ch <- fr:
			case <-s.done: // writer already dropped it
			default:
				f.drop(s) //pinlint:allow hotpath — eviction, at most once per subscriber
			}
			continue
		}
		select {
		case s.ch <- fr:
		case <-s.done:
		case <-timer.C:
			expired = true
			f.drop(s) //pinlint:allow hotpath — eviction, at most once per subscriber
		}
	}
	clear(full)
	*fp = full[:0]
	laggardPool.Put(fp)
	return nil
}

// Close stops accepting, disconnects every client and waits for the
// accept and writer loops.
func (f *Fanout) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	for s := range f.subs {
		s.stop()
		delete(f.subs, s)
	}
	fanoutSubscribers.Set(int64(len(f.subs)))
	f.mu.Unlock()
	err := f.ln.Close()
	f.wg.Wait()
	return err
}

// Broadcaster pushes a broadcast server's block stream to every
// connected client: a Fanout wired to a server-driven slot clock.
type Broadcaster struct {
	src *server.Server
	f   *Fanout
}

// NewBroadcaster starts accepting clients on ln. Call Run to start the
// slot clock and Close to shut everything down.
func NewBroadcaster(ln net.Listener, src *server.Server) *Broadcaster {
	return &Broadcaster{src: src, f: NewFanout(ln, DefaultWriteTimeout)}
}

// Addr returns the listening address.
func (b *Broadcaster) Addr() net.Addr { return b.f.Addr() }

// ClientCount returns the number of connected clients.
func (b *Broadcaster) ClientCount() int { return b.f.ClientCount() }

// Run broadcasts `slots` consecutive slots, pacing them `interval`
// apart (zero for as fast as possible). Clients whose connections
// error are dropped.
func (b *Broadcaster) Run(slots int, interval time.Duration) error {
	if slots < 1 {
		return errors.New("transport: nothing to broadcast")
	}
	var tick *time.Ticker
	if interval > 0 {
		tick = time.NewTicker(interval)
		defer tick.Stop()
	}
	for t := 0; t < slots; t++ {
		if err := b.f.Send(t, b.src.Emit(t)); err != nil {
			return errors.New("transport: broadcaster closed")
		}
		if tick != nil {
			<-tick.C
		}
	}
	return nil
}

// Close stops accepting, disconnects every client and waits for the
// accept loop.
func (b *Broadcaster) Close() error { return b.f.Close() }

// receiveBufferSize is the Receiver's read-ahead buffer: large enough
// to swallow a full writev batch from the fan-out in one read syscall.
const receiveBufferSize = 128 << 10

// Receiver consumes a broadcast stream from a connection. Reads go
// through a read-ahead buffer sized to the fan-out's writev batches, so
// a receiver keeping pace pays one read syscall per batch of frames,
// not two per frame (header, payload).
type Receiver struct {
	conn net.Conn
	br   *bufio.Reader
	buf  []byte // NextReuse's frame buffer
}

// Dial connects to a broadcaster.
func Dial(addr string) (*Receiver, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Seed the reuse buffer so even the first NextReuse frames (and
	// idle frames before any payload sizes it) read their header
	// without allocating.
	return &Receiver{
		conn: conn,
		br:   bufio.NewReaderSize(conn, receiveBufferSize),
		buf:  make([]byte, 0, 512),
	}, nil
}

// Next returns the next slot frame. It blocks until a frame arrives,
// the deadline passes, or the stream closes (io.EOF). The payload is
// freshly allocated and owned by the caller.
//
//pinlint:hotpath
func (r *Receiver) Next(deadline time.Duration) (slot int, payload []byte, err error) {
	if deadline > 0 {
		r.conn.SetReadDeadline(time.Now().Add(deadline))
	}
	return ReadFrame(r.br)
}

// NextReuse is Next with the payload read into the receiver's internal
// buffer: the returned payload is valid only until the following Next
// or NextReuse call. It is the allocation-free receive path for loops
// that decode each frame before fetching the next.
//
//pinlint:hotpath
func (r *Receiver) NextReuse(deadline time.Duration) (slot int, payload []byte, err error) {
	if deadline > 0 {
		r.conn.SetReadDeadline(time.Now().Add(deadline))
	}
	slot, payload, err = ReadFrameInto(r.br, r.buf)
	if cap(payload) > cap(r.buf) {
		r.buf = payload[:cap(payload)]
	}
	return slot, payload, err
}

// Close closes the connection.
func (r *Receiver) Close() error { return r.conn.Close() }
