// Package transport broadcasts a disk program over real network
// connections. The broadcast channel of the paper is a one-way
// downstream medium; here it is realized as a TCP fan-out: the server
// pushes one framed slot after another to every connected client, and
// never reads — preserving the asymmetry (clients have no upstream
// path through this package at all).
//
// Frame format (big endian):
//
//	uint32 slot number
//	uint32 payload length (0 for an idle slot)
//	payload bytes (a marshaled ida.Block)
//
// Slow or dead clients are disconnected rather than allowed to stall
// the broadcast, matching the fire-and-forget nature of the medium.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"pinbcast/internal/server"
)

// frameHeaderSize is the per-frame header: slot(4) + length(4).
const frameHeaderSize = 8

// MaxFramePayload bounds the payload length a receiver will accept,
// guarding against corrupt headers.
const MaxFramePayload = 1 << 20

// WriteFrame writes one slot frame to w.
func WriteFrame(w io.Writer, slot int, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("transport: payload %d exceeds limit", len(payload))
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(slot))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one slot frame from r. An idle slot yields a nil
// payload.
func ReadFrame(r io.Reader) (slot int, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	slot = int(binary.BigEndian.Uint32(hdr[0:]))
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("transport: frame payload %d exceeds limit", n)
	}
	if n == 0 {
		return slot, nil, nil
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return slot, payload, nil
}

// Broadcaster pushes a broadcast server's block stream to every
// connected client.
type Broadcaster struct {
	src *server.Server
	ln  net.Listener

	mu    sync.Mutex
	conns map[net.Conn]bool
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewBroadcaster starts accepting clients on ln. Call Run to start the
// slot clock and Close to shut everything down.
func NewBroadcaster(ln net.Listener, src *server.Server) *Broadcaster {
	b := &Broadcaster{
		src:   src,
		ln:    ln,
		conns: make(map[net.Conn]bool),
		done:  make(chan struct{}),
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b
}

// Addr returns the listening address.
func (b *Broadcaster) Addr() net.Addr { return b.ln.Addr() }

func (b *Broadcaster) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.mu.Lock()
		select {
		case <-b.done:
			b.mu.Unlock()
			conn.Close()
			return
		default:
		}
		b.conns[conn] = true
		b.mu.Unlock()
	}
}

// ClientCount returns the number of connected clients.
func (b *Broadcaster) ClientCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.conns)
}

// Run broadcasts `slots` consecutive slots, pacing them `interval`
// apart (zero for as fast as possible). Clients whose connections
// error are dropped.
func (b *Broadcaster) Run(slots int, interval time.Duration) error {
	if slots < 1 {
		return errors.New("transport: nothing to broadcast")
	}
	var tick *time.Ticker
	if interval > 0 {
		tick = time.NewTicker(interval)
		defer tick.Stop()
	}
	for t := 0; t < slots; t++ {
		select {
		case <-b.done:
			return errors.New("transport: broadcaster closed")
		default:
		}
		payload := b.src.Emit(t)
		b.mu.Lock()
		for conn := range b.conns {
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			if err := WriteFrame(conn, t, payload); err != nil {
				conn.Close()
				delete(b.conns, conn)
			}
		}
		b.mu.Unlock()
		if tick != nil {
			<-tick.C
		}
	}
	return nil
}

// Close stops accepting, disconnects every client and waits for the
// accept loop.
func (b *Broadcaster) Close() error {
	b.mu.Lock()
	select {
	case <-b.done:
	default:
		close(b.done)
	}
	for conn := range b.conns {
		conn.Close()
		delete(b.conns, conn)
	}
	b.mu.Unlock()
	err := b.ln.Close()
	b.wg.Wait()
	return err
}

// Receiver consumes a broadcast stream from a connection.
type Receiver struct {
	conn net.Conn
}

// Dial connects to a broadcaster.
func Dial(addr string) (*Receiver, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Receiver{conn: conn}, nil
}

// Next returns the next slot frame. It blocks until a frame arrives,
// the deadline passes, or the stream closes (io.EOF).
func (r *Receiver) Next(deadline time.Duration) (slot int, payload []byte, err error) {
	if deadline > 0 {
		r.conn.SetReadDeadline(time.Now().Add(deadline))
	}
	return ReadFrame(r.conn)
}

// Close closes the connection.
func (r *Receiver) Close() error { return r.conn.Close() }
