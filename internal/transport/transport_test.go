package transport

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"pinbcast/internal/client"
	"pinbcast/internal/core"
	"pinbcast/internal/server"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("block payload")
	if err := WriteFrame(&buf, 42, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, 43, nil); err != nil {
		t.Fatal(err)
	}
	slot, got, err := ReadFrame(&buf)
	if err != nil || slot != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("frame 1: slot=%d err=%v", slot, err)
	}
	slot, got, err = ReadFrame(&buf)
	if err != nil || slot != 43 || got != nil {
		t.Fatalf("frame 2: slot=%d payload=%v err=%v", slot, got, err)
	}
}

func TestReadFrameShort(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("short header accepted")
	}
	var buf bytes.Buffer
	WriteFrame(&buf, 1, []byte("abcdef"))
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [8]byte
	hdr[4] = 0xff // declared length 0xff000000
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestWriteFrameOversized(t *testing.T) {
	if err := WriteFrame(io.Discard, 0, make([]byte, MaxFramePayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func newBroadcaster(t *testing.T) (*Broadcaster, *server.Server, map[string][]byte) {
	prog, err := core.FlatSpread([]core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1, DispersalWidth: 10},
		{Name: "B", Blocks: 3, Latency: 1, DispersalWidth: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	contents := map[string][]byte{
		"A": []byte("file A travels the network as dispersed blocks"),
		"B": []byte("file B too"),
	}
	srv, err := server.New(prog, contents)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return NewBroadcaster(ln, srv), srv, contents
}

func TestBroadcastOverTCP(t *testing.T) {
	b, srv, contents := newBroadcaster(t)
	defer b.Close()

	recv, err := Dial(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	waitClients(t, b, 1)

	go func() {
		if err := b.Run(32, 0); err != nil {
			t.Error(err)
		}
	}()

	// Feed received frames into the standard client until both files
	// reconstruct.
	c, err := client.New(0, srv.Names(),
		[]client.Request{{File: "A"}, {File: "B"}})
	if err != nil {
		t.Fatal(err)
	}
	for !c.Done() {
		slot, payload, err := recv.Next(2 * time.Second)
		if err != nil {
			t.Fatalf("receive: %v", err)
		}
		c.Observe(slot, payload)
	}
	for _, r := range c.Results() {
		if !r.Completed || !bytes.Equal(r.Data, contents[r.File]) {
			t.Fatalf("file %q corrupted over network", r.File)
		}
	}
}

func TestBroadcastFanOutTwoClients(t *testing.T) {
	b, srv, contents := newBroadcaster(t)
	defer b.Close()

	r1, err := Dial(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := Dial(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	waitClients(t, b, 2)

	go b.Run(32, 0)

	for i, recv := range []*Receiver{r1, r2} {
		c, err := client.New(0, srv.Names(),
			[]client.Request{{File: "A"}})
		if err != nil {
			t.Fatal(err)
		}
		for !c.Done() {
			slot, payload, err := recv.Next(2 * time.Second)
			if err != nil {
				t.Fatalf("client %d: %v", i, err)
			}
			c.Observe(slot, payload)
		}
		if got := c.Results()[0].Data; !bytes.Equal(got, contents["A"]) {
			t.Fatalf("client %d got wrong bytes", i)
		}
	}
}

func TestDeadClientDropped(t *testing.T) {
	b, _, _ := newBroadcaster(t)
	defer b.Close()

	recv, err := Dial(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	waitClients(t, b, 1)
	recv.Close() // client goes away without telling anyone

	// Broadcasting enough data must eventually notice and drop it.
	if err := b.Run(4096, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.ClientCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead client never dropped")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseUnblocksEverything(t *testing.T) {
	b, _, _ := newBroadcaster(t)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(8, 0); err == nil {
		t.Fatal("Run after Close succeeded")
	}
}

func waitClients(t *testing.T, b *Broadcaster, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for b.ClientCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d clients connected", b.ClientCount(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
