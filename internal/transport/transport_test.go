package transport

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"pinbcast/internal/client"
	"pinbcast/internal/core"
	"pinbcast/internal/server"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("block payload")
	if err := WriteFrame(&buf, 42, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, 43, nil); err != nil {
		t.Fatal(err)
	}
	slot, got, err := ReadFrame(&buf)
	if err != nil || slot != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("frame 1: slot=%d err=%v", slot, err)
	}
	slot, got, err = ReadFrame(&buf)
	if err != nil || slot != 43 || got != nil {
		t.Fatalf("frame 2: slot=%d payload=%v err=%v", slot, got, err)
	}
}

func TestReadFrameShort(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("short header accepted")
	}
	var buf bytes.Buffer
	WriteFrame(&buf, 1, []byte("abcdef"))
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [8]byte
	hdr[4] = 0xff // declared length 0xff000000
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestWriteFrameOversized(t *testing.T) {
	if err := WriteFrame(io.Discard, 0, make([]byte, MaxFramePayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func newBroadcaster(t *testing.T) (*Broadcaster, *server.Server, map[string][]byte) {
	prog, err := core.FlatSpread([]core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1, DispersalWidth: 10},
		{Name: "B", Blocks: 3, Latency: 1, DispersalWidth: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	contents := map[string][]byte{
		"A": []byte("file A travels the network as dispersed blocks"),
		"B": []byte("file B too"),
	}
	srv, err := server.New(prog, contents)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return NewBroadcaster(ln, srv), srv, contents
}

func TestBroadcastOverTCP(t *testing.T) {
	b, srv, contents := newBroadcaster(t)
	defer b.Close()

	recv, err := Dial(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	waitClients(t, b, 1)

	go func() {
		if err := b.Run(32, 0); err != nil {
			t.Error(err)
		}
	}()

	// Feed received frames into the standard client until both files
	// reconstruct.
	c, err := client.New(0, srv.Names(),
		[]client.Request{{File: "A"}, {File: "B"}})
	if err != nil {
		t.Fatal(err)
	}
	for !c.Done() {
		slot, payload, err := recv.Next(2 * time.Second)
		if err != nil {
			t.Fatalf("receive: %v", err)
		}
		c.Observe(slot, payload)
	}
	for _, r := range c.Results() {
		if !r.Completed || !bytes.Equal(r.Data, contents[r.File]) {
			t.Fatalf("file %q corrupted over network", r.File)
		}
	}
}

func TestBroadcastFanOutTwoClients(t *testing.T) {
	b, srv, contents := newBroadcaster(t)
	defer b.Close()

	r1, err := Dial(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := Dial(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	waitClients(t, b, 2)

	go b.Run(32, 0)

	for i, recv := range []*Receiver{r1, r2} {
		c, err := client.New(0, srv.Names(),
			[]client.Request{{File: "A"}})
		if err != nil {
			t.Fatal(err)
		}
		for !c.Done() {
			slot, payload, err := recv.Next(2 * time.Second)
			if err != nil {
				t.Fatalf("client %d: %v", i, err)
			}
			c.Observe(slot, payload)
		}
		if got := c.Results()[0].Data; !bytes.Equal(got, contents["A"]) {
			t.Fatalf("client %d got wrong bytes", i)
		}
	}
}

func TestDeadClientDropped(t *testing.T) {
	b, _, _ := newBroadcaster(t)
	defer b.Close()

	recv, err := Dial(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	waitClients(t, b, 1)
	recv.Close() // client goes away without telling anyone

	// Broadcasting enough data must eventually notice and drop it.
	if err := b.Run(4096, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.ClientCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead client never dropped")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseUnblocksEverything(t *testing.T) {
	b, _, _ := newBroadcaster(t)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(8, 0); err == nil {
		t.Fatal("Run after Close succeeded")
	}
}

func TestFanoutSlowClientEvicted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFanout(ln, 50*time.Millisecond)
	defer f.Close()

	// A subscriber that connects and then never reads: once the kernel
	// buffers fill, writes to it must trip the deadline and evict it.
	conn, err := net.Dial("tcp", f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for f.ClientCount() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never accepted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// More frames than the per-subscriber queue holds: once the queue
	// and kernel buffers fill, either the producer's bounded wait or
	// the writer's deadline must evict the stalled client.
	payload := make([]byte, 512<<10)
	for i := 0; i < 2048 && f.Evicted() == 0; i++ {
		if err := f.Send(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	evictBy := time.Now().Add(5 * time.Second)
	for f.Evicted() == 0 {
		if time.Now().After(evictBy) {
			t.Fatal("stalled client never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if f.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", f.Evicted())
	}
	if f.ClientCount() != 0 {
		t.Fatalf("client count = %d after eviction", f.ClientCount())
	}
	// The broadcast itself is unaffected by having nobody to talk to.
	if err := f.Send(999, []byte("still on air")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(1000, nil); err != ErrClosed {
		t.Fatalf("send after close: err = %v, want ErrClosed", err)
	}
}

func waitClients(t *testing.T, b *Broadcaster, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for b.ClientCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d clients connected", b.ClientCount(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
