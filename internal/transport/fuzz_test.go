package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame hammers the frame decoder with arbitrary byte strings:
// truncated headers, truncated payloads, corrupt and oversized declared
// lengths. The decoder must never panic or over-allocate; any frame it
// does accept must round-trip through WriteFrame bit-identically.
func FuzzReadFrame(f *testing.F) {
	// A well-formed data frame and a well-formed idle frame.
	var seed bytes.Buffer
	WriteFrame(&seed, 7, []byte("self-identifying block"))
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	WriteFrame(&seed, 9, nil)
	f.Add(append([]byte(nil), seed.Bytes()...))
	// Truncated header, truncated payload, oversized declared length.
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 4, 'a', 'b'})
	var over [frameHeaderSize]byte
	binary.BigEndian.PutUint32(over[4:], MaxFramePayload+1)
	f.Add(over[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		slot, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only invariant is "no panic"
		}
		if len(payload) > MaxFramePayload {
			t.Fatalf("accepted %d-byte payload beyond MaxFramePayload", len(payload))
		}
		if len(data) < frameHeaderSize+len(payload) {
			t.Fatalf("decoded %d payload bytes from %d input bytes", len(payload), len(data))
		}
		if want := binary.BigEndian.Uint32(data[4:]); int(want) != len(payload) {
			t.Fatalf("payload length %d != declared %d", len(payload), want)
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, slot, payload); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:frameHeaderSize+len(payload)]) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data[:frameHeaderSize+len(payload)], out.Bytes())
		}
	})
}
