package slotmath

import (
	"errors"
	"math"
	"testing"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 7, 7},
		{7, 0, 7},
		{12, 18, 6},
		{18, 12, 6},
		{1, 1, 1},
		{-12, 18, 6},
		{12, -18, 6},
		{1000000007, 1000000009, 1}, // large coprimes
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMul(t *testing.T) {
	if got, err := Mul(6, 7); err != nil || got != 42 {
		t.Errorf("Mul(6, 7) = %d, %v", got, err)
	}
	if got, err := Mul(0, math.MaxInt); err != nil || got != 0 {
		t.Errorf("Mul(0, MaxInt) = %d, %v", got, err)
	}
	if got, err := Mul(math.MinInt, 1); err != nil || got != math.MinInt {
		t.Errorf("Mul(MinInt, 1) = %d, %v", got, err)
	}
	if got, err := Mul(-3, 5); err != nil || got != -15 {
		t.Errorf("Mul(-3, 5) = %d, %v", got, err)
	}
	for _, c := range [][2]int{
		{math.MaxInt, 2},
		{math.MaxInt/2 + 1, 2},
		{math.MinInt, -1},
		{math.MinInt, 2},
		{1 << 32, 1 << 32},
	} {
		if _, err := Mul(c[0], c[1]); !errors.Is(err, ErrOverflow) {
			t.Errorf("Mul(%d, %d): want ErrOverflow, got %v", c[0], c[1], err)
		}
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 5, 0},
		{5, 0, 0},
		{4, 6, 12},
		{6, 4, 12},
		{7, 7, 7},
		{-4, 6, 12},
		{3, 5, 15},
	}
	for _, c := range cases {
		got, err := LCM(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("LCM(%d, %d) = %d, %v; want %d, nil", c.a, c.b, got, err, c.want)
		}
	}
	// Adversarial: two large coprime frequencies whose lcm is their
	// product, which exceeds int64.
	for _, c := range [][2]int{
		{1000000007 * 3037000499, 1000000009}, // already huge × coprime
		{math.MaxInt - 1, math.MaxInt},        // consecutive ⇒ coprime
		{math.MinInt, 3},
	} {
		if _, err := LCM(c[0], c[1]); !errors.Is(err, ErrOverflow) {
			t.Errorf("LCM(%d, %d): want ErrOverflow, got %v", c[0], c[1], err)
		}
	}
}

func TestShl(t *testing.T) {
	if got, err := Shl(3, 4); err != nil || got != 48 {
		t.Errorf("Shl(3, 4) = %d, %v", got, err)
	}
	for _, c := range [][2]int{
		{1, 63},
		{math.MaxInt, 1},
		{-1, 1},
		{1, -1},
		{1, 64},
	} {
		if _, err := Shl(c[0], c[1]); !errors.Is(err, ErrOverflow) {
			t.Errorf("Shl(%d, %d): want ErrOverflow, got %v", c[0], c[1], err)
		}
	}
}
