// Package slotmath provides checked integer arithmetic for schedule
// algebra: periods, frequencies, slot counts, and data-cycle lengths.
//
// Pinwheel and multi-disk constructions combine per-file quantities
// with lcm and multiplication, and adversarial specifications (large
// coprime frequencies, huge dispersal widths) can push the results past
// the int range. Plain `a / gcd(a,b) * b` silently wraps, turning an
// infeasible specification into a bogus — possibly negative — cycle
// length that downstream window verification then trusts. Every
// schedule-quantity product in the module must therefore go through
// this package, which reports overflow as an error the caller can wrap
// into its own sentinel (ErrBadSpec, ErrInfeasible). The slotmath
// analyzer in internal/analyzers enforces the "must go through"
// part mechanically.
package slotmath

import (
	"errors"
	"math"
)

// ErrOverflow reports that a schedule-algebra result does not fit in an
// int. Callers wrap it into their domain sentinel.
var ErrOverflow = errors.New("slotmath: integer overflow")

// GCD returns the greatest common divisor of a and b by Euclid's
// algorithm. GCD(0, 0) = 0. Negative inputs yield the gcd of their
// absolute values, except math.MinInt whose magnitude is not
// representable; schedule quantities are non-negative in practice.
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Mul returns a*b, or ErrOverflow when the product does not fit in an
// int.
func Mul(a, b int) (int, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	if a == math.MinInt || b == math.MinInt {
		// |MinInt| is not representable, so any product other than
		// MinInt*1 overflows; the division check below would itself
		// fault on MinInt / -1.
		if a == 1 {
			return b, nil
		}
		if b == 1 {
			return a, nil
		}
		return 0, ErrOverflow
	}
	p := a * b
	if p/b != a {
		return 0, ErrOverflow
	}
	return p, nil
}

// LCM returns the least common multiple of a and b, or ErrOverflow when
// it does not fit in an int. LCM(0, x) = LCM(x, 0) = 0. Inputs are
// taken by absolute value, matching the non-negative convention of GCD.
func LCM(a, b int) (int, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a < 0 || b < 0 { // math.MinInt: magnitude unrepresentable
		return 0, ErrOverflow
	}
	return Mul(a/GCD(a, b), b)
}

// Shl returns a << s, or ErrOverflow when the shift drops significant
// bits or s is out of range. a must be non-negative.
func Shl(a, s int) (int, error) {
	if a < 0 || s < 0 || s >= 64 {
		return 0, ErrOverflow
	}
	r := a << s
	if r>>s != a || r < 0 {
		return 0, ErrOverflow
	}
	return r, nil
}
