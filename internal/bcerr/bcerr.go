// Package bcerr defines the sentinel errors shared across the pinbcast
// layers. Every layer wraps these with fmt.Errorf("...: %w", ...) so
// callers of the public facade can classify failures with errors.Is
// without knowing which internal layer produced them.
package bcerr

import "errors"

var (
	// ErrBadSpec reports an invalid specification: a malformed file,
	// task, item or condition that fails validation before any
	// scheduling is attempted.
	ErrBadSpec = errors.New("invalid specification")

	// ErrInfeasible reports a proved infeasibility: no schedule exists
	// for the requested system (density above 1, or an exhausted exact
	// search).
	ErrInfeasible = errors.New("system is infeasible")

	// ErrBandwidth reports that the channel bandwidth is insufficient
	// for the requested file set, or that no feasible bandwidth was
	// found within the search ceiling.
	ErrBandwidth = errors.New("insufficient bandwidth")

	// ErrAdmission reports that admission control rejected a candidate
	// because admitting it would break the density guarantee of the
	// already-admitted files.
	ErrAdmission = errors.New("admission rejected")
)
