package algebra

import (
	"testing"
	"testing/quick"
)

// Every rule's output must be certified by the forcing engine: the rule's
// assumed conditions must imply its produced condition.

func TestR0CertifiedByEngine(t *testing.T) {
	f := func(aS, bS, xS, yS uint8) bool {
		a := 1 + int(aS)%6
		b := a + int(bS)%10
		x := int(xS) % a // keep a−x ≥ 1
		y := int(yS) % 8
		p := PC{Task: "i", A: a, B: b}
		q, err := R0(p, x, y)
		if err != nil {
			return true
		}
		return Implies(p, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestR0Rejects(t *testing.T) {
	p := PC{Task: "i", A: 2, B: 5}
	if _, err := R0(p, -1, 0); err == nil {
		t.Fatal("negative x accepted")
	}
	if _, err := R0(p, 2, 0); err == nil {
		t.Fatal("a−x = 0 accepted")
	}
}

func TestR1CertifiedByEngine(t *testing.T) {
	f := func(aS, bS, nS uint8) bool {
		a := 1 + int(aS)%6
		b := a + int(bS)%10
		n := 1 + int(nS)%5
		p := PC{Task: "i", A: a, B: b}
		q, err := R1(p, n)
		if err != nil {
			return true
		}
		return Implies(p, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestR2CertifiedByEngine(t *testing.T) {
	f := func(aS, bS, xS uint8) bool {
		a := 2 + int(aS)%6
		b := a + int(bS)%10
		x := int(xS) % a
		p := PC{Task: "i", A: a, B: b}
		q, err := R2(p, x)
		if err != nil {
			return true
		}
		return Implies(p, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestR3CertifiedByEngine(t *testing.T) {
	// R3 direction: the produced unit condition implies the original.
	f := func(aS, bS uint8) bool {
		a := 1 + int(aS)%6
		b := a + int(bS)%20
		p := PC{Task: "i", A: a, B: b}
		unit := R3(p)
		return unit.A == 1 && Implies(unit, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestR4CertifiedByEngine(t *testing.T) {
	f := func(aS, bS, xS, yS uint8) bool {
		a := 1 + int(aS)%5
		b := a + int(bS)%8
		x := 1 + int(xS)%4
		y := int(yS) % 6
		p := PC{Task: "i", A: a, B: b}
		helper, err := R4(p, x, y, "i'")
		if err != nil {
			return true
		}
		target := R4Target(p, x, y)
		groups := [][]PC{{p}, {helper.PC}}
		g := CombinedMinGrants(groups, maxWindowFor(groups, []int{target.B}))
		return g[target.B] >= target.A
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestR5CertifiedByEngine(t *testing.T) {
	f := func(aS, bS, nS, xS uint8) bool {
		a := 1 + int(aS)%4
		b := a + int(bS)%6
		n := 1 + int(nS)%4
		x := 1 + int(xS)%(n*b)
		p := PC{Task: "i", A: a, B: b}
		helper, err := R5(p, n, x, "i'")
		if err != nil {
			return true
		}
		target := R5Target(p, n, x)
		if target.A < 1 || target.B < target.A {
			return true // degenerate target: nothing to certify
		}
		groups := [][]PC{{p}, {helper.PC}}
		g := CombinedMinGrants(groups, maxWindowFor(groups, []int{target.B}))
		return g[target.B] >= target.A
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestR5PaperInstance(t *testing.T) {
	// Example 4: pc(i,1,2) ∧ pc(i,5,9) ⇐ pc(i,1,2) ∧ pc(i′,1,10): n=5, x=1.
	p := PC{Task: "i", A: 1, B: 2}
	helper, err := R5(p, 5, 1, "i'")
	if err != nil {
		t.Fatal(err)
	}
	if helper.A != 1 || helper.B != 10 {
		t.Fatalf("helper = %v, want pc(1,10)", helper.PC)
	}
	target := R5Target(p, 5, 1)
	if target.A != 5 || target.B != 9 {
		t.Fatalf("target = %v, want pc(5,9)", target)
	}
}
