// Package algebra implements the pinwheel algebra of §4 of Baruah &
// Bestavros: broadcast-file conditions bc(i, m, d⃗), pinwheel-task
// conditions pc(i, a, b), the manipulation rules R0–R5, the
// transformation rules TR1 and TR2, and a converter that searches for a
// minimum-density *nice* conjunct of pinwheel conditions implying a
// given broadcast-file condition.
//
// The package is built around a "forcing engine" (forcing.go): a sound,
// mechanical procedure that lower-bounds how many grants a conjunct of
// pinwheel conditions forces into every window of a given length. All
// of the paper's hand-derived rules become checkable consequences of the
// engine, and every conversion the converter emits is certified by it.
package algebra

import (
	"fmt"
	"strings"

	"pinbcast/internal/bcerr"
)

// PC is a pinwheel-task condition pc(task, a, b): the broadcast program
// must contain at least A slots of the task in every B consecutive
// slots (Definition 4 of the paper).
type PC struct {
	Task string
	A, B int
}

// Density returns A/B.
func (p PC) Density() float64 { return float64(p.A) / float64(p.B) }

// String renders the condition as in the paper, e.g. "pc(i; 2, 5)".
func (p PC) String() string {
	if p.Task == "" {
		return fmt.Sprintf("pc(%d, %d)", p.A, p.B)
	}
	return fmt.Sprintf("pc(%s; %d, %d)", p.Task, p.A, p.B)
}

// Validate checks 1 ≤ A ≤ B.
func (p PC) Validate() error {
	switch {
	case p.A < 1:
		return fmt.Errorf("algebra: %s has A < 1: %w", p, bcerr.ErrBadSpec)
	case p.B < p.A:
		return fmt.Errorf("algebra: %s has B < A (unsatisfiable): %w", p, bcerr.ErrBadSpec)
	}
	return nil
}

// BC is a broadcast-file condition bc(task, m, d⃗) (Definition 3): the
// program must contain at least M+j blocks of the file in every D[j]
// consecutive slots, for each fault level j = 0..len(D)-1. D[j] is the
// worst-case latency tolerable in the presence of j faults, measured in
// block-transmission times.
type BC struct {
	Task string
	M    int
	D    []int
}

// R returns the highest tolerated fault count, len(D)−1.
func (b BC) R() int { return len(b.D) - 1 }

// String renders the condition as in the paper, e.g. "bc(i; 2, [5, 6, 6])".
func (b BC) String() string {
	ds := make([]string, len(b.D))
	for i, d := range b.D {
		ds[i] = fmt.Sprint(d)
	}
	v := "[" + strings.Join(ds, ", ") + "]"
	if b.Task == "" {
		return fmt.Sprintf("bc(%d, %s)", b.M, v)
	}
	return fmt.Sprintf("bc(%s; %d, %s)", b.Task, b.M, v)
}

// Validate checks that the condition is satisfiable in isolation:
// M ≥ 1, at least one latency, and every window large enough to hold
// the blocks it demands (D[j] ≥ M+j).
func (b BC) Validate() error {
	if b.M < 1 {
		return fmt.Errorf("algebra: %s has M < 1: %w", b, bcerr.ErrBadSpec)
	}
	if len(b.D) == 0 {
		return fmt.Errorf("algebra: %s has an empty latency vector: %w", b, bcerr.ErrBadSpec)
	}
	for j, d := range b.D {
		if d < b.M+j {
			return fmt.Errorf("algebra: %s demands %d blocks in a window of %d (level %d): %w",
				b, b.M+j, d, j, bcerr.ErrBadSpec)
		}
	}
	return nil
}

// Conditions expands the broadcast-file condition into its equivalent
// conjunct of pinwheel conditions (Equation 3):
// bc(i, m, d⃗) ≡ ⋀ⱼ pc(i, m+j, d⁽ʲ⁾).
func (b BC) Conditions() []PC {
	out := make([]PC, len(b.D))
	for j, d := range b.D {
		out[j] = PC{Task: b.Task, A: b.M + j, B: d}
	}
	return out
}

// DensityLowerBound returns max_j (m+j)/d⁽ʲ⁾, the paper's lower bound on
// the density of any nice conjunct implying the condition.
func (b BC) DensityLowerBound() float64 {
	lb := 0.0
	for j, d := range b.D {
		if v := float64(b.M+j) / float64(d); v > lb {
			lb = v
		}
	}
	return lb
}

// Normalize drops pinwheel conditions implied by other conditions of the
// same expansion (the paper's Example 5 uses rule R0 for this: when
// d⁽ʲ⁾ = d⁽ʲ⁺¹⁾ the level-j condition is redundant). The result is an
// equivalent, possibly shorter, conjunct.
func (b BC) Normalize() []PC {
	conds := b.Conditions()
	var out []PC
	for i, c := range conds {
		implied := false
		for k, o := range conds {
			if k != i && Implies(o, c) && !(Implies(c, o) && k > i) {
				// Keep the first of two mutually implying conditions.
				implied = true
				break
			}
		}
		if !implied {
			out = append(out, c)
		}
	}
	return out
}

// Mapped is a pinwheel condition on a scheduler task together with the
// broadcast file it maps to (the paper's map(i′, i) function: blocks of
// file MapsTo are broadcast whenever SchedTask is scheduled).
type Mapped struct {
	PC
	MapsTo string
}

// NiceConjunct is a conjunct of pinwheel conditions in nice form
// (Definition 1): each scheduler task carries exactly one condition.
type NiceConjunct []Mapped

// Density returns the total density of the conjunct — the quantity the
// Chan–Chin schedulability test consumes.
func (n NiceConjunct) Density() float64 {
	d := 0.0
	for _, m := range n {
		d += m.Density()
	}
	return d
}

// Validate checks niceness (distinct scheduler tasks) and each member.
func (n NiceConjunct) Validate() error {
	if len(n) == 0 {
		return fmt.Errorf("algebra: empty conjunct: %w", bcerr.ErrBadSpec)
	}
	seen := make(map[string]bool, len(n))
	for _, m := range n {
		if err := m.PC.Validate(); err != nil {
			return err
		}
		if seen[m.Task] {
			return fmt.Errorf("algebra: conjunct is not nice: task %q repeated", m.Task)
		}
		seen[m.Task] = true
	}
	return nil
}

// String renders the conjunct, e.g.
// "pc(i; 6, 105) ∧ pc(i1; 1, 110)·map(i1, i)".
func (n NiceConjunct) String() string {
	parts := make([]string, len(n))
	for i, m := range n {
		s := m.PC.String()
		if m.MapsTo != "" && m.MapsTo != m.Task {
			s += fmt.Sprintf("·map(%s, %s)", m.Task, m.MapsTo)
		}
		parts[i] = s
	}
	return strings.Join(parts, " ∧ ")
}

// ForFile returns the members whose grants count toward the given file:
// conditions on the file's own task plus all mapped helper tasks.
func (n NiceConjunct) ForFile(file string) []PC {
	var out []PC
	for _, m := range n {
		if m.MapsTo == file || (m.MapsTo == "" && m.Task == file) {
			out = append(out, m.PC)
		}
	}
	return out
}
