package algebra

// The forcing engine.
//
// For a single condition pc(a, b), the minimum number of grants that any
// satisfying schedule places in any window of w consecutive slots has
// the closed form
//
//	g(w) = a·⌊w/b⌋ + max(0, w mod b − (b − a)),
//
// (split w into ⌊w/b⌋ full windows, each forcing a grants, plus a
// remainder of s slots, which overlaps any b-window by s and therefore
// contains at least a − (b − s) grants). The bound is tight: the
// periodic schedule granting slots [0, a) mod b achieves it.
//
// For a conjunct of conditions serving one broadcast file — conditions
// on the file's own scheduler task plus helper tasks mapped to it — the
// engine combines per-condition forcing with three sound closure rules
// over the total grant stream:
//
//	sum:        g(w) ≥ Σ per-task forcing(w)        (streams are disjoint)
//	split:      g(w₁+w₂) ≥ g(w₁) + g(w₂)            (adjacent windows)
//	shrink:     g(w) ≥ g(w+1) − 1                   (one slot, one grant)
//
// The shrink rule is what turns the paper's rule R5 into a mechanical
// consequence: from pc(i,1,2) ∧ pc(i′,1,10) the engine derives five
// grants in every 9-window by first counting six in every 10-window.
// The fixpoint of these rules is a sound lower bound on true forcing
// (it may under-approximate, never over-approximate), so every
// implication the engine certifies is genuine.

// MinGrants returns the closed-form minimum number of grants a schedule
// satisfying pc(·, a, b) must place in any window of w ≥ 0 slots.
func MinGrants(a, b, w int) int {
	if w <= 0 {
		return 0
	}
	q, s := w/b, w%b
	g := a * q
	if over := s - (b - a); over > 0 {
		g += over
	}
	return g
}

// Implies reports whether pc p alone forces pc q (on the same stream):
// every schedule satisfying p also satisfies q. It subsumes the paper's
// rules R0, R1, R2 and R3 and their compositions.
func Implies(p, q PC) bool {
	return MinGrants(p.A, p.B, q.B) >= q.A
}

// forcingSplitCap bounds the window length up to which the quadratic
// exhaustive split search runs; beyond it only splits at structurally
// interesting points (multiples of condition windows) are tried, keeping
// the engine sound while taming cost on broadcast-scale windows.
const forcingSplitCap = 4096

// CombinedMinGrants returns g[0..maxW] where g[w] lower-bounds the
// number of grants every schedule satisfying all conditions (grouped by
// scheduler task) places in any window of w slots, for the union of the
// tasks' grant streams.
func CombinedMinGrants(groups [][]PC, maxW int) []int {
	g := make([]int, maxW+1)
	// Base: sum over tasks of per-task forcing; per task, the max over
	// its own conditions (one stream must satisfy all of them).
	for w := 1; w <= maxW; w++ {
		total := 0
		for _, conds := range groups {
			best := 0
			for _, c := range conds {
				if v := MinGrants(c.A, c.B, w); v > best {
					best = v
				}
			}
			total += best
		}
		g[w] = total
	}
	// Candidate split points for large windows: condition windows and
	// their multiples.
	var splitPoints []int
	if maxW > forcingSplitCap {
		seen := map[int]bool{}
		for _, conds := range groups {
			for _, c := range conds {
				for m := c.B; m <= maxW; m += c.B {
					if !seen[m] {
						seen[m] = true
						splitPoints = append(splitPoints, m)
					}
				}
			}
		}
	}
	// Fixpoint of split and shrink closure.
	for changed := true; changed; {
		changed = false
		// split: ascending pass.
		for w := 2; w <= maxW; w++ {
			if maxW <= forcingSplitCap {
				for w1 := 1; w1 <= w/2; w1++ {
					if v := g[w1] + g[w-w1]; v > g[w] {
						g[w] = v
						changed = true
					}
				}
			} else {
				for _, w1 := range splitPoints {
					if w1 >= w {
						break
					}
					if v := g[w1] + g[w-w1]; v > g[w] {
						g[w] = v
						changed = true
					}
				}
			}
		}
		// shrink: descending pass.
		for w := maxW - 1; w >= 1; w-- {
			if v := g[w+1] - 1; v > g[w] {
				g[w] = v
				changed = true
			}
		}
	}
	return g
}

// maxWindowFor returns the engine horizon for certifying a target
// window: twice the largest window in play, so that shrink derivations
// from just-larger windows (rule R5) are available.
func maxWindowFor(groups [][]PC, targets []int) int {
	max := 0
	for _, conds := range groups {
		for _, c := range conds {
			if c.B > max {
				max = c.B
			}
		}
	}
	for _, t := range targets {
		if t > max {
			max = t
		}
	}
	return 2*max + 2
}

// ImpliesBC reports whether the nice conjunct certifiably implies the
// broadcast-file condition: for every fault level j, the conjunct
// forces at least M+j grants for the file into every window of D[j]
// slots. Soundness comes from the forcing engine; a false return means
// "not certified", not "refuted".
func ImpliesBC(n NiceConjunct, b BC) bool {
	if n.Validate() != nil || b.Validate() != nil {
		return false
	}
	groups := groupByTask(n.ForFile(b.Task))
	if len(groups) == 0 {
		return false
	}
	g := CombinedMinGrants(groups, maxWindowFor(groups, b.D))
	for j, d := range b.D {
		if g[d] < b.M+j {
			return false
		}
	}
	return true
}

// groupByTask buckets conditions by scheduler task, preserving order.
func groupByTask(conds []PC) [][]PC {
	idx := map[string]int{}
	var groups [][]PC
	for _, c := range conds {
		if i, ok := idx[c.Task]; ok {
			groups[i] = append(groups[i], c)
		} else {
			idx[c.Task] = len(groups)
			groups = append(groups, []PC{c})
		}
	}
	return groups
}
