package algebra

import (
	"fmt"
	"sort"
)

// Convert searches for a low-density nice conjunct of pinwheel
// conditions implying a broadcast-file condition — the paper's
// "conversion to nice pinwheel" problem, which it conjectures NP-hard
// and attacks with heuristics. The search space here generalizes the
// paper's strategy (TR1, then Lemma 3 + rules R0–R5 + R4):
//
//  1. the TR1 candidate (one unit condition);
//  2. the TR2 candidate (primary + one unit helper per fault level);
//  3. primary-only candidates pc(i, a₀, b₀): for each a₀, the largest
//     b₀ whose closed-form forcing meets every fault level — this is
//     where Example 5's optimal pc(2,3) and Example 6's pc(2,3) come
//     from;
//  4. primary + greedy unit helpers: the primary meets level 0 with the
//     largest feasible window, then for each unmet level a unit helper
//     with the largest window the forcing engine certifies — this is
//     where Example 4's R1/R5-optimized pc(1,2) ∧ pc(1,10) comes from.
//
// Every candidate is certified by ImpliesBC before being considered;
// the minimum-density certified candidate wins. Conversion preserves
// correctness by construction, and optimality is best-effort (the
// paper's own rules are heuristic for the same reason).

// maxPrimaryA caps the primary computation requirement explored by the
// converter; beyond max(m+r)+2 larger values only lose density.
const maxPrimaryA = 64

func almostSame(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

// Convert returns the best nice conjunct found for the condition,
// certified by the forcing engine.
func Convert(b BC) (NiceConjunct, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	var best NiceConjunct
	consider := func(n NiceConjunct, err error) {
		if err != nil || n == nil {
			return
		}
		if n.Validate() != nil || !ImpliesBC(n, b) {
			return
		}
		// Prefer lower density; at equal density prefer fewer scheduler
		// tasks (a nice conjunct of one condition schedules more simply).
		switch {
		case best == nil,
			n.Density() < best.Density()-1e-12,
			almostSame(n.Density(), best.Density()) && len(n) < len(best):
			best = n
		}
	}

	consider(TR1(b))
	consider(TR2(b))

	aMax := b.M + b.R() + 2
	if aMax > maxPrimaryA {
		aMax = maxPrimaryA
	}
	for a0 := 1; a0 <= aMax; a0++ {
		consider(primaryOnly(b, a0))
		consider(primaryWithHelpers(b, a0))
	}

	if best == nil {
		return nil, fmt.Errorf("algebra: no certified conversion found for %s", b)
	}
	return best, nil
}

// maxWindowMeeting returns the largest b such that pc(a, b) alone forces
// at least need grants into every window of w slots, or 0 if none does.
// MinGrants is monotone nonincreasing in b, so binary search applies.
func maxWindowMeeting(a, need, w int) int {
	if MinGrants(a, a, w) < need {
		return 0 // even the always-granted task cannot meet it
	}
	// For b > w the forcing is max(0, w − (b − a)), which drops below
	// need once b exceeds w + a − need; w + a is a safe search ceiling.
	lo, hi := a, w+a
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if MinGrants(a, mid, w) >= need {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// primaryOnly builds the candidate consisting of the single condition
// pc(i, a₀, b₀) with b₀ = min over fault levels of the largest window
// meeting that level.
func primaryOnly(b BC, a0 int) (NiceConjunct, error) {
	b0 := 0
	for j, d := range b.D {
		w := maxWindowMeeting(a0, b.M+j, d)
		if w == 0 {
			return nil, fmt.Errorf("algebra: a₀=%d cannot meet level %d of %s", a0, j, b)
		}
		if b0 == 0 || w < b0 {
			b0 = w
		}
	}
	if b0 < a0 {
		return nil, fmt.Errorf("algebra: primary window %d below a₀=%d", b0, a0)
	}
	return NiceConjunct{{PC: PC{Task: b.Task, A: a0, B: b0}, MapsTo: b.Task}}, nil
}

// primaryWithHelpers sizes the primary for fault level 0 only, then adds
// one unit helper per uncovered level, each with the largest window the
// forcing engine certifies.
func primaryWithHelpers(b BC, a0 int) (NiceConjunct, error) {
	b0 := maxWindowMeeting(a0, b.M, b.D[0])
	if b0 < a0 {
		return nil, fmt.Errorf("algebra: a₀=%d cannot meet level 0 of %s", a0, b)
	}
	out := NiceConjunct{{PC: PC{Task: b.Task, A: a0, B: b0}, MapsTo: b.Task}}
	for j := 1; j < len(b.D); j++ {
		if certifiesLevel(out, b, j) {
			continue
		}
		c := maxHelperWindow(out, b, j)
		if c == 0 {
			return nil, fmt.Errorf("algebra: no helper window covers level %d of %s", j, b)
		}
		out = append(out, Mapped{
			PC:     PC{Task: HelperName(b.Task, j), A: 1, B: c},
			MapsTo: b.Task,
		})
	}
	return out, nil
}

// certifiesLevel reports whether the conjunct already forces level j of
// the condition.
func certifiesLevel(n NiceConjunct, b BC, j int) bool {
	groups := groupByTask(n.ForFile(b.Task))
	g := CombinedMinGrants(groups, maxWindowFor(groups, b.D))
	return g[b.D[j]] >= b.M+j
}

// maxHelperWindow binary-searches the largest unit-helper window c such
// that the conjunct plus pc(·, 1, c) certifies level j. Certification is
// monotone in c (a helper with a smaller window forces at least as many
// grants everywhere).
func maxHelperWindow(n NiceConjunct, b BC, j int) int {
	try := func(c int) bool {
		cand := append(append(NiceConjunct{}, n...), Mapped{
			PC:     PC{Task: "probe", A: 1, B: c},
			MapsTo: b.Task,
		})
		return certifiesLevel(cand, b, j)
	}
	hi := 2 * b.D[j]
	if !try(1) {
		return 0
	}
	lo := 1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if try(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// ConversionReport captures the quantities the paper reports for its
// examples: the density lower bound, the densities of the canned
// transformations, and the best conversion found.
type ConversionReport struct {
	Input            BC
	LowerBound       float64
	TR1Density       float64 // +Inf-like sentinel (negative) when TR1 fails
	TR2Density       float64
	Best             NiceConjunct
	BestDensity      float64
	WithinLowerBound float64 // BestDensity/LowerBound − 1
}

// Report runs the converter and the canned transformations on the
// condition and summarizes the outcome.
func Report(b BC) (ConversionReport, error) {
	rep := ConversionReport{Input: b, LowerBound: b.DensityLowerBound(), TR1Density: -1, TR2Density: -1}
	if n, err := TR1(b); err == nil {
		rep.TR1Density = n.Density()
	}
	if n, err := TR2(b); err == nil {
		rep.TR2Density = n.Density()
	}
	best, err := Convert(b)
	if err != nil {
		return rep, err
	}
	rep.Best = best
	rep.BestDensity = best.Density()
	rep.WithinLowerBound = rep.BestDensity/rep.LowerBound - 1
	return rep, nil
}

// ConvertSystem converts a set of broadcast-file conditions into a
// single nice conjunct over distinct scheduler tasks, returning the
// members sorted by task name for determinism.
func ConvertSystem(bcs []BC) (NiceConjunct, error) {
	seen := map[string]bool{}
	var out NiceConjunct
	for _, b := range bcs {
		if b.Task == "" {
			return nil, fmt.Errorf("algebra: file condition without a task name: %s", b)
		}
		if seen[b.Task] {
			return nil, fmt.Errorf("algebra: duplicate task %q", b.Task)
		}
		seen[b.Task] = true
		n, err := Convert(b)
		if err != nil {
			return nil, err
		}
		out = append(out, n...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
