package algebra

import (
	"math/rand"
	"testing"
)

// bruteMinGrants computes, by exhaustive enumeration of all cyclic
// schedules of the given period that satisfy pc(a, b), the true minimum
// number of grants in any w-window. Used to certify the closed form.
func bruteMinGrants(a, b, w, period int, t *testing.T) int {
	best := -1
	slots := make([]bool, period)
	var rec func(i int)
	count := func(start, length int) int {
		c := 0
		for k := 0; k < length; k++ {
			if slots[(start+k)%period] {
				c++
			}
		}
		return c
	}
	rec = func(i int) {
		if i == period {
			// Check pc(a, b) cyclically.
			for s := 0; s < period; s++ {
				if count(s, b) < a {
					return
				}
			}
			for s := 0; s < period; s++ {
				if c := count(s, w); best < 0 || c < best {
					best = c
				}
			}
			return
		}
		slots[i] = false
		rec(i + 1)
		slots[i] = true
		rec(i + 1)
	}
	rec(0)
	if best < 0 {
		t.Fatalf("no schedule of period %d satisfies pc(%d,%d)", period, a, b)
	}
	return best
}

func TestMinGrantsClosedFormMatchesBruteForce(t *testing.T) {
	// Periods are multiples of b so cyclic enumeration covers the
	// canonical worst cases.
	cases := []struct{ a, b, w, period int }{
		{1, 2, 3, 4},
		{1, 2, 9, 4},
		{1, 3, 5, 6},
		{2, 5, 7, 10},
		{2, 5, 4, 10},
		{3, 4, 6, 8},
		{1, 4, 11, 8},
		{2, 3, 8, 6},
	}
	for _, c := range cases {
		got := MinGrants(c.a, c.b, c.w)
		want := bruteMinGrants(c.a, c.b, c.w, c.period, t)
		if got != want {
			t.Errorf("MinGrants(%d,%d,%d) = %d, brute force = %d", c.a, c.b, c.w, got, want)
		}
	}
}

func TestMinGrantsBasics(t *testing.T) {
	cases := []struct{ a, b, w, want int }{
		{1, 2, 0, 0},
		{1, 2, 1, 0},
		{1, 2, 2, 1},
		{1, 2, 10, 5},
		{2, 5, 5, 2},
		{2, 5, 10, 4},
		{2, 5, 9, 3},  // R2: one slot fewer loses at most one grant
		{2, 5, 4, 1},  // remainder window overlap
		{5, 5, 3, 3},  // always-granted task
		{1, 10, 9, 0}, // can dodge a window one slot short
	}
	for _, c := range cases {
		if got := MinGrants(c.a, c.b, c.w); got != c.want {
			t.Errorf("MinGrants(%d,%d,%d) = %d, want %d", c.a, c.b, c.w, got, c.want)
		}
	}
}

func TestMinGrantsMonotoneInWindowAndB(t *testing.T) {
	for a := 1; a <= 4; a++ {
		for b := a; b <= 12; b++ {
			prev := 0
			for w := 0; w <= 40; w++ {
				g := MinGrants(a, b, w)
				if g < prev {
					t.Fatalf("MinGrants(%d,%d,·) not monotone at w=%d", a, b, w)
				}
				prev = g
			}
		}
	}
	// Monotone nonincreasing in b (a weaker condition forces less).
	for a := 1; a <= 3; a++ {
		for w := 1; w <= 30; w++ {
			for b := a; b < 20; b++ {
				if MinGrants(a, b, w) < MinGrants(a, b+1, w) {
					t.Fatalf("MinGrants not antitone in b at a=%d b=%d w=%d", a, b, w)
				}
			}
		}
	}
}

func TestImpliesKnownCases(t *testing.T) {
	cases := []struct {
		p, q PC
		want bool
	}{
		{PC{A: 1, B: 2}, PC{A: 1, B: 3}, true},   // R0
		{PC{A: 1, B: 2}, PC{A: 2, B: 4}, true},   // R1
		{PC{A: 2, B: 5}, PC{A: 1, B: 4}, true},   // R2
		{PC{A: 2, B: 3}, PC{A: 1, B: 2}, true},   // paper Example 6
		{PC{A: 1, B: 2}, PC{A: 2, B: 3}, false},  // converse fails
		{PC{A: 1, B: 3}, PC{A: 1, B: 2}, false},  // stronger window
		{PC{A: 1, B: 2}, PC{A: 4, B: 8}, true},   // R1, n = 4
		{PC{A: 2, B: 3}, PC{A: 4, B: 6}, true},   // paper Example 5 step
		{PC{A: 2, B: 3}, PC{A: 2, B: 5}, true},   // paper Example 5 step (R0)
		{PC{A: 1, B: 1}, PC{A: 7, B: 7}, true},   // saturation
		{PC{A: 1, B: 10}, PC{A: 1, B: 9}, false}, // cannot shrink a unit window
	}
	for _, c := range cases {
		if got := Implies(c.p, c.q); got != c.want {
			t.Errorf("Implies(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestCombinedMinGrantsR5Derivation(t *testing.T) {
	// The paper's Example 4 manipulation: pc(i,1,2) ∧ pc(i′,1,10) forces
	// 5 grants in every 9-window (6 in every 10-window, minus one slot).
	groups := [][]PC{
		{{Task: "i", A: 1, B: 2}},
		{{Task: "i'", A: 1, B: 10}},
	}
	g := CombinedMinGrants(groups, 22)
	if g[10] < 6 {
		t.Fatalf("g[10] = %d, want ≥ 6", g[10])
	}
	if g[9] < 5 {
		t.Fatalf("g[9] = %d, want ≥ 5 (rule R5)", g[9])
	}
	// Soundness ceiling: g must not exceed what the periodic witness
	// grants. Task i at even slots + helper every 10 slots gives exactly
	// 6 in some 10-window.
	if g[10] > 6 {
		t.Fatalf("g[10] = %d exceeds achievable 6", g[10])
	}
}

func TestCombinedMinGrantsSameStreamUsesMax(t *testing.T) {
	// Two conditions on ONE task do not add up: one stream serves both.
	groups := [][]PC{{{Task: "i", A: 1, B: 2}, {Task: "i", A: 2, B: 4}}}
	g := CombinedMinGrants(groups, 8)
	if g[4] != 2 {
		t.Fatalf("g[4] = %d, want 2 (max of conditions, not sum)", g[4])
	}
}

func TestCombinedMinGrantsSuperadditive(t *testing.T) {
	groups := [][]PC{{{Task: "i", A: 2, B: 7}}}
	g := CombinedMinGrants(groups, 40)
	for w1 := 1; w1 < 20; w1++ {
		for w2 := 1; w2+w1 <= 40; w2++ {
			if g[w1]+g[w2] > g[w1+w2] {
				t.Fatalf("superadditivity violated at %d+%d", w1, w2)
			}
		}
	}
}

func TestCombinedMinGrantsSoundAgainstSchedules(t *testing.T) {
	// Soundness: for concrete cyclic schedules satisfying the conjunct,
	// every w-window must contain at least g[w] total grants.
	rng := rand.New(rand.NewSource(9))
	groups := [][]PC{
		{{Task: "a", A: 1, B: 3}},
		{{Task: "b", A: 1, B: 5}},
	}
	maxW := 30
	g := CombinedMinGrants(groups, maxW)
	// Build random valid period-15 schedules: task a on one residue
	// mod 3, task b on one residue mod 5.
	for trial := 0; trial < 20; trial++ {
		offA, offB := rng.Intn(3), rng.Intn(5)
		period := 15
		grants := make([]int, period) // grants per slot (0 or 1 per task)
		for s := 0; s < period; s++ {
			if s%3 == offA {
				grants[s]++
			}
			if s%5 == offB && s%3 != offA {
				grants[s]++
			}
		}
		// Only keep trials where the layout is actually valid for b
		// (collisions may break b's condition); check first.
		valid := true
		for s := 0; s < period && valid; s++ {
			cb := 0
			for k := 0; k < 5; k++ {
				t0 := (s + k) % period
				if t0%5 == offB && t0%3 != offA {
					cb++
				}
			}
			if cb < 1 {
				valid = false
			}
		}
		if !valid {
			continue
		}
		for s := 0; s < period; s++ {
			for w := 1; w <= maxW; w++ {
				total := 0
				for k := 0; k < w; k++ {
					total += grants[(s+k)%period]
				}
				if total < g[w] {
					t.Fatalf("engine overclaims: g[%d]=%d but schedule window has %d", w, g[w], total)
				}
			}
		}
	}
}

func TestImpliesBC(t *testing.T) {
	b := BC{Task: "i", M: 2, D: []int{5, 6, 6}}
	if !ImpliesBC(NiceConjunct{{PC: PC{Task: "i", A: 2, B: 3}, MapsTo: "i"}}, b) {
		t.Fatal("pc(2,3) should imply bc(2,[5,6,6]) (paper Example 5)")
	}
	if ImpliesBC(NiceConjunct{{PC: PC{Task: "i", A: 1, B: 3}, MapsTo: "i"}}, b) {
		t.Fatal("pc(1,3) must not imply bc(2,[5,6,6])")
	}
	// Mapped helpers count toward the file.
	b2 := BC{Task: "i", M: 4, D: []int{8, 9}}
	n := NiceConjunct{
		{PC: PC{Task: "i", A: 1, B: 2}, MapsTo: "i"},
		{PC: PC{Task: "i#1", A: 1, B: 10}, MapsTo: "i"},
	}
	if !ImpliesBC(n, b2) {
		t.Fatal("paper Example 4's optimized conjunct not certified")
	}
	// A condition mapped to a different file must not count.
	other := NiceConjunct{
		{PC: PC{Task: "i", A: 1, B: 2}, MapsTo: "i"},
		{PC: PC{Task: "j#1", A: 1, B: 10}, MapsTo: "j"},
	}
	if ImpliesBC(other, b2) {
		t.Fatal("helper mapped to another file counted toward this one")
	}
}

func TestGroupByTask(t *testing.T) {
	gs := groupByTask([]PC{{Task: "x", A: 1, B: 2}, {Task: "y", A: 1, B: 3}, {Task: "x", A: 2, B: 5}})
	if len(gs) != 2 || len(gs[0]) != 2 || len(gs[1]) != 1 {
		t.Fatalf("groupByTask wrong: %v", gs)
	}
}

func TestLargeWindowRestrictedSplits(t *testing.T) {
	// Above forcingSplitCap the engine uses restricted split points but
	// must remain sound and still certify straightforward cases.
	groups := [][]PC{{{Task: "i", A: 1, B: 1000}}}
	g := CombinedMinGrants(groups, 6000)
	if g[5000] < 5 {
		t.Fatalf("g[5000] = %d, want ≥ 5", g[5000])
	}
	if g[999] != 0 {
		t.Fatalf("g[999] = %d, want 0", g[999])
	}
}
