package algebra

import "fmt"

// Transformation rules TR1 and TR2 of §4.2: canned conversions from a
// broadcast-file condition to a nice conjunct of pinwheel conditions.

// TR1 converts bc(i, m, d⃗) into the single unit condition
// pc(i, 1, min_j ⌊d⁽ʲ⁾/(m+j)⌋). Adequate for files with low density
// lower bounds (paper Examples 2 and 3).
func TR1(b BC) (NiceConjunct, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	w := b.D[0] / b.M
	for j, d := range b.D {
		if v := d / (b.M + j); v < w {
			w = v
		}
	}
	if w < 1 {
		return nil, fmt.Errorf("algebra: TR1 on %s yields window %d < 1", b, w)
	}
	return NiceConjunct{{PC: PC{Task: b.Task, A: 1, B: w}, MapsTo: b.Task}}, nil
}

// TR2 converts bc(i, m, d⃗) into
// pc(i, m, d⁽⁰⁾) ∧ pc(i₁, 1, d⁽¹⁾)·map(i₁,i) ∧ … ∧ pc(i_r, 1, d⁽ʳ⁾)·map(i_r,i):
// the primary condition supplies the base m blocks, and one unit helper
// per fault level supplies each extra block (repeated application of R4).
func TR2(b BC) (NiceConjunct, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	out := NiceConjunct{{PC: PC{Task: b.Task, A: b.M, B: b.D[0]}, MapsTo: b.Task}}
	for j := 1; j < len(b.D); j++ {
		out = append(out, Mapped{
			PC:     PC{Task: HelperName(b.Task, j), A: 1, B: b.D[j]},
			MapsTo: b.Task,
		})
	}
	return out, nil
}

// HelperName names the j-th helper scheduler task for a file, matching
// the paper's i₁, i₂, … subscripts.
func HelperName(task string, j int) string {
	return fmt.Sprintf("%s#%d", task, j)
}
