package algebra

import "fmt"

// This file states the paper's pinwheel algebra rules R0–R5 (Figure 8)
// as explicit constructors. Each RuleN function takes the right-hand
// side of the rule — the condition(s) a program is assumed to satisfy —
// and returns the left-hand side it is then guaranteed to satisfy.
// The tests certify every rule against the forcing engine and against
// brute-force schedule enumeration, so the engine, the rules and the
// paper agree.

// R0: pc(i, a−x, b+y) ⇐ pc(i, a, b). Weakening: fewer grants demanded
// of a larger window.
func R0(p PC, x, y int) (PC, error) {
	if x < 0 || y < 0 {
		return PC{}, fmt.Errorf("algebra: R0 requires x, y ≥ 0 (got %d, %d)", x, y)
	}
	q := PC{Task: p.Task, A: p.A - x, B: p.B + y}
	if err := q.Validate(); err != nil {
		return PC{}, err
	}
	return q, nil
}

// R1: pc(i, na, nb) ⇐ pc(i, a, b). A window of nb slots contains n
// disjoint b-windows.
func R1(p PC, n int) (PC, error) {
	if n < 1 {
		return PC{}, fmt.Errorf("algebra: R1 requires n ≥ 1 (got %d)", n)
	}
	return PC{Task: p.Task, A: n * p.A, B: n * p.B}, nil
}

// R2: pc(i, a−x, b−x) ⇐ pc(i, a, b). Shrinking a window by x slots
// removes at most x grants.
func R2(p PC, x int) (PC, error) {
	if x < 0 {
		return PC{}, fmt.Errorf("algebra: R2 requires x ≥ 0 (got %d)", x)
	}
	q := PC{Task: p.Task, A: p.A - x, B: p.B - x}
	if err := q.Validate(); err != nil {
		return PC{}, err
	}
	return q, nil
}

// R3: pc(i, 1, ⌊b/a⌋) ⇒ pc(i, a, b). Note the direction: R3 produces a
// *stronger* unit condition from which the original follows (the paper
// uses it to reduce general tasks to unit tasks). The returned condition
// implies p.
func R3(p PC) PC {
	return PC{Task: p.Task, A: 1, B: p.B / p.A}
}

// R4: pc(i, a, b) ∧ pc(i, a+x, b+y) ⇐ pc(i, a, b) ∧ pc(i′, x, b+y) with
// map(i′, i). The helper task i′ contributes x further grants to the
// file in every (b+y)-window. R4 returns the helper condition for a
// fresh scheduler task named helperTask.
func R4(p PC, x, y int, helperTask string) (Mapped, error) {
	if x < 1 || y < 0 {
		return Mapped{}, fmt.Errorf("algebra: R4 requires x ≥ 1, y ≥ 0 (got %d, %d)", x, y)
	}
	h := PC{Task: helperTask, A: x, B: p.B + y}
	if err := h.Validate(); err != nil {
		return Mapped{}, err
	}
	return Mapped{PC: h, MapsTo: p.Task}, nil
}

// R5: pc(i, a, b) ∧ pc(i, na, nb−x) ⇐ pc(i, a, b) ∧ pc(i′, x, nb) with
// map(i′, i): in every nb-window the pair contributes na+x grants, so
// every (nb−x)-window still holds na. R5 returns the helper condition.
func R5(p PC, n, x int, helperTask string) (Mapped, error) {
	if n < 1 || x < 1 || x >= n*p.B {
		return Mapped{}, fmt.Errorf("algebra: R5 requires n ≥ 1 and 1 ≤ x < nb (got n=%d, x=%d)", n, x)
	}
	h := PC{Task: helperTask, A: x, B: n * p.B}
	if err := h.Validate(); err != nil {
		return Mapped{}, err
	}
	return Mapped{PC: h, MapsTo: p.Task}, nil
}

// R4Target returns the condition R4 establishes: pc(i, a+x, b+y).
func R4Target(p PC, x, y int) PC {
	return PC{Task: p.Task, A: p.A + x, B: p.B + y}
}

// R5Target returns the condition R5 establishes: pc(i, na, nb−x).
func R5Target(p PC, n, x int) PC {
	return PC{Task: p.Task, A: n * p.A, B: n*p.B - x}
}
