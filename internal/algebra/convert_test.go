package algebra

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestConditionsExpansionEq3(t *testing.T) {
	b := BC{Task: "i", M: 2, D: []int{5, 6, 6}}
	conds := b.Conditions()
	want := []PC{
		{Task: "i", A: 2, B: 5},
		{Task: "i", A: 3, B: 6},
		{Task: "i", A: 4, B: 6},
	}
	if len(conds) != len(want) {
		t.Fatalf("got %d conditions", len(conds))
	}
	for i := range want {
		if conds[i] != want[i] {
			t.Fatalf("condition %d = %v, want %v", i, conds[i], want[i])
		}
	}
}

func TestNormalizeExample5(t *testing.T) {
	// The paper's Example 5 uses R0 to simplify bc(i, 2, [5, 6, 6]) to
	// pc(2,5) ∧ pc(4,6). The forcing engine goes one step further than
	// the paper's hand derivation: pc(4,6) alone implies pc(2,5) (by R2
	// with x=1 and then R0), so the normal form is the single condition
	// pc(4,6).
	b := BC{Task: "i", M: 2, D: []int{5, 6, 6}}
	got := b.Normalize()
	want := []PC{{Task: "i", A: 4, B: 6}}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
	if !Implies(want[0], PC{Task: "i", A: 2, B: 5}) {
		t.Fatal("engine no longer certifies pc(4,6) ⇒ pc(2,5)")
	}
}

func TestBCValidate(t *testing.T) {
	cases := []struct {
		b  BC
		ok bool
	}{
		{BC{M: 1, D: []int{2}}, true},
		{BC{M: 0, D: []int{2}}, false},
		{BC{M: 1, D: nil}, false},
		{BC{M: 3, D: []int{2}}, false},    // window too small for m
		{BC{M: 2, D: []int{5, 2}}, false}, // window too small for m+1
		{BC{M: 2, D: []int{5, 6, 6}}, true},
	}
	for i, c := range cases {
		if err := c.b.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d (%v): err = %v, want ok=%v", i, c.b, err, c.ok)
		}
	}
}

func TestDensityLowerBound(t *testing.T) {
	b := BC{Task: "i", M: 5, D: []int{100, 105, 110, 115, 120}}
	// Paper Example 2: max{0.05, 0.0571, 0.0636, 0.0696, 0.075} = 0.075.
	if lb := b.DensityLowerBound(); !almostEqual(lb, 0.075) {
		t.Fatalf("lower bound = %v, want 0.075", lb)
	}
}

func TestTR1Example2(t *testing.T) {
	// Paper Example 2: bc(i, 5, [100,105,110,115,120]) ⇐ pc(i, 1, 13),
	// density 0.0769, within 2.5% of the 0.075 lower bound.
	b := BC{Task: "i", M: 5, D: []int{100, 105, 110, 115, 120}}
	n, err := TR1(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(n) != 1 || n[0].A != 1 || n[0].B != 13 {
		t.Fatalf("TR1 = %v, want pc(i,1,13)", n)
	}
	if !almostEqual(n.Density(), 1.0/13.0) {
		t.Fatalf("density = %v", n.Density())
	}
	if !ImpliesBC(n, b) {
		t.Fatal("TR1 output not certified")
	}
	within := n.Density()/b.DensityLowerBound() - 1
	if within > 0.026 {
		t.Fatalf("within lower bound = %.4f, paper reports 2.5%%", within)
	}
}

func TestTR2Example3(t *testing.T) {
	// Paper Example 3: bc(i, 6, [105, 110]): TR1 gives pc(1,15) at
	// 0.0667; TR2 gives pc(6,105) ∧ pc(1,110) at 0.0662, the winner.
	b := BC{Task: "i", M: 6, D: []int{105, 110}}
	tr1, err := TR1(b)
	if err != nil {
		t.Fatal(err)
	}
	if tr1[0].B != 15 {
		t.Fatalf("TR1 window = %d, want 15", tr1[0].B)
	}
	tr2, err := TR2(b)
	if err != nil {
		t.Fatal(err)
	}
	wantD := 6.0/105.0 + 1.0/110.0
	if !almostEqual(tr2.Density(), wantD) {
		t.Fatalf("TR2 density = %v, want %v", tr2.Density(), wantD)
	}
	if !ImpliesBC(tr2, b) {
		t.Fatal("TR2 output not certified")
	}
	best, err := Convert(b)
	if err != nil {
		t.Fatal(err)
	}
	if best.Density() > wantD+1e-9 {
		t.Fatalf("Convert density %v worse than TR2's %v", best.Density(), wantD)
	}
	// Paper: within 4.1% of the lower bound 0.0636.
	if w := best.Density()/b.DensityLowerBound() - 1; w > 0.042 {
		t.Fatalf("within lower bound = %.4f, paper reports ≤ 4.1%%", w)
	}
}

func TestConvertExample4(t *testing.T) {
	// Paper Example 4: bc(i, 4, [8, 9]); TR1 → density 1.0,
	// TR2 → 0.6111, R1+R5 manipulation → pc(1,2) ∧ pc(1,10) at 0.6.
	b := BC{Task: "i", M: 4, D: []int{8, 9}}
	tr1, err := TR1(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tr1.Density(), 1.0) {
		t.Fatalf("TR1 density = %v, want 1.0", tr1.Density())
	}
	tr2, err := TR2(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tr2.Density(), 4.0/8.0+1.0/9.0) {
		t.Fatalf("TR2 density = %v", tr2.Density())
	}
	// The paper's best manipulation reaches pc(1,2) ∧ pc(1,10) at 0.6.
	// Our systematic converter does strictly better: the single
	// condition pc(5,9) implies bc(4,[8,9]) (every 8-window is a
	// 9-window minus one slot, rule R2) and its density 5/9 ≈ 0.5556
	// meets the lower bound exactly. First certify the paper's conjunct,
	// then the improvement.
	paperBest := NiceConjunct{
		{PC: PC{Task: "i", A: 1, B: 2}, MapsTo: "i"},
		{PC: PC{Task: "i#1", A: 1, B: 10}, MapsTo: "i"},
	}
	if !ImpliesBC(paperBest, b) {
		t.Fatal("paper's pc(1,2) ∧ pc(1,10) not certified")
	}
	if !almostEqual(paperBest.Density(), 0.6) {
		t.Fatalf("paper conjunct density = %v", paperBest.Density())
	}
	best, err := Convert(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(best.Density(), 5.0/9.0) {
		t.Fatalf("Convert density = %v, want 5/9 (pc(5,9), beats the paper's 0.6)", best.Density())
	}
	if !almostEqual(best.Density(), b.DensityLowerBound()) {
		t.Fatal("pc(5,9) should meet the density lower bound exactly")
	}
	if len(best) != 1 || best[0].A != 5 || best[0].B != 9 {
		t.Fatalf("Convert = %v, want pc(i,5,9)", best)
	}
}

func TestConvertExample5Optimal(t *testing.T) {
	// Paper Example 5: bc(i, 2, [5, 6, 6]) ⇐ pc(i, 2, 3), optimal: the
	// nice density equals the lower bound 2/3.
	b := BC{Task: "i", M: 2, D: []int{5, 6, 6}}
	best, err := Convert(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(best.Density(), 2.0/3.0) {
		t.Fatalf("Convert density = %v, want 2/3", best.Density())
	}
	if !almostEqual(best.Density(), b.DensityLowerBound()) {
		t.Fatal("Example 5 conversion should meet the density lower bound")
	}
	if len(best) != 1 || best[0].A != 2 || best[0].B != 3 {
		t.Fatalf("Convert = %v, want pc(i,2,3)", best)
	}
}

func TestConvertExample6(t *testing.T) {
	// Paper Example 6: bc(i, 1, [2, 3]) ≡ pc(i, 2, 3) at 0.6667; naive
	// TR2 yields 0.8333.
	b := BC{Task: "i", M: 1, D: []int{2, 3}}
	tr2, err := TR2(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tr2.Density(), 1.0/2.0+1.0/3.0) {
		t.Fatalf("TR2 density = %v, want 0.8333", tr2.Density())
	}
	best, err := Convert(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(best.Density(), 2.0/3.0) {
		t.Fatalf("Convert density = %v, want 2/3", best.Density())
	}
	if len(best) != 1 || best[0].A != 2 || best[0].B != 3 {
		t.Fatalf("Convert = %v, want pc(i,2,3)", best)
	}
}

func TestConvertUnachievableBoundRemark(t *testing.T) {
	// Paper remark after TR2: bc(i, 2, [5, 7]) is not implied by any
	// nice conjunct of density ≤ 3/7. Our converter must therefore land
	// strictly above 3/7.
	b := BC{Task: "i", M: 2, D: []int{5, 7}}
	best, err := Convert(b)
	if err != nil {
		t.Fatal(err)
	}
	if best.Density() <= 3.0/7.0+1e-9 {
		t.Fatalf("Convert density %v ≤ 3/7, contradicting the paper's remark", best.Density())
	}
}

func TestConvertAlwaysCertifiedAndAboveLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 120; trial++ {
		m := 1 + rng.Intn(6)
		r := rng.Intn(4)
		d := make([]int, r+1)
		d[0] = m + rng.Intn(40)
		for j := 1; j <= r; j++ {
			d[j] = d[j-1] + rng.Intn(10)
			if d[j] < m+j {
				d[j] = m + j
			}
		}
		b := BC{Task: "f", M: m, D: d}
		if b.Validate() != nil {
			continue
		}
		best, err := Convert(b)
		if err != nil {
			t.Fatalf("Convert(%v): %v", b, err)
		}
		if !ImpliesBC(best, b) {
			t.Fatalf("Convert(%v) output %v not certified", b, best)
		}
		if best.Density() < b.DensityLowerBound()-1e-9 {
			t.Fatalf("Convert(%v) density %v below lower bound %v — engine unsound",
				b, best.Density(), b.DensityLowerBound())
		}
	}
}

func TestConvertSystem(t *testing.T) {
	bcs := []BC{
		{Task: "A", M: 5, D: []int{100, 105, 110, 115, 120}},
		{Task: "B", M: 6, D: []int{105, 110}},
		{Task: "C", M: 1, D: []int{2, 3}},
	}
	n, err := ConvertSystem(bcs)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, b := range bcs {
		if !ImpliesBC(n, b) {
			t.Fatalf("system conversion does not cover %v", b)
		}
	}
}

func TestConvertSystemRejectsDuplicates(t *testing.T) {
	bcs := []BC{
		{Task: "A", M: 1, D: []int{4}},
		{Task: "A", M: 1, D: []int{5}},
	}
	if _, err := ConvertSystem(bcs); err == nil {
		t.Fatal("duplicate task accepted")
	}
	if _, err := ConvertSystem([]BC{{M: 1, D: []int{4}}}); err == nil {
		t.Fatal("unnamed task accepted")
	}
}

func TestReport(t *testing.T) {
	b := BC{Task: "i", M: 4, D: []int{8, 9}}
	rep, err := Report(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rep.LowerBound, 5.0/9.0) {
		t.Fatalf("lower bound = %v", rep.LowerBound)
	}
	if !almostEqual(rep.BestDensity, 5.0/9.0) {
		t.Fatalf("best density = %v, want 5/9", rep.BestDensity)
	}
	if rep.WithinLowerBound > 1e-9 {
		t.Fatalf("within = %v, want 0 (bound met exactly)", rep.WithinLowerBound)
	}
}

func TestStringRendering(t *testing.T) {
	b := BC{Task: "i", M: 2, D: []int{5, 6}}
	if got := b.String(); got != "bc(i; 2, [5, 6])" {
		t.Fatalf("BC string = %q", got)
	}
	n := NiceConjunct{
		{PC: PC{Task: "i", A: 6, B: 105}, MapsTo: "i"},
		{PC: PC{Task: "i#1", A: 1, B: 110}, MapsTo: "i"},
	}
	s := n.String()
	if !strings.Contains(s, "map(i#1, i)") {
		t.Fatalf("conjunct string missing map: %q", s)
	}
}

func BenchmarkConvertExample4(b *testing.B) {
	bc := BC{Task: "i", M: 4, D: []int{8, 9}}
	for i := 0; i < b.N; i++ {
		if _, err := Convert(bc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImpliesBC(b *testing.B) {
	bc := BC{Task: "i", M: 4, D: []int{8, 9}}
	n := NiceConjunct{
		{PC: PC{Task: "i", A: 1, B: 2}, MapsTo: "i"},
		{PC: PC{Task: "i#1", A: 1, B: 10}, MapsTo: "i"},
	}
	for i := 0; i < b.N; i++ {
		if !ImpliesBC(n, bc) {
			b.Fatal("not certified")
		}
	}
}
