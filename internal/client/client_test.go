package client

import (
	"bytes"
	"testing"

	"pinbcast/internal/ida"
)

func disperse(t *testing.T, id uint32, data []byte, m, n int) []*ida.Block {
	blocks, err := ida.DisperseFile(id, data, m, n)
	if err != nil {
		t.Fatal(err)
	}
	return blocks
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil, nil); err == nil {
		t.Fatal("no requests accepted")
	}
	if _, err := New(0, nil, []Request{{File: ""}}); err == nil {
		t.Fatal("empty file name accepted")
	}
	if _, err := New(0, nil, []Request{{File: "A"}, {File: "A"}}); err == nil {
		t.Fatal("duplicate request accepted")
	}
}

func TestCollectAndReconstruct(t *testing.T) {
	data := []byte("reconstruct me from any three blocks")
	blocks := disperse(t, 1, data, 3, 6)
	c, err := New(0, map[uint32]string{1: "F"}, []Request{{File: "F", Deadline: 10}})
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(0, blocks[5].Marshal())
	c.Observe(1, nil) // idle slot
	c.Observe(2, blocks[1].Marshal())
	if c.Done() {
		t.Fatal("done with only two blocks")
	}
	c.Observe(3, blocks[3].Marshal())
	if !c.Done() {
		t.Fatal("not done after three distinct blocks")
	}
	res := c.Results()
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	r := res[0]
	if !r.Completed || !bytes.Equal(r.Data, data) {
		t.Fatalf("bad result %+v", r)
	}
	if r.Latency != 4 {
		t.Fatalf("latency = %d, want 4", r.Latency)
	}
	if !r.DeadlineMet {
		t.Fatal("deadline 10 reported missed")
	}
}

func TestDuplicateBlocksDoNotComplete(t *testing.T) {
	data := []byte("duplicates should not count")
	blocks := disperse(t, 1, data, 3, 6)
	c, _ := New(0, map[uint32]string{1: "F"}, []Request{{File: "F"}})
	c.Observe(0, blocks[0].Marshal())
	c.Observe(1, blocks[0].Marshal())
	c.Observe(2, blocks[0].Marshal())
	if c.Done() {
		t.Fatal("completed from duplicate blocks")
	}
}

func TestCorruptedBlockIgnored(t *testing.T) {
	data := []byte("checksums protect the client")
	blocks := disperse(t, 1, data, 2, 4)
	c, _ := New(0, map[uint32]string{1: "F"}, []Request{{File: "F"}})
	raw := blocks[0].Marshal()
	raw[len(raw)-1] ^= 0xff
	c.Observe(0, raw)
	if c.Done() {
		t.Fatal("corrupted block advanced the client")
	}
	c.Observe(1, blocks[1].Marshal())
	c.Observe(2, blocks[2].Marshal())
	if !c.Done() {
		t.Fatal("clean blocks did not complete")
	}
}

func TestBlocksBeforeStartIgnored(t *testing.T) {
	data := []byte("early blocks don't count")
	blocks := disperse(t, 1, data, 2, 4)
	c, _ := New(5, map[uint32]string{1: "F"}, []Request{{File: "F"}})
	c.Observe(0, blocks[0].Marshal())
	c.Observe(1, blocks[1].Marshal())
	if c.Done() {
		t.Fatal("blocks before start counted")
	}
	c.Observe(5, blocks[2].Marshal())
	c.Observe(6, blocks[3].Marshal())
	if !c.Done() {
		t.Fatal("post-start blocks not counted")
	}
	if r := c.Results()[0]; r.Latency != 2 {
		t.Fatalf("latency = %d, want 2 (relative to start)", r.Latency)
	}
}

func TestUnknownAndUnwantedFilesIgnored(t *testing.T) {
	wanted := disperse(t, 1, []byte("wanted file"), 2, 4)
	unwanted := disperse(t, 2, []byte("unwanted file"), 2, 4)
	unknown := disperse(t, 9, []byte("unknown id"), 2, 4)
	c, _ := New(0, map[uint32]string{1: "F", 2: "G"}, []Request{{File: "F"}})
	c.Observe(0, unwanted[0].Marshal())
	c.Observe(1, unknown[0].Marshal())
	if c.Done() {
		t.Fatal("unrelated blocks completed the request")
	}
	c.Observe(2, wanted[0].Marshal())
	c.Observe(3, wanted[1].Marshal())
	if !c.Done() {
		t.Fatal("wanted blocks did not complete")
	}
}

func TestDeadlineMissRecorded(t *testing.T) {
	data := []byte("late delivery")
	blocks := disperse(t, 1, data, 2, 4)
	c, _ := New(0, map[uint32]string{1: "F"}, []Request{{File: "F", Deadline: 2}})
	c.Observe(0, blocks[0].Marshal())
	c.Observe(7, blocks[1].Marshal())
	r := c.Results()[0]
	if !r.Completed {
		t.Fatal("not completed")
	}
	if r.DeadlineMet {
		t.Fatalf("deadline met with latency %d > 2", r.Latency)
	}
}

func TestFlushIncomplete(t *testing.T) {
	c, _ := New(0, map[uint32]string{}, []Request{{File: "F", Deadline: 4}})
	c.NoteCorruption("F")
	res := c.Flush(9)
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	r := res[0]
	if r.Completed {
		t.Fatal("flush reported completion")
	}
	if r.Corrupted != 1 {
		t.Fatalf("corrupted = %d", r.Corrupted)
	}
	if r.Latency != 10 {
		t.Fatalf("latency = %d, want 10", r.Latency)
	}
}

func TestSubscriberDynamicRequests(t *testing.T) {
	fa := disperse(t, 1, []byte("file F, two blocks"), 2, 4)
	ga := disperse(t, 2, []byte("file G"), 1, 2)
	c := NewSubscriber(nil)
	if c.Start() != -1 {
		t.Fatalf("start = %d before tuning in", c.Start())
	}
	if !c.Done() {
		t.Fatal("no requests yet should report done")
	}
	// Directory learned entry by entry, request added before tune-in.
	c.Learn(1, "F")
	if err := c.Add(Request{File: "F", Deadline: 5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Request{File: "F"}); err == nil {
		t.Fatal("duplicate pending request accepted")
	}
	// Tune in at slot 7: the deadline clock starts here.
	if got := c.Observe(7, fa[0].Marshal()); got != Stored {
		t.Fatalf("outcome = %v, want Stored", got)
	}
	if c.Start() != 7 {
		t.Fatalf("start = %d, want 7", c.Start())
	}
	if got := c.Observe(8, nil); got != Idle {
		t.Fatalf("outcome = %v, want Idle", got)
	}
	if got := c.Observe(9, fa[0].Marshal()); got != Ignored {
		t.Fatalf("duplicate block outcome = %v, want Ignored", got)
	}
	if got := c.Observe(10, ga[0].Marshal()); got != Unknown {
		t.Fatalf("undirected block outcome = %v, want Unknown", got)
	}
	bad := fa[1].Marshal()
	bad[len(bad)-1] ^= 0xff
	if got := c.Observe(11, bad); got != Corrupt {
		t.Fatalf("garbled block outcome = %v, want Corrupt", got)
	}
	if got := c.Observe(11, fa[2].Marshal()); got != Completed {
		t.Fatalf("outcome = %v, want Completed", got)
	}
	r := c.Results()[0]
	if !r.Completed || r.Latency != 5 || !r.DeadlineMet {
		t.Fatalf("result %+v, want completion at latency 5 within deadline", r)
	}

	// A request added mid-stream measures from its own activation slot.
	c.Learn(2, "G")
	if err := c.Add(Request{File: "G", Deadline: 3}); err != nil {
		t.Fatal(err)
	}
	if c.PendingCount() != 1 || !c.IsPending("G") {
		t.Fatalf("pending = %v", c.Pending())
	}
	if got := c.Observe(13, ga[1].Marshal()); got != Completed {
		t.Fatalf("outcome = %v, want Completed", got)
	}
	r = c.Results()[1]
	if r.Latency != 2 || !r.DeadlineMet {
		t.Fatalf("mid-stream request latency = %d (met=%v), want 2 within 3", r.Latency, r.DeadlineMet)
	}

	// Re-requesting a completed file starts a fresh retrieval.
	if err := c.Add(Request{File: "G"}); err != nil {
		t.Fatal(err)
	}
	if c.Done() {
		t.Fatal("re-request should reopen the file")
	}
}

func TestMultipleRequests(t *testing.T) {
	fa := disperse(t, 1, []byte("file F"), 1, 2)
	ga := disperse(t, 2, []byte("file G"), 1, 2)
	c, _ := New(0, map[uint32]string{1: "F", 2: "G"}, []Request{{File: "F"}, {File: "G"}})
	c.Observe(0, fa[0].Marshal())
	if c.Done() {
		t.Fatal("done after one of two requests")
	}
	c.Observe(1, ga[1].Marshal())
	if !c.Done() {
		t.Fatal("not done after both requests")
	}
	if len(c.Results()) != 2 {
		t.Fatalf("results = %d", len(c.Results()))
	}
}
