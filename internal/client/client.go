// Package client implements the mobile client of a broadcast-disk
// system: it listens to the channel, keeps the self-identifying blocks
// relevant to its pending requests in a small cache, reconstructs files
// with IDA as soon as any M distinct blocks have arrived, and tracks
// retrieval deadlines.
package client

import (
	"fmt"

	"pinbcast/internal/ida"
)

// Request asks for one file with a relative deadline.
type Request struct {
	File     string
	Deadline int // slots after the request becomes active; 0 = none
}

// Result records the outcome of one request.
type Result struct {
	File        string
	Completed   bool
	Latency     int // slots from request activation to reconstruction (valid if Completed)
	Deadline    int
	DeadlineMet bool
	Data        []byte
	BlocksUsed  int
	Corrupted   int // corrupted receptions observed for this file
	// FromCache marks a request served instantly from a client-side
	// cache of previously reconstructed files (the receiver layer sets
	// it; the core protocol never does).
	FromCache bool
}

// Outcome classifies what one observed slot did for the client.
type Outcome int8

// Observe outcomes.
const (
	// Idle: the slot carried no block.
	Idle Outcome = iota
	// Corrupt: the payload failed its checksum and was dropped.
	Corrupt
	// Unknown: a valid block of a file absent from the directory.
	Unknown
	// Ignored: a valid block of a file with no pending request (or a
	// duplicate sequence number already held).
	Ignored
	// Stored: a new distinct block of a pending file was retained.
	Stored
	// Completed: the block completed a reconstruction.
	Completed
)

// Client collects blocks for a set of requests. The zero value is not
// usable; construct with New or NewSubscriber.
type Client struct {
	start    int // first observed slot; -1 until the client hears the channel
	now      int
	pending  map[string]*pendingFile
	results  []Result
	fileName map[uint32]string // file ID -> name, learned from the server mapping

	// dirView is the copy-on-write snapshot Directory hands out: built
	// lazily, shared across calls, and dropped (not mutated) when Learn
	// changes the directory — so per-slot Directory callers allocate
	// nothing in steady state.
	dirView map[uint32]string

	// scratch is the decode target Observe reuses across slots, so
	// classifying a block costs no allocation; only blocks worth keeping
	// are cloned out of it.
	scratch ida.Block

	// freeBlocks recycles stored blocks whose file has been finished or
	// cancelled: Observe copies into a recycled block (payload buffer
	// included) before paying for a fresh Clone. blockScratch is
	// finish's reconstruction assembly slice, reused across files.
	// freePending recycles cancelled request entries the same way —
	// re-requesting under a multi-channel tuner is the steady state, not
	// the exception. freeData holds reconstruction output buffers handed
	// back through Recycle, so steady-state retrieval (request, finish,
	// recycle, repeat) reconstructs into the same buffer every cycle.
	freeBlocks   []*ida.Block
	blockScratch []*ida.Block
	freePending  []*pendingFile
	freeData     [][]byte
}

type pendingFile struct {
	req       Request
	from      int // slot the deadline clock starts at; -1 = first observed slot
	blocks    map[uint16]*ida.Block
	corrupted int
	done      bool
}

// New returns a client that starts listening at absolute slot start and
// wants the given requests. names maps server file IDs to names (the
// paper's self-identifying blocks carry the ID; a directory of names is
// application metadata).
func New(start int, names map[uint32]string, reqs []Request) (*Client, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("client: no requests")
	}
	c := NewSubscriber(names)
	c.start = start
	c.now = start - 1 // nothing observed yet: requests activate at start
	for _, r := range reqs {
		if err := c.Add(r); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// NewSubscriber returns a client with no initial requests: it fixes its
// start at the first slot it observes ("tuning in"), learns directory
// entries with Learn, and accepts requests over time with Add. This is
// the constructor the public Receiver builds on.
func NewSubscriber(names map[uint32]string) *Client {
	c := &Client{
		start:    -1,
		now:      -1,
		pending:  make(map[string]*pendingFile),
		fileName: make(map[uint32]string, len(names)),
	}
	for id, name := range names {
		c.fileName[id] = name
	}
	return c
}

// Add registers one more request. Its deadline clock starts at the next
// slot the client observes (or at the client's start, if it has not
// begun listening yet). Adding a request for a file that is still
// pending is an error; re-requesting a completed file starts a fresh
// retrieval.
func (c *Client) Add(r Request) error {
	if r.File == "" {
		return fmt.Errorf("client: request without a file name")
	}
	if p, dup := c.pending[r.File]; dup && !p.done {
		return fmt.Errorf("client: duplicate request for %q", r.File)
	}
	from := c.start
	if c.start >= 0 && c.now >= c.start {
		from = c.now + 1 // already listening: the clock starts next slot
	}
	if p := c.pending[r.File]; p != nil && p.done {
		// Re-request of a completed file: the entry (and its block map)
		// is reused in place.
		p.req = r
		p.from = from
		p.corrupted = 0
		p.done = false
		return nil
	}
	if n := len(c.freePending) - 1; n >= 0 {
		p := c.freePending[n]
		c.freePending = c.freePending[:n]
		p.req = r
		p.from = from
		p.corrupted = 0
		p.done = false
		c.pending[r.File] = p
		return nil
	}
	c.pending[r.File] = &pendingFile{req: r, from: from, blocks: make(map[uint16]*ida.Block)}
	return nil
}

// Cancel withdraws an uncompleted request without recording a result,
// discarding any blocks collected for it. It reports whether a pending
// request was actually withdrawn. A multi-channel tuner cancels a
// file's collection on the losing channels once any channel completes
// it (or when it hops a request off a dead channel).
func (c *Client) Cancel(name string) bool {
	p, ok := c.pending[name]
	if !ok || p.done {
		return false
	}
	delete(c.pending, name)
	for _, b := range p.blocks {
		c.freeBlocks = append(c.freeBlocks, b)
	}
	clear(p.blocks)
	c.freePending = append(c.freePending, p)
	return true
}

// Learn adds one directory entry mapping a broadcast file identifier to
// a name (e.g. gleaned from an air index or an in-process slot stream).
// Re-learning an unchanged entry is free; a genuinely new or changed
// entry invalidates the snapshot Directory hands out.
//
//pinlint:hotpath
func (c *Client) Learn(id uint32, name string) {
	if prev, ok := c.fileName[id]; ok && prev == name {
		return
	}
	c.fileName[id] = name
	c.dirView = nil
}

// Directory returns the client's current id→name directory as a shared
// read-only snapshot: the same map is returned until the directory
// changes (copy-on-write), so per-slot callers do not allocate. Callers
// must not mutate it.
func (c *Client) Directory() map[uint32]string {
	if c.dirView == nil {
		view := make(map[uint32]string, len(c.fileName))
		for id, name := range c.fileName {
			view[id] = name
		}
		c.dirView = view
	}
	return c.dirView
}

// Start returns the slot at which the client began listening (-1 if it
// has not observed any slot yet).
func (c *Client) Start() int { return c.start }

// IsPending reports whether the named file has an uncompleted request.
//
//pinlint:hotpath
func (c *Client) IsPending(name string) bool {
	p, ok := c.pending[name]
	return ok && !p.done
}

// PendingCount returns the number of uncompleted requests.
//
//pinlint:hotpath
func (c *Client) PendingCount() int {
	n := 0
	for _, p := range c.pending {
		if !p.done {
			n++
		}
	}
	return n
}

// Pending returns the names of files with uncompleted requests.
func (c *Client) Pending() []string {
	var out []string
	for name, p := range c.pending {
		if !p.done {
			out = append(out, name)
		}
	}
	return out
}

// Done reports whether every request has been completed.
//
//pinlint:hotpath
func (c *Client) Done() bool {
	for _, p := range c.pending {
		if !p.done {
			return false
		}
	}
	return true
}

// Observe delivers the raw channel contents of slot t to the client:
// nil for an idle slot, otherwise the (possibly corrupted) marshaled
// block. Corrupted blocks are detected by checksum and counted against
// the file they would have served when identifiable, or dropped
// silently otherwise — exactly the "wait for the next useful block"
// behaviour of §2.3. The returned Outcome classifies what the slot did
// for the client; callers that only care about completion may ignore it.
//
// Observe is the per-slot protocol step; slots that do not complete a
// request must not allocate (BenchmarkReceiverSlots).
//
//pinlint:hotpath
func (c *Client) Observe(t int, raw []byte) Outcome {
	if c.start < 0 {
		c.start = t
		c.now = t
		for _, p := range c.pending {
			if p.from < 0 {
				p.from = t
			}
		}
	}
	if t < c.start {
		return Ignored
	}
	c.now = t
	if raw == nil {
		return Idle
	}
	// Decode into the reusable scratch block: most slots carry a block
	// the client ignores (another file's, or a duplicate), and those
	// must not cost an allocation. Only a block that is actually stored
	// is cloned out of the scratch.
	if err := ida.UnmarshalInto(raw, &c.scratch); err != nil {
		// The block is unreadable; we cannot even tell whose it was.
		// Charge it to every still-pending file's corruption count is
		// wrong; charge nobody, as the paper's client simply waits.
		return Corrupt
	}
	name, ok := c.fileName[c.scratch.FileID]
	if !ok {
		return Unknown
	}
	p, wanted := c.pending[name]
	if !wanted || p.done {
		return Ignored
	}
	if _, dup := p.blocks[c.scratch.Seq]; dup {
		return Ignored
	}
	var blk *ida.Block
	if n := len(c.freeBlocks) - 1; n >= 0 {
		// Copy into a recycled block, reusing its payload buffer.
		blk = c.freeBlocks[n]
		c.freeBlocks = c.freeBlocks[:n]
		payload := blk.Payload
		*blk = c.scratch
		blk.Payload = append(payload[:0], c.scratch.Payload...)
	} else {
		blk = c.scratch.Clone() //pinlint:allow hotpath allocprove — a block worth keeping is cloned out of scratch by design; one allocation per stored block until the recycle pool warms up
	}
	p.blocks[blk.Seq] = blk
	if len(p.blocks) >= int(blk.M) {
		c.finish(name, p)
		return Completed
	}
	return Stored
}

// finish reconstructs the file and records the result. It runs once
// per completed request but sits on the per-slot path, so everything it
// touches is pooled: the assembly slice, the stored blocks it releases,
// and the output buffer — a recycled one (Recycle) when available.
//
//pinlint:hotpath
func (c *Client) finish(name string, p *pendingFile) {
	blocks := c.blockScratch[:0]
	for _, b := range p.blocks {
		blocks = append(blocks, b) //pinlint:allow hotpath — reuses blockScratch's capacity; grows only until the largest M seen
	}
	var buf []byte
	if n := len(c.freeData) - 1; n >= 0 {
		buf = c.freeData[n]
		c.freeData = c.freeData[:n]
	}
	data, err := ida.ReconstructFileInto(blocks, buf)
	if err != nil && buf != nil {
		// The pooled buffer was not consumed; keep it for the next file.
		c.freeData = append(c.freeData, buf)
	}
	latency := c.now - p.from + 1
	res := Result{
		File:       name,
		Deadline:   p.req.Deadline,
		Latency:    latency,
		BlocksUsed: len(blocks),
		Corrupted:  p.corrupted,
	}
	if err == nil {
		res.Completed = true
		res.Data = data
		res.DeadlineMet = p.req.Deadline == 0 || latency <= p.req.Deadline
	}
	p.done = true
	c.results = append(c.results, res)
	// The stored blocks are dead now that the file is rebuilt
	// (ReconstructFile copies shard payloads out): recycle them and keep
	// the assembly slice, with its references dropped, for the next
	// reconstruction.
	c.freeBlocks = append(c.freeBlocks, blocks...)
	clear(p.blocks)
	for i := range blocks {
		blocks[i] = nil
	}
	c.blockScratch = blocks[:0]
}

// NoteCorruption is called by the simulator when it knows slot t's
// transmission (for the given file name) was destroyed; the client
// itself may be unable to attribute it. Used for per-file loss
// accounting in reports.
func (c *Client) NoteCorruption(name string) {
	if p, ok := c.pending[name]; ok && !p.done {
		p.corrupted++
	}
}

// Results returns completed request outcomes; files still pending at
// the end of a simulation are reported by Flush.
func (c *Client) Results() []Result { return c.results }

// TakeResults appends every recorded result to dst, removes them from
// the client, and returns dst. The client keeps its history slice's
// capacity, so a caller that drains completions as they happen (a
// multi-channel tuner does, once per reconstruction) leaves neither
// side accumulating.
//
//pinlint:hotpath
func (c *Client) TakeResults(dst []Result) []Result {
	dst = append(dst, c.results...)
	clear(c.results)
	c.results = c.results[:0]
	return dst
}

// Recycle hands a reconstructed file's Data buffer back to the client
// for reuse by a future reconstruction. The caller must be finished
// with the buffer — no Result it still holds may reference it.
//
//pinlint:hotpath
func (c *Client) Recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	c.freeData = append(c.freeData, buf[:0])
}

// AddResult appends an externally produced result (the receiver layer
// records cache hits through it).
func (c *Client) AddResult(r Result) { c.results = append(c.results, r) }

// Flush closes out incomplete requests as failures at the given final
// slot and returns all results.
func (c *Client) Flush(final int) []Result {
	for name, p := range c.pending {
		if p.done {
			continue
		}
		from := p.from
		if from < 0 {
			from = final // never heard a slot: zero listening time
		}
		c.results = append(c.results, Result{
			File:      name,
			Completed: false,
			Deadline:  p.req.Deadline,
			Latency:   final - from + 1,
			Corrupted: p.corrupted,
		})
		p.done = true
	}
	return c.results
}
