// Package client implements the mobile client of a broadcast-disk
// system: it listens to the channel, keeps the self-identifying blocks
// relevant to its pending requests in a small cache, reconstructs files
// with IDA as soon as any M distinct blocks have arrived, and tracks
// retrieval deadlines.
package client

import (
	"fmt"

	"pinbcast/internal/ida"
)

// Request asks for one file with a relative deadline.
type Request struct {
	File     string
	Deadline int // slots after the client starts listening; 0 = none
}

// Result records the outcome of one request.
type Result struct {
	File        string
	Completed   bool
	Latency     int // slots from start to reconstruction (valid if Completed)
	Deadline    int
	DeadlineMet bool
	Data        []byte
	BlocksUsed  int
	Corrupted   int // corrupted receptions observed for this file
}

// Client collects blocks for a set of requests. The zero value is not
// usable; construct with New.
type Client struct {
	start    int
	now      int
	pending  map[string]*pendingFile
	results  []Result
	fileName map[uint32]string // file ID -> name, learned from the server mapping
}

type pendingFile struct {
	req       Request
	blocks    map[uint16]*ida.Block
	corrupted int
	done      bool
}

// New returns a client that starts listening at absolute slot start and
// wants the given requests. names maps server file IDs to names (the
// paper's self-identifying blocks carry the ID; a directory of names is
// application metadata).
func New(start int, names map[uint32]string, reqs []Request) (*Client, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("client: no requests")
	}
	c := &Client{
		start:    start,
		now:      start,
		pending:  make(map[string]*pendingFile, len(reqs)),
		fileName: names,
	}
	for _, r := range reqs {
		if r.File == "" {
			return nil, fmt.Errorf("client: request without a file name")
		}
		if _, dup := c.pending[r.File]; dup {
			return nil, fmt.Errorf("client: duplicate request for %q", r.File)
		}
		c.pending[r.File] = &pendingFile{req: r, blocks: make(map[uint16]*ida.Block)}
	}
	return c, nil
}

// Start returns the slot at which the client began listening.
func (c *Client) Start() int { return c.start }

// Done reports whether every request has been completed.
func (c *Client) Done() bool {
	for _, p := range c.pending {
		if !p.done {
			return false
		}
	}
	return true
}

// Observe delivers the raw channel contents of slot t to the client:
// nil for an idle slot, otherwise the (possibly corrupted) marshaled
// block. Corrupted blocks are detected by checksum and counted against
// the file they would have served when identifiable, or dropped
// silently otherwise — exactly the "wait for the next useful block"
// behaviour of §2.3.
func (c *Client) Observe(t int, raw []byte) {
	if t < c.start {
		return
	}
	c.now = t
	if raw == nil {
		return
	}
	blk, err := ida.Unmarshal(raw)
	if err != nil {
		// The block is unreadable; we cannot even tell whose it was.
		// Charge it to every still-pending file's corruption count is
		// wrong; charge nobody, as the paper's client simply waits.
		return
	}
	name, ok := c.fileName[blk.FileID]
	if !ok {
		return
	}
	p, wanted := c.pending[name]
	if !wanted || p.done {
		return
	}
	p.blocks[blk.Seq] = blk
	if len(p.blocks) >= int(blk.M) {
		c.finish(name, p)
	}
}

// finish reconstructs the file and records the result.
func (c *Client) finish(name string, p *pendingFile) {
	blocks := make([]*ida.Block, 0, len(p.blocks))
	for _, b := range p.blocks {
		blocks = append(blocks, b)
	}
	data, err := ida.ReconstructFile(blocks)
	latency := c.now - c.start + 1
	res := Result{
		File:       name,
		Deadline:   p.req.Deadline,
		Latency:    latency,
		BlocksUsed: len(blocks),
		Corrupted:  p.corrupted,
	}
	if err == nil {
		res.Completed = true
		res.Data = data
		res.DeadlineMet = p.req.Deadline == 0 || latency <= p.req.Deadline
	}
	p.done = true
	c.results = append(c.results, res)
}

// NoteCorruption is called by the simulator when it knows slot t's
// transmission (for the given file name) was destroyed; the client
// itself may be unable to attribute it. Used for per-file loss
// accounting in reports.
func (c *Client) NoteCorruption(name string) {
	if p, ok := c.pending[name]; ok && !p.done {
		p.corrupted++
	}
}

// Results returns completed request outcomes; files still pending at
// the end of a simulation are reported by Flush.
func (c *Client) Results() []Result { return c.results }

// Flush closes out incomplete requests as failures at the given final
// slot and returns all results.
func (c *Client) Flush(final int) []Result {
	for name, p := range c.pending {
		if p.done {
			continue
		}
		c.results = append(c.results, Result{
			File:      name,
			Completed: false,
			Deadline:  p.req.Deadline,
			Latency:   final - c.start + 1,
			Corrupted: p.corrupted,
		})
		p.done = true
	}
	return c.results
}
