package rtdb

import (
	"fmt"

	"pinbcast/internal/bcerr"
	"pinbcast/internal/core"
)

// Read-only client transactions over broadcast data (§1: the paper's
// motivating clients are transactions that must complete data
// retrieval before a deadline). A transaction reads a set of items; a
// broadcast client collects all of them concurrently, so the
// transaction's retrieval time is the slowest member's. Because the
// pinwheel construction bounds every file's worst case by its window,
// a transaction's deadline can be *guaranteed* at admission time: the
// largest window among its read set must fit in the deadline.

// Txn is a read-only transaction with a firm deadline in slots.
type Txn struct {
	Name     string
	Reads    []string
	Deadline int
}

// Validate checks the transaction.
func (x Txn) Validate() error {
	if x.Name == "" {
		return fmt.Errorf("rtdb: transaction needs a name: %w", bcerr.ErrBadSpec)
	}
	if len(x.Reads) == 0 {
		return fmt.Errorf("rtdb: transaction %q reads nothing: %w", x.Name, bcerr.ErrBadSpec)
	}
	if x.Deadline < 1 {
		return fmt.Errorf("rtdb: transaction %q has deadline %d: %w", x.Name, x.Deadline, bcerr.ErrBadSpec)
	}
	return nil
}

// GuaranteeTxn decides at admission time whether the transaction's
// deadline is guaranteed by construction: every read item's pinwheel
// window (B·Tᵢ, the worst-case fault-tolerant retrieval bound) must be
// at most the deadline. It returns the binding worst-case bound.
func GuaranteeTxn(files []core.FileSpec, bandwidth int, x Txn) (bool, int, error) {
	if err := x.Validate(); err != nil {
		return false, 0, err
	}
	byName := make(map[string]core.FileSpec, len(files))
	for _, f := range files {
		byName[f.Name] = f
	}
	worst := 0
	for _, name := range x.Reads {
		f, ok := byName[name]
		if !ok {
			return false, 0, fmt.Errorf("rtdb: transaction %q reads unknown item %q: %w",
				x.Name, name, bcerr.ErrBadSpec)
		}
		if w := bandwidth * f.Latency; w > worst {
			worst = w
		}
	}
	return worst <= x.Deadline, worst, nil
}

// TxnLatency returns the fault-free retrieval time of the transaction
// when the client starts listening at the given slot: the time until
// every read item's reconstruction threshold of blocks has passed.
func TxnLatency(p *core.Program, x Txn, start int) (int, error) {
	if err := x.Validate(); err != nil {
		return 0, err
	}
	worst := 0
	for _, name := range x.Reads {
		file := p.FileIndex(name)
		if file < 0 {
			return 0, fmt.Errorf("rtdb: item %q not on the broadcast disk: %w", name, bcerr.ErrBadSpec)
		}
		need := p.Files[file].M
		seen := 0
		t := start
		for {
			if p.FileAt(t) == file {
				seen++
				if seen == need {
					break
				}
			}
			t++
			if t-start > (need+2)*p.Period*4 {
				return 0, fmt.Errorf("rtdb: item %q starves on the program", name)
			}
		}
		if lat := t - start + 1; lat > worst {
			worst = lat
		}
	}
	return worst, nil
}

// TxnWorstLatency maximizes TxnLatency over every start slot of one
// period.
func TxnWorstLatency(p *core.Program, x Txn) (int, error) {
	worst := 0
	for start := 0; start < p.Period; start++ {
		lat, err := TxnLatency(p, x, start)
		if err != nil {
			return 0, err
		}
		if lat > worst {
			worst = lat
		}
	}
	return worst, nil
}

// MaxStaleness bounds the age of item data a client holds right after
// retrieving it, when the server refreshes the item every `refresh`
// slots: the copy captured on the air may already be up to `refresh`
// old when its last block leaves the server, plus the retrieval time
// itself. With the pinwheel window W = B·T as retrieval bound, the
// absolute temporal-consistency constraint of §1 is met whenever
// refresh + W stays within the item's constraint.
func MaxStaleness(windowSlots, refreshSlots int) int {
	return windowSlots + refreshSlots
}
