package rtdb

import (
	"errors"
	"testing"
	"time"

	"pinbcast/internal/core"
)

func awacsItems() []Item {
	return []Item{
		{
			Name:     "aircraft-pos",
			Velocity: KmPerHour(900),
			Accuracy: 100,
			Blocks:   4,
			FaultsByMode: map[Mode]int{
				"combat":  2,
				"landing": 1,
			},
		},
		{
			Name:     "tank-pos",
			Velocity: KmPerHour(60),
			Accuracy: 100,
			Blocks:   2,
			FaultsByMode: map[Mode]int{
				"combat": 1,
			},
		},
	}
}

func TestPaperTemporalConstraints(t *testing.T) {
	// §1: 900 km/h with 100 m accuracy → 400 ms; 60 km/h → 6,000 ms.
	items := awacsItems()
	if got := items[0].TemporalConstraint(); got != 400*time.Millisecond {
		t.Fatalf("aircraft constraint = %v, want 400ms", got)
	}
	if got := items[1].TemporalConstraint(); got != 6*time.Second {
		t.Fatalf("tank constraint = %v, want 6s", got)
	}
}

func TestKmPerHour(t *testing.T) {
	if v := KmPerHour(900); v != 250 {
		t.Fatalf("900 km/h = %v m/s, want 250", v)
	}
}

func TestItemValidate(t *testing.T) {
	cases := []struct {
		it Item
		ok bool
	}{
		{Item{Name: "x", Velocity: 1, Accuracy: 1, Blocks: 1}, true},
		{Item{Velocity: 1, Accuracy: 1, Blocks: 1}, false},
		{Item{Name: "x", Velocity: 0, Accuracy: 1, Blocks: 1}, false},
		{Item{Name: "x", Velocity: 1, Accuracy: 0, Blocks: 1}, false},
		{Item{Name: "x", Velocity: 1, Accuracy: 1, Blocks: 0}, false},
		{Item{Name: "x", Velocity: 1, Accuracy: 1, Blocks: 1,
			FaultsByMode: map[Mode]int{"m": -1}}, false},
	}
	for i, c := range cases {
		if err := c.it.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: err = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestFileSpecsPerMode(t *testing.T) {
	db := &Database{Unit: 100 * time.Millisecond, Items: awacsItems()}
	combat, err := db.FileSpecs("combat")
	if err != nil {
		t.Fatal(err)
	}
	// Aircraft: 400ms / 100ms = 4 units; combat faults 2.
	if combat[0].Latency != 4 || combat[0].Faults != 2 {
		t.Fatalf("aircraft spec = %+v", combat[0])
	}
	// Tank: 6s / 100ms = 60 units; combat faults 1.
	if combat[1].Latency != 60 || combat[1].Faults != 1 {
		t.Fatalf("tank spec = %+v", combat[1])
	}
	landing, err := db.FileSpecs("landing")
	if err != nil {
		t.Fatal(err)
	}
	if landing[0].Faults != 1 || landing[1].Faults != 0 {
		t.Fatalf("landing faults = %d, %d", landing[0].Faults, landing[1].Faults)
	}
}

func TestModeScalingChangesBandwidth(t *testing.T) {
	db := &Database{Unit: 100 * time.Millisecond, Items: awacsItems()}
	combat, err := db.Bandwidth("combat")
	if err != nil {
		t.Fatal(err)
	}
	landing, err := db.Bandwidth("landing")
	if err != nil {
		t.Fatal(err)
	}
	if combat <= landing {
		t.Fatalf("combat bandwidth %d should exceed landing %d", combat, landing)
	}
}

func TestProgramConstruction(t *testing.T) {
	db := &Database{Unit: 100 * time.Millisecond, Items: awacsItems()}
	p, err := db.Program("combat")
	if err != nil {
		t.Fatal(err)
	}
	files, _ := db.FileSpecs("combat")
	for i, f := range files {
		if err := p.VerifyWindows(i, f.Demand(), p.Bandwidth*f.Latency); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConstraintFinerThanUnit(t *testing.T) {
	db := &Database{Unit: time.Second, Items: awacsItems()} // aircraft needs 400ms
	if _, err := db.FileSpecs("combat"); err == nil {
		t.Fatal("constraint finer than unit accepted")
	}
}

func TestDatabaseValidate(t *testing.T) {
	if err := (&Database{Unit: 0, Items: awacsItems()}).Validate(); err == nil {
		t.Fatal("zero unit accepted")
	}
	if err := (&Database{Unit: time.Second}).Validate(); err == nil {
		t.Fatal("empty items accepted")
	}
	dup := &Database{Unit: time.Second, Items: []Item{
		{Name: "x", Velocity: 1, Accuracy: 10, Blocks: 1},
		{Name: "x", Velocity: 1, Accuracy: 10, Blocks: 1},
	}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate items accepted")
	}
}

func TestAdmissionControl(t *testing.T) {
	base := []core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 10, Faults: 1},
	}
	b := core.SufficientBandwidth(base)
	// A small item fits.
	small := core.FileSpec{Name: "S", Blocks: 1, Latency: 20}
	admitted, err := Admit(base, small, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != 2 {
		t.Fatalf("admitted = %d files", len(admitted))
	}
	// A heavy item breaks the density bound and is rejected.
	huge := core.FileSpec{Name: "H", Blocks: 8, Latency: 10}
	if _, err := Admit(admitted, huge, b); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	// The rejection must not have mutated the admitted set.
	if len(admitted) != 2 {
		t.Fatal("admitted set mutated by rejection")
	}
}

func TestAdmitValidatesCandidate(t *testing.T) {
	if _, err := Admit(nil, core.FileSpec{Name: "bad"}, 1); err == nil {
		t.Fatal("invalid candidate accepted")
	}
	// Window smaller than demand at this bandwidth.
	c := core.FileSpec{Name: "c", Blocks: 5, Latency: 1}
	if _, err := Admit(nil, c, 1); err == nil {
		t.Fatal("infeasible candidate accepted")
	}
}
