package rtdb

import (
	"testing"

	"pinbcast/internal/core"
)

func txnFiles() []core.FileSpec {
	return []core.FileSpec{
		{Name: "pos", Blocks: 2, Latency: 4, Faults: 1},
		{Name: "vel", Blocks: 1, Latency: 6},
		{Name: "map", Blocks: 4, Latency: 20},
	}
}

func TestTxnValidate(t *testing.T) {
	cases := []struct {
		x  Txn
		ok bool
	}{
		{Txn{Name: "t", Reads: []string{"a"}, Deadline: 5}, true},
		{Txn{Reads: []string{"a"}, Deadline: 5}, false},
		{Txn{Name: "t", Deadline: 5}, false},
		{Txn{Name: "t", Reads: []string{"a"}, Deadline: 0}, false},
	}
	for i, c := range cases {
		if err := c.x.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: err = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestGuaranteeTxn(t *testing.T) {
	files := txnFiles()
	b := core.SufficientBandwidth(files)
	// Reading pos+vel: bound = max(b·4, b·6) = 6b.
	ok, bound, err := GuaranteeTxn(files, b, Txn{Name: "nav", Reads: []string{"pos", "vel"}, Deadline: 6 * b})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || bound != 6*b {
		t.Fatalf("ok=%v bound=%d, want true, %d", ok, bound, 6*b)
	}
	// Too-tight deadline is refused.
	ok, _, err = GuaranteeTxn(files, b, Txn{Name: "nav", Reads: []string{"pos", "vel"}, Deadline: 6*b - 1})
	if err != nil || ok {
		t.Fatalf("tight deadline guaranteed (ok=%v, err=%v)", ok, err)
	}
	// Unknown item errors.
	if _, _, err := GuaranteeTxn(files, b, Txn{Name: "x", Reads: []string{"ghost"}, Deadline: 10}); err == nil {
		t.Fatal("unknown item accepted")
	}
}

func TestGuaranteeHoldsOnRealProgram(t *testing.T) {
	// The point of the whole construction: a guaranteed transaction
	// never exceeds its bound on the actual program, from any start.
	files := txnFiles()
	b := core.SufficientBandwidth(files)
	p, err := core.BuildProgram(files, b)
	if err != nil {
		t.Fatal(err)
	}
	x := Txn{Name: "nav", Reads: []string{"pos", "vel", "map"}, Deadline: 20 * b}
	ok, bound, err := GuaranteeTxn(files, b, x)
	if err != nil || !ok {
		t.Fatalf("guarantee: ok=%v err=%v", ok, err)
	}
	worst, err := TxnWorstLatency(p, x)
	if err != nil {
		t.Fatal(err)
	}
	if worst > bound {
		t.Fatalf("measured worst %d exceeds guaranteed bound %d", worst, bound)
	}
}

func TestTxnLatencyUnknownItem(t *testing.T) {
	files := txnFiles()
	p, err := core.BuildProgram(files, core.SufficientBandwidth(files))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TxnLatency(p, Txn{Name: "x", Reads: []string{"ghost"}, Deadline: 10}, 0); err == nil {
		t.Fatal("unknown item accepted")
	}
}

func TestTxnLatencyDominatedBySlowestRead(t *testing.T) {
	files := txnFiles()
	p, err := core.BuildProgram(files, core.SufficientBandwidth(files))
	if err != nil {
		t.Fatal(err)
	}
	single, err := TxnWorstLatency(p, Txn{Name: "s", Reads: []string{"map"}, Deadline: 1000})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := TxnWorstLatency(p, Txn{Name: "m", Reads: []string{"pos", "vel", "map"}, Deadline: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if multi < single {
		t.Fatalf("adding reads reduced latency: %d < %d", multi, single)
	}
}

func TestMaxStaleness(t *testing.T) {
	// AWACS aircraft at bandwidth 3 (unit 100 ms): window 12 slots;
	// server refresh every 4 slots → staleness ≤ 16 slots.
	if got := MaxStaleness(12, 4); got != 16 {
		t.Fatalf("staleness = %d", got)
	}
}
