// Package rtdb models the real-time database layer that motivates the
// paper (§1): data items subject to absolute temporal consistency
// constraints, operation modes that change each item's criticality
// (§2.2's AIDA redundancy scaling), and density-based admission
// control for adding items to a broadcast disk.
//
// The canonical example is the paper's AWACS scenario: the position of
// an aircraft flying 900 km/h with a required positional accuracy of
// 100 m must be re-disseminated every 400 ms; a 60 km/h tank only needs
// 6 s.
package rtdb

import (
	"fmt"
	"math"
	"time"

	"pinbcast/internal/bcerr"
	"pinbcast/internal/core"
	"pinbcast/internal/pinwheel"
)

// Mode is a system operation mode (§2.2: e.g. "combat", "landing"),
// which determines how critical — and hence how redundantly broadcast —
// each item is.
type Mode string

// Item is a real-time database object disseminated on the broadcast
// disk.
type Item struct {
	Name string
	// Velocity is the rate of change of the quantity the item records,
	// in meters per second (for positional items).
	Velocity float64
	// Accuracy is the absolute temporal-consistency requirement
	// expressed as a positional error bound in meters.
	Accuracy float64
	// Blocks is the item's size in broadcast blocks (the IDA threshold m).
	Blocks int
	// FaultsByMode scales AIDA redundancy per mode; missing modes get
	// zero redundancy (non-critical).
	FaultsByMode map[Mode]int
}

// Validate checks the item.
func (it Item) Validate() error {
	switch {
	case it.Name == "":
		return fmt.Errorf("rtdb: item needs a name: %w", bcerr.ErrBadSpec)
	case it.Velocity <= 0:
		return fmt.Errorf("rtdb: item %q has nonpositive velocity: %w", it.Name, bcerr.ErrBadSpec)
	case it.Accuracy <= 0:
		return fmt.Errorf("rtdb: item %q has nonpositive accuracy: %w", it.Name, bcerr.ErrBadSpec)
	case it.Blocks < 1:
		return fmt.Errorf("rtdb: item %q has %d blocks: %w", it.Name, it.Blocks, bcerr.ErrBadSpec)
	}
	for m, r := range it.FaultsByMode {
		if r < 0 {
			return fmt.Errorf("rtdb: item %q has negative faults in mode %q: %w", it.Name, m, bcerr.ErrBadSpec)
		}
	}
	return nil
}

// TemporalConstraint returns the absolute temporal-consistency
// constraint: the maximum staleness that keeps the recorded value
// within Accuracy, i.e. Accuracy/Velocity. For the paper's AWACS
// aircraft (900 km/h, 100 m) this is 400 ms.
func (it Item) TemporalConstraint() time.Duration {
	seconds := it.Accuracy / it.Velocity
	return time.Duration(seconds * float64(time.Second))
}

// KmPerHour converts km/h to m/s.
func KmPerHour(v float64) float64 { return v * 1000.0 / 3600.0 }

// Database is a set of items with a time base for converting temporal
// constraints into broadcast latency units.
type Database struct {
	// Unit is the duration of one latency unit (the granularity at
	// which bandwidth is expressed, e.g. 100 ms).
	Unit  time.Duration
	Items []Item
}

// Validate checks the database.
func (db *Database) Validate() error {
	if db.Unit <= 0 {
		return fmt.Errorf("rtdb: database needs a positive time unit: %w", bcerr.ErrBadSpec)
	}
	if len(db.Items) == 0 {
		return fmt.Errorf("rtdb: no items: %w", bcerr.ErrBadSpec)
	}
	seen := map[string]bool{}
	for _, it := range db.Items {
		if err := it.Validate(); err != nil {
			return err
		}
		if seen[it.Name] {
			return fmt.Errorf("rtdb: duplicate item %q", it.Name)
		}
		seen[it.Name] = true
	}
	return nil
}

// LatencyUnits converts the item's temporal constraint to whole latency
// units (rounding down — the broadcast must be at least as fresh as the
// constraint). It returns an error when the constraint is finer than
// the unit.
func (db *Database) LatencyUnits(it Item) (int, error) {
	u := int(math.Floor(float64(it.TemporalConstraint()) / float64(db.Unit)))
	if u < 1 {
		return 0, fmt.Errorf("rtdb: item %q constraint %v finer than unit %v",
			it.Name, it.TemporalConstraint(), db.Unit)
	}
	return u, nil
}

// FileSpecs maps the database to broadcast file specifications for the
// given mode: each item becomes a file with its size, its temporal
// constraint as latency, and its mode-dependent fault tolerance
// (AIDA's bandwidth-allocation knob).
func (db *Database) FileSpecs(mode Mode) ([]core.FileSpec, error) {
	if err := db.Validate(); err != nil {
		return nil, err
	}
	files := make([]core.FileSpec, len(db.Items))
	for i, it := range db.Items {
		t, err := db.LatencyUnits(it)
		if err != nil {
			return nil, err
		}
		files[i] = core.FileSpec{
			Name:    it.Name,
			Blocks:  it.Blocks,
			Latency: t,
			Faults:  it.FaultsByMode[mode],
		}
	}
	return files, nil
}

// Bandwidth returns the Eq-2 sufficient bandwidth (blocks per unit) for
// the database in the given mode.
func (db *Database) Bandwidth(mode Mode) (int, error) {
	files, err := db.FileSpecs(mode)
	if err != nil {
		return 0, err
	}
	return core.SufficientBandwidth(files), nil
}

// Program builds the broadcast program for the mode at the Eq-2
// bandwidth.
func (db *Database) Program(mode Mode) (*core.Program, error) {
	files, err := db.FileSpecs(mode)
	if err != nil {
		return nil, err
	}
	return core.BuildProgramAuto(files)
}

// Admission control (§1's admission-control citation [11]): an item may
// join a broadcast disk of fixed bandwidth only if the resulting
// pinwheel system still passes the Chan–Chin density test, preserving
// every admitted item's guarantee.

// ErrRejected is returned when admitting an item would break the
// density guarantee. It wraps the shared admission sentinel so facade
// callers can classify rejections with errors.Is.
var ErrRejected = fmt.Errorf("rtdb: density bound exceeded: %w", bcerr.ErrAdmission)

// Admit checks whether candidate can join the already-admitted files at
// bandwidth b and returns the extended file set on success.
func Admit(admitted []core.FileSpec, candidate core.FileSpec, b int) ([]core.FileSpec, error) {
	if err := candidate.Validate(); err != nil {
		return nil, err
	}
	next := append(append([]core.FileSpec(nil), admitted...), candidate)
	sys := core.TaskSystem(next, b)
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("rtdb: candidate infeasible at bandwidth %d (%w): %w", b, err, bcerr.ErrAdmission)
	}
	if !pinwheel.DensityTestCC(sys) {
		return nil, fmt.Errorf("%w (density %.4f)", ErrRejected, sys.Density())
	}
	return next, nil
}
