package channel

import (
	"math"
	"testing"
)

func TestNone(t *testing.T) {
	var m None
	for i := 0; i < 100; i++ {
		if m.Corrupts(i) {
			t.Fatal("None corrupted a slot")
		}
	}
	if m.Name() != "none" {
		t.Fatalf("name = %q", m.Name())
	}
}

func TestBernoulliRate(t *testing.T) {
	m := NewBernoulli(0.1, 7)
	n, hits := 200000, 0
	for i := 0; i < n; i++ {
		if m.Corrupts(i) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.1) > 0.01 {
		t.Fatalf("empirical rate = %v, want ≈ 0.1", rate)
	}
}

func TestBernoulliDeterministicPerSeed(t *testing.T) {
	a := NewBernoulli(0.3, 42)
	b := NewBernoulli(0.3, 42)
	for i := 0; i < 1000; i++ {
		if a.Corrupts(i) != b.Corrupts(i) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBernoulliRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p > 1 accepted")
		}
	}()
	NewBernoulli(1.5, 1)
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// Rare transitions into a lossy Bad state produce clustered losses:
	// the conditional loss probability after a loss must exceed the
	// marginal loss probability.
	m := NewGilbertElliott(0.01, 0.1, 0.9, 11)
	n := 300000
	losses := 0
	afterLoss, afterLossLoss := 0, 0
	prev := false
	for i := 0; i < n; i++ {
		c := m.Corrupts(i)
		if c {
			losses++
		}
		if prev {
			afterLoss++
			if c {
				afterLossLoss++
			}
		}
		prev = c
	}
	marginal := float64(losses) / float64(n)
	conditional := float64(afterLossLoss) / float64(afterLoss)
	if conditional < 2*marginal {
		t.Fatalf("losses not bursty: conditional %v vs marginal %v", conditional, marginal)
	}
}

func TestGilbertElliottNeverLosesInGoodOnlyModel(t *testing.T) {
	m := NewGilbertElliott(0, 1, 1, 3) // never leaves Good
	for i := 0; i < 1000; i++ {
		if m.Corrupts(i) {
			t.Fatal("loss while pinned to Good state")
		}
	}
}

func TestSlotSet(t *testing.T) {
	s := SlotSet{3: true, 7: true}
	if !s.Corrupts(3) || !s.Corrupts(7) || s.Corrupts(4) {
		t.Fatal("SlotSet membership wrong")
	}
}

func TestEveryNth(t *testing.T) {
	e := EveryNth{N: 5, Offset: 2}
	for i := 0; i < 30; i++ {
		want := i%5 == 2
		if e.Corrupts(i) != want {
			t.Fatalf("slot %d: got %v", i, e.Corrupts(i))
		}
	}
	if (EveryNth{N: 0}).Corrupts(3) {
		t.Fatal("N=0 should never corrupt")
	}
}
