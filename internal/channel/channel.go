// Package channel models the broadcast medium: one block per slot,
// delivered to every listening client, with pluggable fault injection.
// The paper's error model (§3.2) is that transmission errors occur
// independently and an error renders the whole block unreadable; the
// Gilbert–Elliott model adds the bursty losses typical of the wireless
// links that motivated broadcast disks.
package channel

import (
	"fmt"
	"math/rand"
)

// FaultModel decides whether the block in a given slot is corrupted in
// transit. Implementations are deterministic functions of their own
// state and the slot number, so simulations are reproducible.
type FaultModel interface {
	// Corrupts reports whether the transmission in slot t is destroyed.
	Corrupts(t int) bool
	// Name identifies the model in reports.
	Name() string
}

// None is the fault-free channel.
type None struct{}

// Corrupts always reports false.
func (None) Corrupts(int) bool { return false }

// Name returns "none".
func (None) Name() string { return "none" }

// Bernoulli corrupts each slot independently with probability P —
// the paper's independent-error model.
type Bernoulli struct {
	P   float64
	rng *rand.Rand
}

// NewBernoulli returns an iid loss model with the given probability and
// seed.
func NewBernoulli(p float64, seed int64) *Bernoulli {
	return NewBernoulliFrom(p, rand.New(rand.NewSource(seed)))
}

// NewBernoulliFrom is NewBernoulli drawing from an injected generator,
// so several models (or a model and a workload generator) can share one
// reproducible random stream. A nil rng selects a fixed default seed.
func NewBernoulliFrom(p float64, rng *rand.Rand) *Bernoulli {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("channel: probability %v out of range", p))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Bernoulli{P: p, rng: rng}
}

// Corrupts flips the model's coin for this slot.
func (b *Bernoulli) Corrupts(int) bool { return b.rng.Float64() < b.P }

// Name returns e.g. "bernoulli(0.05)".
func (b *Bernoulli) Name() string { return fmt.Sprintf("bernoulli(%g)", b.P) }

// GilbertElliott is the classic two-state burst-loss model: the channel
// alternates between a Good state (no loss) and a Bad state (loss with
// probability PLossBad), with geometric sojourn times.
type GilbertElliott struct {
	PGoodToBad float64 // transition probability Good → Bad per slot
	PBadToGood float64 // transition probability Bad → Good per slot
	PLossBad   float64 // loss probability while Bad
	bad        bool
	rng        *rand.Rand
}

// NewGilbertElliott returns a burst-loss model starting in the Good
// state.
func NewGilbertElliott(pGB, pBG, pLoss float64, seed int64) *GilbertElliott {
	return NewGilbertElliottFrom(pGB, pBG, pLoss, rand.New(rand.NewSource(seed)))
}

// NewGilbertElliottFrom is NewGilbertElliott drawing from an injected
// generator, for reproducible composition with other randomized
// components. A nil rng selects a fixed default seed.
func NewGilbertElliottFrom(pGB, pBG, pLoss float64, rng *rand.Rand) *GilbertElliott {
	for _, p := range []float64{pGB, pBG, pLoss} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("channel: probability %v out of range", p))
		}
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &GilbertElliott{
		PGoodToBad: pGB,
		PBadToGood: pBG,
		PLossBad:   pLoss,
		rng:        rng,
	}
}

// Corrupts advances the channel state machine one slot and reports loss.
func (g *GilbertElliott) Corrupts(int) bool {
	if g.bad {
		if g.rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else {
		if g.rng.Float64() < g.PGoodToBad {
			g.bad = true
		}
	}
	return g.bad && g.rng.Float64() < g.PLossBad
}

// Name returns e.g. "gilbert-elliott(0.01,0.2,0.9)".
func (g *GilbertElliott) Name() string {
	return fmt.Sprintf("gilbert-elliott(%g,%g,%g)", g.PGoodToBad, g.PBadToGood, g.PLossBad)
}

// SlotSet corrupts exactly the listed slots — the deterministic
// adversary used by worst-case tests.
type SlotSet map[int]bool

// Corrupts reports membership.
func (s SlotSet) Corrupts(t int) bool { return s[t] }

// Name returns "slotset".
func (s SlotSet) Name() string { return fmt.Sprintf("slotset(%d slots)", len(s)) }

// EveryNth corrupts slots t with t ≡ Offset (mod N) — a periodic
// interferer.
type EveryNth struct {
	N      int
	Offset int
}

// Corrupts reports whether the slot matches the interference phase.
func (e EveryNth) Corrupts(t int) bool {
	if e.N <= 0 {
		return false
	}
	return t%e.N == e.Offset%e.N
}

// Name returns e.g. "every(7,+3)".
func (e EveryNth) Name() string { return fmt.Sprintf("every(%d,+%d)", e.N, e.Offset) }
