// Package airindex implements broadcast directories — "indexing on
// air". Footnote 3 of Baruah & Bestavros contrasts self-identifying
// blocks with broadcasting a directory (index) each period, citing
// Imielinski, Viswanathan & Badrinath's energy-efficient (1, m)
// indexing: the index is interleaved m times per broadcast period, so
// a client tunes in, listens only until the next index copy, learns
// exactly when its file's blocks will pass, and dozes in between.
//
// The package interleaves an index into an existing broadcast program
// and computes the two classic metrics per query: access latency
// (time until the data is in hand) and tuning time (time spent
// actively listening — the energy cost). More index copies shorten
// tuning at the price of a longer period, the (1, m) tradeoff.
package airindex

import (
	"fmt"

	"pinbcast/internal/core"
)

// SlotKind distinguishes the contents of an indexed-program slot.
type SlotKind int8

// Slot kinds.
const (
	Idle SlotKind = iota
	Data
	Index
)

// Slot is one slot of an indexed broadcast program.
type Slot struct {
	Kind SlotKind
	File int // valid when Kind == Data
}

// Program is a broadcast program with an interleaved (1, m) index.
type Program struct {
	Base     *core.Program
	Copies   int // m: index copies per period
	IndexLen int // slots per index copy
	Period   int
	Slots    []Slot
	// indexStarts are the slots at which index copies begin;
	// isIndexStart is the membership set Query's hot path probes.
	indexStarts  []int
	isIndexStart map[int]bool
}

// IndexStarts returns the slots (within one indexed period) at which
// index copies begin — what a doze-mode client wakes for first.
func (p *Program) IndexStarts() []int {
	return append([]int(nil), p.indexStarts...)
}

// EntriesPerSlot is how many directory entries fit in one index slot;
// with a handful of files one or two slots suffice, matching the
// paper-era assumption that the index is small next to the data.
const EntriesPerSlot = 8

// Build interleaves m index copies into the base program, spacing them
// evenly. The index describes one full period, so clients can compute
// every file's next occurrence from any copy.
func Build(base *core.Program, copies int) (*Program, error) {
	if base == nil {
		return nil, fmt.Errorf("airindex: nil base program")
	}
	if copies < 1 {
		return nil, fmt.Errorf("airindex: need at least one index copy, got %d", copies)
	}
	if copies > base.Period {
		return nil, fmt.Errorf("airindex: %d copies exceed base period %d", copies, base.Period)
	}
	indexLen := (len(base.Files) + EntriesPerSlot - 1) / EntriesPerSlot
	p := &Program{
		Base:     base,
		Copies:   copies,
		IndexLen: indexLen,
		Period:   base.Period + copies*indexLen,
	}
	p.Slots = make([]Slot, 0, p.Period)
	// Insert an index copy before every ⌈period/copies⌉-th base slot.
	interval := (base.Period + copies - 1) / copies
	nextIndexAt := 0
	for t := 0; t < base.Period; t++ {
		if t == nextIndexAt && len(p.indexStarts) < copies {
			p.indexStarts = append(p.indexStarts, len(p.Slots))
			for k := 0; k < indexLen; k++ {
				p.Slots = append(p.Slots, Slot{Kind: Index})
			}
			nextIndexAt += interval
		}
		f := base.FileAt(t)
		if f == core.Idle {
			p.Slots = append(p.Slots, Slot{Kind: Idle})
		} else {
			p.Slots = append(p.Slots, Slot{Kind: Data, File: f})
		}
	}
	p.Period = len(p.Slots)
	p.isIndexStart = make(map[int]bool, len(p.indexStarts))
	for _, s := range p.indexStarts {
		p.isIndexStart[s] = true
	}
	return p, nil
}

// Overhead returns the fraction of the indexed period spent on index
// slots.
func (p *Program) Overhead() float64 {
	return float64(p.Copies*p.IndexLen) / float64(p.Period)
}

// At returns the slot at time t of the infinite indexed broadcast.
func (p *Program) At(t int) Slot { return p.Slots[t%p.Period] }

// nextIndex returns the first slot ≥ t at which an index copy begins.
func (p *Program) nextIndex(t int) int {
	for dt := 0; dt <= p.Period; dt++ {
		if p.isIndexStart[(t+dt)%p.Period] {
			return t + dt
		}
	}
	panic("airindex: no index copy found in a full period")
}

// nextOccurrences returns the times ≥ from of the next `count` data
// slots of the file.
func (p *Program) nextOccurrences(file, from, count int) []int {
	var out []int
	for t := from; len(out) < count; t++ {
		s := p.At(t)
		if s.Kind == Data && s.File == file {
			out = append(out, t)
		}
		if t-from > (count+2)*p.Period {
			panic("airindex: file occurrences missing from program")
		}
	}
	return out
}

// Access is the outcome of one indexed query.
type Access struct {
	Latency int // slots from the query until the file is reconstructable
	Tuning  int // slots spent actively listening
}

// Query simulates a client that wants `blocks` distinct blocks of the
// file, arriving at slot t, using the index protocol: listen until the
// next index copy completes, then doze and wake exactly for the file's
// next block slots.
func (p *Program) Query(file, t, blocks int) Access {
	idx := p.nextIndex(t)
	indexDone := idx + p.IndexLen // index fully read
	occ := p.nextOccurrences(file, indexDone, blocks)
	last := occ[len(occ)-1]
	return Access{
		Latency: last - t + 1,
		// Listening: from arrival to the end of the index copy (the
		// client cannot doze before it knows the schedule), then one
		// slot per block.
		Tuning: (indexDone - idx) + blocks + min(idx-t, 1),
	}
}

// QueryUnindexed simulates the self-identifying-blocks client of the
// paper: it listens continuously from t until its blocks have passed.
func (p *Program) QueryUnindexed(file, t, blocks int) Access {
	occ := p.nextOccurrences(file, t, blocks)
	last := occ[len(occ)-1]
	d := last - t + 1
	return Access{Latency: d, Tuning: d}
}

// Sweep evaluates mean latency and tuning over every arrival slot of
// one period, for a file needing `blocks` blocks.
func (p *Program) Sweep(file, blocks int) (meanLatency, meanTuning float64) {
	totalL, totalT := 0, 0
	for t := 0; t < p.Period; t++ {
		a := p.Query(file, t, blocks)
		totalL += a.Latency
		totalT += a.Tuning
	}
	return float64(totalL) / float64(p.Period), float64(totalT) / float64(p.Period)
}

// SweepUnindexed is Sweep for the continuous-listening client.
func (p *Program) SweepUnindexed(file, blocks int) (meanLatency, meanTuning float64) {
	totalL, totalT := 0, 0
	for t := 0; t < p.Period; t++ {
		a := p.QueryUnindexed(file, t, blocks)
		totalL += a.Latency
		totalT += a.Tuning
	}
	return float64(totalL) / float64(p.Period), float64(totalT) / float64(p.Period)
}
