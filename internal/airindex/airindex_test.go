package airindex

import (
	"testing"

	"pinbcast/internal/core"
)

func baseProgram(t testing.TB) *core.Program {
	p, err := core.FlatSpread([]core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1, DispersalWidth: 10},
		{Name: "B", Blocks: 3, Latency: 1, DispersalWidth: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildValidation(t *testing.T) {
	base := baseProgram(t)
	if _, err := Build(nil, 1); err == nil {
		t.Fatal("nil base accepted")
	}
	if _, err := Build(base, 0); err == nil {
		t.Fatal("zero copies accepted")
	}
	if _, err := Build(base, base.Period+1); err == nil {
		t.Fatal("more copies than slots accepted")
	}
}

func TestBuildStructure(t *testing.T) {
	base := baseProgram(t)
	for copies := 1; copies <= 4; copies++ {
		p, err := Build(base, copies)
		if err != nil {
			t.Fatal(err)
		}
		if p.Period != base.Period+copies*p.IndexLen {
			t.Fatalf("copies=%d: period %d", copies, p.Period)
		}
		// Every base data slot survives, in order.
		var data []int
		nIndex := 0
		for _, s := range p.Slots {
			switch s.Kind {
			case Data:
				data = append(data, s.File)
			case Index:
				nIndex++
			}
		}
		if nIndex != copies*p.IndexLen {
			t.Fatalf("copies=%d: %d index slots", copies, nIndex)
		}
		want := 0
		for t0 := 0; t0 < base.Period; t0++ {
			if base.FileAt(t0) != core.Idle {
				if data[want] != base.FileAt(t0) {
					t.Fatalf("copies=%d: data order broken at %d", copies, want)
				}
				want++
			}
		}
	}
}

func TestOverheadGrowsWithCopies(t *testing.T) {
	base := baseProgram(t)
	prev := 0.0
	for copies := 1; copies <= 4; copies++ {
		p, err := Build(base, copies)
		if err != nil {
			t.Fatal(err)
		}
		if o := p.Overhead(); o <= prev {
			t.Fatalf("overhead not increasing: %v after %v", o, prev)
		} else {
			prev = o
		}
	}
}

func TestIndexingCutsTuningTime(t *testing.T) {
	// The reason indexes exist: tuning time (energy) collapses versus
	// continuous listening, at a modest latency overhead. The effect
	// shows on files that occupy a small fraction of the broadcast — a
	// client after one of many files dozes through everything else.
	files := make([]core.FileSpec, 8)
	for i := range files {
		files[i] = core.FileSpec{Name: string(rune('A' + i)), Blocks: 2, Latency: 1}
	}
	base, err := core.FlatSpread(files)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	latIdx, tunIdx := p.Sweep(0, 2)
	latRaw, tunRaw := p.SweepUnindexed(0, 2)
	if tunIdx >= tunRaw/2 {
		t.Fatalf("indexed tuning %.2f not well below continuous %.2f", tunIdx, tunRaw)
	}
	if latIdx > 2.5*latRaw {
		t.Fatalf("indexed latency %.2f implausibly above %.2f", latIdx, latRaw)
	}
	if latRaw != tunRaw {
		t.Fatal("continuous listening must tune for its whole latency")
	}
}

func TestMoreCopiesLowerLatencyPenalty(t *testing.T) {
	// With one copy a client may wait almost a period for the index;
	// more copies reduce that wait. Compare the index-wait component.
	base := baseProgram(t)
	p1, err := Build(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := Build(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	wait := func(p *Program) float64 {
		total := 0
		for t0 := 0; t0 < p.Period; t0++ {
			total += p.nextIndex(t0) - t0
		}
		return float64(total) / float64(p.Period)
	}
	if wait(p4) >= wait(p1) {
		t.Fatalf("mean index wait with 4 copies (%.2f) not below 1 copy (%.2f)",
			wait(p4), wait(p1))
	}
}

func TestQueryDeterministicBounds(t *testing.T) {
	base := baseProgram(t)
	p, err := Build(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 0; t0 < 2*p.Period; t0++ {
		for file, blocks := range map[int]int{0: 5, 1: 3} {
			a := p.Query(file, t0, blocks)
			if a.Latency < blocks || a.Tuning < blocks {
				t.Fatalf("t=%d file=%d: impossible access %+v", t0, file, a)
			}
			if a.Tuning > a.Latency {
				t.Fatalf("t=%d file=%d: tuning %d exceeds latency %d",
					t0, file, a.Tuning, a.Latency)
			}
			if a.Latency > 3*p.Period {
				t.Fatalf("t=%d file=%d: latency %d beyond 3 periods", t0, file, a.Latency)
			}
		}
	}
}

func BenchmarkIndexedSweep(b *testing.B) {
	base := baseProgram(b)
	p, err := Build(base, 2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		p.Sweep(0, 5)
	}
}
