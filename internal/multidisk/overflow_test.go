package multidisk

import (
	"errors"
	"testing"

	"pinbcast/internal/bcerr"
	"pinbcast/internal/core"
)

// TestMajorCycleOverflow hands BuildProgram three disks with large
// pairwise-coprime frequencies, so the major cycle (their lcm) exceeds
// the int range. The unchecked `a/gcd*b` this replaces silently
// wrapped into a bogus cycle length; the checked build must refuse
// with ErrInfeasible before attempting to materialize the program.
func TestMajorCycleOverflow(t *testing.T) {
	disks := []Disk{
		{Frequency: 1000000007, Files: []core.FileSpec{{Name: "a", Blocks: 1, Latency: 1}}},
		{Frequency: 1000000009, Files: []core.FileSpec{{Name: "b", Blocks: 1, Latency: 1}}},
		{Frequency: 1000000021, Files: []core.FileSpec{{Name: "c", Blocks: 1, Latency: 1}}},
	}
	_, err := BuildProgram(disks)
	if err == nil {
		t.Fatal("BuildProgram accepted disks whose major cycle overflows int")
	}
	if !errors.Is(err, bcerr.ErrInfeasible) {
		t.Fatalf("overflow error = %v, want errors.Is(…, ErrInfeasible)", err)
	}
}

// TestAutoTierExtremeLatencyRatio drives the tiering loop with a
// latency ratio near MaxInt: the frequency doubling must terminate
// (the multiplicative form 2·freq·L ≤ Lmax overflowed and could spin
// or mis-tier) and the hot file must land on the fastest disk.
func TestAutoTierExtremeLatencyRatio(t *testing.T) {
	files := []core.FileSpec{
		{Name: "hot", Blocks: 1, Latency: 1},
		{Name: "cold", Blocks: 1, Latency: 1 << 62},
	}
	disks, err := AutoTier(files)
	if err != nil {
		t.Fatalf("AutoTier: %v", err)
	}
	if len(disks) != 2 {
		t.Fatalf("got %d disks, want 2", len(disks))
	}
	if disks[0].Frequency <= disks[1].Frequency {
		t.Fatalf("disks not hottest-first: %d then %d", disks[0].Frequency, disks[1].Frequency)
	}
	if disks[0].Frequency != 1<<62 {
		t.Fatalf("hot tier frequency = %d, want 2^62", disks[0].Frequency)
	}
	if disks[0].Files[0].Name != "hot" {
		t.Fatalf("fastest disk carries %q, want hot", disks[0].Files[0].Name)
	}
}
