package multidisk

import (
	"testing"

	"pinbcast/internal/core"
)

func threeDisks() []Disk {
	return []Disk{
		{Frequency: 4, Files: []core.FileSpec{
			{Name: "hot", Blocks: 2, Latency: 1},
		}},
		{Frequency: 2, Files: []core.FileSpec{
			{Name: "warm", Blocks: 4, Latency: 1},
		}},
		{Frequency: 1, Files: []core.FileSpec{
			{Name: "cold-a", Blocks: 4, Latency: 1},
			{Name: "cold-b", Blocks: 4, Latency: 1},
		}},
	}
}

func TestBuildProgramValidation(t *testing.T) {
	if _, err := BuildProgram(nil); err == nil {
		t.Fatal("no disks accepted")
	}
	if _, err := BuildProgram([]Disk{{Frequency: 0, Files: []core.FileSpec{{Name: "x", Blocks: 1, Latency: 1}}}}); err == nil {
		t.Fatal("zero frequency accepted")
	}
	if _, err := BuildProgram([]Disk{{Frequency: 1}}); err == nil {
		t.Fatal("empty disk accepted")
	}
	dup := []Disk{
		{Frequency: 1, Files: []core.FileSpec{{Name: "x", Blocks: 1, Latency: 1}}},
		{Frequency: 2, Files: []core.FileSpec{{Name: "x", Blocks: 1, Latency: 1}}},
	}
	if _, err := BuildProgram(dup); err == nil {
		t.Fatal("duplicate file accepted")
	}
}

func TestFrequenciesRespected(t *testing.T) {
	p, err := BuildProgram(threeDisks())
	if err != nil {
		t.Fatal(err)
	}
	// Per major cycle: hot appears 4×2 block-slots, warm 2×4, cold 1×4.
	if got := p.PerPeriod(0); got != 8 {
		t.Fatalf("hot slots = %d, want 8", got)
	}
	if got := p.PerPeriod(1); got != 8 {
		t.Fatalf("warm slots = %d, want 8", got)
	}
	if got := p.PerPeriod(2); got != 4 {
		t.Fatalf("cold-a slots = %d, want 4", got)
	}
}

func TestHotFilesHaveLowerMeanLatency(t *testing.T) {
	p, err := BuildProgram(threeDisks())
	if err != nil {
		t.Fatal(err)
	}
	hotMean, _ := LatencyProfile(p, 0)
	coldMean, _ := LatencyProfile(p, 2)
	if hotMean >= coldMean {
		t.Fatalf("hot mean %.1f not below cold mean %.1f", hotMean, coldMean)
	}
}

func TestMultidiskVsPinwheelTradeoff(t *testing.T) {
	// The paper's motivating comparison. Same workload both ways: the
	// multi-disk program optimizes the skew-weighted mean; the pinwheel
	// program bounds every file's worst case by its window.
	files := []core.FileSpec{
		{Name: "hot", Blocks: 2, Latency: 4},
		{Name: "warm", Blocks: 4, Latency: 16},
		{Name: "cold-a", Blocks: 4, Latency: 32},
		{Name: "cold-b", Blocks: 4, Latency: 32},
	}
	disks := []Disk{
		{Frequency: 4, Files: files[:1]},
		{Frequency: 2, Files: files[1:2]},
		{Frequency: 1, Files: files[2:]},
	}
	md, err := BuildProgram(disks)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := core.MinBandwidth(files)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := core.BuildProgram(files, bw)
	if err != nil {
		t.Fatal(err)
	}
	// Pinwheel guarantees: every file's worst case is within its window.
	for i, f := range files {
		_, worst := LatencyProfile(pw, i)
		if worst > bw*f.Latency {
			t.Fatalf("pinwheel worst case %d exceeds window %d for %s", worst, bw*f.Latency, f.Name)
		}
	}
	// The multi-disk program violates at least one file's window when
	// judged at the same slot rate (its period ignores deadlines).
	violated := false
	for i, f := range files {
		_, worst := LatencyProfile(md, i)
		if worst > bw*f.Latency {
			violated = true
			_ = i
		}
	}
	if !violated {
		t.Log("multi-disk happened to meet all windows on this workload; " +
			"mean comparison still meaningful")
	}
}

func TestWeightedMeanLatency(t *testing.T) {
	p, err := BuildProgram(threeDisks())
	if err != nil {
		t.Fatal(err)
	}
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	skewed := []float64{0.7, 0.2, 0.05, 0.05}
	wUniform := WeightedMeanLatency(p, uniform)
	wSkewed := WeightedMeanLatency(p, skewed)
	// The layout favors the hot file, so the skewed weighting (matching
	// the layout) must yield a lower weighted mean.
	if wSkewed >= wUniform {
		t.Fatalf("skewed mean %.2f not below uniform %.2f", wSkewed, wUniform)
	}
}

func TestAutoTier(t *testing.T) {
	files := []core.FileSpec{
		{Name: "hot", Blocks: 2, Latency: 4},
		{Name: "warm", Blocks: 4, Latency: 16},
		{Name: "cold-a", Blocks: 4, Latency: 32},
		{Name: "cold-b", Blocks: 4, Latency: 32},
	}
	disks, err := AutoTier(files)
	if err != nil {
		t.Fatal(err)
	}
	// Power-of-two frequencies from Lmax/L: 32/4 → 8, 32/16 → 2, 32/32 → 1.
	wantFreqs := []int{8, 2, 1}
	if len(disks) != len(wantFreqs) {
		t.Fatalf("disks = %d, want %d", len(disks), len(wantFreqs))
	}
	for i, want := range wantFreqs {
		if disks[i].Frequency != want {
			t.Fatalf("disk %d frequency = %d, want %d", i, disks[i].Frequency, want)
		}
	}
	if len(disks[2].Files) != 2 || disks[2].Files[0].Name != "cold-a" {
		t.Fatalf("cold tier = %+v", disks[2].Files)
	}

	p, err := Plan(files)
	if err != nil {
		t.Fatal(err)
	}
	// The hot file spins 8× as often as a cold one, so its mean
	// retrieval latency must be lower.
	hotMean, _ := LatencyProfile(p, 0)
	coldMean, _ := LatencyProfile(p, 2)
	if hotMean >= coldMean {
		t.Fatalf("hot mean %.1f not below cold mean %.1f", hotMean, coldMean)
	}
	if got, want := p.PerPeriod(0), 8*files[0].Demand(); got != want {
		t.Fatalf("hot slots per major cycle = %d, want %d", got, want)
	}
}

func TestAutoTierSingleFile(t *testing.T) {
	disks, err := AutoTier([]core.FileSpec{{Name: "only", Blocks: 3, Latency: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(disks) != 1 || disks[0].Frequency != 1 {
		t.Fatalf("disks = %+v", disks)
	}
	if _, err := AutoTier(nil); err == nil {
		t.Fatal("empty file set accepted")
	}
}

func TestSingleDiskDegeneratesToFlat(t *testing.T) {
	disks := []Disk{{Frequency: 3, Files: []core.FileSpec{
		{Name: "only", Blocks: 4, Latency: 1},
	}}}
	p, err := BuildProgram(disks)
	if err != nil {
		t.Fatal(err)
	}
	if p.PerPeriod(0) != 4 {
		t.Fatalf("slots per period = %d", p.PerPeriod(0))
	}
}

func BenchmarkBuildProgram(b *testing.B) {
	disks := threeDisks()
	for i := 0; i < b.N; i++ {
		if _, err := BuildProgram(disks); err != nil {
			b.Fatal(err)
		}
	}
}
