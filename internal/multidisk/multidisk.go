// Package multidisk implements the classic Acharya–Franklin–Zdonik
// multi-disk broadcast program generator (SIGMOD '95), the prior art
// §1 of Baruah & Bestavros builds on: hot files are placed on
// fast-spinning (frequently repeated) disks and cold files on slow
// ones, minimizing the *average* latency over a skewed access pattern.
//
// The paper's argument is that in a real-time database, minimizing
// average latency is the wrong objective — per-file worst-case window
// guarantees are what admission control and temporal consistency need.
// This package exists to make that comparison concrete: experiment E12
// measures the mean and worst-case retrieval latencies of multi-disk
// versus pinwheel programs on the same workload.
package multidisk

import (
	"fmt"
	"sort"

	"pinbcast/internal/bcerr"
	"pinbcast/internal/core"
	"pinbcast/internal/slotmath"
)

// Disk is one broadcast disk: a relative spinning frequency and the
// files stored on it. A file's blocks live contiguously on its disk.
type Disk struct {
	Frequency int // relative broadcast frequency (≥ 1); larger = hotter
	Files     []core.FileSpec
}

// Validate checks the disk.
func (d Disk) Validate() error {
	if d.Frequency < 1 {
		return fmt.Errorf("multidisk: frequency %d < 1", d.Frequency)
	}
	if len(d.Files) == 0 {
		return fmt.Errorf("multidisk: empty disk")
	}
	return nil
}

// BuildProgram generates the interleaved broadcast program:
//
//  1. let L = lcm of the disk frequencies;
//  2. split disk i into L/fᵢ equal chunks (padding with idle slots);
//  3. minor cycle k broadcasts chunk k mod (L/fᵢ) of every disk i.
//
// Files on a disk of frequency f appear f times per major cycle.
func BuildProgram(disks []Disk) (*core.Program, error) {
	if len(disks) == 0 {
		return nil, fmt.Errorf("multidisk: no disks")
	}
	// Frequencies are relative: normalize by their gcd so that a lone
	// disk (or uniformly scaled frequencies) yields the minimal cycle.
	g := 0
	for _, d := range disks {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		g = slotmath.GCD(g, d.Frequency)
	}
	freqs := make([]int, len(disks))
	l := 1
	for i, d := range disks {
		freqs[i] = d.Frequency / g
		var err error
		if l, err = slotmath.LCM(l, freqs[i]); err != nil {
			return nil, fmt.Errorf("multidisk: major cycle (lcm of %d disk frequencies) overflows: %w",
				len(disks), bcerr.ErrInfeasible)
		}
	}

	// Flatten each disk's contents into block-granularity entries of
	// file indices, and collect the combined file table.
	var infos []core.FileInfo
	fileIdx := map[string]int{}
	contents := make([][]int, len(disks))
	for di, d := range disks {
		for _, f := range d.Files {
			if err := f.Validate(); err != nil {
				return nil, err
			}
			if _, dup := fileIdx[f.Name]; dup {
				return nil, fmt.Errorf("multidisk: duplicate file %q", f.Name)
			}
			fi := len(infos)
			fileIdx[f.Name] = fi
			infos = append(infos, core.FileInfo{
				Name: f.Name, M: f.Blocks, N: f.Width(), Demand: f.Demand(),
			})
			for k := 0; k < f.Demand(); k++ {
				contents[di] = append(contents[di], fi)
			}
		}
	}

	// Chunk each disk.
	type chunked struct {
		numChunks int
		chunkSize int
		data      []int // padded to numChunks*chunkSize, Idle as filler
	}
	chunks := make([]chunked, len(disks))
	for di := range disks {
		freq := freqs[di]
		if freq < 1 {
			return nil, fmt.Errorf("multidisk: disk %d normalized frequency %d < 1: %w", di, freq, bcerr.ErrInfeasible)
		}
		nc := l / freq
		size := (len(contents[di]) + nc - 1) / nc
		data := make([]int, nc*size)
		for i := range data {
			if i < len(contents[di]) {
				data[i] = contents[di][i]
			} else {
				data[i] = core.Idle
			}
		}
		chunks[di] = chunked{numChunks: nc, chunkSize: size, data: data}
	}

	// Major cycle: L minor cycles, each carrying one chunk per disk.
	var slots []int
	for minor := 0; minor < l; minor++ {
		for di := range disks {
			c := chunks[di]
			k := minor % c.numChunks
			slots = append(slots, c.data[k*c.chunkSize:(k+1)*c.chunkSize]...)
		}
	}
	p, err := core.NewProgram(infos, slots, 0, "multidisk")
	if err != nil {
		return nil, err
	}
	return p, nil
}

// AutoTier partitions files into frequency-tiered broadcast disks by
// latency constraint — the hot/cold partitioning of Acharya et al.
// applied to real-time specs: with Lmax the loosest latency in the set,
// a file of latency L lands on a disk of relative frequency 2^⌊log₂
// Lmax/L⌋, so tightly-constrained (hot) files spin fastest. Frequencies
// are powers of two, keeping the major cycle (their lcm) small. Disks
// are returned hottest first; files keep their input order within a
// disk.
func AutoTier(files []core.FileSpec) ([]Disk, error) {
	if err := core.ValidateAll(files); err != nil {
		return nil, err
	}
	maxLat := 0
	for _, f := range files {
		if f.Latency > maxLat {
			maxLat = f.Latency
		}
	}
	tier := func(f core.FileSpec) int {
		// freq doubles while 2·freq·L ≤ Lmax, i.e. freq ≤ Lmax/L/2 in
		// floor arithmetic — phrased divisively so the loop cannot
		// overflow (or spin forever) on adversarial latency ratios.
		freq := 1
		for freq <= maxLat/f.Latency/2 {
			freq *= 2
		}
		return freq
	}
	byFreq := map[int][]core.FileSpec{}
	var freqs []int
	for _, f := range files {
		q := tier(f)
		if _, seen := byFreq[q]; !seen {
			freqs = append(freqs, q)
		}
		byFreq[q] = append(byFreq[q], f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	disks := make([]Disk, len(freqs))
	for i, q := range freqs {
		disks[i] = Disk{Frequency: q, Files: byFreq[q]}
	}
	return disks, nil
}

// Plan auto-tiers the files and builds the tiered broadcast program —
// the planning path behind the public "tiered" layout.
func Plan(files []core.FileSpec) (*core.Program, error) {
	disks, err := AutoTier(files)
	if err != nil {
		return nil, err
	}
	return BuildProgram(disks)
}

// LatencyProfile reports mean and worst-case fault-free retrieval
// latency of a file over every start slot.
func LatencyProfile(p *core.Program, file int) (mean float64, worst int) {
	return p.LatencyProfile(file)
}

// WeightedMeanLatency returns the access-probability-weighted mean
// latency over all files — the objective the multi-disk layout
// optimizes. probs must sum to 1 across files.
func WeightedMeanLatency(p *core.Program, probs []float64) float64 {
	return p.WeightedMeanLatency(probs)
}
