// Package multidisk implements the classic Acharya–Franklin–Zdonik
// multi-disk broadcast program generator (SIGMOD '95), the prior art
// §1 of Baruah & Bestavros builds on: hot files are placed on
// fast-spinning (frequently repeated) disks and cold files on slow
// ones, minimizing the *average* latency over a skewed access pattern.
//
// The paper's argument is that in a real-time database, minimizing
// average latency is the wrong objective — per-file worst-case window
// guarantees are what admission control and temporal consistency need.
// This package exists to make that comparison concrete: experiment E12
// measures the mean and worst-case retrieval latencies of multi-disk
// versus pinwheel programs on the same workload.
package multidisk

import (
	"fmt"

	"pinbcast/internal/core"
)

// Disk is one broadcast disk: a relative spinning frequency and the
// files stored on it. A file's blocks live contiguously on its disk.
type Disk struct {
	Frequency int // relative broadcast frequency (≥ 1); larger = hotter
	Files     []core.FileSpec
}

// Validate checks the disk.
func (d Disk) Validate() error {
	if d.Frequency < 1 {
		return fmt.Errorf("multidisk: frequency %d < 1", d.Frequency)
	}
	if len(d.Files) == 0 {
		return fmt.Errorf("multidisk: empty disk")
	}
	return nil
}

// BuildProgram generates the interleaved broadcast program:
//
//  1. let L = lcm of the disk frequencies;
//  2. split disk i into L/fᵢ equal chunks (padding with idle slots);
//  3. minor cycle k broadcasts chunk k mod (L/fᵢ) of every disk i.
//
// Files on a disk of frequency f appear f times per major cycle.
func BuildProgram(disks []Disk) (*core.Program, error) {
	if len(disks) == 0 {
		return nil, fmt.Errorf("multidisk: no disks")
	}
	// Frequencies are relative: normalize by their gcd so that a lone
	// disk (or uniformly scaled frequencies) yields the minimal cycle.
	g := 0
	for _, d := range disks {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		g = gcd(g, d.Frequency)
	}
	freqs := make([]int, len(disks))
	l := 1
	for i, d := range disks {
		freqs[i] = d.Frequency / g
		l = lcm(l, freqs[i])
	}

	// Flatten each disk's contents into block-granularity entries of
	// file indices, and collect the combined file table.
	var infos []core.FileInfo
	fileIdx := map[string]int{}
	contents := make([][]int, len(disks))
	for di, d := range disks {
		for _, f := range d.Files {
			if err := f.Validate(); err != nil {
				return nil, err
			}
			if _, dup := fileIdx[f.Name]; dup {
				return nil, fmt.Errorf("multidisk: duplicate file %q", f.Name)
			}
			fi := len(infos)
			fileIdx[f.Name] = fi
			infos = append(infos, core.FileInfo{
				Name: f.Name, M: f.Blocks, N: f.Width(), Demand: f.Demand(),
			})
			for k := 0; k < f.Demand(); k++ {
				contents[di] = append(contents[di], fi)
			}
		}
	}

	// Chunk each disk.
	type chunked struct {
		numChunks int
		chunkSize int
		data      []int // padded to numChunks*chunkSize, Idle as filler
	}
	chunks := make([]chunked, len(disks))
	for di := range disks {
		nc := l / freqs[di]
		size := (len(contents[di]) + nc - 1) / nc
		data := make([]int, nc*size)
		for i := range data {
			if i < len(contents[di]) {
				data[i] = contents[di][i]
			} else {
				data[i] = core.Idle
			}
		}
		chunks[di] = chunked{numChunks: nc, chunkSize: size, data: data}
	}

	// Major cycle: L minor cycles, each carrying one chunk per disk.
	var slots []int
	for minor := 0; minor < l; minor++ {
		for di := range disks {
			c := chunks[di]
			k := minor % c.numChunks
			slots = append(slots, c.data[k*c.chunkSize:(k+1)*c.chunkSize]...)
		}
	}
	p, err := core.NewProgram(infos, slots, 0, "multidisk")
	if err != nil {
		return nil, err
	}
	return p, nil
}

// LatencyProfile reports mean and worst-case fault-free retrieval
// latency of a file over every start slot of the program's data cycle.
func LatencyProfile(p *core.Program, file int) (mean float64, worst int) {
	cycle := p.DataCycle()
	need := p.Files[file].M
	total := 0
	for start := 0; start < cycle; start++ {
		seen := 0
		t := start
		for {
			if p.FileAt(t) == file {
				seen++
				if seen == need {
					break
				}
			}
			t++
		}
		lat := t - start + 1
		total += lat
		if lat > worst {
			worst = lat
		}
	}
	return float64(total) / float64(cycle), worst
}

// WeightedMeanLatency returns the access-probability-weighted mean
// latency over all files — the objective the multi-disk layout
// optimizes. probs must sum to 1 across files.
func WeightedMeanLatency(p *core.Program, probs []float64) float64 {
	total := 0.0
	for i := range p.Files {
		mean, _ := LatencyProfile(p, i)
		total += probs[i] * mean
	}
	return total
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
