// Package pinwheel implements pinwheel task systems and schedulers
// (§3 of Baruah & Bestavros; Holte et al. 1989; Chan & Chin 1992).
//
// A pinwheel task (a, b) must be allocated a shared slotted resource for
// at least a out of every b consecutive time slots (the Integral Boundary
// Constraint). A system is a set of such tasks sharing one resource. The
// ratio a/b is the task's density; the system density is the sum.
//
// The package provides:
//
//   - an exact cyclic verifier (Verify) used to certify every schedule,
//   - Sa: single-number (power-of-two) specialization with buddy
//     allocation — schedules every system with density ≤ 1/2,
//   - Sx: single-integer specialization with an optimized base in the
//     style of Chan & Chin's integer-reduction schedulers,
//   - EDF: greedy earliest-deadline scheduling with cycle detection,
//   - Exact: complete search over urgency states for small systems,
//   - Schedule: a portfolio driver combining all of the above,
//   - DensityTestCC: Chan & Chin's sufficient schedulability condition
//     (density ≤ 7/10) exactly as the paper uses it for bandwidth sizing.
package pinwheel

import (
	"errors"
	"fmt"
	"strings"

	"pinbcast/internal/bcerr"
)

// Task is a pinwheel task: the resource must be allocated to it for at
// least A out of every B consecutive slots.
type Task struct {
	Name string // optional human-readable identity
	A    int    // computation requirement (slots per window)
	B    int    // window size (the real-time constraint)
}

// Density returns A/B.
func (t Task) Density() float64 { return float64(t.A) / float64(t.B) }

// String renders the task as in the paper, e.g. "(name; 2, 5)".
func (t Task) String() string {
	if t.Name == "" {
		return fmt.Sprintf("(%d, %d)", t.A, t.B)
	}
	return fmt.Sprintf("(%s; %d, %d)", t.Name, t.A, t.B)
}

// Validate checks that the task parameters are positive integers with
// A ≤ B (a task with A > B is trivially infeasible).
func (t Task) Validate() error {
	switch {
	case t.A < 1:
		return fmt.Errorf("pinwheel: task %s has A < 1: %w", t, bcerr.ErrBadSpec)
	case t.B < 1:
		return fmt.Errorf("pinwheel: task %s has B < 1: %w", t, bcerr.ErrBadSpec)
	case t.A > t.B:
		return fmt.Errorf("pinwheel: task %s has A > B: %w", t, bcerr.ErrInfeasible)
	}
	return nil
}

// System is a set of pinwheel tasks sharing a single slotted resource.
type System []Task

// Density returns the sum of task densities. A density above 1 makes the
// system trivially infeasible; density ≤ 7/10 makes it schedulable by
// Chan & Chin's result.
func (s System) Density() float64 {
	d := 0.0
	for _, t := range s {
		d += t.Density()
	}
	return d
}

// Validate checks every task and that the system is non-empty.
func (s System) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("pinwheel: empty system: %w", bcerr.ErrBadSpec)
	}
	for _, t := range s {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MaxWindow returns the largest window size in the system.
func (s System) MaxWindow() int {
	max := 0
	for _, t := range s {
		if t.B > max {
			max = t.B
		}
	}
	return max
}

// MinWindow returns the smallest window size in the system.
func (s System) MinWindow() int {
	if len(s) == 0 {
		return 0
	}
	min := s[0].B
	for _, t := range s[1:] {
		if t.B < min {
			min = t.B
		}
	}
	return min
}

// String renders the system as in the paper, e.g. "{(1, 2), (1, 3)}".
func (s System) String() string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// DensityTestCC reports whether the system passes Chan & Chin's
// sufficient schedulability condition: density ≤ 7/10. This is the test
// the paper's Equations 1 and 2 are built on. A small epsilon absorbs
// floating-point rounding for systems whose density is exactly 7/10.
func DensityTestCC(s System) bool {
	const eps = 1e-9
	return s.Density() <= 0.7+eps
}

// Sentinel errors reported by the schedulers. ErrInfeasible is the
// shared bcerr sentinel so that errors.Is classification works across
// layers and through the public facade.
var (
	// ErrInfeasible indicates the system provably has no schedule.
	ErrInfeasible = bcerr.ErrInfeasible
	// ErrSchedulerFailed indicates this scheduler could not produce a
	// schedule; the system may still be feasible for another scheduler.
	ErrSchedulerFailed = errors.New("pinwheel: scheduler failed to find a schedule")
	// ErrTooLarge indicates the instance exceeds the scheduler's search
	// or period limits, leaving feasibility undecided.
	ErrTooLarge = errors.New("pinwheel: instance too large for this scheduler")
)
