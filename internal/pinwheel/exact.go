package pinwheel

import (
	"fmt"
)

// This file implements an exact decision procedure for pinwheel
// schedulability of small systems, by exhaustive search of the urgency
// state graph.
//
// A state records, per task, the ages of its last A grants. From each
// state, every choice of task to grant — or leaving the slot idle —
// leads deterministically to a successor; a state in which some task's
// deadline has passed, or in which two tasks share an immediate
// deadline, is dead. The system is schedulable if and only if the
// finite state graph contains an infinite miss-free path from the
// saturated start state, which happens exactly when a cycle of valid
// states is reachable. The search is a colored DFS: an edge back into
// the DFS stack exhibits such a cycle (a "lasso"); exhausting all
// choices proves a state dead.
//
// The cost is exponential in the number of tasks, so Exact is only
// attempted below a configurable state budget; it is the ground truth
// the tests use (e.g. the infeasible three-task system of Example 1).

// ExactMaxStates is the default state budget for Exact.
const ExactMaxStates = 1 << 19

type exactSearcher struct {
	sys       System
	color     map[string]int8 // white (absent), gray, dead
	depth     map[string]int  // depth of gray states on the DFS stack
	stack     []int           // choices made along the current DFS path
	cycleFrom int             // stack depth where the found cycle starts
	budget    int
	exhausted bool
}

const (
	colorGray = 1
	colorDead = 2
)

// Exact decides schedulability by exhaustive search. It returns a
// verified schedule when the system is schedulable, ErrInfeasible when
// it provably is not, and ErrTooLarge when the state budget (maxStates,
// 0 for default) is exhausted before an answer is found.
func Exact(s System, maxStates int) (*Schedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Density() > 1.0+1e-12 {
		return nil, fmt.Errorf("%w: density %.4f > 1", ErrInfeasible, s.Density())
	}
	if maxStates <= 0 {
		maxStates = ExactMaxStates
	}
	es := &exactSearcher{
		sys:    s,
		color:  make(map[string]int8),
		depth:  make(map[string]int),
		budget: maxStates,
	}
	// Saturated start state: every task as if just served continuously.
	start := make([][]int, len(s))
	for i, t := range s {
		h := make([]int, t.A)
		for j := range h {
			h[j] = -(j + 1)
		}
		start[i] = h
	}
	ok := es.search(start, 0)
	if es.exhausted {
		return nil, fmt.Errorf("%w: exact search exceeded %d states", ErrTooLarge, maxStates)
	}
	if !ok {
		return nil, fmt.Errorf("%w: exhaustive search found no valid cycle", ErrInfeasible)
	}
	cycle := append([]int(nil), es.stack[es.cycleFrom:]...)
	sch := NewSchedule(cycle, "Exact")
	if err := sch.Verify(s); err != nil {
		// The lasso cycle is valid by construction; failure here would be
		// a bug in the search itself.
		return nil, fmt.Errorf("pinwheel: internal error: exact cycle failed verification: %w", err)
	}
	return sch, nil
}

// search explores from the given grant-history state at time t. States
// are age-normalized, so t only serves to compute ages. On success the
// DFS stack es.stack holds the lasso and es.cycleFrom marks where its
// cycle begins.
func (es *exactSearcher) search(last [][]int, t int) bool {
	key := stateKey(last, t)
	switch es.color[key] {
	case colorGray:
		// Lasso found: the cycle is the stack suffix from this state's
		// first occurrence to now.
		es.cycleFrom = es.depth[key]
		return true
	case colorDead:
		return false
	}
	if len(es.color) >= es.budget {
		es.exhausted = true
		return false
	}
	es.color[key] = colorGray
	es.depth[key] = len(es.stack)

	ok := es.expand(last, t)
	if !ok {
		es.color[key] = colorDead
		delete(es.depth, key)
	}
	// On success the state stays gray; the search unwinds immediately.
	return ok
}

// expand tries every valid choice from the state, returning true when
// some choice leads to a lasso.
func (es *exactSearcher) expand(last [][]int, t int) bool {
	// A task whose deadline is now must be granted in this very slot.
	mustGrant := -1
	for i, h := range last {
		d := h[len(h)-1] + es.sys[i].B
		if d < t {
			return false // deadline already missed: dead state
		}
		if d == t {
			if mustGrant >= 0 {
				return false // two immediate deadlines: unavoidable miss
			}
			mustGrant = i
		}
	}
	var choices []int
	if mustGrant >= 0 {
		choices = []int{mustGrant}
	} else {
		choices = make([]int, 0, len(es.sys)+1)
		for i := range es.sys {
			choices = append(choices, i)
		}
		choices = append(choices, Idle)
	}
	for _, c := range choices {
		es.stack = append(es.stack, c)
		if es.search(advance(last, c, t), t+1) {
			return true
		}
		es.stack = es.stack[:len(es.stack)-1]
		if es.exhausted {
			return false
		}
	}
	return false
}

// advance returns the successor grant-history state after granting
// choice (a task index or Idle) in slot t.
func advance(last [][]int, choice, t int) [][]int {
	next := make([][]int, len(last))
	for i, h := range last {
		nh := make([]int, len(h))
		copy(nh, h)
		if i == choice {
			copy(nh[1:], h[:len(h)-1])
			nh[0] = t
		}
		next[i] = nh
	}
	return next
}
