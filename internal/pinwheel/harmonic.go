package pinwheel

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the "integer reduction" family of pinwheel
// schedulers (Holte et al. 1989; Chan & Chin 1992): window sizes are
// specialized (rounded down) to a geometric chain {c·2^k}, after which
// the specialized system — whose windows pairwise divide one another —
// is scheduled by buddy allocation of residue classes.
//
// A task (a, b′) with specialized window b′ = c·2^k receives a residue
// classes of modulus b′: every window of b′ consecutive slots then
// contains exactly one slot from each class, i.e. exactly a grants, so
// every window of the original size b ≥ b′ contains at least a grants.
// Processing tasks in nondecreasing specialized-window order, buddy
// allocation succeeds whenever the specialized density is at most 1.
//
// With c a power of two (scheduler Sa), specialization at most halves a
// window, so any system with density ≤ 1/2 has specialized density ≤ 1
// and is scheduled — Holte et al.'s bound. Scheduler Sx additionally
// searches the candidate bases c at which some window's specialization
// changes, in the spirit of Chan & Chin's integer-reduction schedulers,
// and keeps whichever base minimizes the specialized density.

// specialize returns the largest c·2^k ≤ b together with 2^k, or an
// error if b < c.
func specialize(c, b int) (spec, pow int, err error) {
	if b < c {
		return 0, 0, fmt.Errorf("pinwheel: window %d below chain base %d", b, c)
	}
	spec, pow = c, 1
	for spec*2 <= b {
		spec *= 2
		pow *= 2
	}
	return spec, pow, nil
}

// SpecializedDensity returns the density of the system after windows are
// specialized to the chain {c·2^k}, or +Inf if some window is below c.
func SpecializedDensity(s System, c int) float64 {
	d := 0.0
	for _, t := range s {
		spec, _, err := specialize(c, t.B)
		if err != nil {
			return inf()
		}
		d += float64(t.A) / float64(spec)
	}
	return d
}

func inf() float64 { return math.Inf(1) }

// residueClass is a set of slots {t : t ≡ offset (mod modulus)}.
type residueClass struct {
	offset, modulus int
}

// ScheduleChain specializes every window to the chain {c·2^k} and
// schedules by buddy allocation. It fails with ErrSchedulerFailed when
// the specialized density exceeds 1 (the allocation runs out of
// classes) and with ErrTooLarge when the resulting period would exceed
// maxPeriod.
func ScheduleChain(s System, c int, maxPeriod int) (*Schedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("pinwheel: chain base %d < 1", c)
	}
	type specTask struct {
		idx  int
		a    int
		spec int
	}
	tasks := make([]specTask, len(s))
	period := c
	for i, t := range s {
		spec, _, err := specialize(c, t.B)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrSchedulerFailed, err)
		}
		tasks[i] = specTask{idx: i, a: t.A, spec: spec}
		if spec > period {
			period = spec
		}
	}
	if period > maxPeriod {
		return nil, fmt.Errorf("%w: period %d exceeds limit %d", ErrTooLarge, period, maxPeriod)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].spec < tasks[j].spec })

	// Free residue classes, grouped by modulus. Initially the c classes
	// of modulus c partition the timeline.
	free := make(map[int][]int) // modulus -> offsets
	moduli := []int{c}
	for o := 0; o < c; o++ {
		free[c] = append(free[c], o)
	}

	slots := make([]int, period)
	for t := range slots {
		slots[t] = Idle
	}

	for _, tk := range tasks {
		for grant := 0; grant < tk.a; grant++ {
			cls, ok := takeClass(free, &moduli, tk.spec)
			if !ok {
				return nil, fmt.Errorf("%w: buddy allocation exhausted at task %d (specialized density %.4f)",
					ErrSchedulerFailed, tk.idx, SpecializedDensity(s, c))
			}
			for t := cls.offset; t < period; t += cls.modulus {
				slots[t] = tk.idx
			}
		}
	}
	return NewSchedule(slots, fmt.Sprintf("chain(c=%d)", c)), nil
}

// takeClass removes and returns a free residue class of modulus exactly
// want, splitting a larger-density (smaller-modulus) class if needed.
// Classes are chosen best-fit: the largest available modulus ≤ want.
func takeClass(free map[int][]int, moduli *[]int, want int) (residueClass, bool) {
	// Best fit: largest modulus ≤ want with a free offset.
	best := 0
	for _, m := range *moduli {
		if m <= want && m > best && len(free[m]) > 0 {
			best = m
		}
	}
	if best == 0 {
		return residueClass{}, false
	}
	offs := free[best]
	off := offs[len(offs)-1]
	free[best] = offs[:len(offs)-1]
	// Split (off, m) into (off, 2m) kept and (off+m, 2m) freed, until the
	// modulus reaches want.
	m := best
	for m < want {
		if _, seen := free[2*m]; !seen {
			*moduli = append(*moduli, 2*m)
		}
		free[2*m] = append(free[2*m], off+m)
		m *= 2
	}
	return residueClass{offset: off, modulus: want}, true
}

// DefaultMaxPeriod bounds the period of schedules produced by the chain
// schedulers; beyond this the memory cost of materializing the cyclic
// schedule outweighs its usefulness.
const DefaultMaxPeriod = 1 << 22

// Sa is Holte et al.'s single-number scheduler: windows are specialized
// to powers of two. It is guaranteed to succeed whenever the system
// density is at most 1/2, and succeeds more generally whenever the
// power-of-two specialized density is at most 1.
func Sa(s System) (*Schedule, error) {
	sch, err := ScheduleChain(s, 1, DefaultMaxPeriod)
	if err != nil {
		return nil, err
	}
	sch.Origin = "Sa"
	return sch, nil
}

// CandidateBases returns the chain bases worth trying for Sx: every
// value ⌊b/2^k⌋ that lies in (minB/2, minB], where minB is the smallest
// window. Bases outside that half-open interval are either infeasible
// (> minB) or equivalent to one inside it (a base c ≤ minB/2 specializes
// every window ≥ minB exactly as base 2c does).
func CandidateBases(s System) []int {
	minB := s.MinWindow()
	lo := minB / 2 // exclusive
	set := map[int]bool{}
	for _, t := range s {
		for b := t.B; b > lo; b /= 2 {
			if b <= minB {
				set[b] = true
			}
		}
	}
	set[minB] = true
	bases := make([]int, 0, len(set))
	for c := range set {
		bases = append(bases, c)
	}
	sort.Ints(bases)
	return bases
}

// Sx is the optimized-base integer-reduction scheduler: it evaluates
// every candidate base and schedules with the one minimizing the
// specialized density. It strictly dominates Sa on systems whose
// windows cluster away from powers of two.
func Sx(s System) (*Schedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	bestC, bestD := 0, inf()
	for _, c := range CandidateBases(s) {
		if d := SpecializedDensity(s, c); d < bestD {
			bestC, bestD = c, d
		}
	}
	if bestC == 0 || bestD > 1.0 {
		return nil, fmt.Errorf("%w: best specialized density %.4f > 1", ErrSchedulerFailed, bestD)
	}
	sch, err := ScheduleChain(s, bestC, DefaultMaxPeriod)
	if err != nil {
		return nil, err
	}
	sch.Origin = fmt.Sprintf("Sx(c=%d)", bestC)
	return sch, nil
}
