package pinwheel

import (
	"fmt"
	"strings"
)

// Idle marks a slot in which the resource is left unallocated,
// rendered as ⊔ in the paper's examples.
const Idle = -1

// Schedule is a cyclic schedule: slot t of the infinite schedule is
// Slots[t mod Period]. Each entry is a task index into the System the
// schedule was built for, or Idle.
type Schedule struct {
	Period int
	Slots  []int
	// Origin records which scheduler produced the schedule, for
	// diagnostics and experiment tables.
	Origin string
}

// NewSchedule wraps a slot assignment in a Schedule.
func NewSchedule(slots []int, origin string) *Schedule {
	return &Schedule{Period: len(slots), Slots: slots, Origin: origin}
}

// At returns the task index scheduled in slot t ≥ 0 of the infinite
// schedule, or Idle.
func (s *Schedule) At(t int) int {
	if t < 0 {
		panic("pinwheel: negative slot index")
	}
	return s.Slots[t%s.Period]
}

// Grants returns the slot offsets within one period at which task i is
// scheduled, in increasing order.
func (s *Schedule) Grants(i int) []int {
	var g []int
	for t, v := range s.Slots {
		if v == i {
			g = append(g, t)
		}
	}
	return g
}

// GrantCount returns how many slots per period are allocated to task i.
func (s *Schedule) GrantCount(i int) int {
	n := 0
	for _, v := range s.Slots {
		if v == i {
			n++
		}
	}
	return n
}

// Utilization returns the fraction of non-idle slots per period.
func (s *Schedule) Utilization() float64 {
	busy := 0
	for _, v := range s.Slots {
		if v != Idle {
			busy++
		}
	}
	return float64(busy) / float64(s.Period)
}

// String renders one period like the paper's examples:
// "1, 2, 1, ⊔, 2, …". Task indices are printed 1-based to match the
// paper's notation.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Slots))
	for i, v := range s.Slots {
		if v == Idle {
			parts[i] = "⊔"
		} else {
			parts[i] = fmt.Sprintf("%d", v+1)
		}
	}
	return strings.Join(parts, ", ")
}

// Verify checks that the cyclic schedule satisfies every task of the
// system: each task i must appear in at least sys[i].A slots of every
// window of sys[i].B consecutive slots of the infinite schedule. Windows
// are checked cyclically, which covers all windows of the infinite
// repetition. It also checks that no slot index is out of range.
func (s *Schedule) Verify(sys System) error {
	if s.Period < 1 || len(s.Slots) != s.Period {
		return fmt.Errorf("pinwheel: malformed schedule (period %d, %d slots)", s.Period, len(s.Slots))
	}
	for t, v := range s.Slots {
		if v != Idle && (v < 0 || v >= len(sys)) {
			return fmt.Errorf("pinwheel: slot %d assigns unknown task %d", t, v)
		}
	}
	p := s.Period
	// prefix[i][t] = number of grants to task i in slots [0, t).
	prefix := make([][]int32, len(sys))
	for i := range prefix {
		prefix[i] = make([]int32, p+1)
	}
	for t, v := range s.Slots {
		for i := range prefix {
			prefix[i][t+1] = prefix[i][t]
		}
		if v != Idle {
			prefix[v][t+1]++
		}
	}
	for i, task := range sys {
		total := int(prefix[i][p])
		full := task.B / p
		rem := task.B % p
		for start := 0; start < p; start++ {
			// Grants in the cyclic window [start, start+task.B).
			got := full * total
			if rem > 0 {
				end := start + rem
				if end <= p {
					got += int(prefix[i][end] - prefix[i][start])
				} else {
					got += int(prefix[i][p]-prefix[i][start]) + int(prefix[i][end-p])
				}
			}
			if got < task.A {
				return fmt.Errorf(
					"pinwheel: task %d %s gets %d grants in window starting at slot %d, needs %d",
					i, task, got, start, task.A)
			}
		}
	}
	return nil
}

// MaxGap returns, for task i, the maximum distance between consecutive
// grants in the infinite schedule (cyclically). For a file on a
// broadcast disk this is δ of Lemma 2: the worst-case wait for the next
// block of the file. Returns 0 if the task is never scheduled.
func (s *Schedule) MaxGap(i int) int {
	g := s.Grants(i)
	if len(g) == 0 {
		return 0
	}
	max := g[0] + s.Period - g[len(g)-1] // wrap-around gap
	for j := 1; j < len(g); j++ {
		if d := g[j] - g[j-1]; d > max {
			max = d
		}
	}
	return max
}
