package pinwheel

import (
	"testing"
)

func TestVerifyPaperExample1First(t *testing.T) {
	// {(1,1,2), (2,1,3)} with schedule 1,2,1,2,… (paper, Example 1).
	sys := System{{A: 1, B: 2}, {A: 1, B: 3}}
	sch := NewSchedule([]int{0, 1}, "manual")
	if err := sch.Verify(sys); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyPaperExample1Second(t *testing.T) {
	// {(1,2,5), (2,1,3)} with schedule 1,2,1,⊔,2,1,2,1,⊔,2,… — the paper
	// writes the repeating pattern 1,2,1,⊔,2.
	sys := System{{A: 2, B: 5}, {A: 1, B: 3}}
	sch := NewSchedule([]int{0, 1, 0, Idle, 1}, "manual")
	if err := sch.Verify(sys); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesViolation(t *testing.T) {
	sys := System{{A: 1, B: 2}, {A: 1, B: 3}}
	// 1,1,2 violates task 2's window of 3? It appears once per 3 — fine —
	// but task 1 misses the window starting at slot 1: slots {1,2} = 1,2…
	// actually contains task 1 at slot… construct a clear violation:
	sch := NewSchedule([]int{0, 0, 0, 1}, "manual")
	// Task 2 (window 3) misses the window {0,1,2}.
	if err := sch.Verify(sys); err == nil {
		t.Fatal("verification passed a violating schedule")
	}
}

func TestVerifyWindowLargerThanPeriod(t *testing.T) {
	// Window of 5 against a period-2 schedule: every 5 consecutive slots
	// of the infinite repetition contain ≥ 2 grants of each task.
	sys := System{{A: 2, B: 5}, {A: 2, B: 5}}
	sch := NewSchedule([]int{0, 1}, "manual")
	if err := sch.Verify(sys); err != nil {
		t.Fatal(err)
	}
	// But ≥ 3 in every 5 must fail for a half-share task.
	bad := System{{A: 3, B: 5}, {A: 2, B: 5}}
	if err := sch.Verify(bad); err == nil {
		t.Fatal("verification passed an over-constrained system")
	}
}

func TestVerifyNeverScheduledTask(t *testing.T) {
	sys := System{{A: 1, B: 4}, {A: 1, B: 4}}
	sch := NewSchedule([]int{0, 0, 0, 0}, "manual")
	if err := sch.Verify(sys); err == nil {
		t.Fatal("task 2 never scheduled but verification passed")
	}
}

func TestVerifyUnknownTaskIndex(t *testing.T) {
	sys := System{{A: 1, B: 2}}
	sch := NewSchedule([]int{0, 5}, "manual")
	if err := sch.Verify(sys); err == nil {
		t.Fatal("out-of-range task index accepted")
	}
}

func TestVerifyMalformed(t *testing.T) {
	sch := &Schedule{Period: 3, Slots: []int{0}}
	if err := sch.Verify(System{{A: 1, B: 1}}); err == nil {
		t.Fatal("malformed schedule accepted")
	}
}

func TestGrantsAndCount(t *testing.T) {
	sch := NewSchedule([]int{0, 1, 0, Idle, 1, 0}, "manual")
	g := sch.Grants(0)
	if len(g) != 3 || g[0] != 0 || g[1] != 2 || g[2] != 5 {
		t.Fatalf("Grants(0) = %v", g)
	}
	if sch.GrantCount(1) != 2 {
		t.Fatalf("GrantCount(1) = %d", sch.GrantCount(1))
	}
}

func TestUtilization(t *testing.T) {
	sch := NewSchedule([]int{0, Idle, 1, Idle}, "manual")
	if u := sch.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestMaxGap(t *testing.T) {
	// Task 0 at slots 0 and 3 of period 8: gaps 3 and 5 (wrap).
	slots := []int{0, Idle, Idle, 0, Idle, Idle, Idle, Idle}
	sch := NewSchedule(slots, "manual")
	if g := sch.MaxGap(0); g != 5 {
		t.Fatalf("MaxGap = %d, want 5", g)
	}
	if g := sch.MaxGap(1); g != 0 {
		t.Fatalf("MaxGap of absent task = %d, want 0", g)
	}
}

func TestAtWrapsPeriod(t *testing.T) {
	sch := NewSchedule([]int{0, 1}, "manual")
	if sch.At(0) != 0 || sch.At(1) != 1 || sch.At(2) != 0 || sch.At(17) != 1 {
		t.Fatal("At does not wrap cyclically")
	}
}
