package pinwheel

import (
	"encoding/binary"
	"fmt"
)

// This file implements a greedy earliest-deadline-first scheduler with
// cycle detection.
//
// For a task (a, b) with grant times g₁ < g₂ < …, the window condition
// "at least a grants in every b consecutive slots" is equivalent to
// g_{j+a} ≤ g_j + b for all j (taking virtual grants at negative times
// for the start-up transient). The next grant of a task is therefore due
// no later than (a-th most recent grant) + b. EDF grants, in every slot,
// the task with the earliest such deadline. Because the per-task state
// (the ages of its last a grants) lives in a finite space, the schedule
// is eventually periodic; we detect the first repeated state, cut out
// the cycle, and verify it cyclically.
//
// EDF is not optimal for pinwheel systems, so failure here does not
// prove infeasibility — but on realistic instances it succeeds well past
// the 7/10 density bound, and every schedule it returns is verified.

// EDFMaxSlots is the default simulation horizon for EDF.
const EDFMaxSlots = 1 << 20

// EDF schedules the system by greedy earliest-deadline-first simulation,
// returning the periodic part once the urgency state repeats. maxSlots
// bounds the simulation; pass 0 for the default.
func EDF(s System, maxSlots int) (*Schedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if maxSlots <= 0 {
		maxSlots = EDFMaxSlots
	}
	n := len(s)
	// last[i] holds the times of the most recent s[i].A grants of task i,
	// most recent first, initialized to the saturated virtual history
	// −1, −2, …, −A (as if the task had just been served continuously).
	last := make([][]int, n)
	for i, t := range s {
		h := make([]int, t.A)
		for j := range h {
			h[j] = -(j + 1)
		}
		last[i] = h
	}
	deadline := func(i int) int {
		h := last[i]
		return h[len(h)-1] + s[i].B
	}

	seen := make(map[string]int) // state key -> slot index at which it occurred
	var slots []int
	for t := 0; t < maxSlots; t++ {
		key := stateKey(last, t)
		if start, ok := seen[key]; ok {
			cycle := append([]int(nil), slots[start:]...)
			sch := NewSchedule(cycle, "EDF")
			if err := sch.Verify(s); err != nil {
				return nil, fmt.Errorf("%w: cycle failed verification: %w", ErrSchedulerFailed, err)
			}
			return sch, nil
		}
		seen[key] = t

		// Pick the task with the earliest deadline.
		pick, best := -1, int(^uint(0)>>1)
		for i := range s {
			if d := deadline(i); d < best {
				pick, best = i, d
			}
		}
		if best < t {
			return nil, fmt.Errorf("%w: EDF missed a deadline of task %d at slot %d", ErrSchedulerFailed, pick, t)
		}
		// Grant and advance the task's history.
		h := last[pick]
		copy(h[1:], h[:len(h)-1])
		h[0] = t
		slots = append(slots, pick)
	}
	return nil, fmt.Errorf("%w: no cycle within %d slots", ErrTooLarge, maxSlots)
}

// stateKey encodes the per-task grant ages at time t. Ages fully
// determine future behaviour, so a repeated key means the schedule has
// entered a cycle.
func stateKey(last [][]int, t int) string {
	buf := make([]byte, 0, 4*8)
	var tmp [4]byte
	for _, h := range last {
		for _, g := range h {
			binary.BigEndian.PutUint32(tmp[:], uint32(t-g))
			buf = append(buf, tmp[:]...)
		}
		buf = append(buf, 0xff)
	}
	return string(buf)
}
