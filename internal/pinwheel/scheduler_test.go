package pinwheel

import (
	"errors"
	"math/rand"
	"testing"
)

func TestSpecialize(t *testing.T) {
	cases := []struct {
		c, b, want int
	}{
		{1, 1, 1},
		{1, 7, 4},
		{1, 8, 8},
		{3, 3, 3},
		{3, 11, 6},
		{3, 12, 12},
		{5, 100, 80},
	}
	for _, cse := range cases {
		got, _, err := specialize(cse.c, cse.b)
		if err != nil || got != cse.want {
			t.Errorf("specialize(%d, %d) = %d, %v; want %d", cse.c, cse.b, got, err, cse.want)
		}
	}
	if _, _, err := specialize(5, 4); err == nil {
		t.Fatal("specialize below base did not error")
	}
}

func TestSaSimpleSystems(t *testing.T) {
	systems := []System{
		{{A: 1, B: 2}, {A: 1, B: 4}},
		{{A: 1, B: 2}, {A: 1, B: 4}, {A: 1, B: 8}, {A: 1, B: 8}},
		{{A: 1, B: 3}, {A: 1, B: 9}},
		{{A: 2, B: 4}, {A: 1, B: 8}},
		{{A: 1, B: 10}, {A: 1, B: 20}, {A: 1, B: 40}},
	}
	for _, s := range systems {
		sch, err := Sa(s)
		if err != nil {
			t.Fatalf("Sa(%v): %v", s, err)
		}
		if err := sch.Verify(s); err != nil {
			t.Fatalf("Sa(%v) produced invalid schedule: %v", s, err)
		}
	}
}

func TestSaHalfDensityGuarantee(t *testing.T) {
	// Holte et al.: every system with density ≤ 1/2 is scheduled by Sa.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		s := randomSystem(rng, 1+rng.Intn(6), 0.5)
		if s.Density() > 0.5 {
			continue
		}
		sch, err := Sa(s)
		if err != nil {
			t.Fatalf("Sa failed on density-%.3f system %v: %v", s.Density(), s, err)
		}
		if err := sch.Verify(s); err != nil {
			t.Fatalf("Sa invalid on %v: %v", s, err)
		}
	}
}

func TestSaGeneralATasksNative(t *testing.T) {
	// a > 1 tasks are placed as multiple residue classes without loss.
	s := System{{A: 3, B: 8}, {A: 2, B: 4}}
	sch, err := Sa(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Verify(s); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateBases(t *testing.T) {
	s := System{{A: 1, B: 7}, {A: 1, B: 10}}
	bases := CandidateBases(s)
	// minB = 7, interval (3, 7]: candidates include 7 and 10/2 = 5.
	want := map[int]bool{7: true, 5: true}
	for _, b := range bases {
		if b <= 3 || b > 7 {
			t.Fatalf("candidate %d outside (3, 7]", b)
		}
		delete(want, b)
	}
	if len(want) != 0 {
		t.Fatalf("missing candidates %v in %v", want, bases)
	}
}

func TestSxBeatsSaOnNonPowerWindows(t *testing.T) {
	// Windows {7, 7, 14}: Sa specializes to {4, 4, 8} (density 5/8 from
	// 3/7·…); Sx picks base 7 and loses nothing.
	s := System{{A: 1, B: 7}, {A: 1, B: 7}, {A: 1, B: 14}}
	if d := SpecializedDensity(s, 7); d != s.Density() {
		t.Fatalf("base-7 specialized density = %v, want lossless %v", d, s.Density())
	}
	sch, err := Sx(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Verify(s); err != nil {
		t.Fatal(err)
	}
	// Density 5/14 + … = 1/7+1/7+1/14 = 5/14 ≈ 0.357: Sa also works, but
	// a tight case: three tasks of window 3 with density 1 exactly.
	tight := System{{A: 1, B: 3}, {A: 1, B: 3}, {A: 1, B: 3}}
	sch, err = Sx(tight)
	if err != nil {
		t.Fatalf("Sx failed on density-1 harmonic system: %v", err)
	}
	if err := sch.Verify(tight); err != nil {
		t.Fatal(err)
	}
	if _, err := Sa(tight); err == nil {
		t.Fatal("Sa unexpectedly scheduled density-1 window-3 system (specializes to 2)")
	}
}

func TestScheduleChainPeriodLimit(t *testing.T) {
	s := System{{A: 1, B: DefaultMaxPeriod * 4}}
	_, err := ScheduleChain(s, 1, 1024)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestEDFPaperExample(t *testing.T) {
	sys := System{{A: 1, B: 2}, {A: 1, B: 3}}
	sch, err := EDF(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Verify(sys); err != nil {
		t.Fatal(err)
	}
}

func TestEDFGeneralA(t *testing.T) {
	sys := System{{A: 2, B: 5}, {A: 1, B: 3}}
	sch, err := EDF(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Verify(sys); err != nil {
		t.Fatal(err)
	}
}

func TestEDFHighDensity(t *testing.T) {
	// Density 5/6 two-task system — beyond the 7/10 bound; EDF handles it.
	sys := System{{A: 1, B: 2}, {A: 1, B: 3}}
	if sys.Density() <= 0.7 {
		t.Fatal("test system density should exceed 0.7")
	}
	sch, err := EDF(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Verify(sys); err != nil {
		t.Fatal(err)
	}
}

func TestExactFeasible(t *testing.T) {
	sys := System{{A: 1, B: 2}, {A: 1, B: 3}}
	sch, err := Exact(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Verify(sys); err != nil {
		t.Fatal(err)
	}
}

func TestExactInfeasibleExample1(t *testing.T) {
	// Third system of Example 1: {(1,1,2), (2,1,3), (3,1,n)} cannot be
	// scheduled for any finite n. Check a sample of n values.
	for _, n := range []int{4, 7, 12, 20} {
		sys := System{{A: 1, B: 2}, {A: 1, B: 3}, {A: 1, B: n}}
		_, err := Exact(sys, 0)
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("n=%d: err = %v, want ErrInfeasible", n, err)
		}
	}
}

func TestExactDensityAboveOne(t *testing.T) {
	sys := System{{A: 1, B: 1}, {A: 1, B: 2}}
	_, err := Exact(sys, 0)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestExactBudgetExhaustion(t *testing.T) {
	sys := System{{A: 1, B: 9}, {A: 1, B: 10}, {A: 1, B: 11}, {A: 1, B: 12}}
	_, err := Exact(sys, 8)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestPortfolioFeasibleSystems(t *testing.T) {
	systems := []System{
		{{A: 1, B: 2}, {A: 1, B: 3}},               // density 5/6
		{{A: 2, B: 5}, {A: 1, B: 3}},               // paper Example 1
		{{A: 1, B: 7}, {A: 1, B: 8}, {A: 1, B: 9}}, // awkward windows
		{{A: 5, B: 100}, {A: 3, B: 50}, {A: 7, B: 70}},
	}
	for _, s := range systems {
		sch, err := Solve(s, nil)
		if err != nil {
			t.Fatalf("portfolio failed on %v: %v", s, err)
		}
		if err := sch.Verify(s); err != nil {
			t.Fatalf("portfolio invalid on %v: %v", s, err)
		}
	}
}

func TestPortfolioProvesInfeasible(t *testing.T) {
	sys := System{{A: 1, B: 2}, {A: 1, B: 3}, {A: 1, B: 8}}
	_, err := Solve(sys, nil)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPortfolioDensityAboveOne(t *testing.T) {
	sys := System{{A: 3, B: 4}, {A: 1, B: 2}}
	_, err := Solve(sys, nil)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPortfolioSchedulesAllCCWorkloads(t *testing.T) {
	// The property the Bdisk construction relies on (DESIGN.md,
	// substitution note): every workload passing the 7/10 density test
	// is actually scheduled by the portfolio.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		s := randomSystem(rng, 1+rng.Intn(8), 0.7)
		if !DensityTestCC(s) {
			continue
		}
		sch, err := Solve(s, nil)
		if err != nil {
			t.Fatalf("portfolio failed on CC-feasible system %v (density %.4f): %v",
				s, s.Density(), err)
		}
		if err := sch.Verify(s); err != nil {
			t.Fatalf("portfolio invalid on %v: %v", s, err)
		}
	}
}

// randomSystem generates a random system with density at most maxDensity
// (approximately — it stops adding tasks when the target is exceeded and
// trims the last task's share).
func randomSystem(rng *rand.Rand, n int, maxDensity float64) System {
	var s System
	remaining := maxDensity
	for i := 0; i < n && remaining > 0.005; i++ {
		b := 2 + rng.Intn(60)
		maxA := int(remaining * float64(b))
		if maxA < 1 {
			continue
		}
		a := 1
		if maxA > 1 && rng.Intn(2) == 0 {
			a = 1 + rng.Intn(maxA)
		}
		if a > b {
			a = b
		}
		s = append(s, Task{A: a, B: b})
		remaining -= float64(a) / float64(b)
	}
	if len(s) == 0 {
		b := 8 + rng.Intn(56)
		s = append(s, Task{A: 1, B: b})
	}
	return s
}

func TestSchedulersListedInOrder(t *testing.T) {
	names := []string{"Sa", "Sx", "EDF", "Portfolio"}
	got := Schedulers()
	if len(got) != len(names) {
		t.Fatalf("got %d schedulers", len(got))
	}
	for i, ns := range got {
		if ns.Name != names[i] {
			t.Fatalf("scheduler %d = %q, want %q", i, ns.Name, names[i])
		}
	}
}

func BenchmarkSa20Tasks(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	s := randomSystem(rng, 20, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Sa(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEDF6Tasks(b *testing.B) {
	s := System{{A: 1, B: 6}, {A: 1, B: 7}, {A: 1, B: 8}, {A: 1, B: 9}, {A: 1, B: 10}, {A: 1, B: 11}}
	if _, err := EDF(s, 0); err != nil {
		b.Fatalf("bench workload not EDF-schedulable: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EDF(s, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	s := randomSystem(rng, 12, 0.5)
	sch, err := Sa(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sch.Verify(s); err != nil {
			b.Fatal(err)
		}
	}
}
