package pinwheel

import (
	"math"
	"strings"
	"testing"
)

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		task Task
		ok   bool
	}{
		{Task{A: 1, B: 2}, true},
		{Task{A: 5, B: 5}, true},
		{Task{A: 0, B: 2}, false},
		{Task{A: 1, B: 0}, false},
		{Task{A: 3, B: 2}, false},
		{Task{A: -1, B: 2}, false},
	}
	for _, c := range cases {
		if err := c.task.Validate(); (err == nil) != c.ok {
			t.Errorf("%v.Validate() = %v, want ok=%v", c.task, err, c.ok)
		}
	}
}

func TestTaskDensity(t *testing.T) {
	if d := (Task{A: 1, B: 2}).Density(); d != 0.5 {
		t.Fatalf("density = %v, want 0.5", d)
	}
	if d := (Task{A: 7, B: 10}).Density(); math.Abs(d-0.7) > 1e-12 {
		t.Fatalf("density = %v, want 0.7", d)
	}
}

func TestSystemDensity(t *testing.T) {
	s := System{{A: 1, B: 2}, {A: 1, B: 3}}
	if d := s.Density(); math.Abs(d-5.0/6.0) > 1e-12 {
		t.Fatalf("density = %v, want 5/6", d)
	}
}

func TestSystemValidate(t *testing.T) {
	if err := (System{}).Validate(); err == nil {
		t.Fatal("empty system validated")
	}
	if err := (System{{A: 1, B: 2}, {A: 0, B: 3}}).Validate(); err == nil {
		t.Fatal("invalid member validated")
	}
	if err := (System{{A: 1, B: 2}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxWindow(t *testing.T) {
	s := System{{A: 1, B: 7}, {A: 1, B: 3}, {A: 1, B: 12}}
	if s.MinWindow() != 3 || s.MaxWindow() != 12 {
		t.Fatalf("min/max = %d/%d, want 3/12", s.MinWindow(), s.MaxWindow())
	}
	if (System{}).MinWindow() != 0 {
		t.Fatal("empty MinWindow != 0")
	}
}

func TestDensityTestCC(t *testing.T) {
	// Exactly 7/10 must pass (the bound is inclusive).
	if !DensityTestCC(System{{A: 7, B: 10}}) {
		t.Fatal("density 0.7 rejected")
	}
	if DensityTestCC(System{{A: 7, B: 10}, {A: 1, B: 1000}}) {
		t.Fatal("density 0.701 accepted")
	}
	if !DensityTestCC(System{{A: 1, B: 2}, {A: 1, B: 5}}) {
		t.Fatal("density 0.7 (1/2+1/5) rejected")
	}
}

func TestStringFormats(t *testing.T) {
	task := Task{Name: "F1", A: 2, B: 5}
	if got := task.String(); got != "(F1; 2, 5)" {
		t.Fatalf("task string = %q", got)
	}
	s := System{{A: 1, B: 2}, {A: 1, B: 3}}
	if got := s.String(); got != "{(1, 2), (1, 3)}" {
		t.Fatalf("system string = %q", got)
	}
	sch := NewSchedule([]int{0, 1, 0, Idle}, "test")
	if got := sch.String(); !strings.Contains(got, "⊔") || !strings.HasPrefix(got, "1, 2, 1") {
		t.Fatalf("schedule string = %q", got)
	}
}
