package pinwheel

import (
	"fmt"
	"sort"
)

// TwoDistinct schedules unit-task systems whose windows take at most
// two distinct values — the class solved completely by Holte, Rosier,
// Tulchinsky & Varvel, "Pinwheel scheduling with two distinct numbers"
// (TCS 1992), cited in §3.1 of the paper. With windows a < b and nₐ
// and n_b tasks of each, the system is scheduled whenever
//
//	nₐ/a + n_b/(a·⌊b/a⌋) ≤ 1,
//
// by a frame construction: the timeline is cut into frames of a slots;
// each a-window task owns one fixed offset in every frame, and the
// b-window tasks share the remaining offsets in rotation, each being
// served once every k = ⌊b/a⌋ frames (spacing exactly a·k ≤ b).
//
// For systems that are not unit or not two-valued, it returns
// ErrSchedulerFailed so the portfolio can move on.
func TwoDistinct(s System) (*Schedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var windows []int
	byWindow := map[int][]int{}
	for i, t := range s {
		if t.A != 1 {
			return nil, fmt.Errorf("%w: TwoDistinct handles unit tasks only", ErrSchedulerFailed)
		}
		if _, seen := byWindow[t.B]; !seen {
			windows = append(windows, t.B)
		}
		byWindow[t.B] = append(byWindow[t.B], i)
	}
	if len(windows) > 2 {
		return nil, fmt.Errorf("%w: %d distinct windows, TwoDistinct handles at most 2",
			ErrSchedulerFailed, len(windows))
	}
	sort.Ints(windows)

	a := windows[0]
	fast := byWindow[a]
	var slow []int
	k := 1
	if len(windows) == 2 {
		b := windows[1]
		slow = byWindow[b]
		k = b / a
	}
	// Feasibility of the frame construction: the fast tasks take
	// len(fast) offsets of every frame; the slow tasks need
	// ⌈len(slow)/k⌉ further offsets.
	needSlow := (len(slow) + k - 1) / k
	if len(fast)+needSlow > a {
		return nil, fmt.Errorf("%w: frame construction needs %d offsets in frames of %d",
			ErrSchedulerFailed, len(fast)+needSlow, a)
	}

	period := a * k
	slots := make([]int, period)
	for i := range slots {
		slots[i] = Idle
	}
	// Fast tasks: fixed offsets 0..len(fast)-1 in every frame.
	for o, task := range fast {
		for f := 0; f < k; f++ {
			slots[f*a+o] = task
		}
	}
	// Slow tasks: offsets len(fast).. shared in rotation. Slow task j
	// uses offset len(fast)+j/k in frame j%k of every period, giving a
	// spacing of exactly a·k ≤ b.
	for j, task := range slow {
		offset := len(fast) + j/k
		frame := j % k
		slots[frame*a+offset] = task
	}
	sch := NewSchedule(slots, "TwoDistinct")
	if err := sch.Verify(s); err != nil {
		return nil, fmt.Errorf("pinwheel: internal error: two-distinct construction invalid: %w", err)
	}
	return sch, nil
}
