package pinwheel

import (
	"errors"
	"fmt"
)

// Options configures the portfolio scheduler.
type Options struct {
	// MaxPeriod bounds the period of chain-scheduler output
	// (default DefaultMaxPeriod).
	MaxPeriod int
	// EDFMaxSlots bounds the EDF simulation (default EDFMaxSlots).
	EDFMaxSlots int
	// ExactMaxStates bounds the exact search (default ExactMaxStates).
	// Set negative to disable the exact fallback.
	ExactMaxStates int
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.MaxPeriod == 0 {
		out.MaxPeriod = DefaultMaxPeriod
	}
	if out.EDFMaxSlots == 0 {
		out.EDFMaxSlots = EDFMaxSlots
	}
	if out.ExactMaxStates == 0 {
		out.ExactMaxStates = ExactMaxStates
	}
	return out
}

// Solve runs the scheduler portfolio — Sx (which subsumes Sa), then
// EDF, then exact search — returning the first verified schedule. The
// returned schedule's Origin names the scheduler that produced it.
//
// The error is ErrInfeasible only when infeasibility is proved (density
// above 1, or the exact search exhausts the state graph); otherwise a
// failure wraps ErrSchedulerFailed or ErrTooLarge and the instance's
// feasibility is undecided.
func Solve(s System, opts *Options) (*Schedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Density() > 1.0+1e-12 {
		return nil, fmt.Errorf("%w: density %.4f exceeds 1", ErrInfeasible, s.Density())
	}
	o := opts.withDefaults()

	var firstErr error
	note := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	if sch, err := Sx(s); err == nil {
		return sch, nil
	} else {
		note(err)
	}
	if sch, err := TwoDistinct(s); err == nil {
		return sch, nil
	}
	if sch, err := EDF(s, o.EDFMaxSlots); err == nil {
		return sch, nil
	} else {
		note(err)
	}
	if o.ExactMaxStates > 0 {
		sch, err := Exact(s, o.ExactMaxStates)
		if err == nil {
			return sch, nil
		}
		if errors.Is(err, ErrInfeasible) {
			return nil, err
		}
		note(err)
	}
	return nil, fmt.Errorf("%w (first failure: %w)", ErrSchedulerFailed, firstErr)
}

// Schedulers returns the individual portfolio members keyed by name, in
// portfolio order. Experiment E9 sweeps them separately.
func Schedulers() []NamedScheduler {
	return []NamedScheduler{
		{"Sa", func(s System) (*Schedule, error) { return Sa(s) }},
		{"Sx", func(s System) (*Schedule, error) { return Sx(s) }},
		{"EDF", func(s System) (*Schedule, error) { return EDF(s, 0) }},
		{"Portfolio", func(s System) (*Schedule, error) { return Solve(s, nil) }},
	}
}

// NamedScheduler pairs a scheduler function with its display name.
type NamedScheduler struct {
	Name string
	Run  func(System) (*Schedule, error)
}
