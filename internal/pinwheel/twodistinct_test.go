package pinwheel

import (
	"errors"
	"math/rand"
	"testing"
)

func TestTwoDistinctSimple(t *testing.T) {
	systems := []System{
		{{A: 1, B: 2}, {A: 1, B: 3}},                             // density 5/6
		{{A: 1, B: 2}, {A: 1, B: 4}, {A: 1, B: 4}},               // density 1 exactly
		{{A: 1, B: 3}, {A: 1, B: 3}, {A: 1, B: 3}},               // one window, density 1
		{{A: 1, B: 3}, {A: 1, B: 7}, {A: 1, B: 7}, {A: 1, B: 7}}, // k = 2
	}
	for _, s := range systems {
		sch, err := TwoDistinct(s)
		if err != nil {
			t.Fatalf("TwoDistinct(%v): %v", s, err)
		}
		if err := sch.Verify(s); err != nil {
			t.Fatalf("invalid schedule for %v: %v", s, err)
		}
	}
}

func TestTwoDistinctDensityOneTwoTasks(t *testing.T) {
	// Holte et al. 1992: every two-task system with density ≤ 1 is
	// schedulable. Exercise many (a, b) pairs where the frame
	// construction applies.
	for a := 2; a <= 8; a++ {
		for b := a; b <= 4*a; b++ {
			s := System{{A: 1, B: a}, {A: 1, B: b}}
			sch, err := TwoDistinct(s)
			if err != nil {
				// The frame condition 1/a + 1/(a⌊b/a⌋) ≤ 1 can only fail
				// for a = 2, b < 4 (density near 1); verify that is the
				// only failure mode.
				if 1.0/float64(a)+1.0/float64(a*(b/a)) <= 1.0 {
					t.Fatalf("(1,%d),(1,%d): unexpected failure: %v", a, b, err)
				}
				continue
			}
			if err := sch.Verify(s); err != nil {
				t.Fatalf("(1,%d),(1,%d): invalid: %v", a, b, err)
			}
		}
	}
}

func TestTwoDistinctRejectsGeneralSystems(t *testing.T) {
	if _, err := TwoDistinct(System{{A: 2, B: 5}}); !errors.Is(err, ErrSchedulerFailed) {
		t.Fatal("non-unit task accepted")
	}
	if _, err := TwoDistinct(System{{A: 1, B: 2}, {A: 1, B: 3}, {A: 1, B: 5}}); !errors.Is(err, ErrSchedulerFailed) {
		t.Fatal("three distinct windows accepted")
	}
}

func TestTwoDistinctOverloadRejected(t *testing.T) {
	// Three tasks of window 2: density 1.5.
	s := System{{A: 1, B: 2}, {A: 1, B: 2}, {A: 1, B: 2}}
	if _, err := TwoDistinct(s); err == nil {
		t.Fatal("overloaded system accepted")
	}
}

func TestTwoDistinctSpacingExact(t *testing.T) {
	// Slow tasks must be served with spacing exactly a·k.
	s := System{{A: 1, B: 3}, {A: 1, B: 6}, {A: 1, B: 6}}
	sch, err := TwoDistinct(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if g := sch.MaxGap(i); g > 6 {
			t.Fatalf("slow task %d max gap %d > 6", i, g)
		}
	}
}

func TestPortfolioUsesTwoDistinct(t *testing.T) {
	// Density-1 two-window system: Sa and Sx fail (specialization
	// pushes density above 1), TwoDistinct succeeds.
	s := System{{A: 1, B: 2}, {A: 1, B: 4}, {A: 1, B: 4}}
	if _, err := Sx(s); err == nil {
		t.Skip("Sx handles it on this instance; portfolio order untestable here")
	}
	sch, err := Solve(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Verify(s); err != nil {
		t.Fatal(err)
	}
}

func TestTwoDistinctRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		a := 2 + rng.Intn(10)
		b := a * (1 + rng.Intn(4))
		na := rng.Intn(a)
		nb := 1 + rng.Intn(2*a)
		var s System
		for i := 0; i < na; i++ {
			s = append(s, Task{A: 1, B: a})
		}
		for i := 0; i < nb; i++ {
			s = append(s, Task{A: 1, B: b})
		}
		if len(s) == 0 {
			continue
		}
		sch, err := TwoDistinct(s)
		if err != nil {
			continue // construction infeasible for this draw
		}
		if err := sch.Verify(s); err != nil {
			t.Fatalf("trial %d: invalid schedule for %v: %v", trial, s, err)
		}
	}
}

func TestThreeTaskFiveSixthsBound(t *testing.T) {
	// §3.1 cites Lin & Lin: every three-task system with density at
	// most 5/6 is schedulable, and the bound is tight (Example 1's
	// third system approaches density 5/6 from above as n grows and is
	// always infeasible). Validate the positive side empirically: the
	// portfolio must schedule every random three-task unit system with
	// density ≤ 5/6.
	rng := rand.New(rand.NewSource(101))
	checked := 0
	for trial := 0; trial < 400 && checked < 120; trial++ {
		sys := System{
			{A: 1, B: 2 + rng.Intn(12)},
			{A: 1, B: 2 + rng.Intn(18)},
			{A: 1, B: 2 + rng.Intn(24)},
		}
		if sys.Density() > 5.0/6.0+1e-9 {
			continue
		}
		sch, err := Solve(sys, nil)
		if err != nil {
			t.Fatalf("portfolio failed on 3-task system %v (density %.4f ≤ 5/6): %v",
				sys, sys.Density(), err)
		}
		if err := sch.Verify(sys); err != nil {
			t.Fatal(err)
		}
		checked++
	}
	if checked < 60 {
		t.Fatalf("only %d systems checked", checked)
	}
}
