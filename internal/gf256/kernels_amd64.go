//go:build amd64 && !purego

package gf256

// amd64 SIMD kernel selection. Both kernels use the PSHUFB
// nibble-table technique: the 32-byte nibTables entry of a coefficient
// is split into a low-nibble and a high-nibble 16-lane product table,
// each slice byte is split into nibbles, and two parallel table
// lookups plus one XOR yield 16 (SSSE3) or 32 (AVX2, two blocks per
// loop) products per step. The choice is made once at init from CPUID:
// AVX2 (with OS-enabled YMM state) beats SSSE3 beats the generic
// word-wide loop; Kernel reports the winner.

// Assembly kernels (gf256_amd64.s). n must be a positive multiple of
// the kernel's block size (16 for SSSE3, 32 for AVX2, 16 for the SSE2
// XOR); callers guarantee it by masking the slice length.
//
//pinlint:hotpath
//go:noescape
func gfMulSSSE3(tab *[32]byte, src, dst *byte, n int)

//pinlint:hotpath
//go:noescape
func gfMulAddSSSE3(tab *[32]byte, src, dst *byte, n int)

//pinlint:hotpath
//go:noescape
func gfMulAVX2(tab *[32]byte, src, dst *byte, n int)

//pinlint:hotpath
//go:noescape
func gfMulAddAVX2(tab *[32]byte, src, dst *byte, n int)

//pinlint:hotpath
//go:noescape
func gfXorSSE2(src, dst *byte, n int)

//pinlint:hotpath
//go:noescape
func gfXorAVX2(src, dst *byte, n int)

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

// kernelLevel enumerates the amd64 kernel choices, best last.
type kernelLevel int

const (
	kernelGeneric kernelLevel = iota
	kernelSSSE3
	kernelAVX2
)

var (
	kernel     kernelLevel
	kernelName string
)

func init() {
	kernel, kernelName = detectKernel()
}

// detectKernel probes CPUID for SSSE3 and AVX2 (the latter only counts
// when the OS has enabled YMM state via XSAVE, per the standard
// OSXSAVE + XCR0 check).
func detectKernel() (kernelLevel, string) {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 1 {
		return kernelGeneric, "purego"
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		ssse3Bit   = 1 << 9
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	hasSSSE3 := ecx1&ssse3Bit != 0
	if maxLeaf >= 7 && ecx1&osxsaveBit != 0 && ecx1&avxBit != 0 {
		xcr0, _ := xgetbv()
		ymmEnabled := xcr0&0x6 == 0x6 // XMM and YMM state saved by the OS
		_, ebx7, _, _ := cpuidex(7, 0)
		const avx2Bit = 1 << 5
		if ymmEnabled && ebx7&avx2Bit != 0 {
			return kernelAVX2, "avx2"
		}
	}
	if hasSSSE3 {
		return kernelSSSE3, "ssse3"
	}
	return kernelGeneric, "purego"
}

// setKernelForTest forces a kernel level (when the CPU supports it) so
// parity tests exercise every compiled path on one machine. It returns
// false when the requested kernel is unavailable. Test-only.
func setKernelForTest(name string) bool {
	detected, _ := detectKernel()
	var want kernelLevel
	switch name {
	case "avx2":
		want = kernelAVX2
	case "ssse3":
		want = kernelSSSE3
	case "purego":
		want = kernelGeneric
	default:
		return false
	}
	if want > detected {
		return false
	}
	kernel = want
	if want == kernelGeneric {
		kernelName = "purego"
	} else {
		kernelName = name
	}
	return true
}

// archMulSlice hands the aligned head of dst[i] = t[src[i]] to the
// active SIMD kernel and returns how many bytes it consumed.
//
//pinlint:hotpath
func archMulSlice(t *Table, src, dst []byte) int {
	switch kernel {
	case kernelAVX2:
		n := len(src) &^ 31
		if n == 0 {
			return 0
		}
		gfMulAVX2(&nibTables[t[1]], &src[0], &dst[0], n)
		return n
	case kernelSSSE3:
		n := len(src) &^ 15
		if n == 0 {
			return 0
		}
		gfMulSSSE3(&nibTables[t[1]], &src[0], &dst[0], n)
		return n
	}
	return 0
}

// archMulAddSlice hands the aligned head of dst[i] ^= t[src[i]] to the
// active SIMD kernel and returns how many bytes it consumed.
//
//pinlint:hotpath
func archMulAddSlice(t *Table, src, dst []byte) int {
	switch kernel {
	case kernelAVX2:
		n := len(src) &^ 31
		if n == 0 {
			return 0
		}
		gfMulAddAVX2(&nibTables[t[1]], &src[0], &dst[0], n)
		return n
	case kernelSSSE3:
		n := len(src) &^ 15
		if n == 0 {
			return 0
		}
		gfMulAddSSSE3(&nibTables[t[1]], &src[0], &dst[0], n)
		return n
	}
	return 0
}

// archXorSlice hands the aligned head of dst[i] ^= src[i] to the XOR
// kernel (SSE2 under the ssse3 kernel, AVX2 under avx2) and returns
// how many bytes it consumed. When the forced or detected kernel is
// the generic one, the whole slice goes to the pure-Go loop so the
// "purego" label always means exactly that.
//
//pinlint:hotpath
func archXorSlice(src, dst []byte) int {
	switch kernel {
	case kernelAVX2:
		n := len(src) &^ 31
		if n == 0 {
			return 0
		}
		gfXorAVX2(&src[0], &dst[0], n)
		return n
	case kernelSSSE3:
		n := len(src) &^ 15
		if n == 0 {
			return 0
		}
		gfXorSSE2(&src[0], &dst[0], n)
		return n
	}
	return 0
}
