//go:build arm64 && !purego

package gf256

// arm64 SIMD kernels. TBL (vector table lookup) is baseline ARMv8, so
// there is no feature detection: the NEON kernels are always active
// unless the purego tag removed them. The technique matches the amd64
// PSHUFB kernels — split nibble product tables, two lookups and an XOR
// per byte, 32 lanes per loop iteration.

// Assembly kernels (gf256_arm64.s). n must be a positive multiple of
// 32; callers guarantee it by masking the slice length.
//
//pinlint:hotpath
//go:noescape
func gfMulNEON(tab *[32]byte, src, dst *byte, n int)

//pinlint:hotpath
//go:noescape
func gfMulAddNEON(tab *[32]byte, src, dst *byte, n int)

//pinlint:hotpath
//go:noescape
func gfXorNEON(src, dst *byte, n int)

var kernelName = "neon"

// setKernelForTest forces the purego path (or restores neon) so parity
// tests exercise both compiled paths on one machine. Test-only.
func setKernelForTest(name string) bool {
	switch name {
	case "neon":
		kernelName = "neon"
		return true
	case "purego":
		kernelName = "purego"
		return true
	}
	return false
}

// archMulSlice hands the aligned head of dst[i] = t[src[i]] to the
// NEON kernel and returns how many bytes it consumed.
//
//pinlint:hotpath
func archMulSlice(t *Table, src, dst []byte) int {
	if kernelName != "neon" {
		return 0
	}
	n := len(src) &^ 31
	if n == 0 {
		return 0
	}
	gfMulNEON(&nibTables[t[1]], &src[0], &dst[0], n)
	return n
}

// archMulAddSlice hands the aligned head of dst[i] ^= t[src[i]] to the
// NEON kernel and returns how many bytes it consumed.
//
//pinlint:hotpath
func archMulAddSlice(t *Table, src, dst []byte) int {
	if kernelName != "neon" {
		return 0
	}
	n := len(src) &^ 31
	if n == 0 {
		return 0
	}
	gfMulAddNEON(&nibTables[t[1]], &src[0], &dst[0], n)
	return n
}

// archXorSlice hands the aligned head of dst[i] ^= src[i] to the NEON
// kernel and returns how many bytes it consumed.
//
//pinlint:hotpath
func archXorSlice(src, dst []byte) int {
	if kernelName != "neon" {
		return 0
	}
	n := len(src) &^ 31
	if n == 0 {
		return 0
	}
	gfXorNEON(&src[0], &dst[0], n)
	return n
}
