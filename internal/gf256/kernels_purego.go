//go:build purego || (!amd64 && !arm64)

package gf256

// This file is the no-assembly configuration: the `purego` build tag
// (or an architecture without SIMD kernels) compiles the bulk kernels
// down to the portable word-wide loops alone. The arch hooks consume
// nothing and hand every byte to the generic tails.

// kernelName identifies the active kernel for Kernel and the
// per-kernel benchmark series.
var kernelName = "purego"

// setKernelForTest matches the SIMD configurations' test hook; only
// the pure-Go kernel exists here.
func setKernelForTest(name string) bool { return name == "purego" }

//pinlint:hotpath
func archMulSlice(t *Table, src, dst []byte) int { return 0 }

//pinlint:hotpath
func archMulAddSlice(t *Table, src, dst []byte) int { return 0 }

//pinlint:hotpath
func archXorSlice(src, dst []byte) int { return 0 }
