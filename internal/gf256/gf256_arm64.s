//go:build arm64 && !purego

// GF(256) bulk kernels, arm64 NEON. The multiply kernels mirror the
// amd64 PSHUFB technique with TBL: tab points at a 32-byte table pair
// (16 low-nibble products, then 16 high-nibble products) and each byte
// b yields lo[b&15] ^ hi[b>>4] = c·b, 32 lanes per iteration. n is a
// positive multiple of 32; the Go wrappers mask slice lengths and the
// generic word-wide loop handles the tail.

#include "textflag.h"

// func gfMulNEON(tab *[32]byte, src, dst *byte, n int)
TEXT ·gfMulNEON(SB), NOSPLIT, $0-32
	MOVD tab+0(FP), R0
	MOVD src+8(FP), R1
	MOVD dst+16(FP), R2
	MOVD n+24(FP), R3
	VLD1 (R0), [V0.B16, V1.B16] // V0 = low-nibble table, V1 = high-nibble table
	MOVD $0x0f, R4
	VDUP R4, V2.B16             // nibble mask

neonMulLoop:
	VLD1.P 32(R1), [V3.B16, V4.B16]
	VUSHR  $4, V3.B16, V5.B16   // high nibbles
	VUSHR  $4, V4.B16, V6.B16
	VAND   V2.B16, V3.B16, V3.B16 // low nibbles
	VAND   V2.B16, V4.B16, V4.B16
	VTBL   V3.B16, [V0.B16], V7.B16
	VTBL   V4.B16, [V0.B16], V8.B16
	VTBL   V5.B16, [V1.B16], V9.B16
	VTBL   V6.B16, [V1.B16], V10.B16
	VEOR   V9.B16, V7.B16, V7.B16
	VEOR   V10.B16, V8.B16, V8.B16
	VST1.P [V7.B16, V8.B16], 32(R2)
	SUBS   $32, R3, R3
	BNE    neonMulLoop
	RET

// func gfMulAddNEON(tab *[32]byte, src, dst *byte, n int)
TEXT ·gfMulAddNEON(SB), NOSPLIT, $0-32
	MOVD tab+0(FP), R0
	MOVD src+8(FP), R1
	MOVD dst+16(FP), R2
	MOVD n+24(FP), R3
	VLD1 (R0), [V0.B16, V1.B16]
	MOVD $0x0f, R4
	VDUP R4, V2.B16

neonMulAddLoop:
	VLD1.P 32(R1), [V3.B16, V4.B16]
	VUSHR  $4, V3.B16, V5.B16
	VUSHR  $4, V4.B16, V6.B16
	VAND   V2.B16, V3.B16, V3.B16
	VAND   V2.B16, V4.B16, V4.B16
	VTBL   V3.B16, [V0.B16], V7.B16
	VTBL   V4.B16, [V0.B16], V8.B16
	VTBL   V5.B16, [V1.B16], V9.B16
	VTBL   V6.B16, [V1.B16], V10.B16
	VEOR   V9.B16, V7.B16, V7.B16
	VEOR   V10.B16, V8.B16, V8.B16
	VLD1   (R2), [V11.B16, V12.B16]
	VEOR   V11.B16, V7.B16, V7.B16 // accumulate into dst
	VEOR   V12.B16, V8.B16, V8.B16
	VST1.P [V7.B16, V8.B16], 32(R2)
	SUBS   $32, R3, R3
	BNE    neonMulAddLoop
	RET

// func gfXorNEON(src, dst *byte, n int)
TEXT ·gfXorNEON(SB), NOSPLIT, $0-24
	MOVD src+0(FP), R1
	MOVD dst+8(FP), R2
	MOVD n+16(FP), R3

neonXorLoop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VLD1   (R2), [V2.B16, V3.B16]
	VEOR   V2.B16, V0.B16, V0.B16
	VEOR   V3.B16, V1.B16, V1.B16
	VST1.P [V0.B16, V1.B16], 32(R2)
	SUBS   $32, R3, R3
	BNE    neonXorLoop
	RET
