//go:build amd64 && !purego

// GF(256) bulk kernels, amd64. All multiply kernels use the PSHUFB
// nibble-table technique: tab points at a 32-byte table pair — 16
// low-nibble products c·x, then 16 high-nibble products c·(x<<4) — and
// each input byte b yields lo[b&15] ^ hi[b>>4] = c·b, 16 lanes at a
// time (32 with AVX2). n is a positive multiple of the block size; the
// Go wrappers mask slice lengths before calling, and the generic
// word-wide loop handles the tail.

#include "textflag.h"

DATA nibMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $16

// func gfMulSSSE3(tab *[32]byte, src, dst *byte, n int)
TEXT ·gfMulSSSE3(SB), NOSPLIT, $0-32
	MOVQ  tab+0(FP), AX
	MOVQ  src+8(FP), SI
	MOVQ  dst+16(FP), DI
	MOVQ  n+24(FP), CX
	MOVOU (AX), X0           // low-nibble product table
	MOVOU 16(AX), X1         // high-nibble product table
	MOVOU nibMask<>(SB), X2  // 0x0f per lane

ssse3MulLoop:
	MOVOU  (SI), X3
	MOVOU  X3, X4
	PSRLW  $4, X4
	PAND   X2, X3            // low nibbles
	PAND   X2, X4            // high nibbles
	MOVOU  X0, X5
	PSHUFB X3, X5            // lo[b&15]
	MOVOU  X1, X6
	PSHUFB X4, X6            // hi[b>>4]
	PXOR   X6, X5
	MOVOU  X5, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNZ    ssse3MulLoop
	RET

// func gfMulAddSSSE3(tab *[32]byte, src, dst *byte, n int)
TEXT ·gfMulAddSSSE3(SB), NOSPLIT, $0-32
	MOVQ  tab+0(FP), AX
	MOVQ  src+8(FP), SI
	MOVQ  dst+16(FP), DI
	MOVQ  n+24(FP), CX
	MOVOU (AX), X0
	MOVOU 16(AX), X1
	MOVOU nibMask<>(SB), X2

ssse3MulAddLoop:
	MOVOU  (SI), X3
	MOVOU  X3, X4
	PSRLW  $4, X4
	PAND   X2, X3
	PAND   X2, X4
	MOVOU  X0, X5
	PSHUFB X3, X5
	MOVOU  X1, X6
	PSHUFB X4, X6
	PXOR   X6, X5
	MOVOU  (DI), X7
	PXOR   X7, X5            // accumulate into dst
	MOVOU  X5, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNZ    ssse3MulAddLoop
	RET

// func gfMulAVX2(tab *[32]byte, src, dst *byte, n int)
TEXT ·gfMulAVX2(SB), NOSPLIT, $0-32
	MOVQ           tab+0(FP), AX
	MOVQ           src+8(FP), SI
	MOVQ           dst+16(FP), DI
	MOVQ           n+24(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VBROADCASTI128 nibMask<>(SB), Y2
	CMPQ           CX, $64
	JB             avx2MulTail

avx2MulLoop64:
	VMOVDQU (SI), Y3
	VMOVDQU 32(SI), Y8
	VPSRLW  $4, Y3, Y4
	VPSRLW  $4, Y8, Y9
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPAND   Y2, Y8, Y8
	VPAND   Y2, Y9, Y9
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPSHUFB Y8, Y0, Y10
	VPSHUFB Y9, Y1, Y11
	VPXOR   Y6, Y5, Y5
	VPXOR   Y11, Y10, Y10
	VMOVDQU Y5, (DI)
	VMOVDQU Y10, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JAE     avx2MulLoop64

avx2MulTail:
	TESTQ CX, CX
	JZ    avx2MulDone

	// exactly one 32-byte block remains (n is a multiple of 32)
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR   Y6, Y5, Y5
	VMOVDQU Y5, (DI)

avx2MulDone:
	VZEROUPPER
	RET

// func gfMulAddAVX2(tab *[32]byte, src, dst *byte, n int)
TEXT ·gfMulAddAVX2(SB), NOSPLIT, $0-32
	MOVQ           tab+0(FP), AX
	MOVQ           src+8(FP), SI
	MOVQ           dst+16(FP), DI
	MOVQ           n+24(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VBROADCASTI128 nibMask<>(SB), Y2
	CMPQ           CX, $64
	JB             avx2MulAddTail

avx2MulAddLoop64:
	VMOVDQU (SI), Y3
	VMOVDQU 32(SI), Y8
	VPSRLW  $4, Y3, Y4
	VPSRLW  $4, Y8, Y9
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPAND   Y2, Y8, Y8
	VPAND   Y2, Y9, Y9
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPSHUFB Y8, Y0, Y10
	VPSHUFB Y9, Y1, Y11
	VPXOR   Y6, Y5, Y5
	VPXOR   Y11, Y10, Y10
	VPXOR   (DI), Y5, Y5
	VPXOR   32(DI), Y10, Y10
	VMOVDQU Y5, (DI)
	VMOVDQU Y10, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JAE     avx2MulAddLoop64

avx2MulAddTail:
	TESTQ CX, CX
	JZ    avx2MulAddDone

	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR   Y6, Y5, Y5
	VPXOR   (DI), Y5, Y5
	VMOVDQU Y5, (DI)

avx2MulAddDone:
	VZEROUPPER
	RET

// func gfXorSSE2(src, dst *byte, n int)
TEXT ·gfXorSSE2(SB), NOSPLIT, $0-24
	MOVQ src+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX

sse2XorLoop:
	MOVOU (SI), X0
	MOVOU (DI), X1
	PXOR  X1, X0
	MOVOU X0, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JNZ   sse2XorLoop
	RET

// func gfXorAVX2(src, dst *byte, n int)
TEXT ·gfXorAVX2(SB), NOSPLIT, $0-24
	MOVQ src+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX
	CMPQ CX, $64
	JB   avx2XorTail

avx2XorLoop64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JAE     avx2XorLoop64

avx2XorTail:
	TESTQ CX, CX
	JZ    avx2XorDone

	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)

avx2XorDone:
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
