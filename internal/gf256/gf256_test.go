package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if got := Add(0x53, 0xca); got != 0x53^0xca {
		t.Fatalf("Add(0x53, 0xca) = %#x, want %#x", got, 0x53^0xca)
	}
	if got := Sub(0x53, 0xca); got != Add(0x53, 0xca) {
		t.Fatalf("Sub != Add: %#x", got)
	}
}

func TestMulKnownValues(t *testing.T) {
	// Hand-checked products under polynomial 0x11d.
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{0, 7, 0},
		{1, 1, 1},
		{1, 0xff, 0xff},
		{2, 2, 4},
		{2, 0x80, 0x1d}, // 0x100 reduces by 0x11d
		{0x80, 0x80, MulSlow(0x80, 0x80)},
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulMatchesMulSlowExhaustive(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if Mul(byte(a), byte(b)) != MulSlow(byte(a), byte(b)) {
				t.Fatalf("Mul(%#x,%#x) != MulSlow", a, b)
			}
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvExhaustive(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("a=%#x: a·Inv(a) = %#x, want 1", a, got)
		}
	}
}

func TestDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Exp(Log(byte(a))); got != byte(a) {
			t.Fatalf("Exp(Log(%#x)) = %#x", a, got)
		}
	}
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpPeriod255(t *testing.T) {
	for e := 0; e < 255; e++ {
		if Exp(e) != Exp(e+255) {
			t.Fatalf("Exp not periodic at e=%d", e)
		}
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	// Powers of the generator must enumerate all 255 nonzero elements.
	seen := make(map[byte]bool)
	for e := 0; e < 255; e++ {
		seen[Exp(e)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator enumerates %d elements, want 255", len(seen))
	}
}

func TestPow(t *testing.T) {
	cases := []struct {
		a    byte
		e    int
		want byte
	}{
		{0, 0, 1},
		{0, 5, 0},
		{1, 100, 1},
		{2, 1, 2},
		{2, 8, MulSlow(MulSlow(MulSlow(2, 2), MulSlow(2, 2)), MulSlow(MulSlow(2, 2), MulSlow(2, 2)))},
	}
	for _, c := range cases {
		if got := Pow(c.a, c.e); got != c.want {
			t.Errorf("Pow(%#x, %d) = %#x, want %#x", c.a, c.e, got, c.want)
		}
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	for a := 0; a < 256; a += 7 {
		acc := byte(1)
		for e := 0; e < 20; e++ {
			if got := Pow(byte(a), e); got != acc {
				t.Fatalf("Pow(%#x, %d) = %#x, want %#x", a, e, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 0xff}
	dst := make([]byte, len(src))
	for _, c := range []byte{0, 1, 2, 0x1d, 0xff} {
		MulSlice(c, src, dst)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				t.Fatalf("MulSlice c=%#x i=%d: got %#x want %#x", c, i, dst[i], Mul(c, src[i]))
			}
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{5, 0, 9, 0xab}
	for _, c := range []byte{0, 1, 3} {
		dst := []byte{1, 2, 3, 4}
		want := make([]byte, len(dst))
		for i := range dst {
			want[i] = Add(dst[i], Mul(c, src[i]))
		}
		MulAddSlice(c, src, dst)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("MulAddSlice c=%#x i=%d: got %#x want %#x", c, i, dst[i], want[i])
			}
		}
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulSlice length mismatch did not panic")
		}
	}()
	MulSlice(1, make([]byte, 3), make([]byte, 4))
}

func BenchmarkMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8))
	}
	_ = acc
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(byte(i)|1, src, dst)
	}
}

func TestMulTableExhaustive(t *testing.T) {
	// The cached product tables are the foundation of every bulk kernel:
	// verify all 65536 entries against the shift-and-reduce oracle.
	for c := 0; c < 256; c++ {
		tab := MulTable(byte(c))
		for x := 0; x < 256; x++ {
			if got, want := tab[x], MulSlow(byte(c), byte(x)); got != want {
				t.Fatalf("MulTable(%#x)[%#x] = %#x, want %#x", c, x, got, want)
			}
		}
	}
}

// slowMulSlice and slowMulAddSlice are the byte-at-a-time reference
// implementations the vectorized kernels are checked against.
func slowMulSlice(c byte, src, dst []byte) {
	for i := range src {
		dst[i] = MulSlow(c, src[i])
	}
}

func slowMulAddSlice(c byte, src, dst []byte) {
	for i := range src {
		dst[i] ^= MulSlow(c, src[i])
	}
}

// kernelLengths exercises the unrolled word loop and the byte tail:
// empty, single byte, just below/at/above the 8-byte word, and larger
// non-multiple-of-8 sizes.
var kernelLengths = []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 1000}

func TestMulSliceMatchesSlowKernel(t *testing.T) {
	for _, n := range kernelLengths {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i*37 + 11)
		}
		for _, c := range []byte{0, 1, 2, 3, 0x1d, 0x80, 0xfe, 0xff} {
			got := make([]byte, n)
			want := make([]byte, n)
			MulSlice(c, src, got)
			slowMulSlice(c, src, want)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("MulSlice c=%#x len=%d i=%d: got %#x want %#x", c, n, i, got[i], want[i])
				}
			}
			gotT := make([]byte, n)
			MulSliceTable(MulTable(c), src, gotT)
			for i := range gotT {
				if gotT[i] != want[i] {
					t.Fatalf("MulSliceTable c=%#x len=%d i=%d: got %#x want %#x", c, n, i, gotT[i], want[i])
				}
			}
		}
	}
}

func TestMulAddSliceMatchesSlowKernel(t *testing.T) {
	for _, n := range kernelLengths {
		src := make([]byte, n)
		base := make([]byte, n)
		for i := range src {
			src[i] = byte(i*53 + 7)
			base[i] = byte(i * 101)
		}
		for _, c := range []byte{0, 1, 2, 3, 0x1d, 0x80, 0xfe, 0xff} {
			got := append([]byte(nil), base...)
			want := append([]byte(nil), base...)
			MulAddSlice(c, src, got)
			slowMulAddSlice(c, src, want)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("MulAddSlice c=%#x len=%d i=%d: got %#x want %#x", c, n, i, got[i], want[i])
				}
			}
			gotT := append([]byte(nil), base...)
			MulAddSliceTable(MulTable(c), src, gotT)
			for i := range gotT {
				if gotT[i] != want[i] {
					t.Fatalf("MulAddSliceTable c=%#x len=%d i=%d: got %#x want %#x", c, n, i, gotT[i], want[i])
				}
			}
		}
	}
}

func TestXorSliceMatchesSlowKernel(t *testing.T) {
	for _, n := range kernelLengths {
		src := make([]byte, n)
		got := make([]byte, n)
		want := make([]byte, n)
		for i := range src {
			src[i] = byte(i*29 + 3)
			got[i] = byte(i * 5)
			want[i] = got[i] ^ src[i]
		}
		XorSlice(src, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("XorSlice len=%d i=%d: got %#x want %#x", n, i, got[i], want[i])
			}
		}
	}
}

func TestMulSliceInPlaceAliasing(t *testing.T) {
	// gfmat.Invert scales rows in place: MulSlice must tolerate dst == src.
	for _, n := range kernelLengths {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i*19 + 1)
		}
		want := make([]byte, n)
		slowMulSlice(0x57, src, want)
		MulSlice(0x57, src, src)
		for i := range src {
			if src[i] != want[i] {
				t.Fatalf("in-place MulSlice len=%d i=%d: got %#x want %#x", n, i, src[i], want[i])
			}
		}
	}
}

// FuzzMulAddKernel cross-checks the word-unrolled kernels against the
// MulSlow oracle on arbitrary inputs (coefficient, contents, length —
// including lengths not a multiple of the 8-byte word).
func FuzzMulAddKernel(f *testing.F) {
	f.Add(byte(0x1d), []byte("seed input with odd length!"))
	f.Add(byte(0), []byte{})
	f.Add(byte(1), []byte{0xff})
	f.Fuzz(func(t *testing.T, c byte, src []byte) {
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = byte(i * 17)
		}
		want := append([]byte(nil), dst...)
		slowMulAddSlice(c, src, want)
		MulAddSlice(c, src, dst)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("MulAddSlice c=%#x len=%d i=%d: got %#x want %#x", c, len(src), i, dst[i], want[i])
			}
		}
		got2 := make([]byte, len(src))
		want2 := make([]byte, len(src))
		MulSlice(c, src, got2)
		slowMulSlice(c, src, want2)
		for i := range got2 {
			if got2[i] != want2[i] {
				t.Fatalf("MulSlice c=%#x len=%d i=%d: got %#x want %#x", c, len(src), i, got2[i], want2[i])
			}
		}
	})
}

func BenchmarkMulAddSliceTable(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 31)
	}
	tab := MulTable(0x8e)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSliceTable(tab, src, dst)
	}
}
