// Package gf256 implements arithmetic in the finite field GF(2⁸).
//
// The field is realized as polynomials over GF(2) modulo the primitive
// polynomial x⁸ + x⁴ + x³ + x² + 1 (0x11d), the polynomial commonly used
// by Reed–Solomon codes. Rabin's Information Dispersal Algorithm (package
// ida) performs all of its linear algebra over this field: addition is
// XOR, and multiplication is carried out through discrete exp/log tables
// so that a multiply costs two table lookups and one addition.
//
// All operations are total: Div and Inv panic on division by zero, which
// in this codebase always indicates a programming error (the dispersal
// matrices are constructed to be invertible).
//
// The bulk kernels MulSlice and MulAddSlice are the inner loops of every
// dispersal, reconstruction and matrix inversion in the system. They are
// table-driven: MulTable(c) yields the full 256-entry product table of a
// coefficient (64 KiB for all 256 tables, built once at init), turning a
// per-byte multiply into a single dependent load, and the loops assemble
// eight products at a time into a uint64 so the accumulate into dst is
// one word-wide XOR instead of eight read-modify-write byte stores.
// MulSlow remains the shift-and-reduce oracle the tables are verified
// against.
//
// On amd64 and arm64 the bulk of each slice is handed to
// architecture-specific SIMD kernels (kernels_amd64.go /
// kernels_arm64.go): PSHUFB/TBL nibble-table lookups process 16–64
// bytes per step using the split low/high-nibble product tables in
// nibTables. The kernel is selected once at init by CPU-feature
// detection (AVX2 → SSSE3 → generic on amd64; NEON is baseline on
// arm64) and Kernel reports the choice. Building with the `purego` tag
// removes the assembly entirely and keeps the word-wide pure-Go path,
// which also serves as the cross-check reference for the SIMD parity
// tests and fuzzers.
package gf256

import "encoding/binary"

// Poly is the primitive reduction polynomial for the field,
// x⁸ + x⁴ + x³ + x² + 1.
const Poly = 0x11d

// Generator is the primitive element whose powers enumerate the
// multiplicative group of the field.
const Generator = 0x02

// Table is the full product table of one fixed coefficient c:
// Table[x] = c·x for every field element x. Indexing a *Table by a byte
// never bounds-checks, which is what makes the bulk kernels fast.
type Table [256]byte

var (
	expTable [512]byte // expTable[i] = Generator^i, doubled to avoid mod 255
	logTable [256]byte // logTable[x] = i such that Generator^i == x (x != 0)

	// mulTables[c][x] = c·x. 64 KiB total, built once at init; every
	// MulTable call returns a pointer into this array, so per-coefficient
	// tables are cached process-wide and never recomputed.
	mulTables [256]Table

	// nibTables[c] is the split nibble form of mulTables[c] the SIMD
	// kernels consume: bytes 0–15 map a low nibble x to c·x, bytes 16–31
	// map a high nibble x to c·(x<<4), so c·b = lo[b&15] ^ hi[b>>4]. 8 KiB
	// total, built at init alongside the byte tables.
	nibTables [256][32]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for c := 1; c < 256; c++ {
		logC := int(logTable[c])
		t := &mulTables[c]
		for x := 1; x < 256; x++ {
			t[x] = expTable[logC+int(logTable[x])]
		}
	}
	for c := 0; c < 256; c++ {
		t := &mulTables[c]
		nt := &nibTables[c]
		for x := 0; x < 16; x++ {
			nt[x] = t[x]
			nt[16+x] = t[x<<4]
		}
	}
}

// MulTable returns the cached 256-entry product table of c: the returned
// table maps x to c·x. The table is shared and read-only; callers must
// not modify it. Holding the table amortizes the coefficient setup across
// many MulAddSlice calls with the same c (the per-row pattern of matrix
// encoding).
func MulTable(c byte) *Table { return &mulTables[c] }

// Add returns a + b in GF(2⁸). Addition and subtraction coincide.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a − b in GF(2⁸); identical to Add because the field has
// characteristic 2.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a · b in GF(2⁸).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// MulSlow multiplies by shift-and-reduce, without tables. It exists to
// cross-check the table construction in tests and as executable
// documentation of the field definition.
func MulSlow(a, b byte) byte {
	var p byte
	aa, bb := int(a), int(b)
	for bb > 0 {
		if bb&1 != 0 {
			p ^= byte(aa)
		}
		aa <<= 1
		if aa&0x100 != 0 {
			aa ^= Poly
		}
		bb >>= 1
	}
	return p
}

// Div returns a / b in GF(2⁸). It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns Generator^e for e ≥ 0.
func Exp(e int) byte {
	if e < 0 {
		panic("gf256: negative exponent")
	}
	return expTable[e%255]
}

// Log returns the discrete logarithm of a to base Generator.
// It panics if a is zero, which has no logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^e in GF(2⁸) for e ≥ 0, with 0⁰ defined as 1.
func Pow(a byte, e int) byte {
	if e < 0 {
		panic("gf256: negative exponent")
	}
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*e)%255]
}

// MulSlice sets dst[i] = c · src[i] for every i. dst and src must have the
// same length; dst may alias src. It is the inner loop of matrix-vector
// products in package gfmat and is kept allocation-free.
//
//pinlint:hotpath
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	mulSliceTable(&mulTables[c], src, dst)
}

// MulSliceTable sets dst[i] = t[src[i]] for a table obtained from
// MulTable — MulSlice with the coefficient lookup hoisted out.
//
//pinlint:hotpath
func MulSliceTable(t *Table, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSliceTable length mismatch")
	}
	mulSliceTable(t, src, dst)
}

//pinlint:hotpath
func mulSliceTable(t *Table, src, dst []byte) {
	k := archMulSlice(t, src, dst)
	if k < len(src) {
		mulSliceGeneric(t, src[k:], dst[k:])
	}
}

// mulSliceGeneric is the portable word-wide kernel: eight products
// assembled into a uint64 per store. It is the whole implementation
// under the purego build tag and the tail handler behind the SIMD
// kernels (which only consume multiples of their block size).
//
//pinlint:hotpath
func mulSliceGeneric(t *Table, src, dst []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		v := uint64(t[s[0]]) | uint64(t[s[1]])<<8 | uint64(t[s[2]])<<16 | uint64(t[s[3]])<<24 |
			uint64(t[s[4]])<<32 | uint64(t[s[5]])<<40 | uint64(t[s[6]])<<48 | uint64(t[s[7]])<<56
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for i := n; i < len(src); i++ {
		dst[i] = t[src[i]]
	}
}

// MulAddSlice sets dst[i] ^= c · src[i] for every i, accumulating a scaled
// row into dst. dst and src must have the same length.
//
//pinlint:hotpath
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(src, dst)
		return
	}
	mulAddSliceTable(&mulTables[c], src, dst)
}

// MulAddSliceTable sets dst[i] ^= t[src[i]] for a table obtained from
// MulTable — MulAddSlice with the coefficient lookup hoisted out, the
// form the ida encode rows use.
//
//pinlint:hotpath
func MulAddSliceTable(t *Table, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulAddSliceTable length mismatch")
	}
	mulAddSliceTable(t, src, dst)
}

//pinlint:hotpath
func mulAddSliceTable(t *Table, src, dst []byte) {
	k := archMulAddSlice(t, src, dst)
	if k < len(src) {
		mulAddSliceGeneric(t, src[k:], dst[k:])
	}
}

// mulAddSliceGeneric is the portable word-wide accumulate kernel; see
// mulSliceGeneric.
//
//pinlint:hotpath
func mulAddSliceGeneric(t *Table, src, dst []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		v := uint64(t[s[0]]) | uint64(t[s[1]])<<8 | uint64(t[s[2]])<<16 | uint64(t[s[3]])<<24 |
			uint64(t[s[4]])<<32 | uint64(t[s[5]])<<40 | uint64(t[s[6]])<<48 | uint64(t[s[7]])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:i+8])^v)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= t[src[i]]
	}
}

// XorSlice sets dst[i] ^= src[i] for every i — the c == 1 accumulate,
// eight bytes per XOR. dst and src must have the same length.
//
//pinlint:hotpath
func XorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: XorSlice length mismatch")
	}
	k := archXorSlice(src, dst)
	if k < len(src) {
		xorSliceGeneric(src[k:], dst[k:])
	}
}

// xorSliceGeneric is the portable eight-bytes-per-XOR loop; see
// mulSliceGeneric.
//
//pinlint:hotpath
func xorSliceGeneric(src, dst []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:i+8])^binary.LittleEndian.Uint64(src[i:i+8]))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// Kernel reports which bulk-kernel implementation is active:
// "avx2", "ssse3" (amd64), "neon" (arm64), or "purego" (the word-wide
// pure-Go path, selected by the purego build tag, by an architecture
// without assembly kernels, or by a CPU missing the required features).
func Kernel() string { return kernelName }
