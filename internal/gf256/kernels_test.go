package gf256

// Kernel parity suite: every compiled kernel (avx2/ssse3/neon and the
// generic word-wide path) must agree with the pure-Go reference —
// bit-exactly — on every coefficient, on unaligned heads, short tails
// and lengths straddling every SIMD block boundary. PSHUFB/TBL kernels
// break precisely at those edges, so the length set concentrates
// there. FuzzKernelParity extends the same diff to arbitrary
// fuzzer-chosen lengths and offsets.

import (
	"bytes"
	"fmt"
	"testing"
)

// testKernels returns the kernel names the running CPU can execute,
// always ending with "purego" (the reference).
func testKernels(t testing.TB) []string {
	prev := Kernel()
	t.Cleanup(func() { setKernelForTest(prev) })
	var out []string
	for _, name := range []string{"avx2", "ssse3", "neon"} {
		if setKernelForTest(name) {
			out = append(out, name)
		}
	}
	setKernelForTest(prev)
	return append(out, "purego")
}

// parityLengths straddles the 16/32/64-byte SIMD blocks and the 8-byte
// word of the generic loop, plus representative shard sizes.
var parityLengths = []int{
	0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 47, 48, 63, 64, 65,
	95, 96, 127, 128, 129, 255, 256, 257, 1023, 1024, 8192, 8193,
}

func TestKernelParityExhaustiveCoefficients(t *testing.T) {
	const n = 257 // crosses every block size with a scalar tail
	raw := make([]byte, n+4)
	for i := range raw {
		raw[i] = byte(i*37 + 11)
	}
	for _, kernel := range testKernels(t) {
		if !setKernelForTest(kernel) {
			t.Fatalf("kernel %s vanished mid-test", kernel)
		}
		for off := 0; off < 4; off++ { // unaligned heads
			src := raw[off : off+n]
			for c := 0; c < 256; c++ {
				got := make([]byte, n)
				want := make([]byte, n)
				MulSlice(byte(c), src, got)
				slowMulSlice(byte(c), src, want)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: MulSlice c=%#x off=%d diverges from MulSlow", kernel, c, off)
				}
				for i := range got {
					got[i] = byte(i * 5)
					want[i] = got[i]
				}
				MulAddSlice(byte(c), src, got)
				slowMulAddSlice(byte(c), src, want)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: MulAddSlice c=%#x off=%d diverges from MulSlow", kernel, c, off)
				}
			}
		}
	}
}

func TestKernelParityLengthsAndOffsets(t *testing.T) {
	max := 0
	for _, n := range parityLengths {
		if n > max {
			max = n
		}
	}
	raw := make([]byte, max+8)
	for i := range raw {
		raw[i] = byte(i*151 + 29)
	}
	coeffs := []byte{0, 1, 2, 3, 0x1d, 0x57, 0x8e, 0xfe, 0xff}
	for _, kernel := range testKernels(t) {
		if !setKernelForTest(kernel) {
			t.Fatalf("kernel %s vanished mid-test", kernel)
		}
		for _, n := range parityLengths {
			for off := 0; off < 3; off++ {
				src := raw[off : off+n]
				for _, c := range coeffs {
					got := make([]byte, n)
					want := make([]byte, n)
					MulSliceTable(MulTable(c), src, got)
					slowMulSlice(c, src, want)
					if !bytes.Equal(got, want) {
						t.Fatalf("%s: MulSliceTable c=%#x len=%d off=%d diverges", kernel, c, n, off)
					}
					for i := range got {
						got[i] = byte(i*13 + 1)
						want[i] = got[i]
					}
					MulAddSliceTable(MulTable(c), src, got)
					slowMulAddSlice(c, src, want)
					if !bytes.Equal(got, want) {
						t.Fatalf("%s: MulAddSliceTable c=%#x len=%d off=%d diverges", kernel, c, n, off)
					}
				}
				got := make([]byte, n)
				want := make([]byte, n)
				for i := range got {
					got[i] = byte(i * 3)
					want[i] = got[i] ^ src[i]
				}
				XorSlice(src, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: XorSlice len=%d off=%d diverges", kernel, n, off)
				}
			}
		}
	}
}

func TestKernelParityInPlace(t *testing.T) {
	// gfmat.Invert scales rows in place (dst == src): every kernel must
	// tolerate full aliasing.
	for _, kernel := range testKernels(t) {
		if !setKernelForTest(kernel) {
			t.Fatalf("kernel %s vanished mid-test", kernel)
		}
		for _, n := range parityLengths {
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(i*19 + 1)
			}
			want := make([]byte, n)
			slowMulSlice(0x57, buf, want)
			MulSlice(0x57, buf, buf)
			if !bytes.Equal(buf, want) {
				t.Fatalf("%s: in-place MulSlice len=%d diverges", kernel, n)
			}
		}
	}
}

func TestKernelReportsActive(t *testing.T) {
	name := Kernel()
	switch name {
	case "avx2", "ssse3", "neon", "purego":
	default:
		t.Fatalf("Kernel() = %q, not a known kernel", name)
	}
	t.Logf("active kernel: %s", name)
}

// FuzzKernelParity diffs every executable SIMD kernel against the
// pure-Go reference on fuzzer-chosen contents, coefficient, and head
// offset — the unaligned heads and short tails where PSHUFB-style
// kernels break.
func FuzzKernelParity(f *testing.F) {
	f.Add(byte(0x1d), uint8(1), []byte("seed input with odd length crossing a block"))
	f.Add(byte(0xff), uint8(0), bytes.Repeat([]byte{0xa5}, 97))
	f.Add(byte(0), uint8(3), []byte{})
	f.Fuzz(func(t *testing.T, c byte, off uint8, data []byte) {
		start := int(off % 8)
		if start > len(data) {
			start = len(data)
		}
		src := data[start:]
		kernels := testKernels(t)
		// The reference output comes from the forced pure-Go path.
		setKernelForTest("purego")
		wantMul := make([]byte, len(src))
		MulSlice(c, src, wantMul)
		wantAdd := make([]byte, len(src))
		for i := range wantAdd {
			wantAdd[i] = byte(i * 7)
		}
		MulAddSlice(c, src, wantAdd)
		wantXor := make([]byte, len(src))
		for i := range wantXor {
			wantXor[i] = byte(i * 11)
		}
		XorSlice(src, wantXor)
		for _, kernel := range kernels {
			if kernel == "purego" {
				continue
			}
			setKernelForTest(kernel)
			got := make([]byte, len(src))
			MulSlice(c, src, got)
			if !bytes.Equal(got, wantMul) {
				t.Fatalf("%s MulSlice diverges from purego: c=%#x len=%d start=%d", kernel, c, len(src), start)
			}
			gotAdd := make([]byte, len(src))
			for i := range gotAdd {
				gotAdd[i] = byte(i * 7)
			}
			MulAddSlice(c, src, gotAdd)
			if !bytes.Equal(gotAdd, wantAdd) {
				t.Fatalf("%s MulAddSlice diverges from purego: c=%#x len=%d start=%d", kernel, c, len(src), start)
			}
			gotXor := make([]byte, len(src))
			for i := range gotXor {
				gotXor[i] = byte(i * 11)
			}
			XorSlice(src, gotXor)
			if !bytes.Equal(gotXor, wantXor) {
				t.Fatalf("%s XorSlice diverges from purego: len=%d start=%d", kernel, len(src), start)
			}
		}
	})
}

// BenchmarkGF256Kernels reports MB/s per available kernel so the
// BENCH_dataplane.json artifact records which implementation ran. The
// 8 KiB slice matches the shard length of the 64 KiB (m=8) dataplane
// series.
func BenchmarkGF256Kernels(b *testing.B) {
	const size = 8 << 10
	src := make([]byte, size)
	dst := make([]byte, size)
	for i := range src {
		src[i] = byte(i*31 + 7)
	}
	tab := MulTable(0x8e)
	prev := Kernel()
	b.Cleanup(func() { setKernelForTest(prev) })
	for _, kernel := range testKernels(b) {
		if !setKernelForTest(kernel) {
			b.Fatalf("kernel %s vanished mid-benchmark", kernel)
		}
		b.Run(fmt.Sprintf("%s/MulAddSlice", kernel), func(b *testing.B) {
			b.SetBytes(size)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MulAddSliceTable(tab, src, dst)
			}
		})
		b.Run(fmt.Sprintf("%s/MulSlice", kernel), func(b *testing.B) {
			b.SetBytes(size)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MulSliceTable(tab, src, dst)
			}
		})
		b.Run(fmt.Sprintf("%s/XorSlice", kernel), func(b *testing.B) {
			b.SetBytes(size)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				XorSlice(src, dst)
			}
		})
	}
}
