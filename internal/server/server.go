// Package server implements the broadcast-disk server: it disperses the
// database files with AIDA and pumps blocks onto the channel following
// a broadcast program, rotating each file's dispersed blocks across the
// program data cycle (§2.3).
package server

import (
	"fmt"
	"hash/fnv"
	"math"

	"pinbcast/internal/bcerr"
	"pinbcast/internal/core"
	"pinbcast/internal/ida"
)

// Server holds the dispersed database and the broadcast program.
type Server struct {
	prog     *core.Program
	ids      []uint32 // per file: the stable broadcast identifier
	names    map[uint32]string
	blocks   [][]*ida.Block // per file: the N transmitted (AIDA-allocated) blocks
	payloads [][][]byte     // per file: the marshaled wire form of each block
}

// FileID returns the stable broadcast identifier for a named file: the
// FNV-32a hash of the name. Name-derived identifiers survive program
// rebuilds (admission, eviction, mode changes), so a client holding
// blocks of a file keeps accumulating across generations of the
// broadcast program. Unnamed files fall back to their table index.
func FileID(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// FileIDs derives the identifier table for a program and validates it:
// every file must map to a distinct uint32. A hash collision between
// two names — or a file table too large for the identifier space — is
// reported as a specification error rather than silently truncated.
func FileIDs(prog *core.Program) ([]uint32, error) {
	ids := make([]uint32, len(prog.Files))
	owner := make(map[uint32]int, len(prog.Files))
	for i, info := range prog.Files {
		if info.Name == "" {
			if uint64(i) > math.MaxUint32 {
				return nil, fmt.Errorf("server: file table has %d entries, exceeding the uint32 identifier space: %w",
					len(prog.Files), bcerr.ErrBadSpec)
			}
			ids[i] = uint32(i)
		} else {
			ids[i] = FileID(info.Name)
		}
		if prev, dup := owner[ids[i]]; dup {
			return nil, fmt.Errorf("server: file ID collision between %q and %q (id %d): %w",
				prog.Files[prev].Name, info.Name, ids[i], bcerr.ErrBadSpec)
		}
		owner[ids[i]] = i
	}
	return ids, nil
}

// New disperses contents (keyed by file name) according to the
// program's per-file (M, N) parameters. Every file of the program must
// have contents.
//
// Files sharing dispersal parameters are batch-encoded: one
// coefficient-major ida.DisperseBatch pass per distinct (M, N) pair
// streams each product table through the cache once for the whole
// group instead of once per file.
func New(prog *core.Program, contents map[string][]byte) (*Server, error) {
	ids, err := FileIDs(prog)
	if err != nil {
		return nil, err
	}
	s := &Server{
		prog:     prog,
		ids:      ids,
		names:    make(map[uint32]string, len(prog.Files)),
		blocks:   make([][]*ida.Block, len(prog.Files)),
		payloads: make([][][]byte, len(prog.Files)),
	}
	// Group the file table by (M, N), preserving table order within and
	// across groups so dispersal failures attribute deterministically.
	type encodeGroup struct {
		files []int    // indices into prog.Files
		datas [][]byte // contents, parallel to files
	}
	groups := make(map[[2]int]*encodeGroup)
	var order [][2]int
	for i, info := range prog.Files {
		s.names[ids[i]] = info.Name
		data, ok := contents[info.Name]
		if !ok {
			return nil, fmt.Errorf("server: no contents for file %q: %w", info.Name, bcerr.ErrBadSpec)
		}
		if len(data) == 0 {
			return nil, fmt.Errorf("server: dispersing %q: %w", info.Name, ida.ErrEmptyFile)
		}
		key := [2]int{info.M, info.N}
		g := groups[key]
		if g == nil {
			g = new(encodeGroup)
			groups[key] = g
			order = append(order, key)
		}
		g.files = append(g.files, i)
		g.datas = append(g.datas, data)
	}
	for _, key := range order {
		g := groups[key]
		codec, err := ida.Shared(key[0], key[1])
		if err != nil {
			return nil, fmt.Errorf("server: dispersing %q: %w", prog.Files[g.files[0]].Name, err)
		}
		payloads, err := codec.DisperseBatch(g.datas, nil)
		if err != nil {
			return nil, fmt.Errorf("server: dispersing %q: %w", prog.Files[g.files[0]].Name, err)
		}
		for k, i := range g.files {
			if err := s.addFile(i, ids[i], prog.Files[i], g.datas[k], payloads[k]); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// addFile wraps one file's dispersed payloads into self-identifying
// blocks, AIDA-allocates them across the full width N (the program
// already encodes the redundancy decision through its slot counts), and
// caches the marshaled wire forms.
func (s *Server) addFile(i int, id uint32, info core.FileInfo, data []byte, payloads [][]byte) error {
	blocks := make([]*ida.Block, len(payloads))
	for seq, p := range payloads {
		blocks[seq] = &ida.Block{
			FileID:  id,
			Seq:     uint16(seq),
			M:       uint16(info.M),
			N:       uint16(info.N),
			Length:  uint32(len(data)),
			Payload: p,
		}
	}
	alloc, err := ida.Allocate(blocks, info.N)
	if err != nil {
		return fmt.Errorf("server: allocating %q: %w", info.Name, err)
	}
	s.blocks[i] = alloc.Blocks()
	// Blocks are immutable once allocated: marshal each one now so
	// the broadcast loop reuses the wire form instead of allocating
	// per slot. All wire forms of a file share one contiguous slab —
	// one allocation per file instead of one per block, laid out in
	// rotation order for the serve loop's access pattern.
	s.payloads[i] = make([][]byte, len(s.blocks[i]))
	slabLen := 0
	for _, blk := range s.blocks[i] {
		slabLen += blk.WireSize()
	}
	slab := make([]byte, 0, slabLen)
	for seq, blk := range s.blocks[i] {
		start := len(slab)
		slab = blk.MarshalInto(slab)
		s.payloads[i][seq] = slab[start:len(slab):len(slab)]
	}
	return nil
}

// Program returns the broadcast program the server follows.
func (s *Server) Program() *core.Program { return s.prog }

// ID returns the broadcast identifier of file i of the program table.
func (s *Server) ID(i int) uint32 { return s.ids[i] }

// Names returns the directory mapping broadcast identifiers to file
// names — the application metadata a client needs to resolve requests
// against the self-identifying block stream. The returned map is the
// server's own immutable directory (a Server never changes after New):
// callers share it and must treat it as read-only rather than receive a
// fresh copy per call.
func (s *Server) Names() map[uint32]string { return s.names }

// Emit returns the marshaled block transmitted in slot t, or nil for an
// idle slot. The returned slice is the server's cached wire form,
// shared across emissions of the same block — callers must copy before
// mutating (fault injectors do).
//
//pinlint:hotpath
func (s *Server) Emit(t int) []byte {
	file, seq := s.prog.BlockAt(t)
	if file == core.Idle {
		return nil
	}
	return s.payloads[file][seq]
}

// EmitBlock returns the unmarshaled block for slot t (for tests and
// in-process clients), or nil for idle.
//
//pinlint:hotpath
func (s *Server) EmitBlock(t int) *ida.Block {
	file, seq := s.prog.BlockAt(t)
	if file == core.Idle {
		return nil
	}
	return s.blocks[file][seq]
}
