// Package server implements the broadcast-disk server: it disperses the
// database files with AIDA and pumps blocks onto the channel following
// a broadcast program, rotating each file's dispersed blocks across the
// program data cycle (§2.3).
package server

import (
	"fmt"

	"pinbcast/internal/core"
	"pinbcast/internal/ida"
)

// Server holds the dispersed database and the broadcast program.
type Server struct {
	prog   *core.Program
	blocks [][]*ida.Block // per file: the N transmitted (AIDA-allocated) blocks
}

// New disperses contents (keyed by file name) according to the
// program's per-file (M, N) parameters. Every file of the program must
// have contents.
func New(prog *core.Program, contents map[string][]byte) (*Server, error) {
	s := &Server{prog: prog, blocks: make([][]*ida.Block, len(prog.Files))}
	for i, info := range prog.Files {
		data, ok := contents[info.Name]
		if !ok {
			return nil, fmt.Errorf("server: no contents for file %q", info.Name)
		}
		// Disperse into the full width N and allocate all N for
		// transmission (the program already encodes the redundancy
		// decision through its slot counts).
		blocks, err := ida.DisperseFile(uint32(i), data, info.M, info.N)
		if err != nil {
			return nil, fmt.Errorf("server: dispersing %q: %w", info.Name, err)
		}
		alloc, err := ida.Allocate(blocks, info.N)
		if err != nil {
			return nil, fmt.Errorf("server: allocating %q: %w", info.Name, err)
		}
		s.blocks[i] = alloc.Blocks()
	}
	return s, nil
}

// Program returns the broadcast program the server follows.
func (s *Server) Program() *core.Program { return s.prog }

// Emit returns the marshaled block transmitted in slot t, or nil for an
// idle slot.
func (s *Server) Emit(t int) []byte {
	file, seq := s.prog.BlockAt(t)
	if file == core.Idle {
		return nil
	}
	return s.blocks[file][seq].Marshal()
}

// EmitBlock returns the unmarshaled block for slot t (for tests and
// in-process clients), or nil for idle.
func (s *Server) EmitBlock(t int) *ida.Block {
	file, seq := s.prog.BlockAt(t)
	if file == core.Idle {
		return nil
	}
	return s.blocks[file][seq]
}
