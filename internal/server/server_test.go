package server

import (
	"errors"
	"testing"

	"pinbcast/internal/bcerr"
	"pinbcast/internal/core"
	"pinbcast/internal/ida"
)

func testProgram(t *testing.T) *core.Program {
	p, err := core.FlatSpread([]core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1, DispersalWidth: 10},
		{Name: "B", Blocks: 3, Latency: 1, DispersalWidth: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRequiresAllContents(t *testing.T) {
	if _, err := New(testProgram(t), map[string][]byte{"A": []byte("x")}); err == nil {
		t.Fatal("missing file contents accepted")
	}
}

func TestEmitFollowsProgram(t *testing.T) {
	prog := testProgram(t)
	srv, err := New(prog, map[string][]byte{
		"A": []byte("contents of file A for dispersal"),
		"B": []byte("contents of B"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 0; t0 < 48; t0++ {
		wantFile, wantSeq := prog.BlockAt(t0)
		blk := srv.EmitBlock(t0)
		if wantFile == core.Idle {
			if blk != nil {
				t.Fatalf("slot %d: expected idle", t0)
			}
			continue
		}
		if blk.FileID != srv.ID(wantFile) || int(blk.Seq) != wantSeq {
			t.Fatalf("slot %d: block (%d,%d), want (%d,%d)",
				t0, blk.FileID, blk.Seq, srv.ID(wantFile), wantSeq)
		}
	}
}

func TestEmitMarshalRoundTrip(t *testing.T) {
	srv, err := New(testProgram(t), map[string][]byte{
		"A": []byte("AAAA AAAA AAAA AAAA"),
		"B": []byte("BBBB BBBB"),
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := srv.Emit(0)
	blk, err := ida.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if blk.FileID != FileID("A") {
		t.Fatalf("first slot block file = %d, want id of %q", blk.FileID, "A")
	}
}

func TestServerBlocksReconstruct(t *testing.T) {
	data := map[string][]byte{
		"A": []byte("any five of the ten blocks reconstruct this"),
		"B": []byte("any three of six"),
	}
	srv, err := New(testProgram(t), data)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the first M blocks of file A as the program emits them.
	var got []*ida.Block
	for t0 := 0; len(got) < 5; t0++ {
		blk := srv.EmitBlock(t0)
		if blk != nil && blk.FileID == FileID("A") {
			got = append(got, blk)
		}
	}
	out, err := ida.ReconstructFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(data["A"]) {
		t.Fatalf("reconstructed %q", out)
	}
}

func TestFileIDsStableAndNamed(t *testing.T) {
	prog := testProgram(t)
	ids, err := FileIDs(prog)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != FileID("A") || ids[1] != FileID("B") {
		t.Fatalf("ids = %v, want name-derived", ids)
	}
	// The identifier of a named file must not depend on its table
	// position: rebuild the program with the files swapped.
	swapped, err := core.FlatSpread([]core.FileSpec{
		{Name: "B", Blocks: 3, Latency: 1, DispersalWidth: 6},
		{Name: "A", Blocks: 5, Latency: 1, DispersalWidth: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids2, err := FileIDs(swapped)
	if err != nil {
		t.Fatal(err)
	}
	if ids2[0] != ids[1] || ids2[1] != ids[0] {
		t.Fatalf("ids not stable under reordering: %v vs %v", ids, ids2)
	}
}

func TestFileIDCollisionRejected(t *testing.T) {
	// "costarring" and "liquid" are a classic FNV-32a collision pair.
	if FileID("costarring") != FileID("liquid") {
		t.Skip("collision pair no longer collides")
	}
	prog, err := core.FlatSpread([]core.FileSpec{
		{Name: "costarring", Blocks: 1, Latency: 1},
		{Name: "liquid", Blocks: 1, Latency: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog, map[string][]byte{
		"costarring": []byte("x"), "liquid": []byte("y"),
	}); err == nil {
		t.Fatal("colliding file IDs accepted")
	} else if !errors.Is(err, bcerr.ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}
