package server

import (
	"testing"

	"pinbcast/internal/core"
	"pinbcast/internal/ida"
)

func testProgram(t *testing.T) *core.Program {
	p, err := core.FlatSpread([]core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1, DispersalWidth: 10},
		{Name: "B", Blocks: 3, Latency: 1, DispersalWidth: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRequiresAllContents(t *testing.T) {
	if _, err := New(testProgram(t), map[string][]byte{"A": []byte("x")}); err == nil {
		t.Fatal("missing file contents accepted")
	}
}

func TestEmitFollowsProgram(t *testing.T) {
	prog := testProgram(t)
	srv, err := New(prog, map[string][]byte{
		"A": []byte("contents of file A for dispersal"),
		"B": []byte("contents of B"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 0; t0 < 48; t0++ {
		wantFile, wantSeq := prog.BlockAt(t0)
		blk := srv.EmitBlock(t0)
		if wantFile == core.Idle {
			if blk != nil {
				t.Fatalf("slot %d: expected idle", t0)
			}
			continue
		}
		if int(blk.FileID) != wantFile || int(blk.Seq) != wantSeq {
			t.Fatalf("slot %d: block (%d,%d), want (%d,%d)",
				t0, blk.FileID, blk.Seq, wantFile, wantSeq)
		}
	}
}

func TestEmitMarshalRoundTrip(t *testing.T) {
	srv, err := New(testProgram(t), map[string][]byte{
		"A": []byte("AAAA AAAA AAAA AAAA"),
		"B": []byte("BBBB BBBB"),
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := srv.Emit(0)
	blk, err := ida.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if blk.FileID != 0 {
		t.Fatalf("first slot block file = %d", blk.FileID)
	}
}

func TestServerBlocksReconstruct(t *testing.T) {
	data := map[string][]byte{
		"A": []byte("any five of the ten blocks reconstruct this"),
		"B": []byte("any three of six"),
	}
	srv, err := New(testProgram(t), data)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the first M blocks of file A as the program emits them.
	var got []*ida.Block
	for t0 := 0; len(got) < 5; t0++ {
		blk := srv.EmitBlock(t0)
		if blk != nil && blk.FileID == 0 {
			got = append(got, blk)
		}
	}
	out, err := ida.ReconstructFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(data["A"]) {
		t.Fatalf("reconstructed %q", out)
	}
}
