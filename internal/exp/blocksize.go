package exp

import (
	"fmt"
	"time"

	"pinbcast/internal/core"
	"pinbcast/internal/ida"
)

// BlockSizeTradeoff explores the open issue of §5: for a file of fixed
// byte size, a smaller block size b means a larger dispersal level m,
// which improves the error-recovery spacing δ and the bandwidth
// efficiency but raises the O(m²) dispersal/reconstruction cost. The
// table reports, per dispersal level, the resulting δ in a spread
// program, the per-retrieval fault coverage of a fixed 50% redundancy,
// and measured reconstruction time.
func BlockSizeTradeoff(fileBytes int, levels []int) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "§5 block-size tradeoff — dispersal level m vs δ and codec cost",
		Header: []string{"m", "block bytes", "N (50% red.)", "tolerated errs",
			"δ (slots)", "δ (bytes on air)", "reconstruct µs"},
	}
	for _, m := range levels {
		n := m + (m+1)/2 // 50% redundancy
		if n > 256 {
			return nil, fmt.Errorf("exp: dispersal level %d exceeds field limit", m)
		}
		blockBytes := (fileBytes + m - 1) / m
		// A spread program with a second file of equal demand, to make δ
		// meaningful.
		prog, err := core.FlatSpread([]core.FileSpec{
			{Name: "F", Blocks: m, Latency: 1, Faults: n - m, DispersalWidth: n},
			{Name: "G", Blocks: m, Latency: 1, Faults: n - m, DispersalWidth: n},
		})
		if err != nil {
			return nil, err
		}
		codec, err := ida.NewCodec(m, n)
		if err != nil {
			return nil, err
		}
		data := make([]byte, fileBytes)
		for i := range data {
			data[i] = byte(i)
		}
		payloads, err := codec.Disperse(data)
		if err != nil {
			return nil, err
		}
		shards := make([]ida.Shard, m)
		for i := 0; i < m; i++ {
			shards[i] = ida.Shard{Seq: n - 1 - i, Data: payloads[n-1-i]}
		}
		start := time.Now()
		const reps = 50
		for k := 0; k < reps; k++ {
			if _, err := codec.Reconstruct(shards, fileBytes); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start) / reps
		// One slot transmits one block, so the error-recovery distance in
		// transmitted bytes is δ·blockBytes: finer dispersal shortens it.
		t.AddRow(m, blockBytes, n, n-m, prog.MaxGap(0), prog.MaxGap(0)*blockBytes,
			elapsed.Microseconds())
	}
	t.Notes = append(t.Notes,
		"larger m: more tolerated errors and shorter recovery distance on air,",
		"at a higher O(m²) codec cost — the §5 tradeoff")
	return t, nil
}
