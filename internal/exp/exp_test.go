package exp

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestFigure5Values(t *testing.T) {
	tbl, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Spread layout: period 8, δ_A = 2, δ_B = 3 as in the paper.
	spread := tbl.Rows[1]
	if spread[1] != "8" || spread[3] != "2" || spread[4] != "3" {
		t.Fatalf("spread row = %v", spread)
	}
}

func TestFigure6Values(t *testing.T) {
	tbl, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, r := range tbl.Rows {
		got[r[0]] = r[1]
	}
	if got["broadcast period"] != "8" {
		t.Fatalf("period = %s", got["broadcast period"])
	}
	if got["program data cycle"] != "16" {
		t.Fatalf("data cycle = %s", got["program data cycle"])
	}
	if !strings.Contains(got["data cycle contents"], "A10'") {
		t.Fatalf("cycle missing rotated block: %s", got["data cycle contents"])
	}
}

func TestFigure7Values(t *testing.T) {
	tbl, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The without-IDA column reproduces the paper exactly: 0,8,16,24,…
	wantFlat := []string{"0", "8", "16", "24", "32", "40"}
	for i, row := range tbl.Rows {
		if row[3] != wantFlat[i] {
			t.Fatalf("row %d without-IDA = %s, want %s", i, row[3], wantFlat[i])
		}
	}
	// The with-IDA column is bounded by r·δ with δ = 3 for r ≤ 3.
	wantIDA := []string{"0", "3", "6", "8"}
	for i := 0; i < 4; i++ {
		if tbl.Rows[i][1] != wantIDA[i] {
			t.Fatalf("row %d with-IDA = %s, want %s", i, tbl.Rows[i][1], wantIDA[i])
		}
	}
}

func TestLemmaBounds(t *testing.T) {
	tbl, err := LemmaBounds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestEquation1OverheadCeiling(t *testing.T) {
	tbl, err := Equation1([]int{5, 15, 30}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		// The 43% claim concerns the 10/7 factor itself; the integral
		// bandwidth additionally pays a ceiling, pronounced for tiny
		// workloads. Check Eq 1 exactly: B = ⌈10/7 · necessary⌉.
		var necessary, eq1 float64
		if _, err := sscan(row[1], &necessary); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[2], &eq1); err != nil {
			t.Fatal(err)
		}
		if want := math.Ceil(10.0 / 7.0 * necessary); eq1 != want {
			t.Fatalf("Eq-1 bandwidth %v, want %v", eq1, want)
		}
		// Pre-rounding, the overhead is exactly 10/7 − 1 ≈ 42.9%.
		if unrounded := 10.0/7.0 - 1; unrounded > 0.43 {
			t.Fatalf("10/7 factor exceeds the 43%% claim: %v", unrounded)
		}
	}
}

func TestEquation2Monotone(t *testing.T) {
	tbl, err := Equation2(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range tbl.Rows {
		var b float64
		if _, err := sscan(row[2], &b); err != nil {
			t.Fatal(err)
		}
		if b < prev {
			t.Fatalf("Eq-2 bandwidth not monotone in r: %v after %v", b, prev)
		}
		prev = b
	}
}

func TestExample1Results(t *testing.T) {
	tbl, err := Example1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if !strings.HasPrefix(tbl.Rows[0][2], "schedulable") {
		t.Fatalf("system 1: %s", tbl.Rows[0][2])
	}
	if !strings.HasPrefix(tbl.Rows[1][2], "schedulable") {
		t.Fatalf("system 2: %s", tbl.Rows[1][2])
	}
	if tbl.Rows[2][2] != "infeasible (proved)" {
		t.Fatalf("system 3: %s", tbl.Rows[2][2])
	}
}

func TestExamples2to6NeverWorseThanPaper(t *testing.T) {
	// Examples2to6 itself errors if any conversion is worse than the
	// paper's; success plus row count is the assertion.
	tbl, err := Examples2to6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestDensitySweepShape(t *testing.T) {
	tbl, err := DensitySweep([]float64{0.4, 0.7}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	// At density 0.4, Sa must succeed on every trial (guarantee ≤ 0.5);
	// the portfolio must succeed everywhere up to 0.7.
	if tbl.Rows[0][1] != "10/10" {
		t.Fatalf("Sa at 0.4: %s", tbl.Rows[0][1])
	}
	last := len(tbl.Header) - 1
	for _, row := range tbl.Rows {
		if row[last] != "10/10" {
			t.Fatalf("portfolio at %s: %s", row[0], row[last])
		}
	}
}

func TestBlockSizeTradeoff(t *testing.T) {
	tbl, err := BlockSizeTradeoff(4096, []int{2, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 15 {
		t.Fatalf("tables = %d, want 15", len(tables))
	}
	for _, tbl := range tables {
		if s := tbl.String(); !strings.Contains(s, tbl.ID) {
			t.Fatalf("table %s renders without its ID", tbl.ID)
		}
	}
}

// sscan parses a float from a cell.
func sscan(s string, f *float64) (int, error) {
	return fmt.Sscan(s, f)
}

func TestPerFileFaultsTable(t *testing.T) {
	tbl, err := PerFileFaults(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The no-fault-tolerance policy must need the least bandwidth.
	var none, uniform float64
	for _, row := range tbl.Rows {
		var v float64
		if _, err := sscan(row[1], &v); err != nil {
			t.Fatal(err)
		}
		switch row[0] {
		case "no fault tol.":
			none = v
		case "uniform r=2":
			uniform = v
		}
	}
	if none >= uniform {
		t.Fatalf("no-fault necessary %v not below uniform-r %v", none, uniform)
	}
}
