// Package exp regenerates every table and figure of the paper's
// evaluation (the experiment index of DESIGN.md): the broadcast-program
// figures 5 and 6, the worst-case delay table of figure 7, the
// bandwidth bounds of equations 1 and 2, the pinwheel systems of
// example 1, the algebra conversions of examples 2–6, the scheduler
// density sweep behind §3.1's bounds, and the §5 block-size tradeoff.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // experiment id from DESIGN.md, e.g. "E3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
