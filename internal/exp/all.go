package exp

// All runs every experiment with default parameters, in DESIGN.md index
// order. It is what cmd/experiments prints and what EXPERIMENTS.md
// records.
func All() ([]*Table, error) {
	var tables []*Table
	run := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		tables = append(tables, t)
		return nil
	}
	if err := run(Figure5()); err != nil {
		return nil, err
	}
	if err := run(Figure6()); err != nil {
		return nil, err
	}
	if err := run(Figure7()); err != nil {
		return nil, err
	}
	if err := run(LemmaBounds(6, 1)); err != nil {
		return nil, err
	}
	if err := run(Equation1([]int{5, 10, 20, 40, 80}, 2)); err != nil {
		return nil, err
	}
	if err := run(Equation2(8, 3)); err != nil {
		return nil, err
	}
	if err := run(PerFileFaults(4)); err != nil {
		return nil, err
	}
	if err := run(Example1()); err != nil {
		return nil, err
	}
	if err := run(Examples2to6()); err != nil {
		return nil, err
	}
	if err := run(DensitySweep([]float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}, 40, 5)); err != nil {
		return nil, err
	}
	if err := run(BlockSizeTradeoff(16384, []int{2, 4, 8, 16, 32, 64})); err != nil {
		return nil, err
	}
	if err := run(CachePolicies(4000, 9)); err != nil {
		return nil, err
	}
	if err := run(MultidiskVsPinwheel()); err != nil {
		return nil, err
	}
	if err := run(AirIndexTradeoff([]int{1, 2, 4, 8})); err != nil {
		return nil, err
	}
	if err := run(SchedulerDeltaAblation()); err != nil {
		return nil, err
	}
	return tables, nil
}
