package exp

import (
	"errors"
	"fmt"
	"math/rand"

	"pinbcast/internal/algebra"
	"pinbcast/internal/pinwheel"
)

// Example1 regenerates the three pinwheel systems of Example 1,
// including the provably infeasible three-task system.
func Example1() (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Example 1 — pinwheel task systems",
		Header: []string{"system", "density", "result", "schedule (one period)"},
	}
	cases := []struct {
		sys  pinwheel.System
		note string
	}{
		{pinwheel.System{{A: 1, B: 2}, {A: 1, B: 3}}, "paper: 1,2,1,2,…"},
		{pinwheel.System{{A: 2, B: 5}, {A: 1, B: 3}}, "paper: 1,2,1,⊔,2,…"},
		{pinwheel.System{{A: 1, B: 2}, {A: 1, B: 3}, {A: 1, B: 12}}, "paper: infeasible for any n"},
	}
	for _, c := range cases {
		sch, err := pinwheel.Solve(c.sys, nil)
		switch {
		case err == nil:
			t.AddRow(c.sys.String(), c.sys.Density(), "schedulable ("+sch.Origin+")", sch.String())
		case errors.Is(err, pinwheel.ErrInfeasible):
			t.AddRow(c.sys.String(), c.sys.Density(), "infeasible (proved)", "—")
		default:
			return nil, err
		}
	}
	return t, nil
}

// Examples2to6 regenerates the algebra conversion table of §4.2: for
// each example condition, the density lower bound, TR1's and TR2's
// densities, the best conversion found, and the paper's reported best.
func Examples2to6() (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Examples 2–6 — conversion to nice pinwheel conjuncts",
		Header: []string{"example", "bc condition", "lower bound", "TR1", "TR2",
			"best found", "density", "paper best"},
	}
	cases := []struct {
		name  string
		bc    algebra.BC
		paper float64
	}{
		{"Ex. 2", algebra.BC{Task: "i", M: 5, D: []int{100, 105, 110, 115, 120}}, 1.0 / 13},
		{"Ex. 3", algebra.BC{Task: "i", M: 6, D: []int{105, 110}}, 6.0/105 + 1.0/110},
		{"Ex. 4", algebra.BC{Task: "i", M: 4, D: []int{8, 9}}, 0.6},
		{"Ex. 5", algebra.BC{Task: "i", M: 2, D: []int{5, 6, 6}}, 2.0 / 3},
		{"Ex. 6", algebra.BC{Task: "i", M: 1, D: []int{2, 3}}, 2.0 / 3},
	}
	for _, c := range cases {
		rep, err := algebra.Report(c.bc)
		if err != nil {
			return nil, err
		}
		if rep.BestDensity > c.paper+1e-9 {
			return nil, fmt.Errorf("exp: %s conversion (%.4f) worse than paper (%.4f)",
				c.name, rep.BestDensity, c.paper)
		}
		tr1 := "—"
		if rep.TR1Density >= 0 {
			tr1 = fmt.Sprintf("%.4f", rep.TR1Density)
		}
		tr2 := "—"
		if rep.TR2Density >= 0 {
			tr2 = fmt.Sprintf("%.4f", rep.TR2Density)
		}
		t.AddRow(c.name, c.bc.String(), rep.LowerBound, tr1, tr2,
			rep.Best.String(), rep.BestDensity, c.paper)
	}
	t.Notes = append(t.Notes,
		"Ex. 4: the systematic converter finds pc(5,9) at density 5/9 ≈ 0.5556,",
		"matching the lower bound and beating the paper's best of 0.6")
	return t, nil
}

// DensitySweep regenerates the §3.1 schedulability-bounds picture
// empirically: for random unit-task systems of increasing density, the
// success rate of each scheduler. Holte et al. guarantee density ≤ 1/2
// (Sa); Chan & Chin ≤ 7/10; the portfolio reaches further.
func DensitySweep(densities []float64, trials int, seed int64) (*Table, error) {
	schedulers := pinwheel.Schedulers()
	header := []string{"density"}
	for _, s := range schedulers {
		header = append(header, s.Name+" success")
	}
	t := &Table{
		ID:     "E9",
		Title:  "§3.1 density bounds — scheduler success rate vs density",
		Header: header,
	}
	rng := rand.New(rand.NewSource(seed))
	for _, d := range densities {
		row := []interface{}{fmt.Sprintf("%.2f", d)}
		for _, s := range schedulers {
			ok := 0
			for k := 0; k < trials; k++ {
				sys := randomUnitSystem(rng, 3+k%6, d)
				sch, err := s.Run(sys)
				if err == nil {
					if verr := sch.Verify(sys); verr != nil {
						return nil, fmt.Errorf("exp: %s produced invalid schedule: %w", s.Name, verr)
					}
					ok++
				}
			}
			row = append(row, fmt.Sprintf("%d/%d", ok, trials))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"Sa is total up to density 0.5 (Holte et al.); the portfolio covers every",
		"Chan–Chin-feasible (≤ 0.7) instance in these sweeps, matching the paper's usage")
	return t, nil
}

// randomUnitSystem builds a random unit-task system with total density
// close to d.
func randomUnitSystem(rng *rand.Rand, n int, d float64) pinwheel.System {
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.2 + rng.Float64()
		sum += weights[i]
	}
	sys := make(pinwheel.System, n)
	for i := range sys {
		share := d * weights[i] / sum
		b := int(1.0/share + 0.5)
		if b < 2 {
			b = 2
		}
		sys[i] = pinwheel.Task{A: 1, B: b}
	}
	return sys
}
