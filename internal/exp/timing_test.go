package exp

import (
	"testing"
	"time"
)

func TestTimings(t *testing.T) {
	steps := []struct {
		name string
		run  func() error
	}{
		{"Figure5", func() error { _, err := Figure5(); return err }},
		{"Figure6", func() error { _, err := Figure6(); return err }},
		{"Figure7", func() error { _, err := Figure7(); return err }},
		{"LemmaBounds", func() error { _, err := LemmaBounds(6, 1); return err }},
		{"Equation1", func() error { _, err := Equation1([]int{5, 10, 20, 40, 80}, 2); return err }},
		{"Equation2", func() error { _, err := Equation2(8, 3); return err }},
		{"PerFileFaults", func() error { _, err := PerFileFaults(4); return err }},
		{"Example1", func() error { _, err := Example1(); return err }},
		{"Examples2to6", func() error { _, err := Examples2to6(); return err }},
		{"DensitySweep", func() error { _, err := DensitySweep([]float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}, 40, 5); return err }},
		{"BlockSize", func() error { _, err := BlockSizeTradeoff(16384, []int{2, 4, 8, 16, 32, 64}); return err }},
	}
	for _, s := range steps {
		start := time.Now()
		if err := s.run(); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		t.Logf("%-14s %v", s.name, time.Since(start))
	}
}
