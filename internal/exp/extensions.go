package exp

import (
	"fmt"
	"math/rand"

	"pinbcast"
	"pinbcast/internal/airindex"
	"pinbcast/internal/cache"
	"pinbcast/internal/core"
	"pinbcast/internal/pinwheel"
)

// Extension experiments beyond the paper's own tables: the related-work
// systems §1 cites (client caching, multi-disk layouts, indexing on
// air) built and measured against the pinwheel construction, plus an
// ablation of the scheduler portfolio's effect on error-recovery
// spacing.

// CachePolicies (E11) compares replacement policies on a skewed
// broadcast program for a client whose preferences deviate from the
// broadcast profile — the setting of §1's cache-management citations.
func CachePolicies(queries int, seed int64) (*Table, error) {
	files := []core.FileSpec{
		{Name: "hot", Blocks: 1, Latency: 2},
		{Name: "warm", Blocks: 1, Latency: 8},
		{Name: "cool", Blocks: 1, Latency: 16},
		{Name: "cold-1", Blocks: 1, Latency: 32},
		{Name: "cold-2", Blocks: 1, Latency: 32},
		{Name: "cold-3", Blocks: 1, Latency: 32},
	}
	prog, err := core.BuildProgram(files, 1)
	if err != nil {
		return nil, err
	}
	freqs := cache.BroadcastFrequencies(prog)
	ranking := []int{5, 4, 3, 2, 1, 0} // client loves what the disk spins slowest
	t := &Table{
		ID:     "E11",
		Title:  "client cache management — policy vs hit ratio and latency",
		Header: []string{"policy", "hit ratio", "mean latency", "max latency"},
	}
	policies := []cache.Policy{
		cache.NewLRU(),
		cache.NewLFU(),
		cache.NewPIX(freqs),
		cache.NewRandom(rand.New(rand.NewSource(seed))),
	}
	for _, p := range policies {
		rep, err := cache.SimulateAccess(cache.AccessConfig{
			Program:  prog,
			Capacity: 2,
			Policy:   p,
			Queries:  queries,
			ZipfS:    1.7,
			Ranking:  ranking,
			Seed:     seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(rep.Policy, rep.HitRatio(), rep.MeanLatency, rep.MaxLatency)
	}
	// Prefetching (§1's other client-side citation) on top of PIX
	// valuation.
	for _, prefetch := range []bool{false, true} {
		rep, err := cache.SimulatePrefetch(cache.PrefetchConfig{
			Program:  prog,
			Capacity: 2,
			Queries:  queries,
			ZipfS:    1.7,
			Ranking:  ranking,
			Seed:     seed,
			Prefetch: prefetch,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(rep.Policy, rep.HitRatio(), rep.MeanLatency, rep.MaxLatency)
	}
	t.Notes = append(t.Notes,
		"PIX weighs access probability against broadcast frequency (Acharya et al.);",
		"it keeps the rarely-broadcast items this client loves; prefetching fills the",
		"cache from passing traffic without paying misses")
	return t, nil
}

// MultidiskVsPinwheel (E12) contrasts the average-latency-optimal
// tiered layout with the worst-case-bounded pinwheel layout on the
// same workload — the paper's §1 motivation made quantitative, driven
// through the public Layout seam exactly as an application would.
func MultidiskVsPinwheel() (*Table, error) {
	files := []pinbcast.FileSpec{
		{Name: "hot", Blocks: 2, Latency: 4},
		{Name: "warm", Blocks: 4, Latency: 16},
		{Name: "cold-a", Blocks: 4, Latency: 32},
		{Name: "cold-b", Blocks: 4, Latency: 32},
	}
	// The classic hand-tiering of AFZ '95: spin ratios 4/2/1 chosen for
	// the skew, deaf to the latency windows. (AutoTier — the "tiered"
	// layout — picks 8/2/1 here, which happens to meet every window on
	// this workload; the explicit tiers keep the paper's contrast sharp.)
	disks := []pinbcast.Disk{
		{Frequency: 4, Files: files[:1]},
		{Frequency: 2, Files: files[1:2]},
		{Frequency: 1, Files: files[2:]},
	}
	md, err := pinbcast.BuildTiered(disks)
	if err != nil {
		return nil, err
	}
	bw, err := pinbcast.MinBandwidth(files)
	if err != nil {
		return nil, err
	}
	pw, err := pinbcast.Build(pinbcast.BuildConfig{Files: files, Bandwidth: bw})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E12",
		Title: "tiered (avg-optimal) vs pinwheel (worst-case-bounded) layouts",
		Header: []string{"file", "window B·T", "tiered mean", "tiered worst",
			"pinwheel mean", "pinwheel worst", "pinwheel within window"},
	}
	for i, f := range files {
		mdMean, mdWorst := pinbcast.LatencyProfile(md, i)
		pwMean, pwWorst := pinbcast.LatencyProfile(pw, i)
		window := bw * f.Latency
		if pwWorst > window {
			return nil, fmt.Errorf("exp: pinwheel worst %d exceeds window %d for %s",
				pwWorst, window, f.Name)
		}
		t.AddRow(f.Name, window, mdMean, mdWorst, pwMean, pwWorst, pwWorst <= window)
	}
	t.Notes = append(t.Notes,
		"the tiered multi-disk layout minimizes skew-weighted mean latency but bounds",
		"nothing; the pinwheel program keeps every file inside its real-time window")
	return t, nil
}

// AirIndexTradeoff (E13) sweeps the (1, m) index-copy count and reports
// the latency/tuning tradeoff versus the paper's self-identifying
// continuous-listening client (footnote 3).
func AirIndexTradeoff(copies []int) (*Table, error) {
	files := make([]core.FileSpec, 8)
	for i := range files {
		files[i] = core.FileSpec{Name: fmt.Sprintf("f%d", i), Blocks: 2, Latency: 1}
	}
	base, err := core.FlatSpread(files)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E13",
		Title: "indexing on air — (1,m) copies vs latency and tuning time",
		Header: []string{"index copies", "overhead", "mean latency", "mean tuning",
			"continuous latency", "continuous tuning"},
	}
	for _, m := range copies {
		p, err := airindex.Build(base, m)
		if err != nil {
			return nil, err
		}
		lat, tun := p.Sweep(0, 2)
		rawLat, rawTun := p.SweepUnindexed(0, 2)
		t.AddRow(m, p.Overhead(), lat, tun, rawLat, rawTun)
	}
	t.Notes = append(t.Notes,
		"more copies cut tuning (energy) at a small latency overhead; the continuous",
		"client pays its whole latency in tuning — the tradeoff behind footnote 3")
	return t, nil
}

// SchedulerDeltaAblation (E14) measures how the choice of scheduler
// affects the error-recovery spacing δ (Lemma 2's constant): different
// verified schedules for the same system place file slots differently.
func SchedulerDeltaAblation() (*Table, error) {
	files := []core.FileSpec{
		{Name: "A", Blocks: 2, Latency: 8, Faults: 1},
		{Name: "B", Blocks: 1, Latency: 6, Faults: 1},
		{Name: "C", Blocks: 3, Latency: 24},
	}
	bw := core.SufficientBandwidth(files)
	sys := core.TaskSystem(files, bw)
	t := &Table{
		ID:     "E14",
		Title:  "ablation — scheduler choice vs error-recovery spacing δ",
		Header: []string{"scheduler", "period", "δ_A", "δ_B", "δ_C", "utilization"},
	}
	for _, ns := range pinwheel.Schedulers() {
		sch, err := ns.Run(sys)
		if err != nil {
			t.AddRow(ns.Name, "—", "—", "—", "—", "—")
			continue
		}
		if err := sch.Verify(sys); err != nil {
			return nil, err
		}
		t.AddRow(ns.Name, sch.Period, sch.MaxGap(0), sch.MaxGap(1), sch.MaxGap(2),
			sch.Utilization())
	}
	t.Notes = append(t.Notes,
		"all schedules satisfy the same windows; EDF packs grants just-in-time while",
		"chain schedulers pin residue classes — δ (and so fault recovery) differs")
	return t, nil
}
