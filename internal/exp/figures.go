package exp

import (
	"fmt"

	"pinbcast/internal/core"
)

// fig5Files returns the paper's running example: file A of 5 blocks and
// file B of 3, no dispersal.
func fig5Files() []core.FileSpec {
	return []core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1},
		{Name: "B", Blocks: 3, Latency: 1},
	}
}

// fig6Files disperses A into 10 blocks and B into 6, as in Figure 6.
func fig6Files() []core.FileSpec {
	return []core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1, DispersalWidth: 10},
		{Name: "B", Blocks: 3, Latency: 1, DispersalWidth: 6},
	}
}

// Figure5 regenerates the flat broadcast program of Figure 5: two
// layouts (sequential and spread), their periods and per-file maximum
// gaps δ.
func Figure5() (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Figure 5 — flat broadcast program (A: 5 blocks, B: 3 blocks)",
		Header: []string{"layout", "period τ", "program", "δ_A", "δ_B"},
	}
	for _, build := range []func([]core.FileSpec) (*core.Program, error){
		core.FlatSequential, core.FlatSpread,
	} {
		p, err := build(fig5Files())
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Origin, p.Period, p.String(), p.MaxGap(0), p.MaxGap(1))
	}
	t.Notes = append(t.Notes,
		"paper period τ = 8; paper layout interleaves with δ_A = 2, δ_B = 3 (spread layout)")
	return t, nil
}

// Figure6 regenerates the AIDA-based flat program of Figure 6: same
// broadcast period, but blocks rotate over the dispersed widths,
// yielding the 16-slot program data cycle.
func Figure6() (*Table, error) {
	p, err := core.FlatSpread(fig6Files())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E2",
		Title:  "Figure 6 — AIDA flat program (A: 5→10, B: 3→6)",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("broadcast period", p.Period)
	t.AddRow("program data cycle", p.DataCycle())
	t.AddRow("data cycle contents", p.RenderCycle(p.DataCycle()))
	t.AddRow("δ_A", p.MaxGap(0))
	t.AddRow("δ_B", p.MaxGap(1))
	t.Notes = append(t.Notes, "paper: period 8, data cycle 16; every dispersed block appears once per cycle")
	return t, nil
}

// Figure7 regenerates the worst-case delay comparison of Figure 7 and
// sets it against the paper's reported estimates.
func Figure7() (*Table, error) {
	aida, err := core.FlatSpread(fig6Files())
	if err != nil {
		return nil, err
	}
	flat, err := core.FlatSpread(fig5Files())
	if err != nil {
		return nil, err
	}
	dt, err := core.BuildDelayTable(aida, flat, 3)
	if err != nil {
		return nil, err
	}
	paperIDA := []int{0, 3, 4, 6, 7, 8}
	paperFlat := []int{0, 8, 16, 24, 32, 40}
	t := &Table{
		ID:    "E3",
		Title: "Figure 7 — worst-case delay vs number of errors",
		Header: []string{"errors", "with IDA (measured)", "with IDA (paper)",
			"without IDA (measured)", "without IDA (paper)", "Lemma 2 bound r·δ"},
	}
	for i, r := range dt.Errors {
		t.AddRow(r, dt.WithIDA[i], paperIDA[r], dt.Without[i], paperFlat[r],
			core.Lemma2Bound(r, 3))
	}
	// Errors beyond file B's tolerance (N−M = 3): report file A alone,
	// which tolerates up to 5.
	for r := 4; r <= 5; r++ {
		d, err := core.AIDADelay(aida, 0, r)
		if err != nil {
			return nil, err
		}
		fd, err := core.FlatDelay(flat, 0, r)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d (file A only)", r), d, paperIDA[r], fd, paperFlat[r],
			core.Lemma2Bound(r, 2))
	}
	t.Notes = append(t.Notes,
		"measured = exact adversarial worst case under the delay definition of internal/core/delay.go",
		"the paper's with-IDA column is a coarser estimate; the reproduction targets are the",
		"without-IDA column (exact match), the r·δ bound, and the ≈τ/δ speedup")
	return t, nil
}

// LemmaBounds verifies Lemmas 1 and 2 on randomized spread programs and
// reports how tight the bounds are.
func LemmaBounds(trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "Lemmas 1 & 2 — delay bounds on random programs",
		Header: []string{"program", "file", "r", "measured", "bound", "tight"},
	}
	progs, err := randomPrograms(trials, seed)
	if err != nil {
		return nil, err
	}
	for pi, p := range progs {
		for i := range p.Files {
			maxR := p.Files[i].N - p.Files[i].M
			if maxR > 3 {
				maxR = 3
			}
			for r := 1; r <= maxR; r++ {
				d, err := core.AIDADelay(p, i, r)
				if err != nil {
					return nil, err
				}
				bound := core.Lemma2Bound(r, p.MaxGap(i))
				if d > bound {
					return nil, fmt.Errorf("exp: Lemma 2 violated: %d > %d", d, bound)
				}
				t.AddRow(fmt.Sprintf("random-%d", pi), p.Files[i].Name, r, d, bound, d == bound)
			}
		}
	}
	t.Notes = append(t.Notes, "every measured worst-case delay is within its lemma bound")
	return t, nil
}

func randomPrograms(n int, seed int64) ([]*core.Program, error) {
	progs := make([]*core.Program, 0, n)
	for k := 0; k < n; k++ {
		files := []core.FileSpec{
			{Name: "X", Blocks: 2 + k%4, Latency: 1, DispersalWidth: 2 + k%4 + 3},
			{Name: "Y", Blocks: 1 + k%3, Latency: 1, DispersalWidth: 1 + k%3 + 3},
			{Name: "Z", Blocks: 3, Latency: 1, DispersalWidth: 6},
		}
		p, err := core.FlatSpread(files)
		if err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}
	return progs, nil
}
