package exp

import (
	"fmt"

	"pinbcast/internal/core"
	"pinbcast/internal/workload"
)

// Equation1 regenerates the Eq-1 bandwidth sizing: for growing
// workloads, the necessary bandwidth Σ mᵢ/Tᵢ, the Eq-1 sufficient
// bandwidth ⌈10/7·Σ⌉, its overhead (paper: at most 43%), and the
// smallest bandwidth at which the scheduler portfolio actually builds a
// program.
func Equation1(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Equation 1 — bandwidth upper bound (no fault tolerance)",
		Header: []string{"files", "necessary Σm/T", "Eq-1 B", "Eq-1 overhead",
			"portfolio min B", "portfolio overhead"},
	}
	for _, n := range sizes {
		files := workload.Random(n, 6, 10, 120, 0, seed+int64(n))
		necessary := core.NecessaryBandwidth(files)
		eq1 := core.SufficientBandwidth(files)
		if float64(eq1) < necessary {
			return nil, fmt.Errorf("exp: Eq-1 bandwidth below necessary")
		}
		minB, err := core.MinBandwidth(files)
		if err != nil {
			return nil, err
		}
		if minB > eq1 {
			return nil, fmt.Errorf("exp: portfolio needed more than Eq-1 bandwidth (%d > %d)", minB, eq1)
		}
		t.AddRow(n, necessary, eq1, core.Overhead(files, eq1), minB, core.Overhead(files, minB))
	}
	t.Notes = append(t.Notes,
		"Eq-1 overhead stays below 43% + integer rounding; the portfolio often needs less")
	return t, nil
}

// Equation2 regenerates the fault-tolerant sizing of Eq 2: bandwidth as
// a function of the uniform fault tolerance r for a fixed workload.
func Equation2(maxR int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Equation 2 — bandwidth vs fault tolerance r",
		Header: []string{"r", "necessary Σ(m+r)/T", "Eq-2 B", "overhead",
			"portfolio min B"},
	}
	base := workload.Random(12, 6, 10, 120, 0, seed)
	for r := 0; r <= maxR; r++ {
		files := make([]core.FileSpec, len(base))
		copy(files, base)
		for i := range files {
			files[i].Faults = r
		}
		necessary := core.NecessaryBandwidth(files)
		eq2 := core.SufficientBandwidth(files)
		minB, err := core.MinBandwidth(files)
		if err != nil {
			return nil, err
		}
		if minB > eq2 {
			return nil, fmt.Errorf("exp: portfolio exceeded Eq-2 bandwidth at r=%d", r)
		}
		t.AddRow(r, necessary, eq2, core.Overhead(files, eq2), minB)
	}
	t.Notes = append(t.Notes, "bandwidth grows linearly in r, slope Σ 1/Tᵢ (Eq 2)")
	return t, nil
}

// PerFileFaults regenerates the per-file-rᵢ generalization at the end
// of §3.2: larger files tolerate more faults (rᵢ proportional to mᵢ).
func PerFileFaults(seed int64) (*Table, error) {
	t := &Table{
		ID:     "E6b",
		Title:  "§3.2 per-file fault tolerance rᵢ ∝ mᵢ",
		Header: []string{"policy", "necessary", "Eq-2 B", "overhead"},
	}
	base := workload.Random(12, 8, 10, 120, 0, seed)
	policies := map[string]func(m int) int{
		"uniform r=2":   func(int) int { return 2 },
		"r = ⌈m/4⌉":     func(m int) int { return (m + 3) / 4 },
		"r = ⌈m/2⌉":     func(m int) int { return (m + 1) / 2 },
		"no fault tol.": func(int) int { return 0 },
	}
	for _, name := range []string{"no fault tol.", "uniform r=2", "r = ⌈m/4⌉", "r = ⌈m/2⌉"} {
		files := make([]core.FileSpec, len(base))
		copy(files, base)
		for i := range files {
			files[i].Faults = policies[name](files[i].Blocks)
		}
		t.AddRow(name, core.NecessaryBandwidth(files), core.SufficientBandwidth(files),
			core.Overhead(files, core.SufficientBandwidth(files)))
	}
	return t, nil
}
