package exp

import (
	"strconv"
	"testing"
)

func TestCachePoliciesTable(t *testing.T) {
	tbl, err := CachePolicies(2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// PIX must post a mean latency no worse than any other policy
	// (frequency-oblivious LFU can tie it when popularity and broadcast
	// rarity coincide, as they do for this client).
	var pix float64 = -1
	means := map[string]float64{}
	for _, row := range tbl.Rows {
		var v float64
		if _, err := sscan(row[2], &v); err != nil {
			t.Fatal(err)
		}
		means[row[0]] = v
		if row[0] == "PIX" {
			pix = v
		}
	}
	if pix < 0 {
		t.Fatal("PIX row missing")
	}
	for _, name := range []string{"LRU", "LFU", "random"} {
		v, ok := means[name]
		if !ok {
			t.Fatalf("policy %s missing", name)
		}
		if pix > v+1e-9 {
			t.Fatalf("PIX (%.2f) worse than %s (%.2f)", pix, name, v)
		}
	}
	// Prefetching must not lose to its own demand-only baseline.
	if means["PIX + prefetch"] > means["PIX demand-only"]+1e-9 {
		t.Fatalf("prefetch (%.2f) worse than demand-only (%.2f)",
			means["PIX + prefetch"], means["PIX demand-only"])
	}
}

func TestMultidiskVsPinwheelTable(t *testing.T) {
	tbl, err := MultidiskVsPinwheel()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[6] != "true" {
			t.Fatalf("pinwheel violated a window: %v", row)
		}
	}
	// The multi-disk program must violate at least one window — the
	// paper's reason to exist.
	violated := false
	for _, row := range tbl.Rows {
		window, _ := strconv.Atoi(row[1])
		worst, _ := strconv.Atoi(row[3])
		if worst > window {
			violated = true
		}
	}
	if !violated {
		t.Fatal("multi-disk met every window; comparison lost its point")
	}
}

func TestAirIndexTradeoffTable(t *testing.T) {
	tbl, err := AirIndexTradeoff([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Overhead grows with copies; indexed tuning is always below the
	// continuous client's.
	prevOverhead := -1.0
	for _, row := range tbl.Rows {
		var overhead, tun, rawTun float64
		if _, err := sscan(row[1], &overhead); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[3], &tun); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[5], &rawTun); err != nil {
			t.Fatal(err)
		}
		if overhead <= prevOverhead {
			t.Fatalf("overhead not increasing: %v", row)
		}
		prevOverhead = overhead
		if tun >= rawTun {
			t.Fatalf("indexed tuning %v not below continuous %v", tun, rawTun)
		}
	}
}

func TestSchedulerDeltaAblationTable(t *testing.T) {
	tbl, err := SchedulerDeltaAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// At least two schedulers must produce different δ_A — otherwise
	// the ablation shows nothing.
	seen := map[string]bool{}
	for _, row := range tbl.Rows {
		seen[row[2]] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all schedulers produced identical δ_A: %v", seen)
	}
}
