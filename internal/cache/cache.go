// Package cache implements client cache management for broadcast
// disks. §1 of Baruah & Bestavros points at the client-side cache and
// prefetching questions studied by Acharya, Franklin & Zdonik: because
// a broadcast disk makes some pages cheap to re-fetch (they come around
// often) and others expensive, the right replacement policy weighs
// access probability *against broadcast frequency* — the classic PIX
// policy — rather than recency alone.
//
// The package provides an item cache with pluggable replacement
// policies (LRU, LFU, PIX, random) and a broadcast access simulator
// that measures hit ratios and mean retrieval latency for a query
// stream against a broadcast program.
package cache

import (
	"container/list"
	"fmt"
	"math/rand"
)

// Policy chooses replacement victims. Implementations keep their own
// bookkeeping; the cache calls OnHit/OnInsert/OnEvict to maintain it.
type Policy interface {
	Name() string
	// OnHit records an access to a cached key.
	OnHit(key string)
	// OnInsert records a newly cached key.
	OnInsert(key string)
	// Victim returns the key to evict; it must be a currently cached
	// key (one previously inserted and not yet evicted).
	Victim() string
	// OnEvict tells the policy a key has left the cache.
	OnEvict(key string)
}

// Cache is a fixed-capacity item cache.
type Cache struct {
	capacity int
	policy   Policy
	present  map[string]bool
}

// New returns a cache holding at most capacity items.
func New(capacity int, policy Policy) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("cache: capacity %d < 1", capacity)
	}
	if policy == nil {
		return nil, fmt.Errorf("cache: nil policy")
	}
	return &Cache{capacity: capacity, policy: policy, present: make(map[string]bool)}, nil
}

// Len returns the number of cached items.
func (c *Cache) Len() int { return len(c.present) }

// Contains reports whether key is cached, without touching policy state.
func (c *Cache) Contains(key string) bool { return c.present[key] }

// Get looks up key, updating policy state on a hit.
func (c *Cache) Get(key string) bool {
	if !c.present[key] {
		return false
	}
	c.policy.OnHit(key)
	return true
}

// Put inserts key (a no-op if already present), evicting if needed.
// It returns the evicted key, or "" if none.
func (c *Cache) Put(key string) string {
	if c.present[key] {
		return ""
	}
	evicted := ""
	if len(c.present) >= c.capacity {
		evicted = c.policy.Victim()
		if !c.present[evicted] {
			panic(fmt.Sprintf("cache: policy %s evicted absent key %q", c.policy.Name(), evicted))
		}
		delete(c.present, evicted)
		c.policy.OnEvict(evicted)
	}
	c.present[key] = true
	c.policy.OnInsert(key)
	return evicted
}

// LRU evicts the least recently used item.
type LRU struct {
	order *list.List               // front = most recent
	elem  map[string]*list.Element // key -> element
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU {
	return &LRU{order: list.New(), elem: make(map[string]*list.Element)}
}

// Name returns "LRU".
func (l *LRU) Name() string { return "LRU" }

// OnHit moves the key to the front.
func (l *LRU) OnHit(key string) {
	if e, ok := l.elem[key]; ok {
		l.order.MoveToFront(e)
	}
}

// OnInsert pushes the key to the front.
func (l *LRU) OnInsert(key string) { l.elem[key] = l.order.PushFront(key) }

// Victim returns the back of the list.
func (l *LRU) Victim() string { return l.order.Back().Value.(string) }

// OnEvict removes the key.
func (l *LRU) OnEvict(key string) {
	if e, ok := l.elem[key]; ok {
		l.order.Remove(e)
		delete(l.elem, key)
	}
}

// LFU evicts the least frequently used item (ties broken arbitrarily).
type LFU struct {
	count  map[string]int
	cached map[string]bool
}

// NewLFU returns an LFU policy.
func NewLFU() *LFU {
	return &LFU{count: make(map[string]int), cached: make(map[string]bool)}
}

// Name returns "LFU".
func (f *LFU) Name() string { return "LFU" }

// OnHit increments the key's frequency.
func (f *LFU) OnHit(key string) { f.count[key]++ }

// OnInsert starts the key at frequency 1.
func (f *LFU) OnInsert(key string) {
	f.count[key]++
	f.cached[key] = true
}

// Victim returns the cached key with the lowest count.
func (f *LFU) Victim() string {
	best, bestN := "", int(^uint(0)>>1)
	for k := range f.cached {
		if f.count[k] < bestN {
			best, bestN = k, f.count[k]
		}
	}
	return best
}

// OnEvict forgets cache membership (counts persist, as in classic LFU).
func (f *LFU) OnEvict(key string) { delete(f.cached, key) }

// PIX evicts the item with the lowest ratio of estimated access
// probability to broadcast frequency (Acharya et al.'s P-inverse-X):
// an item broadcast often is cheap to lose even when popular.
type PIX struct {
	// Frequency[key] is the item's broadcast frequency (slots per
	// period); items absent from the map default to 1.
	Frequency map[string]float64
	accesses  map[string]int
	total     int
	cached    map[string]bool
}

// NewPIX returns a PIX policy using the given broadcast frequencies.
func NewPIX(frequency map[string]float64) *PIX {
	return &PIX{
		Frequency: frequency,
		accesses:  make(map[string]int),
		cached:    make(map[string]bool),
	}
}

// Name returns "PIX".
func (p *PIX) Name() string { return "PIX" }

// OnHit updates the access estimate.
func (p *PIX) OnHit(key string) { p.accesses[key]++; p.total++ }

// OnInsert updates the access estimate and membership.
func (p *PIX) OnInsert(key string) {
	p.accesses[key]++
	p.total++
	p.cached[key] = true
}

// Victim returns the cached key minimizing p̂(key)/x(key).
func (p *PIX) Victim() string {
	best, bestV := "", 0.0
	for k := range p.cached {
		x := p.Frequency[k]
		if x <= 0 {
			x = 1
		}
		v := float64(p.accesses[k]) / x
		if best == "" || v < bestV {
			best, bestV = k, v
		}
	}
	return best
}

// OnEvict forgets cache membership.
func (p *PIX) OnEvict(key string) { delete(p.cached, key) }

// Random evicts a uniformly random cached item — the baseline policy.
type Random struct {
	rng   *rand.Rand
	keys  []string
	index map[string]int
}

// NewRandom returns a random-replacement policy drawing victims from
// the injected generator. Each policy owns its stream — nothing touches
// the global math/rand state — so concurrent simulations are race-free
// and a fixed-seed rng reproduces its eviction sequence exactly. A nil
// rng defaults to a deterministic seed-1 stream.
func NewRandom(rng *rand.Rand) *Random {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Random{rng: rng, index: make(map[string]int)}
}

// Name returns "random".
func (r *Random) Name() string { return "random" }

// OnHit is a no-op.
func (r *Random) OnHit(string) {}

// OnInsert tracks the key.
func (r *Random) OnInsert(key string) {
	r.index[key] = len(r.keys)
	r.keys = append(r.keys, key)
}

// Victim picks a uniformly random cached key.
func (r *Random) Victim() string { return r.keys[r.rng.Intn(len(r.keys))] }

// OnEvict removes the key by swapping with the tail.
func (r *Random) OnEvict(key string) {
	i, ok := r.index[key]
	if !ok {
		return
	}
	last := len(r.keys) - 1
	r.keys[i] = r.keys[last]
	r.index[r.keys[i]] = i
	r.keys = r.keys[:last]
	delete(r.index, key)
}
