package cache

import "testing"

func TestSimulatePrefetchValidation(t *testing.T) {
	prog := skewedProgram(t)
	bad := []PrefetchConfig{
		{Program: nil, Capacity: 1, Queries: 1, ZipfS: 2},
		{Program: prog, Capacity: 1, Queries: 0, ZipfS: 2},
		{Program: prog, Capacity: 1, Queries: 1, ZipfS: 1},
		{Program: prog, Capacity: 0, Queries: 1, ZipfS: 2},
		{Program: prog, Capacity: 1, Queries: 1, ZipfS: 2, Ranking: []int{0}},
	}
	for i, cfg := range bad {
		if _, err := SimulatePrefetch(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestPrefetchImprovesOnDemandOnly(t *testing.T) {
	prog := skewedProgram(t)
	ranking := []int{5, 4, 3, 2, 1, 0}
	run := func(prefetch bool) *AccessReport {
		rep, err := SimulatePrefetch(PrefetchConfig{
			Program:  prog,
			Capacity: 2,
			Queries:  4000,
			ZipfS:    1.7,
			Ranking:  ranking,
			Seed:     9,
			Prefetch: prefetch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	demand := run(false)
	prefetch := run(true)
	// A prefetching client populates the cache from the air without
	// paying misses: it must not do worse, and on this skewed workload
	// it should do strictly better on mean latency.
	if prefetch.MeanLatency > demand.MeanLatency+1e-9 {
		t.Fatalf("prefetch (%.3f) worse than demand-only (%.3f)",
			prefetch.MeanLatency, demand.MeanLatency)
	}
	if prefetch.HitRatio() < demand.HitRatio() {
		t.Fatalf("prefetch hit ratio %.3f below demand-only %.3f",
			prefetch.HitRatio(), demand.HitRatio())
	}
}

func TestPrefetchDeterministic(t *testing.T) {
	prog := skewedProgram(t)
	cfg := PrefetchConfig{
		Program: prog, Capacity: 2, Queries: 500, ZipfS: 1.8, Seed: 5, Prefetch: true,
	}
	a, err := SimulatePrefetch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulatePrefetch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hits != b.Hits || a.MeanLatency != b.MeanLatency {
		t.Fatal("same seed diverged")
	}
}
