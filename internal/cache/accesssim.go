package cache

import (
	"fmt"
	"math/rand"

	"pinbcast/internal/core"
)

// AccessConfig drives a cache simulation against a broadcast program: a
// client issues a Zipf-distributed query stream over the program's
// files; hits are served from cache instantly, misses block until the
// file's reconstruction threshold of blocks has passed on the channel.
type AccessConfig struct {
	Program  *core.Program
	Capacity int
	Policy   Policy
	Queries  int
	// ZipfS is the Zipf skew parameter (> 1); rank 0 is the hottest
	// file in this client's access pattern.
	ZipfS float64
	// Ranking maps Zipf rank to file index. Nil means rank r accesses
	// file r. A client whose ranking disagrees with the broadcast
	// frequency profile models the population-vs-individual mismatch
	// that motivates frequency-aware caching.
	Ranking []int
	Seed    int64
}

// AccessReport summarizes a cache simulation.
type AccessReport struct {
	Policy      string
	Queries     int
	Hits        int
	MeanLatency float64 // slots per query, hits counting 0
	MaxLatency  int
}

// HitRatio returns hits/queries.
func (r *AccessReport) HitRatio() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Queries)
}

// SimulateAccess runs the query stream and reports hit ratio and
// latency.
func SimulateAccess(cfg AccessConfig) (*AccessReport, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("cache: no program")
	}
	if cfg.Queries < 1 {
		return nil, fmt.Errorf("cache: no queries")
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("cache: Zipf skew must exceed 1")
	}
	c, err := New(cfg.Capacity, cfg.Policy)
	if err != nil {
		return nil, err
	}
	ranking := cfg.Ranking
	if ranking == nil {
		ranking = make([]int, len(cfg.Program.Files))
		for i := range ranking {
			ranking[i] = i
		}
	}
	if len(ranking) != len(cfg.Program.Files) {
		return nil, fmt.Errorf("cache: ranking has %d entries for %d files",
			len(ranking), len(cfg.Program.Files))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Program.Files)-1))

	rep := &AccessReport{Policy: cfg.Policy.Name(), Queries: cfg.Queries}
	now := 0
	for q := 0; q < cfg.Queries; q++ {
		file := ranking[int(zipf.Uint64())]
		name := cfg.Program.Files[file].Name
		if c.Get(name) {
			rep.Hits++
			now++ // query processing consumes one slot
			continue
		}
		lat, err := retrievalLatency(cfg.Program, file, now)
		if err != nil {
			return nil, err
		}
		rep.MeanLatency += float64(lat)
		if lat > rep.MaxLatency {
			rep.MaxLatency = lat
		}
		now += lat
		c.Put(name)
	}
	rep.MeanLatency /= float64(cfg.Queries)
	return rep, nil
}

// retrievalLatency returns the number of slots from `from` until the
// file's M-th block occurrence has passed (fault-free retrieval).
func retrievalLatency(p *core.Program, file, from int) (int, error) {
	need := p.Files[file].M
	occ := p.Occurrences(file)
	if len(occ) == 0 {
		return 0, fmt.Errorf("cache: file %q never scheduled", p.Files[file].Name)
	}
	seen := 0
	for t := from; ; t++ {
		if p.FileAt(t) == file {
			seen++
			if seen == need {
				return t - from + 1, nil
			}
		}
	}
}

// BroadcastFrequencies returns the per-file slot counts per period of a
// program, the x of the PIX policy.
func BroadcastFrequencies(p *core.Program) map[string]float64 {
	out := make(map[string]float64, len(p.Files))
	for i, f := range p.Files {
		out[f.Name] = float64(p.PerPeriod(i))
	}
	return out
}
