package cache

import (
	"math/rand"
	"testing"

	"pinbcast/internal/core"
)

func TestCacheBasics(t *testing.T) {
	c, err := New(2, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	if c.Get("a") {
		t.Fatal("hit on empty cache")
	}
	if ev := c.Put("a"); ev != "" {
		t.Fatalf("eviction on non-full cache: %q", ev)
	}
	c.Put("b")
	if !c.Get("a") || !c.Get("b") {
		t.Fatal("cached items missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	// Duplicate put is a no-op.
	if ev := c.Put("a"); ev != "" {
		t.Fatalf("duplicate put evicted %q", ev)
	}
}

func TestCacheValidation(t *testing.T) {
	if _, err := New(0, NewLRU()); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(1, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c, _ := New(2, NewLRU())
	c.Put("a")
	c.Put("b")
	c.Get("a") // a most recent
	if ev := c.Put("c"); ev != "b" {
		t.Fatalf("evicted %q, want b", ev)
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("wrong survivors")
	}
}

func TestLFUEvictionOrder(t *testing.T) {
	c, _ := New(2, NewLFU())
	c.Put("a")
	c.Put("b")
	c.Get("a")
	c.Get("a")
	c.Get("b")
	if ev := c.Put("c"); ev != "b" {
		t.Fatalf("evicted %q, want b (lower frequency)", ev)
	}
}

func TestPIXPrefersKeepingRareItems(t *testing.T) {
	// Two equally popular items; "rare" is broadcast once per period,
	// "frequent" twenty times. PIX evicts the frequent one: it is cheap
	// to re-fetch.
	p := NewPIX(map[string]float64{"rare": 1, "frequent": 20})
	c, _ := New(2, p)
	c.Put("rare")
	c.Put("frequent")
	c.Get("rare")
	c.Get("frequent")
	if ev := c.Put("new"); ev != "frequent" {
		t.Fatalf("evicted %q, want frequent", ev)
	}
}

func TestRandomPolicyEvictsCachedKey(t *testing.T) {
	c, _ := New(3, NewRandom(rand.New(rand.NewSource(1))))
	for _, k := range []string{"a", "b", "c"} {
		c.Put(k)
	}
	for i := 0; i < 20; i++ {
		ev := c.Put(string(rune('d' + i)))
		if ev == "" {
			t.Fatal("full cache did not evict")
		}
		if c.Contains(ev) {
			t.Fatalf("evicted key %q still cached", ev)
		}
		if c.Len() != 3 {
			t.Fatalf("len = %d", c.Len())
		}
	}
}

func skewedProgram(t testing.TB) *core.Program {
	// File 0 is hot on the air (high broadcast frequency), later files
	// progressively colder — the classic multi-speed broadcast disk.
	files := []core.FileSpec{
		{Name: "hot", Blocks: 1, Latency: 2},
		{Name: "warm", Blocks: 1, Latency: 8},
		{Name: "cool", Blocks: 1, Latency: 16},
		{Name: "cold-1", Blocks: 1, Latency: 32},
		{Name: "cold-2", Blocks: 1, Latency: 32},
		{Name: "cold-3", Blocks: 1, Latency: 32},
	}
	p, err := core.BuildProgram(files, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSimulateAccessPoliciesCompared(t *testing.T) {
	prog := skewedProgram(t)
	freqs := BroadcastFrequencies(prog)
	if freqs["hot"] <= freqs["cold-1"] {
		t.Fatalf("program not skewed: %v", freqs)
	}
	// The broadcast is tuned to the aggregate population; this client's
	// preferences disagree: its hottest items are the ones broadcast
	// rarely (ranking reversed). This is the setting in which
	// frequency-aware replacement pays (Acharya et al.).
	ranking := []int{5, 4, 3, 2, 1, 0}
	run := func(p Policy) *AccessReport {
		rep, err := SimulateAccess(AccessConfig{
			Program:  prog,
			Capacity: 2,
			Policy:   p,
			Queries:  4000,
			ZipfS:    1.7,
			Ranking:  ranking,
			Seed:     9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	lru := run(NewLRU())
	pix := run(NewPIX(freqs))
	// PIX keeps the rarely-broadcast items the client loves (expensive
	// to re-fetch) and lets the frequently-broadcast ones go: it must
	// beat LRU on mean latency.
	if pix.MeanLatency >= lru.MeanLatency {
		t.Fatalf("PIX (%.2f) not better than LRU (%.2f)", pix.MeanLatency, lru.MeanLatency)
	}
	// Sanity: with an aligned ranking the two are close; no assertion
	// beyond successful runs.
	if _, err := SimulateAccess(AccessConfig{
		Program: prog, Capacity: 2, Policy: NewRandom(rand.New(rand.NewSource(3))),
		Queries: 1000, ZipfS: 1.7, Seed: 4,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateAccessValidation(t *testing.T) {
	prog := skewedProgram(t)
	if _, err := SimulateAccess(AccessConfig{Program: nil, Capacity: 1, Policy: NewLRU(), Queries: 1, ZipfS: 2}); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, err := SimulateAccess(AccessConfig{Program: prog, Capacity: 1, Policy: NewLRU(), Queries: 0, ZipfS: 2}); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, err := SimulateAccess(AccessConfig{Program: prog, Capacity: 1, Policy: NewLRU(), Queries: 1, ZipfS: 1}); err == nil {
		t.Fatal("Zipf s = 1 accepted")
	}
}

func TestHitRatio(t *testing.T) {
	r := &AccessReport{Queries: 10, Hits: 4}
	if r.HitRatio() != 0.4 {
		t.Fatalf("hit ratio = %v", r.HitRatio())
	}
	empty := &AccessReport{}
	if empty.HitRatio() != 0 {
		t.Fatal("empty ratio not 0")
	}
}

func BenchmarkSimulateAccessLRU(b *testing.B) {
	prog := skewedProgram(b)
	for i := 0; i < b.N; i++ {
		if _, err := SimulateAccess(AccessConfig{
			Program: prog, Capacity: 2, Policy: NewLRU(),
			Queries: 1000, ZipfS: 1.7, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
