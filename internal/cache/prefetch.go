package cache

import (
	"fmt"
	"math/rand"

	"pinbcast/internal/core"
)

// Prefetching (Acharya, Franklin & Zdonik, ICDE '96, cited in §1 of the
// paper): a broadcast client sees every item go by whether it asked or
// not, so it can opportunistically *replace* a cached item with a
// passing one that is more valuable — value being, as in PIX, the
// item's access probability weighted by how expensive it is to get
// back later. Demand-only caching touches the cache on misses; a
// prefetching client re-evaluates on every broadcast slot.

// PrefetchConfig drives a prefetching cache simulation. Access
// probabilities are estimated online from the query stream, as in the
// demand-only simulator.
type PrefetchConfig struct {
	Program  *core.Program
	Capacity int
	Queries  int
	ZipfS    float64
	Ranking  []int
	Seed     int64
	// Prefetch enables opportunistic replacement; with false the run
	// degenerates to demand-only PIX, the natural baseline.
	Prefetch bool
}

// SimulatePrefetch runs a PIX-valued client with optional prefetching
// and reports the same metrics as SimulateAccess.
func SimulatePrefetch(cfg PrefetchConfig) (*AccessReport, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("cache: no program")
	}
	if cfg.Queries < 1 {
		return nil, fmt.Errorf("cache: no queries")
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("cache: Zipf skew must exceed 1")
	}
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("cache: capacity %d < 1", cfg.Capacity)
	}
	ranking := cfg.Ranking
	if ranking == nil {
		ranking = make([]int, len(cfg.Program.Files))
		for i := range ranking {
			ranking[i] = i
		}
	}
	if len(ranking) != len(cfg.Program.Files) {
		return nil, fmt.Errorf("cache: ranking has %d entries for %d files",
			len(ranking), len(cfg.Program.Files))
	}
	freq := make([]float64, len(cfg.Program.Files))
	for i := range cfg.Program.Files {
		freq[i] = float64(cfg.Program.PerPeriod(i))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Program.Files)-1))

	cached := map[int]bool{}
	accesses := make([]float64, len(cfg.Program.Files))
	value := func(f int) float64 { return accesses[f] / freq[f] }

	name := "PIX demand-only"
	if cfg.Prefetch {
		name = "PIX + prefetch"
	}
	rep := &AccessReport{Policy: name, Queries: cfg.Queries}
	now := 0
	for q := 0; q < cfg.Queries; q++ {
		file := ranking[int(zipf.Uint64())]
		accesses[file]++
		if cached[file] {
			rep.Hits++
			now++
			continue
		}
		// Miss: wait for the file on the air. While waiting, a
		// prefetching client re-evaluates every passing item.
		lat, err := retrievalLatency(cfg.Program, file, now)
		if err != nil {
			return nil, err
		}
		if cfg.Prefetch {
			for dt := 0; dt < lat; dt++ {
				passing := cfg.Program.FileAt(now + dt)
				if passing == core.Idle || cached[passing] || passing == file {
					continue
				}
				insertIfValuable(cached, passing, cfg.Capacity, value)
			}
		}
		rep.MeanLatency += float64(lat)
		if lat > rep.MaxLatency {
			rep.MaxLatency = lat
		}
		now += lat
		insertIfValuable(cached, file, cfg.Capacity, value)
	}
	rep.MeanLatency /= float64(cfg.Queries)
	return rep, nil
}

// insertIfValuable adds f to the cache, evicting the least valuable
// item if full — but only when f is strictly more valuable than the
// would-be victim.
func insertIfValuable(cached map[int]bool, f, capacity int, value func(int) float64) {
	if len(cached) < capacity {
		cached[f] = true
		return
	}
	victim, victimV := -1, 0.0
	for c := range cached {
		if v := value(c); victim < 0 || v < victimV {
			victim, victimV = c, v
		}
	}
	if value(f) > victimV {
		delete(cached, victim)
		cached[f] = true
	}
}
