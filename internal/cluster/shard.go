// Package cluster plans and tracks sharded multi-channel broadcast
// deployments: a catalog is partitioned across K broadcast channels by
// a pluggable Shard policy, the hottest files are replicated on R ≥ 2
// channels (quorum-style: any K−R+1 live channels still carry every
// replicated file, so the deployment withstands R−1 channel deaths
// without repair — the Goemans–Lynch–Saias regime), and a missed-slot
// Detector classifies channels live or dead from what a receiver
// observes on the fan-out seam.
//
// The package is the coordination engine behind the public
// pinbcast.Cluster; it deliberately knows nothing about Stations,
// transports or goroutines — it plans over file specifications and
// tracks slot observations, and the public layer wires those decisions
// to running services.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"pinbcast/internal/bcerr"
	"pinbcast/internal/core"
)

// Shard maps each file of a catalog to a primary broadcast channel.
// Policies are deterministic so a deployment plan is reproducible from
// its inputs.
type Shard interface {
	// Name identifies the policy in registries and flags.
	Name() string
	// Assign returns the primary channel index in [0, k) for each file,
	// in input order.
	Assign(files []core.FileSpec, k int) ([]int, error)
}

// Heat is the planner's access-frequency proxy for one file: its
// bandwidth share (mᵢ+rᵢ)/Tᵢ. A file with a tight latency constraint
// is rebroadcast often — it is hot in exactly the
// Acharya–Franklin–Zdonik sense, and it is the file whose loss hurts
// most, so replication targets the highest-Heat files first.
func Heat(f core.FileSpec) float64 {
	if f.Latency <= 0 {
		return 0
	}
	return float64(f.Demand()) / float64(f.Latency)
}

// HashShard assigns each file by FNV-32a of its name modulo k — the
// stateless baseline: no balance guarantee, but a file's home is
// computable from its name alone.
type HashShard struct{}

// Name returns "hash".
func (HashShard) Name() string { return "hash" }

// Assign hashes each file name to a channel.
func (HashShard) Assign(files []core.FileSpec, k int) ([]int, error) {
	out := make([]int, len(files))
	for i, f := range files {
		h := fnv.New32a()
		h.Write([]byte(f.Name))
		out[i] = int(h.Sum32() % uint32(k))
	}
	return out, nil
}

// HotColdShard splits the catalog at the median Heat: hot files are
// spread round-robin over the first ⌈k/2⌉ channels, cold files over the
// rest — so hot channels carry few, frequently-spun files (short
// periods, tight worst cases) and cold channels absorb the bulk.
type HotColdShard struct{}

// Name returns "hot-cold".
func (HotColdShard) Name() string { return "hot-cold" }

// Assign partitions by Heat and round-robins within each partition.
func (HotColdShard) Assign(files []core.FileSpec, k int) ([]int, error) {
	order := heatOrder(files)
	hotChannels := (k + 1) / 2
	coldChannels := k - hotChannels
	hotFiles := (len(files) + 1) / 2
	out := make([]int, len(files))
	for rank, i := range order {
		if rank < hotFiles || coldChannels == 0 {
			out[i] = rank % hotChannels
		} else {
			out[i] = hotChannels + (rank-hotFiles)%coldChannels
		}
	}
	return out, nil
}

// BalancedShard equalizes per-channel bandwidth demand: files are
// placed hottest-first on the channel with the least accumulated Heat
// (longest-processing-time bin packing). Balanced demand keeps every
// channel's Equation-2 bandwidth — and with it the per-channel latency
// profile (core.Program.LatencyProfile) — as even as the catalog
// allows, which is what a latency-balanced deployment wants.
type BalancedShard struct{}

// Name returns "balanced".
func (BalancedShard) Name() string { return "balanced" }

// Assign greedily levels accumulated Heat across channels.
func (BalancedShard) Assign(files []core.FileSpec, k int) ([]int, error) {
	out := make([]int, len(files))
	load := make([]float64, k)
	for _, i := range heatOrder(files) {
		best := 0
		for c := 1; c < k; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		out[i] = best
		load[best] += Heat(files[i])
	}
	return out, nil
}

// heatOrder returns file indices sorted by descending Heat, ties broken
// by name for determinism.
func heatOrder(files []core.FileSpec) []int {
	order := make([]int, len(files))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ha, hb := Heat(files[order[a]]), Heat(files[order[b]])
		if ha != hb {
			return ha > hb
		}
		return files[order[a]].Name < files[order[b]].Name
	})
	return order
}

// Hottest returns the names of the n highest-Heat files (all of them
// when n exceeds the catalog), in descending Heat order.
func Hottest(files []core.FileSpec, n int) []string {
	if n > len(files) {
		n = len(files)
	}
	if n < 0 {
		n = 0
	}
	order := heatOrder(files)
	out := make([]string, 0, n)
	for _, i := range order[:n] {
		out = append(out, files[i].Name)
	}
	return out
}

// Assignment is a planned deployment: which files each channel
// broadcasts and where each file lives.
type Assignment struct {
	// Channels lists the files each channel broadcasts (primaries and
	// replicas), in catalog order.
	Channels [][]core.FileSpec
	// Homes maps each file to the channels carrying it, primary first.
	Homes map[string][]int
	// Replicated marks the files carried by more than one channel.
	Replicated map[string]bool
}

// Plan shards the catalog over k channels under the policy and
// replicates the `hottest` highest-Heat files on `replicas` channels
// each. With replicas copies, any replicas−1 channel deaths leave at
// least one live carrier for every replicated file (equivalently: every
// k−replicas+1 live channels form a read quorum for them). Replica
// channels are chosen coldest-first so redundancy rides on the spare
// capacity. Every channel must end up with at least one file;
// violations wrap bcerr.ErrBadSpec.
func Plan(files []core.FileSpec, k, replicas, hottest int, shard Shard) (*Assignment, error) {
	switch {
	case len(files) == 0:
		return nil, fmt.Errorf("cluster: no files to shard: %w", bcerr.ErrBadSpec)
	case k < 1:
		return nil, fmt.Errorf("cluster: need at least one channel, got %d: %w", k, bcerr.ErrBadSpec)
	case k > len(files):
		return nil, fmt.Errorf("cluster: %d channels exceed %d files (every channel needs one): %w",
			k, len(files), bcerr.ErrBadSpec)
	case replicas < 1 || replicas > k:
		return nil, fmt.Errorf("cluster: replicas %d out of range [1, %d]: %w", replicas, k, bcerr.ErrBadSpec)
	case hottest < 0 || hottest > len(files):
		return nil, fmt.Errorf("cluster: hottest %d out of range [0, %d]: %w", hottest, len(files), bcerr.ErrBadSpec)
	case shard == nil:
		return nil, fmt.Errorf("cluster: nil shard policy: %w", bcerr.ErrBadSpec)
	}
	seen := map[string]bool{}
	for _, f := range files {
		if seen[f.Name] {
			return nil, fmt.Errorf("cluster: duplicate file %q: %w", f.Name, bcerr.ErrBadSpec)
		}
		seen[f.Name] = true
	}

	primary, err := shard.Assign(files, k)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %q: %w", shard.Name(), err)
	}
	if len(primary) != len(files) {
		return nil, fmt.Errorf("cluster: shard %q returned %d assignments for %d files: %w",
			shard.Name(), len(primary), len(files), bcerr.ErrBadSpec)
	}
	asn := &Assignment{
		Channels:   make([][]core.FileSpec, k),
		Homes:      make(map[string][]int, len(files)),
		Replicated: map[string]bool{},
	}
	load := make([]float64, k)
	for i, f := range files {
		c := primary[i]
		if c < 0 || c >= k {
			return nil, fmt.Errorf("cluster: shard %q sent %q to channel %d of %d: %w",
				shard.Name(), f.Name, c, k, bcerr.ErrBadSpec)
		}
		asn.Channels[c] = append(asn.Channels[c], f)
		asn.Homes[f.Name] = []int{c}
		load[c] += Heat(f)
	}
	for c, chFiles := range asn.Channels {
		if len(chFiles) == 0 {
			return nil, fmt.Errorf("cluster: shard %q left channel %d empty (use balanced, or fewer channels): %w",
				shard.Name(), c, bcerr.ErrBadSpec)
		}
	}

	if replicas > 1 {
		byName := make(map[string]core.FileSpec, len(files))
		for _, f := range files {
			byName[f.Name] = f
		}
		for _, name := range Hottest(files, hottest) {
			f := byName[name]
			for len(asn.Homes[name]) < replicas {
				c := coldestAvoiding(load, asn.Homes[name])
				asn.Channels[c] = append(asn.Channels[c], f)
				asn.Homes[name] = append(asn.Homes[name], c)
				load[c] += Heat(f)
			}
			asn.Replicated[name] = true
		}
	}
	return asn, nil
}

// coldestAvoiding returns the least-loaded channel not in taken.
func coldestAvoiding(load []float64, taken []int) int {
	best := -1
	for c := range load {
		used := false
		for _, t := range taken {
			if t == c {
				used = true
				break
			}
		}
		if used {
			continue
		}
		if best < 0 || load[c] < load[best] {
			best = c
		}
	}
	return best
}
