package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultMissThreshold is how many consecutive missed slots (gaps in
// the observed slot numbering, read timeouts, or a mix) a channel may
// accumulate before the detector declares it dead.
const DefaultMissThreshold = 4

// Detector is the receiver-side channel health tracker: a missed-slot
// detector on the fan-out seam. The broadcast medium emits one frame
// per slot — idle slots included — so a healthy channel presents a
// contiguous slot numbering to every subscriber. The detector counts
// consecutive evidence of silence per channel: a gap in observed slot
// numbers (frames the fan-out dropped for this laggard), a read
// timeout (no frame within the subscriber's deadline), or a stream
// error/EOF (the channel's transport died). Threshold consecutive
// misses — or one hard failure — mark the channel dead; a dead channel
// stays dead until Revive (the paper's fault model has no in-place
// repair, matching Goemans–Lynch–Saias' no-repair regime).
//
// A Detector is safe for concurrent use, and channels are tracked
// independently — one goroutine per channel is the intended drive
// pattern, and observations on different channels never contend.
type Detector struct {
	threshold int
	chans     []detChannel
}

// detChannel is one channel's health state: mutated under its own lock
// so per-slot observations on different channels never serialize; the
// dead flag is additionally atomic so Alive is a lock-free read from
// any goroutine.
type detChannel struct {
	mu       sync.Mutex
	misses   int
	lastSlot int
	dead     atomic.Bool
}

// NewDetector tracks `channels` channels, declaring one dead after
// `threshold` consecutive missed slots (0 selects
// DefaultMissThreshold).
func NewDetector(channels, threshold int) *Detector {
	if channels < 1 {
		panic(fmt.Sprintf("cluster: detector needs at least one channel, got %d", channels))
	}
	if threshold <= 0 {
		threshold = DefaultMissThreshold
	}
	d := &Detector{threshold: threshold, chans: make([]detChannel, channels)}
	for i := range d.chans {
		d.chans[i].lastSlot = -1
	}
	return d
}

// Channels returns the number of tracked channels.
func (d *Detector) Channels() int { return len(d.chans) }

// Observe records a delivered slot with number t on the channel. A
// contiguous delivery clears the channel's miss run; a numbering gap
// counts the skipped slots as misses. It returns true when this
// observation just crossed the death threshold.
func (d *Detector) Observe(ch, t int) bool {
	c := &d.chans[ch]
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead.Load() {
		return false
	}
	last := c.lastSlot
	c.lastSlot = t
	if last >= 0 && t > last+1 {
		c.misses += t - last - 1
		return d.checkLocked(c)
	}
	c.misses = 0
	return false
}

// Miss records one slot of silence (a read timeout on the subscriber's
// deadline). It returns true when the channel just died.
func (d *Detector) Miss(ch int) bool {
	c := &d.chans[ch]
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead.Load() {
		return false
	}
	c.misses++
	return d.checkLocked(c)
}

// Fail marks the channel dead immediately (stream error or EOF — the
// transport itself is gone). It returns true when the channel was
// alive until now.
func (d *Detector) Fail(ch int) bool {
	c := &d.chans[ch]
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.dead.Swap(true)
}

// checkLocked applies the threshold. Caller holds the channel's lock.
func (d *Detector) checkLocked(c *detChannel) bool {
	if c.misses >= d.threshold {
		c.dead.Store(true)
		return true
	}
	return false
}

// Alive reports whether the channel is still considered live. It is a
// lock-free read, safe on any goroutine's per-slot path.
func (d *Detector) Alive(ch int) bool { return !d.chans[ch].dead.Load() }

// Dead returns the dead channels in index order.
func (d *Detector) Dead() []int {
	var out []int
	for ch := range d.chans {
		if d.chans[ch].dead.Load() {
			out = append(out, ch)
		}
	}
	return out
}

// LiveCount returns how many channels are still live.
func (d *Detector) LiveCount() int {
	n := 0
	for ch := range d.chans {
		if !d.chans[ch].dead.Load() {
			n++
		}
	}
	return n
}

// Revive clears a channel's death mark and miss run — for deployments
// that do repair channels, and for tests.
func (d *Detector) Revive(ch int) {
	c := &d.chans[ch]
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead.Store(false)
	c.misses = 0
	c.lastSlot = -1
}
