package cluster

import (
	"errors"
	"testing"

	"pinbcast/internal/bcerr"
	"pinbcast/internal/core"
	"pinbcast/internal/workload"
)

func catalog() []core.FileSpec {
	// Heats: hot 3/4, warm 3/10, mild 6/40, cool 8/80, cold 16/600.
	return []core.FileSpec{
		{Name: "cold", Blocks: 15, Latency: 600, Faults: 1},
		{Name: "hot", Blocks: 2, Latency: 4, Faults: 1},
		{Name: "cool", Blocks: 6, Latency: 80, Faults: 2},
		{Name: "warm", Blocks: 2, Latency: 10, Faults: 1},
		{Name: "mild", Blocks: 4, Latency: 40, Faults: 2},
	}
}

func TestHeatOrderAndHottest(t *testing.T) {
	got := Hottest(catalog(), 3)
	want := []string{"hot", "warm", "mild"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Hottest = %v, want %v", got, want)
		}
	}
	if n := len(Hottest(catalog(), 99)); n != 5 {
		t.Fatalf("Hottest over-asked returned %d names", n)
	}
}

func TestPlanQuorumProperty(t *testing.T) {
	// With R replicas on K channels, any R−1 deaths must leave every
	// replicated file with a live carrier.
	files := workload.Random(12, 4, 8, 120, 1, 7)
	for k := 2; k <= 4; k++ {
		for r := 2; r <= k; r++ {
			asn, err := Plan(files, k, r, 5, BalancedShard{})
			if err != nil {
				t.Fatalf("Plan(k=%d, r=%d): %v", k, r, err)
			}
			for name, rep := range asn.Replicated {
				if !rep {
					continue
				}
				homes := asn.Homes[name]
				if len(homes) != r {
					t.Fatalf("k=%d r=%d: %q has %d homes, want %d", k, r, name, len(homes), r)
				}
				seen := map[int]bool{}
				for _, c := range homes {
					if seen[c] {
						t.Fatalf("%q replicated twice on channel %d", name, c)
					}
					seen[c] = true
				}
			}
			for c, chFiles := range asn.Channels {
				if len(chFiles) == 0 {
					t.Fatalf("k=%d r=%d: channel %d empty", k, r, c)
				}
			}
		}
	}
}

func TestPlanPrimaryFirstAndUnreplicatedSingleHome(t *testing.T) {
	asn, err := Plan(catalog(), 3, 2, 2, BalancedShard{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range catalog() {
		homes := asn.Homes[f.Name]
		if len(homes) == 0 {
			t.Fatalf("%q has no home", f.Name)
		}
		if asn.Replicated[f.Name] {
			if len(homes) != 2 {
				t.Fatalf("replicated %q has homes %v", f.Name, homes)
			}
		} else if len(homes) != 1 {
			t.Fatalf("unreplicated %q has homes %v", f.Name, homes)
		}
		// The primary channel must list the file.
		found := false
		for _, cf := range asn.Channels[homes[0]] {
			if cf.Name == f.Name {
				found = true
			}
		}
		if !found {
			t.Fatalf("%q missing from its primary channel %d", f.Name, homes[0])
		}
	}
}

func TestBalancedShardLevelsHeat(t *testing.T) {
	files := workload.Random(24, 4, 8, 120, 1, 3)
	asn, err := Plan(files, 3, 1, 0, BalancedShard{})
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, 3)
	total := 0.0
	for c, chFiles := range asn.Channels {
		for _, f := range chFiles {
			loads[c] += Heat(f)
			total += Heat(f)
		}
	}
	for c, l := range loads {
		if l > 0.6*total {
			t.Fatalf("channel %d carries %.2f of %.2f total heat — not balanced", c, l, total)
		}
	}
}

func TestHashShardDeterministic(t *testing.T) {
	files := catalog()
	a1, _ := HashShard{}.Assign(files, 3)
	a2, _ := HashShard{}.Assign(files, 3)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("hash shard not deterministic")
		}
	}
}

func TestHotColdShardSeparatesTiers(t *testing.T) {
	files := catalog()
	asn, err := HotColdShard{}.Assign(files, 4)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, f := range files {
		byName[f.Name] = asn[i]
	}
	// Hot half (hot, warm, mild) lands on channels [0, 2); cold half on [2, 4).
	for _, name := range []string{"hot", "warm", "mild"} {
		if byName[name] >= 2 {
			t.Fatalf("hot file %q on cold channel %d", name, byName[name])
		}
	}
	for _, name := range []string{"cool", "cold"} {
		if byName[name] < 2 {
			t.Fatalf("cold file %q on hot channel %d", name, byName[name])
		}
	}
}

func TestPlanValidation(t *testing.T) {
	files := catalog()
	cases := []struct {
		name string
		run  func() error
	}{
		{"no files", func() error { _, err := Plan(nil, 2, 1, 0, HashShard{}); return err }},
		{"zero channels", func() error { _, err := Plan(files, 0, 1, 0, HashShard{}); return err }},
		{"more channels than files", func() error { _, err := Plan(files, 9, 1, 0, HashShard{}); return err }},
		{"replicas over k", func() error { _, err := Plan(files, 2, 3, 1, HashShard{}); return err }},
		{"replicas zero", func() error { _, err := Plan(files, 2, 0, 1, HashShard{}); return err }},
		{"hottest negative", func() error { _, err := Plan(files, 2, 2, -1, HashShard{}); return err }},
		{"nil shard", func() error { _, err := Plan(files, 2, 1, 0, nil); return err }},
		{"duplicate file", func() error {
			dup := append(append([]core.FileSpec{}, files...), files[0])
			_, err := Plan(dup, 2, 1, 0, HashShard{})
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, bcerr.ErrBadSpec) {
			t.Errorf("%s: got %v, want ErrBadSpec", tc.name, err)
		}
	}
}

func TestDetectorGapAndTimeout(t *testing.T) {
	d := NewDetector(2, 3)
	// Contiguous slots keep the channel alive.
	for tt := 0; tt < 10; tt++ {
		if d.Observe(0, tt) {
			t.Fatal("contiguous stream declared dead")
		}
	}
	// A 2-slot gap is under threshold and a contiguous follow-up clears it.
	d.Observe(0, 12)
	if !d.Alive(0) {
		t.Fatal("sub-threshold gap killed channel")
	}
	d.Observe(0, 13)
	if d.Miss(0) || d.Miss(0) {
		t.Fatal("two timeouts after recovery should not kill (run was cleared)")
	}
	if d.Miss(0) != true {
		t.Fatal("third consecutive timeout should cross threshold 3")
	}
	if d.Alive(0) {
		t.Fatal("channel 0 should be dead")
	}
	// Channel 1 unaffected; a big gap kills it at once.
	if !d.Alive(1) {
		t.Fatal("channel 1 should be alive")
	}
	d.Observe(1, 0)
	if !d.Observe(1, 10) {
		t.Fatal("9-slot gap should cross threshold")
	}
	if got := d.Dead(); len(got) != 2 {
		t.Fatalf("Dead() = %v", got)
	}
	if d.LiveCount() != 0 {
		t.Fatalf("LiveCount = %d", d.LiveCount())
	}
	d.Revive(1)
	if !d.Alive(1) || d.LiveCount() != 1 {
		t.Fatal("revive failed")
	}
}

func TestDetectorFail(t *testing.T) {
	d := NewDetector(3, 0)
	if !d.Fail(2) {
		t.Fatal("first Fail should report the transition")
	}
	if d.Fail(2) {
		t.Fatal("second Fail should be idempotent")
	}
	if d.Alive(2) || d.LiveCount() != 2 {
		t.Fatal("Fail did not kill the channel")
	}
	// Observations on a dead channel change nothing.
	if d.Observe(2, 5) || d.Miss(2) {
		t.Fatal("dead channel reacted to observations")
	}
}
