package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CancelFlow is the interprocedural generalization of goroleak: every
// potentially-blocking operation reachable from a long-running entry
// point (Serve, Run, Drive, Broadcast, Pump) must be gated by a
// cancellation signal somewhere on its path, or the fault-budget story
// collapses — a blocked serve loop is a fault the system cannot repair.
//
// Per function, a blocking operation counts as gated when:
//
//   - it is a select with a default case (non-blocking), or
//   - it is a select with a case receiving from a cancellation-shaped
//     channel: any chan struct{} (ctx.Done(), stop/done channels) or a
//     chan time.Time (timers, tickers, time.After), or
//   - it is a bare receive from such a channel.
//
// Everything else — a bare send, a bare receive from a data channel, a
// range over a channel, sync.Cond.Wait, and concrete net I/O methods —
// is an ungated blocking site. Sites propagate bottom-up through the
// call-graph summaries (go and defer included: a deferred drain blocks
// teardown just as hard), so a Serve that delegates its loop three
// calls down is still checked. Dynamic interface dispatch is trusted,
// like goroleak: a net.Listener's Accept is terminated by Close.
// sync.WaitGroup.Wait is goroleak's domain (every spawned goroutine
// must already have a termination path) and is not re-flagged here.
var CancelFlow = &Analyzer{
	Name: "cancelflow",
	Doc:  "require a ctx.Done/stop-channel gate on every blocking op reachable from Serve/Run/Drive/Broadcast/Pump",
	Run:  runCancelFlow,
}

// cancelEntryPoints are the exported method/function names treated as
// long-running entry points.
var cancelEntryPoints = map[string]bool{
	"Serve":     true,
	"Run":       true,
	"Drive":     true,
	"Broadcast": true,
	"Pump":      true,
}

// A blockSite is one ungated potentially-blocking operation.
type blockSite struct {
	pos  token.Pos
	what string
}

// cancelSummary is a function's exposed ungated blocking sites (its
// own plus its static callees'), deduped and position-sorted so
// summaries compare cheaply; maxBlockSites bounds growth through deep
// call chains.
type cancelSummary []blockSite

const maxBlockSites = 32

func cancelSummaryEqual(a, b cancelSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cancelSummaries computes (once per load) every function's exposed
// blocking sites, to fixpoint through the call graph.
func (ix *Index) cancelSummaries() map[*cgNode]cancelSummary {
	if s, ok := ix.sums["cancelflow"].(map[*cgNode]cancelSummary); ok {
		return s
	}
	own := map[*cgNode]cancelSummary{}
	g := ix.callGraph()
	for _, n := range g.nodes {
		if n.Decl.Body != nil {
			own[n] = ownBlockingSites(n)
		}
	}
	s := summarize(g, func(n *cgNode, get func(*cgNode) cancelSummary) cancelSummary {
		merged := append(cancelSummary(nil), own[n]...)
		for _, site := range n.Out {
			if site.Dynamic || len(site.Callees) != 1 {
				continue // unresolved or dynamic dispatch: trusted
			}
			merged = append(merged, get(site.Callees[0])...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i].pos < merged[j].pos })
		dedup := merged[:0]
		for i, s := range merged {
			if i == 0 || s.pos != merged[i-1].pos {
				dedup = append(dedup, s)
			}
		}
		if len(dedup) > maxBlockSites {
			dedup = dedup[:maxBlockSites]
		}
		return dedup
	}, cancelSummaryEqual)
	ix.sums["cancelflow"] = s
	return s
}

// ownBlockingSites scans one declaration body — closures included,
// deferred ones too — for blocking operations not gated in place.
func ownBlockingSites(n *cgNode) cancelSummary {
	info := n.Pkg.TypesInfo
	var sites cancelSummary
	var walk func(nd ast.Node)
	walk = func(nd ast.Node) {
		ast.Inspect(nd, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				walk(x.Body)
				return false
			case *ast.SelectStmt:
				if !selectGated(info, x) {
					sites = append(sites, blockSite{x.Pos(), "select (no default or cancellation case)"})
				}
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							walk(st)
						}
					}
				}
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && !isCancelChan(info, x.X) {
					sites = append(sites, blockSite{x.Pos(), "channel receive"})
				}
			case *ast.SendStmt:
				sites = append(sites, blockSite{x.Pos(), "channel send"})
			case *ast.RangeStmt:
				if t := info.TypeOf(x.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						sites = append(sites, blockSite{x.Pos(), "range over channel"})
					}
				}
			case *ast.CallExpr:
				if what, ok := blockingCall(info, x); ok {
					sites = append(sites, blockSite{x.Pos(), what})
				}
			}
			return true
		})
	}
	walk(n.Decl.Body)
	return sites
}

// selectGated reports whether a select cannot wedge: it has a default
// case, or some case receives from a cancellation-shaped channel.
func selectGated(info *types.Info, s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default: non-blocking
		}
		if ch := commRecvChan(cc.Comm); ch != nil && isCancelChan(info, ch) {
			return true
		}
	}
	return false
}

// commRecvChan extracts the channel expression of a receive comm
// clause (`case <-ch:` or `case v := <-ch:`), or nil for sends.
func commRecvChan(comm ast.Stmt) ast.Expr {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}

// isCancelChan reports whether e is a cancellation-shaped channel: its
// element type is struct{} (ctx.Done(), stop/done channels) or
// time.Time (timers, tickers, time.After).
func isCancelChan(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
		return true
	}
	if named, ok := ch.Elem().(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Time"
	}
	return false
}

// blockingCall classifies call expressions that block by themselves:
// sync.Cond.Wait and the concrete net I/O methods (interface dispatch
// is trusted — Close unblocks it).
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || isInterfaceMethod(fn) {
		return "", false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return "", false
	}
	named, ok := derefType(recv.Type()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	switch named.Obj().Pkg().Path() {
	case "sync":
		if named.Obj().Name() == "Cond" && fn.Name() == "Wait" {
			return "sync.Cond.Wait", true
		}
	case "net":
		switch fn.Name() {
		case "Accept", "AcceptTCP", "Read", "Write", "ReadFrom", "ReadFromUDP", "WriteTo", "WriteToUDP":
			return "net." + named.Obj().Name() + "." + fn.Name(), true
		}
	}
	return "", false
}

func runCancelFlow(pass *Pass) error {
	g := pass.Index.callGraph()
	sums := pass.Index.cancelSummaries()
	local := map[string]bool{}
	for _, f := range pass.Files {
		local[pass.Fset.Position(f.Pos()).Filename] = true
	}
	// Every entry point module-wide contributes findings, but each site
	// is reported once, by the package that owns its file — the same
	// anchoring lockorder uses for its module-wide cycles.
	reported := map[token.Pos]bool{}
	for _, n := range g.nodes {
		if !cancelEntryPoints[n.Fn.Name()] || !n.Decl.Name.IsExported() {
			continue
		}
		for _, s := range sums[n] {
			if reported[s.pos] || !local[pass.Fset.Position(s.pos).Filename] {
				continue
			}
			reported[s.pos] = true
			pass.Reportf(s.pos, "blocking %s is reachable from entry point %s with no ctx.Done/stop-channel gate on the path",
				s.what, n.Fn.Name())
		}
	}
	return nil
}
