package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder detects potential deadlocks statically: it builds a
// module-wide lock-acquisition graph — an edge A → B for every
// Lock()/RLock() of class B at a site where class A is provably held —
// and reports every cycle. Held sets come from the shared lockflow
// dataflow over each function's CFG, seeded with the caller-held locks
// the //pinlint:holds annotation and the xxxLocked naming convention
// assert, so an ordering established across a call boundary
// (MultiTuner.mu held entering attachToLocked, which takes
// mtChannel.mu) still contributes its edge.
//
// Locks are grouped by class: every instance of Station.mu is one
// node, because two instances of the same field are exactly the two
// sides of an AB/BA deadlock. A self-cycle (acquiring an instance of a
// class while holding another instance of the same class) is therefore
// reported too, unless waived with an explicit instance-ordering
// justification.
//
// The analysis is intra-procedural plus annotations: a callee that
// acquires locks while its caller holds others contributes edges only
// if it is annotated //pinlint:holds (or named xxxLocked). That is the
// codebase's locking convention already, and lockcheck enforces the
// field-access side of it.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report cycles in the module-wide mutex acquisition graph",
	Run:  runLockOrder,
}

// lockEdge is one acquisition ordering observed in the module: `to`
// was locked at pos (inside fn) while `from` was held.
type lockEdge struct {
	from, to string
	pos      token.Pos
	fn       string
}

// lockGraph is the module-wide acquisition graph, built once per load
// and cached on the Index.
type lockGraph struct {
	// edges[from][to] holds the first site that established the order.
	edges map[string]map[string]lockEdge
}

func runLockOrder(pass *Pass) error {
	g := pass.Index.lockOrderGraph()
	local := map[string]bool{}
	for _, f := range pass.Files {
		local[pass.Fset.Position(f.Pos()).Filename] = true
	}
	for _, cycle := range g.cycles() {
		// Anchor each cycle at its lexically first edge so the module-
		// wide finding is reported exactly once, by whichever package
		// owns that site.
		anchor := cycle[0]
		for _, e := range cycle[1:] {
			if posLess(pass.Fset, e.pos, anchor.pos) {
				anchor = e
			}
		}
		if !local[pass.Fset.Position(anchor.pos).Filename] {
			continue
		}
		pass.Reportf(anchor.pos, "lock-order cycle: %s", describeCycle(pass.Fset, cycle))
	}
	return nil
}

func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// describeCycle renders "A → B → A (B locked with A held in F at
// file:line; ...)".
func describeCycle(fset *token.FileSet, cycle []lockEdge) string {
	var ring, sites strings.Builder
	for i, e := range cycle {
		if i == 0 {
			ring.WriteString(e.from)
		}
		ring.WriteString(" -> ")
		ring.WriteString(e.to)
		if i > 0 {
			sites.WriteString("; ")
		}
		p := fset.Position(e.pos)
		fmt.Fprintf(&sites, "%s locked with %s held in %s at %s:%d",
			e.to, e.from, e.fn, filepath.Base(p.Filename), p.Line)
	}
	return ring.String() + " (" + sites.String() + ")"
}

// lockOrderGraph builds (once) the acquisition graph over every loaded
// package.
func (ix *Index) lockOrderGraph() *lockGraph {
	if ix.lockG != nil {
		return ix.lockG
	}
	g := &lockGraph{edges: map[string]map[string]lockEdge{}}
	for _, pkg := range ix.pkgs {
		collectLockEdges(pkg, ix, g)
	}
	ix.lockG = g
	return g
}

func collectLockEdges(pkg *Package, index *Index, g *lockGraph) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			acquire := func(pos token.Pos, class string, held lockState) {
				if class == "" {
					return
				}
				for _, heldClass := range held {
					if heldClass == "" {
						continue
					}
					g.addEdge(lockEdge{from: heldClass, to: class, pos: pos, fn: fn.Name()})
				}
			}
			entry := callerHeldLocks(pkg, index, fd, fn)
			lockFlow(pkg.TypesInfo, fd.Body, entry, lockHooks{acquire: acquire})
			// Closure bodies hold nothing on entry (they run at an
			// unknown time), but orderings inside them still count.
			for _, lit := range funcLits(fd.Body) {
				lockFlow(pkg.TypesInfo, lit.Body, lockState{}, lockHooks{acquire: acquire})
			}
		}
	}
}

func (g *lockGraph) addEdge(e lockEdge) {
	if g.edges[e.from] == nil {
		g.edges[e.from] = map[string]lockEdge{}
	}
	if _, ok := g.edges[e.from][e.to]; !ok {
		g.edges[e.from][e.to] = e
	}
}

// cycles enumerates the graph's elementary cycles, one per distinct
// node set, each starting from its lexicographically smallest class.
// The graphs are tiny (one node per mutex class), so a bounded DFS is
// plenty.
func (g *lockGraph) cycles() [][]lockEdge {
	var nodes []string
	for from := range g.edges {
		nodes = append(nodes, from)
	}
	sort.Strings(nodes)

	var out [][]lockEdge
	seen := map[string]bool{} // canonical node-set key -> reported
	for _, start := range nodes {
		var path []lockEdge
		onPath := map[string]bool{start: true}
		var dfs func(node string)
		dfs = func(node string) {
			var tos []string
			for to := range g.edges[node] {
				tos = append(tos, to)
			}
			sort.Strings(tos)
			for _, to := range tos {
				e := g.edges[node][to]
				if to == start {
					cycle := append(append([]lockEdge(nil), path...), e)
					key := cycleKey(cycle)
					if !seen[key] {
						seen[key] = true
						out = append(out, cycle)
					}
					continue
				}
				// Restrict to nodes >= start so each cycle is found
				// from its smallest member only.
				if to < start || onPath[to] {
					continue
				}
				onPath[to] = true
				path = append(path, e)
				dfs(to)
				path = path[:len(path)-1]
				delete(onPath, to)
			}
		}
		dfs(start)
	}
	return out
}

func cycleKey(cycle []lockEdge) string {
	var names []string
	for _, e := range cycle {
		names = append(names, e.to)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}
