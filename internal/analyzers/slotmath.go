package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SlotMath enforces integer safety on schedule algebra. The paper's
// guarantees are window arithmetic over periods, frequencies, and slot
// counts; the products that combine them (data cycles, major cycles,
// lcm of frequencies) can overflow int on adversarial specifications,
// and a silently-wrapped cycle length voids every downstream window
// proof. The rules:
//
//   - no local lcm helper outside internal/slotmath — the checked
//     LCM/Mul/Shl there are the only sanctioned way to combine
//     schedule quantities;
//   - a `*` or `<<` whose operands BOTH involve schedule-named integer
//     values (period, frequency, cycle, slot counts) must go through
//     internal/slotmath, which reports overflow instead of wrapping;
//   - a `/` or `%` by a schedule-named local or parameter must be
//     dominated by a guard comparing that variable (a possibly-zero
//     period divides nothing). Struct fields are exempt: constructors
//     validate them.
//
// internal/slotmath itself is exempt (it implements the helpers).
var SlotMath = &Analyzer{
	Name: "slotmath",
	Doc:  "require checked internal/slotmath helpers for schedule-quantity products and guarded divisors",
	Run:  runSlotMath,
}

func runSlotMath(pass *Pass) error {
	if strings.HasSuffix(pass.pkg.PkgPath, "internal/slotmath") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if strings.EqualFold(fd.Name.Name, "lcm") {
				pass.Reportf(fd.Name.Pos(), "local %s helper wraps on overflow; use internal/slotmath.LCM", fd.Name.Name)
			}
			if fd.Body == nil {
				continue
			}
			checkSlotMathBody(pass, fd.Body)
			for _, lit := range funcLits(fd.Body) {
				checkSlotMathBody(pass, lit.Body)
			}
		}
	}
	return nil
}

// checkSlotMathBody scans one body (closures excluded — they get their
// own scan, with their own CFG for divisor guards).
func checkSlotMathBody(pass *Pass, body *ast.BlockStmt) {
	var cfg *CFG // built lazily: only divisions need dominance
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.BinaryExpr:
			switch x.Op {
			case token.MUL, token.SHL:
				checkSchedProduct(pass, x.Op, x.X, x.Y, x.OpPos)
			case token.QUO, token.REM:
				cfg = checkSchedDivisor(pass, body, cfg, x.Y)
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
				return true
			}
			switch x.Tok {
			case token.MUL_ASSIGN, token.SHL_ASSIGN:
				op := token.MUL
				if x.Tok == token.SHL_ASSIGN {
					op = token.SHL
				}
				checkSchedProduct(pass, op, x.Lhs[0], x.Rhs[0], x.TokPos)
			case token.QUO_ASSIGN, token.REM_ASSIGN:
				cfg = checkSchedDivisor(pass, body, cfg, x.Rhs[0])
			}
		}
		return true
	})
}

func checkSchedProduct(pass *Pass, op token.Token, lhs, rhs ast.Expr, pos token.Pos) {
	if !mentionsSchedQuantity(pass, lhs) || !mentionsSchedQuantity(pass, rhs) {
		return
	}
	verb, helper := "product", "Mul (or LCM)"
	if op == token.SHL {
		verb, helper = "shift", "Shl"
	}
	pass.Reportf(pos, "unchecked schedule-quantity %s wraps on overflow; use internal/slotmath.%s", verb, helper)
}

// mentionsSchedQuantity reports whether the expression involves an
// integer-typed identifier (or field) with a schedule-quantity name.
func mentionsSchedQuantity(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil || !isIntegerType(obj.Type()) {
			return true
		}
		if isSchedName(id.Name) {
			found = true
		}
		return true
	})
	return found
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isSchedName matches the schedule-quantity vocabulary: periods,
// frequencies, cycles, and slot counts.
func isSchedName(name string) bool {
	l := strings.ToLower(name)
	if strings.Contains(l, "period") || strings.Contains(l, "freq") || strings.Contains(l, "cycle") {
		return true
	}
	switch l {
	case "slot", "slots", "nslots", "slotcount":
		return true
	}
	return false
}

// checkSchedDivisor flags `x / d` and `x % d` where d is a
// schedule-named local or parameter with no dominating guard. It
// builds (and returns, for reuse) the body's CFG only when a candidate
// divisor appears.
func checkSchedDivisor(pass *Pass, body *ast.BlockStmt, cfg *CFG, div ast.Expr) *CFG {
	id, ok := unparen(div).(*ast.Ident)
	if !ok || !isSchedName(id.Name) {
		return cfg
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() || !isIntegerType(v.Type()) {
		return cfg
	}
	if cfg == nil {
		cfg = NewCFG(body)
	}
	if !divisorGuarded(cfg, id, v) {
		pass.Reportf(id.Pos(), "%s may be zero here; guard it (or validate at construction) before dividing", id.Name)
	}
	return cfg
}

// divisorGuarded reports whether every CFG path from the entry to the
// division passes a block containing a comparison of the divisor
// variable: reachability is re-tested with guard blocks removed.
func divisorGuarded(cfg *CFG, div *ast.Ident, v *types.Var) bool {
	var target *Block
	for _, b := range cfg.Blocks {
		for _, nd := range b.Nodes {
			if nd.Pos() <= div.Pos() && div.End() <= nd.End() {
				target = b
			}
		}
	}
	if target == nil {
		return false // not in this body's flow (shouldn't happen): flag
	}
	if target == cfg.Entry {
		// The division is in the entry block: nothing can dominate it
		// (same-block guards are not credited, see below).
		return false
	}
	guards := map[*Block]bool{}
	for _, b := range cfg.Blocks {
		if b == target {
			continue // a guard after the division doesn't count… but in
			// the same straight-line block it precedes it often enough;
			// keeping the division's own block removable would make the
			// check vacuous, so same-block guards are NOT credited.
		}
		for _, nd := range b.Nodes {
			if nodeComparesVar(nd, v) {
				guards[b] = true
			}
		}
	}
	if len(guards) == 0 {
		return false
	}
	// BFS from entry avoiding guard blocks: reaching the division means
	// an unguarded path exists.
	seen := map[*Block]bool{cfg.Entry: true}
	stack := []*Block{cfg.Entry}
	if guards[cfg.Entry] {
		return true // the guard sits before any branch
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if seen[s] || guards[s] {
				continue
			}
			if s == target {
				return false
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return true
}

// nodeComparesVar reports whether the node contains a comparison
// involving the variable (outside nested closures).
func nodeComparesVar(nd ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(nd, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		b, ok := x.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			if exprUsesVar(b.X, v) || exprUsesVar(b.Y, v) {
				found = true
			}
		}
		return true
	})
	return found
}

func exprUsesVar(e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Name == v.Name() {
			found = true
		}
		return !found
	})
	return found
}
