package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrap enforces the typed-sentinel error discipline established by
// the internal/bcerr hierarchy (ErrBadSpec, ErrInfeasible,
// ErrAdmission, ErrDegraded, ...):
//
//   - fmt.Errorf must wrap error arguments with %w, never format them
//     away with %v or %s — otherwise errors.Is callers silently stop
//     matching;
//   - sentinel errors must be compared with errors.Is/errors.As, never
//     with == or != (or switch cases), which miss wrapped values. A
//     sentinel is any package-level error variable named Err* (or EOF,
//     covering io.EOF), in this module or the standard library.
//
// Comparisons against nil are, of course, fine.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "require %w wrapping and errors.Is/As for sentinel errors",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkSentinelCompare(pass, n)
				}
			case *ast.SwitchStmt:
				checkSentinelSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelOf resolves expr to a package-level sentinel error variable,
// or nil.
func sentinelOf(pass *Pass, expr ast.Expr) *types.Var {
	var obj types.Object
	switch e := unparen(expr).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") && v.Name() != "EOF" {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

func checkSentinelCompare(pass *Pass, n *ast.BinaryExpr) {
	for _, side := range []ast.Expr{n.X, n.Y} {
		if s := sentinelOf(pass, side); s != nil {
			pass.Reportf(n.OpPos, "comparison %s sentinel %s misses wrapped errors; use errors.Is", n.Op, s.Name())
			return
		}
	}
}

// checkSentinelSwitch flags `switch err { case ErrX: }`, the switch
// spelling of ==.
func checkSentinelSwitch(pass *Pass, n *ast.SwitchStmt) {
	if n.Tag == nil {
		return
	}
	if t := pass.TypesInfo.TypeOf(n.Tag); t == nil || !implementsError(t) {
		return
	}
	for _, clause := range n.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s := sentinelOf(pass, e); s != nil {
				pass.Reportf(e.Pos(), "switch case on sentinel %s misses wrapped errors; use errors.Is", s.Name())
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that format an error argument
// with a verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	callee := calleeFunc(pass.TypesInfo, call)
	if callee == nil || callee.Name() != "Errorf" || callee.Pkg() == nil || callee.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil || !implementsError(t) {
			continue
		}
		if isNilExpr(pass, arg) {
			continue
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "error formatted with %%%c instead of %%w; errors.Is/As will not match the wrapped sentinel", verbs[i])
		}
	}
}

// formatVerbs extracts the verb letter consumed by each successive
// argument of a Printf-style format string (width/precision stars are
// not handled and simply shift attribution — rare enough in practice).
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision and index components.
		for i < len(format) && strings.ContainsRune("+-# 0.123456789[]", rune(format[i])) {
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
