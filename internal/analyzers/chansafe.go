package analyzers

import (
	"go/ast"
	"go/types"
)

// ChanSafe enforces the channel close/ownership protocol across
// function boundaries, using the module call graph and a bottom-up
// close/send summary per function:
//
//   - a channel must not be closed twice on any path, counting closes
//     a callee performs on a channel it was handed (a `go` callee's
//     close counts immediately — that is exactly a close racing the
//     caller's next send);
//   - nothing may be sent on a channel after a close of it may have
//     happened, directly or by passing the closed channel to a callee
//     whose summary sends on (or closes) it;
//   - a function that closes a channel parameter — itself or via its
//     callees — owns that channel's close side, and must say so in its
//     signature by declaring the parameter send-only (chan<- T), the
//     way station.go's serveLoop does. Closing a receive-only channel
//     is already a compile error, so the receive direction needs no
//     analyzer.
//
// The may-closed state is tracked per function over the shared CFG
// with named channels keyed like lockcheck's guarded fields ("out",
// "mt.stop"); closures run at unknown times and are analyzed as
// separate bodies (deferred closures excluded from the flow — they run
// at exit — but their closes still count toward the summary).
var ChanSafe = &Analyzer{
	Name: "chansafe",
	Doc:  "enforce the channel close/ownership protocol (close once, by the declared owner, never send after close)",
	Run:  runChanSafe,
}

// chanFacts records what a function does to one of its channel-typed
// parameters, directly or through its callees.
type chanFacts struct{ closes, sends bool }

// chanSummary maps parameter index → facts; nil when the function has
// no channel parameters it touches.
type chanSummary map[int]chanFacts

func chanSummaryEqual(a, b chanSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// chanSummaries computes (once per load) the close/send summaries of
// every module function, to fixpoint through the call graph.
func (ix *Index) chanSummaries() map[*cgNode]chanSummary {
	if s, ok := ix.sums["chansafe"].(map[*cgNode]chanSummary); ok {
		return s
	}
	s := summarize(ix.callGraph(), computeChanSummary, chanSummaryEqual)
	ix.sums["chansafe"] = s
	return s
}

func computeChanSummary(n *cgNode, get func(*cgNode) chanSummary) chanSummary {
	if n.Decl.Body == nil {
		return nil
	}
	params := chanParams(n)
	if len(params) == 0 {
		return nil
	}
	info := n.Pkg.TypesInfo
	facts := chanSummary{}
	mark := func(e ast.Expr, closes, sends bool) {
		if !closes && !sends {
			return
		}
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		idx, ok := params[info.Uses[id]]
		if !ok {
			return
		}
		f := facts[idx]
		f.closes = f.closes || closes
		f.sends = f.sends || sends
		facts[idx] = f
	}
	// Direct effects anywhere in the body, closures and defers
	// included: whenever the function runs them, the parameter's
	// channel is affected.
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if isCloseCall(info, x) {
				mark(x.Args[0], true, false)
			}
		case *ast.SendStmt:
			mark(x.Chan, false, true)
		}
		return true
	})
	// Delegated effects: a parameter handed to a static module callee
	// inherits what the callee's summary does to that position.
	for _, site := range n.Out {
		if site.Dynamic || len(site.Callees) != 1 {
			continue
		}
		cs := get(site.Callees[0])
		if len(cs) == 0 {
			continue
		}
		nparams := site.Callees[0].Fn.Signature().Params().Len()
		for ai, arg := range site.Call.Args {
			pi := ai
			if pi >= nparams {
				pi = nparams - 1
			}
			if f, ok := cs[pi]; ok {
				mark(arg, f.closes, f.sends)
			}
		}
	}
	if len(facts) == 0 {
		return nil
	}
	return facts
}

// chanParams maps a declaration's channel-typed parameter objects to
// their flattened parameter index.
func chanParams(n *cgNode) map[types.Object]int {
	out := map[types.Object]int{}
	if n.Decl.Type.Params == nil {
		return out
	}
	info := n.Pkg.TypesInfo
	idx := 0
	for _, field := range n.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				if _, ok := obj.Type().Underlying().(*types.Chan); ok {
					out[obj] = idx
				}
			}
			idx++
		}
	}
	return out
}

func isCloseCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// chanKey names a channel expression for flow tracking, like
// lockcheck's instance keys: identifier/selector chains only, so two
// distinct opaque expressions never alias by accident.
func chanKey(e ast.Expr) (string, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		if base, ok := chanKey(e.X); ok {
			return base + "." + e.Sel.Name, true
		}
	}
	return "", false
}

func runChanSafe(pass *Pass) error {
	g := pass.Index.callGraph()
	sums := pass.Index.chanSummaries()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if n := g.byKey[FuncKey(fn)]; n != nil {
				reportCloseOwnership(pass, n, sums[n])
			}
			closedFlow(pass, g, sums, fd.Body)
			for _, lit := range funcLits(fd.Body) {
				closedFlow(pass, g, sums, lit.Body)
			}
		}
	}
	return nil
}

// reportCloseOwnership flags bidirectional channel parameters the
// function's summary closes: close ownership must be visible in the
// signature.
func reportCloseOwnership(pass *Pass, n *cgNode, sum chanSummary) {
	if len(sum) == 0 || n.Decl.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range n.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			f, ok := sum[idx]
			idx++
			if !ok || !f.closes {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			ch, ok := obj.Type().Underlying().(*types.Chan)
			if !ok || ch.Dir() != types.SendRecv {
				continue
			}
			pass.Reportf(name.Pos(),
				"%s closes bidirectional channel parameter %s; declare it chan<- %s to make close ownership explicit",
				n.Fn.Name(), name.Name, ch.Elem())
		}
	}
}

// closedSet is the may-closed flow state: channel key → closed on some
// path.
type closedSet map[string]bool

func closedFlow(pass *Pass, g *callGraph, sums map[*cgNode]chanSummary, body *ast.BlockStmt) {
	cfg := NewCFG(body)
	transfer := func(b *Block, s closedSet) closedSet {
		return applyClosed(pass, g, sums, b, s, false)
	}
	meet := func(a, b closedSet) closedSet {
		if len(b) == 0 {
			return a
		}
		out := make(closedSet, len(a)+len(b))
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	equal := func(a, b closedSet) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	in := Iterate(cfg, closedSet{}, transfer, meet, equal)
	for _, b := range cfg.Blocks {
		if s, ok := in[b]; ok {
			applyClosed(pass, g, sums, b, s, true)
		}
	}
}

// closedState wraps the flow state with copy-on-write semantics, so
// the transfer function never mutates its input (Iterate requires it).
type closedState struct {
	set    closedSet
	cloned bool
}

func (st *closedState) has(key string) bool { return st.set[key] }

func (st *closedState) add(key string) {
	if st.set[key] {
		return
	}
	if !st.cloned {
		next := make(closedSet, len(st.set)+1)
		for k := range st.set {
			next[k] = true
		}
		st.set, st.cloned = next, true
	}
	st.set[key] = true
}

// applyClosed folds one block over the may-closed state; with report
// set (the post-fixpoint pass) it emits the diagnostics.
func applyClosed(pass *Pass, g *callGraph, sums map[*cgNode]chanSummary, b *Block, state closedSet, report bool) closedSet {
	st := &closedState{set: state}
	for _, nd := range b.Nodes {
		ast.Inspect(nd, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				return false // separate body / runs at exit
			case *ast.SendStmt:
				if key, ok := chanKey(x.Chan); ok && st.has(key) && report {
					pass.Reportf(x.Pos(), "send on %s, which may already be closed", key)
				}
			case *ast.CallExpr:
				if isCloseCall(pass.TypesInfo, x) {
					key, ok := chanKey(x.Args[0])
					if !ok {
						return true
					}
					if st.has(key) {
						if report {
							pass.Reportf(x.Pos(), "second close of %s on this path", key)
						}
					} else {
						st.add(key)
					}
					return true
				}
				applyCalleeEffects(pass, g, sums, x, st, report)
			}
			return true
		})
	}
	return st.set
}

// applyCalleeEffects applies a static module callee's summary to the
// channel arguments of one call: a closed channel handed to a sender
// or closer is a protocol violation, and a callee's close marks the
// argument closed for the rest of the caller (go-statement callees
// included — their close races everything that follows).
func applyCalleeEffects(pass *Pass, g *callGraph, sums map[*cgNode]chanSummary, call *ast.CallExpr, st *closedState, report bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || isInterfaceMethod(fn) {
		return
	}
	callee := g.byKey[FuncKey(fn)]
	if callee == nil {
		return
	}
	cs := sums[callee]
	if len(cs) == 0 {
		return
	}
	nparams := callee.Fn.Signature().Params().Len()
	for ai, arg := range call.Args {
		pi := ai
		if pi >= nparams {
			pi = nparams - 1
		}
		f, ok := cs[pi]
		if !ok {
			continue
		}
		key, ok := chanKey(arg)
		if !ok {
			continue
		}
		if st.has(key) && report {
			switch {
			case f.closes:
				pass.Reportf(arg.Pos(), "%s may already be closed when passed to %s, which closes it", key, callee.Fn.Name())
			case f.sends:
				pass.Reportf(arg.Pos(), "%s may already be closed when passed to %s, which sends on it", key, callee.Fn.Name())
			}
		}
		if f.closes {
			st.add(key)
		}
	}
}
