package analyzers

// summarize runs a generic bottom-up function-summary fixpoint over
// the module call graph: compute derives one function's summary from
// its body and (via get) the current summaries of its callees, and the
// whole map is re-derived until nothing changes. Callee summaries
// start at the zero value of S, so compute must treat a zero summary
// as "nothing known yet" (⊥); with a monotone compute over a bounded
// domain — the usual "union of callee facts, capped" shape — the
// iteration terminates even through recursion and mutual recursion.
//
// This is the interprocedural analogue of cfg.go's Iterate: that one
// propagates facts block-to-block inside a function, this one
// propagates facts callee-to-caller across the module.
func summarize[S any](g *callGraph, compute func(n *cgNode, get func(*cgNode) S) S, equal func(a, b S) bool) map[*cgNode]S {
	cur := map[*cgNode]S{}
	get := func(n *cgNode) S { return cur[n] }
	// maxRounds bounds a non-monotone compute; a correct one stabilizes
	// in O(depth of the call graph) rounds.
	const maxRounds = 1000
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, n := range g.nodes {
			next := compute(n, get)
			if prev, ok := cur[n]; !ok || !equal(prev, next) {
				cur[n] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return cur
}
