package analyzers

import (
	"go/ast"
	"go/types"
)

// This file is the interprocedural layer: a module-wide call graph
// built from the loader's typed ASTs. The intra-procedural analyzers
// see one function at a time; the protocol analyzers (chansafe,
// cancelflow) need to know who calls whom — including through `go`,
// `defer`, and dynamic interface dispatch — before they can reason
// about channel ownership or cancellation gates across function
// boundaries. The graph is built once per load and cached on the
// Index, like lockorder's acquisition graph.
//
// Cross-package identity: each package is type-checked from source
// with dependencies imported from export data, so the *types.Func for
// a function differs between the package that declares it and the
// packages that import it. Nodes are therefore keyed by FuncKey, which
// is stable across both views.

// A cgNode is one function declaration in the module.
type cgNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out are the node's call sites in source order; In are the sites
	// that may call it.
	Out []*callSite
	In  []*callSite
}

// A callSite is one call expression inside a caller, with its resolved
// module-internal targets.
type callSite struct {
	Caller *cgNode
	Call   *ast.CallExpr
	// Callees are the possible targets declared in the module: exactly
	// one for a static call, every satisfying method for dynamic
	// interface dispatch, none for calls leaving the module or calls of
	// opaque function values.
	Callees []*cgNode
	// Go and Defer mark `go f()` and `defer f()` sites; InLit marks
	// calls syntactically inside a function literal of the caller (the
	// literal runs at an unknown time, possibly on another goroutine).
	Go, Defer, InLit bool
	// Dynamic marks calls not resolved statically: interface dispatch
	// (Callees lists the implementations) or a bare function value
	// (Callees empty).
	Dynamic bool
}

// A callGraph spans every function declaration of the loaded module.
type callGraph struct {
	nodes []*cgNode
	byKey map[string]*cgNode
	// named are the module's named (non-alias) types, for resolving
	// interface dispatch to the implementations that exist here.
	named []*types.Named
}

// callGraph builds (once) the module call graph over every loaded
// package.
func (ix *Index) callGraph() *callGraph {
	if ix.cg != nil {
		return ix.cg
	}
	g := &callGraph{byKey: map[string]*cgNode{}}
	for _, pkg := range ix.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &cgNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes = append(g.nodes, n)
				g.byKey[FuncKey(fn)] = n
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				g.named = append(g.named, named)
			}
		}
	}
	for _, n := range g.nodes {
		if n.Decl.Body != nil {
			g.collectCalls(n)
		}
	}
	ix.cg = g
	return g
}

// collectCalls records every call expression in n's body as an
// outgoing site, resolving targets through the graph.
func (g *callGraph) collectCalls(n *cgNode) {
	body := n.Decl.Body
	// Pre-pass: which CallExprs are go/defer statements, and which
	// source ranges belong to function literals.
	goCalls := map[*ast.CallExpr]bool{}
	deferCalls := map[*ast.CallExpr]bool{}
	type span struct{ lo, hi int }
	var lits []span
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			goCalls[x.Call] = true
		case *ast.DeferStmt:
			deferCalls[x.Call] = true
		case *ast.FuncLit:
			lits = append(lits, span{int(x.Body.Pos()), int(x.Body.End())})
		}
		return true
	})
	inLit := func(pos int) bool {
		for _, s := range lits {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}
	info := n.Pkg.TypesInfo
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := unparen(call.Fun)
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		if id, ok := fun.(*ast.Ident); ok {
			if _, ok := info.Uses[id].(*types.Builtin); ok {
				return true
			}
		}
		site := &callSite{
			Caller: n,
			Call:   call,
			Go:     goCalls[call],
			Defer:  deferCalls[call],
			InLit:  inLit(int(call.Pos())),
		}
		switch fn := calleeFunc(info, call); {
		case fn == nil:
			site.Dynamic = true // opaque function value
		case isInterfaceMethod(fn):
			site.Dynamic = true
			site.Callees = g.implementations(fn)
		default:
			if node := g.byKey[FuncKey(fn)]; node != nil {
				site.Callees = []*cgNode{node}
			}
		}
		n.Out = append(n.Out, site)
		for _, c := range site.Callees {
			c.In = append(c.In, site)
		}
		return true
	})
}

// isInterfaceMethod reports whether fn is declared on an interface, so
// a call of it dispatches dynamically.
func isInterfaceMethod(fn *types.Func) bool {
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	_, ok := recv.Type().Underlying().(*types.Interface)
	return ok
}

// implementations resolves an interface method to the module-declared
// methods that can satisfy the dispatch: for every module named type
// whose method set (value or pointer) implements the interface, the
// concrete method of the same name.
func (g *callGraph) implementations(fn *types.Func) []*cgNode {
	recv := fn.Signature().Recv()
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*cgNode
	for _, named := range g.named {
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, fn.Pkg(), fn.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := g.byKey[FuncKey(m)]; node != nil {
			out = append(out, node)
		}
	}
	return out
}

// reachableFrom returns every node reachable (over static edges,
// resolved dynamic dispatch, go, and defer) from the nodes seed
// accepts.
func (g *callGraph) reachableFrom(seed func(*cgNode) bool) map[*cgNode]bool {
	seen := map[*cgNode]bool{}
	var stack []*cgNode
	for _, n := range g.nodes {
		if seed(n) {
			seen[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range n.Out {
			for _, c := range s.Callees {
				if !seen[c] {
					seen[c] = true
					stack = append(stack, c)
				}
			}
		}
	}
	return seen
}

// exportedEntry reports whether n is an API entry point: an exported
// function or method, or a main function.
func exportedEntry(n *cgNode) bool {
	return n.Decl.Name.IsExported() || n.Fn.Name() == "main"
}
