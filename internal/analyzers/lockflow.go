package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockflow is the shared held-mutex dataflow that lockcheck and
// lockorder run over the CFG: a forward must-analysis whose state is
// the set of locks provably held, merged by intersection at joins.
//
// Locks are tracked under two names:
//
//   - the instance key ("st.mu", "c.stations[].mu"), an exprKey-based
//     rendering of the selector chain, which lockcheck compares against
//     guarded accesses on the same chain; and
//   - the class key ("pkg.(Station).mu" for a field,
//     "pkg.registryMu" for a package-level mutex, "" for a local),
//     which lockorder uses to build the module-wide acquisition graph —
//     every instance of Station.mu is one class, since any two
//     instances could be the two sides of a deadlock.

// lockState maps held-lock instance keys to their class keys.
type lockState map[string]string

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// lockMeet intersects two states: a lock is held after a join only if
// it is held on every path.
func lockMeet(a, b lockState) lockState {
	out := lockState{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func lockEq(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// lockHooks are the callbacks a reporting pass threads through the
// transfer function; the fixpoint pass runs with zero hooks.
type lockHooks struct {
	// access fires at every selector expression, with the current
	// held set (lockcheck's guarded-field check).
	access func(sel *ast.SelectorExpr, held lockState)
	// acquire fires at every Lock/RLock call, before the lock is added
	// to the state (lockorder's edge collection).
	acquire func(pos token.Pos, class string, held lockState)
}

// applyLockNode folds one CFG node over held, firing hooks. Deferred
// statements are skipped entirely — a deferred Unlock releases at
// function end, so the region stays held, and a deferred closure runs
// under unknown state. Function literals are skipped too: analyses
// visit their bodies separately, lock-free (see funcLits).
func applyLockNode(info *types.Info, n ast.Node, held lockState, h lockHooks) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	if g, ok := n.(*ast.GoStmt); ok {
		// The spawned body runs later without the current locks; only
		// the call's function and argument expressions evaluate now.
		n = g.Call
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if op := lockOpOf(info, n); op != nil {
				switch op.op {
				case "Lock", "RLock":
					if h.acquire != nil {
						h.acquire(n.Pos(), op.class, held)
					}
					held[op.key] = op.class
				case "Unlock", "RUnlock":
					delete(held, op.key)
				}
			}
		case *ast.SelectorExpr:
			if h.access != nil {
				h.access(n, held)
			}
		}
		return true
	})
}

// lockFlow runs the held-lock analysis over one function body: a
// fixpoint pass to compute every block's entry state, then a reporting
// pass that replays the transfer function with the hooks attached.
func lockFlow(info *types.Info, body *ast.BlockStmt, entry lockState, h lockHooks) {
	g := NewCFG(body)
	transfer := func(b *Block, s lockState) lockState {
		out := s.clone()
		for _, n := range b.Nodes {
			applyLockNode(info, n, out, lockHooks{})
		}
		return out
	}
	in := Iterate(g, entry, transfer, lockMeet, lockEq)
	for _, b := range g.Blocks {
		s, ok := in[b]
		if !ok {
			continue // unreachable
		}
		held := s.clone()
		for _, n := range b.Nodes {
			applyLockNode(info, n, held, h)
		}
	}
}

// lockOpRec describes one recognized mutex operation call site.
type lockOpRec struct {
	key   string // instance key ("st.mu")
	class string // class key ("pkg.(Station).mu"), "" when unresolvable
	op    string // Lock, RLock, Unlock, RUnlock
}

// lockOpOf recognizes <base>.<mu>.Lock() and friends.
func lockOpOf(info *types.Info, call *ast.CallExpr) *lockOpRec {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	switch base := unparen(sel.X).(type) {
	case *ast.SelectorExpr: // x.mu.Lock()
		return &lockOpRec{
			key:   exprKey(base.X) + "." + base.Sel.Name,
			class: lockClassOfSelector(info, base),
			op:    op,
		}
	case *ast.Ident: // mu.Lock() on a package-level or local mutex
		return &lockOpRec{
			key:   base.Name,
			class: lockClassOfObject(info.Uses[base]),
			op:    op,
		}
	}
	return nil
}

// lockClassOfSelector names the module-wide class of the mutex
// selected by sel: "pkg.(T).mu" for a field of named type T,
// "pkg.mu" for a package-level variable accessed pkg-qualified.
func lockClassOfSelector(info *types.Info, sel *ast.SelectorExpr) string {
	if s, ok := info.Selections[sel]; ok {
		if named, ok := derefType(s.Recv()).(*types.Named); ok && named.Obj().Pkg() != nil {
			return lockClassOfField(named.Obj(), sel.Sel.Name)
		}
		return ""
	}
	return lockClassOfObject(info.Uses[sel.Sel])
}

// lockClassOfField renders the class key of field mu on named type T.
func lockClassOfField(t *types.TypeName, mu string) string {
	return t.Pkg().Path() + ".(" + t.Name() + ")." + mu
}

// lockClassOfObject names a package-level mutex variable, or "" for
// locals (a function-scoped mutex cannot participate in a cross-
// function ordering).
func lockClassOfObject(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// callerHeldLocks builds the entry lock state a function's annotations
// assert: //pinlint:holds mu maps mu to the receiver's (or package's)
// mutex of that name, and the xxxLocked suffix convention maps to every
// mutex-typed field of the receiver. Instance keys use the receiver
// ident so guarded-access chains line up ("mt.mu" for func (mt *T)).
func callerHeldLocks(pkg *Package, index *Index, fd *ast.FuncDecl, fn *types.Func) lockState {
	entry := lockState{}
	recvName := ""
	var recvType *types.TypeName
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if len(fd.Recv.List[0].Names) == 1 {
			recvName = fd.Recv.List[0].Names[0].Name
		}
		if recv := fn.Signature().Recv(); recv != nil {
			if named, ok := derefType(recv.Type()).(*types.Named); ok {
				recvType = named.Obj()
			}
		}
	}
	addField := func(name string) {
		if recvType == nil {
			return
		}
		key := name
		if recvName != "" {
			key = recvName + "." + name
		}
		entry[key] = lockClassOfField(recvType, name)
	}
	if names := index.Arg(fn, "holds"); names != "" {
		for _, mu := range strings.Fields(names) {
			if recvType != nil && structHasMutexField(recvType, mu) {
				addField(mu)
			} else if obj := pkg.Types.Scope().Lookup(mu); obj != nil && isMutexType(obj.Type()) {
				entry[mu] = lockClassOfObject(obj)
			}
		}
	}
	if strings.HasSuffix(fn.Name(), "Locked") && recvType != nil {
		if st, ok := recvType.Type().Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if f := st.Field(i); isMutexType(f.Type()) {
					addField(f.Name())
				}
			}
		}
	}
	return entry
}

// structHasMutexField reports whether named type t has a mutex-typed
// field of the given name.
func structHasMutexField(t *types.TypeName, name string) bool {
	st, ok := t.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name && isMutexType(f.Type()) {
			return true
		}
	}
	return false
}
