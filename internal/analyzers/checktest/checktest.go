// Package checktest runs pinlint analyzers over fixture packages and
// compares their diagnostics against `// want "regexp"` expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library alone.
//
// A fixture line may carry several expectations:
//
//	x := rand.Intn(6) // want "global math/rand"
//
// Every diagnostic must match an expectation on its line, and every
// expectation must be matched by exactly one diagnostic.
package checktest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pinbcast/internal/analyzers"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)

// Run loads the fixture package at dir (relative to the test's working
// directory), applies the analyzer, and reports mismatches between its
// diagnostics and the fixture's want comments as test errors.
func Run(t *testing.T, a *analyzers.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, index, err := analyzers.LoadAndIndex(abs, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		diags, err := analyzers.Run(a, pkg, index)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		wants := collectWants(t, pkg.Fset, pkg)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !wants.match(pos, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		wants.reportUnmatched(t)
	}
}

type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ list []*wantExpectation }

// collectWants scans the fixture sources for want comments. It reads
// the files directly rather than the AST so expectations survive in
// any comment position.
func collectWants(t *testing.T, fset *token.FileSet, pkg *analyzers.Package) *wantSet {
	t.Helper()
	set := &wantSet{}
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		name := fset.Position(f.Pos()).Filename
		if seen[name] {
			continue
		}
		seen[name] = true
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			for _, pattern := range splitQuoted(t, name, i+1, m[1]) {
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pattern, err)
				}
				set.list = append(set.list, &wantExpectation{file: name, line: i + 1, re: re})
			}
		}
	}
	return set
}

// splitQuoted extracts the quoted regexps of one want comment.
func splitQuoted(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s:%d: malformed want comment near %q", file, line, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s:%d: unterminated want pattern", file, line)
		}
		pattern, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, s[:end+1], err)
		}
		out = append(out, pattern)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

func (ws *wantSet) match(pos token.Position, message string) bool {
	for _, w := range ws.list {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, w := range ws.list {
		if !w.matched {
			t.Errorf("%s: no diagnostic matched want %q", fmt.Sprintf("%s:%d", w.file, w.line), w.re)
		}
	}
}
