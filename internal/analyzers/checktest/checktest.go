// Package checktest runs pinlint analyzers over fixture packages and
// compares their diagnostics against `// want "regexp"` expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library alone.
//
// A fixture line may carry several expectations, and an expectation may
// carry a count when one line produces the same diagnostic repeatedly:
//
//	x := rand.Intn(6)  // want "global math/rand"
//	a, b := alloc()    // want "escapes" 2
//
// Every diagnostic must match an expectation on its line, and every
// expectation must be matched exactly its count's worth of times (one,
// when no count is given). On any mismatch the failure report includes
// a line-sorted diff of got-vs-want for the whole package, so a fixture
// edit that shifts lines reads as a diff rather than error confetti.
package checktest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"pinbcast/internal/analyzers"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)

// Run loads the fixture package at dir (relative to the test's working
// directory), applies the analyzer, and reports mismatches between its
// diagnostics and the fixture's want comments as test errors.
func Run(t *testing.T, a *analyzers.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, index, err := analyzers.LoadAndIndex(abs, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		diags, err := analyzers.Run(a, pkg, index)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		wants := collectWants(t, pkg.Fset, pkg)
		mismatch := false
		var got []diagLine
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			got = append(got, diagLine{file: pos.Filename, line: pos.Line, text: d.Message})
			if !wants.match(pos, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
				mismatch = true
			}
		}
		if wants.reportUnmatched(t) {
			mismatch = true
		}
		if mismatch {
			t.Errorf("%s on %s, got-vs-want diff:\n%s", a.Name, pkg.PkgPath, wants.diff(got))
		}
	}
}

type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
	// count is how many diagnostics must match (1 unless the fixture
	// says otherwise); hits is how many did.
	count, hits int
}

type wantSet struct{ list []*wantExpectation }

// collectWants scans the fixture sources for want comments. It reads
// the files directly rather than the AST so expectations survive in
// any comment position.
func collectWants(t *testing.T, fset *token.FileSet, pkg *analyzers.Package) *wantSet {
	t.Helper()
	set := &wantSet{}
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		name := fset.Position(f.Pos()).Filename
		if seen[name] {
			continue
		}
		seen[name] = true
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			for _, e := range splitQuoted(t, name, i+1, m[1]) {
				re, err := regexp.Compile(e.pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, e.pattern, err)
				}
				set.list = append(set.list, &wantExpectation{file: name, line: i + 1, re: re, count: e.count})
			}
		}
	}
	return set
}

// A rawWant is one parsed expectation: the regexp source and its count.
type rawWant struct {
	pattern string
	count   int
}

// splitQuoted extracts the quoted regexps of one want comment, each
// optionally followed by a decimal repeat count.
func splitQuoted(t *testing.T, file string, line int, s string) []rawWant {
	t.Helper()
	var out []rawWant
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s:%d: malformed want comment near %q", file, line, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s:%d: unterminated want pattern", file, line)
		}
		pattern, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, s[:end+1], err)
		}
		s = strings.TrimSpace(s[end+1:])
		count := 1
		if len(s) > 0 && s[0] >= '0' && s[0] <= '9' {
			num := s
			if sp := strings.IndexByte(s, ' '); sp >= 0 {
				num, s = s[:sp], strings.TrimSpace(s[sp+1:])
			} else {
				s = ""
			}
			count, err = strconv.Atoi(num)
			if err != nil || count < 1 {
				t.Fatalf("%s:%d: bad want count %q", file, line, num)
			}
		}
		out = append(out, rawWant{pattern: pattern, count: count})
	}
	return out
}

func (ws *wantSet) match(pos token.Position, message string) bool {
	for _, w := range ws.list {
		if w.hits < w.count && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(message) {
			w.hits++
			return true
		}
	}
	return false
}

// reportUnmatched flags every under-matched expectation and reports
// whether any were found.
func (ws *wantSet) reportUnmatched(t *testing.T) bool {
	t.Helper()
	found := false
	for _, w := range ws.list {
		if w.hits < w.count {
			t.Errorf("%s:%d: %d of %d diagnostics matched want %q", w.file, w.line, w.hits, w.count, w.re)
			found = true
		}
	}
	return found
}

// A diagLine is one got-side entry of the diff.
type diagLine struct {
	file string
	line int
	text string
}

// diff renders the full got-vs-want table sorted by position, one line
// per entry, for mismatch reports.
func (ws *wantSet) diff(got []diagLine) string {
	type row struct {
		file string
		line int
		text string
	}
	var rows []row
	for _, g := range got {
		rows = append(rows, row{g.file, g.line, fmt.Sprintf("got:  %s", g.text)})
	}
	for _, w := range ws.list {
		text := fmt.Sprintf("want: %v", w.re)
		if w.count > 1 {
			text = fmt.Sprintf("%s x%d", text, w.count)
		}
		rows = append(rows, row{w.file, w.line, text})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].file != rows[j].file {
			return rows[i].file < rows[j].file
		}
		if rows[i].line != rows[j].line {
			return rows[i].line < rows[j].line
		}
		// want sorts after got on the same line.
		return strings.HasPrefix(rows[i].text, "got:") && strings.HasPrefix(rows[j].text, "want:")
	})
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "  %s:%d: %s\n", filepath.Base(r.file), r.line, r.text)
	}
	return b.String()
}
