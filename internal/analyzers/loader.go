package analyzers

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked target package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Exports maps import paths to compiler export data files for
	// every package of the load (shared across packages). allocprove
	// feeds it to `go tool compile -importcfg` so the real compiler's
	// escape analysis runs against the same dependency snapshot the
	// type checker saw, immune to build caching.
	Exports map[string]string
}

// GoFiles returns the package's source file names as parsed.
func (p *Package) GoFiles() []string {
	var names []string
	seen := map[string]bool{}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return names
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves the patterns with `go list -export` (run in dir, which
// must lie inside a module), then parses and type-checks every matched
// package from source. Dependencies — including dependencies between
// matched packages — are imported from compiler export data out of the
// build cache, the same way `go vet` loads types, so loading works
// fully offline. The returned packages are sorted by import path; the
// second result is the module path.
func Load(dir string, patterns ...string) ([]*Package, string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,GoFiles,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, "", fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listedPackage
	module := ""
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, "", fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, "", fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
			if module == "" && p.Module != nil {
				module = p.Module.Path
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typeCheck(fset, imp, t)
		if err != nil {
			return nil, "", err
		}
		pkg.Exports = exports
		pkgs = append(pkgs, pkg)
	}
	return pkgs, module, nil
}

// typeCheck parses one listed package's (non-test) files and
// type-checks them against the shared importer.
func typeCheck(fset *token.FileSet, imp types.Importer, t *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		PkgPath:   t.ImportPath,
		Dir:       t.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// LoadAndIndex loads the patterns and builds the module-wide annotation
// index over every loaded package in one step — the standard prelude
// for running analyzers.
func LoadAndIndex(dir string, patterns ...string) ([]*Package, *Index, error) {
	pkgs, module, err := Load(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	index := NewIndex(module)
	for _, pkg := range pkgs {
		index.AddPackage(pkg)
	}
	return pkgs, index, nil
}
