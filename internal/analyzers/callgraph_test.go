package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typeCheckSource type-checks one import-free source file into a
// Package registered on a fresh Index, so call-graph and summary tests
// run without the go-list loader.
func typeCheckSource(t *testing.T, src string) (*Package, *Index) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	tpkg, err := conf.Check("testmod/p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	pkg := &Package{PkgPath: "testmod/p", Fset: fset, Files: []*ast.File{file}, Types: tpkg, TypesInfo: info}
	ix := NewIndex("testmod")
	ix.AddPackage(pkg)
	return pkg, ix
}

// node looks a function up by FuncKey suffix ("Name" or "(Recv).Name").
func (g *callGraph) node(t *testing.T, key string) *cgNode {
	t.Helper()
	n := g.byKey["testmod/p."+key]
	if n == nil {
		t.Fatalf("no call-graph node %q; have %v", key, keysOf(g.byKey))
	}
	return n
}

func keysOf(m map[string]*cgNode) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestCallGraphStaticResolution(t *testing.T) {
	_, ix := typeCheckSource(t, `package p
func leaf() {}
func mid()  { leaf() }
func Top()  { mid(); go mid(); defer leaf() }
`)
	g := ix.callGraph()
	top := g.node(t, "Top")
	if len(top.Out) != 3 {
		t.Fatalf("Top has %d call sites, want 3", len(top.Out))
	}
	var goSites, deferSites int
	for _, s := range top.Out {
		if s.Dynamic {
			t.Errorf("static call marked dynamic: %v", s.Call.Fun)
		}
		if len(s.Callees) != 1 {
			t.Fatalf("static site resolved to %d callees, want 1", len(s.Callees))
		}
		if s.Go {
			goSites++
		}
		if s.Defer {
			deferSites++
		}
	}
	if goSites != 1 || deferSites != 1 {
		t.Errorf("go/defer flags: %d/%d, want 1/1", goSites, deferSites)
	}
	leaf := g.node(t, "leaf")
	if len(leaf.In) != 2 { // mid()'s call + Top's defer
		t.Errorf("leaf has %d incoming sites, want 2", len(leaf.In))
	}
}

func TestCallGraphDynamicDispatch(t *testing.T) {
	_, ix := typeCheckSource(t, `package p
type worker interface{ work() }
type a struct{}
type b struct{}
type other struct{}
func (a) work()      {}
func (*b) work()     {}
func (other) rest()  {}
func Drive(w worker) { w.work() }
`)
	g := ix.callGraph()
	drive := g.node(t, "Drive")
	if len(drive.Out) != 1 {
		t.Fatalf("Drive has %d sites, want 1", len(drive.Out))
	}
	site := drive.Out[0]
	if !site.Dynamic {
		t.Error("interface dispatch not marked dynamic")
	}
	got := map[string]bool{}
	for _, c := range site.Callees {
		got[FuncKey(c.Fn)] = true
	}
	if len(got) != 2 || !got["testmod/p.(a).work"] || !got["testmod/p.(b).work"] {
		t.Errorf("dispatch resolved to %v, want a.work and b.work", keysOfBool(got))
	}
}

func keysOfBool(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestCallGraphFuncLitAndOpaqueValue(t *testing.T) {
	_, ix := typeCheckSource(t, `package p
func leaf() {}
func Top(f func()) {
	go func() { leaf() }()
	f()
}
`)
	g := ix.callGraph()
	top := g.node(t, "Top")
	var litCall, opaque *callSite
	for _, s := range top.Out {
		if s.InLit {
			litCall = s
		} else if s.Dynamic {
			opaque = s
		}
	}
	if litCall == nil || len(litCall.Callees) != 1 || FuncKey(litCall.Callees[0].Fn) != "testmod/p.leaf" {
		t.Errorf("call inside goroutine literal not attributed to Top: %+v", litCall)
	}
	if opaque == nil || len(opaque.Callees) != 0 {
		t.Errorf("opaque function-value call should be dynamic with no callees: %+v", opaque)
	}
}

func TestCallGraphReachability(t *testing.T) {
	_, ix := typeCheckSource(t, `package p
func reached()    {}
func alsoReached() { reached() }
func Entry()       { alsoReached() }
func orphan()      {}
`)
	g := ix.callGraph()
	seen := g.reachableFrom(exportedEntry)
	want := map[string]bool{"Entry": true, "alsoReached": true, "reached": true, "orphan": false}
	for name, wantIn := range want {
		if got := seen[g.node(t, name)]; got != wantIn {
			t.Errorf("reachable[%s] = %v, want %v", name, got, wantIn)
		}
	}
}

func TestCallGraphRecursion(t *testing.T) {
	// Mutual recursion must neither loop the builder nor the traversal.
	_, ix := typeCheckSource(t, `package p
func ping(n int) { if n > 0 { pong(n - 1) } }
func pong(n int) { if n > 0 { ping(n - 1) } }
func Entry()     { ping(3) }
`)
	g := ix.callGraph()
	seen := g.reachableFrom(exportedEntry)
	if !seen[g.node(t, "ping")] || !seen[g.node(t, "pong")] {
		t.Error("mutually recursive pair not reachable from Entry")
	}
}
