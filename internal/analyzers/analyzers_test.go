package analyzers_test

import (
	"go/types"
	"testing"

	"pinbcast/internal/analyzers"
	"pinbcast/internal/analyzers/checktest"
)

// Each analyzer is proven against a bad fixture (every diagnostic
// matched by a // want expectation, so the flagged line count is > 0)
// and a good fixture (zero diagnostics).

func TestHotPath(t *testing.T) {
	checktest.Run(t, analyzers.HotPath, "testdata/src/hotpathbad")
	checktest.Run(t, analyzers.HotPath, "testdata/src/hotpathgood")
}

func TestNoRand(t *testing.T) {
	checktest.Run(t, analyzers.NoRand, "testdata/src/norandbad")
	checktest.Run(t, analyzers.NoRand, "testdata/src/norandgood")
}

func TestLockCheck(t *testing.T) {
	checktest.Run(t, analyzers.LockCheck, "testdata/src/lockcheckbad")
	checktest.Run(t, analyzers.LockCheck, "testdata/src/lockcheckgood")
}

func TestCycleBoundary(t *testing.T) {
	checktest.Run(t, analyzers.CycleBoundary, "testdata/src/cycleboundarybad")
	checktest.Run(t, analyzers.CycleBoundary, "testdata/src/cycleboundarygood")
}

func TestErrWrap(t *testing.T) {
	checktest.Run(t, analyzers.ErrWrap, "testdata/src/errwrapbad")
	checktest.Run(t, analyzers.ErrWrap, "testdata/src/errwrapgood")
}

// TestFuncKey pins the symbol-key format the annotation index relies
// on for cross-package lookups: methods are keyed without the pointer,
// so source-checked and export-data objects agree.
func TestFuncKey(t *testing.T) {
	pkgs, _, err := analyzers.LoadAndIndex("testdata/src/cycleboundarygood", ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	fn, ok := pkg.Types.Scope().Lookup("New").(*types.Func)
	if !ok {
		t.Fatal("New not found")
	}
	if got, want := analyzers.FuncKey(fn), pkg.PkgPath+".New"; got != want {
		t.Errorf("FuncKey(New) = %q, want %q", got, want)
	}
	station, ok := pkg.Types.Scope().Lookup("station").(*types.TypeName)
	if !ok {
		t.Fatal("station not found")
	}
	named := station.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "swap" {
			continue
		}
		if got, want := analyzers.FuncKey(m), pkg.PkgPath+".(station).swap"; got != want {
			t.Errorf("FuncKey(swap) = %q, want %q", got, want)
		}
	}
}
