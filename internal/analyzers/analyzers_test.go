package analyzers_test

import (
	"go/types"
	"testing"

	"pinbcast/internal/analyzers"
	"pinbcast/internal/analyzers/checktest"
)

// Each analyzer is proven against a bad fixture (every diagnostic
// matched by a // want expectation, so the flagged line count is > 0)
// and a good fixture (zero diagnostics).

func TestHotPath(t *testing.T) {
	checktest.Run(t, analyzers.HotPath, "testdata/src/hotpathbad")
	checktest.Run(t, analyzers.HotPath, "testdata/src/hotpathgood")
}

func TestNoRand(t *testing.T) {
	checktest.Run(t, analyzers.NoRand, "testdata/src/norandbad")
	checktest.Run(t, analyzers.NoRand, "testdata/src/norandgood")
}

func TestLockCheck(t *testing.T) {
	checktest.Run(t, analyzers.LockCheck, "testdata/src/lockcheckbad")
	checktest.Run(t, analyzers.LockCheck, "testdata/src/lockcheckgood")
}

func TestAllocProve(t *testing.T) {
	checktest.Run(t, analyzers.AllocProve, "testdata/src/allocprovebad")
	checktest.Run(t, analyzers.AllocProve, "testdata/src/allocprovegood")
}

func TestLockOrder(t *testing.T) {
	checktest.Run(t, analyzers.LockOrder, "testdata/src/lockorderbad")
	checktest.Run(t, analyzers.LockOrder, "testdata/src/lockordergood")
}

func TestGoroLeak(t *testing.T) {
	checktest.Run(t, analyzers.GoroLeak, "testdata/src/goroleakbad")
	checktest.Run(t, analyzers.GoroLeak, "testdata/src/goroleakgood")
}

func TestCycleBoundary(t *testing.T) {
	checktest.Run(t, analyzers.CycleBoundary, "testdata/src/cycleboundarybad")
	checktest.Run(t, analyzers.CycleBoundary, "testdata/src/cycleboundarygood")
}

func TestErrWrap(t *testing.T) {
	checktest.Run(t, analyzers.ErrWrap, "testdata/src/errwrapbad")
	checktest.Run(t, analyzers.ErrWrap, "testdata/src/errwrapgood")
}

func TestChanSafe(t *testing.T) {
	checktest.Run(t, analyzers.ChanSafe, "testdata/src/chansafebad")
	checktest.Run(t, analyzers.ChanSafe, "testdata/src/chansafegood")
}

func TestCancelFlow(t *testing.T) {
	checktest.Run(t, analyzers.CancelFlow, "testdata/src/cancelflowbad")
	checktest.Run(t, analyzers.CancelFlow, "testdata/src/cancelflowgood")
}

func TestSlotMath(t *testing.T) {
	checktest.Run(t, analyzers.SlotMath, "testdata/src/slotmathbad")
	checktest.Run(t, analyzers.SlotMath, "testdata/src/slotmathgood")
}

func TestWaiverLint(t *testing.T) {
	checktest.Run(t, analyzers.WaiverLint, "testdata/src/waiverlintbad")
	checktest.Run(t, analyzers.WaiverLint, "testdata/src/waiverlintgood")
}

// TestModuleClean is the suite's self-check: every analyzer over every
// package of the module must report nothing. This is the same gate CI's
// lint job enforces through cmd/pinlint, kept here so `go test` alone
// proves the tree honors its own annotations.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, index, err := analyzers.LoadAndIndex("../..", "pinbcast/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers.All() {
			diags, err := analyzers.Run(a, pkg, index)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			}
		}
	}
}

// TestFuncKey pins the symbol-key format the annotation index relies
// on for cross-package lookups: methods are keyed without the pointer,
// so source-checked and export-data objects agree.
func TestFuncKey(t *testing.T) {
	pkgs, _, err := analyzers.LoadAndIndex("testdata/src/cycleboundarygood", ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	fn, ok := pkg.Types.Scope().Lookup("New").(*types.Func)
	if !ok {
		t.Fatal("New not found")
	}
	if got, want := analyzers.FuncKey(fn), pkg.PkgPath+".New"; got != want {
		t.Errorf("FuncKey(New) = %q, want %q", got, want)
	}
	station, ok := pkg.Types.Scope().Lookup("station").(*types.TypeName)
	if !ok {
		t.Fatal("station not found")
	}
	named := station.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "swap" {
			continue
		}
		if got, want := analyzers.FuncKey(m), pkg.PkgPath+".(station).swap"; got != want {
			t.Errorf("FuncKey(swap) = %q, want %q", got, want)
		}
	}
}
