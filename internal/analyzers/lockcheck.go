package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces `guarded by` field comments: a struct field
// documented
//
//	gen *generation // guarded by mu
//
// may only be accessed while the named sibling mutex is held. The
// analysis is intra-package and conservative: within each function it
// tracks Lock/RLock and Unlock/RUnlock calls on every path (branches
// merge by intersection, so a conditionally taken lock does not count),
// and flags any guarded access outside a held region.
//
// Escape hatches, in keeping with the codebase's conventions:
//
//   - functions annotated //pinlint:holds <mu> assert their caller
//     holds <mu> (the `xxxLocked` name-suffix convention asserts the
//     same for every mutex);
//   - accesses through a receiver or local that the function itself
//     just constructed (s := &Station{...}) are exempt — the value is
//     not yet shared;
//   - a deferred Unlock keeps the lock held to the end of the
//     function, as it does dynamically.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "check that `guarded by mu` fields are accessed with the mutex held",
	Run:  runLockCheck,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

func runLockCheck(pass *Pass) error {
	guards := guardedFields(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			w := &lockWalker{
				pass:    pass,
				guards:  guards,
				trusted: trustedMutexes(pass, fn),
				local:   locallyConstructed(pass, fd.Body),
			}
			w.stmts(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

// guardedFields maps struct field objects to the name of the sibling
// mutex that guards them, from `guarded by <mu>` field comments.
func guardedFields(pass *Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardName(field.Doc)
				if mu == "" {
					mu = guardName(field.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardName(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// trustedMutexes returns the mutex names the function asserts are held
// by its caller: the //pinlint:holds argument, or every mutex ("*")
// for the xxxLocked naming convention.
func trustedMutexes(pass *Pass, fn *types.Func) map[string]bool {
	trusted := map[string]bool{}
	if strings.HasSuffix(fn.Name(), "Locked") {
		trusted["*"] = true
	}
	if arg := pass.Index.Arg(fn, "holds"); arg != "" {
		for _, mu := range strings.Fields(arg) {
			trusted[mu] = true
		}
	}
	return trusted
}

// locallyConstructed collects objects assigned a fresh composite
// literal or new(T) in this function: values not yet visible to other
// goroutines, whose guarded fields may be touched lock-free.
func locallyConstructed(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	local := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !isFreshValue(pass, rhs) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					local[obj] = true
				}
			}
		}
		return true
	})
	return local
}

func isFreshValue(pass *Pass, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := e.X.(*ast.CompositeLit)
		return e.Op.String() == "&" && lit
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// lockWalker carries one function's analysis context.
type lockWalker struct {
	pass    *Pass
	guards  map[types.Object]string
	trusted map[string]bool
	local   map[types.Object]bool
}

// stmts walks a statement list, threading the held-lock set through it,
// and reports whether the list always terminates (return/branch/panic)
// rather than falling through.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, held)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, held)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		// A deferred Unlock releases at function end; the region stays
		// held for analysis. Deferred closure bodies run under unknown
		// state and are skipped.
	case *ast.GoStmt:
		// The goroutine runs later, without the current locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, map[string]bool{})
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		thenHeld := clone(held)
		thenTerm := w.stmts(s.Body.List, thenHeld)
		elseHeld := clone(held)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(held, elseHeld)
		case elseTerm:
			replace(held, thenHeld)
		default:
			replace(held, intersect(thenHeld, elseHeld))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		bodyHeld := clone(held)
		w.stmts(s.Body.List, bodyHeld)
		if s.Post != nil {
			w.stmt(s.Post, bodyHeld)
		}
		// After the loop: it may have run zero times, so only locks
		// held both before and at body exit survive.
		replace(held, intersect(held, bodyHeld))
	case *ast.RangeStmt:
		w.expr(s.X, held)
		bodyHeld := clone(held)
		w.stmts(s.Body.List, bodyHeld)
		replace(held, intersect(held, bodyHeld))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.branches(s, held)
	}
	return false
}

// branches handles switch/select: each clause starts from the entry
// state; the fall-through state is the intersection of the entry state
// and every non-terminating clause exit.
func (w *lockWalker) branches(s ast.Stmt, held map[string]bool) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := clone(held)
	for _, clause := range body.List {
		clauseHeld := clone(held)
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, clauseHeld)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, clauseHeld)
			}
			list = c.Body
		}
		if !w.stmts(list, clauseHeld) {
			replace(out, intersect(out, clauseHeld))
		}
	}
	replace(held, out)
}

// expr scans one expression in evaluation order for lock transitions
// and guarded accesses.
func (w *lockWalker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure may run at any time; analyze it lock-free.
			w.stmts(n.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			if key, op, ok := w.lockOp(n); ok {
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
			}
		case *ast.SelectorExpr:
			w.checkAccess(n, held)
		}
		return true
	})
}

// lockOp recognizes <base>.<mu>.Lock() and friends, returning the held
// set key "base.mu".
func (w *lockWalker) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	muSel, isSel := unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		// mu.Lock() on a package-level or local mutex variable.
		if id, isID := unparen(sel.X).(*ast.Ident); isID {
			return id.Name, op, true
		}
		return "", "", false
	}
	return exprKey(muSel.X) + "." + muSel.Sel.Name, op, true
}

// checkAccess flags a guarded field access without its mutex held.
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, held map[string]bool) {
	obj := w.pass.TypesInfo.Uses[sel.Sel]
	mu, guarded := w.guards[obj]
	if !guarded {
		return
	}
	if w.trusted["*"] || w.trusted[mu] {
		return
	}
	base := unparen(sel.X)
	if id, ok := base.(*ast.Ident); ok {
		if w.local[w.pass.TypesInfo.ObjectOf(id)] {
			return // freshly constructed, not yet shared
		}
	}
	if held[exprKey(base)+"."+mu] {
		return
	}
	w.pass.Reportf(sel.Sel.Pos(), "access to %s (guarded by %s) without %s held", sel.Sel.Name, mu, mu)
}

// exprKey renders the base of a selector chain into a comparison key:
// "st", "c.stations[]", "call()". Indexes are erased, so distinct
// elements of one container share a key — conservative in the
// direction of trusting a lock taken on the same chain.
func exprKey(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[]"
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		return exprKey(e.X)
	case *ast.CallExpr:
		return "call()"
	default:
		return "?"
	}
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func replace(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}
