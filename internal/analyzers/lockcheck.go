package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces `guarded by` field comments: a struct field
// documented
//
//	gen *generation // guarded by mu
//
// may only be accessed while the named sibling mutex is held. The
// analysis runs the shared lockflow dataflow (lockflow.go) over the
// function's CFG: a must-analysis that merges branches by
// intersection, so a conditionally taken lock does not count, and
// iterates loops to a fixed point, so a lock released inside a loop
// body does not leak into the next iteration.
//
// Escape hatches, in keeping with the codebase's conventions:
//
//   - functions annotated //pinlint:holds <mu> assert their caller
//     holds <mu> (the `xxxLocked` name-suffix convention asserts the
//     same for every mutex);
//   - accesses through a receiver or local that the function itself
//     just constructed (s := &Station{...}) are exempt — the value is
//     not yet shared;
//   - a deferred Unlock keeps the lock held to the end of the
//     function, as it does dynamically.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "check that `guarded by mu` fields are accessed with the mutex held",
	Run:  runLockCheck,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

func runLockCheck(pass *Pass) error {
	guards := guardedFields(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			w := &lockChecker{
				pass:    pass,
				guards:  guards,
				trusted: trustedMutexes(pass, fn),
				local:   locallyConstructed(pass, fd.Body),
			}
			w.checkBody(fd.Body)
			// Closures may run at any time; their bodies are analyzed
			// lock-free (deferred closures are skipped — they run under
			// unknown state).
			for _, lit := range funcLits(fd.Body) {
				w.checkBody(lit.Body)
			}
		}
	}
	return nil
}

// guardedFields maps struct field objects to the name of the sibling
// mutex that guards them, from `guarded by <mu>` field comments.
func guardedFields(pass *Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardName(field.Doc)
				if mu == "" {
					mu = guardName(field.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardName(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// trustedMutexes returns the mutex names the function asserts are held
// by its caller: the //pinlint:holds argument, or every mutex ("*")
// for the xxxLocked naming convention.
func trustedMutexes(pass *Pass, fn *types.Func) map[string]bool {
	trusted := map[string]bool{}
	if strings.HasSuffix(fn.Name(), "Locked") {
		trusted["*"] = true
	}
	if arg := pass.Index.Arg(fn, "holds"); arg != "" {
		for _, mu := range strings.Fields(arg) {
			trusted[mu] = true
		}
	}
	return trusted
}

// locallyConstructed collects objects assigned a fresh composite
// literal or new(T) in this function: values not yet visible to other
// goroutines, whose guarded fields may be touched lock-free.
func locallyConstructed(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	local := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !isFreshValue(pass, rhs) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					local[obj] = true
				}
			}
		}
		return true
	})
	return local
}

func isFreshValue(pass *Pass, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := e.X.(*ast.CompositeLit)
		return e.Op.String() == "&" && lit
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// lockChecker carries one function's analysis context.
type lockChecker struct {
	pass    *Pass
	guards  map[types.Object]string
	trusted map[string]bool
	local   map[types.Object]bool
}

// checkBody runs the lockflow dataflow over one body and reports
// guarded accesses outside their mutex's held region.
func (w *lockChecker) checkBody(body *ast.BlockStmt) {
	lockFlow(w.pass.TypesInfo, body, lockState{}, lockHooks{access: w.checkAccess})
}

// checkAccess flags a guarded field access without its mutex held.
func (w *lockChecker) checkAccess(sel *ast.SelectorExpr, held lockState) {
	obj := w.pass.TypesInfo.Uses[sel.Sel]
	mu, guarded := w.guards[obj]
	if !guarded {
		return
	}
	if w.trusted["*"] || w.trusted[mu] {
		return
	}
	base := unparen(sel.X)
	if id, ok := base.(*ast.Ident); ok {
		if w.local[w.pass.TypesInfo.ObjectOf(id)] {
			return // freshly constructed, not yet shared
		}
	}
	if _, ok := held[exprKey(base)+"."+mu]; ok {
		return
	}
	w.pass.Reportf(sel.Sel.Pos(), "access to %s (guarded by %s) without %s held", sel.Sel.Name, mu, mu)
}

// exprKey renders the base of a selector chain into a comparison key:
// "st", "c.stations[]", "call()". Indexes are erased, so distinct
// elements of one container share a key — conservative in the
// direction of trusting a lock taken on the same chain.
func exprKey(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[]"
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		return exprKey(e.X)
	case *ast.CallExpr:
		return "call()"
	default:
		return "?"
	}
}
