// Package analyzers implements pinlint: a suite of static analyzers
// that mechanically enforce the codebase's performance and correctness
// invariants — zero-allocation hot paths (syntactically and against
// the compiler's own escape analysis), injected randomness,
// mutex-guarded field access, deadlock-free lock ordering, stoppable
// goroutines, cycle-boundary-only mutation, sentinel-error wrapping
// discipline, the channel close/ownership protocol, cancellation gates
// on every blocking path out of a long-running entry point, checked
// schedule-quantity arithmetic, and an honest waiver inventory. The
// flow-sensitive analyzers share the intra-procedural CFG/dataflow
// layer in cfg.go; the interprocedural ones (chansafe, cancelflow)
// share the module call graph in callgraph.go (static resolution plus
// interface-satisfaction dynamic dispatch) and the generic bottom-up
// function-summary fixpoint in summary.go.
//
// The package mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic) on the standard library alone, so the
// module stays dependency-free and the analyzers can later be ported to
// the real driver mechanically. Packages are loaded by shelling out to
// `go list -export` and type-checking target packages from source with
// dependencies imported from compiler export data — the same strategy
// `go vet` uses.
//
// # Annotations
//
// Analyzers are driven by machine-readable comments:
//
//	//pinlint:hotpath        — function must not contain
//	                           allocation-prone constructs, and may only
//	                           call other hotpath functions within the
//	                           module (see hotpath.go for exact rules)
//	//pinlint:cycle-boundary — function mutates broadcast-program state
//	                           and may only be called from the admission
//	                           seams (Admit/Evict/Negotiate/AdmitTxn/
//	                           ReleaseTxn/Release/FailChannel/New/
//	                           NewCluster) or other annotated functions
//	//pinlint:holds mu       — function asserts its caller holds the
//	                           named mutex (lockcheck trusts it); the
//	                           `xxxLocked` name suffix implies the same
//	//pinlint:allow <names>  — suppress the named analyzers (or all,
//	                           when no names are given) on this line;
//	                           use sparingly, with a justification in
//	                           the trailing text
//
// Struct fields documented with a `guarded by <mutex>` comment are
// checked by lockcheck: every access must happen with the named sibling
// mutex held on every path (a conservative, intra-function analysis).
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pinlint:allow suppressions.
	Name string
	// Doc is the analyzer's help text; the first line is its summary.
	Doc string
	// Run applies the analyzer to one package, reporting diagnostics
	// through the pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer run over one package: its syntax, type
// information, and the module-wide annotation index.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Index holds pinlint annotations for every function of every
	// loaded package, so cross-package annotation lookups (is the
	// callee a hotpath function?) work without facts machinery.
	Index *Index

	// pkg is the loaded package under analysis, for analyzers that
	// need more than syntax and types (allocprove shells out to the
	// compiler with the package's file list and export data).
	pkg *Package

	diags []Diagnostic
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzer to pkg and returns its diagnostics, with
// //pinlint:allow-suppressed lines already filtered out and the rest in
// source order.
func Run(a *Analyzer, pkg *Package, index *Index) ([]Diagnostic, error) {
	raw, err := index.rawDiags(a, pkg)
	if err != nil {
		return nil, err
	}
	if a.Name == WaiverLint.Name {
		// The waiver police cannot be waived: a stale bare allow would
		// otherwise suppress its own staleness report.
		return append([]Diagnostic(nil), raw...), nil
	}
	allowed := allowedLines(pkg)
	var kept []Diagnostic
	for _, d := range raw {
		if !allowed.allows(pkg.Fset.Position(d.Pos), a.Name) {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// rawDiags runs (once) the analyzer over pkg and caches its unfiltered
// diagnostics on the index. The cache is what lets waiverlint ask
// "would this analyzer fire on that line?" without doubling the cost
// of the whole suite.
func (ix *Index) rawDiags(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	if ix.raw == nil {
		ix.raw = map[*Package]map[string]rawResult{}
	}
	if r, ok := ix.raw[pkg][a.Name]; ok {
		return r.diags, r.err
	}
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Index:     ix,
		pkg:       pkg,
	}
	r := rawResult{}
	if err := a.Run(pass); err != nil {
		r.err = fmt.Errorf("%s: %w", a.Name, err)
	} else {
		r.diags = pass.diags
		sort.Slice(r.diags, func(i, j int) bool { return r.diags[i].Pos < r.diags[j].Pos })
	}
	if ix.raw[pkg] == nil {
		ix.raw[pkg] = map[string]rawResult{}
	}
	ix.raw[pkg][a.Name] = r
	return r.diags, r.err
}

// All returns the full pinlint analyzer suite in reporting order.
// WaiverLint runs last: by then the suite's raw diagnostics for the
// package are already cached and staleness checks are free.
func All() []*Analyzer {
	return []*Analyzer{HotPath, AllocProve, NoRand, LockCheck, LockOrder, GoroLeak, CycleBoundary, ErrWrap,
		ChanSafe, CancelFlow, SlotMath, WaiverLint}
}

// errorType is the predeclared error interface, for implements checks.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) satisfies the error
// interface.
func implementsError(t types.Type) bool {
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}
