package analyzers

import (
	"go/ast"
	"go/types"
)

// CycleBoundary enforces the mutation discipline of the broadcast
// program: state swaps may only happen at data-cycle boundaries, which
// in this codebase means they are reachable only through the admission
// seams. Methods annotated //pinlint:cycle-boundary (Station.build,
// Station.stage, the Cluster failover mutators, ...) may be called only
// from
//
//   - functions that are themselves annotated //pinlint:cycle-boundary,
//     or
//   - the fixed seam set: Admit, Evict, Negotiate, AdmitTxn,
//     ReleaseTxn, Release, FailChannel, and the constructors New and
//     NewCluster.
//
// The slot-serving goroutine is deliberately neither, so a refactor
// that calls a mutator from the serve loop is rejected mechanically.
// Annotations are resolved module-wide, so cross-package calls are
// covered.
var CycleBoundary = &Analyzer{
	Name: "cycleboundary",
	Doc:  "restrict //pinlint:cycle-boundary mutators to the admission seams",
	Run:  runCycleBoundary,
}

// cycleSeams are the function names allowed to invoke cycle-boundary
// mutators without carrying the annotation themselves: the public
// admission/negotiation/failover seams and the constructors.
var cycleSeams = map[string]bool{
	"Admit":       true,
	"Evict":       true,
	"Negotiate":   true,
	"AdmitTxn":    true,
	"ReleaseTxn":  true,
	"Release":     true,
	"FailChannel": true,
	"New":         true,
	"NewCluster":  true,
}

func runCycleBoundary(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if pass.Index.Has(caller, "cycle-boundary") || cycleSeams[caller.Name()] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.TypesInfo, call)
				if callee == nil || !pass.Index.Has(callee, "cycle-boundary") {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s calls cycle-boundary mutator %s; program state may only change through the admission seams (Admit/Evict/Negotiate/AdmitTxn/ReleaseTxn/Release/FailChannel)",
					caller.Name(), callee.Name())
				return true
			})
		}
	}
	return nil
}
