package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoRand enforces the injected-randomness discipline: outside _test.go
// files, all randomness must flow through an injected *rand.Rand (the
// BernoulliFaultsFrom convention), so simulations and fault models are
// deterministic and race-free by construction.
//
// Diagnosed:
//
//   - any call to a top-level math/rand (or math/rand/v2) function that
//     draws from or mutates the global generator (rand.Intn, rand.Seed,
//     rand.Shuffle, ...). Constructors (rand.New, rand.NewSource,
//     rand.NewZipf, ...) are allowed — they are how injection happens;
//   - seeding a generator from the wall clock:
//     rand.New(rand.NewSource(time.Now()...)), which destroys
//     reproducibility even though the generator itself is injected.
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid global math/rand state and wall-clock seeding outside tests",
	Run:  runNoRand,
}

// randConstructors are the math/rand top-level functions that build
// injectable state rather than draw from the shared generator.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNoRand(pass *Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Signature().Recv() != nil {
				return true
			}
			pkg := fn.Pkg()
			if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
				return true
			}
			if !randConstructors[fn.Name()] {
				pass.Reportf(sel.Pos(), "use of global math/rand state via rand.%s; inject a *rand.Rand instead", fn.Name())
			}
			return true
		})
		checkWallClockSeeds(pass, file)
	}
	return nil
}

// checkWallClockSeeds flags rand.New(rand.NewSource(... time.Now() ...)).
func checkWallClockSeeds(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isRandCall(pass, call, "NewSource") {
			return true
		}
		for _, arg := range call.Args {
			if callsTimeNow(pass, arg) {
				pass.Reportf(call.Pos(), "rand.NewSource seeded from the wall clock; inject a deterministic seed instead")
			}
		}
		return true
	})
}

// isRandCall reports whether call invokes math/rand.<name>.
func isRandCall(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	pkg := fn.Pkg()
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

// callsTimeNow reports whether the expression contains a time.Now call.
func callsTimeNow(pass *Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if ok && fn.Name() == "Now" && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			found = true
		}
		return true
	})
	return found
}
