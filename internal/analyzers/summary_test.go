package analyzers

import "testing"

// callsLeaf is the toy summary used below: does this function
// transitively call leaf()?
func callsLeaf(g *callGraph) map[*cgNode]bool {
	return summarize(g,
		func(n *cgNode, get func(*cgNode) bool) bool {
			if n.Fn.Name() == "leaf" {
				return true
			}
			for _, site := range n.Out {
				for _, c := range site.Callees {
					if get(c) {
						return true
					}
				}
			}
			return false
		},
		func(a, b bool) bool { return a == b },
	)
}

func TestSummarizePropagation(t *testing.T) {
	_, ix := typeCheckSource(t, `package p
func leaf()  {}
func a()     { leaf() }
func b()     { a() }
func c()     { b() }
func off()   {}
`)
	g := ix.callGraph()
	sums := callsLeaf(g)
	for name, want := range map[string]bool{"leaf": true, "a": true, "b": true, "c": true, "off": false} {
		if got := sums[g.node(t, name)]; got != want {
			t.Errorf("callsLeaf[%s] = %v, want %v", name, got, want)
		}
	}
}

func TestSummarizeRecursionTerminates(t *testing.T) {
	// Self- and mutual recursion: the fixpoint must terminate and still
	// propagate facts through the cycle.
	_, ix := typeCheckSource(t, `package p
func leaf() {}
func self(n int) { if n > 0 { self(n - 1) }; leaf() }
func ping(n int) { if n > 0 { pong(n - 1) } }
func pong(n int) { if n > 0 { ping(n - 1) }; leaf() }
func dry(n int)  { if n > 0 { dry(n - 1) } }
`)
	g := ix.callGraph()
	sums := callsLeaf(g)
	for name, want := range map[string]bool{"self": true, "ping": true, "pong": true, "dry": false} {
		if got := sums[g.node(t, name)]; got != want {
			t.Errorf("callsLeaf[%s] = %v, want %v", name, got, want)
		}
	}
}

func TestSummarizeThroughDynamicDispatch(t *testing.T) {
	// A fact behind an interface edge reaches the dynamic caller via the
	// implementation set.
	_, ix := typeCheckSource(t, `package p
func leaf() {}
type doer interface{ do() }
type impl struct{}
func (impl) do()    { leaf() }
func Drive(d doer)  { d.do() }
`)
	g := ix.callGraph()
	sums := callsLeaf(g)
	if !sums[g.node(t, "Drive")] {
		t.Error("fact did not propagate through interface dispatch")
	}
}

func TestSummarizeCountsToFixpoint(t *testing.T) {
	// A numeric (non-boolean) summary: longest call chain below each
	// node, saturated at 5 so the recursive cycle converges.
	_, ix := typeCheckSource(t, `package p
func d0()       {}
func d1()       { d0() }
func d2()       { d1() }
func loop(n int) { if n > 0 { loop(n - 1) }; d2() }
`)
	g := ix.callGraph()
	depth := summarize(g,
		func(n *cgNode, get func(*cgNode) int) int {
			max := 0
			for _, site := range n.Out {
				for _, c := range site.Callees {
					if d := get(c) + 1; d > max {
						max = d
					}
				}
			}
			if max > 5 {
				max = 5
			}
			return max
		},
		func(a, b int) bool { return a == b },
	)
	for name, want := range map[string]int{"d0": 0, "d1": 1, "d2": 2, "loop": 5} {
		if got := depth[g.node(t, name)]; got != want {
			t.Errorf("depth[%s] = %d, want %d", name, got, want)
		}
	}
}
