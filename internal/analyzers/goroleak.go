package analyzers

import (
	"go/ast"
	"go/types"
)

// GoroLeak flags `go` statements that spawn a goroutine with no
// termination path tied to a context.Context, a stop channel, or a
// sync.WaitGroup visible in the CFG — the coordinator equivalent of a
// fault the system cannot repair: a wedged serve loop holds its
// resources forever and silently voids the latency contracts.
//
// A spawned body is accepted when any of the following holds:
//
//   - its CFG is acyclic: with no loop, the goroutine runs to
//     completion (calls are trusted to return);
//   - it registers with a sync.WaitGroup (a wg.Done() call, deferred
//     or not): its lifetime is joined by the owner's Wait;
//   - some reachable gate — a channel receive or send, a select comm,
//     a range over a channel, a context.Done/Err/Deadline call, a call
//     that is handed a context, channel, or *sync.WaitGroup, or a
//     dynamic interface-method call (a net.Listener's Accept
//     terminates by Close; the analyzer cannot see through dynamic
//     dispatch and trusts it) — can still reach the exit block.
//
// For `go f(...)` on a named function, a context/channel/WaitGroup
// argument or parameter ties the goroutine's lifetime to the caller
// and is accepted; otherwise the body is analyzed when its
// declaration is in the same package, and flagged when it is not
// (annotate the spawn site with //pinlint:allow goroleak and a
// justification if the callee provably stops).
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "flag goroutines with no visible termination path (context, stop channel, or WaitGroup)",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineStoppable(pass, g, decls) {
				pass.Reportf(g.Pos(), "goroutine has no termination path tied to a context, stop channel, or WaitGroup")
			}
			return true
		})
	}
	return nil
}

func goroutineStoppable(pass *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	// A lifetime-tying argument excuses any spawn: the callee was
	// handed the means to stop.
	for _, arg := range g.Call.Args {
		if isLifetimeType(pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return bodyStoppable(pass, lit.Body)
	}
	callee := calleeFunc(pass.TypesInfo, g.Call)
	if callee == nil {
		// Dynamic function value: unresolvable, trust the indirection
		// only if some argument tied the lifetime (checked above).
		return false
	}
	sig := callee.Signature()
	for i := 0; i < sig.Params().Len(); i++ {
		if isLifetimeType(sig.Params().At(i).Type()) {
			return true
		}
	}
	if fd, ok := decls[callee]; ok {
		return bodyStoppable(pass, fd.Body)
	}
	return false
}

// bodyStoppable applies the CFG test to one spawned body.
func bodyStoppable(pass *Pass, body *ast.BlockStmt) bool {
	if usesWaitGroup(pass, body) {
		return true
	}
	g := NewCFG(body)
	if !g.HasCycle() {
		return true
	}
	reached := g.Reachable(g.Entry)
	for b := range reached {
		for _, n := range b.Nodes {
			if !nodeIsGate(pass, n) {
				continue
			}
			if g.Reachable(b)[g.Exit] {
				return true
			}
		}
	}
	return false
}

// usesWaitGroup reports whether the body calls Done on a
// sync.WaitGroup (deferred or inline).
func usesWaitGroup(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.TypesInfo, call); fn != nil && fn.Name() == "Done" &&
			fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			found = true
		}
		return true
	})
	return found
}

// nodeIsGate reports whether one CFG node contains a construct that
// ties the goroutine's progress to the outside world.
func nodeIsGate(pass *Pass, n ast.Node) bool {
	// A bare expression node of channel type is a range-over-channel
	// head (conditions are bool, range heads are the only bare exprs
	// of channel type the builder emits).
	if e, ok := n.(ast.Expr); ok {
		if t := pass.TypesInfo.TypeOf(e); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return true
			}
		}
	}
	gate := false
	ast.Inspect(n, func(n ast.Node) bool {
		if gate {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			gate = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				gate = true
			}
		case *ast.CallExpr:
			gate = callIsGate(pass, n)
		}
		return true
	})
	return gate
}

// callIsGate classifies calls: context accessors, calls handed a
// lifetime value, and dynamic interface dispatch all count as gates.
func callIsGate(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isLifetimeType(pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		// Calling a function value: if it was handed nothing, it
		// cannot stop us; not a gate.
		return false
	}
	if recv := fn.Signature().Recv(); recv != nil {
		if _, ok := recv.Type().Underlying().(*types.Interface); ok {
			return true // dynamic dispatch: trusted
		}
		if isContextType(recv.Type()) {
			switch fn.Name() {
			case "Done", "Err", "Deadline":
				return true
			}
		}
	}
	return false
}

// isLifetimeType reports whether t is a value whose possession ties a
// goroutine's lifetime to its owner: a context.Context, any channel,
// or a *sync.WaitGroup.
func isLifetimeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if isContextType(t) {
		return true
	}
	if named, ok := derefType(t).(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
