// Package allocprovegood holds hotpath functions the compiler's escape
// analysis agrees are heap-free, plus the two sanctioned ways around
// it: the by-rule exemption for constant panic strings and an explicit
// line waiver for an amortized cold-path allocation.
package allocprovegood

// First returns the head of a non-empty slice. The panic string is a
// constant: it "escapes" formally but is backed by static data, so
// allocprove exempts it by rule.
//
//pinlint:hotpath
func First(xs []byte) byte {
	if len(xs) == 0 {
		panic("allocprovegood: empty slice")
	}
	return xs[0]
}

// Fill overwrites dst in place; nothing escapes.
//
//pinlint:hotpath
func Fill(dst []byte, b byte) {
	for i := range dst {
		dst[i] = b
	}
}

// Grow reuses dst when it can and pays one amortized allocation when it
// cannot — the allocation is real, so it carries a waiver with its
// justification instead of hiding.
//
//pinlint:hotpath
func Grow(dst []byte, n int) []byte {
	if cap(dst) < n {
		dst = make([]byte, n) //pinlint:allow allocprove — amortized refill, callers reuse the grown buffer
	}
	return dst[:n]
}

// report is cold: unannotated functions may allocate freely.
func report(n int) *int {
	return &n
}
