// Package goroleakgood holds goroutines goroleak accepts: every spawn
// ties its lifetime to a context, a channel, a WaitGroup, a dynamic
// call that can fail it out of the loop, or simply terminates.
package goroleakgood

import (
	"context"
	"net"
	"sync"
)

func use(int) {}

func setup()  {}
func finish() {}

// worker's context parameter ties its lifetime to the caller.
func worker(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

// drain ranges over a channel: it ends when the channel closes.
func drain(in chan int) {
	for v := range in {
		use(v)
	}
}

func Spawn(ctx context.Context, ln net.Listener) {
	in := make(chan int)
	done := make(chan struct{})
	var wg sync.WaitGroup

	go worker(ctx) // context parameter
	go drain(in)   // channel parameter

	// Select on a stop channel: a reachable gate from which the exit is
	// reachable.
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-in:
				use(v)
			}
		}
	}()

	// WaitGroup registration: the owner's Wait joins it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			use(i)
		}
	}()

	// Range over a channel in a literal body.
	go func() {
		for v := range in {
			use(v)
		}
	}()

	// Acyclic body: runs to completion, nothing to stop.
	go func() {
		setup()
		finish()
	}()

	// Accept loop: the dynamic interface call is trusted to fail after
	// Close, and the error return reaches the exit.
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c
		}
	}()
	wg.Wait()
}
