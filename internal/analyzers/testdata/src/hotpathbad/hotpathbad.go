// Package hotpathbad exercises every hotpath diagnostic.
package hotpathbad

import "fmt"

type pair struct{ a, b int }

func pairValue() pair { return pair{} }

func cold(b []byte) {}

// emit is the per-slot path.
//
//pinlint:hotpath
func emit(out []byte, items []int) []byte {
	var buf []byte
	for _, it := range items {
		buf = append(buf, byte(it)) // want "append to buf in hotpath function emit may grow without preallocated capacity"
	}
	s := "slot: " + string(buf) // want "string concatenation"
	s += "!"                    // want "string concatenation"
	_ = s
	m := map[string]int{} // want "map literal"
	_ = m
	sl := []int{1, 2} // want "slice literal"
	_ = sl
	p := &pair{} // want "composite literal in hotpath function emit escapes"
	_ = p
	q := new(pair) // want "new.T. in hotpath function emit allocates"
	_ = q
	f := func() {} // want "closure literal"
	_ = f
	fmt.Println() // want "call to fmt.Println"
	cold(out)     // want "calls cold, which is not annotated"
	var sink interface{}
	sink = pairValue() // want "boxed into interface" "calls pairValue"
	_ = sink
	go cold(nil) // want "go statement" "calls cold"
	return out
}

// boxedReturn returns a concrete value through an interface result.
//
//pinlint:hotpath
func boxedReturn() interface{} {
	return pairValue() // want "boxed into interface" "calls pairValue"
}
