// Package goroleakbad exercises the goroleak diagnostics: goroutines
// whose CFG shows no termination path tied to a context, stop channel,
// or WaitGroup.
package goroleakbad

import "fmt"

func work() {}

// spin loops forever over plain work: nothing external can stop it.
func spin() {
	for {
		work()
	}
}

type pump struct{ n int }

// run loops forever too, as a method.
func (p *pump) run() {
	for {
		p.n++
	}
}

func Spawn() {
	go func() { // want "goroutine has no termination path"
		for {
			work()
		}
	}()

	go spin() // want "goroutine has no termination path"

	p := &pump{}
	go p.run() // want "goroutine has no termination path"

	// An external callee with no lifetime-tying argument is opaque: the
	// analyzer cannot see a termination path and says so.
	go fmt.Println("fire and forget") // want "goroutine has no termination path"
}
