// Package cycleboundarygood mutates only through the admission seams
// and annotated helpers.
package cycleboundarygood

type station struct{ gen int }

//pinlint:cycle-boundary
func (s *station) swap() { s.gen++ }

// rebuild is itself a cycle-boundary helper, so it may call swap.
//
//pinlint:cycle-boundary
func (s *station) rebuild() { s.swap() }

// Admit is an admission seam by name.
func (s *station) Admit() { s.rebuild() }

// Evict is an admission seam by name.
func (s *station) Evict() { s.swap() }

// FailChannel is a failover seam by name.
func (s *station) FailChannel() { s.swap() }

// New constructs the initial generation.
func New() *station {
	s := &station{}
	s.swap()
	return s
}
