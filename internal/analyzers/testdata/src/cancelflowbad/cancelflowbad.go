// Package cancelflowbad reaches blocking operations from long-running
// entry points with no cancellation gate anywhere on the path.
package cancelflowbad

// Serve wedges on its data channel: nothing can stop the loop.
func Serve(data chan int) {
	for v := range data { // want "blocking range over channel is reachable from entry point Serve"
		_ = v
	}
}

// pump is the blocking site Run exposes two frames up.
func pump(out chan int) {
	out <- 1 // want "blocking channel send is reachable from entry point Run"
}

// Run delegates its loop; the summary carries pump's send back here.
func Run(out chan int) {
	for {
		pump(out)
	}
}

// Drive selects with neither a default nor a cancellation case: both
// arms are data traffic, so the select itself can wedge.
func Drive(a, b chan int) {
	select { // want "blocking select"
	case v := <-a:
		_ = v
	case b <- 1:
	}
}

// Pump performs a bare receive from a data channel.
func Pump(in chan int) int {
	return <-in // want "blocking channel receive is reachable from entry point Pump"
}

// Broadcast spawns a goroutine whose send nothing gates; the literal's
// sites belong to Broadcast.
func Broadcast(out chan int) {
	go func() {
		out <- 9 // want "blocking channel send is reachable from entry point Broadcast"
	}()
}
