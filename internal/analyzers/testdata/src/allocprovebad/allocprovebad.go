// Package allocprovebad exercises the allocprove diagnostics: the
// compiler's escape analysis contradicting //pinlint:hotpath claims.
package allocprovebad

var sink any

// Leak returns the address of a local, the canonical escape.
//
//pinlint:hotpath
func Leak() *int {
	v := 42 // want "compiler escape in hotpath function Leak" 2
	return &v
}

// Grow allocates a fresh slice per call.
//
//pinlint:hotpath
func Grow(n int) []byte {
	return make([]byte, n) // want "compiler escape in hotpath function Grow: make"
}

// BoxInt boxes its argument into an interface.
//
//pinlint:hotpath
func BoxInt(n int) {
	sink = n // want "compiler escape in hotpath function BoxInt: n escapes to heap"
}

// coldAlloc is not annotated: the same escapes are report-only there
// (surfaced by `pinlint -escapes`, not diagnostics).
func coldAlloc() *int {
	v := 7
	return &v
}
