// Package hotpathgood contains hotpath-clean code: every construct the
// analyzer must accept.
package hotpathgood

type ring struct{ scratch []byte }

// emit appends into caller-owned and explicitly capped buffers only.
//
//pinlint:hotpath
func emit(dst []byte, payload []byte) []byte {
	dst = append(dst, payload...) // parameter: caller preallocates
	tmp := make([]byte, 0, 16)
	tmp = append(tmp, payload...) // explicit capacity in this function
	if len(tmp) > 0 {
		dst = append(dst, tmp[0])
	}
	return dst
}

// refill reuses the ring's scratch buffer and calls only hotpath
// functions.
//
//pinlint:hotpath
func refill(r *ring, payload []byte) {
	r.scratch = append(r.scratch[:0], payload...)
	next(r)
}

//pinlint:hotpath
func next(r *ring) {}

// setup is not annotated: allocation-heavy code is fine here.
func setup() *ring {
	m := map[string]int{"a": 1}
	_ = m
	return &ring{scratch: make([]byte, 0, 64)}
}

// waived shows the per-line escape hatch for amortized cold calls.
//
//pinlint:hotpath
func waived() {
	rebuild() //pinlint:allow hotpath — amortized: runs once per data cycle
}

func rebuild() {}
