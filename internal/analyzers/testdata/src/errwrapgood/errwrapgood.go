// Package errwrapgood wraps and matches sentinels correctly.
package errwrapgood

import (
	"errors"
	"fmt"
	"io"
)

var ErrBadSpec = errors.New("invalid specification")

func check(err error) bool { return errors.Is(err, ErrBadSpec) }

func checkEOF(err error) bool { return errors.Is(err, io.EOF) }

func wrap(name string) error {
	return fmt.Errorf("file %q: %w", name, ErrBadSpec)
}

func describe(err error) string {
	return fmt.Sprintf("failed: %v", err) // Sprintf does not wrap; %v is fine
}

func nilCompare(err error) bool { return err == nil }

func message(err error, detail string) error {
	return fmt.Errorf("detail %q: %w", detail, err)
}
