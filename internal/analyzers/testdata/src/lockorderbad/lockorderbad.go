// Package lockorderbad exercises the lockorder diagnostics: cycles in
// the lock-acquisition graph, including one that only exists because a
// Locked-suffix helper's caller-held set is propagated.
package lockorderbad

import "sync"

type A struct {
	mu sync.Mutex
}

type B struct {
	mu sync.Mutex
}

type C struct {
	mu sync.Mutex
}

// abThenBa establishes A → B; baThenAb establishes B → A. Together:
// the classic AB/BA deadlock. The cycle is anchored (and therefore
// reported) at its lexically first edge, the acquisition below.
func abThenBa(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle: .*\\(A\\).mu -> .*\\(B\\).mu -> .*\\(A\\).mu"
	b.mu.Unlock()
	a.mu.Unlock()
}

func baThenAb(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// pair acquires a second instance of the class it already holds: a
// self-cycle, the two-instance deadlock.
func (a *A) pair(other *A) {
	a.mu.Lock()
	other.mu.Lock() // want "lock-order cycle: .*\\(A\\).mu -> .*\\(A\\).mu"
	other.mu.Unlock()
	a.mu.Unlock()
}

// takeCLocked asserts (by its name) that b.mu is held on entry, so the
// acquisition inside it contributes the edge B → C even though no Lock
// call is syntactically in scope.
func (b *B) takeCLocked(c *C) {
	c.mu.Lock() // want "lock-order cycle: .*\\(B\\).mu -> .*\\(C\\).mu -> .*\\(B\\).mu"
	c.mu.Unlock()
}

// cThenB closes the loop: C → B.
func cThenB(b *B, c *C) {
	c.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	c.mu.Unlock()
}
