// Package chansafebad violates the channel close/ownership protocol:
// double closes, sends after a (possible) close, closed channels handed
// to closers, and close ownership hidden behind a bidirectional
// parameter.
package chansafebad

// Owner closes a channel it accepts bidirectionally: the close side of
// the protocol must be visible in the signature.
func Owner(out chan int) { // want "Owner closes bidirectional channel parameter out"
	out <- 1
	close(out)
}

// shut is a proper send-only closer; callers below misuse it.
func shut(ch chan<- int) {
	close(ch)
}

// shutdown delegates its close one level further down; the summary
// still reaches callers.
func shutdown(ch chan<- int) {
	shut(ch)
}

func DoubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "second close of ch on this path"
}

func SendAfterClose() {
	ch := make(chan int)
	close(ch)
	ch <- 1 // want "send on ch, which may already be closed"
}

// MaybeClosed closes on only one branch: the join still may-closed.
func MaybeClosed(cond bool) {
	ch := make(chan int)
	if cond {
		close(ch)
	}
	ch <- 2 // want "send on ch, which may already be closed"
}

func CloseThenDelegate() {
	ch := make(chan int)
	close(ch)
	shut(ch) // want "ch may already be closed when passed to shut, which closes it"
}

// DelegateThenSend learns the close from shut's summary.
func DelegateThenSend() {
	ch := make(chan int)
	shut(ch)
	ch <- 3 // want "send on ch, which may already be closed"
}

// TwoLevels learns the close through shutdown → shut: the summary
// fixpoint, not a single hop.
func TwoLevels() {
	ch := make(chan int)
	close(ch)
	shutdown(ch) // want "ch may already be closed when passed to shutdown, which closes it"
}
