// Package lockcheckgood accesses its guarded fields correctly: under
// the mutex, through the trusted-caller conventions, or before the
// value is shared.
package lockcheckgood

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // fresh value, not yet shared
	return c
}

func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) earlyExit(b bool) int {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
		return -1
	}
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) busy() {
	c.mu.Lock()
	for i := 0; i < 3; i++ {
		c.n++
	}
	c.mu.Unlock()
}

// nLocked returns the count; the xxxLocked suffix asserts the caller
// holds mu.
func (c *counter) nLocked() int { return c.n }

// snapshot reads the count during single-threaded teardown.
//
//pinlint:holds mu
func (c *counter) snapshot() int { return c.n }
