// Package lockcheckbad exercises the lockcheck diagnostics.
package lockcheckbad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) bump() {
	c.n++ // want "access to n .guarded by mu. without mu held"
}

func (c *counter) conditional(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want "without mu held"
	if b {
		c.mu.Unlock()
	}
}

func (c *counter) afterUnlock() int {
	c.mu.Lock()
	if c.n > 0 {
		c.mu.Unlock()
		return c.n // want "without mu held"
	}
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) wrongMutex(other *sync.Mutex) {
	other.Lock()
	c.n++ // want "without mu held"
	other.Unlock()
}
