// Package slotmathgood does schedule arithmetic the sanctioned way:
// products of non-schedule (or mixed) quantities, and divisions
// dominated by a guard on the divisor.
package slotmathgood

// area multiplies plain quantities: no schedule names involved.
func area(w, h int) int { return w * h }

// scale has a schedule quantity on one side only: scaling by an
// arbitrary factor is not a schedule-algebra product.
func scale(period, k int) int { return period * k }

// perSlot guards the divisor before every division path.
func perSlot(total, period int) int {
	if period <= 0 {
		return 0
	}
	return total / period
}

// phase guards with an early return.
func phase(t, freq int) int {
	if freq == 0 {
		return t
	}
	return t % freq
}

// bothPaths guards on every branch that reaches the division.
func bothPaths(n, cycle int, deep bool) int {
	if cycle < 1 {
		return 0
	}
	if deep {
		return n / cycle
	}
	return n % cycle
}
