// Package waiverlintgood uses //pinlint:allow the way the policy
// demands: every waiver justified, every waiver still suppressing a
// live diagnostic.
package waiverlintgood

import "math/rand"

// Justified and live: norand fires here, and the waiver says why that
// is fine.
func jitter() int {
	return rand.Intn(6) //pinlint:allow norand — fixture jitter need not be reproducible
}

// A multi-name waiver is live as long as any named analyzer fires.
func shuffle() int {
	return rand.Intn(52) //pinlint:allow norand lockcheck — deck order is decorative; no lock is held
}
