// Package waiverlintbad abuses the //pinlint:allow mechanism: waivers
// with no justification, waivers naming analyzers that do not exist,
// and waivers suppressing diagnostics that no longer fire.
package waiverlintbad

import "math/rand"

// Unjustified: the norand hit is real, but the waiver must say why it
// is safe.
func jitter() int {
	return rand.Intn(6) //pinlint:allow norand // want "waiver has no justification"
}

// Unknown analyzer name: a typo silently waives nothing forever.
func typo() int {
	return rand.Intn(6) //pinlint:allow norandom — meant norand // want "waiver names unknown analyzer"
}

// Stale: nothing fires on this line anymore; the waiver overstates the
// debt and must be deleted.
func tidy() int {
	return 4 //pinlint:allow norand — the dice roll was removed long ago // want "stale waiver: norand no longer fires on this line"
}

// A bare allow with no text at all is both unjustified and, with
// nothing firing here, stale against every analyzer.
func quiet() int {
	return 5 //pinlint:allow // want "waiver has no justification" "stale waiver: no analyzer no longer fires on this line"
}
