// Package cycleboundarybad exercises the cycleboundary diagnostics.
package cycleboundarybad

type station struct{ gen int }

// swap installs the next program generation.
//
//pinlint:cycle-boundary
func (s *station) swap() { s.gen++ }

// serveLoop is the slot-serving goroutine: it must never mutate.
func (s *station) serveLoop() {
	s.swap() // want "serveLoop calls cycle-boundary mutator swap"
}

func helper(s *station) {
	s.swap() // want "helper calls cycle-boundary mutator swap"
}
