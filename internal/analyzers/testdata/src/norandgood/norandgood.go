// Package norandgood draws all randomness from injected generators
// with deterministic seeds.
package norandgood

import "math/rand"

type model struct{ rng *rand.Rand }

func newModel(seed int64) *model {
	return &model{rng: rand.New(rand.NewSource(seed))}
}

func newModelFrom(rng *rand.Rand) *model { return &model{rng: rng} }

func (m *model) roll() int { return m.rng.Intn(6) }

func (m *model) noise() float64 { return m.rng.Float64() }
