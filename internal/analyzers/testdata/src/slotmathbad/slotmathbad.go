// Package slotmathbad combines schedule quantities with unchecked
// arithmetic: a local lcm, raw products and shifts of periods and
// frequencies, and divisions by possibly-zero schedule values.
package slotmathbad

// lcm wraps on overflow; internal/slotmath.LCM reports it instead.
func lcm(a, b int) int { // want "local lcm helper wraps on overflow"
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Cycle multiplies two schedule quantities without a check.
func Cycle(period, freq int) int {
	return period * freq // want "unchecked schedule-quantity product"
}

// Grow compounds a cycle in place.
func Grow(cycle, period int) int {
	cycle *= period // want "unchecked schedule-quantity product"
	return cycle
}

// Widen shifts a cycle by a slot count.
func Widen(cycle, slots int) int {
	return cycle << slots // want "unchecked schedule-quantity shift"
}

// PerSlot divides by a period nothing validated.
func PerSlot(total, period int) int {
	return total / period // want "period may be zero here"
}

// Phase takes the remainder by an unguarded frequency.
func Phase(t, freq int, fast bool) int {
	if fast {
		return t
	}
	return t % freq // want "freq may be zero here"
}

// Bypass guards on one branch only: the unguarded path still reaches
// the division.
func Bypass(n, period int, check bool) int {
	if check {
		if period == 0 {
			return 0
		}
	}
	return n / period // want "period may be zero here"
}
