// Package chansafegood follows the channel close/ownership protocol:
// close ownership declared send-only, one close per channel, no sends
// after it.
package chansafegood

// serveLoop owns the close and says so: the parameter is send-only.
func serveLoop(out chan<- int) {
	out <- 1
	close(out)
}

// Stream hands the channel to its closing owner and only receives.
func Stream() int {
	ch := make(chan int)
	go serveLoop(ch)
	return <-ch
}

// DeferClose sends freely before the deferred close runs at exit.
func DeferClose() {
	ch := make(chan int)
	defer close(ch)
	ch <- 1
	ch <- 2
}

// TwoChannels closes each channel once; the keys never alias.
func TwoChannels() {
	a := make(chan int)
	b := make(chan int)
	close(a)
	b <- 1
	close(b)
}

// feed only sends: no close ownership to declare.
func feed(ch chan<- int, v int) {
	ch <- v
}

// FeedThenClose delegates sends, then closes exactly once itself.
func FeedThenClose() {
	ch := make(chan int)
	feed(ch, 1)
	feed(ch, 2)
	close(ch)
}
