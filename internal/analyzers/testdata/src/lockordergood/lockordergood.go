// Package lockordergood holds a two-level lock hierarchy used
// consistently: parent before child on every path, so the acquisition
// graph is a DAG and lockorder stays silent.
package lockordergood

import "sync"

type Parent struct {
	mu   sync.Mutex
	kids []*Child
}

type Child struct {
	mu sync.Mutex
	n  int
}

// Visit acquires parent-then-child, the declared order.
func (p *Parent) Visit() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, k := range p.kids {
		k.mu.Lock()
		k.n++
		k.mu.Unlock()
	}
}

// touchLocked asserts p.mu is held and takes child locks under it —
// the same edge Visit establishes, just through the convention.
func (p *Parent) touchLocked(k *Child) {
	k.mu.Lock()
	k.n++
	k.mu.Unlock()
}

// Leaf takes only the child lock; no ordering edge at all.
func (k *Child) Leaf() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.n++
}
