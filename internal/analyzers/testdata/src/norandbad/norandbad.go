// Package norandbad exercises the norand diagnostics.
package norandbad

import (
	"math/rand"
	"time"
)

func roll() int {
	return rand.Intn(6) // want "global math/rand state via rand.Intn"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand state via rand.Shuffle"
}

func noise() float64 {
	return rand.Float64() // want "global math/rand state via rand.Float64"
}

func wallClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}
