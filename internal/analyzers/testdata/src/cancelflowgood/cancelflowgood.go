// Package cancelflowgood gates every blocking operation reachable from
// its entry points with a cancellation signal.
package cancelflowgood

import (
	"context"
	"time"
)

// Serve's loop always offers the stop channel alongside the data.
func Serve(data chan int, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case v, ok := <-data:
			if !ok {
				return
			}
			_ = v
		}
	}
}

// Run never blocks: the select has a default arm.
func Run(out chan int) {
	select {
	case out <- 1:
	default:
	}
}

// Pump delegates to a helper that is itself gated; the summary carries
// nothing back.
func Pump(in chan int, stop chan struct{}) {
	drain(in, stop)
}

func drain(in chan int, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-in:
		}
	}
}

// Drive waits on a timer channel: cancellation-shaped, so the bare
// receive is a deliberate sleep, not a wedge.
func Drive(tick chan time.Time) {
	<-tick
}

// Broadcast offers the context's Done alongside the send.
func Broadcast(ctx context.Context, out chan int) {
	select {
	case <-ctx.Done():
	case out <- 1:
	}
}

// stuck blocks, but no entry point can reach it: reachability is part
// of the contract.
func stuck(ch chan int) {
	ch <- 1
}
