// Package errwrapbad exercises the errwrap diagnostics.
package errwrapbad

import (
	"errors"
	"fmt"
	"io"
)

var ErrBadSpec = errors.New("invalid specification")

func check(err error) bool {
	return err == ErrBadSpec // want "comparison == sentinel ErrBadSpec misses wrapped errors; use errors.Is"
}

func checkEOF(err error) bool {
	return err != io.EOF // want "comparison != sentinel EOF misses wrapped errors"
}

func classify(err error) string {
	switch err {
	case ErrBadSpec: // want "switch case on sentinel ErrBadSpec"
		return "spec"
	default:
		return "other"
	}
}

func wrap(name string) error {
	return fmt.Errorf("file %q: %v", name, ErrBadSpec) // want "error formatted with %v instead of %w"
}

func wrapString(err error) error {
	return fmt.Errorf("outer: %s", err) // want "error formatted with %s instead of %w"
}
