package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// This file is the reusable intra-procedural CFG/dataflow layer the
// flow-sensitive analyzers (lockcheck, lockorder, goroleak) build on.
// It mirrors the shape of golang.org/x/tools/go/cfg on the standard
// library alone, in the same spirit as the loader.
//
// A CFG decomposes one function body into basic blocks of "simple"
// nodes — assignments, expression statements, sends, returns, and the
// condition/tag expressions of the control statements — connected by
// edges that model branching, loops, switches, selects, and panics.
// Composite statements (if/for/switch/...) never appear as nodes
// themselves, so a transfer function can ast.Inspect each node without
// re-walking nested control flow.
//
// Function literals are deliberately NOT inlined into the enclosing
// graph: a closure runs at an unknown time under unknown state, so
// analyses visit literal bodies separately (see funcLits).

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks in creation order; Blocks[0] is the entry block.
	Blocks []*Block
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the single synthetic exit block: every return, panic,
	// and fall-off-the-end edge leads here. It holds no nodes.
	Exit *Block
}

// A Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	Index int
	// Nodes are simple statements and bare condition expressions in
	// evaluation order.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// comment labels the block's role ("if.then", "for.head", ...)
	// for debugging and tests.
	comment string
}

// String renders a compact description of the block for tests.
func (b *Block) String() string {
	return fmt.Sprintf("b%d(%s)", b.Index, b.comment)
}

// NewCFG builds the control-flow graph of body. Branch targets
// (break/continue/goto, labeled or not) are resolved; unreachable
// trailing code gets blocks with no predecessors.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.g.Exit) // fall off the end
	for _, pg := range b.gotos {
		if target := b.labels[pg.label]; target != nil {
			b.edge(pg.from, target)
		}
	}
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

// HasCycle reports whether any cycle is reachable from the entry
// block — i.e. whether the function contains a loop that can actually
// run more than once.
func (g *CFG) HasCycle() bool {
	const (
		white = iota
		grey
		black
	)
	color := make([]int, len(g.Blocks))
	var visit func(*Block) bool
	visit = func(b *Block) bool {
		color[b.Index] = grey
		for _, s := range b.Succs {
			switch color[s.Index] {
			case grey:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[b.Index] = black
		return false
	}
	return visit(g.Entry)
}

// Reachable returns the set of blocks reachable from from.
func (g *CFG) Reachable(from *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

// Iterate runs a forward dataflow analysis over the graph to a fixed
// point and returns each block's entry state. entry seeds the entry
// block; transfer folds one block's nodes over a state (it must not
// mutate its argument); meet joins predecessor exit states (it is
// never called with nil states); equal bounds the iteration.
//
// Blocks with no processed predecessor yet are ⊤ (unknown): they take
// the first incoming state as-is, so a must-analysis needs no explicit
// universal set.
func Iterate[S any](g *CFG, entry S, transfer func(*Block, S) S, meet func(a, b S) S, equal func(a, b S) bool) map[*Block]S {
	in := map[*Block]S{g.Entry: entry}
	out := map[*Block]S{}
	// Iterate in block order until stable; the graphs are small enough
	// that a worklist would be over-engineering.
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			state, ok := in[b]
			if !ok {
				continue // unreached so far
			}
			newOut := transfer(b, state)
			if prev, ok := out[b]; !ok || !equal(prev, newOut) {
				out[b] = newOut
				changed = true
			}
			for _, s := range b.Succs {
				prev, seen := in[s]
				next := newOut
				if seen {
					next = meet(prev, newOut)
				}
				if !seen || !equal(prev, next) {
					in[s] = next
					changed = true
				}
			}
		}
	}
	return in
}

// funcLits collects every function literal under n that analyses
// should visit as a separate lock-free body, in source order. Literals
// in defer statements are excluded: a deferred closure runs under
// unknown state (its enclosing function's locks may or may not be
// held), matching the pre-CFG lockcheck semantics.
func funcLits(n ast.Node) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.FuncLit:
			lits = append(lits, n)
		}
		return true
	})
	return lits
}

type pendingGoto struct {
	from  *Block
	label string
}

// loopCtx tracks one enclosing breakable/continuable statement.
type loopCtx struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block
	loops  []loopCtx
	labels map[string]*Block
	gotos  []pendingGoto
	// pendingLabel names the statement about to be built, so its loop
	// context picks the label up.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(comment string) *Block {
	blk := &Block{Index: len(b.g.Blocks), comment: comment}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// seal ends the current path: subsequent statements are unreachable
// until a branch target opens a new block.
func (b *cfgBuilder) seal() {
	b.cur = b.newBlock("unreachable")
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.seal()
		}
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.add(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.seal()
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		// The label is both a goto target and the name of the
		// following loop/switch for labeled break/continue.
		target := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, target)
		b.cur = target
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.findLoop(label, false); t != nil {
			b.edge(b.cur, t)
		}
	case token.CONTINUE:
		if t := b.findLoop(label, true); t != nil {
			b.edge(b.cur, t)
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
	case token.FALLTHROUGH:
		// Handled by switchBody via edge to the next clause; the
		// statement itself carries no other flow.
		return
	}
	b.seal()
}

// findLoop resolves a break/continue target: the innermost context, or
// the one carrying the label.
func (b *cfgBuilder) findLoop(label string, cont bool) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		ctx := b.loops[i]
		if cont && ctx.continueTo == nil {
			continue // break-only context (switch/select)
		}
		if label != "" && ctx.label != label {
			continue
		}
		if cont {
			return ctx.continueTo
		}
		return ctx.breakTo
	}
	return nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	join := b.newBlock("if.join")

	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmts(s.Body.List)
	b.edge(b.cur, join)

	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	after := b.newBlock("for.after")

	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		b.edge(b.cur, after)
	}
	b.edge(b.cur, body)

	b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: post})
	b.cur = body
	b.stmts(s.Body.List)
	b.loops = b.loops[:len(b.loops)-1]

	if s.Post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
	}
	b.edge(b.cur, head)
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")

	b.edge(b.cur, head)
	b.edge(head, body)
	b.edge(head, after) // empty (or exhausted) range

	b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: head})
	b.cur = body
	b.stmts(s.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	b.edge(b.cur, head)
	b.cur = after
}

// switchBody builds the clause structure shared by switch and type
// switch. Each clause body starts from the dispatch block; fallthrough
// adds an edge to the following clause's body.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string) {
	dispatch := b.cur
	after := b.newBlock("switch.after")
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})

	var clauseBlocks []*Block
	hasDefault := false
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock("case")
		b.edge(dispatch, blk)
		clauseBlocks = append(clauseBlocks, blk)
	}
	if !hasDefault {
		b.edge(dispatch, after) // no case matched
	}
	for i, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = clauseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmts(cc.Body)
		if fallsThrough && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
			b.seal()
		} else {
			b.edge(b.cur, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	dispatch := b.cur
	after := b.newBlock("select.after")
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("comm")
		b.edge(dispatch, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	// A select with no clauses blocks forever: after has no preds.
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func isPanicCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// dump renders the CFG for tests: one line per block with successors.
func (g *CFG) dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%s:", b)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " ->%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
