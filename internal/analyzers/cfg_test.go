package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses `src` as the body of a function and returns it.
func parseBody(t *testing.T, src string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\nfunc f() {\n"+src+"\n}", parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing body: %v", err)
	}
	return fset, file.Decls[0].(*ast.FuncDecl).Body
}

func TestCFGHasCycle(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"straight line", "a(); b()", false},
		{"if else", "if c { a() } else { b() }", false},
		{"infinite for", "for { a() }", true},
		{"bounded for", "for i := 0; i < 10; i++ { a() }", true},
		{"loop broken immediately", "for { break }", false},
		// The inner body always breaks the outer loop, so no cycle is
		// reachable even though two loops are spelled.
		{"labeled break out of nested loop", "outer:\nfor {\nfor {\nbreak outer\n}\n}", false},
		{"labeled break out of inner only", "outer:\nfor {\nfor {\nbreak\n}\n}", true},
		{"range", "for x := range xs { use(x) }", true},
		{"select in loop", "for { select { case <-ch: } }", true},
		{"switch", "switch x { case 1: a()\ncase 2: b() }", false},
		{"goto backward", "top:\na()\ngoto top", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, body := parseBody(t, tc.src)
			if got := NewCFG(body).HasCycle(); got != tc.want {
				t.Errorf("HasCycle(%q) = %v, want %v", tc.src, got, tc.want)
			}
		})
	}
}

func TestCFGExitReachability(t *testing.T) {
	// After an unconditional return, trailing code is unreachable; the
	// loop around it must not resurrect it.
	_, body := parseBody(t, "if c { return }\nfor { a() }")
	g := NewCFG(body)
	reached := g.Reachable(g.Entry)
	if !reached[g.Exit] {
		t.Error("exit not reachable through the return branch")
	}

	// A panic seals the path like a return.
	_, body = parseBody(t, `panic("boom")`)
	g = NewCFG(body)
	if g.HasCycle() {
		t.Error("panic-only body reported cyclic")
	}
	if !g.Reachable(g.Entry)[g.Exit] {
		t.Error("exit not reachable from panic")
	}
}

func TestCFGDump(t *testing.T) {
	fset, body := parseBody(t, "if c { a() } else { b() }")
	got := NewCFG(body).dump(fset)
	for _, want := range []string{"entry", "exit", "if.then", "if.else", "if.join"} {
		if !strings.Contains(got, want) {
			t.Errorf("dump missing %q:\n%s", want, got)
		}
	}
}

// TestIterateMustAnalysis checks the fixpoint's meet behavior with a
// tiny must-have-called analysis: a state is true when a call to lock()
// definitely happened on every path.
func TestIterateMustAnalysis(t *testing.T) {
	run := func(src string) bool {
		_, body := parseBody(t, src)
		g := NewCFG(body)
		transfer := func(b *Block, s bool) bool {
			out := s
			for _, n := range b.Nodes {
				ast.Inspect(n, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "lock" {
							out = true
						}
					}
					return true
				})
			}
			return out
		}
		meet := func(a, b bool) bool { return a && b }
		eq := func(a, b bool) bool { return a == b }
		in := Iterate(g, false, transfer, meet, eq)
		return in[g.Exit]
	}
	if run("if c { lock() }\nuse()") {
		t.Error("one-sided lock reported as held on exit")
	}
	if !run("if c { lock() } else { lock() }\nuse()") {
		t.Error("both-sided lock not held on exit")
	}
	if !run("lock()\nfor i := 0; i < n; i++ { use(i) }") {
		t.Error("lock before loop lost through the loop join")
	}
}

func TestFuncLitsSkipDefer(t *testing.T) {
	_, body := parseBody(t, "go func() { a() }()\ndefer func() { b() }()\nf := func() { c() }\nuse(f)")
	lits := funcLits(body)
	if len(lits) != 2 {
		t.Fatalf("funcLits found %d literals, want 2 (deferred one excluded)", len(lits))
	}
}
