package analyzers

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// AllocProve cross-checks every //pinlint:hotpath annotation against
// the real compiler's escape analysis. Where the syntactic hotpath
// analyzer rejects allocation-prone *constructs*, allocprove asks the
// gc compiler itself — `go tool compile -m=2` over the package, with
// dependencies resolved from the same export data the loader
// type-checked against — and reports every "escapes to heap" /
// "moved to heap" diagnostic that falls inside an annotated function.
// The hand-maintained zero-alloc claim becomes compiler ground truth:
// an escape the benchmarks would eventually catch as allocs/op > 0
// fails lint first.
//
// A genuine cold-path escape inside a hot function (error
// construction, an amortized refill) is waived line by line with
//
//	//pinlint:allow allocprove — <why this site is off the per-call path>
//
// The justification text is mandatory policy: a waiver explains which
// calls pay the allocation, so the next perf pass can rank it. One
// class of site is exempt by rule instead: a string constant escaping
// into an interface (a panic argument) is backed by static data and
// never allocates at run time.
//
// Escape sites outside hotpath functions are not diagnostics, but they
// are collected: `pinlint -escapes` prints the module-wide ranked
// report that guides allocation hunts (see EscapeSites).
var AllocProve = &Analyzer{
	Name: "allocprove",
	Doc:  "prove //pinlint:hotpath functions heap-free with the compiler's escape analysis",
	Run:  runAllocProve,
}

// An EscapeSite is one compiler escape diagnostic.
type EscapeSite struct {
	File string
	Line int
	Col  int
	// Msg is the compiler's diagnostic ("&Client{...} escapes to
	// heap", "moved to heap: x").
	Msg string
	// Func is the enclosing function's name ("" at file scope).
	Func string
	// Hot marks sites inside //pinlint:hotpath functions.
	Hot bool
}

func runAllocProve(pass *Pass) error {
	// Only packages that annotate hot paths pay the compile.
	if !pass.Index.HasHotPath(pass.pkg) {
		return nil
	}
	sites, err := EscapeSites(pass.pkg, pass.Index)
	if err != nil {
		return fmt.Errorf("allocprove: %w", err)
	}
	for _, s := range sites {
		if !s.Hot {
			continue
		}
		pos := filePos(pass.pkg, s.File, s.Line, s.Col)
		if !pos.IsValid() {
			pos = pass.Files[0].Pos()
		}
		pass.Reportf(pos, "compiler escape in hotpath function %s: %s", s.Func, s.Msg)
	}
	return nil
}

// funcRange locates one function body in the sources.
type funcRange struct {
	file     string
	from, to int // line range, inclusive
	name     string
}

type typedFuncRange struct {
	funcRange
	fn *types.Func
}

// funcRanges maps every declared function to its body's line range.
func funcRanges(pkg *Package) []typedFuncRange {
	var out []typedFuncRange
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			from := pkg.Fset.Position(fd.Pos())
			to := pkg.Fset.Position(fd.Body.End())
			out = append(out, typedFuncRange{
				funcRange: funcRange{file: from.Filename, from: from.Line, to: to.Line, name: fn.Name()},
				fn:        fn,
			})
		}
	}
	return out
}

// escapeLineRE matches one compiler diagnostic line.
var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (\S.*?):?$`)

// EscapeSites compiles the package with `go tool compile -m=2` and
// returns its heap-escape diagnostics, annotated with the enclosing
// function and whether that function is //pinlint:hotpath. The
// dependency import map comes from the loader's export data, so the
// compile needs no build cache warm-up and cannot be skipped by one.
func EscapeSites(pkg *Package, index *Index) ([]EscapeSite, error) {
	diags, err := compileEscapeDiags(pkg)
	if err != nil {
		return nil, err
	}
	ranges := funcRanges(pkg)
	var out []EscapeSite
	for _, d := range diags {
		site := d
		for _, fr := range ranges {
			if fr.file == d.File && fr.from <= d.Line && d.Line <= fr.to {
				site.Func = fr.name
				site.Hot = index.Has(fr.fn, "hotpath")
				break
			}
		}
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out, nil
}

// compileEscapeDiags invokes the gc compiler on the package's files
// and parses the -m=2 escape diagnostics.
func compileEscapeDiags(pkg *Package) ([]EscapeSite, error) {
	files := pkg.GoFiles()
	if len(files) == 0 {
		return nil, nil
	}
	tmp, err := os.MkdirTemp("", "pinlint-allocprove-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	var cfg bytes.Buffer
	var paths []string
	for path := range pkg.Exports {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		fmt.Fprintf(&cfg, "packagefile %s=%s\n", path, pkg.Exports[path])
	}
	cfgFile := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(cfgFile, cfg.Bytes(), 0o666); err != nil {
		return nil, err
	}

	args := append([]string{
		"tool", "compile",
		"-p", pkg.PkgPath,
		"-importcfg", cfgFile,
		"-o", filepath.Join(tmp, "out.o"),
		"-m=2",
	}, files...)
	cmd := exec.Command("go", args...)
	cmd.Dir = pkg.Dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go tool compile -m=2 %s: %w\n%s", pkg.PkgPath, err, out)
	}

	var sites []EscapeSite
	seen := map[EscapeSite]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue // explanation ("flow:") and inliner lines
		}
		msg := strings.TrimSuffix(m[4], ":")
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		// A string *constant* "escaping" into an interface (a panic
		// argument, almost always) is backed by static read-only data
		// and costs nothing at run time; the diagnostic is formally
		// true but operationally empty, so it is exempt by rule rather
		// than by waiver.
		if strings.HasPrefix(msg, `"`) && strings.HasSuffix(msg, `" escapes to heap`) {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(pkg.Dir, file)
		}
		// -m=2 prints each site twice (with and without the flow
		// explanation suffix); keep one.
		s := EscapeSite{File: file, Line: lineNo, Col: colNo, Msg: msg}
		if !seen[s] {
			seen[s] = true
			sites = append(sites, s)
		}
	}
	return sites, nil
}

// filePos converts a compiler (file, line, col) triple back into a
// token.Pos of one of the package's parsed files. The shared FileSet
// also holds same-named entries registered by the export-data importer
// with fake line info, so resolution must go through the package's own
// syntax, not a FileSet scan.
func filePos(pkg *Package, file string, line, col int) token.Pos {
	for _, af := range pkg.Files {
		f := pkg.Fset.File(af.Pos())
		if f == nil || f.Name() != file {
			continue
		}
		if line <= f.LineCount() {
			p := f.LineStart(line) + token.Pos(col-1)
			if f.Pos(0) <= p && p <= f.Pos(f.Size()) {
				return p
			}
		}
		break
	}
	return token.NoPos
}
