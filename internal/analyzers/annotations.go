package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// annotationPrefix introduces every pinlint machine comment.
const annotationPrefix = "//pinlint:"

// An Index maps functions (by stable symbol key) to their pinlint
// annotations, across every package of a load. It is how analyzers see
// annotations on functions in other packages, where only export data —
// not syntax — is available.
type Index struct {
	// Module is the module path of the analyzed packages; calls to
	// functions outside it (the standard library) are exempt from the
	// hotpath closure rule.
	Module string
	// funcs maps FuncKey -> annotation name -> argument text.
	funcs map[string]map[string]string
	// pkgs are the loaded packages the index was built from, for the
	// module-wide analyses (lockorder's acquisition graph).
	pkgs []*Package
	// lockG caches lockorder's module-wide acquisition graph.
	lockG *lockGraph
	// cg caches the module call graph (callgraph.go).
	cg *callGraph
	// raw caches each analyzer's unfiltered diagnostics per package, so
	// waiverlint can test waivers for staleness without re-running the
	// suite (allocprove in particular shells out to the compiler).
	raw map[*Package]map[string]rawResult
	// sums caches interprocedural function summaries by analyzer name
	// (chansafe's close/send facts, cancelflow's blocking sites).
	sums map[string]any
}

// rawResult is one cached analyzer run: diagnostics before
// //pinlint:allow filtering, in source order.
type rawResult struct {
	diags []Diagnostic
	err   error
}

// NewIndex returns an empty index for the given module path.
func NewIndex(module string) *Index {
	return &Index{
		Module: module,
		funcs:  map[string]map[string]string{},
		sums:   map[string]any{},
	}
}

// AddPackage scans one loaded package's function declarations for
// //pinlint: annotations and records them, and registers the package
// for the module-wide analyses.
func (ix *Index) AddPackage(pkg *Package) {
	ix.pkgs = append(ix.pkgs, pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			for _, c := range fd.Doc.List {
				name, arg, ok := parseAnnotation(c.Text)
				if !ok {
					continue
				}
				key := FuncKey(obj)
				if ix.funcs[key] == nil {
					ix.funcs[key] = map[string]string{}
				}
				ix.funcs[key][name] = arg
			}
		}
	}
}

// Has reports whether fn carries the named annotation.
func (ix *Index) Has(fn *types.Func, name string) bool {
	_, ok := ix.funcs[FuncKey(fn)][name]
	return ok
}

// Arg returns the annotation's argument text ("" when absent).
func (ix *Index) Arg(fn *types.Func, name string) string {
	return ix.funcs[FuncKey(fn)][name]
}

// HasHotPath reports whether any function declared in pkg carries the
// //pinlint:hotpath annotation — the gate for paying a compiler run in
// allocprove and for inclusion in the escape report.
func (ix *Index) HasHotPath(pkg *Package) bool {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok && ix.Has(fn, "hotpath") {
					return true
				}
			}
		}
	}
	return false
}

// InModule reports whether the function is declared inside the analyzed
// module (as opposed to the standard library).
func (ix *Index) InModule(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == ix.Module || strings.HasPrefix(path, ix.Module+"/")
}

// FuncKey returns a stable cross-package symbol key for a function:
// "pkgpath.Name" for package functions, "pkgpath.(Recv).Name" for
// methods. Pointer receivers are normalized away so the key is the same
// whether the object came from source or from export data.
func FuncKey(fn *types.Func) string {
	var b strings.Builder
	if pkg := fn.Pkg(); pkg != nil {
		b.WriteString(pkg.Path())
		b.WriteByte('.')
	}
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			b.WriteByte('(')
			b.WriteString(named.Obj().Name())
			b.WriteString(").")
		}
	}
	b.WriteString(fn.Name())
	return b.String()
}

// parseAnnotation splits one comment into an annotation name and
// argument: "//pinlint:holds mu" -> ("holds", "mu", true).
func parseAnnotation(text string) (name, arg string, ok bool) {
	if !strings.HasPrefix(text, annotationPrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, annotationPrefix)
	name, arg, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(arg), name != ""
}

// allowSet records, per file and line, which analyzers are suppressed
// by a //pinlint:allow comment on that line.
type allowSet map[string]map[int][]string

// allowedLines scans a package's comments for //pinlint:allow markers.
// The allow list is the space-separated analyzer names immediately
// after "allow"; anything after " — " (or " -- ") is justification
// text. A bare allow suppresses every analyzer on the line.
func allowedLines(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, arg, ok := parseAnnotation(c.Text)
				if !ok || name != "allow" {
					continue
				}
				for _, sep := range []string{" — ", " -- "} {
					if head, _, found := strings.Cut(arg, sep); found {
						arg = head
						break
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				if set[pos.Filename] == nil {
					set[pos.Filename] = map[int][]string{}
				}
				names := strings.Fields(arg)
				if len(names) == 0 {
					names = []string{"*"}
				}
				set[pos.Filename][pos.Line] = append(set[pos.Filename][pos.Line], names...)
			}
		}
	}
	return set
}

// allows reports whether the analyzer is suppressed at the position.
func (s allowSet) allows(pos token.Position, analyzer string) bool {
	for _, name := range s[pos.Filename][pos.Line] {
		if name == "*" || name == analyzer {
			return true
		}
	}
	return false
}
