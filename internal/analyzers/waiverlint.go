package analyzers

import (
	"go/token"
	"sort"
	"strings"
)

// WaiverLint keeps the //pinlint:allow waiver policy honest forever:
//
//   - every waiver must carry a justification (text after " — " or
//     " -- ") — the PR-7 policy, now machine-checked;
//   - every waiver must name analyzers that exist;
//   - every waiver must still be suppressing something: if none of the
//     named analyzers (or, for a bare allow, no analyzer at all) would
//     fire on that line, the waiver is stale and must be deleted, so
//     the inventory (`pinlint -waivers`) never overstates the debt.
//
// Staleness is tested against the suite's cached raw (pre-suppression)
// diagnostics, so the check costs nothing beyond the run that already
// happened. waiverlint's own diagnostics are exempt from //pinlint:allow
// filtering — the waiver police cannot be waived.
var WaiverLint = &Analyzer{
	Name: "waiverlint",
	Doc:  "flag stale or unjustified //pinlint:allow waivers and keep the waiver inventory honest",
}

// runWaiverLint consults All() (which includes WaiverLint itself), so
// the Run hook is attached after initialization to break the cycle.
func init() { WaiverLint.Run = runWaiverLint }

// A Waiver is one parsed //pinlint:allow comment.
type Waiver struct {
	Pos  token.Pos
	File string
	Line int
	// Analyzers are the named analyzers; empty means all (a bare
	// allow).
	Analyzers []string
	// Justification is the free text after the " — " separator.
	Justification string
}

// PackageWaivers extracts every //pinlint:allow comment of the
// package, in source order — the inventory behind `pinlint -waivers`
// and the input to waiverlint.
func PackageWaivers(pkg *Package) []Waiver {
	var out []Waiver
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, arg, ok := parseAnnotation(c.Text)
				if !ok || name != "allow" {
					continue
				}
				// Fixture scaffolding: checktest want expectations share
				// the waiver's line comment and are not waiver content.
				if i := strings.Index(arg, "// want"); i >= 0 {
					arg = strings.TrimSpace(arg[:i])
				}
				just := ""
				for _, sep := range []string{" — ", " -- "} {
					if head, tail, found := strings.Cut(arg, sep); found {
						arg, just = head, strings.TrimSpace(tail)
						break
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, Waiver{
					Pos:           c.Pos(),
					File:          pos.Filename,
					Line:          pos.Line,
					Analyzers:     strings.Fields(arg),
					Justification: just,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

func runWaiverLint(pass *Pass) error {
	waivers := PackageWaivers(pass.pkg)
	if len(waivers) == 0 {
		return nil
	}
	known := map[string]*Analyzer{}
	var all []*Analyzer
	for _, a := range All() {
		if a.Name == WaiverLint.Name {
			continue // the waiver police cannot be waived
		}
		known[a.Name] = a
		all = append(all, a)
	}
	for _, w := range waivers {
		if w.Justification == "" {
			pass.Reportf(w.Pos, "waiver has no justification; write //pinlint:allow %s — why it is safe",
				strings.Join(w.Analyzers, " "))
		}
		candidates := all
		if len(w.Analyzers) > 0 {
			candidates = candidates[:0:0]
			for _, name := range w.Analyzers {
				a, ok := known[name]
				if !ok {
					pass.Reportf(w.Pos, "waiver names unknown analyzer %q", name)
					continue
				}
				candidates = append(candidates, a)
			}
			if len(candidates) == 0 {
				continue // only unknown names: already reported
			}
		}
		live := false
		for _, a := range candidates {
			diags, err := pass.Index.rawDiags(a, pass.pkg)
			if err != nil {
				// Indeterminate (e.g. the compiler backing allocprove
				// failed): never call a waiver stale on a guess.
				live = true
				break
			}
			for _, d := range diags {
				p := pass.Fset.Position(d.Pos)
				if p.Filename == w.File && p.Line == w.Line {
					live = true
					break
				}
			}
			if live {
				break
			}
		}
		if !live {
			pass.Reportf(w.Pos, "stale waiver: %s no longer fires on this line; delete the //pinlint:allow",
				waiverSubject(w))
		}
	}
	return nil
}

func waiverSubject(w Waiver) string {
	if len(w.Analyzers) == 0 {
		return "no analyzer"
	}
	return strings.Join(w.Analyzers, "/")
}
