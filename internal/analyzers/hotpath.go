package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath rejects allocation-prone constructs inside functions
// annotated //pinlint:hotpath. These are the serve/fanout/receive/codec
// paths whose benchmarks assert 0 allocs/op; the analyzer catches a
// regression before the benchmark does.
//
// Inside a hotpath function the following are diagnosed:
//
//   - append to a local slice that was not made with an explicit
//     capacity in the same function (appending to a reslice like
//     buf[:0], to a parameter, or to a struct field follows the
//     caller-owned-buffer discipline and is allowed);
//   - string concatenation (+ / += on strings);
//   - map and slice composite literals, &T{...} and new(T) heap
//     literals, and closure (func) literals;
//   - implicit boxing of a concrete value into an interface, in call
//     arguments, assignments, returns, and channel sends;
//   - any call into package fmt;
//   - go statements (a goroutine spawn per slot is an allocation and a
//     scheduling hazard);
//   - calls to module-local functions that are not themselves
//     annotated //pinlint:hotpath, so the 0-alloc property is closed
//     over the whole call graph. Standard-library calls (other than
//     fmt) and dynamic interface-method calls are exempt.
//
// Cold paths inside hot functions (error construction, setup before
// the loop, amortized refills) are waived line by line with
// //pinlint:allow hotpath and a justification.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "reject allocation-prone constructs in //pinlint:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !pass.Index.Has(fn, "hotpath") {
				continue
			}
			checkHotFunc(pass, fd, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl, fn *types.Func) {
	info := pass.TypesInfo
	capped := cappedSlices(info, fd.Body)
	results := fn.Signature().Results()

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, capped)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n.X)) {
				pass.Reportf(n.OpPos, "string concatenation in hotpath function %s allocates", fn.Name())
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.TokPos, "string concatenation in hotpath function %s allocates", fn.Name())
			}
			checkBoxedAssign(pass, fn, n)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hotpath function %s allocates", fn.Name())
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hotpath function %s allocates", fn.Name())
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal in hotpath function %s escapes to the heap", fn.Name())
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hotpath function %s allocates", fn.Name())
			return false // the closure body is the closure's problem
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hotpath function %s spawns per-call", fn.Name())
		case *ast.SendStmt:
			if ch, ok := info.TypeOf(n.Chan).Underlying().(*types.Chan); ok {
				checkBoxing(pass, fn, n.Value, ch.Elem())
			}
		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, res := range n.Results {
					checkBoxing(pass, fn, res, results.At(i).Type())
				}
			}
		}
		return true
	})
}

// checkHotCall diagnoses one call expression inside a hotpath function.
func checkHotCall(pass *Pass, caller *types.Func, call *ast.CallExpr, capped map[types.Object]bool) {
	info := pass.TypesInfo

	// Conversions are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	// Builtins: append gets the capacity discipline, new allocates.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				checkAppend(pass, caller, call, capped)
			case "new":
				pass.Reportf(call.Pos(), "new(T) in hotpath function %s allocates", caller.Name())
			}
			return
		}
	}

	callee := calleeFunc(info, call)
	if callee == nil {
		// Calling a function value or other dynamic target: the static
		// analysis cannot follow it.
		return
	}
	sig := callee.Signature()
	if recv := sig.Recv(); recv != nil {
		if _, ok := recv.Type().Underlying().(*types.Interface); ok {
			// Dynamic dispatch: unresolvable statically, exempt.
			checkCallArgs(pass, caller, call, sig)
			return
		}
	}
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		pass.Reportf(call.Pos(), "call to %s.%s in hotpath function %s (fmt allocates)", pkg.Name(), callee.Name(), caller.Name())
		return
	}
	if pass.Index.InModule(callee) && !pass.Index.Has(callee, "hotpath") {
		pass.Reportf(call.Pos(), "hotpath function %s calls %s, which is not annotated //pinlint:hotpath", caller.Name(), callee.Name())
	}
	checkCallArgs(pass, caller, call, sig)
}

// checkCallArgs flags concrete arguments passed to interface
// parameters (boxing).
func checkCallArgs(pass *Pass, caller *types.Func, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, caller, arg, pt)
	}
}

// checkBoxedAssign flags assignments that box a concrete value into an
// interface-typed destination.
func checkBoxedAssign(pass *Pass, caller *types.Func, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if lt := pass.TypesInfo.TypeOf(lhs); lt != nil {
			checkBoxing(pass, caller, n.Rhs[i], lt)
		}
	}
}

// checkBoxing reports expr if its concrete value is converted to an
// interface destination type.
func checkBoxing(pass *Pass, caller *types.Func, expr ast.Expr, dst types.Type) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil {
		return
	}
	if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
		return // interface to interface: no new allocation
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return // pointers box without copying the pointee
	}
	if tv.Value != nil {
		// Constants box to interned or rodata-backed values; flagging
		// every literal argument would drown the signal.
		return
	}
	pass.Reportf(expr.Pos(), "value of type %s boxed into interface %s in hotpath function %s",
		tv.Type, dst, caller.Name())
}

// checkAppend enforces the preallocated-capacity discipline: appending
// to a fresh local slice is only allowed when the function made it
// with an explicit capacity.
func checkAppend(pass *Pass, caller *types.Func, call *ast.CallExpr, capped map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	switch dst := unparen(call.Args[0]).(type) {
	case *ast.SliceExpr:
		return // append(buf[:0], ...): reuse of an owned buffer
	case *ast.SelectorExpr, *ast.IndexExpr:
		return // struct-field or element buffer: owner preallocates
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[dst]
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			return
		}
		if isParam(caller, obj) || capped[obj] {
			return
		}
		pass.Reportf(call.Pos(), "append to %s in hotpath function %s may grow without preallocated capacity", dst.Name, caller.Name())
	default:
		pass.Reportf(call.Pos(), "append in hotpath function %s may grow without preallocated capacity", caller.Name())
	}
}

// cappedSlices collects local variables initialized from a make call
// with an explicit capacity anywhere in the body.
func cappedSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	capped := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				continue
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
				continue
			}
			if lhs, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := info.ObjectOf(lhs); obj != nil {
					capped[obj] = true
				}
			}
		}
		return true
	})
	return capped
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isParam(fn *types.Func, obj types.Object) bool {
	sig := fn.Signature()
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return true
		}
	}
	if recv := sig.Recv(); recv != nil && recv == obj {
		return true
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
