// Package workload generates the broadcast-disk workloads the paper's
// introduction motivates: IVHS (Intelligent Vehicle Highway System)
// traffic dissemination, AWACS battlefield data, and video-on-demand —
// plus parameterized random workloads for sweeps. All generators are
// seeded and reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"pinbcast/internal/core"
	"pinbcast/internal/rtdb"
)

// IVHS returns the broadcast files of an Intelligent Vehicle Highway
// System serving nSegments highway segments: per segment a frequently
// refreshed traffic-conditions file and a slower incident file, plus
// one shared route-guidance map. Latencies are in 100 ms units.
func IVHS(nSegments int, seed int64) []core.FileSpec {
	if nSegments < 1 {
		panic("workload: need at least one segment")
	}
	rng := rand.New(rand.NewSource(seed))
	var files []core.FileSpec
	for s := 0; s < nSegments; s++ {
		files = append(files, core.FileSpec{
			Name:    fmt.Sprintf("traffic-%02d", s),
			Blocks:  1 + rng.Intn(3),   // small, hot updates
			Latency: 10 + rng.Intn(20), // 1–3 s freshness
			Faults:  1,
		})
		files = append(files, core.FileSpec{
			Name:    fmt.Sprintf("incident-%02d", s),
			Blocks:  2 + rng.Intn(4),
			Latency: 50 + rng.Intn(50), // 5–10 s
			Faults:  2,                 // incident reports are critical
		})
	}
	files = append(files, core.FileSpec{
		Name:    "route-map",
		Blocks:  16 + rng.Intn(16),
		Latency: 600, // 60 s: the map changes slowly
		Faults:  1,
	})
	return files
}

// AWACS returns the paper's AWACS real-time database: positional items
// whose temporal constraints derive from platform velocities, with
// mode-dependent criticality.
func AWACS() *rtdb.Database {
	return &rtdb.Database{
		Unit: 100 * time.Millisecond,
		Items: []rtdb.Item{
			{
				Name:     "aircraft-pos",
				Velocity: rtdb.KmPerHour(900),
				Accuracy: 100,
				Blocks:   4,
				FaultsByMode: map[rtdb.Mode]int{
					"combat":  2,
					"landing": 1,
				},
			},
			{
				Name:     "tank-pos",
				Velocity: rtdb.KmPerHour(60),
				Accuracy: 100,
				Blocks:   2,
				FaultsByMode: map[rtdb.Mode]int{
					"combat": 1,
				},
			},
			{
				Name:     "helicopter-pos",
				Velocity: rtdb.KmPerHour(240),
				Accuracy: 100,
				Blocks:   3,
				FaultsByMode: map[rtdb.Mode]int{
					"combat":  2,
					"landing": 1,
				},
			},
			{
				Name:     "convoy-route",
				Velocity: rtdb.KmPerHour(30),
				Accuracy: 250,
				Blocks:   6,
				FaultsByMode: map[rtdb.Mode]int{
					"combat": 1,
				},
			},
		},
	}
}

// Video returns a video-on-demand workload: nStreams streams whose
// frames must arrive at a steady cadence (interactive-TV set-top boxes,
// §1). Latencies in frame times.
func Video(nStreams int, seed int64) []core.FileSpec {
	if nStreams < 1 {
		panic("workload: need at least one stream")
	}
	rng := rand.New(rand.NewSource(seed))
	files := make([]core.FileSpec, nStreams)
	for i := range files {
		files[i] = core.FileSpec{
			Name:    fmt.Sprintf("stream-%02d", i),
			Blocks:  4 + rng.Intn(4), // a group of pictures
			Latency: 30 + rng.Intn(30),
			Faults:  1,
		}
	}
	return files
}

// Random returns n random file specifications with sizes in
// [1, maxBlocks], latencies in [minLatency, maxLatency] and fault
// tolerances in [0, maxFaults].
func Random(n int, maxBlocks, minLatency, maxLatency, maxFaults int, seed int64) []core.FileSpec {
	if n < 1 || maxBlocks < 1 || minLatency < 1 || maxLatency < minLatency || maxFaults < 0 {
		panic("workload: invalid Random parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	files := make([]core.FileSpec, n)
	for i := range files {
		files[i] = core.FileSpec{
			Name:    fmt.Sprintf("f%03d", i),
			Blocks:  1 + rng.Intn(maxBlocks),
			Latency: minLatency + rng.Intn(maxLatency-minLatency+1),
			Faults:  rng.Intn(maxFaults + 1),
		}
	}
	return files
}

// RandomUnitSystemFiles returns n unit-demand files (one block each)
// whose total density approximates targetDensity at bandwidth 1 — the
// instances of the scheduler density sweep (experiment E9).
func RandomUnitSystemFiles(n int, targetDensity float64, seed int64) []core.FileSpec {
	if n < 1 || targetDensity <= 0 {
		panic("workload: invalid RandomUnitSystemFiles parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	files := make([]core.FileSpec, n)
	// Draw random weights and scale windows so Σ 1/bᵢ ≈ targetDensity.
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.2 + rng.Float64()
		sum += weights[i]
	}
	for i := range files {
		share := targetDensity * weights[i] / sum
		b := int(1.0/share + 0.5)
		if b < 2 {
			b = 2
		}
		files[i] = core.FileSpec{
			Name:    fmt.Sprintf("u%03d", i),
			Blocks:  1,
			Latency: b,
		}
	}
	return files
}

// Contents fabricates deterministic file contents sized to the specs
// (blockSize bytes per block), for end-to-end simulations.
func Contents(files []core.FileSpec, blockSize int, seed int64) map[string][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string][]byte, len(files))
	for _, f := range files {
		data := make([]byte, f.Blocks*blockSize)
		rng.Read(data)
		out[f.Name] = data
	}
	return out
}
