package workload

import (
	"math"
	"testing"

	"pinbcast/internal/core"
	"pinbcast/internal/rtdb"
)

func TestIVHSReproducible(t *testing.T) {
	a := IVHS(5, 42)
	b := IVHS(5, 42)
	if len(a) != len(b) || len(a) != 11 { // 2 per segment + map
		t.Fatalf("sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded generator diverged at %d", i)
		}
	}
	if err := core.ValidateAll(a); err != nil {
		t.Fatal(err)
	}
}

func TestIVHSSchedulable(t *testing.T) {
	files := IVHS(8, 7)
	bw := core.SufficientBandwidth(files)
	if _, err := core.BuildProgram(files, bw); err != nil {
		t.Fatalf("IVHS workload not schedulable at Eq-2 bandwidth: %v", err)
	}
}

func TestAWACSDatabase(t *testing.T) {
	db := AWACS()
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"combat", "landing"} {
		p, err := db.Program(rtdb.Mode(mode))
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if p.Period < 1 {
			t.Fatalf("mode %s: empty program", mode)
		}
	}
}

func TestVideoValidates(t *testing.T) {
	files := Video(6, 3)
	if err := core.ValidateAll(files); err != nil {
		t.Fatal(err)
	}
	if len(files) != 6 {
		t.Fatalf("streams = %d", len(files))
	}
}

func TestRandomBounds(t *testing.T) {
	files := Random(50, 8, 10, 100, 3, 99)
	for _, f := range files {
		if f.Blocks < 1 || f.Blocks > 8 {
			t.Fatalf("blocks %d out of range", f.Blocks)
		}
		if f.Latency < 10 || f.Latency > 100 {
			t.Fatalf("latency %d out of range", f.Latency)
		}
		if f.Faults < 0 || f.Faults > 3 {
			t.Fatalf("faults %d out of range", f.Faults)
		}
	}
	if err := core.ValidateAll(files); err != nil {
		t.Fatal(err)
	}
}

func TestRandomUnitSystemDensity(t *testing.T) {
	for _, target := range []float64{0.3, 0.5, 0.7} {
		files := RandomUnitSystemFiles(20, target, 5)
		sys := core.TaskSystem(files, 1)
		if d := sys.Density(); math.Abs(d-target) > 0.15 {
			t.Fatalf("target %v: density %v too far off", target, d)
		}
	}
}

func TestContentsSizedToSpecs(t *testing.T) {
	files := Random(5, 4, 10, 20, 1, 1)
	data := Contents(files, 64, 2)
	for _, f := range files {
		if got := len(data[f.Name]); got != f.Blocks*64 {
			t.Fatalf("file %s: %d bytes, want %d", f.Name, got, f.Blocks*64)
		}
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	for name, fn := range map[string]func(){
		"IVHS":   func() { IVHS(0, 1) },
		"Video":  func() { Video(0, 1) },
		"Random": func() { Random(0, 1, 1, 1, 0, 1) },
		"Unit":   func() { RandomUnitSystemFiles(0, 0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad params did not panic", name)
				}
			}()
			fn()
		}()
	}
}
