// Package sim drives end-to-end broadcast-disk simulations: a server
// follows a broadcast program, the channel injects faults, and a
// population of clients retrieves files against deadlines. It produces
// the latency and deadline-miss metrics the paper's real-time analysis
// is about.
package sim

import (
	"fmt"

	"pinbcast/internal/channel"
	"pinbcast/internal/client"
	"pinbcast/internal/core"
	"pinbcast/internal/server"
)

// ClientSpec places one client in the simulation.
type ClientSpec struct {
	Start    int // absolute slot at which the client begins listening
	Requests []client.Request
}

// Config describes a simulation.
type Config struct {
	Program  *core.Program
	Contents map[string][]byte
	Fault    channel.FaultModel
	Clients  []ClientSpec
	// Horizon is the number of slots to simulate. Zero derives a
	// horizon from the latest client start plus four data cycles.
	Horizon int
}

// FileStats aggregates outcomes per file.
type FileStats struct {
	Requests       int
	Completed      int
	DeadlineMet    int
	DeadlineMissed int
	MeanLatency    float64
	MaxLatency     int
	Corrupted      int
}

// Report is the simulation outcome.
type Report struct {
	Slots           int
	BlocksSent      int
	BlocksCorrupted int
	PerFile         map[string]*FileStats
	Results         []client.Result
	FaultModel      string
}

// Run executes the simulation.
func Run(cfg Config) (*Report, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("sim: no program")
	}
	if cfg.Fault == nil {
		cfg.Fault = channel.None{}
	}
	if len(cfg.Clients) == 0 {
		return nil, fmt.Errorf("sim: no clients")
	}
	srv, err := server.New(cfg.Program, cfg.Contents)
	if err != nil {
		return nil, err
	}
	names := srv.Names()
	horizon := cfg.Horizon
	if horizon == 0 {
		latest := 0
		for _, cs := range cfg.Clients {
			if cs.Start > latest {
				latest = cs.Start
			}
		}
		horizon = latest + 4*cfg.Program.DataCycle()
	}

	clients := make([]*client.Client, len(cfg.Clients))
	for i, cs := range cfg.Clients {
		c, err := client.New(cs.Start, names, cs.Requests)
		if err != nil {
			return nil, fmt.Errorf("sim: client %d: %w", i, err)
		}
		clients[i] = c
	}

	rep := &Report{PerFile: make(map[string]*FileStats), FaultModel: cfg.Fault.Name()}
	for t := 0; t < horizon; t++ {
		raw := srv.Emit(t)
		if raw != nil {
			rep.BlocksSent++
		}
		corrupted := raw != nil && cfg.Fault.Corrupts(t)
		if corrupted {
			rep.BlocksCorrupted++
			// Flip bytes so checksums fail; clients see garbage.
			raw = corrupt(raw)
			if f := cfg.Program.FileAt(t); f != core.Idle {
				name := cfg.Program.Files[f].Name
				for _, c := range clients {
					if t >= c.Start() {
						c.NoteCorruption(name)
					}
				}
			}
		}
		done := true
		for _, c := range clients {
			c.Observe(t, raw)
			if !c.Done() {
				done = false
			}
		}
		if done {
			rep.Slots = t + 1
			break
		}
		rep.Slots = t + 1
	}

	for _, c := range clients {
		rep.Results = append(rep.Results, c.Flush(rep.Slots-1)...)
	}
	for _, r := range rep.Results {
		st := rep.PerFile[r.File]
		if st == nil {
			st = &FileStats{}
			rep.PerFile[r.File] = st
		}
		st.Requests++
		st.Corrupted += r.Corrupted
		if r.Completed {
			st.Completed++
			st.MeanLatency += float64(r.Latency)
			if r.Latency > st.MaxLatency {
				st.MaxLatency = r.Latency
			}
			if r.Deadline > 0 {
				if r.DeadlineMet {
					st.DeadlineMet++
				} else {
					st.DeadlineMissed++
				}
			}
		} else if r.Deadline > 0 {
			st.DeadlineMissed++
		}
	}
	for _, st := range rep.PerFile {
		if st.Completed > 0 {
			st.MeanLatency /= float64(st.Completed)
		}
	}
	return rep, nil
}

// corrupt returns a copy of raw with a byte flipped, guaranteeing a
// checksum failure at the client.
func corrupt(raw []byte) []byte {
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x5a
	return bad
}

// MissRatio returns the fraction of deadline-carrying requests that
// missed, across all files.
func (r *Report) MissRatio() float64 {
	met, missed := 0, 0
	for _, st := range r.PerFile {
		met += st.DeadlineMet
		missed += st.DeadlineMissed
	}
	if met+missed == 0 {
		return 0
	}
	return float64(missed) / float64(met+missed)
}
