package sim

import (
	"bytes"
	"fmt"
	"testing"

	"pinbcast/internal/channel"
	"pinbcast/internal/client"
	"pinbcast/internal/core"
)

func fig6Program(t testing.TB) *core.Program {
	p, err := core.FlatSpread([]core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1, DispersalWidth: 10},
		{Name: "B", Blocks: 3, Latency: 1, DispersalWidth: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func contents() map[string][]byte {
	return map[string][]byte{
		"A": []byte("file A holds forty-two bytes of road data!!"),
		"B": []byte("file B: tank positions"),
	}
}

func TestFaultFreeRetrievalByteExact(t *testing.T) {
	rep, err := Run(Config{
		Program:  fig6Program(t),
		Contents: contents(),
		Clients: []ClientSpec{
			{Start: 0, Requests: []client.Request{{File: "A"}, {File: "B"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if !r.Completed {
			t.Fatalf("request %q incomplete", r.File)
		}
		if !bytes.Equal(r.Data, contents()[r.File]) {
			t.Fatalf("file %q content mismatch", r.File)
		}
	}
	// Fault-free: A completes within 8 slots (5 A-blocks in one period),
	// B within 7.
	for _, r := range rep.Results {
		if r.Latency > 8 {
			t.Fatalf("file %q latency %d > 8 without faults", r.File, r.Latency)
		}
	}
}

func TestClientStartsMidProgram(t *testing.T) {
	for start := 0; start < 16; start++ {
		rep, err := Run(Config{
			Program:  fig6Program(t),
			Contents: contents(),
			Clients: []ClientSpec{
				{Start: start, Requests: []client.Request{{File: "A"}}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rep.Results[0]
		if !r.Completed || !bytes.Equal(r.Data, contents()["A"]) {
			t.Fatalf("start %d: retrieval failed", start)
		}
		if r.Latency > 8 {
			t.Fatalf("start %d: latency %d > 8", start, r.Latency)
		}
	}
}

func TestAdversarialErrorWithinTolerance(t *testing.T) {
	// Destroy one A-block reception: with dispersal 10-of-5 the client
	// just uses the next block; latency grows by at most δ_A·1 = 2
	// (Lemma 2), and content is still exact.
	prog := fig6Program(t)
	occ := prog.Occurrences(0)
	rep, err := Run(Config{
		Program:  prog,
		Contents: contents(),
		Fault:    channel.SlotSet{occ[4]: true}, // kill the 5th A reception
		Clients: []ClientSpec{
			{Start: 0, Requests: []client.Request{{File: "A", Deadline: 10}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if !r.Completed || !bytes.Equal(r.Data, contents()["A"]) {
		t.Fatal("retrieval under single fault failed")
	}
	base := 8 // fault-free completion from slot 0
	if r.Latency > base+2 {
		t.Fatalf("latency %d exceeds Lemma 2 bound %d", r.Latency, base+2)
	}
	if r.Corrupted != 1 {
		t.Fatalf("corrupted count = %d, want 1", r.Corrupted)
	}
}

func TestFlatProgramPaysFullPeriod(t *testing.T) {
	// The same single fault against a non-dispersed flat program forces
	// the client to wait for the block's retransmission next period.
	prog, err := core.FlatSpread([]core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 1},
		{Name: "B", Blocks: 3, Latency: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	occ := prog.Occurrences(0)
	killed := occ[4]
	rep, err := Run(Config{
		Program:  prog,
		Contents: contents(),
		Fault:    channel.SlotSet{killed: true},
		Clients: []ClientSpec{
			{Start: 0, Requests: []client.Request{{File: "A"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if !r.Completed {
		t.Fatal("flat retrieval failed")
	}
	// The killed block recurs exactly one period (8 slots) later.
	if r.Latency != killed+1+8 {
		t.Fatalf("flat latency = %d, want %d", r.Latency, killed+1+8)
	}
}

func TestDeadlineMissAccounting(t *testing.T) {
	prog := fig6Program(t)
	occ := prog.Occurrences(1) // B occurrences
	// Destroy three consecutive B receptions; the fourth is at slot 9,
	// so a deadline of 7 must be missed.
	faults := channel.SlotSet{occ[0]: true, occ[1]: true, occ[2]: true}
	rep, err := Run(Config{
		Program:  prog,
		Contents: contents(),
		Fault:    faults,
		Clients: []ClientSpec{
			{Start: 0, Requests: []client.Request{{File: "B", Deadline: 7}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if !r.Completed {
		t.Fatal("retrieval should still complete, just late")
	}
	if r.DeadlineMet {
		t.Fatalf("deadline reported met with latency %d > 7", r.Latency)
	}
	if rep.MissRatio() != 1.0 {
		t.Fatalf("miss ratio = %v, want 1", rep.MissRatio())
	}
}

func TestBernoulliPopulationStatistics(t *testing.T) {
	prog := fig6Program(t)
	var clients []ClientSpec
	for i := 0; i < 40; i++ {
		clients = append(clients, ClientSpec{
			Start:    i * 3,
			Requests: []client.Request{{File: "A", Deadline: 16}, {File: "B", Deadline: 16}},
		})
	}
	rep, err := Run(Config{
		Program:  prog,
		Contents: contents(),
		Fault:    channel.NewBernoulli(0.05, 13),
		Clients:  clients,
		Horizon:  4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range rep.PerFile {
		if st.Requests != 40 {
			t.Fatalf("file %s: %d requests", name, st.Requests)
		}
		if st.Completed < 38 {
			t.Fatalf("file %s: only %d/40 completed at 5%% loss", name, st.Completed)
		}
		if st.MeanLatency <= 0 || st.MeanLatency > 16 {
			t.Fatalf("file %s: mean latency %v implausible", name, st.MeanLatency)
		}
	}
	if rep.BlocksSent == 0 || rep.BlocksCorrupted == 0 {
		t.Fatal("loss accounting empty")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Program: fig6Program(t), Contents: contents()}); err == nil {
		t.Fatal("no clients accepted")
	}
	if _, err := Run(Config{
		Program:  fig6Program(t),
		Contents: map[string][]byte{"A": []byte("x")}, // missing B
		Clients:  []ClientSpec{{Requests: []client.Request{{File: "A"}}}},
	}); err == nil {
		t.Fatal("missing contents accepted")
	}
}

func TestEndToEndPinwheelProgram(t *testing.T) {
	// Full pipeline: spec → Eq 2 bandwidth → pinwheel program → server →
	// lossy channel → client, byte-for-byte.
	files := []core.FileSpec{
		{Name: "A", Blocks: 5, Latency: 10, Faults: 2},
		{Name: "B", Blocks: 3, Latency: 6, Faults: 1},
	}
	prog, err := core.BuildProgramAuto(files)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string][]byte{
		"A": bytes.Repeat([]byte("IVHS segment data "), 20),
		"B": []byte("alert: accident at exit 14"),
	}
	rep, err := Run(Config{
		Program:  prog,
		Contents: data,
		Fault:    channel.NewBernoulli(0.02, 99),
		Clients: []ClientSpec{
			{Start: 0, Requests: []client.Request{{File: "A"}, {File: "B"}}},
			{Start: 17, Requests: []client.Request{{File: "B"}}},
		},
		Horizon: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if !r.Completed {
			t.Fatalf("request %q incomplete", r.File)
		}
		if !bytes.Equal(r.Data, data[r.File]) {
			t.Fatalf("file %q content mismatch", r.File)
		}
	}
}

func TestManyStartsExhaustiveDeadlines(t *testing.T) {
	// The designed guarantee: with r ≤ Faults adversarial errors, every
	// client meets latency T regardless of start slot. Exercise every
	// start over one data cycle with the worst single fault.
	files := []core.FileSpec{
		{Name: "A", Blocks: 3, Latency: 6, Faults: 1},
		{Name: "B", Blocks: 2, Latency: 5, Faults: 1},
	}
	prog, err := core.BuildProgramAuto(files)
	if err != nil {
		t.Fatal(err)
	}
	b := prog.Bandwidth
	data := map[string][]byte{"A": []byte("AAAAAAAAAAAA"), "B": []byte("BBBBBBBB")}
	for start := 0; start < prog.DataCycle(); start++ {
		for _, f := range files {
			occ := prog.Occurrences(indexOf(prog, f.Name))
			// Kill the first occurrence at or after start: the most
			// damaging single fault for this request.
			kill := -1
			for k := 0; k < len(occ)*4 && kill < 0; k++ {
				slot := occ[k%len(occ)] + (k/len(occ))*prog.Period
				if slot >= start {
					kill = slot
				}
			}
			rep, err := Run(Config{
				Program:  prog,
				Contents: data,
				Fault:    channel.SlotSet{kill: true},
				Clients: []ClientSpec{
					{Start: start, Requests: []client.Request{{File: f.Name, Deadline: b * f.Latency}}},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			r := rep.Results[0]
			if !r.Completed || !r.DeadlineMet {
				t.Fatalf("start %d file %s: latency %d vs deadline %d (completed=%v)",
					start, f.Name, r.Latency, b*f.Latency, r.Completed)
			}
		}
	}
}

func indexOf(p *core.Program, name string) int {
	for i, f := range p.Files {
		if f.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("no file %q", name))
}

func BenchmarkSimulation(b *testing.B) {
	prog := fig6Program(b)
	data := contents()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Program:  prog,
			Contents: data,
			Fault:    channel.NewBernoulli(0.05, int64(i)),
			Clients: []ClientSpec{
				{Start: 0, Requests: []client.Request{{File: "A"}, {File: "B"}}},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
