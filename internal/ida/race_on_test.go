//go:build race

package ida

// raceEnabled reports whether the race detector is compiled in.
// sync.Pool deliberately drops puts at random under the race detector
// (to surface reuse races), so allocation-count assertions over pooled
// paths are meaningless in that configuration and skip themselves.
const raceEnabled = true
