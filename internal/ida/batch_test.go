package ida

import (
	"bytes"
	"errors"
	"testing"
)

// batchFiles builds a length-diverse file set: exact multiples of the
// shard length, partial tails, single bytes, and files short enough
// that trailing source blocks are entirely zero padding.
func batchFiles(m int) [][]byte {
	lengths := []int{1, m, m * 100, m*100 + 1, m*100 - 1, 3*100 + 7, 64 << 10}
	files := make([][]byte, len(lengths))
	for f, n := range lengths {
		d := make([]byte, n)
		for i := range d {
			d[i] = byte(i*13 + f*7 + 1)
		}
		files[f] = d
	}
	return files
}

func TestDisperseBatchMatchesDisperse(t *testing.T) {
	for _, mn := range [][2]int{{1, 1}, {1, 4}, {4, 4}, {8, 12}, {5, 13}} {
		c, err := NewCodec(mn[0], mn[1])
		if err != nil {
			t.Fatal(err)
		}
		files := batchFiles(mn[0])
		batch, err := c.DisperseBatch(files, nil)
		if err != nil {
			t.Fatalf("(%d,%d): DisperseBatch: %v", mn[0], mn[1], err)
		}
		if len(batch) != len(files) {
			t.Fatalf("(%d,%d): got %d results, want %d", mn[0], mn[1], len(batch), len(files))
		}
		for f, data := range files {
			want, err := c.Disperse(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch[f]) != len(want) {
				t.Fatalf("(%d,%d) file %d: got %d payloads, want %d", mn[0], mn[1], f, len(batch[f]), len(want))
			}
			for seq := range want {
				if !bytes.Equal(batch[f][seq], want[seq]) {
					t.Fatalf("(%d,%d) file %d payload %d differs from Disperse", mn[0], mn[1], f, seq)
				}
			}
		}
	}
}

func TestDisperseBatchRoundTrip(t *testing.T) {
	c, err := NewCodec(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	files := batchFiles(4)
	batch, err := c.DisperseBatch(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct every file from redundant rows only — the hardest
	// subset — via the batch decode path.
	jobs := make([]ReconstructJob, len(files))
	for f, data := range files {
		shards := make([]Shard, 0, 4)
		for s := 5; s < 9; s++ {
			shards = append(shards, Shard{Seq: s, Data: batch[f][s]})
		}
		jobs[f] = ReconstructJob{Shards: shards, DataLen: len(data)}
	}
	if err := c.ReconstructBatch(jobs); err != nil {
		t.Fatalf("ReconstructBatch: %v", err)
	}
	for f, data := range files {
		if jobs[f].Err != nil {
			t.Fatalf("file %d: %v", f, jobs[f].Err)
		}
		if !bytes.Equal(jobs[f].Out, data) {
			t.Fatalf("file %d: round trip through batch encode/decode corrupted data", f)
		}
	}
}

func TestDisperseBatchReusesBuffers(t *testing.T) {
	c, err := NewCodec(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	files := batchFiles(8)
	dst, err := c.DisperseBatch(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if dst, err = c.DisperseBatch(files, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DisperseBatch allocates %.1f times per call, want 0", allocs)
	}
}

func TestReconstructBatchReportsPerJobErrors(t *testing.T) {
	c, err := NewCodec(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := batchFiles(4)[5]
	payloads, err := c.Disperse(data)
	if err != nil {
		t.Fatal(err)
	}
	good := make([]Shard, 0, 4)
	for s := 0; s < 4; s++ {
		good = append(good, Shard{Seq: s, Data: payloads[s]})
	}
	jobs := []ReconstructJob{
		{Shards: good, DataLen: len(data)},
		{Shards: good[:2], DataLen: len(data)}, // too few shards
		{Shards: good, DataLen: len(data)},
	}
	err = c.ReconstructBatch(jobs)
	if !errors.Is(err, ErrNotEnough) {
		t.Fatalf("batch error = %v, want ErrNotEnough", err)
	}
	if jobs[0].Err != nil || !bytes.Equal(jobs[0].Out, data) {
		t.Fatalf("job 0 should succeed despite job 1 failing: err=%v", jobs[0].Err)
	}
	if !errors.Is(jobs[1].Err, ErrNotEnough) || jobs[1].Out != nil {
		t.Fatalf("job 1: err=%v out=%v, want ErrNotEnough and nil", jobs[1].Err, jobs[1].Out)
	}
	if jobs[2].Err != nil || !bytes.Equal(jobs[2].Out, data) {
		t.Fatalf("job 2 should succeed despite job 1 failing: err=%v", jobs[2].Err)
	}
}

func TestReconstructBatchReusesDst(t *testing.T) {
	c, err := NewCodec(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := batchFiles(4)[5]
	payloads, err := c.Disperse(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]Shard, 0, 4)
	for s := 2; s < 6; s++ {
		shards = append(shards, Shard{Seq: s, Data: payloads[s]})
	}
	jobs := []ReconstructJob{{Shards: shards, DataLen: len(data)}}
	if err := c.ReconstructBatch(jobs); err != nil {
		t.Fatal(err)
	}
	first := &jobs[0].Dst[0]
	if err := c.ReconstructBatch(jobs); err != nil {
		t.Fatal(err)
	}
	if &jobs[0].Dst[0] != first {
		t.Fatal("second batch did not reuse the job's Dst buffer")
	}
	if !bytes.Equal(jobs[0].Out, data) {
		t.Fatal("reused-buffer reconstruction corrupted data")
	}
}

func TestDisperseBatchRejectsEmptyFile(t *testing.T) {
	c, err := NewCodec(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.DisperseBatch([][]byte{{1, 2, 3}, {}}, nil)
	if !errors.Is(err, ErrEmptyFile) {
		t.Fatalf("err = %v, want ErrEmptyFile", err)
	}
	out, err := c.DisperseBatch(nil, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v, want empty and nil", out, err)
	}
}

func TestReconstructFileIntoReuse(t *testing.T) {
	data := batchFiles(4)[5]
	blocks, err := DisperseFile(77, data, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReconstructFileInto(blocks[3:8], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReconstructFileInto corrupted data")
	}
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under -race; allocation counts are meaningless")
	}
	buf := got[:cap(got)]
	allocs := testing.AllocsPerRun(10, func() {
		out, err := ReconstructFileInto(blocks[3:8], buf)
		if err != nil {
			t.Fatal(err)
		}
		if &out[0] != &buf[0] {
			t.Fatal("ReconstructFileInto did not reuse the buffer")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ReconstructFileInto allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkDisperseBatchMBps disperses sixteen 64 KiB files per op
// through the tiled coefficient-major batch path at the dataplane
// parameters (m=8, n=12), with all buffers reused. Its baseline is
// BenchmarkDispersePerFileLoopMBps: same file set, per-file calls.
func BenchmarkDisperseBatchMBps(b *testing.B) {
	c, err := NewCodec(8, 12)
	if err != nil {
		b.Fatal(err)
	}
	const nFiles = 16
	files := make([][]byte, nFiles)
	for f := range files {
		d := dataplaneFile()
		for i := range d {
			d[i] ^= byte(f)
		}
		files[f] = d
	}
	var dst [][][]byte
	logKernel(b)
	b.SetBytes(nFiles * dataplaneSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = c.DisperseBatch(files, dst)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispersePerFileLoopMBps is the per-file baseline for
// BenchmarkDisperseBatchMBps: the same sixteen files dispersed with
// sixteen DisperseInto calls. The gap between the two series is the
// batch path's cache-tiling win.
func BenchmarkDispersePerFileLoopMBps(b *testing.B) {
	c, err := NewCodec(8, 12)
	if err != nil {
		b.Fatal(err)
	}
	const nFiles = 16
	files := make([][]byte, nFiles)
	for f := range files {
		d := dataplaneFile()
		for i := range d {
			d[i] ^= byte(f)
		}
		files[f] = d
	}
	dst := make([][][]byte, nFiles)
	logKernel(b)
	b.SetBytes(nFiles * dataplaneSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f, data := range files {
			dst[f], err = c.DisperseInto(data, dst[f])
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
