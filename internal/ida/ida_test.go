package ida

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCodecParamValidation(t *testing.T) {
	cases := []struct {
		m, n int
		ok   bool
	}{
		{1, 1, true},
		{5, 10, true},
		{256, 256, true},
		{0, 5, false},
		{-1, 5, false},
		{6, 5, false},
		{200, 257, false},
	}
	for _, c := range cases {
		_, err := NewCodec(c.m, c.n)
		if (err == nil) != c.ok {
			t.Errorf("NewCodec(%d, %d): err = %v, want ok=%v", c.m, c.n, err, c.ok)
		}
	}
}

func TestDisperseReconstructAllBlocks(t *testing.T) {
	c, err := NewCodec(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog")
	payloads, err := c.Disperse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 10 {
		t.Fatalf("got %d payloads, want 10", len(payloads))
	}
	shards := make([]Shard, len(payloads))
	for i, p := range payloads {
		shards[i] = Shard{Seq: i, Data: p}
	}
	got, err := c.Reconstruct(shards, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestReconstructFromAnyMSubset(t *testing.T) {
	// The defining IDA property (§2.1): ANY m of the N blocks suffice.
	c, err := NewCodec(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("broadcast disks emulate storage with bandwidth")
	payloads, err := c.Disperse(data)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			for d := b + 1; d < 6; d++ {
				shards := []Shard{
					{Seq: a, Data: payloads[a]},
					{Seq: b, Data: payloads[b]},
					{Seq: d, Data: payloads[d]},
				}
				got, err := c.Reconstruct(shards, len(data))
				if err != nil {
					t.Fatalf("subset {%d,%d,%d}: %v", a, b, d, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("subset {%d,%d,%d}: wrong data", a, b, d)
				}
			}
		}
	}
}

func TestReconstructTooFewBlocks(t *testing.T) {
	c, _ := NewCodec(4, 8)
	data := []byte("0123456789abcdef")
	payloads, _ := c.Disperse(data)
	shards := []Shard{
		{Seq: 0, Data: payloads[0]},
		{Seq: 1, Data: payloads[1]},
		{Seq: 2, Data: payloads[2]},
	}
	if _, err := c.Reconstruct(shards, len(data)); err == nil {
		t.Fatal("reconstruction with m-1 blocks succeeded")
	}
}

func TestReconstructIgnoresDuplicates(t *testing.T) {
	c, _ := NewCodec(2, 4)
	data := []byte("duplicate shards must not fool the codec")
	payloads, _ := c.Disperse(data)
	shards := []Shard{
		{Seq: 1, Data: payloads[1]},
		{Seq: 1, Data: payloads[1]},
		{Seq: 1, Data: payloads[1]},
		{Seq: 3, Data: payloads[3]},
	}
	got, err := c.Reconstruct(shards, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip with duplicates failed")
	}
}

func TestReconstructRejectsBadSeq(t *testing.T) {
	c, _ := NewCodec(2, 4)
	if _, err := c.Reconstruct([]Shard{{Seq: 4, Data: []byte{0}}, {Seq: 0, Data: []byte{0}}}, 1); err == nil {
		t.Fatal("out-of-range seq accepted")
	}
}

func TestReconstructRejectsWrongSize(t *testing.T) {
	c, _ := NewCodec(2, 4)
	data := []byte("abcdef")
	payloads, _ := c.Disperse(data)
	shards := []Shard{
		{Seq: 0, Data: payloads[0][:1]},
		{Seq: 1, Data: payloads[1]},
	}
	if _, err := c.Reconstruct(shards, len(data)); err == nil {
		t.Fatal("short shard accepted")
	}
}

func TestDisperseEmptyFile(t *testing.T) {
	c, _ := NewCodec(2, 4)
	if _, err := c.Disperse(nil); err == nil {
		t.Fatal("dispersing empty file succeeded")
	}
}

func TestPaddingLengths(t *testing.T) {
	// Data whose length is not a multiple of m must round-trip exactly.
	c, _ := NewCodec(7, 13)
	for l := 1; l <= 30; l++ {
		data := make([]byte, l)
		for i := range data {
			data[i] = byte(i + l)
		}
		payloads, err := c.Disperse(data)
		if err != nil {
			t.Fatal(err)
		}
		shards := make([]Shard, 7)
		for i := 0; i < 7; i++ {
			shards[i] = Shard{Seq: i + 3, Data: payloads[i+3]}
		}
		got, err := c.Reconstruct(shards, l)
		if err != nil {
			t.Fatalf("len %d: %v", l, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("len %d: mismatch", l)
		}
	}
}

func TestQuickRandomSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(raw []byte, mSeed, nSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		m := 1 + int(mSeed)%8
		n := m + int(nSeed)%8
		c, err := NewCodec(m, n)
		if err != nil {
			return false
		}
		payloads, err := c.Disperse(raw)
		if err != nil {
			return false
		}
		idx := rng.Perm(n)[:m]
		shards := make([]Shard, m)
		for i, s := range idx {
			shards[i] = Shard{Seq: s, Data: payloads[s]}
		}
		got, err := c.Reconstruct(shards, len(raw))
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseCache(t *testing.T) {
	c, _ := NewCodec(3, 6)
	data := []byte("cache the reconstruction matrices")
	payloads, _ := c.Disperse(data)
	shards := []Shard{
		{Seq: 0, Data: payloads[0]},
		{Seq: 2, Data: payloads[2]},
		{Seq: 4, Data: payloads[4]},
	}
	if c.CachedInverses() != 0 {
		t.Fatal("cache not empty initially")
	}
	if _, err := c.Reconstruct(shards, len(data)); err != nil {
		t.Fatal(err)
	}
	if c.CachedInverses() != 1 {
		t.Fatalf("cache size = %d, want 1", c.CachedInverses())
	}
	if _, err := c.Reconstruct(shards, len(data)); err != nil {
		t.Fatal(err)
	}
	if c.CachedInverses() != 1 {
		t.Fatalf("cache size after repeat = %d, want 1", c.CachedInverses())
	}
}

func TestCodecConcurrentUse(t *testing.T) {
	c, _ := NewCodec(4, 8)
	data := []byte("concurrent reconstruction must be race-free and correct")
	payloads, _ := c.Disperse(data)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(start int) {
			shards := make([]Shard, 4)
			for i := 0; i < 4; i++ {
				s := (start + i*2) % 8
				shards[i] = Shard{Seq: s, Data: payloads[s]}
			}
			got, err := c.Reconstruct(shards, len(data))
			if err == nil && !bytes.Equal(got, data) {
				err = ErrInconsistent
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkDisperse5of10_4KB(b *testing.B) {
	benchDisperse(b, 5, 10, 4096)
}

func BenchmarkDisperse20of40_4KB(b *testing.B) {
	benchDisperse(b, 20, 40, 4096)
}

func benchDisperse(b *testing.B, m, n, size int) {
	c, err := NewCodec(m, n)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Disperse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct5of10_4KB(b *testing.B) {
	benchReconstruct(b, 5, 10, 4096)
}

func BenchmarkReconstruct20of40_4KB(b *testing.B) {
	benchReconstruct(b, 20, 40, 4096)
}

func benchReconstruct(b *testing.B, m, n, size int) {
	c, err := NewCodec(m, n)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	payloads, _ := c.Disperse(data)
	shards := make([]Shard, m)
	for i := 0; i < m; i++ {
		shards[i] = Shard{Seq: n - 1 - i, Data: payloads[n-1-i]}
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reconstruct(shards, size); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the precomputed-inverse cache of §2.1. Cold reconstruction
// pays a Gauss–Jordan inversion per row subset; warm reconstruction
// reuses it.
func BenchmarkReconstructColdCache(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	ref, _ := NewCodec(20, 40)
	payloads, _ := ref.Disperse(data)
	shards := make([]Shard, 20)
	for i := 0; i < 20; i++ {
		shards[i] = Shard{Seq: 39 - i, Data: payloads[39-i]}
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCodec(20, 40) // fresh codec: empty inverse cache
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Reconstruct(shards, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructWarmCache(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	c, _ := NewCodec(20, 40)
	payloads, _ := c.Disperse(data)
	shards := make([]Shard, 20)
	for i := 0; i < 20; i++ {
		shards[i] = Shard{Seq: 39 - i, Data: payloads[39-i]}
	}
	if _, err := c.Reconstruct(shards, len(data)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reconstruct(shards, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}
