package ida

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSystematicPrefix pins the systematic property the data plane's
// throughput rests on: the first m payloads are the source blocks
// verbatim, so a fault-free decode is a straight copy.
func TestSystematicPrefix(t *testing.T) {
	c, err := NewCodec(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4*10)
	for i := range data {
		data[i] = byte(i + 1)
	}
	payloads, err := c.Disperse(data)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		if !bytes.Equal(payloads[j], data[j*10:(j+1)*10]) {
			t.Fatalf("systematic payload %d differs from source block", j)
		}
	}
}

// TestDisperseIntoMatchesDisperse asserts the streaming API is
// byte-identical to the allocate-per-call path across shard counts and
// lengths, including 0, 1, and non-multiple-of-8 sizes, and that buffer
// reuse across calls cannot leak bytes between inputs.
func TestDisperseIntoMatchesDisperse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	params := []struct{ m, n int }{{1, 1}, {1, 4}, {2, 3}, {3, 6}, {5, 10}, {7, 13}, {8, 8}}
	lengths := []int{1, 2, 3, 7, 8, 9, 15, 63, 64, 65, 100, 1000, 4093}
	for _, p := range params {
		c, err := NewCodec(p.m, p.n)
		if err != nil {
			t.Fatal(err)
		}
		var reused [][]byte
		for _, l := range lengths {
			data := make([]byte, l)
			rng.Read(data)
			want, err := c.Disperse(data)
			if err != nil {
				t.Fatal(err)
			}
			reused, err = c.DisperseInto(data, reused)
			if err != nil {
				t.Fatal(err)
			}
			if len(reused) != len(want) {
				t.Fatalf("(%d,%d) len %d: got %d payloads, want %d", p.m, p.n, l, len(reused), len(want))
			}
			for i := range want {
				if !bytes.Equal(reused[i], want[i]) {
					t.Fatalf("(%d,%d) len %d: payload %d differs between DisperseInto and Disperse",
						p.m, p.n, l, i)
				}
			}
		}
	}
}

// TestDisperseIntoZeroLength mirrors Disperse's empty-file contract.
func TestDisperseIntoZeroLength(t *testing.T) {
	c, _ := NewCodec(2, 4)
	if _, err := c.DisperseInto(nil, nil); err == nil {
		t.Fatal("DisperseInto(nil) succeeded")
	}
	if _, err := c.DisperseInto([]byte{}, make([][]byte, 4)); err == nil {
		t.Fatal("DisperseInto(empty) succeeded")
	}
}

// TestReconstructIntoMatchesReconstruct drives both decode paths over
// random fault patterns (random m-subsets of surviving shards) and
// asserts identical output, with the destination buffer reused across
// iterations.
func TestReconstructIntoMatchesReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	params := []struct{ m, n int }{{1, 3}, {2, 4}, {3, 6}, {5, 10}, {8, 12}}
	lengths := []int{1, 7, 8, 9, 64, 65, 257, 4096}
	for _, p := range params {
		c, err := NewCodec(p.m, p.n)
		if err != nil {
			t.Fatal(err)
		}
		var dst []byte
		for _, l := range lengths {
			data := make([]byte, l)
			rng.Read(data)
			payloads, err := c.Disperse(data)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 8; trial++ {
				idx := rng.Perm(p.n)[:p.m]
				shards := make([]Shard, p.m)
				for i, s := range idx {
					shards[i] = Shard{Seq: s, Data: payloads[s]}
				}
				want, err := c.Reconstruct(shards, l)
				if err != nil {
					t.Fatal(err)
				}
				dst, err = c.ReconstructInto(shards, l, dst[:0])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(dst, want) {
					t.Fatalf("(%d,%d) len %d subset %v: ReconstructInto differs from Reconstruct",
						p.m, p.n, l, idx)
				}
				if !bytes.Equal(dst, data) {
					t.Fatalf("(%d,%d) len %d subset %v: wrong data", p.m, p.n, l, idx)
				}
			}
		}
	}
}

// TestInverseCacheLRUEviction demonstrates the bound under subset churn:
// with a limit of 2, touching a third distinct subset evicts the least
// recently used one, and CachedInverses never exceeds the limit.
func TestInverseCacheLRUEviction(t *testing.T) {
	c, err := NewCodec(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	c.SetInverseCacheLimit(2)
	data := []byte("bounded inverse cache under client churn")
	payloads, err := c.Disperse(data)
	if err != nil {
		t.Fatal(err)
	}
	recon := func(a, b int) {
		t.Helper()
		shards := []Shard{{Seq: a, Data: payloads[a]}, {Seq: b, Data: payloads[b]}}
		got, err := c.ReconstructInto(shards, len(data), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("subset {%d,%d}: wrong data", a, b)
		}
	}
	recon(0, 1) // subset A
	recon(2, 3) // subset B
	if got := c.CachedInverses(); got != 2 {
		t.Fatalf("cache size = %d, want 2", got)
	}
	recon(0, 1) // touch A: B becomes LRU
	recon(4, 5) // subset C evicts B
	if got := c.CachedInverses(); got != 2 {
		t.Fatalf("cache size after churn = %d, want 2", got)
	}
	// Every subset still reconstructs correctly whether cached or not,
	// and the cache stays at its bound through sustained churn.
	for trial := 0; trial < 20; trial++ {
		a := trial % 5
		recon(a, a+1)
		if got := c.CachedInverses(); got > 2 {
			t.Fatalf("cache size %d exceeds limit 2", got)
		}
	}
}

// TestSetInverseCacheLimitShrinks evicts immediately when the limit
// drops below the current population.
func TestSetInverseCacheLimitShrinks(t *testing.T) {
	c, _ := NewCodec(2, 8)
	data := []byte("shrink the cache")
	payloads, _ := c.Disperse(data)
	for a := 0; a < 6; a += 2 {
		shards := []Shard{{Seq: a, Data: payloads[a]}, {Seq: a + 1, Data: payloads[a+1]}}
		if _, err := c.Reconstruct(shards, len(data)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CachedInverses(); got != 3 {
		t.Fatalf("cache size = %d, want 3", got)
	}
	c.SetInverseCacheLimit(1)
	if got := c.CachedInverses(); got != 1 {
		t.Fatalf("cache size after shrink = %d, want 1", got)
	}
}

// TestSharedCodecIdentity: Shared returns one codec per (m, n), so the
// §2.1 inverse cache accumulates across retrievals.
func TestSharedCodecIdentity(t *testing.T) {
	a, err := Shared(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shared(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Shared(3,7) returned distinct codecs")
	}
	if _, err := Shared(0, 7); err == nil {
		t.Fatal("Shared(0,7) succeeded")
	}
}

// TestMarshalIntoRoundTrip checks MarshalInto against Marshal and
// UnmarshalInto against Unmarshal, including scratch-payload reuse.
func TestMarshalIntoRoundTrip(t *testing.T) {
	blk := &Block{FileID: 42, Seq: 3, M: 2, N: 5, Length: 11, Payload: []byte("hello w")}
	wire := blk.Marshal()
	if got := blk.MarshalInto(nil); !bytes.Equal(got, wire) {
		t.Fatal("MarshalInto(nil) differs from Marshal")
	}
	if got, want := blk.WireSize(), len(wire); got != want {
		t.Fatalf("WireSize = %d, want %d", got, want)
	}
	// Appending after a prefix leaves the prefix intact.
	buf := append([]byte("prefix"), 0)
	buf = buf[:6]
	out := blk.MarshalInto(buf)
	if !bytes.Equal(out[:6], []byte("prefix")) || !bytes.Equal(out[6:], wire) {
		t.Fatal("MarshalInto(prefix) corrupted output")
	}
	// Reused buffer: second marshal overwrites the first.
	buf2 := blk.MarshalInto(nil)
	blk2 := &Block{FileID: 7, Seq: 1, M: 1, N: 2, Length: 3, Payload: []byte("xyz")}
	buf2 = blk2.MarshalInto(buf2[:0])
	got2, err := Unmarshal(buf2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.FileID != 7 || !bytes.Equal(got2.Payload, []byte("xyz")) {
		t.Fatal("reused-buffer marshal round trip failed")
	}

	var scratch Block
	scratch.Payload = make([]byte, 0, 64)
	if err := UnmarshalInto(wire, &scratch); err != nil {
		t.Fatal(err)
	}
	if scratch.FileID != 42 || scratch.Seq != 3 || scratch.M != 2 || scratch.N != 5 ||
		scratch.Length != 11 || !bytes.Equal(scratch.Payload, blk.Payload) {
		t.Fatalf("UnmarshalInto mismatch: %+v", scratch)
	}
	// The scratch payload must be a copy, not an alias of the wire buffer.
	wire[headerSize] ^= 0xff
	if !bytes.Equal(scratch.Payload, blk.Payload) {
		t.Fatal("UnmarshalInto aliased the wire buffer")
	}
	clone := scratch.Clone()
	scratch.Payload[0] ^= 0xff
	if bytes.Equal(clone.Payload, scratch.Payload) {
		t.Fatal("Clone aliased the scratch payload")
	}
}

// TestUnmarshalIntoRejectsCorruption mirrors Unmarshal's checksum and
// framing contracts on the scratch path.
func TestUnmarshalIntoRejectsCorruption(t *testing.T) {
	blk := &Block{FileID: 1, Seq: 0, M: 1, N: 1, Length: 4, Payload: []byte("data")}
	wire := blk.Marshal()
	var scratch Block
	if err := UnmarshalInto(wire[:headerSize-1], &scratch); err == nil {
		t.Fatal("short block accepted")
	}
	bad := append([]byte(nil), wire...)
	bad[len(bad)-1] ^= 0x01
	if err := UnmarshalInto(bad, &scratch); err == nil {
		t.Fatal("corrupted block accepted")
	}
}

// FuzzDisperseReconstruct round-trips arbitrary data through the
// streaming codec under a shard subset derived from the fuzz input.
func FuzzDisperseReconstruct(f *testing.F) {
	f.Add([]byte("seed data for the codec"), uint8(3), uint8(2), uint16(0x2d))
	f.Add([]byte{0}, uint8(1), uint8(1), uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, mSeed, extra uint8, pick uint16) {
		if len(data) == 0 {
			return
		}
		m := 1 + int(mSeed)%8
		n := m + int(extra)%8
		c, err := Shared(m, n)
		if err != nil {
			t.Fatal(err)
		}
		payloads, err := c.DisperseInto(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Choose m distinct shards from the pick bitmask, topping up from
		// the low sequence numbers when the mask is too sparse.
		var shards []Shard
		used := make([]bool, n)
		for s := 0; s < n && len(shards) < m; s++ {
			if pick&(1<<uint(s%16)) != 0 {
				shards = append(shards, Shard{Seq: s, Data: payloads[s]})
				used[s] = true
			}
		}
		for s := 0; s < n && len(shards) < m; s++ {
			if !used[s] {
				shards = append(shards, Shard{Seq: s, Data: payloads[s]})
			}
		}
		got, err := c.ReconstructInto(shards, len(data), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch (m=%d n=%d len=%d)", m, n, len(data))
		}
	})
}
