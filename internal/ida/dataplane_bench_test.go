package ida

// Data-plane throughput benchmarks — the BENCH_dataplane.json series
// tracked by CI. Reported in MB/s of original file bytes (b.SetBytes)
// and B/op: the steady-state encode and decode loops reuse their
// buffers through the *Into APIs, so both should report 0 allocs/op
// once warm.

import (
	"testing"

	"pinbcast/internal/gf256"
)

// dataplaneSize is the file size the MB/s series is measured at.
const dataplaneSize = 64 << 10

func dataplaneFile() []byte {
	d := make([]byte, dataplaneSize)
	for i := range d {
		d[i] = byte(i*7 + 3)
	}
	return d
}

// logKernel records which GF(256) kernel produced a benchmark's
// numbers, so the BENCH_dataplane.json series names it next to the
// MB/s figures (SIMD and purego results are not comparable).
func logKernel(b *testing.B) {
	b.Helper()
	b.Logf("gf256 kernel: %s", gf256.Kernel())
}

// BenchmarkDisperseMBps measures steady-state dispersal of a 64 KiB
// file at (m=8, n=12) — one latency class with r=4 fault tolerance —
// with shard buffers reused across cycles.
func BenchmarkDisperseMBps(b *testing.B) {
	c, err := NewCodec(8, 12)
	if err != nil {
		b.Fatal(err)
	}
	data := dataplaneFile()
	var shards [][]byte
	logKernel(b)
	b.SetBytes(dataplaneSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards, err = c.DisperseInto(data, shards)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstructMBps measures steady-state reconstruction of the
// same 64 KiB file from 8 of its 12 shards with the first 4 systematic
// shards erased — every surviving systematic block is a copy, every
// erased one pays the full decode — with the output buffer reused.
func BenchmarkReconstructMBps(b *testing.B) {
	c, err := NewCodec(8, 12)
	if err != nil {
		b.Fatal(err)
	}
	data := dataplaneFile()
	payloads, err := c.Disperse(data)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([]Shard, 0, 8)
	for s := 4; s < 12; s++ {
		shards = append(shards, Shard{Seq: s, Data: payloads[s]})
	}
	var dst []byte
	logKernel(b)
	b.SetBytes(dataplaneSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = c.ReconstructInto(shards, dataplaneSize, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstructAllParityMBps is the worst case: every received
// shard is a redundant row, so all m source blocks pay the full m-way
// accumulation.
func BenchmarkReconstructAllParityMBps(b *testing.B) {
	c, err := NewCodec(4, 12)
	if err != nil {
		b.Fatal(err)
	}
	data := dataplaneFile()
	payloads, err := c.Disperse(data)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([]Shard, 0, 4)
	for s := 8; s < 12; s++ {
		shards = append(shards, Shard{Seq: s, Data: payloads[s]})
	}
	var dst []byte
	logKernel(b)
	b.SetBytes(dataplaneSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = c.ReconstructInto(shards, dataplaneSize, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}
