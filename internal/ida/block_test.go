package ida

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBlockMarshalRoundTrip(t *testing.T) {
	b := &Block{
		FileID:  77,
		Seq:     3,
		M:       5,
		N:       10,
		Length:  1234,
		Payload: []byte("payload bytes"),
	}
	got, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.FileID != b.FileID || got.Seq != b.Seq || got.M != b.M ||
		got.N != b.N || got.Length != b.Length || !bytes.Equal(got.Payload, b.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, b)
	}
}

func TestBlockMarshalRoundTripQuick(t *testing.T) {
	f := func(id uint32, seq, m, n uint16, length uint32, payload []byte) bool {
		b := &Block{FileID: id, Seq: seq, M: m, N: n, Length: length, Payload: payload}
		got, err := Unmarshal(b.Marshal())
		if err != nil {
			return false
		}
		return got.FileID == id && got.Seq == seq && got.M == m && got.N == n &&
			got.Length == length && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalDetectsCorruption(t *testing.T) {
	b := &Block{FileID: 1, Seq: 0, M: 2, N: 4, Length: 10, Payload: []byte("0123456789")}
	raw := b.Marshal()
	for pos := 0; pos < len(raw); pos++ {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0xff
		if _, err := Unmarshal(bad); err == nil {
			// Flipping the payload-length field may produce a length error
			// instead of a checksum error, but it must never succeed.
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
}

func TestUnmarshalShortBlock(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short block accepted")
	}
}

func TestUnmarshalTruncatedPayload(t *testing.T) {
	b := &Block{FileID: 1, Seq: 0, M: 1, N: 1, Length: 4, Payload: []byte("abcd")}
	raw := b.Marshal()
	if _, err := Unmarshal(raw[:len(raw)-2]); err == nil {
		t.Fatal("truncated block accepted")
	}
}

func TestBlockValidate(t *testing.T) {
	cases := []struct {
		b  Block
		ok bool
	}{
		{Block{M: 1, N: 1, Seq: 0}, true},
		{Block{M: 5, N: 10, Seq: 9}, true},
		{Block{M: 0, N: 1, Seq: 0}, false},
		{Block{M: 5, N: 4, Seq: 0}, false},
		{Block{M: 2, N: 4, Seq: 4}, false},
	}
	for i, c := range cases {
		if err := c.b.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestDisperseFileReconstructFile(t *testing.T) {
	data := []byte("self-identifying blocks allow clients to pick the inverse")
	blocks, err := DisperseFile(9, data, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 9 {
		t.Fatalf("got %d blocks, want 9", len(blocks))
	}
	for i, b := range blocks {
		if int(b.Seq) != i || b.FileID != 9 || int(b.M) != 4 || int(b.N) != 9 {
			t.Fatalf("block %d has wrong identity: %+v", i, b)
		}
	}
	// Reconstruct from an arbitrary 4-subset, out of order.
	got, err := ReconstructFile([]*Block{blocks[7], blocks[2], blocks[5], blocks[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("mismatch: %q", got)
	}
}

func TestReconstructFileInconsistent(t *testing.T) {
	dataA := []byte("file A contents")
	dataB := []byte("file B contents")
	ba, _ := DisperseFile(1, dataA, 2, 4)
	bb, _ := DisperseFile(2, dataB, 2, 4)
	if _, err := ReconstructFile([]*Block{ba[0], bb[1]}); err != ErrInconsistent {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestReconstructFileEmpty(t *testing.T) {
	if _, err := ReconstructFile(nil); err == nil {
		t.Fatal("empty block list accepted")
	}
}

func TestAllocate(t *testing.T) {
	data := []byte("AIDA scales redundancy between m and N")
	blocks, _ := DisperseFile(3, data, 3, 8)
	for n := 3; n <= 8; n++ {
		a, err := Allocate(blocks, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if a.N() != n || len(a.Blocks()) != n {
			t.Fatalf("n=%d: allocation size wrong", n)
		}
		if a.Redundancy() != n-3 {
			t.Fatalf("n=%d: redundancy = %d, want %d", n, a.Redundancy(), n-3)
		}
		// The allocated prefix must still reconstruct the file.
		got, err := ReconstructFile(a.Blocks()[:3])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d: allocated blocks cannot reconstruct", n)
		}
	}
}

func TestAllocateOutOfRange(t *testing.T) {
	data := []byte("range check")
	blocks, _ := DisperseFile(3, data, 3, 8)
	if _, err := Allocate(blocks, 2); err == nil {
		t.Fatal("n < m accepted")
	}
	if _, err := Allocate(blocks, 9); err == nil {
		t.Fatal("n > N accepted")
	}
	if _, err := Allocate(nil, 3); err == nil {
		t.Fatal("empty block list accepted")
	}
}

func TestScaleForFaults(t *testing.T) {
	if got := ScaleForFaults(5, 0); got != 5 {
		t.Fatalf("ScaleForFaults(5,0) = %d", got)
	}
	if got := ScaleForFaults(5, 3); got != 8 {
		t.Fatalf("ScaleForFaults(5,3) = %d", got)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(5, 10); got != 1.0 {
		t.Fatalf("Overhead(5,10) = %v, want 1.0", got)
	}
	if got := Overhead(4, 5); got != 0.25 {
		t.Fatalf("Overhead(4,5) = %v, want 0.25", got)
	}
}

func BenchmarkBlockMarshal(b *testing.B) {
	blk := &Block{FileID: 1, Seq: 2, M: 5, N: 10, Length: 4096, Payload: make([]byte, 820)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Marshal()
	}
}

func BenchmarkBlockUnmarshal(b *testing.B) {
	blk := &Block{FileID: 1, Seq: 2, M: 5, N: 10, Length: 4096, Payload: make([]byte, 820)}
	raw := blk.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}
