package ida

import (
	"fmt"

	"pinbcast/internal/gf256"
)

// mulAdd accumulates c·src into dst; it is the shared inner loop of
// dispersal and reconstruction.
func mulAdd(c byte, src, dst []byte) { gf256.MulAddSlice(c, src, dst) }

// Allocation is the AIDA bandwidth-allocation step of Figure 4: after a
// file has been dispersed into N blocks, the server chooses how many of
// them, n ∈ [M, N], are transmitted in each broadcast period. n = M means
// no redundancy; n = N means maximum redundancy; n − M is the number of
// per-period block erasures the transmission tolerates.
type Allocation struct {
	blocks []*Block
	n      int
}

// Allocate selects the first n of the dispersed blocks for transmission.
// Because any M blocks reconstruct the file, which n are chosen is
// immaterial; choosing a prefix keeps block sequence numbers dense.
func Allocate(blocks []*Block, n int) (*Allocation, error) {
	if len(blocks) == 0 {
		return nil, ErrNotEnough
	}
	m := int(blocks[0].M)
	if n < m || n > len(blocks) {
		return nil, fmt.Errorf("ida: allocation n=%d outside [m=%d, N=%d]", n, m, len(blocks))
	}
	return &Allocation{blocks: blocks[:n:n], n: n}, nil
}

// Blocks returns the transmitted blocks.
func (a *Allocation) Blocks() []*Block { return a.blocks }

// N returns the number of transmitted blocks.
func (a *Allocation) N() int { return a.n }

// Redundancy returns the number of tolerated per-period erasures, n − m.
func (a *Allocation) Redundancy() int { return a.n - int(a.blocks[0].M) }

// ScaleForFaults returns the AIDA transmission width for tolerating r
// per-period erasures of a file with reconstruction threshold m: n = m+r.
// It is the quantity the fault-tolerant pinwheel reduction of §3.2
// schedules (task (mᵢ+rᵢ, B·Tᵢ)).
func ScaleForFaults(m, r int) int {
	if m < 1 || r < 0 {
		panic(fmt.Sprintf("ida: invalid ScaleForFaults(m=%d, r=%d)", m, r))
	}
	return m + r
}

// Overhead returns the fractional bandwidth overhead of transmitting n
// blocks of a file reconstructible from m: (n−m)/m.
func Overhead(m, n int) float64 {
	if m < 1 || n < m {
		panic(fmt.Sprintf("ida: invalid Overhead(m=%d, n=%d)", m, n))
	}
	return float64(n-m) / float64(m)
}
