package ida

import "pinbcast/internal/gf256"

// Cross-file batch encoding. A broadcast server disperses every file of
// the program through the same few codecs, and the per-file encode loop
// walks the coefficient tables once per file: with F files at (m, n),
// each of the (n−m)·m product tables is walked F separate times, and
// per-call setup is paid F times. DisperseBatch inverts the loop nest —
// coefficient outer, files inner — so one product table serves a run of
// files before the next is loaded. The inversion is tiled: coefficient-
// major order re-streams every file's blocks once per coefficient, so
// it only wins while the tile's payloads fit in cache. Files are
// greedily packed into tiles of at most batchTileBytes of payload
// (small files batch wide, large files degrade to the per-file order
// that keeps their own blocks resident).
//
// ReconstructBatch is the decode-side counterpart for callers that
// recover many files at once (a client draining a cycle's worth of
// completed files): one call amortizes the codec's pooled scratch and
// keeps the §2.1 inverse cache line hot across files that arrived over
// the same row subset.

// batchTileBytes bounds the payload working set of one encode tile:
// every source and redundant block of the tile's files should stay
// resident while the coefficient loop re-streams them. Half a typical
// per-core L2 leaves room for the destination write-allocate traffic.
const batchTileBytes = 256 << 10

// DisperseBatch disperses each files[f] into dst[f], reusing dst's
// backing arrays exactly as DisperseInto does, and returns dst resliced
// to len(files) entries of n payloads each. Files may have different
// lengths; file f's payloads are shardLen(len(files[f])) bytes. The
// batch is all-or-nothing: any empty file rejects the whole call.
//
// Ownership follows DisperseInto: the returned payloads belong to the
// caller, alias neither the inputs nor each other, and the codec
// retains no reference to them.
//
//pinlint:hotpath
func (c *Codec) DisperseBatch(files [][]byte, dst [][][]byte) ([][][]byte, error) {
	if cap(dst) >= len(files) {
		dst = dst[:len(files)]
	} else {
		grown := make([][][]byte, len(files)) //pinlint:allow allocprove — first-cycle growth; steady state passes capacity back in
		copy(grown, dst)
		dst = grown
	}
	for _, data := range files {
		if len(data) == 0 {
			return nil, ErrEmptyFile
		}
	}
	for lo := 0; lo < len(files); {
		// Greedily extend the tile while its payloads fit the budget.
		hi := lo + 1
		tile := c.n * c.shardLen(len(files[lo]))
		for hi < len(files) {
			next := tile + c.n*c.shardLen(len(files[hi]))
			if next > batchTileBytes {
				break
			}
			tile = next
			hi++
		}
		// Systematic prefixes first (payload j = source block j,
		// zero-padded; as in DisperseInto the copies double as the
		// encode sources, so partial tail blocks need no scratch), then
		// the redundant rows coefficient-major across the tile, while
		// the prefix blocks are still cache-resident.
		for f := lo; f < hi; f++ {
			data := files[f]
			l := c.shardLen(len(data))
			out := c.growPayloads(dst[f], l) //pinlint:allow allocprove — first-cycle growth; steady state passes capacity back in
			dst[f] = out
			for j := 0; j < c.m; j++ {
				copySourceBlock(out[j], data, j, l)
			}
			for i := c.m; i < c.n; i++ {
				clear(out[i])
			}
		}
		for i, tabs := range c.encTables {
			for j, tab := range tabs {
				for f := lo; f < hi; f++ {
					out := dst[f]
					if j*len(out[0]) >= len(files[f]) {
						continue // all-zero source block of a short file
					}
					gf256.MulAddSliceTable(tab, out[j], out[c.m+i])
				}
			}
		}
		lo = hi
	}
	return dst, nil
}

// A ReconstructJob is one file recovery within a ReconstructBatch call.
// The caller fills Shards, DataLen and (optionally) a reusable Dst;
// ReconstructBatch sets Out and Err per job.
type ReconstructJob struct {
	// Shards are the received blocks, at least m with distinct
	// sequence numbers (extras are ignored, as in ReconstructInto).
	Shards []Shard
	// DataLen is the original file length in bytes.
	DataLen int
	// Dst is the caller-owned output buffer, grown when too small.
	// After a successful job it is updated to the (possibly grown)
	// backing buffer so the next batch reuses it.
	Dst []byte
	// Out is the recovered file — DataLen bytes aliasing Dst — or nil
	// when Err is set.
	Out []byte
	// Err reports this job's failure without aborting the batch.
	Err error
}

// ReconstructBatch runs every job, writing each result into the job's
// caller-owned Dst. Jobs fail independently: one malformed job sets its
// Err and the rest still decode. The returned error is the first job
// error (nil when all succeed), so callers that treat any failure as
// fatal need not scan the jobs.
//
//pinlint:hotpath
func (c *Codec) ReconstructBatch(jobs []ReconstructJob) error {
	var firstErr error
	for i := range jobs {
		j := &jobs[i]
		j.Out, j.Err = c.ReconstructInto(j.Shards, j.DataLen, j.Dst)
		if j.Err != nil {
			j.Out = nil
			if firstErr == nil {
				firstErr = j.Err
			}
			continue
		}
		j.Dst = j.Out[:cap(j.Out)]
	}
	return firstErr
}
