// Package ida implements Rabin's Information Dispersal Algorithm (IDA)
// and Bestavros's Adaptive IDA (AIDA) as described in §2 of Baruah &
// Bestavros, "Pinwheel Scheduling for Fault-tolerant Broadcast Disks in
// Real-time Database Systems".
//
// A file of m blocks is dispersed into N ≥ m blocks by an N×m linear
// transformation over GF(2⁸) whose every m×m row-submatrix is invertible
// (a Vandermonde matrix, package gfmat). Any m of the N dispersed blocks
// reconstruct the file exactly. AIDA's bandwidth-allocation step then
// chooses how many of the N blocks, n ∈ [m, N], are actually transmitted,
// trading bandwidth for fault tolerance: transmitting n blocks tolerates
// n−m erasures per broadcast period.
package ida

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Block is a self-identifying dispersed block (§2.1): it carries the
// identity of the data item it belongs to and its sequence number among
// the dispersed blocks, so a client can select the correct inverse
// transformation without a broadcast directory.
type Block struct {
	FileID  uint32 // identity of the data item this block belongs to
	Seq     uint16 // index of this block among the N dispersed blocks
	M       uint16 // reconstruction threshold: any M blocks suffice
	N       uint16 // dispersal width: file was dispersed into N blocks
	Length  uint32 // length in bytes of the original file
	Payload []byte
}

// headerSize is the number of bytes of metadata prepended to each block
// payload by Marshal: fileID(4) + seq(2) + m(2) + n(2) + length(4) +
// payloadLen(4) + crc(4).
const headerSize = 4 + 2 + 2 + 2 + 4 + 4 + 4

// Common block encoding/decoding errors.
var (
	ErrShortBlock   = errors.New("ida: block too short to contain a header")
	ErrBadChecksum  = errors.New("ida: block checksum mismatch")
	ErrInconsistent = errors.New("ida: blocks disagree on file metadata")
)

// WireSize returns the number of bytes Marshal produces for the block:
// header plus payload.
func (b *Block) WireSize() int { return headerSize + len(b.Payload) }

// Marshal encodes the block into a self-contained byte string with a
// CRC-32 covering header and payload, allowing clients to detect blocks
// clobbered by transmission errors (the paper's §3.2 error model: an
// error renders the entire block unreadable).
func (b *Block) Marshal() []byte {
	return b.MarshalInto(nil)
}

// MarshalInto appends the wire form of the block to dst and returns the
// extended slice — Marshal without the per-call allocation when dst has
// WireSize spare capacity. Pass dst[:0] of a reused buffer to overwrite
// in place; the block itself is not retained.
func (b *Block) MarshalInto(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, headerSize)...)
	buf := dst[start:]
	binary.BigEndian.PutUint32(buf[0:], b.FileID)
	binary.BigEndian.PutUint16(buf[4:], b.Seq)
	binary.BigEndian.PutUint16(buf[6:], b.M)
	binary.BigEndian.PutUint16(buf[8:], b.N)
	binary.BigEndian.PutUint32(buf[10:], b.Length)
	binary.BigEndian.PutUint32(buf[14:], uint32(len(b.Payload)))
	dst = append(dst, b.Payload...)
	buf = dst[start:]
	crc := crc32.ChecksumIEEE(buf[:headerSize-4])
	crc = crc32.Update(crc, crc32.IEEETable, buf[headerSize:])
	binary.BigEndian.PutUint32(buf[18:], crc)
	return dst
}

// Unmarshal decodes a block previously encoded with Marshal, verifying
// its checksum. A corrupted block yields ErrBadChecksum. The returned
// block owns a fresh copy of the payload; use UnmarshalInto to decode
// into a reusable block.
func Unmarshal(data []byte) (*Block, error) {
	b := new(Block)
	if err := UnmarshalInto(data, b); err != nil {
		return nil, err
	}
	return b, nil
}

// UnmarshalInto decodes a block previously encoded with Marshal into b,
// verifying its checksum. b's existing Payload backing array is reused
// when large enough, so a receive loop decoding into the same scratch
// block runs allocation-free. The payload is copied out of data; b does
// not alias it.
//
//pinlint:hotpath
func UnmarshalInto(data []byte, b *Block) error {
	if len(data) < headerSize {
		return ErrShortBlock
	}
	payloadLen := binary.BigEndian.Uint32(data[14:])
	if len(data) != headerSize+int(payloadLen) {
		return fmt.Errorf("ida: block length %d does not match declared payload %d: %w", //pinlint:allow hotpath — malformed frame, cold path
			len(data), payloadLen, ErrShortBlock) //pinlint:allow allocprove — the ints box only when the malformed-frame error is built
	}
	crc := crc32.ChecksumIEEE(data[:headerSize-4])
	crc = crc32.Update(crc, crc32.IEEETable, data[headerSize:])
	if crc != binary.BigEndian.Uint32(data[18:]) {
		return ErrBadChecksum
	}
	b.FileID = binary.BigEndian.Uint32(data[0:])
	b.Seq = binary.BigEndian.Uint16(data[4:])
	b.M = binary.BigEndian.Uint16(data[6:])
	b.N = binary.BigEndian.Uint16(data[8:])
	b.Length = binary.BigEndian.Uint32(data[10:])
	b.Payload = append(b.Payload[:0], data[headerSize:]...)
	return nil
}

// Clone returns a deep copy of the block (payload included) — what a
// client stores when the block it decoded into scratch turns out to be
// worth keeping.
func (b *Block) Clone() *Block {
	c := *b
	c.Payload = append([]byte(nil), b.Payload...)
	return &c
}

// Validate checks internal consistency of the block metadata.
func (b *Block) Validate() error {
	switch {
	case b.M == 0:
		return errors.New("ida: block has M == 0")
	case b.N < b.M:
		return fmt.Errorf("ida: block has N (%d) < M (%d)", b.N, b.M)
	case int(b.Seq) >= int(b.N):
		return fmt.Errorf("ida: block seq %d out of range [0,%d)", b.Seq, b.N)
	}
	return nil
}
