package ida

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"pinbcast/internal/gfmat"
)

// Codec disperses and reconstructs files with fixed parameters (m, n):
// files are split into m source blocks and dispersed into n ≥ m coded
// blocks, any m of which reconstruct the file. A Codec is safe for
// concurrent use; reconstruction inverse matrices are cached per row
// subset, the precomputation suggested in §2.1 of the paper.
type Codec struct {
	m, n int
	mat  *gfmat.Matrix // n×m dispersal matrix [x_ij]

	mu       sync.Mutex
	invCache map[string]*gfmat.Matrix // key: sorted row indices
}

// Dispersal parameter errors.
var (
	ErrBadParams      = errors.New("ida: need 1 ≤ m ≤ n ≤ 256")
	ErrNotEnough      = errors.New("ida: fewer than m distinct blocks available")
	ErrEmptyFile      = errors.New("ida: cannot disperse an empty file")
	ErrWrongBlockSize = errors.New("ida: blocks have inconsistent sizes")
)

// NewCodec returns a Codec dispersing into n blocks with reconstruction
// threshold m. The dispersal matrix is Vandermonde, so every m-row
// submatrix is invertible.
func NewCodec(m, n int) (*Codec, error) {
	if m < 1 || n < m || n > 256 {
		return nil, fmt.Errorf("%w (m=%d, n=%d)", ErrBadParams, m, n)
	}
	return &Codec{
		m:        m,
		n:        n,
		mat:      gfmat.Vandermonde(n, m),
		invCache: make(map[string]*gfmat.Matrix),
	}, nil
}

// M returns the reconstruction threshold.
func (c *Codec) M() int { return c.m }

// N returns the dispersal width.
func (c *Codec) N() int { return c.n }

// shardLen returns the payload length of each dispersed block for a file
// of dataLen bytes: the file is padded to m equal-length source blocks.
func (c *Codec) shardLen(dataLen int) int {
	return (dataLen + c.m - 1) / c.m
}

// Disperse splits data into m source blocks (zero-padding the tail) and
// returns the n dispersed payloads. Payload i is Σⱼ mat[i][j]·sourceⱼ,
// the dispersal operation of Figure 3.
func (c *Codec) Disperse(data []byte) ([][]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmptyFile
	}
	l := c.shardLen(len(data))
	src := make([][]byte, c.m)
	for j := range src {
		blk := make([]byte, l)
		start := j * l
		if start < len(data) {
			copy(blk, data[start:min(start+l, len(data))])
		}
		src[j] = blk
	}
	out := make([][]byte, c.n)
	for i := 0; i < c.n; i++ {
		out[i] = encodeRow(c.mat.Row(i), src, l)
	}
	return out, nil
}

func encodeRow(coef []byte, src [][]byte, l int) []byte {
	acc := make([]byte, l)
	for j, cj := range coef {
		if cj != 0 {
			mulAdd(cj, src[j], acc)
		}
	}
	return acc
}

// Shard pairs a dispersed payload with its row index in the dispersal
// matrix (the block's sequence number).
type Shard struct {
	Seq  int
	Data []byte
}

// Reconstruct recovers the original file of dataLen bytes from any m
// shards with distinct sequence numbers. Extra shards beyond m are
// ignored (the first m distinct, in ascending Seq order, are used).
func (c *Codec) Reconstruct(shards []Shard, dataLen int) ([]byte, error) {
	if dataLen <= 0 {
		return nil, ErrEmptyFile
	}
	// Deduplicate by sequence number, ascending.
	bySeq := make(map[int][]byte, len(shards))
	for _, s := range shards {
		if s.Seq < 0 || s.Seq >= c.n {
			return nil, fmt.Errorf("ida: shard seq %d out of range [0,%d)", s.Seq, c.n)
		}
		if _, dup := bySeq[s.Seq]; !dup {
			bySeq[s.Seq] = s.Data
		}
	}
	if len(bySeq) < c.m {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnough, len(bySeq), c.m)
	}
	seqs := make([]int, 0, len(bySeq))
	for s := range bySeq {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	seqs = seqs[:c.m]

	l := c.shardLen(dataLen)
	rows := make([][]byte, c.m)
	for i, s := range seqs {
		if len(bySeq[s]) != l {
			return nil, fmt.Errorf("%w: shard %d has %d bytes, want %d",
				ErrWrongBlockSize, s, len(bySeq[s]), l)
		}
		rows[i] = bySeq[s]
	}

	inv, err := c.inverse(seqs)
	if err != nil {
		return nil, err
	}
	// Reconstruction operation of Figure 3: source_j = Σᵢ inv[j][i]·rowᵢ.
	out := make([]byte, c.m*l)
	for j := 0; j < c.m; j++ {
		dst := out[j*l : (j+1)*l]
		for i := 0; i < c.m; i++ {
			if f := inv.At(j, i); f != 0 {
				mulAdd(f, rows[i], dst)
			}
		}
	}
	return out[:dataLen], nil
}

// inverse returns the inverse of the submatrix of the dispersal matrix
// selected by rows seqs (sorted ascending), caching the result. This is
// the precomputed [y_ij] of §2.1.
func (c *Codec) inverse(seqs []int) (*gfmat.Matrix, error) {
	key := subsetKey(seqs)
	c.mu.Lock()
	inv, ok := c.invCache[key]
	c.mu.Unlock()
	if ok {
		return inv, nil
	}
	sub := c.mat.SelectRows(seqs)
	inv, err := sub.Invert()
	if err != nil {
		// Cannot happen with a Vandermonde matrix; guard anyway.
		return nil, fmt.Errorf("ida: dispersal submatrix singular: %w", err)
	}
	c.mu.Lock()
	c.invCache[key] = inv
	c.mu.Unlock()
	return inv, nil
}

// CachedInverses reports how many reconstruction matrices are cached.
func (c *Codec) CachedInverses() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.invCache)
}

func subsetKey(seqs []int) string {
	b := make([]byte, 0, 2*len(seqs))
	for _, s := range seqs {
		b = append(b, byte(s>>8), byte(s))
	}
	return string(b)
}

// DisperseFile disperses data into n self-identifying blocks for the
// given file ID, with reconstruction threshold m.
func DisperseFile(fileID uint32, data []byte, m, n int) ([]*Block, error) {
	c, err := NewCodec(m, n)
	if err != nil {
		return nil, err
	}
	payloads, err := c.Disperse(data)
	if err != nil {
		return nil, err
	}
	blocks := make([]*Block, n)
	for i, p := range payloads {
		blocks[i] = &Block{
			FileID:  fileID,
			Seq:     uint16(i),
			M:       uint16(m),
			N:       uint16(n),
			Length:  uint32(len(data)),
			Payload: p,
		}
	}
	return blocks, nil
}

// ReconstructFile recovers a file from self-identifying blocks. All
// blocks must agree on FileID, M, N and Length; at least M blocks with
// distinct sequence numbers are required.
func ReconstructFile(blocks []*Block) ([]byte, error) {
	if len(blocks) == 0 {
		return nil, ErrNotEnough
	}
	ref := blocks[0]
	if err := ref.Validate(); err != nil {
		return nil, err
	}
	shards := make([]Shard, 0, len(blocks))
	for _, b := range blocks {
		if b.FileID != ref.FileID || b.M != ref.M || b.N != ref.N || b.Length != ref.Length {
			return nil, ErrInconsistent
		}
		shards = append(shards, Shard{Seq: int(b.Seq), Data: b.Payload})
	}
	c, err := NewCodec(int(ref.M), int(ref.N))
	if err != nil {
		return nil, err
	}
	return c.Reconstruct(shards, int(ref.Length))
}
