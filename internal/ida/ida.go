package ida

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"pinbcast/internal/gf256"
	"pinbcast/internal/gfmat"
)

// Codec disperses and reconstructs files with fixed parameters (m, n):
// files are split into m source blocks and dispersed into n ≥ m coded
// blocks, any m of which reconstruct the file. A Codec is safe for
// concurrent use; reconstruction inverse matrices are cached per row
// subset in a bounded LRU, the precomputation suggested in §2.1 of the
// paper.
//
// The dispersal matrix is systematic (gfmat.SystematicVandermonde): the
// first m coded blocks are verbatim copies of the source blocks, so
// encoding computes only the n−m redundant rows and a decode from the
// systematic prefix is a straight copy, while every m-row submatrix
// remains invertible — the any-m-of-n property of §2.1 is unchanged.
//
// Disperse and Reconstruct allocate their results; the streaming
// DisperseInto and ReconstructInto variants write into caller-owned
// buffers so steady-state encode/decode loops run allocation-free.
type Codec struct {
	m, n int
	mat  *gfmat.Matrix // n×m systematic dispersal matrix [x_ij]

	// encTables[i][j] is the cached product table of mat coefficient
	// (m+i, j): the encode tables of redundant row m+i. Precomputed at
	// construction so encoding never touches the log/exp tables.
	encTables [][]*gf256.Table

	mu       sync.Mutex
	invCache map[string]*list.Element // key: packed sorted row indices
	invLRU   list.List                // front = most recent; values are *invEntry
	invLimit int
}

// invEntry is one cached reconstruction inverse with its LRU key.
type invEntry struct {
	key string
	inv *gfmat.Matrix
}

// DefaultInverseCacheLimit bounds the per-codec reconstruction-inverse
// cache. Under client churn every distinct received row subset is one
// entry; the LRU keeps the hot subsets and evicts the rest instead of
// growing without bound.
const DefaultInverseCacheLimit = 128

// Dispersal parameter errors.
var (
	ErrBadParams      = errors.New("ida: need 1 ≤ m ≤ n ≤ 256")
	ErrBadDst         = errors.New("ida: destination shape mismatch")
	ErrNotEnough      = errors.New("ida: fewer than m distinct blocks available")
	ErrEmptyFile      = errors.New("ida: cannot disperse an empty file")
	ErrWrongBlockSize = errors.New("ida: blocks have inconsistent sizes")
)

// NewCodec returns a Codec dispersing into n blocks with reconstruction
// threshold m. The dispersal matrix is systematic Vandermonde, so every
// m-row submatrix is invertible.
func NewCodec(m, n int) (*Codec, error) {
	if m < 1 || n < m || n > 256 {
		return nil, fmt.Errorf("%w (m=%d, n=%d)", ErrBadParams, m, n)
	}
	c := &Codec{
		m:        m,
		n:        n,
		mat:      gfmat.SystematicVandermonde(n, m),
		invCache: make(map[string]*list.Element),
		invLimit: DefaultInverseCacheLimit,
	}
	c.encTables = make([][]*gf256.Table, n-m)
	for i := range c.encTables {
		row := c.mat.Row(m + i)
		tabs := make([]*gf256.Table, m)
		for j, coef := range row {
			tabs[j] = gf256.MulTable(coef)
		}
		c.encTables[i] = tabs
	}
	return c, nil
}

// codecs is the process-wide registry of shared codecs, keyed by (m, n).
// The dispersal matrix, encode tables and inverse cache for a parameter
// pair are immutable or internally synchronized, so one codec serves
// every caller — and the §2.1 inverse cache actually accumulates across
// retrievals instead of dying with a throwaway codec.
var (
	codecsMu sync.RWMutex
	codecs   = make(map[[2]int]*Codec)
)

// Shared returns the process-wide codec for (m, n), constructing it on
// first use. Codecs are safe for concurrent use, so sharing them
// amortizes matrix construction, encode-table setup and the inverse
// cache across every file with the same dispersal parameters.
func Shared(m, n int) (*Codec, error) {
	key := [2]int{m, n}
	codecsMu.RLock()
	c := codecs[key]
	codecsMu.RUnlock()
	if c != nil {
		return c, nil
	}
	c, err := NewCodec(m, n)
	if err != nil {
		return nil, err
	}
	codecsMu.Lock()
	if prev := codecs[key]; prev != nil {
		c = prev
	} else {
		codecs[key] = c
	}
	codecsMu.Unlock()
	return c, nil
}

// M returns the reconstruction threshold.
func (c *Codec) M() int { return c.m }

// N returns the dispersal width.
func (c *Codec) N() int { return c.n }

// shardLen returns the payload length of each dispersed block for a file
// of dataLen bytes: the file is padded to m equal-length source blocks.
//
//pinlint:hotpath
func (c *Codec) shardLen(dataLen int) int {
	return (dataLen + c.m - 1) / c.m
}

// ShardLen returns the payload length of each dispersed block for a
// file of dataLen bytes.
func (c *Codec) ShardLen(dataLen int) int { return c.shardLen(dataLen) }

// Disperse splits data into m source blocks (zero-padding the tail) and
// returns the n dispersed payloads. Payload i is Σⱼ mat[i][j]·sourceⱼ,
// the dispersal operation of Figure 3. The payloads are freshly
// allocated; use DisperseInto to reuse buffers.
func (c *Codec) Disperse(data []byte) ([][]byte, error) {
	return c.DisperseInto(data, nil)
}

// DisperseInto disperses data into dst, reusing dst's backing arrays
// when they have capacity, and returns dst resliced to the n payloads
// of shardLen(len(data)) bytes each. A nil dst (or one with too little
// capacity) grows as needed, so steady-state callers that pass the
// previous cycle's result back in disperse with zero allocations.
//
// Ownership: the returned payload slices belong to the caller; the
// codec retains no reference to them or to data. Payload j < m aliases
// nothing (it is a copy of source block j), so mutating data afterwards
// does not corrupt the shards. Payloads must not alias data or each
// other.
//
//pinlint:hotpath
func (c *Codec) DisperseInto(data []byte, dst [][]byte) ([][]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmptyFile
	}
	l := c.shardLen(len(data))
	dst = c.growPayloads(dst, l) //pinlint:allow allocprove — first-cycle growth; steady state passes capacity back in

	// Systematic prefix: payload j = source block j, zero-padded. The
	// copies double as the encode sources below, so the partial tail
	// block needs no separate scratch.
	for j := 0; j < c.m; j++ {
		copySourceBlock(dst[j], data, j, l)
	}
	// Redundant rows: payload m+i = Σⱼ mat[m+i][j]·sourceⱼ, via the
	// precomputed per-coefficient product tables. Source blocks past
	// the end of data are entirely zero and contribute nothing, so the
	// accumulation stops at the last block with data.
	live := (len(data) + l - 1) / l
	for i, tabs := range c.encTables {
		out := dst[c.m+i]
		clear(out)
		for j, tab := range tabs {
			if j >= live {
				break
			}
			gf256.MulAddSliceTable(tab, dst[j], out)
		}
	}
	return dst, nil
}

// growPayloads reslices dst to n payloads of l bytes each, reusing
// backing arrays with capacity and allocating the rest.
//
//pinlint:hotpath
func (c *Codec) growPayloads(dst [][]byte, l int) [][]byte {
	if cap(dst) >= c.n {
		dst = dst[:c.n]
	} else {
		grown := make([][]byte, c.n) //pinlint:allow allocprove — first-cycle growth; steady state passes capacity back in
		copy(grown, dst)
		dst = grown
	}
	for i := range dst {
		if cap(dst[i]) >= l {
			dst[i] = dst[i][:l]
		} else {
			dst[i] = make([]byte, l) //pinlint:allow allocprove — first-cycle growth; steady state passes capacity back in
		}
	}
	return dst
}

// copySourceBlock writes source block j of data — bytes [j·l, (j+1)·l),
// zero-padded past the end of data — into out (len l).
//
//pinlint:hotpath
func copySourceBlock(out, data []byte, j, l int) {
	lo := j * l
	if lo >= len(data) {
		clear(out)
		return
	}
	n := copy(out, data[lo:])
	clear(out[n:])
}

// Shard pairs a dispersed payload with its row index in the dispersal
// matrix (the block's sequence number).
type Shard struct {
	Seq  int
	Data []byte
}

// reconScratch is the reusable working state of one reconstruction:
// per-sequence payload lookup, the selected sequence numbers, and their
// payload rows.
type reconScratch struct {
	rowOf [][]byte // indexed by seq; nil = not received
	seqs  []int
	rows  [][]byte
}

var reconPool = sync.Pool{New: func() any { return new(reconScratch) }}

// releaseRecon drops the shard-payload references before pooling so an
// idle scratch never pins caller buffers. This also establishes the
// invariant the Get path relies on: every element within the slices'
// lengths is nil (writes only ever land below len, and this clear
// covers len).
//
//pinlint:hotpath
func releaseRecon(sc *reconScratch) {
	clear(sc.rowOf)
	clear(sc.rows)
	reconPool.Put(sc)
}

// Reconstruct recovers the original file of dataLen bytes from any m
// shards with distinct sequence numbers. Extra shards beyond m are
// ignored (the first m distinct, in ascending Seq order, are used). The
// result is freshly allocated; use ReconstructInto to reuse a buffer.
func (c *Codec) Reconstruct(shards []Shard, dataLen int) ([]byte, error) {
	return c.ReconstructInto(shards, dataLen, nil)
}

// ReconstructInto recovers the original file of dataLen bytes into dst,
// reusing dst's backing array when it has capacity for the padded file
// (m·shardLen bytes), and returns the first dataLen bytes. A nil or
// too-small dst grows as needed.
//
// Ownership: the returned slice aliases dst's backing array (or the
// grown replacement); the codec retains no reference to it or to the
// shard payloads.
//
//pinlint:hotpath
func (c *Codec) ReconstructInto(shards []Shard, dataLen int, dst []byte) ([]byte, error) {
	if dataLen <= 0 {
		return nil, ErrEmptyFile
	}
	sc := reconPool.Get().(*reconScratch)
	defer releaseRecon(sc)
	if cap(sc.rowOf) >= c.n {
		sc.rowOf = sc.rowOf[:c.n]
	} else {
		sc.rowOf = make([][]byte, c.n) //pinlint:allow allocprove — first use of a pooled scratch; amortized across reconstructions
	}
	sc.seqs = sc.seqs[:0]
	// Deduplicate by sequence number (first shard carrying a seq wins;
	// duplicates carry equal data), ascending.
	for _, s := range shards {
		if s.Seq < 0 || s.Seq >= c.n {
			return nil, fmt.Errorf("ida: shard seq %d out of range [0,%d)", s.Seq, c.n) //pinlint:allow hotpath allocprove — malformed shard, cold path
		}
		if sc.rowOf[s.Seq] == nil {
			sc.rowOf[s.Seq] = s.Data
			sc.seqs = append(sc.seqs, s.Seq)
		}
	}
	if len(sc.seqs) < c.m {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnough, len(sc.seqs), c.m) //pinlint:allow hotpath allocprove — too few shards, cold path
	}
	sort.Ints(sc.seqs)
	sc.seqs = sc.seqs[:c.m]

	l := c.shardLen(dataLen)
	if cap(sc.rows) >= c.m {
		sc.rows = sc.rows[:c.m]
	} else {
		sc.rows = make([][]byte, c.m) //pinlint:allow allocprove — first use of a pooled scratch; amortized across reconstructions
	}
	for i, seq := range sc.seqs {
		row := sc.rowOf[seq]
		if len(row) != l {
			return nil, fmt.Errorf("%w: shard %d has %d bytes, want %d", //pinlint:allow hotpath allocprove — malformed shard, cold path
				ErrWrongBlockSize, seq, len(row), l) //pinlint:allow allocprove — the ints box only when the malformed-shard error is built
		}
		sc.rows[i] = row
	}

	inv, err := c.inverse(sc.seqs)
	if err != nil {
		return nil, err
	}
	padded := c.m * l
	if cap(dst) >= padded {
		dst = dst[:padded]
	} else {
		dst = make([]byte, padded) //pinlint:allow allocprove — first-cycle growth; steady state passes capacity back in
	}
	// Reconstruction operation of Figure 3: source_j = Σᵢ inv[j][i]·rowᵢ.
	// Rows of the inverse addressing received systematic shards are unit
	// vectors, so those source blocks reduce to the single c==1 XOR-copy
	// fast path inside MulAddSlice; only genuinely missing blocks pay
	// the full accumulation.
	for j := 0; j < c.m; j++ {
		out := dst[j*l : (j+1)*l]
		clear(out)
		for i := 0; i < c.m; i++ {
			if f := inv.At(j, i); f != 0 {
				gf256.MulAddSlice(f, sc.rows[i], out)
			}
		}
	}
	return dst[:dataLen], nil
}

// inverse returns the inverse of the submatrix of the dispersal matrix
// selected by rows seqs (sorted ascending), consulting and maintaining
// the bounded LRU cache. This is the precomputed [y_ij] of §2.1. A hit
// is allocation-free; the miss path below pays the inversion and cache
// insert, amortized across every later retrieval of the same subset.
//
//pinlint:hotpath
func (c *Codec) inverse(seqs []int) (*gfmat.Matrix, error) {
	// Pack the subset key on the stack; map lookups with a string(...)
	// conversion of a byte slice do not allocate, so a cache hit is
	// allocation-free.
	var kb [512]byte
	key := packSubsetKey(kb[:0], seqs)

	c.mu.Lock()
	if el, ok := c.invCache[string(key)]; ok {
		c.invLRU.MoveToFront(el)
		inv := el.Value.(*invEntry).inv
		c.mu.Unlock()
		return inv, nil
	}
	c.mu.Unlock()

	sub := c.mat.SelectRows(seqs) //pinlint:allow hotpath allocprove — cache miss, amortized by the LRU
	inv, err := sub.Invert()      //pinlint:allow hotpath allocprove — cache miss, amortized by the LRU
	if err != nil {
		// Cannot happen with a systematic Vandermonde matrix; guard anyway.
		return nil, fmt.Errorf("ida: dispersal submatrix singular: %w", err) //pinlint:allow hotpath — unreachable guard
	}

	c.mu.Lock()
	if el, ok := c.invCache[string(key)]; ok {
		// Raced with another reconstruction of the same subset.
		c.invLRU.MoveToFront(el)
		inv = el.Value.(*invEntry).inv
	} else {
		ks := string(key)                                                 //pinlint:allow allocprove — cache miss, amortized by the LRU
		c.invCache[ks] = c.invLRU.PushFront(&invEntry{key: ks, inv: inv}) //pinlint:allow hotpath allocprove — cache miss, amortized by the LRU
		for c.invLRU.Len() > c.invLimit {
			oldest := c.invLRU.Back()
			c.invLRU.Remove(oldest)
			delete(c.invCache, oldest.Value.(*invEntry).key)
		}
	}
	c.mu.Unlock()
	return inv, nil
}

// SetInverseCacheLimit bounds the reconstruction-inverse LRU to at most
// limit entries (minimum 1), evicting immediately if over. The default
// is DefaultInverseCacheLimit.
func (c *Codec) SetInverseCacheLimit(limit int) {
	if limit < 1 {
		limit = 1
	}
	c.mu.Lock()
	c.invLimit = limit
	for c.invLRU.Len() > c.invLimit {
		oldest := c.invLRU.Back()
		c.invLRU.Remove(oldest)
		delete(c.invCache, oldest.Value.(*invEntry).key)
	}
	c.mu.Unlock()
}

// CachedInverses reports how many reconstruction matrices are cached.
func (c *Codec) CachedInverses() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.invCache)
}

// packSubsetKey appends the 2-byte big-endian encoding of each sequence
// number to b. With b backed by a stack array the packing allocates
// nothing.
//
//pinlint:hotpath
func packSubsetKey(b []byte, seqs []int) []byte {
	for _, s := range seqs {
		b = append(b, byte(s>>8), byte(s))
	}
	return b
}

// DisperseFile disperses data into n self-identifying blocks for the
// given file ID, with reconstruction threshold m. The codec is the
// process-wide shared one for (m, n).
func DisperseFile(fileID uint32, data []byte, m, n int) ([]*Block, error) {
	c, err := Shared(m, n)
	if err != nil {
		return nil, err
	}
	payloads, err := c.Disperse(data)
	if err != nil {
		return nil, err
	}
	blocks := make([]*Block, n)
	for i, p := range payloads {
		blocks[i] = &Block{
			FileID:  fileID,
			Seq:     uint16(i),
			M:       uint16(m),
			N:       uint16(n),
			Length:  uint32(len(data)),
			Payload: p,
		}
	}
	return blocks, nil
}

// ReconstructFile recovers a file from self-identifying blocks. All
// blocks must agree on FileID, M, N and Length; at least M blocks with
// distinct sequence numbers are required. The codec is the process-wide
// shared one, so its §2.1 inverse cache persists across retrievals. The
// result is freshly allocated; use ReconstructFileInto to reuse a
// buffer.
func ReconstructFile(blocks []*Block) ([]byte, error) {
	return ReconstructFileInto(blocks, nil)
}

// shardPool recycles the shard views assembled by ReconstructFileInto.
// It stores *[]Shard so Get/Put never box a slice header.
var shardPool = sync.Pool{New: func() any { s := []Shard(nil); return &s }}

// ReconstructFileInto is ReconstructFile writing into a caller-owned
// buffer: dst is reused when it has capacity for the padded file and
// grown otherwise, exactly as in ReconstructInto. Steady-state
// retrieval loops that pass the previous file's buffer back in decode
// with zero allocations.
//
//pinlint:hotpath
func ReconstructFileInto(blocks []*Block, dst []byte) ([]byte, error) {
	if len(blocks) == 0 {
		return nil, ErrNotEnough
	}
	ref := blocks[0]
	if err := ref.Validate(); err != nil { //pinlint:allow hotpath — malformed block, cold path
		return nil, err
	}
	sp := shardPool.Get().(*[]Shard)
	shards := (*sp)[:0]
	for _, b := range blocks {
		if b.FileID != ref.FileID || b.M != ref.M || b.N != ref.N || b.Length != ref.Length {
			clear(shards)
			*sp = shards[:0]
			shardPool.Put(sp)
			return nil, ErrInconsistent
		}
		shards = append(shards, Shard{Seq: int(b.Seq), Data: b.Payload}) //pinlint:allow hotpath — pooled scratch; growth amortizes to zero across retrievals
	}
	c, err := Shared(int(ref.M), int(ref.N)) //pinlint:allow hotpath — registry hit after the first file is one RLock'd map read
	if err == nil {
		dst, err = c.ReconstructInto(shards, int(ref.Length), dst)
	} else {
		dst = nil
	}
	clear(shards) // drop payload references so the pool never pins them
	*sp = shards[:0]
	shardPool.Put(sp)
	return dst, err
}
