package obs

import (
	"math"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_slots_total", "slots")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("t_slots_total", "slots"); again != c {
		t.Fatal("re-registering the same counter returned a new instrument")
	}

	g := r.Gauge("t_depth", "depth")
	g.Set(7)
	g.Add(-10)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_hops_total", "hops", Label{"channel", "0"})
	b := r.Counter("t_hops_total", "hops", Label{"channel", "1"})
	if a == b {
		t.Fatal("different label values returned the same series")
	}
	// Label order must not matter for identity.
	x := r.Gauge("t_up", "up", Label{"channel", "0"}, Label{"shard", "a"})
	y := r.Gauge("t_up", "up", Label{"shard", "a"}, Label{"channel", "0"})
	if x != y {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_thing", "thing")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two kinds did not panic")
		}
	}()
	r.Gauge("t_thing", "thing")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("0bad-name", "nope")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_slots", "latency")
	for _, v := range []uint64{0, 1, 1, 3, 1000, math.MaxUint64} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	var wantSum uint64 = math.MaxUint64
	wantSum += 1005 // wraps, as the histogram's sum word does
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %d, want %d", got, wantSum)
	}
	want := map[int]uint64{0: 1, 1: 2, 2: 1, 10: 1, 64: 1}
	for i := 0; i < histBuckets; i++ {
		if got := h.Bucket(i); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
}

func TestDefaultRegistryAndTrace(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry is not a stable singleton")
	}
	if Trace() == nil || Trace() != Trace() {
		t.Fatal("Trace ring is not a stable singleton")
	}
	if Trace().Cap() != DefaultRingSize {
		t.Fatalf("default ring capacity = %d, want %d", Trace().Cap(), DefaultRingSize)
	}
}
