package obs

import (
	"sync/atomic"
)

// Kind classifies a slot trace event.
type Kind uint8

// Trace event kinds, one per observable slot-plane transition.
const (
	KindUnknown Kind = iota
	// SlotServed: the station emitted one slot (File/Seq valid).
	SlotServed
	// FrameFlushed: the fanout flushed a writev batch (Aux = frames).
	FrameFlushed
	// BlockCorrupted: a receiver saw an injected or real corruption.
	BlockCorrupted
	// MissDetected: the tuner's detector flagged a missed slot.
	MissDetected
	// ChannelHop: a tuner re-homed requests off a dead channel.
	ChannelHop
	// FailoverReadmit: the cluster re-admitted an orphaned file.
	FailoverReadmit
	// ContractRevoked: failover degraded a QoS contract past its bound.
	ContractRevoked
)

// String returns the stable wire name of the kind, used in the JSONL
// trace dump and the README schema table.
func (k Kind) String() string {
	switch k {
	case SlotServed:
		return "slot_served"
	case FrameFlushed:
		return "frame_flushed"
	case BlockCorrupted:
		return "block_corrupted"
	case MissDetected:
		return "miss_detected"
	case ChannelHop:
		return "channel_hop"
	case FailoverReadmit:
		return "failover_readmit"
	case ContractRevoked:
		return "contract_revoked"
	}
	return "unknown"
}

// Event is one decoded slot trace record.
type Event struct {
	Seq     uint64 // global emission order (1-based, gaps = overwritten)
	Kind    Kind
	Channel int    // channel index, or -1 when not channel-scoped
	File    uint32 // file ID, 0 when not file-scoped
	T       uint64 // slot index on the emitting plane's clock
	Aux     uint64 // kind-specific payload (batch size, txn, ...)
}

// noChannel is the packed sentinel for "not channel-scoped".
const noChannel = 0xFFFF

// ringWords is the number of atomic words per slot:
// [0] seq (0 = being written), [1] kind|channel|file, [2] T, [3] aux.
const ringWords = 4

// DefaultRingSize is the capacity of the package-level Trace ring:
// large enough to hold several data cycles of slot events, small
// enough (1 MiB of words) to sit warm in L2 during replay.
const DefaultRingSize = 1 << 14

// Ring is a lock-free, fixed-capacity, overwrite-oldest trace buffer.
// Writers claim a slot with one atomic add and publish it with an
// atomic sequence store, so Emit never blocks and never allocates;
// concurrent readers (Snapshot, Drain) validate each slot's sequence
// word before and after decoding it and skip slots caught mid-write.
// Every slot access is an atomic word operation — the ring is clean
// under the race detector without locks.
type Ring struct {
	mask uint64
	head atomic.Uint64 // next sequence to claim (published seq = claim+1)
	tail atomic.Uint64 // drain cursor; single drainer assumed
	_    [48]byte
	w    []atomic.Uint64 // cap*ringWords words
}

// NewRing returns a ring holding the most recent capacity events.
// Capacity is rounded up to a power of two.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{
		mask: uint64(n - 1),
		w:    make([]atomic.Uint64, n*ringWords),
	}
}

// trace is the package-level ring the planes emit into.
var trace = NewRing(DefaultRingSize)

// Trace returns the process-wide trace ring.
func Trace() *Ring { return trace }

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int { return int(r.mask) + 1 }

// Emitted returns the total number of events ever emitted, including
// those since overwritten.
func (r *Ring) Emitted() uint64 { return r.head.Load() }

// Emit publishes one event. Channel −1 (or any negative) records the
// not-channel-scoped sentinel; channels are truncated to 16 bits,
// which bounds K at 65535 — far beyond any broadcast plan.
//
//pinlint:hotpath
func (r *Ring) Emit(kind Kind, channel int, file uint32, t, aux uint64) {
	ch := uint64(noChannel)
	if channel >= 0 {
		ch = uint64(channel) & noChannel
	}
	n := r.head.Add(1) - 1
	base := (n & r.mask) * ringWords
	// Invalidate, fill, publish: a reader that loads seq==n+1 both
	// before and after the field loads saw a fully written record.
	r.w[base].Store(0)
	r.w[base+1].Store(uint64(kind)<<48 | ch<<32 | uint64(file))
	r.w[base+2].Store(t)
	r.w[base+3].Store(aux)
	r.w[base].Store(n + 1)
}

// load decodes the slot holding sequence n, if it is still intact.
func (r *Ring) load(n uint64) (Event, bool) {
	base := (n & r.mask) * ringWords
	if r.w[base].Load() != n+1 {
		return Event{}, false
	}
	packed := r.w[base+1].Load()
	t := r.w[base+2].Load()
	aux := r.w[base+3].Load()
	if r.w[base].Load() != n+1 {
		return Event{}, false
	}
	ch := int(packed >> 32 & noChannel)
	if ch == noChannel {
		ch = -1
	}
	return Event{
		Seq:     n + 1,
		Kind:    Kind(packed >> 48),
		Channel: ch,
		File:    uint32(packed),
		T:       t,
		Aux:     aux,
	}, true
}

// Snapshot appends the currently readable events, oldest first, to dst
// and returns the extended slice. It does not consume events and may
// run concurrently with writers; events overwritten or mid-write
// during the scan are skipped.
func (r *Ring) Snapshot(dst []Event) []Event {
	head := r.head.Load()
	start := uint64(0)
	if head > r.mask+1 {
		start = head - (r.mask + 1)
	}
	for n := start; n < head; n++ {
		if ev, ok := r.load(n); ok {
			dst = append(dst, ev)
		}
	}
	return dst
}

// Drain appends all events emitted since the previous Drain, oldest
// first, and advances the drain cursor. Events that were overwritten
// before being drained are lost (their gap is visible as missing Seq
// values). Drain assumes a single draining goroutine; it may run
// concurrently with Emit.
func (r *Ring) Drain(dst []Event) []Event {
	head := r.head.Load()
	n := r.tail.Load()
	if head > r.mask+1 && n < head-(r.mask+1) {
		n = head - (r.mask + 1)
	}
	for ; n < head; n++ {
		if ev, ok := r.load(n); ok {
			dst = append(dst, ev)
		}
	}
	r.tail.Store(head)
	return dst
}
