package obs

import (
	"sync"
	"testing"
)

func TestRingEmitSnapshotDrain(t *testing.T) {
	r := NewRing(8)
	r.Emit(SlotServed, 0, 42, 100, 0)
	r.Emit(ChannelHop, 2, 0, 101, 7)
	r.Emit(FrameFlushed, -1, 0, 102, 128)

	snap := r.Snapshot(nil)
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d events, want 3", len(snap))
	}
	if snap[0].Kind != SlotServed || snap[0].File != 42 || snap[0].T != 100 || snap[0].Channel != 0 {
		t.Fatalf("event 0 = %+v", snap[0])
	}
	if snap[1].Kind != ChannelHop || snap[1].Channel != 2 || snap[1].Aux != 7 {
		t.Fatalf("event 1 = %+v", snap[1])
	}
	if snap[2].Channel != -1 {
		t.Fatalf("no-channel sentinel decoded to %d, want -1", snap[2].Channel)
	}

	// Snapshot does not consume; Drain does.
	if again := r.Snapshot(nil); len(again) != 3 {
		t.Fatalf("second snapshot = %d events, want 3", len(again))
	}
	if drained := r.Drain(nil); len(drained) != 3 {
		t.Fatalf("drain = %d events, want 3", len(drained))
	}
	if rest := r.Drain(nil); len(rest) != 0 {
		t.Fatalf("second drain = %d events, want 0", len(rest))
	}
	r.Emit(MissDetected, 1, 9, 103, 0)
	if rest := r.Drain(nil); len(rest) != 1 || rest[0].Kind != MissDetected {
		t.Fatalf("drain after new emit = %+v", rest)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(SlotServed, 0, uint32(i), uint64(i), 0)
	}
	snap := r.Snapshot(nil)
	if len(snap) != 4 {
		t.Fatalf("snapshot = %d events, want capacity 4", len(snap))
	}
	for i, ev := range snap {
		if want := uint64(6 + i); ev.T != want {
			t.Fatalf("event %d T = %d, want %d (oldest four overwritten)", i, ev.T, want)
		}
	}
	if r.Emitted() != 10 {
		t.Fatalf("emitted = %d, want 10", r.Emitted())
	}
	// Drain after overflow starts at the oldest survivor.
	if drained := r.Drain(nil); len(drained) != 4 || drained[0].Seq != 7 {
		t.Fatalf("drain after overflow = %d events, first seq %d; want 4 events from seq 7",
			len(drained), drained[0].Seq)
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{0, 1}, {1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		if got := NewRing(tc.ask).Cap(); got != tc.want {
			t.Fatalf("NewRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestRingConcurrent hammers one ring from several writers while a
// reader snapshots continuously; under -race this proves the
// seq-validated publication protocol is clean, and the decoded events
// must all be internally consistent (File mirrors T for its writer).
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	const writers, perWriter = 4, 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		buf := make([]Event, 0, 64)
		for {
			buf = r.Snapshot(buf[:0])
			for _, ev := range buf {
				if uint64(ev.File) != ev.T {
					t.Errorf("torn event: File=%d T=%d", ev.File, ev.T)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := uint64(w*perWriter + i)
				r.Emit(SlotServed, w, uint32(v), v, 0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := r.Emitted(); got != writers*perWriter {
		t.Fatalf("emitted = %d, want %d", got, writers*perWriter)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		SlotServed:      "slot_served",
		FrameFlushed:    "frame_flushed",
		BlockCorrupted:  "block_corrupted",
		MissDetected:    "miss_detected",
		ChannelHop:      "channel_hop",
		FailoverReadmit: "failover_readmit",
		ContractRevoked: "contract_revoked",
		KindUnknown:     "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
