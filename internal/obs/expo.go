package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// snapshot is an immutable copy of the registry's structure taken
// under the read lock; instrument values are read lock-free afterward,
// so a scrape holds the lock only for the family/series walk.
type snapshot struct {
	fams []*family
}

// snap copies the registry structure, families sorted by name and
// series sorted by label signature, for deterministic exposition.
func (r *Registry) snap() snapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return snapshot{fams: fams}
}

// sortedSeries returns a family's series ordered by label signature.
func sortedSeries(f *family) []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sig < out[j].sig })
	return out
}

// WriteTo writes the registry in Prometheus text exposition format
// 0.0.4: a # HELP and # TYPE line per family, one sample line per
// series, and for histograms the cumulative `_bucket{le=...}` series
// over the power-of-two boundaries plus `_sum` and `_count`. Families
// are emitted in name order and series in label order, so the output
// is deterministic for golden tests. Values may advance mid-scrape;
// each sample is an atomic load, and histogram buckets are read before
// their count so the cumulative +Inf bucket never understates.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	for _, f := range r.snap().fams {
		cw.str("# HELP ")
		cw.str(f.name)
		cw.str(" ")
		cw.str(escapeHelp(f.help))
		cw.str("\n# TYPE ")
		cw.str(f.name)
		cw.str(" ")
		cw.str(f.kind.String())
		cw.str("\n")
		for _, s := range sortedSeries(f) {
			switch f.kind {
			case kindCounter:
				cw.sample(f.name, "", s.sig, "", s.c.Value())
			case kindGauge:
				cw.gaugeSample(f.name, s.sig, s.g.Value())
			case kindHistogram:
				writeHistogram(cw, f.name, s)
			}
		}
	}
	err := cw.w.(*bufio.Writer).Flush()
	if cw.err == nil {
		cw.err = err
	}
	return cw.n, cw.err
}

// writeHistogram emits one histogram series: cumulative buckets at the
// power-of-two upper bounds (le="0" for the zero bucket, then
// le="2^i−1"), trimmed after the highest non-empty bucket, then +Inf,
// _sum and _count.
func writeHistogram(cw *countingWriter, name string, s *series) {
	// Load all buckets once; the count is derived from the loaded
	// buckets so cumulative +Inf equals the emitted _count even while
	// writers race the scrape.
	var b [histBuckets]uint64
	top := -1
	for i := range b {
		b[i] = s.h.Bucket(i)
		if b[i] != 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += b[i]
		le := "0"
		if i > 0 {
			le = strconv.FormatUint(1<<uint(i)-1, 10)
		}
		if i == 64 {
			le = "18446744073709551615"
		}
		cw.sample(name, "_bucket", s.sig, le, cum)
	}
	cw.sample(name, "_bucket", s.sig, "+Inf", cum)
	cw.sample(name, "_sum", s.sig, "", s.h.Sum())
	cw.sample(name, "_count", s.sig, "", cum)
}

// countingWriter accumulates bytes written and the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) str(s string) {
	if cw.err != nil {
		return
	}
	n, err := io.WriteString(cw.w, s)
	cw.n += int64(n)
	cw.err = err
}

// sample writes one `name[suffix][{labels,le}] value` line. A non-empty
// le is merged into the label set (histogram bucket lines).
func (cw *countingWriter) sample(name, suffix, sig, le string, v uint64) {
	cw.str(name)
	cw.str(suffix)
	switch {
	case le == "":
		cw.str(sig)
	case sig == "":
		cw.str(`{le="` + le + `"}`)
	default:
		// Insert le after the existing labels: {a="b"} → {a="b",le="x"}.
		cw.str(sig[:len(sig)-1])
		cw.str(`,le="` + le + `"}`)
	}
	cw.str(" ")
	cw.str(strconv.FormatUint(v, 10))
	cw.str("\n")
}

// gaugeSample writes one signed sample line.
func (cw *countingWriter) gaugeSample(name, sig string, v int64) {
	cw.str(name)
	cw.str(sig)
	cw.str(" ")
	cw.str(strconv.FormatInt(v, 10))
	cw.str("\n")
}

// jsonSeries is one series in the JSON snapshot.
type jsonSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *int64            `json:"value,omitempty"`
	Count  *uint64           `json:"count,omitempty"`
	Sum    *uint64           `json:"sum,omitempty"`
	// Buckets maps the inclusive upper bound (decimal string) to the
	// non-cumulative count of that power-of-two bucket.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// jsonFamily is one metric family in the JSON snapshot.
type jsonFamily struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON writes the registry as a JSON array of metric families,
// deterministically ordered — the format behind bdsim -metrics-out and
// the /debug/vars "pinbcast" expvar.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := r.snap().fams
	out := make([]jsonFamily, 0, len(fams))
	for _, f := range fams {
		jf := jsonFamily{Name: f.name, Type: f.kind.String(), Help: f.help}
		for _, s := range sortedSeries(f) {
			js := jsonSeries{}
			if len(s.labels) > 0 {
				js.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					js.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case kindCounter:
				v := int64(s.c.Value())
				js.Value = &v
			case kindGauge:
				v := s.g.Value()
				js.Value = &v
			case kindHistogram:
				count, sum := s.h.Count(), s.h.Sum()
				js.Count, js.Sum = &count, &sum
				js.Buckets = map[string]uint64{}
				for i := 0; i < histBuckets; i++ {
					if c := s.h.Bucket(i); c != 0 {
						le := "0"
						if i > 0 && i < 64 {
							le = strconv.FormatUint(1<<uint(i)-1, 10)
						} else if i == 64 {
							le = "18446744073709551615"
						}
						js.Buckets[le] = c
					}
				}
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
