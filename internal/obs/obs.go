// Package obs is the observability plane: a stdlib-only, typed
// registry of atomic counters, gauges and fixed-bucket histograms, a
// lock-free ring buffer of slot trace events, and a hand-rolled
// Prometheus text-format exposition encoder. Every hot-path operation
// — Counter.Inc, Gauge.Set, Histogram.Observe, Ring.Emit — is a
// handful of atomic words: no locks, no allocation, no formatting.
// Locks and allocation exist only at registration and scrape time.
//
// The package-level Default registry and Trace ring are what the
// pinbcast planes (Station.Serve, transport.Fanout, Cluster,
// MultiTuner, Receiver) instrument against; cmd/bdserved serves them
// over HTTP and cmd/bdsim dumps them to files. Instruments are
// get-or-create by (name, label set), so every Station in a process
// shares one aggregated family while labeled series (per-channel
// cluster gauges) stay distinct.
//
// Metric and label names follow the Prometheus data model; invalid
// names and mismatched re-registration (one name, two types) panic at
// registration time — they are programming errors on cold paths, like
// a duplicate expvar.Publish.
package obs

import (
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, a key="value" pair. Series of one
// family are distinguished by their full label sets.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing counter. The value word is
// padded to a cache line so independently owned counters never share
// one (false sharing would serialize unrelated hot loops).
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
//
//pinlint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//pinlint:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
//
//pinlint:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to subtract).
//
//pinlint:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of histogram buckets: one per possible
// bits.Len64 of the observed value. Bucket 0 holds zeros; bucket i
// holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a fixed-bucket histogram over power-of-two boundaries:
// Observe(v) lands in the bucket indexed by bits.Len64(v), so the
// per-observation cost is two atomic adds and no branch on bucket
// tables. The bucket array is contiguous behind a padded header —
// observations of one histogram are usually made by one goroutine, so
// padding per instrument (not per bucket) is the false-sharing seam
// that matters.
type Histogram struct {
	sum   atomic.Uint64
	count atomic.Uint64
	_     [48]byte
	b     [histBuckets]atomic.Uint64
}

// Observe records one value.
//
//pinlint:hotpath
func (h *Histogram) Observe(v uint64) {
	h.b[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bucket returns the count of observations v with bits.Len64(v) == i:
// bucket 0 counts zeros, bucket i ≥ 1 counts [2^(i-1), 2^i).
func (h *Histogram) Bucket(i int) uint64 { return h.b[i].Load() }

// metricKind discriminates a family's instrument type.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (family, label set) instrument.
type series struct {
	labels []Label // sorted by key
	sig    string  // exposition fragment: `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name, help string
	kind       metricKind
	series     map[string]*series // by label signature
}

// Registry is a typed metric registry. Registration (the Counter,
// Gauge, Histogram methods) takes a lock and may allocate; the
// returned instruments are lock-free and allocation-free to operate.
// A Registry is safe for concurrent use, including scraping (WriteTo,
// WriteJSON) while instruments are updated.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// std is the process-wide default registry the pinbcast planes
// instrument against.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the counter of the named family with the given
// labels, creating family and series as needed. Re-registering an
// existing (name, labels) pair returns the same instrument; using one
// name for two instrument types panics.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(kindCounter, name, help, labels)
	return s.c
}

// Gauge returns the gauge of the named family with the given labels,
// creating family and series as needed.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(kindGauge, name, help, labels)
	return s.g
}

// Histogram returns the histogram of the named family with the given
// labels, creating family and series as needed.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	s := r.lookup(kindHistogram, name, help, labels)
	return s.h
}

// lookup get-or-creates a series under the registry lock.
func (r *Registry) lookup(kind metricKind, name, help string, labels []Label) *series {
	if !validName(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labels {
		if !validLabelKey(l.Key) {
			panic("obs: invalid label key " + l.Key + " on metric " + name)
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	sig := signature(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " registered as " + f.kind.String() + ", requested " + kind.String())
	}
	s := f.series[sig]
	if s == nil {
		s = &series{labels: sorted, sig: sig}
		switch kind {
		case kindCounter:
			s.c = new(Counter)
		case kindGauge:
			s.g = new(Gauge)
		case kindHistogram:
			s.h = new(Histogram)
		}
		f.series[sig] = s
	}
	return s
}

// signature renders a sorted label set as its exposition fragment —
// `{key="value",...}` with values escaped — which doubles as the
// series identity.
func signature(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text
// format: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// validName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelKey reports whether key matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(key string) bool {
	if key == "" {
		return false
	}
	for i, r := range key {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
