package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the fixed registry the golden file snapshots:
// every exposition feature in one place — unlabeled and labeled
// counters, a negative gauge, histograms with and without labels, and
// label-value escaping.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("pin_test_slots_total", "Slots served.").Add(42)
	r.Counter("pin_test_slots_total", "Slots served.", Label{"channel", "0"}).Add(7)
	r.Gauge("pin_test_depth", "Queue depth.").Set(-3)
	h := r.Histogram("pin_test_latency_slots", "Latency in slots.")
	for _, v := range []uint64{0, 1, 1, 3, 1000} {
		h.Observe(v)
	}
	r.Histogram("pin_test_latency_slots", "Latency in slots.", Label{"channel", "1"}).Observe(5)
	r.Counter("pin_test_weird_total", "Help with \\ backslash and\nnewline.",
		Label{"path", "a\\b\"c\nd"}).Inc()
	return r
}

func TestWriteToGolden(t *testing.T) {
	var buf bytes.Buffer
	n, err := goldenRegistry().WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteToDeterministic(t *testing.T) {
	r := goldenRegistry()
	var a, b bytes.Buffer
	if _, err := r.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two scrapes of an idle registry differ")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var fams []struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Series []struct {
			Labels  map[string]string `json:"labels"`
			Value   *int64            `json:"value"`
			Count   *uint64           `json:"count"`
			Sum     *uint64           `json:"sum"`
			Buckets map[string]uint64 `json:"buckets"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &fams); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	for i, f := range fams {
		byName[f.Name] = i
	}
	slots := fams[byName["pin_test_slots_total"]]
	if slots.Type != "counter" || len(slots.Series) != 2 || *slots.Series[0].Value != 42 {
		t.Fatalf("slots family = %+v", slots)
	}
	lat := fams[byName["pin_test_latency_slots"]]
	if lat.Type != "histogram" || *lat.Series[0].Count != 5 || *lat.Series[0].Sum != 1005 {
		t.Fatalf("latency family = %+v", lat)
	}
	if lat.Series[0].Buckets["1023"] != 1 {
		t.Fatalf("latency buckets = %v", lat.Series[0].Buckets)
	}
}

// TestConcurrentScrape scrapes the /metrics handler while writers
// pound every instrument kind; run under -race this is the
// scrape-while-serving soundness proof.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pin_test_busy_total", "busy")
	g := r.Gauge("pin_test_level", "level")
	h := r.Histogram("pin_test_lat", "lat")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i))
				h.Observe(uint64(i))
				// Registration races the scrape's family walk too.
				r.Counter("pin_test_busy_total", "busy", Label{"w", "x"}).Inc()
			}
		}(w)
	}
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	for i := 0; i < 50; i++ {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != ContentType {
			t.Fatalf("content type %q, want %q", ct, ContentType)
		}
		resp.Body.Close()
	}
	close(stop)
	wg.Wait()
}
