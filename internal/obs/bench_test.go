package obs

import "testing"

// The hot-path ops must stay at 0 allocs/op; CI appends these series
// to BENCH_dataplane.json, so benchguard fails the build if an
// allocation sneaks in.

func BenchmarkObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("pin_bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("pin_bench_level", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("pin_bench_lat", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkObsRingEmit(b *testing.B) {
	r := NewRing(DefaultRingSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(SlotServed, 0, uint32(i), uint64(i), 0)
	}
}

func BenchmarkObsCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("pin_bench_par_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
