package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// ContentType is the Prometheus text exposition content type served
// by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving r in Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = r.WriteTo(w)
	})
}

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and an ops mux may be built more than once per
// process (tests, restart-in-place).
var publishOnce sync.Once

// NewOpsMux returns the operations endpoint mux served by bdserved's
// ops listener:
//
//	/metrics      Prometheus text format for r
//	/debug/vars   expvar JSON, including a "pinbcast" var holding the
//	              registry's JSON snapshot
//	/debug/pprof  the standard pprof index and profiles
func NewOpsMux(r *Registry) *http.ServeMux {
	publishOnce.Do(func() {
		expvar.Publish("pinbcast", expvar.Func(func() any {
			var b strings.Builder
			if err := std.WriteJSON(&b); err != nil {
				return map[string]string{"error": err.Error()}
			}
			// Re-decode so expvar embeds structured JSON, not a string.
			return jsonRaw(b.String())
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// jsonRaw marks a string as pre-encoded JSON for expvar.
type jsonRaw string

// String returns the raw JSON; expvar.Func stringifies via
// MarshalJSON-compatible fmt, and expvar calls String for Var values —
// returning the JSON verbatim embeds it structurally in /debug/vars.
func (j jsonRaw) String() string { return string(j) }

// MarshalJSON embeds the pre-encoded snapshot verbatim.
func (j jsonRaw) MarshalJSON() ([]byte, error) { return []byte(j), nil }
