package core

import (
	"errors"
	"testing"

	"pinbcast/internal/bcerr"
)

// TestDataCycleOverflow feeds NewProgram an adversarial file set whose
// data cycle — the lcm of per-file rotation lengths — exceeds the int
// range: three files with large pairwise-coprime dispersal widths, one
// slot each. The unchecked `a/gcd*b` this replaces silently wrapped,
// handing downstream window verification a bogus (possibly negative)
// cycle; the checked construction must refuse with ErrBadSpec.
func TestDataCycleOverflow(t *testing.T) {
	files := []FileInfo{
		{Name: "a", M: 1, N: 1000000007, Demand: 1},
		{Name: "b", M: 1, N: 1000000009, Demand: 1},
		{Name: "c", M: 1, N: 1000000021, Demand: 1},
	}
	_, err := NewProgram(files, []int{0, 1, 2}, 0, "test")
	if err == nil {
		t.Fatal("NewProgram accepted a program whose data cycle overflows int")
	}
	if !errors.Is(err, bcerr.ErrBadSpec) {
		t.Fatalf("overflow error = %v, want errors.Is(…, ErrBadSpec)", err)
	}
}

// TestDataCycleLargeButFeasible pins the boundary: two large coprime
// widths whose lcm still fits must build, and DataCycle must return the
// exact product of rotation lengths times the period.
func TestDataCycleLargeButFeasible(t *testing.T) {
	files := []FileInfo{
		{Name: "a", M: 1, N: 1000000007, Demand: 1},
		{Name: "b", M: 1, N: 1000000009, Demand: 1},
	}
	p, err := NewProgram(files, []int{0, 1}, 0, "test")
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	want := 1000000007 * 1000000009 * 2 // lcm(N_a, N_b) × period
	if got := p.DataCycle(); got != want {
		t.Fatalf("DataCycle() = %d, want %d", got, want)
	}
}
